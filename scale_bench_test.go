// Paper-scale world tests and the BENCH_scale.json ratchet.
//
// The compact core exists for one reason: the paper's observed population is
// millions of addresses, and the original simulator spent ~11 KiB of heap
// per host — a multi-million-host world did not fit in RAM alongside the
// crawler. These tests pin the three properties the compact core claims:
//
//   - TestScale*: sharded + compact runs stay deterministic and
//     scheduling-invariant, and streamed artifacts are byte-equal to the
//     batch writers while using bounded memory.
//   - BenchmarkStudyScale: measures hosts/sec, bytes/host and peak heap at
//     world scales 1/10/100 and appends the rows to BENCH_scale.json; the
//     per-host footprint must undercut the pre-refactor baseline by >= 5x
//     at scale >= 10 or the benchmark fails (the ratchet).
package reuseblock_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// renderScaleStudy runs a small sharded, compact-state study and returns the
// rendered report.
func renderScaleStudy(t *testing.T, seed int64, shards, workers int) (*core.Study, string) {
	t.Helper()
	wp := blgen.DefaultParams(seed)
	wp.Scale = 0.05
	s := core.NewStudy(core.Config{
		Seed:          seed,
		World:         &wp,
		CrawlDuration: 2 * time.Hour,
		Vantages:      2,
		Workers:       workers,
		Shards:        shards,
		Compact:       true,
		SkipICMP:      true,
	})
	rep, err := s.Run()
	if err != nil {
		t.Fatalf("seed %d shards %d workers %d: %v", seed, shards, workers, err)
	}
	return s, rep.Render()
}

// TestScaleShardedStudySmoke: the scale configuration (sharded fabric,
// compact node state) must still crawl a world end to end and confirm NATed
// addresses — the fast gate run under -race in CI.
func TestScaleShardedStudySmoke(t *testing.T) {
	s, _ := renderScaleStudy(t, 1, 4, 2)
	if s.CrawlStats.UniqueIPs == 0 {
		t.Fatal("sharded compact crawl observed no addresses")
	}
	if len(s.NATed) == 0 {
		t.Fatal("sharded compact crawl confirmed no NATed addresses")
	}
}

// TestScaleShardedWorkerInvariance: a sharded run is a pure function of
// (seed, shard count) — the vantage fan-out worker pool and the intra-window
// shard worker pool must both be invisible in the output bytes.
func TestScaleShardedWorkerInvariance(t *testing.T) {
	_, seq := renderScaleStudy(t, 1, 4, 1)
	_, par := renderScaleStudy(t, 1, 4, 4)
	if seq != par {
		t.Errorf("sharded study workers=4 diverged from workers=1 at %s", firstDiff(seq, par))
	}
}

// TestScaleShardedRepeatable: same configuration twice, identical bytes.
func TestScaleShardedRepeatable(t *testing.T) {
	_, a := renderScaleStudy(t, 2, 4, 2)
	_, b := renderScaleStudy(t, 2, 4, 2)
	if a != b {
		t.Errorf("sharded study not repeatable: diverges at %s", firstDiff(a, b))
	}
}

// TestScaleStreamingMatchesBatch: the streamed artifact chunks must
// concatenate to exactly the batch writers' bytes — the NATed list to
// blocklist.WriteNATedList, the observed list to one address per line — and
// every chunk must respect the window bound.
func TestScaleStreamingMatchesBatch(t *testing.T) {
	s, _ := renderScaleStudy(t, 1, 1, 2)
	const header = "reuseblock NATed addresses"
	const window = 7 // deliberately tiny and odd so chunking is exercised

	var streamedNATed, streamedObserved bytes.Buffer
	maxChunk := 0
	sink := core.ArtifactSink{
		NATedHeader: header,
		NATedList: func(chunk []byte) error {
			if n := bytes.Count(chunk, []byte("\n")); n > window+1 { // +1 header
				t.Errorf("NATed chunk has %d lines, window is %d", n, window)
			}
			if len(chunk) > maxChunk {
				maxChunk = len(chunk)
			}
			streamedNATed.Write(chunk)
			return nil
		},
		ObservedIPs: func(chunk []byte) error {
			if n := bytes.Count(chunk, []byte("\n")); n > window {
				t.Errorf("observed chunk has %d lines, window is %d", n, window)
			}
			streamedObserved.Write(chunk)
			return nil
		},
	}
	if err := s.StreamArtifacts(sink, window); err != nil {
		t.Fatal(err)
	}

	users := make(map[iputil.Addr]int, len(s.NATed))
	for _, o := range s.NATed {
		users[o.Addr] = o.Users
	}
	var batch bytes.Buffer
	if err := blocklist.WriteNATedList(&batch, users, header); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamedNATed.Bytes(), batch.Bytes()) {
		t.Errorf("streamed NATed list diverges from batch bytes at %s",
			firstDiff(streamedNATed.String(), batch.String()))
	}
	var batchObs bytes.Buffer
	for _, a := range s.BTObserved.Sorted() {
		fmt.Fprintf(&batchObs, "%s\n", a)
	}
	if !bytes.Equal(streamedObserved.Bytes(), batchObs.Bytes()) {
		t.Errorf("streamed observed list diverges from batch bytes at %s",
			firstDiff(streamedObserved.String(), batchObs.String()))
	}
	if streamedNATed.Len() == 0 || streamedObserved.Len() == 0 {
		t.Fatal("streaming produced empty artifacts")
	}
}

// syntheticStudy builds a Study holding n synthetic NAT observations and n
// observed addresses — artifact-emission input without the cost of a crawl.
func syntheticStudy(n int) *core.Study {
	base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	s := &core.Study{BTObserved: iputil.NewSet()}
	for i := 0; i < n; i++ {
		a := iputil.Addr(0x0b000000 + uint32(i)*3)
		s.NATed = append(s.NATed, crawler.NATObservation{
			Addr: a, Users: 2 + i%7, PortsSeen: 1 + i%13, FirstConfirmed: base,
		})
		s.BTObserved.Add(a)
	}
	return s
}

// TestScaleStreamingMemorySublinear: emitting artifacts through the
// streaming path must allocate O(window) regardless of artifact size, while
// the batch path's cost is the artifact itself. Measured via
// runtime.MemStats.TotalAlloc, which is monotonic and GC-independent.
func TestScaleStreamingMemorySublinear(t *testing.T) {
	const n = 300_000
	s := syntheticStudy(n)
	discard := func(chunk []byte) error { return nil }
	sink := core.ArtifactSink{NATedHeader: "x", NATedList: discard, ObservedIPs: discard}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if err := s.StreamArtifacts(sink, 0); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	streamed := after.TotalAlloc - before.TotalAlloc

	users := make(map[iputil.Addr]int, n)
	for _, o := range s.NATed {
		users[o.Addr] = o.Users
	}
	runtime.ReadMemStats(&before)
	var batch bytes.Buffer
	if err := blocklist.WriteNATedList(&batch, users, "x"); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	batchAllocs := after.TotalAlloc - before.TotalAlloc

	t.Logf("n=%d: streamed %d bytes allocated, batch %d (artifact %d bytes)",
		n, streamed, batchAllocs, batch.Len())
	// The streamed path may allocate a few window buffers; it must stay far
	// below the artifact size, which the batch path necessarily reaches.
	if streamed > uint64(batch.Len())/4 {
		t.Errorf("streaming allocated %d bytes for a %d-byte artifact — not sublinear",
			streamed, batch.Len())
	}
	if batchAllocs < uint64(batch.Len()) {
		t.Fatalf("batch baseline allocated %d bytes for a %d-byte artifact — measurement broken",
			batchAllocs, batch.Len())
	}
}

// ---------------------------------------------------------------------------
// BENCH_scale.json
// ---------------------------------------------------------------------------

// Pre-refactor per-host heap footprints, measured on commit e9c9148 (before
// internal/ipset, pooled node/NAT/binding state, the compact RNG and the
// sharded event loop): BuildSwarm(Seed 1) heap delta over host count.
const (
	baselineBytesPerHostScale1  = 11269
	baselineBytesPerHostScale10 = 11260
	// scaleRatchetFactor is the required improvement at scale >= 10.
	scaleRatchetFactor = 5
)

// ScaleBenchRecord is one BENCH_scale.json row.
type ScaleBenchRecord struct {
	Scenario       string  `json:"scenario"`
	When           string  `json:"when"`
	Seed           int64   `json:"seed"`
	Scale          float64 `json:"scale"`
	Hosts          int     `json:"hosts"`
	Shards         int     `json:"shards"`
	Compact        bool    `json:"compact"`
	BuildSec       float64 `json:"build_sec"`
	Run30mSec      float64 `json:"run30m_sec"`
	HostsPerSec    float64 `json:"hosts_per_sec"`
	BytesPerHost   float64 `json:"bytes_per_host"`
	PeakAllocBytes uint64  `json:"peak_alloc_bytes"`
	BaselineBytes  float64 `json:"baseline_bytes_per_host"`
	FootprintRatio float64 `json:"footprint_ratio"`
	NumCPU         int     `json:"num_cpu"`
	GoMaxProcs     int     `json:"gomaxprocs"`
}

func appendScaleRecord(path string, rec ScaleBenchRecord) error {
	var recs []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &recs); err != nil {
			return fmt.Errorf("existing %s is not a bench-record array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	recs = append(recs, raw)
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// scaleRecordOnce guards the ratchet file against duplicate rows when the
// benchmark harness re-enters a sub-benchmark to hit -benchtime.
var scaleRecordOnce sync.Map

// measureScale builds the compact, sharded swarm for one world scale,
// measures its heap footprint, runs 30 simulated minutes, and enforces the
// footprint ratchet.
func measureScale(b *testing.B, scale float64) ScaleBenchRecord {
	b.Helper()
	wp := blgen.DefaultParams(1)
	wp.Scale = scale
	w := blgen.Generate(wp)
	hosts := len(w.BTUsers)
	if hosts == 0 {
		b.Fatal("empty world")
	}

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	buildStart := time.Now()
	swarm, err := core.BuildSwarm(w, core.SwarmConfig{
		Seed:         1,
		Compact:      true,
		Shards:       4,
		ShardWorkers: runtime.GOMAXPROCS(0),
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	buildSec := time.Since(buildStart).Seconds()
	runtime.GC()
	runtime.ReadMemStats(&m1)
	// The world must stay live through both readings so the heap delta is
	// the swarm alone (otherwise the second GC collects the world and the
	// unsigned delta underflows).
	runtime.KeepAlive(w)
	bytesPerHost := float64(int64(m1.HeapAlloc)-int64(m0.HeapAlloc)) / float64(hosts)

	runStart := time.Now()
	swarm.RunFor(30 * time.Minute)
	runSec := time.Since(runStart).Seconds()
	runtime.KeepAlive(swarm)

	baseline := float64(baselineBytesPerHostScale1)
	if scale >= 10 {
		baseline = baselineBytesPerHostScale10
	}
	rec := ScaleBenchRecord{
		Scenario:       "study-scale",
		When:           time.Now().UTC().Format(time.RFC3339),
		Seed:           1,
		Scale:          scale,
		Hosts:          hosts,
		Shards:         4,
		Compact:        true,
		BuildSec:       buildSec,
		Run30mSec:      runSec,
		HostsPerSec:    float64(hosts) / (buildSec + runSec),
		BytesPerHost:   bytesPerHost,
		PeakAllocBytes: m1.HeapAlloc,
		BaselineBytes:  baseline,
		FootprintRatio: baseline / bytesPerHost,
		NumCPU:         runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
	}
	if scale >= 10 && rec.FootprintRatio < scaleRatchetFactor {
		b.Fatalf("bytes/host = %.0f at scale %g — only %.1fx under the %.0f pre-refactor baseline, ratchet requires %dx",
			bytesPerHost, scale, rec.FootprintRatio, baseline, scaleRatchetFactor)
	}
	return rec
}

// BenchmarkStudyScale is the paper-scale ratchet: world scales 1, 10 and 100
// (roughly 8 K, 95 K and 950 K live hosts). Each sub-benchmark performs one
// full measurement regardless of b.N — run with -benchtime=1x, as the
// nightly job does — and appends its row to BENCH_scale.json (override the
// path with SCALE_BENCH_OUT; set SCALE_BENCH_MAX to cap the largest scale
// for quick local runs).
func BenchmarkStudyScale(b *testing.B) {
	maxScale := 100.0
	if v := os.Getenv("SCALE_BENCH_MAX"); v != "" {
		fmt.Sscanf(v, "%g", &maxScale)
	}
	out := os.Getenv("SCALE_BENCH_OUT")
	if out == "" {
		out = "BENCH_scale.json"
	}
	for _, scale := range []float64{1, 10, 100} {
		if scale > maxScale {
			continue
		}
		scale := scale
		b.Run(fmt.Sprintf("scale=%g", scale), func(b *testing.B) {
			rec := measureScale(b, scale)
			b.ReportMetric(rec.HostsPerSec, "hosts/s")
			b.ReportMetric(rec.BytesPerHost, "bytes/host")
			b.ReportMetric(float64(rec.PeakAllocBytes)/(1<<20), "peak-MiB")
			if _, dup := scaleRecordOnce.LoadOrStore(scale, true); !dup {
				if err := appendScaleRecord(out, rec); err != nil {
					b.Fatalf("recording %s: %v", out, err)
				}
			}
			b.Logf("scale=%g: %d hosts, %.0f bytes/host (%.1fx under baseline), build %.1fs, run30m %.1fs",
				scale, rec.Hosts, rec.BytesPerHost, rec.FootprintRatio, rec.BuildSec, rec.Run30mSec)
		})
	}
}
