package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// TestValidateWorkerFlags pins the worker-mode flag contract: budget flags
// must be non-negative, -worker requires -report-to (and vice versa implies
// a positive ID), -report-to must parse as HOST:PORT, and the heartbeat
// period must be positive. Shard parsing itself lives in internal/fleet.
func TestValidateWorkerFlags(t *testing.T) {
	type in struct {
		reportTo    string
		worker      int
		hb          time.Duration
		rate        float64
		burst       int
		maxInflight int
	}
	ok := []in{
		{},                                   // no worker mode, no budget
		{rate: 5, burst: 10, maxInflight: 3}, // budget without a coordinator
		{reportTo: "127.0.0.1:4000", worker: 1, hb: time.Second},
		{reportTo: "127.0.0.1:4000", worker: 7, hb: 50 * time.Millisecond, rate: 0.5},
	}
	for _, c := range ok {
		if _, err := validateWorkerFlags(c.reportTo, c.worker, c.hb, c.rate, c.burst, c.maxInflight); err != nil {
			t.Errorf("validateWorkerFlags(%+v) rejected: %v", c, err)
		}
	}
	bad := []in{
		{rate: -1},
		{burst: -1},
		{maxInflight: -5},
		{worker: 1},                                  // -worker without -report-to
		{reportTo: "127.0.0.1:4000", worker: 0, hb: time.Second},  // missing -worker
		{reportTo: "127.0.0.1:4000", worker: -2, hb: time.Second}, // negative -worker
		{reportTo: "127.0.0.1:4000", worker: 1, hb: 0},            // heartbeat period
		{reportTo: "nonsense", worker: 1, hb: time.Second},        // unparseable address
		{reportTo: "127.0.0.1:notaport", worker: 1, hb: time.Second},
		{reportTo: "127.0.0.1:0", worker: 1, hb: time.Second}, // port out of range
	}
	for _, c := range bad {
		if _, err := validateWorkerFlags(c.reportTo, c.worker, c.hb, c.rate, c.burst, c.maxInflight); err == nil {
			t.Errorf("validateWorkerFlags(%+v) accepted, want error", c)
		}
	}
}

// TestRunBadWorkerFlags pins the CLI contract for the worker-mode flags:
// like -shard, a malformed value exits 2 and prints both the offending flag
// and the usage text.
func TestRunBadWorkerFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-rate", "-3"}, "invalid -rate"},
		{[]string{"-burst", "-1"}, "invalid -burst"},
		{[]string{"-max-inflight", "-2"}, "invalid -max-inflight"},
		{[]string{"-worker", "1"}, "invalid -worker"},
		{[]string{"-report-to", "127.0.0.1:4000"}, "invalid -worker"},
		{[]string{"-report-to", "garbage", "-worker", "1"}, "invalid -report-to"},
		{[]string{"-report-to", "127.0.0.1:4000", "-worker", "1", "-hb-interval", "0s"}, "invalid -hb-interval"},
	}
	for _, c := range cases {
		var out, errb bytes.Buffer
		if code := run(c.args, &out, &errb); code != 2 {
			t.Errorf("%v exited %d, want 2\nstderr: %s", c.args, code, errb.String())
			continue
		}
		if !strings.Contains(errb.String(), c.want) {
			t.Errorf("%v did not report %q:\n%s", c.args, c.want, errb.String())
		}
		if !strings.Contains(errb.String(), "Usage of blcrawl") {
			t.Errorf("%v did not print usage:\n%s", c.args, errb.String())
		}
	}
}

// TestRunBadShard pins the usage-error contract: any rejected -shard exits
// 2 (like other flag errors) and prints both the offending value and the
// usage text, so a fleet launcher's log explains itself.
func TestRunBadShard(t *testing.T) {
	for _, bad := range []string{"3/2", "0/2", "x/y", "1/0", "2"} {
		var out, errb bytes.Buffer
		if code := run([]string{"-shard", bad}, &out, &errb); code != 2 {
			t.Errorf("-shard %s exited %d, want 2", bad, code)
		}
		if !strings.Contains(errb.String(), "invalid -shard") {
			t.Errorf("-shard %s did not report the bad value:\n%s", bad, errb.String())
		}
		if !strings.Contains(errb.String(), "Usage of blcrawl") {
			t.Errorf("-shard %s did not print usage:\n%s", bad, errb.String())
		}
	}
}

// TestShardedCrawlsUnionToFullCrawl runs the same seeded world once whole
// and once split across two shards, and requires the merged shard output to
// carry user lower bounds in the file format the pipeline serves from.
func TestShardedCrawlsUnionToFullCrawl(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated crawl")
	}
	dir := t.TempDir()
	crawl := func(name string, extra ...string) map[iputil.Addr]int {
		t.Helper()
		path := filepath.Join(dir, name)
		args := append([]string{
			"-seed", "7", "-scale", "0.05", "-duration", "6h", "-out", path,
		}, extra...)
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 0 {
			t.Fatalf("crawl %s exited %d\nstderr: %s", name, code, errb.String())
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		users, err := blocklist.ParseNATedList(f)
		if err != nil {
			t.Fatalf("shard output %s does not round-trip: %v", name, err)
		}
		return users
	}

	full := crawl("full.txt")
	shard0 := crawl("s0.txt", "-shard", "1/2")
	shard1 := crawl("s1.txt", "-shard", "2/2")

	if len(full) == 0 {
		t.Fatal("unsharded crawl detected nothing; scenario operating point is broken")
	}
	for addr, users := range full {
		if users < 2 {
			t.Errorf("%s written with users=%d; the list format floors at 2", addr, users)
		}
	}
	// Every shard detection must respect the shard split — except the
	// bootstrap address, which stays in every shard's scope so the crawl
	// can take its first step.
	for i, shard := range []map[iputil.Addr]int{shard0, shard1} {
		for addr := range shard {
			if _, inOther := []map[iputil.Addr]int{shard1, shard0}[i][addr]; inOther {
				continue // bootstrap carve-out: in both shards by design
			}
			if got := int(uint32(addr) % 2); got != i {
				t.Errorf("shard %d detected %s which hashes to shard %d", i, addr, got)
			}
		}
	}
}

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of blcrawl") {
		t.Fatalf("-h did not print usage:\n%s", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestRunUnknownFaultScenario(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-faults", "does-not-exist"}, &out, &errb); code != 1 {
		t.Fatalf("unknown scenario exited %d, want 1", code)
	}
}

func TestRunReplayMissingLog(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-replay", filepath.Join(t.TempDir(), "nope.log")}, &out, &errb); code != 1 {
		t.Fatalf("missing replay log exited %d, want 1", code)
	}
}

// TestRunSimulatedCrawlAndReplay runs a short simulated crawl that writes a
// message log and a detection list, then replays the log through the CLI —
// the paper's collect-then-post-process loop end to end.
func TestRunSimulatedCrawlAndReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated crawl")
	}
	dir := t.TempDir()
	msgLog := filepath.Join(dir, "crawl.log")
	outList := filepath.Join(dir, "nated.txt")
	var out, errb bytes.Buffer
	code := run([]string{
		"-seed", "1", "-scale", "0.05", "-duration", "2h", "-log", msgLog, "-out", outList,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("simulated crawl exited %d\nstderr: %s", code, errb.String())
	}
	for _, want := range []string{"messages sent:", "unique IPs:", "NATed IPs:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("crawl output missing %q:\n%s", want, out.String())
		}
	}

	var rout, rerrb bytes.Buffer
	if code := run([]string{"-replay", msgLog}, &rout, &rerrb); code != 0 {
		t.Fatalf("replay exited %d\nstderr: %s", code, rerrb.String())
	}
	if !strings.Contains(rout.String(), "replayed ") {
		t.Errorf("replay output missing summary:\n%s", rout.String())
	}
}
