package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of blcrawl") {
		t.Fatalf("-h did not print usage:\n%s", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestRunUnknownFaultScenario(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-faults", "does-not-exist"}, &out, &errb); code != 1 {
		t.Fatalf("unknown scenario exited %d, want 1", code)
	}
}

func TestRunReplayMissingLog(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-replay", filepath.Join(t.TempDir(), "nope.log")}, &out, &errb); code != 1 {
		t.Fatalf("missing replay log exited %d, want 1", code)
	}
}

// TestRunSimulatedCrawlAndReplay runs a short simulated crawl that writes a
// message log and a detection list, then replays the log through the CLI —
// the paper's collect-then-post-process loop end to end.
func TestRunSimulatedCrawlAndReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated crawl")
	}
	dir := t.TempDir()
	msgLog := filepath.Join(dir, "crawl.log")
	outList := filepath.Join(dir, "nated.txt")
	var out, errb bytes.Buffer
	code := run([]string{
		"-seed", "1", "-scale", "0.05", "-duration", "2h", "-log", msgLog, "-out", outList,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("simulated crawl exited %d\nstderr: %s", code, errb.String())
	}
	for _, want := range []string{"messages sent:", "unique IPs:", "NATed IPs:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("crawl output missing %q:\n%s", want, out.String())
		}
	}

	var rout, rerrb bytes.Buffer
	if code := run([]string{"-replay", msgLog}, &rout, &rerrb); code != 0 {
		t.Fatalf("replay exited %d\nstderr: %s", code, rerrb.String())
	}
	if !strings.Contains(rout.String(), "replayed ") {
		t.Errorf("replay output missing summary:\n%s", rout.String())
	}
}
