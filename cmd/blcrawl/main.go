// Command blcrawl runs the paper's BitTorrent NAT-detection crawler.
//
// In the default simulated mode it generates a synthetic world, instantiates
// its BitTorrent population on the deterministic network simulator and
// crawls it for the given simulated duration, printing crawl statistics and
// the detected NATed addresses.
//
// With -real N it instead spawns N genuine DHT nodes on loopback UDP
// sockets — including a NAT-like multi-node group sharing ports behind one
// address is not possible on loopback, so the real mode demonstrates the
// crawler against live sockets and reports discovery statistics.
//
// A fleet of blcrawl processes can split one world between them: -shard I/N
// (1-based, 1 <= I <= N) restricts this instance's probing scope to the I-th
// of N address shards (the world itself is regenerated identically from the
// seed in every process), so the union of the shards' -out files is a
// full-world dataset. A malformed or out-of-range -shard is a usage error
// (exit 2): a fleet member crawling the wrong scope would silently hole the
// merged dataset.
//
// Worker mode (used by blfleet, usable by any supervisor): -report-to
// HOST:PORT connects the crawl to a fleet coordinator over loopback UDP —
// the worker announces itself (fleet_ready), streams progress heartbeats
// (fleet_hb) at -hb-interval, and delivers its final statistics
// (fleet_done) with retry-until-ack. -worker names this instance in those
// messages. -rate/-burst meter the crawl through a deterministic token
// bucket (this worker's share of the fleet budget) and -max-inflight bounds
// outstanding queries. Malformed worker-mode values are usage errors (exit
// 2 + usage), exactly like -shard.
//
// Usage:
//
//	blcrawl [-seed N] [-scale F] [-duration DUR] [-loss F] [-faults SCENARIO] [-shard I/N] [-out FILE]
//	blcrawl -real 50 [-duration DUR]
//	blcrawl -shard 2/4 -report-to 127.0.0.1:40000 -worker 2 [-rate F] [-max-inflight N] ...
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/fleet"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// workerOpts is the validated worker-mode configuration (zero value: not a
// fleet worker).
type workerOpts struct {
	reportTo   string
	worker     int
	hbInterval time.Duration
	budget     fleet.Budget
}

// run is main with its exit code and streams surfaced so tests can drive the
// command in-process: 0 on success (including -h), 2 on flag errors, 1 on
// runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blcrawl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 1, "world seed")
		scale    = fs.Float64("scale", 0.5, "world scale")
		duration = fs.Duration("duration", 24*time.Hour, "crawl duration (simulated; wall-clock in -real mode)")
		loss     = fs.Float64("loss", 0.28, "datagram loss probability (simulated mode)")
		out      = fs.String("out", "", "write detected NATed addresses to this file")
		msgLog   = fs.String("log", "", "write the crawler message log to this file (replayable with crawler.Replay)")
		realN    = fs.Int("real", 0, "run against N real DHT nodes on loopback UDP instead of the simulator")
		replay   = fs.String("replay", "", "post-process an existing message log instead of crawling")
		window   = fs.Duration("window", 30*time.Second, "ping-window for -replay scoring")
		faultScn = fs.String("faults", "", "fault scenario to inject (simulated mode; one of: "+strings.Join(faults.Names(), ", ")+")")
		shard    = fs.String("shard", "", "crawl only the I-th of N address shards, as I/N with 1 <= I <= N (simulated mode)")

		reportTo    = fs.String("report-to", "", "fleet worker mode: coordinator control address (HOST:PORT) to report to")
		workerID    = fs.Int("worker", 0, "fleet worker mode: this worker's number (>= 1; requires -report-to)")
		hbInterval  = fs.Duration("hb-interval", 500*time.Millisecond, "fleet worker mode: heartbeat period (> 0)")
		rate        = fs.Float64("rate", 0, "budget: sustained query rate in queries/sec (0 = unlimited)")
		burst       = fs.Int("burst", 0, "budget: token-bucket burst depth (0 = one second of -rate)")
		maxInflight = fs.Int("max-inflight", 0, "budget: bound on outstanding queries (0 = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	scenario, err := faults.Lookup(*faultScn)
	if err != nil {
		fmt.Fprintln(stderr, "blcrawl:", err)
		return 1
	}
	usageErr := func(err error) int {
		// A wrong shard scope or worker wiring is a usage error, not a
		// runtime failure: treat it like any other bad flag value (exit 2
		// with usage) so fleet launchers fail loudly instead of crawling a
		// hole into the dataset.
		fmt.Fprintln(stderr, "blcrawl:", err)
		fs.Usage()
		return 2
	}
	shardSpec, err := fleet.ParseShard(*shard)
	if err != nil {
		return usageErr(err)
	}
	worker, err := validateWorkerFlags(*reportTo, *workerID, *hbInterval, *rate, *burst, *maxInflight)
	if err != nil {
		return usageErr(err)
	}
	switch {
	case *replay != "":
		err = runReplay(*replay, *window, stdout)
	case *realN > 0:
		err = runReal(*realN, *duration, stdout)
	default:
		err = runSimulated(*seed, *scale, *duration, *loss, *out, *msgLog, scenario, shardSpec, worker, stdout, stderr)
	}
	if err != nil {
		fmt.Fprintln(stderr, "blcrawl:", err)
		return 1
	}
	return 0
}

// validateWorkerFlags applies the -shard validation standard to the worker
// and budget flags: anything malformed is rejected before the crawl starts.
func validateWorkerFlags(reportTo string, worker int, hbInterval time.Duration, rate float64, burst, maxInflight int) (workerOpts, error) {
	var w workerOpts
	if rate < 0 {
		return w, fmt.Errorf("invalid -rate %v: want >= 0", rate)
	}
	if burst < 0 {
		return w, fmt.Errorf("invalid -burst %d: want >= 0", burst)
	}
	if maxInflight < 0 {
		return w, fmt.Errorf("invalid -max-inflight %d: want >= 0", maxInflight)
	}
	w.budget = fleet.Budget{Rate: rate, Burst: burst, MaxInflight: maxInflight}
	if reportTo == "" {
		if worker != 0 {
			return w, fmt.Errorf("invalid -worker %d: requires -report-to", worker)
		}
		return w, nil
	}
	if _, err := fleet.ParseControlAddr(reportTo); err != nil {
		return w, fmt.Errorf("invalid -report-to: %v", err)
	}
	if worker < 1 {
		return w, fmt.Errorf("invalid -worker %d: want >= 1 with -report-to", worker)
	}
	if hbInterval <= 0 {
		return w, fmt.Errorf("invalid -hb-interval %v: want > 0", hbInterval)
	}
	w.reportTo = reportTo
	w.worker = worker
	w.hbInterval = hbInterval
	return w, nil
}

// runReplay reproduces NAT determination offline from a message log — the
// paper's post-processing step.
func runReplay(path string, window time.Duration, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := crawler.ParseLog(bufio.NewReader(f))
	if err != nil {
		return err
	}
	obs := crawler.Replay(events, window)
	fmt.Fprintf(stdout, "replayed %d log events -> %d NATed addresses\n", len(events), len(obs))
	for _, o := range obs {
		fmt.Fprintf(stdout, "%s\tusers>=%d\tports=%d\n", o.Addr, o.Users, o.PortsSeen)
	}
	return nil
}

func runSimulated(seed int64, scale float64, duration time.Duration, loss float64, out, msgLog string, scenario *faults.Scenario, shard fleet.ShardSpec, worker workerOpts, stdout, stderr io.Writer) (err error) {
	// In worker mode the coordinator is dialed before world generation so
	// readiness is announced as early as possible.
	var agent *fleet.Agent
	if worker.reportTo != "" {
		agent, err = fleet.DialAgent(worker.reportTo, worker.worker, shard, worker.hbInterval)
		if err != nil {
			return err
		}
		defer agent.Close()
	}

	job := fleet.CrawlJob{
		Seed:     seed,
		Scale:    scale,
		Duration: duration,
		Loss:     loss,
		Scenario: scenario,
		Shard:    shard,
		Budget:   worker.budget,
		Stderr:   stderr,
	}
	if agent != nil {
		job.Chunk = fleet.HeartbeatChunk(duration)
		job.Progress = agent.Publish
	}
	if msgLog != "" {
		lf, err := os.Create(msgLog)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := lf.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w := bufio.NewWriter(lf)
		defer w.Flush()
		job.EventLog = w
	}

	start := time.Now()
	res, err := fleet.RunCrawl(job)
	if err != nil {
		return err
	}

	st := res.Stats
	fmt.Fprintf(stdout, "crawled %v of simulated time in %v\n", duration, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stdout, "messages sent:      %d (get_nodes %d, bt_ping %d)\n", st.MessagesSent, st.GetNodesSent, st.PingsSent)
	fmt.Fprintf(stdout, "responses received: %d (%.1f%%)\n", st.MessagesReceived, st.ResponseRate*100)
	fmt.Fprintf(stdout, "unique IPs:         %d\n", st.UniqueIPs)
	fmt.Fprintf(stdout, "unique node IDs:    %d\n", st.UniqueNodeIDs)
	fmt.Fprintf(stdout, "multi-port IPs:     %d\n", st.MultiPortIPs)
	fmt.Fprintf(stdout, "NATed IPs:          %d (max %d simultaneous users)\n", st.NATedIPs, st.SimultaneousMax)
	if scenario != nil {
		fmt.Fprintf(stdout, "resilience:         %d retries, %d late replies, %d endpoints evicted\n",
			st.Retries, st.LateReplies, st.Evicted)
		if res.FaultStats != nil {
			fs := res.FaultStats
			fmt.Fprintf(stdout, "%-20s%d burst-dropped, %d blackout-dropped, %d rate-limited, %d corrupted\n",
				"faults ("+scenario.Name+"):", fs.BurstDropped, fs.BlackoutDropped, fs.RateLimited, fs.Corrupted)
		}
	}
	if len(res.Detected) > 0 {
		fmt.Fprintf(stdout, "ground truth:       %d/%d detected addresses are true NAT gateways\n",
			res.TruePositives, len(res.Detected))
	}
	if out != "" {
		if err := fleet.WriteOut(out, res.Detected, stderr); err != nil {
			return err
		}
	}
	if agent != nil {
		d := fleet.Done{
			OutFile:       out,
			Stats:         fleet.ToWireStats(st),
			TruePositives: int64(res.TruePositives),
		}
		if res.SawBootstrap {
			d.SawBootstrap = 1
		}
		if err := agent.Done(d); err != nil {
			return err
		}
	}
	return nil
}

// runReal spawns n real DHT nodes on loopback UDP and crawls them with the
// same crawler code over a real socket.
func runReal(n int, duration time.Duration, stdout io.Writer) error {
	var mu sync.Mutex
	clock := dht.LockedClock(&mu, dht.WallClock())

	var nodes []*dht.Node
	var socks []*dht.RealSocket
	var eps []netsim.Endpoint
	for i := 0; i < n; i++ {
		sock, ep, err := dht.ListenLoopback(&mu)
		if err != nil {
			return err
		}
		mu.Lock()
		node := dht.NewNode(sock, clock, dht.Config{
			IDSeed: uint64(i + 1), Seed: int64(i + 1), Version: "RB01",
		})
		mu.Unlock()
		nodes = append(nodes, node)
		socks = append(socks, sock)
		eps = append(eps, ep)
	}
	// Mesh the nodes.
	mu.Lock()
	for i, node := range nodes {
		for d := 1; d <= 4; d++ {
			j := (i + d) % n
			node.AddNode(infoFor(nodes[j], eps[j]))
		}
	}
	mu.Unlock()

	csock, _, err := dht.ListenLoopback(&mu)
	if err != nil {
		return err
	}
	mu.Lock()
	c := crawler.New(csock, clock, crawler.Config{
		Bootstrap:     []netsim.Endpoint{eps[0]},
		Seed:          1,
		Tick:          200 * time.Millisecond,
		SweepInterval: 5 * time.Second,
		PingInterval:  5 * time.Second,
		PingWindow:    time.Second,
		Cooldown:      2 * time.Second,
		QueryTimeout:  time.Second,
	})
	c.Start()
	mu.Unlock()

	fmt.Fprintf(stdout, "crawling %d real loopback DHT nodes for %v...\n", n, duration)
	time.Sleep(duration)

	mu.Lock()
	c.Stop()
	st := c.Stats()
	mu.Unlock()
	fmt.Fprintf(stdout, "messages sent:      %d\n", st.MessagesSent)
	fmt.Fprintf(stdout, "responses received: %d (%.1f%%)\n", st.MessagesReceived, st.ResponseRate*100)
	fmt.Fprintf(stdout, "unique IPs:         %d (loopback shares 127.0.0.1 across ports)\n", st.UniqueIPs)
	fmt.Fprintf(stdout, "unique node IDs:    %d of %d\n", st.UniqueNodeIDs, n)
	fmt.Fprintf(stdout, "NATed IPs:          %d\n", st.NATedIPs)
	if st.NATedIPs == 1 {
		fmt.Fprintln(stdout, "note: all loopback nodes share 127.0.0.1, so the crawler correctly")
		fmt.Fprintln(stdout, "      identifies it as one address shared by many simultaneous users —")
		fmt.Fprintln(stdout, "      exactly the NAT signature of §3.1.")
	}

	mu.Lock()
	for _, node := range nodes {
		node.Close()
	}
	c.Stop()
	mu.Unlock()
	for _, s := range socks {
		s.Wait()
	}
	return nil
}

func infoFor(n *dht.Node, ep netsim.Endpoint) krpc.NodeInfo {
	return krpc.NodeInfo{ID: n.ID(), Addr: ep.Addr, Port: ep.Port}
}
