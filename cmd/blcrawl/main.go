// Command blcrawl runs the paper's BitTorrent NAT-detection crawler.
//
// In the default simulated mode it generates a synthetic world, instantiates
// its BitTorrent population on the deterministic network simulator and
// crawls it for the given simulated duration, printing crawl statistics and
// the detected NATed addresses.
//
// With -real N it instead spawns N genuine DHT nodes on loopback UDP
// sockets — including a NAT-like multi-node group sharing ports behind one
// address is not possible on loopback, so the real mode demonstrates the
// crawler against live sockets and reports discovery statistics.
//
// A fleet of blcrawl processes can split one world between them: -shard I/N
// (1-based, 1 <= I <= N) restricts this instance's probing scope to the I-th
// of N address shards (the world itself is regenerated identically from the
// seed in every process), so the union of the shards' -out files is a
// full-world dataset. A malformed or out-of-range -shard is a usage error
// (exit 2): a fleet member crawling the wrong scope would silently hole the
// merged dataset.
//
// Usage:
//
//	blcrawl [-seed N] [-scale F] [-duration DUR] [-loss F] [-faults SCENARIO] [-shard I/N] [-out FILE]
//	blcrawl -real 50 [-duration DUR]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exit code and streams surfaced so tests can drive the
// command in-process: 0 on success (including -h), 2 on flag errors, 1 on
// runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blcrawl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 1, "world seed")
		scale    = fs.Float64("scale", 0.5, "world scale")
		duration = fs.Duration("duration", 24*time.Hour, "crawl duration (simulated; wall-clock in -real mode)")
		loss     = fs.Float64("loss", 0.28, "datagram loss probability (simulated mode)")
		out      = fs.String("out", "", "write detected NATed addresses to this file")
		msgLog   = fs.String("log", "", "write the crawler message log to this file (replayable with crawler.Replay)")
		realN    = fs.Int("real", 0, "run against N real DHT nodes on loopback UDP instead of the simulator")
		replay   = fs.String("replay", "", "post-process an existing message log instead of crawling")
		window   = fs.Duration("window", 30*time.Second, "ping-window for -replay scoring")
		faultScn = fs.String("faults", "", "fault scenario to inject (simulated mode; one of: "+strings.Join(faults.Names(), ", ")+")")
		shard    = fs.String("shard", "", "crawl only the I-th of N address shards, as I/N with 1 <= I <= N (simulated mode)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	scenario, err := faults.Lookup(*faultScn)
	if err != nil {
		fmt.Fprintln(stderr, "blcrawl:", err)
		return 1
	}
	shardIdx, shardN, err := parseShard(*shard)
	if err != nil {
		// A wrong shard scope is a usage error, not a runtime failure: treat
		// it like any other bad flag value (exit 2 with usage) so fleet
		// launchers fail loudly instead of crawling a hole into the dataset.
		fmt.Fprintln(stderr, "blcrawl:", err)
		fs.Usage()
		return 2
	}
	switch {
	case *replay != "":
		err = runReplay(*replay, *window, stdout)
	case *realN > 0:
		err = runReal(*realN, *duration, stdout)
	default:
		err = runSimulated(*seed, *scale, *duration, *loss, *out, *msgLog, scenario, shardIdx, shardN, stdout, stderr)
	}
	if err != nil {
		fmt.Fprintln(stderr, "blcrawl:", err)
		return 1
	}
	return 0
}

// runReplay reproduces NAT determination offline from a message log — the
// paper's post-processing step.
func runReplay(path string, window time.Duration, stdout io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := crawler.ParseLog(bufio.NewReader(f))
	if err != nil {
		return err
	}
	obs := crawler.Replay(events, window)
	fmt.Fprintf(stdout, "replayed %d log events -> %d NATed addresses\n", len(events), len(obs))
	for _, o := range obs {
		fmt.Fprintf(stdout, "%s\tusers>=%d\tports=%d\n", o.Addr, o.Users, o.PortsSeen)
	}
	return nil
}

// parseShard parses the -shard value: empty means "no sharding", otherwise
// "I/N" with 1 <= I <= N selects the I-th of N address shards (1-based, the
// way fleet launchers number members). The returned idx is 0-based for the
// modulo scope check. Rejected: malformed strings, I < 1, N < 1, I > N.
func parseShard(s string) (idx, n int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if ok {
		idx, err = strconv.Atoi(is)
		if err == nil {
			n, err = strconv.Atoi(ns)
		}
	}
	if !ok || err != nil || n < 1 || idx < 1 || idx > n {
		return 0, 0, fmt.Errorf("invalid -shard %q: want I/N with 1 <= I <= N", s)
	}
	return idx - 1, n, nil
}

func runSimulated(seed int64, scale float64, duration time.Duration, loss float64, out, msgLog string, scenario *faults.Scenario, shardIdx, shardN int, stdout, stderr io.Writer) (err error) {
	wp := blgen.DefaultParams(seed)
	wp.Scale = scale
	w := blgen.Generate(wp)
	fmt.Fprintf(stderr, "world: %d BT users, %d NAT gateways\n", len(w.BTUsers), len(w.NATs))

	scope := w.BlocklistedSpace()
	swarm, err := core.BuildSwarm(w, core.SwarmConfig{
		Loss:         loss,
		Seed:         seed,
		ChurnHorizon: duration,
		Faults:       scenario,
	}, scope.Covers)
	if err != nil {
		return err
	}
	sock, err := swarm.Net.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr("198.18.0.1"), Port: 9999})
	if err != nil {
		return err
	}
	cover := scope.Covers
	if shardN > 1 {
		// Restrict probing to this instance's address shard. The bootstrap
		// stays reachable from every shard, or a scope-restricted crawler
		// could never take its first step.
		bootstrap := swarm.Bootstrap.Addr
		cover = func(a iputil.Addr) bool {
			return scope.Covers(a) && (a == bootstrap || int(uint32(a)%uint32(shardN)) == shardIdx)
		}
		fmt.Fprintf(stderr, "crawling shard %d/%d of the address space\n", shardIdx, shardN)
	}
	ccfg := crawler.Config{
		Bootstrap: []netsim.Endpoint{swarm.Bootstrap},
		Scope:     cover,
		Seed:      seed,
	}
	if scenario != nil {
		// Under faults the crawler fights back: retries with backoff and
		// eviction of persistently dead endpoints.
		ccfg.MaxRetries = 2
		ccfg.RetryBase = 2 * time.Second
		ccfg.EvictAfter = 4
	}
	if msgLog != "" {
		lf, err := os.Create(msgLog)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := lf.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w := bufio.NewWriter(lf)
		defer w.Flush()
		ccfg.EventLog = w
	}
	c := crawler.New(sock, dht.SimClock(swarm.Clock), ccfg)
	swarm.Clock.RunFor(time.Minute)
	c.Start()
	start := time.Now()
	swarm.Clock.RunFor(duration)
	c.Stop()

	st := c.Stats()
	fmt.Fprintf(stdout, "crawled %v of simulated time in %v\n", duration, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stdout, "messages sent:      %d (get_nodes %d, bt_ping %d)\n", st.MessagesSent, st.GetNodesSent, st.PingsSent)
	fmt.Fprintf(stdout, "responses received: %d (%.1f%%)\n", st.MessagesReceived, st.ResponseRate*100)
	fmt.Fprintf(stdout, "unique IPs:         %d\n", st.UniqueIPs)
	fmt.Fprintf(stdout, "unique node IDs:    %d\n", st.UniqueNodeIDs)
	fmt.Fprintf(stdout, "multi-port IPs:     %d\n", st.MultiPortIPs)
	fmt.Fprintf(stdout, "NATed IPs:          %d (max %d simultaneous users)\n", st.NATedIPs, st.SimultaneousMax)
	if scenario != nil {
		fmt.Fprintf(stdout, "resilience:         %d retries, %d late replies, %d endpoints evicted\n",
			st.Retries, st.LateReplies, st.Evicted)
		if swarm.Injector != nil {
			fs := swarm.Injector.Stats()
			fmt.Fprintf(stdout, "%-20s%d burst-dropped, %d blackout-dropped, %d rate-limited, %d corrupted\n",
				"faults ("+scenario.Name+"):", fs.BurstDropped, fs.BlackoutDropped, fs.RateLimited, fs.Corrupted)
		}
	}

	detected := map[iputil.Addr]int{}
	truePositives := 0
	for _, o := range c.NATed() {
		detected[o.Addr] = o.Users
		if _, ok := w.NATByIP[o.Addr]; ok {
			truePositives++
		}
	}
	if len(detected) > 0 {
		fmt.Fprintf(stdout, "ground truth:       %d/%d detected addresses are true NAT gateways\n",
			truePositives, len(detected))
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		header := "NATed addresses detected by blcrawl (addr<TAB>users lower bound)"
		if err := blocklist.WriteNATedList(f, detected, header); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %d addresses to %s\n", len(detected), out)
	}
	return nil
}

// runReal spawns n real DHT nodes on loopback UDP and crawls them with the
// same crawler code over a real socket.
func runReal(n int, duration time.Duration, stdout io.Writer) error {
	var mu sync.Mutex
	clock := dht.LockedClock(&mu, dht.WallClock())

	var nodes []*dht.Node
	var socks []*dht.RealSocket
	var eps []netsim.Endpoint
	for i := 0; i < n; i++ {
		pc, err := net.ListenPacket("udp4", "127.0.0.1:0")
		if err != nil {
			return err
		}
		sock := dht.NewRealSocket(pc, &mu)
		mu.Lock()
		node := dht.NewNode(sock, clock, dht.Config{
			IDSeed: uint64(i + 1), Seed: int64(i + 1), Version: "RB01",
		})
		mu.Unlock()
		ep, _ := sock.PublicEndpoint()
		nodes = append(nodes, node)
		socks = append(socks, sock)
		eps = append(eps, ep)
	}
	// Mesh the nodes.
	mu.Lock()
	for i, node := range nodes {
		for d := 1; d <= 4; d++ {
			j := (i + d) % n
			node.AddNode(infoFor(nodes[j], eps[j]))
		}
	}
	mu.Unlock()

	pc, err := net.ListenPacket("udp4", "127.0.0.1:0")
	if err != nil {
		return err
	}
	csock := dht.NewRealSocket(pc, &mu)
	mu.Lock()
	c := crawler.New(csock, clock, crawler.Config{
		Bootstrap:     []netsim.Endpoint{eps[0]},
		Seed:          1,
		Tick:          200 * time.Millisecond,
		SweepInterval: 5 * time.Second,
		PingInterval:  5 * time.Second,
		PingWindow:    time.Second,
		Cooldown:      2 * time.Second,
		QueryTimeout:  time.Second,
	})
	c.Start()
	mu.Unlock()

	fmt.Fprintf(stdout, "crawling %d real loopback DHT nodes for %v...\n", n, duration)
	time.Sleep(duration)

	mu.Lock()
	c.Stop()
	st := c.Stats()
	mu.Unlock()
	fmt.Fprintf(stdout, "messages sent:      %d\n", st.MessagesSent)
	fmt.Fprintf(stdout, "responses received: %d (%.1f%%)\n", st.MessagesReceived, st.ResponseRate*100)
	fmt.Fprintf(stdout, "unique IPs:         %d (loopback shares 127.0.0.1 across ports)\n", st.UniqueIPs)
	fmt.Fprintf(stdout, "unique node IDs:    %d of %d\n", st.UniqueNodeIDs, n)
	fmt.Fprintf(stdout, "NATed IPs:          %d\n", st.NATedIPs)
	if st.NATedIPs == 1 {
		fmt.Fprintln(stdout, "note: all loopback nodes share 127.0.0.1, so the crawler correctly")
		fmt.Fprintln(stdout, "      identifies it as one address shared by many simultaneous users —")
		fmt.Fprintln(stdout, "      exactly the NAT signature of §3.1.")
	}

	mu.Lock()
	for _, node := range nodes {
		node.Close()
	}
	c.Stop()
	mu.Unlock()
	for _, s := range socks {
		s.Wait()
	}
	return nil
}

func infoFor(n *dht.Node, ep netsim.Endpoint) krpc.NodeInfo {
	return krpc.NodeInfo{ID: n.ID(), Addr: ep.Addr, Port: ep.Port}
}
