package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
)

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of bldetect") {
		t.Fatalf("-h did not print usage:\n%s", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestRunMissingLogs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("missing -logs exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "-logs is required") {
		t.Fatalf("missing-flag error not reported:\n%s", errb.String())
	}
}

func TestRunNonexistentLogs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-logs", filepath.Join(t.TempDir(), "nope.csv")}, &out, &errb); code != 1 {
		t.Fatalf("nonexistent log file exited %d, want 1", code)
	}
}

// TestRunDetectsFromGeneratedLogs writes a tiny world's RIPE connection log
// and runs the full detection pipeline over it through the CLI surface.
func TestRunDetectsFromGeneratedLogs(t *testing.T) {
	w := blgen.Generate(blgen.TestParams(1))
	dir := t.TempDir()
	logs := filepath.Join(dir, "logs.csv")
	f, err := os.Create(logs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ripeatlas.WriteLogs(f, w.RIPELogs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	prefixes := filepath.Join(dir, "prefixes.txt")
	var out, errb bytes.Buffer
	if code := run([]string{"-logs", logs, "-prefixes-out", prefixes}, &out, &errb); code != 0 {
		t.Fatalf("detection run exited %d\nstderr: %s", code, errb.String())
	}
	for _, want := range []string{"probes:", "knee threshold", "dynamic /24 prefixes"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(prefixes)
	if err != nil {
		t.Fatalf("prefixes artifact: %v", err)
	}
	if !strings.HasPrefix(string(data), "# dynamic prefixes detected by bldetect") {
		t.Errorf("prefixes file missing header:\n%s", data)
	}
}
