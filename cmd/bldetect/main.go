// Command bldetect runs the paper's dynamic-address detection pipeline
// (§3.2) over a RIPE Atlas connection log in the CSV format produced by
// cmd/blgen (or ripeatlas.WriteLogs), printing the funnel, the knee
// threshold, and the detected dynamic /24 prefixes.
//
// Usage:
//
//	bldetect -logs FILE [-min-alloc N] [-expand BITS] [-prefixes-out FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/reuseblock/reuseblock/internal/ripeatlas"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bldetect: ")
	var (
		logsPath = flag.String("logs", "", "RIPE connection-log CSV (required)")
		minAlloc = flag.Int("min-alloc", 0, "override the knee threshold with a fixed allocation count")
		expand   = flag.Int("expand", 24, "prefix length dynamic addresses are expanded to")
		maxMean  = flag.Duration("max-mean-change", 24*time.Hour, "maximum mean time between changes")
		outPath  = flag.String("prefixes-out", "", "write detected dynamic prefixes to this file")
	)
	flag.Parse()
	if *logsPath == "" {
		log.Fatal("-logs is required")
	}
	f, err := os.Open(*logsPath)
	if err != nil {
		log.Fatal(err)
	}
	entries, err := ripeatlas.ReadLogs(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d log entries\n", len(entries))

	res := ripeatlas.Detect(entries, ripeatlas.DetectOptions{
		MinAllocations:        *minAlloc,
		ExpandBits:            *expand,
		MaxMeanChangeInterval: *maxMean,
	})
	fmt.Printf("probes:                         %d\n", res.TotalProbes)
	fmt.Printf("  multi-AS (excluded):          %d\n", res.MultiASProbes)
	fmt.Printf("  never changed address:        %d\n", res.NoChangeProbes)
	fmt.Printf("  changed within one AS:        %d\n", res.SameASProbes)
	fmt.Printf("knee threshold (allocations):   %d\n", res.KneeThreshold)
	fmt.Printf("  frequent (>= threshold):      %d\n", res.FrequentProbes)
	fmt.Printf("  changing daily (final):       %d\n", res.DailyProbes)
	fmt.Printf("addresses observed:             %d\n", res.AllAddresses.Len())
	fmt.Printf("dynamic addresses:              %d\n", res.DynamicAddresses.Len())
	fmt.Printf("dynamic /%d prefixes:           %d\n", *expand, res.DynamicPrefixes.Len())

	if *outPath != "" {
		out, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(out, "# dynamic prefixes detected by bldetect (threshold %d)\n", res.KneeThreshold)
		for _, p := range res.DynamicPrefixes.Sorted() {
			fmt.Fprintln(out, p)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d prefixes to %s\n", res.DynamicPrefixes.Len(), *outPath)
	}
}
