// Command bldetect runs the paper's dynamic-address detection pipeline
// (§3.2) over a RIPE Atlas connection log in the CSV format produced by
// cmd/blgen (or ripeatlas.WriteLogs), printing the funnel, the knee
// threshold, and the detected dynamic /24 prefixes.
//
// Usage:
//
//	bldetect -logs FILE [-min-alloc N] [-expand BITS] [-prefixes-out FILE]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/reuseblock/reuseblock/internal/ripeatlas"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exit code and streams surfaced so tests can drive the
// command in-process: 0 on success (including -h), 2 on flag errors, 1 on
// runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bldetect", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		logsPath = fs.String("logs", "", "RIPE connection-log CSV (required)")
		minAlloc = fs.Int("min-alloc", 0, "override the knee threshold with a fixed allocation count")
		expand   = fs.Int("expand", 24, "prefix length dynamic addresses are expanded to")
		maxMean  = fs.Duration("max-mean-change", 24*time.Hour, "maximum mean time between changes")
		outPath  = fs.String("prefixes-out", "", "write detected dynamic prefixes to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *logsPath == "" {
		fmt.Fprintln(stderr, "bldetect: -logs is required")
		return 1
	}
	f, err := os.Open(*logsPath)
	if err != nil {
		fmt.Fprintln(stderr, "bldetect:", err)
		return 1
	}
	entries, err := ripeatlas.ReadLogs(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(stderr, "bldetect:", err)
		return 1
	}
	fmt.Fprintf(stdout, "read %d log entries\n", len(entries))

	res := ripeatlas.Detect(entries, ripeatlas.DetectOptions{
		MinAllocations:        *minAlloc,
		ExpandBits:            *expand,
		MaxMeanChangeInterval: *maxMean,
	})
	fmt.Fprintf(stdout, "probes:                         %d\n", res.TotalProbes)
	fmt.Fprintf(stdout, "  multi-AS (excluded):          %d\n", res.MultiASProbes)
	fmt.Fprintf(stdout, "  never changed address:        %d\n", res.NoChangeProbes)
	fmt.Fprintf(stdout, "  changed within one AS:        %d\n", res.SameASProbes)
	fmt.Fprintf(stdout, "knee threshold (allocations):   %d\n", res.KneeThreshold)
	fmt.Fprintf(stdout, "  frequent (>= threshold):      %d\n", res.FrequentProbes)
	fmt.Fprintf(stdout, "  changing daily (final):       %d\n", res.DailyProbes)
	fmt.Fprintf(stdout, "addresses observed:             %d\n", res.AllAddresses.Len())
	fmt.Fprintf(stdout, "dynamic addresses:              %d\n", res.DynamicAddresses.Len())
	fmt.Fprintf(stdout, "dynamic /%d prefixes:           %d\n", *expand, res.DynamicPrefixes.Len())

	if *outPath != "" {
		out, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "bldetect:", err)
			return 1
		}
		fmt.Fprintf(out, "# dynamic prefixes detected by bldetect (threshold %d)\n", res.KneeThreshold)
		for _, p := range res.DynamicPrefixes.Sorted() {
			fmt.Fprintln(out, p)
		}
		if err := out.Close(); err != nil {
			fmt.Fprintln(stderr, "bldetect:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %d prefixes to %s\n", res.DynamicPrefixes.Len(), *outPath)
	}
	return 0
}
