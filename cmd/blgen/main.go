// Command blgen generates a synthetic world and writes its raw datasets to
// disk: the RIPE Atlas connection log, one snapshot file per blocklist feed
// per observation day (plain format), and a ground-truth summary — the same
// inputs a researcher would collect for the real study.
//
// Usage:
//
//	blgen -out DIR [-seed N] [-scale F] [-days N]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/pfx2as"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exit code and streams surfaced so tests can drive the
// command in-process: 0 on success (including -h), 2 on flag errors, 1 on
// runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out   = fs.String("out", "", "output directory (required)")
		seed  = fs.Int64("seed", 1, "world seed")
		scale = fs.Float64("scale", 0.25, "world scale")
		days  = fs.Int("days", 0, "limit snapshot output to the first N observation days")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "blgen: -out is required")
		return 1
	}
	if err := generate(*out, *seed, *scale, *days, stdout); err != nil {
		fmt.Fprintln(stderr, "blgen:", err)
		return 1
	}
	return 0
}

func generate(out string, seed int64, scale float64, days int, stdout io.Writer) error {
	wp := blgen.DefaultParams(seed)
	wp.Scale = scale
	w := blgen.Generate(wp)

	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	// RIPE connection logs.
	ripePath := filepath.Join(out, "ripe-connection-logs.csv")
	rf, err := os.Create(ripePath)
	if err != nil {
		return err
	}
	if err := ripeatlas.WriteLogs(rf, w.RIPELogs); err != nil {
		return err
	}
	if err := rf.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d RIPE log entries to %s\n", len(w.RIPELogs), ripePath)

	// Daily feed snapshots.
	snapDir := filepath.Join(out, "feeds")
	if err := os.MkdirAll(snapDir, 0o755); err != nil {
		return err
	}
	nDays := len(w.Collection.Days())
	if days > 0 && days < nDays {
		nDays = days
	}
	written := 0
	for fi, feed := range w.Registry.Feeds {
		for d := 0; d < nDays; d++ {
			addrs := iputil.NewSet()
			for _, a := range w.Collection.FeedAddrs(fi).Sorted() {
				if w.Collection.Present(fi, d, a) {
					addrs.Add(a)
				}
			}
			if addrs.Len() == 0 {
				continue
			}
			date := w.Collection.Days()[d].Format("2006-01-02")
			path := filepath.Join(snapDir, fmt.Sprintf("%s_%s.txt", feed.Name, date))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			header := fmt.Sprintf("%s snapshot %s (maintainer: %s, type: %s)",
				feed.Name, date, feed.Maintainer, feed.Type)
			if err := blocklist.WritePlain(f, addrs, header); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			written++
		}
	}
	fmt.Fprintf(stdout, "wrote %d feed snapshots to %s\n", written, snapDir)

	// pfx2as snapshot so blanalyze can aggregate per AS.
	pfxPath := filepath.Join(out, "pfx2as.txt")
	pf, err := os.Create(pfxPath)
	if err != nil {
		return err
	}
	tbl := pfx2as.New()
	for _, a := range w.ASes {
		for _, pi := range a.Prefixes {
			tbl.Add(pi.Prefix, pi.ASN)
		}
	}
	if err := pfx2as.Write(pf, tbl); err != nil {
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d pfx2as entries to %s\n", tbl.Len(), pfxPath)

	// Ground truth.
	gtPath := filepath.Join(out, "ground-truth.txt")
	gt, err := os.Create(gtPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(gt, "# ground truth for seed=%d scale=%g\n", seed, scale)
	fmt.Fprintf(gt, "# nat <public-addr> <total-users> <bt-users> <restricted>\n")
	for _, n := range w.NATs {
		fmt.Fprintf(gt, "nat %s %d %d %v\n", n.Addr, n.TotalUsers, n.BTUsers, n.Restricted)
	}
	fmt.Fprintf(gt, "# dynamic-pool <prefix> (daily-or-faster reallocation)\n")
	for _, p := range w.TrueFastDynamic.Sorted() {
		fmt.Fprintf(gt, "dynamic-pool %s\n", p)
	}
	if err := gt.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote ground truth (%d NATs, %d fast pools) to %s\n",
		len(w.NATs), w.TrueFastDynamic.Len(), gtPath)
	return nil
}
