package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of blgen") {
		t.Fatalf("-h did not print usage:\n%s", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestRunMissingOut(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("missing -out exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "-out is required") {
		t.Fatalf("missing-flag error not reported:\n%s", errb.String())
	}
}

// TestRunWritesDatasets generates a tiny world and checks every dataset the
// command promises: RIPE logs, feed snapshots, pfx2as, ground truth.
func TestRunWritesDatasets(t *testing.T) {
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{"-out", dir, "-seed", "1", "-scale", "0.05", "-days", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("generation exited %d\nstderr: %s", code, errb.String())
	}
	for _, name := range []string{"ripe-connection-logs.csv", "pfx2as.txt", "ground-truth.txt"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "feeds", "*_*.txt"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no feed snapshots written (%v)", err)
	}
	gt, err := os.ReadFile(filepath.Join(dir, "ground-truth.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gt), "nat ") {
		t.Errorf("ground truth lists no NAT gateways:\n%.200s", gt)
	}
}
