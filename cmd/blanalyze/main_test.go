package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/pfx2as"
)

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of blanalyze") {
		t.Fatalf("-h did not print usage:\n%s", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestRunMissingFeeds(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("missing -feeds exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "-feeds is required") {
		t.Fatalf("missing-flag error not reported:\n%s", errb.String())
	}
}

func TestRunNonexistentFeedsDir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-feeds", filepath.Join(t.TempDir(), "nope")}, &out, &errb); code != 1 {
		t.Fatalf("nonexistent feeds dir exited %d, want 1", code)
	}
}

// TestRunAnalyzesSnapshots builds a miniature on-disk dataset by hand — two
// standard feeds over two days, a NATed list, a dynamic prefix, a pfx2as
// table — and checks the analysis renders its summary and figures.
func TestRunAnalyzesSnapshots(t *testing.T) {
	dir := t.TempDir()
	feeds := filepath.Join(dir, "feeds")
	if err := os.MkdirAll(feeds, 0o755); err != nil {
		t.Fatal(err)
	}
	snapshots := map[string]string{
		"bad-ips-01_2020-01-01.txt":  "# snap\n203.0.113.7\n203.0.113.9\n",
		"bad-ips-01_2020-01-02.txt":  "# snap\n203.0.113.7\n",
		"bambenek-01_2020-01-01.txt": "# snap\n198.51.100.3\n203.0.113.9\n",
		"bambenek-01_2020-01-02.txt": "# snap\n198.51.100.3\n",
	}
	for name, body := range snapshots {
		if err := os.WriteFile(filepath.Join(feeds, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	nated := filepath.Join(dir, "nated.txt")
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dyn := filepath.Join(dir, "dynamic.txt")
	if err := os.WriteFile(dyn, []byte("198.51.100.0/24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pfxPath := filepath.Join(dir, "pfx2as.txt")
	tbl := pfx2as.New()
	tbl.Add(iputil.MustParsePrefix("203.0.113.0/24"), 64500)
	tbl.Add(iputil.MustParsePrefix("198.51.100.0/24"), 64501)
	pf, err := os.Create(pfxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := pfx2as.Write(pf, tbl); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	code := run([]string{
		"-feeds", feeds, "-nated", nated, "-dynamic", dyn, "-pfx2as", pfxPath, "-workers", "1",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("analysis exited %d\nstderr: %s", code, errb.String())
	}
	for _, want := range []string{
		"loaded 2 observation days",
		"loaded 1 NATed addresses",
		"loaded 1 dynamic prefixes",
		"Reuse summary",
		"NATed listings",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
