// Command blanalyze runs the paper's reuse analysis over on-disk datasets —
// the workflow of an operator or researcher who has collected real data:
//
//   - a directory of daily blocklist snapshots ("<feed>_<YYYY-MM-DD>.txt",
//     plain format — what cmd/blgen emits and a feed scraper would produce);
//   - a NATed-address list from the crawler (plain addresses, or
//     "addr<TAB>users" lines from blcrawl/Replay);
//   - a dynamic-prefix list from the RIPE pipeline (one CIDR per line);
//   - optionally a pfx2as snapshot for per-AS aggregation (Fig 3).
//
// It prints Figures 3 and 5–8 plus the headline counts.
//
// Usage:
//
//	blanalyze -feeds DIR -nated FILE -dynamic FILE [-pfx2as FILE] [-workers N]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/reuseblock/reuseblock/internal/analysis"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/pfx2as"
	"github.com/reuseblock/reuseblock/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exit code and streams surfaced so tests can drive the
// command in-process: 0 on success (including -h), 2 on flag errors, 1 on
// runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blanalyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		feedsDir = fs.String("feeds", "", "directory of daily feed snapshots (required)")
		natedF   = fs.String("nated", "", "NATed address list (plain, or 'addr<TAB>users')")
		dynF     = fs.String("dynamic", "", "dynamic prefix list (one CIDR per line)")
		pfxF     = fs.String("pfx2as", "", "pfx2as snapshot for per-AS aggregation")
		workers  = fs.Int("workers", 0, "worker goroutines for the sharded joins (0 = GOMAXPROCS, 1 = sequential)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *feedsDir == "" {
		fmt.Fprintln(stderr, "blanalyze: -feeds is required")
		return 1
	}
	if err := analyze(*feedsDir, *natedF, *dynF, *pfxF, *workers, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "blanalyze:", err)
		return 1
	}
	return 0
}

func analyze(feedsDir, natedF, dynF, pfxF string, workers int, stdout, stderr io.Writer) error {
	registry := blocklist.StandardRegistry()
	col, skipped, err := blocklist.LoadSnapshotDir(feedsDir, registry)
	if err != nil {
		return err
	}
	if len(skipped) > 0 {
		fmt.Fprintf(stderr, "skipped %d files with unknown feeds or bad names\n", len(skipped))
	}
	fmt.Fprintf(stdout, "loaded %d observation days, %d blocklisted addresses\n",
		len(col.Days()), col.AllAddrs().Len())

	natUsers := map[iputil.Addr]int{}
	if natedF != "" {
		f, ferr := os.Open(natedF)
		if ferr != nil {
			return ferr
		}
		natUsers, err = blocklist.ParseNATedList(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded %d NATed addresses\n", len(natUsers))
	}
	dynPrefixes := iputil.NewPrefixSet()
	if dynF != "" {
		f, ferr := os.Open(dynF)
		if ferr != nil {
			return ferr
		}
		dynPrefixes, err = blocklist.ParsePrefixList(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loaded %d dynamic prefixes\n", dynPrefixes.Len())
	}
	asnOf := func(iputil.Addr) (int, bool) { return 0, false }
	if pfxF != "" {
		f, ferr := os.Open(pfxF)
		if ferr != nil {
			return ferr
		}
		tbl, perr := pfx2as.Parse(bufio.NewReader(f))
		f.Close()
		if perr != nil {
			return perr
		}
		asnOf = tbl.ASNOf
		fmt.Fprintf(stdout, "loaded %d pfx2as entries\n", tbl.Len())
	}

	in := &analysis.Inputs{
		Collection:      col,
		NATUsers:        natUsers,
		DynamicPrefixes: dynPrefixes,
		RIPEPrefixes:    dynPrefixes, // best available coverage proxy on disk datasets
		ASNOf:           asnOf,
		Workers:         workers,
	}

	per := analysis.ComputePerListReuse(in)
	dur := analysis.ComputeDurations(in)
	users := analysis.ComputeNATUsers(in)

	fmt.Fprintln(stdout)
	sum := stats.NewTable("Reuse summary", "Quantity", "Value")
	sum.AddRow("NATed listings", fmt.Sprint(per.NATedListings))
	sum.AddRow("dynamic listings", fmt.Sprint(per.DynamicListings))
	sum.AddRow("NATed addresses listed", fmt.Sprint(per.NATedAddrs))
	sum.AddRow("dynamic addresses listed", fmt.Sprint(per.DynamicAddrs))
	sum.AddRow("feeds without NATed", fmt.Sprint(per.FeedsWithoutNATed))
	sum.AddRow("feeds without dynamic", fmt.Sprint(per.FeedsWithoutDynamic))
	sum.AddRow("mean days listed (all)", fmt.Sprintf("%.1f", dur.AllMean))
	sum.AddRow("mean days listed (NATed)", fmt.Sprintf("%.1f", dur.NATedMean))
	sum.AddRow("mean days listed (dynamic)", fmt.Sprintf("%.1f", dur.DynamicMean))
	sum.AddRow("max users behind a listed IP", fmt.Sprint(users.Max))
	fmt.Fprint(stdout, sum.Render())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, per.Figure5().Render())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, per.Figure6().Render())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, dur.Figure7().Render())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, users.Figure8().Render())
	if pfxF != "" {
		o := analysis.ComputeASOverlap(in)
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, o.Figure3().Render())
	}
	return nil
}
