// Command blanalyze runs the paper's reuse analysis over on-disk datasets —
// the workflow of an operator or researcher who has collected real data:
//
//   - a directory of daily blocklist snapshots ("<feed>_<YYYY-MM-DD>.txt",
//     plain format — what cmd/blgen emits and a feed scraper would produce);
//   - a NATed-address list from the crawler (plain addresses, or
//     "addr<TAB>users" lines from blcrawl/Replay);
//   - a dynamic-prefix list from the RIPE pipeline (one CIDR per line);
//   - optionally a pfx2as snapshot for per-AS aggregation (Fig 3).
//
// It prints Figures 3 and 5–8 plus the headline counts.
//
// Usage:
//
//	blanalyze -feeds DIR -nated FILE -dynamic FILE [-pfx2as FILE] [-workers N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/reuseblock/reuseblock/internal/analysis"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/pfx2as"
	"github.com/reuseblock/reuseblock/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("blanalyze: ")
	var (
		feedsDir = flag.String("feeds", "", "directory of daily feed snapshots (required)")
		natedF   = flag.String("nated", "", "NATed address list (plain, or 'addr<TAB>users')")
		dynF     = flag.String("dynamic", "", "dynamic prefix list (one CIDR per line)")
		pfxF     = flag.String("pfx2as", "", "pfx2as snapshot for per-AS aggregation")
		workers  = flag.Int("workers", 0, "worker goroutines for the sharded joins (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()
	if *feedsDir == "" {
		log.Fatal("-feeds is required")
	}

	registry := blocklist.StandardRegistry()
	col, skipped, err := blocklist.LoadSnapshotDir(*feedsDir, registry)
	if err != nil {
		log.Fatal(err)
	}
	if len(skipped) > 0 {
		fmt.Fprintf(os.Stderr, "skipped %d files with unknown feeds or bad names\n", len(skipped))
	}
	fmt.Printf("loaded %d observation days, %d blocklisted addresses\n",
		len(col.Days()), col.AllAddrs().Len())

	natUsers := map[iputil.Addr]int{}
	if *natedF != "" {
		f, ferr := os.Open(*natedF)
		if ferr != nil {
			log.Fatal(ferr)
		}
		natUsers, err = blocklist.ParseNATedList(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d NATed addresses\n", len(natUsers))
	}
	dynPrefixes := iputil.NewPrefixSet()
	if *dynF != "" {
		f, ferr := os.Open(*dynF)
		if ferr != nil {
			log.Fatal(ferr)
		}
		dynPrefixes, err = blocklist.ParsePrefixList(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d dynamic prefixes\n", dynPrefixes.Len())
	}
	asnOf := func(iputil.Addr) (int, bool) { return 0, false }
	if *pfxF != "" {
		f, err := os.Open(*pfxF)
		if err != nil {
			log.Fatal(err)
		}
		tbl, perr := pfx2as.Parse(bufio.NewReader(f))
		f.Close()
		if perr != nil {
			log.Fatal(perr)
		}
		asnOf = tbl.ASNOf
		fmt.Printf("loaded %d pfx2as entries\n", tbl.Len())
	}

	in := &analysis.Inputs{
		Collection:      col,
		NATUsers:        natUsers,
		DynamicPrefixes: dynPrefixes,
		RIPEPrefixes:    dynPrefixes, // best available coverage proxy on disk datasets
		ASNOf:           asnOf,
		Workers:         *workers,
	}

	per := analysis.ComputePerListReuse(in)
	dur := analysis.ComputeDurations(in)
	users := analysis.ComputeNATUsers(in)

	fmt.Println()
	sum := stats.NewTable("Reuse summary", "Quantity", "Value")
	sum.AddRow("NATed listings", fmt.Sprint(per.NATedListings))
	sum.AddRow("dynamic listings", fmt.Sprint(per.DynamicListings))
	sum.AddRow("NATed addresses listed", fmt.Sprint(per.NATedAddrs))
	sum.AddRow("dynamic addresses listed", fmt.Sprint(per.DynamicAddrs))
	sum.AddRow("feeds without NATed", fmt.Sprint(per.FeedsWithoutNATed))
	sum.AddRow("feeds without dynamic", fmt.Sprint(per.FeedsWithoutDynamic))
	sum.AddRow("mean days listed (all)", fmt.Sprintf("%.1f", dur.AllMean))
	sum.AddRow("mean days listed (NATed)", fmt.Sprintf("%.1f", dur.NATedMean))
	sum.AddRow("mean days listed (dynamic)", fmt.Sprintf("%.1f", dur.DynamicMean))
	sum.AddRow("max users behind a listed IP", fmt.Sprint(users.Max))
	fmt.Print(sum.Render())
	fmt.Println()
	fmt.Print(per.Figure5().Render())
	fmt.Println()
	fmt.Print(per.Figure6().Render())
	fmt.Println()
	fmt.Print(dur.Figure7().Render())
	fmt.Println()
	fmt.Print(users.Figure8().Render())
	if *pfxF != "" {
		o := analysis.ComputeASOverlap(in)
		fmt.Println()
		fmt.Print(o.Figure3().Render())
	}
}
