// Command blserve serves a reused-address dataset over HTTP — the release
// form of the paper's published list. Point it at the files the pipeline
// produces (blcrawl -out / -replay output and bldetect -prefixes-out), or
// let it generate a synthetic study's list.
//
// Usage:
//
//	blserve -nated FILE -dynamic FILE [-addr :8080]
//	blserve -generate [-seed N] [-scale F] [-addr :8080] [-pprof]
//
// Endpoints: /v1/check?ip=A.B.C.D, /v1/list, /v1/prefixes, /v1/stats, plus
// observability: /metrics (Prometheus text; with -generate it carries the
// study's deterministic counters alongside live request counts),
// /debug/manifest (the run manifest JSON), and — behind -pprof —
// /debug/pprof/.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/reuseapi"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// serveOptions carries the parsed flags into dataset construction.
type serveOptions struct {
	natedF, dynF string
	generate     bool
	seed         int64
	scale        float64
}

// run is main with its exit code and streams surfaced so tests can drive the
// command in-process: 0 on success (including -h), 2 on flag errors, 1 on
// runtime failures. The blocking ListenAndServe stays here; tests cover the
// flag handling through run and the dataset paths through buildDataset.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		natedF   = fs.String("nated", "", "NATed address list (plain or 'addr<TAB>users')")
		dynF     = fs.String("dynamic", "", "dynamic prefix list (one CIDR per line)")
		generate = fs.Bool("generate", false, "run a synthetic study instead of loading files")
		seed     = fs.Int64("seed", 1, "seed for -generate")
		scale    = fs.Float64("scale", 0.25, "world scale for -generate")
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		pprofOn  = fs.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	opts := serveOptions{natedF: *natedF, dynF: *dynF, generate: *generate, seed: *seed, scale: *scale}
	data, reg, manifest, err := buildDataset(opts)
	if err != nil {
		fmt.Fprintln(stderr, "blserve:", err)
		return 1
	}

	srv := reuseapi.NewServer(data)
	srv.Obs = reg
	srv.EnablePprof = *pprofOn
	// Serve the manifest with a live metric snapshot so request counters
	// accumulated since startup are visible too.
	srv.Manifest = func() *obs.Manifest {
		m := *manifest
		m.Metrics = reg.Snapshot(true)
		return &m
	}
	fmt.Fprintf(stdout, "serving %d NATed addresses and %d dynamic prefixes on http://%s\n",
		len(data.NATUsers), data.DynamicPrefixes.Len(), *addr)
	fmt.Fprintf(stdout, "try: curl 'http://%s/v1/stats' or 'http://%s/metrics'\n", *addr, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(stderr, "blserve:", err)
		return 1
	}
	return 0
}

// buildDataset assembles the dataset to serve, either from on-disk lists or
// from a fresh synthetic study.
func buildDataset(opts serveOptions) (*reuseapi.Dataset, *obs.Registry, *obs.Manifest, error) {
	reg := obs.NewRegistry()
	manifest := obs.NewManifest()
	data := &reuseapi.Dataset{
		NATUsers:        map[iputil.Addr]int{},
		DynamicPrefixes: iputil.NewPrefixSet(),
		Generated:       time.Now().UTC(),
	}
	switch {
	case opts.generate:
		wp := blgen.DefaultParams(opts.seed)
		wp.Scale = opts.scale
		study := core.NewStudy(core.Config{Seed: opts.seed, World: &wp, SkipICMP: true, Obs: reg})
		if _, err := study.Run(); err != nil {
			return nil, nil, nil, err
		}
		for _, o := range study.NATed {
			data.NATUsers[o.Addr] = o.Users
		}
		data.DynamicPrefixes = study.RIPE.DynamicPrefixes
		manifest = study.Manifest()
	case opts.natedF != "" || opts.dynF != "":
		if opts.natedF != "" {
			f, err := os.Open(opts.natedF)
			if err != nil {
				return nil, nil, nil, err
			}
			data.NATUsers, err = blocklist.ParseNATedList(f)
			f.Close()
			if err != nil {
				return nil, nil, nil, err
			}
		}
		if opts.dynF != "" {
			f, err := os.Open(opts.dynF)
			if err != nil {
				return nil, nil, nil, err
			}
			data.DynamicPrefixes, err = blocklist.ParsePrefixList(f)
			f.Close()
			if err != nil {
				return nil, nil, nil, err
			}
		}
	default:
		return nil, nil, nil, errors.New("provide -nated/-dynamic files or -generate")
	}
	return data, reg, manifest, nil
}
