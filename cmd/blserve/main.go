// Command blserve serves a reused-address dataset over HTTP — the release
// form of the paper's published list. Point it at the files the pipeline
// produces (blcrawl -out / -replay output and bldetect -prefixes-out), or
// let it generate a synthetic study's list.
//
// Usage:
//
//	blserve -nated FILE -dynamic FILE [-addr :8080] [-watch] [-dataset-faults NAME]
//	blserve -generate [-seed N] [-scale F] [-addr :8080] [-pprof]
//
// Endpoints: /v1/check?ip=A.B.C.D (GET) and batch POST /v1/check, /v1/list,
// /v1/prefixes, /v1/stats, plus observability: /metrics (Prometheus text;
// with -generate it carries the study's deterministic counters alongside
// live request counts and per-endpoint latency histograms), /debug/manifest
// (the run manifest JSON, including live serving/reload status), and —
// behind -pprof — /debug/pprof/.
//
// The server is hardened for real traffic: read/write/idle timeouts bound
// slow clients, -watch polls the input files and atomically swaps in a
// freshly compiled dataset when they change, and SIGINT/SIGTERM drain
// in-flight requests for up to -shutdown-grace before exiting.
//
// -shed turns on overload resilience (internal/shed): per-class admission
// gates with CoDel-style load shedding, optional per-client rate limiting
// (-shed-rate), and degraded-mode serving observable at /readyz — under
// sustained overload or a failed -watch reload the server sheds expensive
// work and reports not-ready so load balancers drain it. Off by default:
// without -shed every response is byte-identical to earlier builds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/reuseapi"
	"github.com/reuseblock/reuseblock/internal/shed"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// serveOptions carries the parsed flags into dataset construction and server
// hardening.
type serveOptions struct {
	natedF, dynF string
	generate     bool
	seed         int64
	scale        float64

	watch         bool
	watchInterval time.Duration

	readTimeout   time.Duration
	writeTimeout  time.Duration
	idleTimeout   time.Duration
	shutdownGrace time.Duration
}

// run is main with signal handling attached: SIGINT/SIGTERM trigger the
// graceful drain in runCtx.
func run(args []string, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, stdout, stderr)
}

// runCtx is run with the lifetime surfaced so tests can drive the server
// in-process and shut it down deterministically: 0 on success (including -h
// and a clean shutdown), 2 on flag errors, 1 on runtime failures.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		natedF   = fs.String("nated", "", "NATed address list (plain or 'addr<TAB>users')")
		dynF     = fs.String("dynamic", "", "dynamic prefix list (one CIDR per line)")
		generate = fs.Bool("generate", false, "run a synthetic study instead of loading files")
		seed     = fs.Int64("seed", 1, "seed for -generate")
		scale    = fs.Float64("scale", 0.25, "world scale for -generate")
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		pprofOn  = fs.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints")

		watch         = fs.Bool("watch", false, "poll the -nated/-dynamic files and hot-reload the dataset on change")
		watchInterval = fs.Duration("watch-interval", 2*time.Second, "poll interval for -watch")
		datasetFaults = fs.String("dataset-faults", "", "fault scenario the served dataset was crawled under (provenance label surfaced in /debug/manifest)")

		shedOn         = fs.Bool("shed", false, "enable overload resilience: admission control, load shedding, degraded mode, /healthz + /readyz")
		shedCheap      = fs.Int("shed-cheap-concurrency", 256, "concurrent requests admitted on the cheap class (single checks, stats)")
		shedHeavy      = fs.Int("shed-heavy-concurrency", 32, "concurrent requests admitted on the heavy class (list, prefixes, batch checks)")
		shedQueue      = fs.Int("shed-queue", 128, "waiters allowed per class before arrivals are shed outright")
		shedTarget     = fs.Duration("shed-target", 5*time.Millisecond, "queue-sojourn target; sustained waits above it trigger CoDel shedding")
		shedInterval   = fs.Duration("shed-interval", 100*time.Millisecond, "how long sojourn must exceed the target before shedding starts")
		shedMaxWait    = fs.Duration("shed-max-wait", 50*time.Millisecond, "hard cap on any request's wait for an admission slot")
		shedRate       = fs.Float64("shed-rate", 0, "per-client token refill rate in requests/second (0 disables rate limiting)")
		shedBurst      = fs.Int("shed-burst", 0, "per-client token bucket size (default 2x -shed-rate)")
		shedPrefixBits = fs.Int("shed-client-prefix-bits", 32, "aggregate client keys to this prefix length (one CGNAT pool, one budget)")
		shedForwarded  = fs.Bool("shed-trust-forwarded", false, "key clients by the first X-Forwarded-For hop (only behind a trusted load balancer)")
		shedClients    = fs.Int("shed-max-clients", 4096, "LRU bound on tracked rate-limit clients")
		shedDegrade    = fs.Duration("shed-degrade-after", time.Second, "sustained overload before the server enters degraded mode")
		shedRecover    = fs.Duration("shed-recover-after", 2*time.Second, "sustained calm before a degraded server recovers")
		shedRetryAfter = fs.Duration("shed-retry-after", time.Second, "Retry-After delay advertised on shed and rate-limited responses")
		shedBatch      = fs.Int("shed-degraded-batch", 256, "batch-check size clamp while degraded")

		readTimeout   = fs.Duration("read-timeout", 10*time.Second, "per-connection read (and header) timeout")
		writeTimeout  = fs.Duration("write-timeout", 30*time.Second, "per-response write timeout")
		idleTimeout   = fs.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
		shutdownGrace = fs.Duration("shutdown-grace", 5*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	opts := serveOptions{
		natedF: *natedF, dynF: *dynF, generate: *generate, seed: *seed, scale: *scale,
		watch: *watch, watchInterval: *watchInterval,
		readTimeout: *readTimeout, writeTimeout: *writeTimeout,
		idleTimeout: *idleTimeout, shutdownGrace: *shutdownGrace,
	}
	if opts.watch && (opts.generate || (opts.natedF == "" && opts.dynF == "")) {
		fmt.Fprintln(stderr, "blserve: -watch needs -nated/-dynamic files to poll")
		return 1
	}
	data, reg, manifest, err := buildDataset(opts)
	if err != nil {
		fmt.Fprintln(stderr, "blserve:", err)
		return 1
	}
	if *datasetFaults != "" {
		// Crawl provenance travels with the dataset: a list collected under
		// a fault scenario says so in its manifest, even though the files
		// themselves carry no such metadata.
		manifest.FaultScenario = *datasetFaults
	}

	srv := reuseapi.NewServer(data)
	srv.Obs = reg
	srv.EnablePprof = *pprofOn
	var ctrl *shed.Controller
	if *shedOn {
		ctrl = shed.New(shed.Config{
			CheapConcurrency: *shedCheap, HeavyConcurrency: *shedHeavy, QueueLimit: *shedQueue,
			Target: *shedTarget, Interval: *shedInterval, MaxWait: *shedMaxWait,
			RatePerClient: *shedRate, Burst: *shedBurst,
			ClientPrefixBits: *shedPrefixBits, TrustForwarded: *shedForwarded, MaxClients: *shedClients,
			DegradeAfter: *shedDegrade, RecoverAfter: *shedRecover, RetryAfter: *shedRetryAfter,
			DegradedMaxBatchIPs: *shedBatch,
		}, reg)
		srv.Shed = ctrl
	}

	rel := newReloader(opts, srv, reg, ctrl, data.Generated)
	// Serve the manifest with a live metric snapshot and the reload status
	// so request counters and dataset swaps since startup are visible too.
	srv.Manifest = func() *obs.Manifest {
		m := *manifest
		m.Metrics = reg.Snapshot(true)
		m.Serving = rel.status()
		if ctrl != nil {
			m.Serving.Overload = ctrl.Status()
		}
		return &m
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "blserve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "serving %d NATed addresses and %d dynamic prefixes on http://%s\n",
		len(data.NATUsers), data.DynamicPrefixes.Len(), ln.Addr())
	fmt.Fprintf(stdout, "try: curl 'http://%s/v1/stats' or 'http://%s/metrics'\n", ln.Addr(), ln.Addr())

	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	if opts.watch {
		go rel.watch(watchCtx)
	}

	httpSrv := newHTTPServer(srv.Handler(), opts)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "blserve:", err)
			return 1
		}
	case <-ctx.Done():
		drain, cancel := context.WithTimeout(context.Background(), opts.shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(drain); err != nil {
			// Stragglers past the grace window get cut off.
			_ = httpSrv.Close()
		}
		fmt.Fprintln(stdout, "blserve: shutdown complete")
	}
	return 0
}

// newHTTPServer wraps the handler in an http.Server hardened against slow
// clients: a connection that dribbles its headers, stalls mid-body, or sits
// idle past the keep-alive window is closed instead of holding a goroutine
// and file descriptor forever.
func newHTTPServer(h http.Handler, opts serveOptions) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadTimeout:       opts.readTimeout,
		ReadHeaderTimeout: opts.readTimeout,
		WriteTimeout:      opts.writeTimeout,
		IdleTimeout:       opts.idleTimeout,
	}
}

// reloader polls the input files and swaps a freshly compiled dataset into
// the server when they change — the hot-reload path behind -watch.
type reloader struct {
	opts    serveOptions
	srv     *reuseapi.Server
	reloads *obs.Counter
	// shed, when non-nil, is degraded immediately on a failed reload (the
	// served snapshot is stale) and allowed to recover once a reload lands.
	shed *shed.Controller

	mu     sync.Mutex
	st     obs.ServingStatus
	mtimes map[string]fileStamp
}

// fileStamp is the change signature of one watched file.
type fileStamp struct {
	mtime time.Time
	size  int64
}

func newReloader(opts serveOptions, srv *reuseapi.Server, reg *obs.Registry, ctrl *shed.Controller, generated time.Time) *reloader {
	r := &reloader{
		opts:    opts,
		srv:     srv,
		reloads: reg.Counter(obs.WallPrefix + "dataset_reloads_total"),
		shed:    ctrl,
		mtimes:  map[string]fileStamp{},
	}
	r.st.Watching = opts.watch
	r.st.DatasetGenerated = generated
	// Record the startup stamps so the first poll doesn't spuriously reload.
	for _, f := range r.watchedFiles() {
		if fi, err := os.Stat(f); err == nil {
			r.mtimes[f] = fileStamp{mtime: fi.ModTime(), size: fi.Size()}
		}
	}
	return r
}

func (r *reloader) watchedFiles() []string {
	var out []string
	if r.opts.natedF != "" {
		out = append(out, r.opts.natedF)
	}
	if r.opts.dynF != "" {
		out = append(out, r.opts.dynF)
	}
	return out
}

// watch polls until ctx is cancelled.
func (r *reloader) watch(ctx context.Context) {
	ticker := time.NewTicker(r.opts.watchInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.checkOnce()
		}
	}
}

// checkOnce stats the watched files and reloads when any changed. A failed
// reload (file mid-rewrite, malformed content) keeps the old dataset serving
// and surfaces the error in the manifest; the next tick retries.
func (r *reloader) checkOnce() {
	changed := false
	stamps := map[string]fileStamp{}
	for _, f := range r.watchedFiles() {
		fi, err := os.Stat(f)
		if err != nil {
			r.setError(fmt.Errorf("stat %s: %w", f, err))
			return
		}
		stamp := fileStamp{mtime: fi.ModTime(), size: fi.Size()}
		stamps[f] = stamp
		r.mu.Lock()
		if r.mtimes[f] != stamp {
			changed = true
		}
		r.mu.Unlock()
	}
	if !changed {
		return
	}
	data, err := loadFiles(r.opts)
	if err != nil {
		r.setError(err)
		return
	}
	r.srv.Update(data)
	r.reloads.Inc()
	if r.shed != nil {
		r.shed.SetReloadFailed(false)
	}
	r.mu.Lock()
	for f, s := range stamps {
		r.mtimes[f] = s
	}
	r.st.Reloads++
	r.st.LastReload = time.Now().UTC()
	r.st.LastError = ""
	r.st.DatasetGenerated = data.Generated
	r.mu.Unlock()
}

func (r *reloader) setError(err error) {
	r.mu.Lock()
	r.st.LastError = err.Error()
	r.mu.Unlock()
	if r.shed != nil {
		r.shed.SetReloadFailed(true)
	}
}

// status returns a copy for the manifest.
func (r *reloader) status() *obs.ServingStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.st
	return &st
}

// buildDataset assembles the dataset to serve, either from on-disk lists or
// from a fresh synthetic study.
func buildDataset(opts serveOptions) (*reuseapi.Dataset, *obs.Registry, *obs.Manifest, error) {
	reg := obs.NewRegistry()
	manifest := obs.NewManifest()
	switch {
	case opts.generate:
		wp := blgen.DefaultParams(opts.seed)
		wp.Scale = opts.scale
		study := core.NewStudy(core.Config{Seed: opts.seed, World: &wp, SkipICMP: true, Obs: reg})
		if _, err := study.Run(); err != nil {
			return nil, nil, nil, err
		}
		data := &reuseapi.Dataset{
			NATUsers:        map[iputil.Addr]int{},
			DynamicPrefixes: study.RIPE.DynamicPrefixes,
			Generated:       time.Now().UTC(),
		}
		for _, o := range study.NATed {
			data.NATUsers[o.Addr] = o.Users
		}
		return data, reg, study.Manifest(), nil
	case opts.natedF != "" || opts.dynF != "":
		data, err := loadFiles(opts)
		if err != nil {
			return nil, nil, nil, err
		}
		return data, reg, manifest, nil
	default:
		return nil, nil, nil, errors.New("provide -nated/-dynamic files or -generate")
	}
}

// loadFiles reads the on-disk lists into a dataset — the path shared by
// startup and every -watch reload.
func loadFiles(opts serveOptions) (*reuseapi.Dataset, error) {
	data := &reuseapi.Dataset{
		NATUsers:        map[iputil.Addr]int{},
		DynamicPrefixes: iputil.NewPrefixSet(),
		Generated:       time.Now().UTC(),
	}
	if opts.natedF != "" {
		f, err := os.Open(opts.natedF)
		if err != nil {
			return nil, err
		}
		data.NATUsers, err = blocklist.ParseNATedList(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	if opts.dynF != "" {
		f, err := os.Open(opts.dynF)
		if err != nil {
			return nil, err
		}
		data.DynamicPrefixes, err = blocklist.ParsePrefixList(f)
		f.Close()
		if err != nil {
			return nil, err
		}
	}
	return data, nil
}
