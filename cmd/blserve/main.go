// Command blserve serves a reused-address dataset over HTTP — the release
// form of the paper's published list. Point it at the files the pipeline
// produces (blcrawl -out / -replay output and bldetect -prefixes-out), or
// let it generate a synthetic study's list.
//
// Usage:
//
//	blserve -nated FILE -dynamic FILE [-addr :8080]
//	blserve -generate [-seed N] [-scale F] [-addr :8080] [-pprof]
//
// Endpoints: /v1/check?ip=A.B.C.D, /v1/list, /v1/prefixes, /v1/stats, plus
// observability: /metrics (Prometheus text; with -generate it carries the
// study's deterministic counters alongside live request counts),
// /debug/manifest (the run manifest JSON), and — behind -pprof —
// /debug/pprof/.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/reuseapi"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("blserve: ")
	var (
		natedF   = flag.String("nated", "", "NATed address list (plain or 'addr<TAB>users')")
		dynF     = flag.String("dynamic", "", "dynamic prefix list (one CIDR per line)")
		generate = flag.Bool("generate", false, "run a synthetic study instead of loading files")
		seed     = flag.Int64("seed", 1, "seed for -generate")
		scale    = flag.Float64("scale", 0.25, "world scale for -generate")
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address")
		pprofOn  = flag.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	manifest := obs.NewManifest()
	data := &reuseapi.Dataset{
		NATUsers:        map[iputil.Addr]int{},
		DynamicPrefixes: iputil.NewPrefixSet(),
		Generated:       time.Now().UTC(),
	}
	switch {
	case *generate:
		wp := blgen.DefaultParams(*seed)
		wp.Scale = *scale
		study := core.NewStudy(core.Config{Seed: *seed, World: &wp, SkipICMP: true, Obs: reg})
		if _, err := study.Run(); err != nil {
			log.Fatal(err)
		}
		for _, o := range study.NATed {
			data.NATUsers[o.Addr] = o.Users
		}
		data.DynamicPrefixes = study.RIPE.DynamicPrefixes
		manifest = study.Manifest()
	case *natedF != "" || *dynF != "":
		if *natedF != "" {
			f, err := os.Open(*natedF)
			if err != nil {
				log.Fatal(err)
			}
			data.NATUsers, err = blocklist.ParseNATedList(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
		}
		if *dynF != "" {
			f, err := os.Open(*dynF)
			if err != nil {
				log.Fatal(err)
			}
			data.DynamicPrefixes, err = blocklist.ParsePrefixList(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
		}
	default:
		log.Fatal("provide -nated/-dynamic files or -generate")
	}

	srv := reuseapi.NewServer(data)
	srv.Obs = reg
	srv.EnablePprof = *pprofOn
	// Serve the manifest with a live metric snapshot so request counters
	// accumulated since startup are visible too.
	srv.Manifest = func() *obs.Manifest {
		m := *manifest
		m.Metrics = reg.Snapshot(true)
		return &m
	}
	fmt.Printf("serving %d NATed addresses and %d dynamic prefixes on http://%s\n",
		len(data.NATUsers), data.DynamicPrefixes.Len(), *addr)
	fmt.Printf("try: curl 'http://%s/v1/stats' or 'http://%s/metrics'\n", *addr, *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
