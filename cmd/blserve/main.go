// Command blserve serves a reused-address dataset over HTTP — the release
// form of the paper's published list. Point it at the files the pipeline
// produces (blcrawl -out / -replay output and bldetect -prefixes-out), or
// let it generate a synthetic study's list.
//
// Usage:
//
//	blserve -nated FILE -dynamic FILE [-addr :8080] [-watch] [-dataset-faults NAME]
//	blserve -dataset NAME=NATED,DYN [-dataset NAME2=NATED2,DYN2 ...] [-watch]
//	blserve -generate [-seed N] [-scale F] [-addr :8080] [-pprof]
//
// Endpoints: /v1/check?ip=A.B.C.D (GET) and batch POST /v1/check, /v1/list,
// /v1/prefixes, /v1/stats, /v1/greylist?ip=A.B.C.D (the Section 6
// mitigation: recommended action + greylisting window per address), plus
// observability: /metrics (Prometheus text; with -generate it carries the
// study's deterministic counters alongside live request counts and
// per-endpoint latency histograms), /debug/manifest (the run manifest JSON,
// including live serving/reload status), and — behind -pprof — /debug/pprof/.
//
// -dataset (repeatable) serves several named datasets behind one listener:
// every endpoint is also available at /v1/NAME/..., the first -dataset is
// the default the unprefixed routes alias, and each dataset reloads (and,
// with -shed, sheds) independently. Either file in a spec may be empty
// ("pools=nated.txt," serves a NATed list with no dynamic prefixes).
//
// The server is hardened for real traffic: read/write/idle timeouts bound
// slow clients, -watch polls the input files and atomically swaps in a
// freshly compiled dataset when they change, and SIGINT/SIGTERM drain
// in-flight requests for up to -shutdown-grace before exiting. Reloads are
// incremental: the watcher diffs the re-parsed files against what is being
// served and applies the delta (reuseapi.ApplyDelta) when it is small,
// paying a full recompile only for wholesale replacements.
//
// -shed turns on overload resilience (internal/shed): per-class admission
// gates with CoDel-style load shedding, optional per-client rate limiting
// (-shed-rate), and degraded-mode serving observable at /readyz — under
// sustained overload or a failed -watch reload the server sheds expensive
// work and reports not-ready so load balancers drain it. Off by default:
// without -shed every response is byte-identical to earlier builds.
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/reuseapi"
	"github.com/reuseblock/reuseblock/internal/shed"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// serveOptions carries the parsed flags into dataset construction and server
// hardening.
type serveOptions struct {
	natedF, dynF string
	generate     bool
	seed         int64
	scale        float64

	datasets []datasetSpec

	watch         bool
	watchInterval time.Duration

	readTimeout   time.Duration
	writeTimeout  time.Duration
	idleTimeout   time.Duration
	shutdownGrace time.Duration
}

// datasetSpec is one -dataset flag: a named pair of input files.
type datasetSpec struct {
	name         string
	natedF, dynF string
}

// parseDatasetSpec parses "NAME=NATEDFILE,DYNFILE"; either file (not both)
// may be empty. Name validity is enforced by Registry.Register.
func parseDatasetSpec(v string) (datasetSpec, error) {
	name, files, ok := strings.Cut(v, "=")
	if !ok {
		return datasetSpec{}, fmt.Errorf("-dataset %q: want NAME=NATEDFILE,DYNFILE", v)
	}
	nated, dyn, _ := strings.Cut(files, ",")
	spec := datasetSpec{name: strings.TrimSpace(name),
		natedF: strings.TrimSpace(nated), dynF: strings.TrimSpace(dyn)}
	if spec.natedF == "" && spec.dynF == "" {
		return datasetSpec{}, fmt.Errorf("-dataset %q: at least one input file required", v)
	}
	return spec, nil
}

// run is main with signal handling attached: SIGINT/SIGTERM trigger the
// graceful drain in runCtx.
func run(args []string, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runCtx(ctx, args, stdout, stderr)
}

// runCtx is run with the lifetime surfaced so tests can drive the server
// in-process and shut it down deterministically: 0 on success (including -h
// and a clean shutdown), 2 on flag errors, 1 on runtime failures.
func runCtx(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		natedF   = fs.String("nated", "", "NATed address list (plain or 'addr<TAB>users')")
		dynF     = fs.String("dynamic", "", "dynamic prefix list (one CIDR per line)")
		generate = fs.Bool("generate", false, "run a synthetic study instead of loading files")
		seed     = fs.Int64("seed", 1, "seed for -generate")
		scale    = fs.Float64("scale", 0.25, "world scale for -generate")
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		pprofOn  = fs.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints")

		watch         = fs.Bool("watch", false, "poll the -nated/-dynamic files and hot-reload the dataset on change")
		watchInterval = fs.Duration("watch-interval", 2*time.Second, "poll interval for -watch")
		datasetFaults = fs.String("dataset-faults", "", "fault scenario the served dataset was crawled under (provenance label surfaced in /debug/manifest)")
	)
	var datasets []datasetSpec
	fs.Func("dataset", "serve a named dataset NAME=NATEDFILE,DYNFILE (repeatable; the first is the default the unprefixed /v1/* routes alias; either file may be empty)", func(v string) error {
		spec, err := parseDatasetSpec(v)
		if err != nil {
			return err
		}
		datasets = append(datasets, spec)
		return nil
	})
	var (

		shedOn         = fs.Bool("shed", false, "enable overload resilience: admission control, load shedding, degraded mode, /healthz + /readyz")
		shedCheap      = fs.Int("shed-cheap-concurrency", 256, "concurrent requests admitted on the cheap class (single checks, stats)")
		shedHeavy      = fs.Int("shed-heavy-concurrency", 32, "concurrent requests admitted on the heavy class (list, prefixes, batch checks)")
		shedQueue      = fs.Int("shed-queue", 128, "waiters allowed per class before arrivals are shed outright")
		shedTarget     = fs.Duration("shed-target", 5*time.Millisecond, "queue-sojourn target; sustained waits above it trigger CoDel shedding")
		shedInterval   = fs.Duration("shed-interval", 100*time.Millisecond, "how long sojourn must exceed the target before shedding starts")
		shedMaxWait    = fs.Duration("shed-max-wait", 50*time.Millisecond, "hard cap on any request's wait for an admission slot")
		shedRate       = fs.Float64("shed-rate", 0, "per-client token refill rate in requests/second (0 disables rate limiting)")
		shedBurst      = fs.Int("shed-burst", 0, "per-client token bucket size (default 2x -shed-rate)")
		shedPrefixBits = fs.Int("shed-client-prefix-bits", 32, "aggregate client keys to this prefix length (one CGNAT pool, one budget)")
		shedForwarded  = fs.Bool("shed-trust-forwarded", false, "key clients by the first X-Forwarded-For hop (only behind a trusted load balancer)")
		shedClients    = fs.Int("shed-max-clients", 4096, "LRU bound on tracked rate-limit clients")
		shedDegrade    = fs.Duration("shed-degrade-after", time.Second, "sustained overload before the server enters degraded mode")
		shedRecover    = fs.Duration("shed-recover-after", 2*time.Second, "sustained calm before a degraded server recovers")
		shedRetryAfter = fs.Duration("shed-retry-after", time.Second, "Retry-After delay advertised on shed and rate-limited responses")
		shedBatch      = fs.Int("shed-degraded-batch", 256, "batch-check size clamp while degraded")

		readTimeout   = fs.Duration("read-timeout", 10*time.Second, "per-connection read (and header) timeout")
		writeTimeout  = fs.Duration("write-timeout", 30*time.Second, "per-response write timeout")
		idleTimeout   = fs.Duration("idle-timeout", 120*time.Second, "keep-alive idle connection timeout")
		shutdownGrace = fs.Duration("shutdown-grace", 5*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	opts := serveOptions{
		natedF: *natedF, dynF: *dynF, generate: *generate, seed: *seed, scale: *scale,
		datasets: datasets,
		watch:    *watch, watchInterval: *watchInterval,
		readTimeout: *readTimeout, writeTimeout: *writeTimeout,
		idleTimeout: *idleTimeout, shutdownGrace: *shutdownGrace,
	}
	if len(datasets) > 0 && (opts.generate || opts.natedF != "" || opts.dynF != "") {
		fmt.Fprintln(stderr, "blserve: -dataset cannot be combined with -generate or -nated/-dynamic")
		return 1
	}
	if opts.watch && len(datasets) == 0 && (opts.generate || (opts.natedF == "" && opts.dynF == "")) {
		fmt.Fprintln(stderr, "blserve: -watch needs -nated/-dynamic files to poll")
		return 1
	}

	// shedConfig builds one admission controller per dataset (every dataset
	// gets its own gates, quotas and mode machine; a flood against one feed
	// must not degrade the others); nil when -shed is off.
	shedConfig := func(dataset string, reg *obs.Registry) *shed.Controller {
		if !*shedOn {
			return nil
		}
		return shed.New(shed.Config{
			CheapConcurrency: *shedCheap, HeavyConcurrency: *shedHeavy, QueueLimit: *shedQueue,
			Target: *shedTarget, Interval: *shedInterval, MaxWait: *shedMaxWait,
			RatePerClient: *shedRate, Burst: *shedBurst,
			ClientPrefixBits: *shedPrefixBits, TrustForwarded: *shedForwarded, MaxClients: *shedClients,
			DegradeAfter: *shedDegrade, RecoverAfter: *shedRecover, RetryAfter: *shedRetryAfter,
			DegradedMaxBatchIPs: *shedBatch,
			Dataset:             dataset,
		}, reg)
	}

	var (
		handler http.Handler
		rels    []*reloader
	)
	if len(datasets) > 0 {
		reg := obs.NewRegistry()
		manifest := obs.NewManifest()
		if *datasetFaults != "" {
			manifest.FaultScenario = *datasetFaults
		}
		registry := reuseapi.NewRegistry()
		registry.Obs = reg
		registry.EnablePprof = *pprofOn
		for i, spec := range datasets {
			data, stamps, err := loadDataset(spec.natedF, spec.dynF)
			if err != nil {
				fmt.Fprintf(stderr, "blserve: dataset %s: %v\n", spec.name, err)
				return 1
			}
			srv := reuseapi.NewServer(data)
			srv.Obs = reg
			srv.Shed = shedConfig(spec.name, reg)
			if err := registry.Register(spec.name, srv); err != nil {
				fmt.Fprintln(stderr, "blserve:", err)
				return 1
			}
			rels = append(rels, newReloader(spec.name, i == 0, spec.natedF, spec.dynF,
				opts.watch, opts.watchInterval, srv, reg, srv.Shed, data, stamps))
			fmt.Fprintf(stdout, "dataset %s: %d NATed addresses, %d dynamic prefixes%s\n",
				spec.name, len(data.NATUsers), data.DynamicPrefixes.Len(),
				map[bool]string{true: " (default)"}[i == 0])
		}
		allRels := rels
		registry.Manifest = func() *obs.Manifest {
			m := *manifest
			m.Metrics = reg.Snapshot(true)
			// Top-level serving block describes the default dataset (so
			// single-dataset manifest consumers keep working); the Datasets
			// slice carries every dataset's own lifecycle block.
			m.Serving = allRels[0].status()
			if c := allRels[0].shed; c != nil {
				m.Serving.Overload = c.Status()
			}
			for _, rel := range allRels {
				m.Serving.Datasets = append(m.Serving.Datasets, rel.datasetStatus())
			}
			return &m
		}
		handler = registry.Handler()
	} else {
		data, stamps, reg, manifest, err := buildDataset(opts)
		if err != nil {
			fmt.Fprintln(stderr, "blserve:", err)
			return 1
		}
		if *datasetFaults != "" {
			// Crawl provenance travels with the dataset: a list collected under
			// a fault scenario says so in its manifest, even though the files
			// themselves carry no such metadata.
			manifest.FaultScenario = *datasetFaults
		}

		srv := reuseapi.NewServer(data)
		srv.Obs = reg
		srv.EnablePprof = *pprofOn
		ctrl := shedConfig("", reg)
		srv.Shed = ctrl

		rel := newReloader("", true, opts.natedF, opts.dynF,
			opts.watch, opts.watchInterval, srv, reg, ctrl, data, stamps)
		rels = append(rels, rel)
		// Serve the manifest with a live metric snapshot and the reload status
		// so request counters and dataset swaps since startup are visible too.
		srv.Manifest = func() *obs.Manifest {
			m := *manifest
			m.Metrics = reg.Snapshot(true)
			m.Serving = rel.status()
			if ctrl != nil {
				m.Serving.Overload = ctrl.Status()
			}
			return &m
		}
		fmt.Fprintf(stdout, "serving %d NATed addresses and %d dynamic prefixes\n",
			len(data.NATUsers), data.DynamicPrefixes.Len())
		handler = srv.Handler()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "blserve:", err)
		return 1
	}
	fmt.Fprintf(stdout, "listening on http://%s\n", ln.Addr())
	fmt.Fprintf(stdout, "try: curl 'http://%s/v1/stats' or 'http://%s/metrics'\n", ln.Addr(), ln.Addr())

	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	if opts.watch {
		for _, rel := range rels {
			go rel.watch(watchCtx)
		}
	}

	httpSrv := newHTTPServer(handler, opts)
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "blserve:", err)
			return 1
		}
	case <-ctx.Done():
		drain, cancel := context.WithTimeout(context.Background(), opts.shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(drain); err != nil {
			// Stragglers past the grace window get cut off.
			_ = httpSrv.Close()
		}
		fmt.Fprintln(stdout, "blserve: shutdown complete")
	}
	return 0
}

// newHTTPServer wraps the handler in an http.Server hardened against slow
// clients: a connection that dribbles its headers, stalls mid-body, or sits
// idle past the keep-alive window is closed instead of holding a goroutine
// and file descriptor forever.
func newHTTPServer(h http.Handler, opts serveOptions) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadTimeout:       opts.readTimeout,
		ReadHeaderTimeout: opts.readTimeout,
		WriteTimeout:      opts.writeTimeout,
		IdleTimeout:       opts.idleTimeout,
	}
}

// reloader polls one dataset's input files and swaps a freshly compiled
// snapshot into its server when they change — the hot-reload path behind
// -watch. Reloads are incremental when the change is small: the re-parsed
// files are diffed against what is being served and the delta applied via
// reuseapi.ApplyDelta, so a few churned addresses don't pay a full
// recompile-and-recompress of a 100k-line list.
type reloader struct {
	name      string
	isDefault bool
	natedF    string
	dynF      string
	interval  time.Duration
	watching  bool

	srv          *reuseapi.Server
	reloads      *obs.Counter
	deltaReloads *obs.Counter
	// shed, when non-nil, is degraded immediately on a failed reload (the
	// served snapshot is stale) and allowed to recover once a reload lands.
	shed *shed.Controller

	mu       sync.Mutex
	st       obs.DatasetServingStatus
	stamps   map[string]fileStamp
	lastData *reuseapi.Dataset
}

// fileStamp is the change signature of one watched file. The content hash
// catches rewrites that preserve size and mtime (coarse filesystem
// timestamps, tools that restore mtime), which stat alone misses.
type fileStamp struct {
	mtime time.Time
	size  int64
	sum   [sha256.Size]byte
}

func newReloader(name string, isDefault bool, natedF, dynF string,
	watching bool, interval time.Duration,
	srv *reuseapi.Server, reg *obs.Registry, ctrl *shed.Controller,
	data *reuseapi.Dataset, stamps map[string]fileStamp) *reloader {
	counterName := func(base string) string {
		if name != "" {
			return obs.Name(base, "dataset", name)
		}
		return base
	}
	r := &reloader{
		name:      name,
		isDefault: isDefault,
		natedF:    natedF, dynF: dynF,
		interval: interval,
		watching: watching,
		srv:      srv,
		reloads:  reg.Counter(counterName(obs.WallPrefix + "dataset_reloads_total")),
		deltaReloads: reg.Counter(counterName(
			obs.WallPrefix + "dataset_delta_reloads_total")),
		shed:     ctrl,
		stamps:   stamps,
		lastData: data,
	}
	if r.stamps == nil {
		r.stamps = map[string]fileStamp{}
	}
	r.st.Name = name
	r.st.Default = isDefault
	if data != nil {
		r.st.Generated = data.Generated
	}
	return r
}

// watch polls until ctx is cancelled.
func (r *reloader) watch(ctx context.Context) {
	ticker := time.NewTicker(r.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			r.checkOnce()
		}
	}
}

// checkOnce re-reads the watched files and reloads when their content
// changed. Reads are guarded against concurrent rewrites: every file is
// stat'ed, read, then stat'ed again, and if any stamp moved between the two
// stats the whole attempt is abandoned silently — the writer is mid-rewrite
// and the next tick will see the settled result. A failed parse keeps the
// old dataset serving and surfaces the error in the manifest.
func (r *reloader) checkOnce() {
	data, stamps, err := loadDataset(r.natedF, r.dynF)
	if errors.Is(err, errInputsMoved) {
		return
	}
	if err != nil {
		r.setError(err)
		return
	}
	r.mu.Lock()
	changed := len(stamps) != len(r.stamps)
	for f, s := range stamps {
		if r.stamps[f] != s {
			changed = true
		}
	}
	last := r.lastData
	r.mu.Unlock()
	if !changed {
		return
	}

	// Diff against what is serving and pick the cheapest sound path: a
	// byte-identical rewrite keeps the compiled snapshot (and its ETags), a
	// small churn goes through the incremental delta compile, and wholesale
	// replacement pays the full recompile.
	delta := reuseapi.DiffDatasets(last, data)
	var appliedDelta bool
	switch {
	case delta.Empty():
		// Same content, new stamps: nothing to recompile, but it still
		// counts as a (trivially fast) reload so watchers of the reload
		// counter see the swap attempt land.
		data = last
	case 4*delta.Ops() <= len(last.NATUsers)+last.DynamicPrefixes.Len():
		r.srv.ApplyDelta(delta)
		appliedDelta = true
	default:
		r.srv.Update(data)
	}
	r.reloads.Inc()
	if appliedDelta {
		r.deltaReloads.Inc()
	}
	if r.shed != nil {
		r.shed.SetReloadFailed(false)
	}
	r.mu.Lock()
	r.stamps = stamps
	r.lastData = data
	r.st.Reloads++
	if appliedDelta {
		r.st.DeltaReloads++
	}
	r.st.LastReload = time.Now().UTC()
	r.st.LastError = ""
	r.st.Generated = data.Generated
	r.mu.Unlock()
}

func (r *reloader) setError(err error) {
	r.mu.Lock()
	r.st.LastError = err.Error()
	r.mu.Unlock()
	if r.shed != nil {
		r.shed.SetReloadFailed(true)
	}
}

// status returns the classic top-level serving block for the manifest.
func (r *reloader) status() *obs.ServingStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &obs.ServingStatus{
		Watching:         r.watching,
		Reloads:          r.st.Reloads,
		LastReload:       r.st.LastReload,
		LastError:        r.st.LastError,
		DatasetGenerated: r.st.Generated,
	}
}

// datasetStatus returns this dataset's own lifecycle block, sized from the
// live snapshot.
func (r *reloader) datasetStatus() obs.DatasetServingStatus {
	r.mu.Lock()
	st := r.st
	r.mu.Unlock()
	snap := r.srv.Snapshot()
	st.Generated = snap.Generated()
	st.NATedAddresses = snap.NATedAddresses()
	st.DynamicPrefixes = snap.DynamicPrefixes()
	if r.shed != nil {
		st.Overload = r.shed.Status()
	}
	return st
}

// buildDataset assembles the dataset to serve, either from on-disk lists or
// from a fresh synthetic study.
func buildDataset(opts serveOptions) (*reuseapi.Dataset, map[string]fileStamp, *obs.Registry, *obs.Manifest, error) {
	reg := obs.NewRegistry()
	manifest := obs.NewManifest()
	switch {
	case opts.generate:
		wp := blgen.DefaultParams(opts.seed)
		wp.Scale = opts.scale
		study := core.NewStudy(core.Config{Seed: opts.seed, World: &wp, SkipICMP: true, Obs: reg})
		if _, err := study.Run(); err != nil {
			return nil, nil, nil, nil, err
		}
		data := &reuseapi.Dataset{
			NATUsers:        map[iputil.Addr]int{},
			DynamicPrefixes: study.RIPE.DynamicPrefixes,
			Generated:       time.Now().UTC(),
		}
		for _, o := range study.NATed {
			data.NATUsers[o.Addr] = o.Users
		}
		return data, nil, reg, study.Manifest(), nil
	case opts.natedF != "" || opts.dynF != "":
		data, stamps, err := loadDataset(opts.natedF, opts.dynF)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return data, stamps, reg, manifest, nil
	default:
		return nil, nil, nil, nil, errors.New("provide -nated/-dynamic files or -generate")
	}
}

// errInputsMoved marks a load attempt that raced a concurrent rewrite of the
// input files: a file's stamp moved between the pre-read and post-read stats.
// The caller retries on the next tick rather than parsing a torn read.
var errInputsMoved = errors.New("input files changed during read")

// loadDataset reads the on-disk lists into a dataset — the path shared by
// startup and every -watch reload — and returns each file's change
// signature (mtime, size, content hash) taken at a moment the content is
// known to match: every file is stat'ed before and after its read, and a
// moved stamp fails the whole load with errInputsMoved.
func loadDataset(natedF, dynF string) (*reuseapi.Dataset, map[string]fileStamp, error) {
	var paths []string
	if natedF != "" {
		paths = append(paths, natedF)
	}
	if dynF != "" {
		paths = append(paths, dynF)
	}
	pre := make(map[string]os.FileInfo, len(paths))
	content := make(map[string][]byte, len(paths))
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return nil, nil, err
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return nil, nil, err
		}
		pre[p], content[p] = fi, b
	}
	stamps := make(map[string]fileStamp, len(paths))
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return nil, nil, err
		}
		if !fi.ModTime().Equal(pre[p].ModTime()) || fi.Size() != pre[p].Size() {
			return nil, nil, fmt.Errorf("%w: %s", errInputsMoved, p)
		}
		stamps[p] = fileStamp{
			mtime: fi.ModTime(), size: fi.Size(), sum: sha256.Sum256(content[p]),
		}
	}
	data := &reuseapi.Dataset{
		NATUsers:        map[iputil.Addr]int{},
		DynamicPrefixes: iputil.NewPrefixSet(),
		Generated:       time.Now().UTC(),
	}
	var err error
	if natedF != "" {
		data.NATUsers, err = blocklist.ParseNATedList(bytes.NewReader(content[natedF]))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", natedF, err)
		}
	}
	if dynF != "" {
		data.DynamicPrefixes, err = blocklist.ParsePrefixList(bytes.NewReader(content[dynF]))
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", dynF, err)
		}
	}
	return data, stamps, nil
}
