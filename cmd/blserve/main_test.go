package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/reuseblock/reuseblock/internal/reuseapi"
)

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of blserve") {
		t.Fatalf("-h did not print usage:\n%s", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestRunNoSource(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("no data source exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "provide -nated/-dynamic files or -generate") {
		t.Fatalf("error not reported:\n%s", errb.String())
	}
}

// TestBuildDatasetFromFiles covers the load path run blocks on ListenAndServe
// for: the dataset must contain exactly the listed addresses and prefixes,
// and the assembled handler must answer /v1/check.
func TestBuildDatasetFromFiles(t *testing.T) {
	dir := t.TempDir()
	nated := filepath.Join(dir, "nated.txt")
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dyn := filepath.Join(dir, "dynamic.txt")
	if err := os.WriteFile(dyn, []byte("198.51.100.0/24\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	data, reg, manifest, err := buildDataset(serveOptions{natedF: nated, dynF: dyn})
	if err != nil {
		t.Fatal(err)
	}
	if len(data.NATUsers) != 1 || data.DynamicPrefixes.Len() != 1 {
		t.Fatalf("dataset = %d NATed, %d prefixes; want 1, 1",
			len(data.NATUsers), data.DynamicPrefixes.Len())
	}
	if reg == nil || manifest == nil {
		t.Fatal("registry or manifest is nil")
	}

	srv := reuseapi.NewServer(data)
	srv.Obs = reg
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/check?ip=203.0.113.7", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "203.0.113.7") {
		t.Fatalf("/v1/check = %d %q", rec.Code, rec.Body.String())
	}
}

func TestBuildDatasetMissingFile(t *testing.T) {
	_, _, _, err := buildDataset(serveOptions{natedF: filepath.Join(t.TempDir(), "nope.txt")})
	if err == nil {
		t.Fatal("missing file must error")
	}
}
