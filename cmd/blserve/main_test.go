package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/e2e"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/reuseapi"
)

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of blserve") {
		t.Fatalf("-h did not print usage:\n%s", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestRunNoSource(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 1 {
		t.Fatalf("no data source exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "provide -nated/-dynamic files or -generate") {
		t.Fatalf("error not reported:\n%s", errb.String())
	}
}

// TestBuildDatasetFromFiles covers the load path run blocks on ListenAndServe
// for: the dataset must contain exactly the listed addresses and prefixes,
// and the assembled handler must answer /v1/check.
func TestBuildDatasetFromFiles(t *testing.T) {
	dir := t.TempDir()
	nated := filepath.Join(dir, "nated.txt")
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dyn := filepath.Join(dir, "dynamic.txt")
	if err := os.WriteFile(dyn, []byte("198.51.100.0/24\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	data, stamps, reg, manifest, err := buildDataset(serveOptions{natedF: nated, dynF: dyn})
	if err != nil {
		t.Fatal(err)
	}
	if len(data.NATUsers) != 1 || data.DynamicPrefixes.Len() != 1 {
		t.Fatalf("dataset = %d NATed, %d prefixes; want 1, 1",
			len(data.NATUsers), data.DynamicPrefixes.Len())
	}
	if reg == nil || manifest == nil {
		t.Fatal("registry or manifest is nil")
	}
	if len(stamps) != 2 {
		t.Fatalf("stamps = %d files, want 2", len(stamps))
	}

	srv := reuseapi.NewServer(data)
	srv.Obs = reg
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/check?ip=203.0.113.7", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "203.0.113.7") {
		t.Fatalf("/v1/check = %d %q", rec.Code, rec.Body.String())
	}
}

func TestBuildDatasetMissingFile(t *testing.T) {
	_, _, _, _, err := buildDataset(serveOptions{natedF: filepath.Join(t.TempDir(), "nope.txt")})
	if err == nil {
		t.Fatal("missing file must error")
	}
}

func TestWatchNeedsFiles(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-watch", "-generate"}, &out, &errb); code != 1 {
		t.Fatalf("-watch -generate exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "-watch needs -nated/-dynamic") {
		t.Fatalf("error not reported:\n%s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-watch"}, &out, &errb); code != 1 {
		t.Fatalf("bare -watch exited %d, want 1", code)
	}
}

// TestSlowHeaderConnectionClosed is the regression test for the bare
// ListenAndServe bug: a client that opens a connection and never finishes
// its request header used to hold the connection forever; the hardened
// server must close it once the read timeout elapses.
func TestSlowHeaderConnectionClosed(t *testing.T) {
	srv := reuseapi.NewServer(&reuseapi.Dataset{Generated: time.Unix(0, 0).UTC()})
	httpSrv := newHTTPServer(srv.Handler(), serveOptions{
		readTimeout:  200 * time.Millisecond,
		writeTimeout: 200 * time.Millisecond,
		idleTimeout:  200 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a partial request line and then stall. The server must hang up
	// on its own; without timeouts this read would block until the test
	// deadline.
	if _, err := conn.Write([]byte("GET /v1/stats HT")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	for {
		_, err := conn.Read(buf)
		if err != nil {
			if err == io.EOF {
				return // server closed the slow connection — the fix
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("server kept the slow-header connection open past the read timeout")
			}
			return // RST is also a close
		}
	}
}

// TestIdleConnectionClosed pins the keep-alive idle timeout: a completed
// request whose connection then goes quiet must be dropped by the server.
func TestIdleConnectionClosed(t *testing.T) {
	srv := reuseapi.NewServer(&reuseapi.Dataset{Generated: time.Unix(0, 0).UTC()})
	httpSrv := newHTTPServer(srv.Handler(), serveOptions{
		readTimeout:  time.Second,
		writeTimeout: time.Second,
		idleTimeout:  150 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /v1/stats HTTP/1.1\r\nHost: x\r\n\r\n")
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	// Drain the response, then wait for the idle close.
	buf := make([]byte, 4096)
	sawEOF := false
	for !sawEOF {
		_, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("idle keep-alive connection survived past the idle timeout")
			}
			sawEOF = true
		}
	}
}

// syncBuffer lets the test read the server's stdout while runCtx writes it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startServe runs runCtx in the background on an ephemeral port and waits —
// via the e2e harness's readiness poll, not a fixed sleep — for the listen
// address to appear on stdout and the API to answer.
func startServe(t *testing.T, args []string) (base string, cancel context.CancelFunc, done <-chan int, out *syncBuffer) {
	t.Helper()
	ctx, cancelFn := context.WithCancel(context.Background())
	outBuf, errBuf := &syncBuffer{}, &syncBuffer{}
	doneCh := make(chan int, 1)
	go func() {
		doneCh <- runCtx(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), outBuf, errBuf)
	}()
	err := e2e.WaitFor(10*time.Second, 10*time.Millisecond, func() (bool, error) {
		select {
		case code := <-doneCh:
			return false, fmt.Errorf("server exited early with %d", code)
		default:
		}
		var ok bool
		base, ok = e2e.FindBaseURL(outBuf.String())
		return ok, nil
	})
	if err != nil {
		t.Fatalf("%v\nstdout: %s\nstderr: %s", err, outBuf.String(), errBuf.String())
	}
	if err := e2e.WaitHTTPOK(base+"/v1/stats", 10*time.Second); err != nil {
		t.Fatalf("server never became ready: %v\nstderr: %s", err, errBuf.String())
	}
	return base, cancelFn, doneCh, outBuf
}

func getStats(t *testing.T, base string) reuseapi.Stats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st reuseapi.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServeWatchReloadSmoke is the end-to-end hot-reload test: start the
// server with -watch, rewrite the NATed list on disk, and require the served
// dataset, the reload counter, and the manifest status to move — then shut
// down gracefully via the context (the in-process form of SIGINT).
func TestServeWatchReloadSmoke(t *testing.T) {
	dir := t.TempDir()
	nated := filepath.Join(dir, "nated.txt")
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, cancel, done, _ := startServe(t, []string{
		"-nated", nated, "-watch", "-watch-interval", "30ms", "-shutdown-grace", "2s",
	})
	defer cancel()

	if st := getStats(t, base); st.NATedAddresses != 1 {
		t.Fatalf("startup stats = %+v", st)
	}

	// Rewrite the list (different size, so the stamp changes even on a
	// coarse-mtime filesystem) and wait for the watcher to swap it in.
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n198.51.100.9\t44\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := e2e.WaitFor(10*time.Second, 20*time.Millisecond, func() (bool, error) {
		return getStats(t, base).NATedAddresses == 2, nil
	}); err != nil {
		t.Fatalf("dataset never hot-reloaded: %v", err)
	}

	// The manifest must carry the reload status.
	resp, err := http.Get(base + "/debug/manifest")
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Serving == nil || !m.Serving.Watching || m.Serving.Reloads < 1 {
		t.Fatalf("manifest serving status = %+v", m.Serving)
	}

	// The wall counter must have moved too.
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "wall_dataset_reloads_total") {
		t.Errorf("/metrics missing wall_dataset_reloads_total:\n%s", metrics)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("graceful shutdown exited %d, want 0", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within the grace window")
	}
}

// getJSONStatus fetches path and returns the HTTP status plus raw body.
func getJSONStatus(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestServeShedSmoke boots the server with -shed and checks the resilience
// surface is mounted: health probes answer, and the manifest carries the
// overload status block.
func TestServeShedSmoke(t *testing.T) {
	dir := t.TempDir()
	nated := filepath.Join(dir, "nated.txt")
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, cancel, _, _ := startServe(t, []string{"-nated", nated, "-shed"})
	defer cancel()

	if code, body := getJSONStatus(t, base, "/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := getJSONStatus(t, base, "/readyz"); code != 200 || !strings.Contains(body, `"normal"`) {
		t.Errorf("/readyz = %d %q", code, body)
	}
	code, body := getJSONStatus(t, base, "/debug/manifest")
	if code != 200 {
		t.Fatalf("/debug/manifest = %d", code)
	}
	var m obs.Manifest
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if m.Serving == nil || m.Serving.Overload == nil || !m.Serving.Overload.Enabled {
		t.Fatalf("manifest carries no overload status: %+v", m.Serving)
	}
	if m.Serving.Overload.Mode != "normal" {
		t.Errorf("idle server mode = %q, want normal", m.Serving.Overload.Mode)
	}
}

// TestServeShedOffHidesProbes pins the off-by-default surface: without
// -shed the probe endpoints do not exist.
func TestServeShedOffHidesProbes(t *testing.T) {
	dir := t.TempDir()
	nated := filepath.Join(dir, "nated.txt")
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, cancel, _, _ := startServe(t, []string{"-nated", nated})
	defer cancel()
	for _, path := range []string{"/healthz", "/readyz"} {
		if code, _ := getJSONStatus(t, base, path); code != 404 {
			t.Errorf("%s without -shed = %d, want 404", path, code)
		}
	}
}

// TestServeShedReloadFailureFlipsReadyz drives the degraded-mode loop over
// a real -watch server: corrupting the input flips /readyz to 503, healing
// the file recovers it to 200.
func TestServeShedReloadFailureFlipsReadyz(t *testing.T) {
	dir := t.TempDir()
	nated := filepath.Join(dir, "nated.txt")
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, cancel, _, _ := startServe(t, []string{
		"-nated", nated, "-watch", "-watch-interval", "30ms",
		"-shed", "-shed-recover-after", "100ms",
	})
	defer cancel()

	if code, _ := getJSONStatus(t, base, "/readyz"); code != 200 {
		t.Fatalf("fresh /readyz = %d, want 200", code)
	}
	if err := os.WriteFile(nated, []byte("not-an-ip at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := e2e.WaitFor(10*time.Second, 20*time.Millisecond, func() (bool, error) {
		code, _ := getJSONStatus(t, base, "/readyz")
		return code == 503, nil
	}); err != nil {
		t.Fatalf("/readyz never flipped to 503 after the failed reload: %v", err)
	}

	// Heal: a parseable rewrite reloads, clears the failure, and readiness
	// recovers after the calm window.
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n198.51.100.9\t44\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := e2e.WaitFor(10*time.Second, 20*time.Millisecond, func() (bool, error) {
		code, _ := getJSONStatus(t, base, "/readyz")
		return code == 200, nil
	}); err != nil {
		t.Fatalf("/readyz never recovered after healing: %v", err)
	}
	if st := getStats(t, base); st.NATedAddresses != 2 {
		t.Errorf("healed dataset stats = %+v", st)
	}
}

// TestReloaderKeepsServingOnBadFile pins the failure path: a reload attempt
// against a now-malformed file must keep the old dataset serving and record
// the error.
func TestReloaderKeepsServingOnBadFile(t *testing.T) {
	dir := t.TempDir()
	nated := filepath.Join(dir, "nated.txt")
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, stamps, err := loadDataset(nated, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := reuseapi.NewServer(data)
	reg := obs.NewRegistry()
	rel := newReloader("", true, nated, "", true, time.Second, srv, reg, nil, data, stamps)

	if err := os.WriteFile(nated, []byte("not-an-ip is here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rel.checkOnce()
	st := rel.status()
	if st.LastError == "" {
		t.Fatal("bad file did not record an error")
	}
	if st.Reloads != 0 {
		t.Errorf("failed reload counted: %+v", st)
	}
	if srv.Snapshot().NATedAddresses() != 1 {
		t.Error("old dataset was replaced by a failed reload")
	}

	// Fixing the file recovers on the next tick and clears the error.
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n198.51.100.9\t44\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rel.checkOnce()
	st = rel.status()
	if st.Reloads != 1 || st.LastError != "" {
		t.Errorf("recovery status = %+v", st)
	}
	if srv.Snapshot().NATedAddresses() != 2 {
		t.Error("recovered dataset not serving")
	}
}

func TestParseDatasetSpec(t *testing.T) {
	cases := []struct {
		in      string
		want    datasetSpec
		wantErr bool
	}{
		{in: "pools=nated.txt,dyn.txt", want: datasetSpec{name: "pools", natedF: "nated.txt", dynF: "dyn.txt"}},
		{in: "pools=nated.txt,", want: datasetSpec{name: "pools", natedF: "nated.txt"}},
		{in: "pools=,dyn.txt", want: datasetSpec{name: "pools", dynF: "dyn.txt"}},
		{in: "pools=nated.txt", want: datasetSpec{name: "pools", natedF: "nated.txt"}},
		{in: "no-equals-sign", wantErr: true},
		{in: "pools=,", wantErr: true},
		{in: "pools=", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseDatasetSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseDatasetSpec(%q) = %+v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseDatasetSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("parseDatasetSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestDatasetFlagExclusive(t *testing.T) {
	dir := t.TempDir()
	nated := filepath.Join(dir, "nated.txt")
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-dataset", "a=" + nated, "-generate"},
		{"-dataset", "a=" + nated, "-nated", nated},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 1 {
			t.Errorf("%v exited %d, want 1", args, code)
		}
		if !strings.Contains(errb.String(), "-dataset cannot be combined") {
			t.Errorf("%v error not reported:\n%s", args, errb.String())
		}
	}
}

// TestServeMultiDataset boots a two-dataset server and pins the routing
// contract: named routes answer per dataset, the unprefixed routes alias the
// first -dataset, /v1/greylist is mounted everywhere, and the manifest
// carries one lifecycle block per dataset.
func TestServeMultiDataset(t *testing.T) {
	dir := t.TempDir()
	natedA := filepath.Join(dir, "a.txt")
	if err := os.WriteFile(natedA, []byte("203.0.113.7\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	natedB := filepath.Join(dir, "b.txt")
	if err := os.WriteFile(natedB, []byte("198.51.100.9\t44\n192.0.2.3\t7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dynB := filepath.Join(dir, "b-dyn.txt")
	if err := os.WriteFile(dynB, []byte("100.64.0.0/10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, cancel, _, out := startServe(t, []string{
		"-dataset", "pools=" + natedA + ",",
		"-dataset", "dial=" + natedB + "," + dynB,
	})
	defer cancel()

	if !strings.Contains(out.String(), "dataset pools:") || !strings.Contains(out.String(), "(default)") {
		t.Errorf("startup banner missing dataset lines:\n%s", out.String())
	}

	// Named routes hit their own snapshots.
	if code, body := getJSONStatus(t, base, "/v1/pools/stats"); code != 200 || !strings.Contains(body, `"nated_addresses":1`) {
		t.Errorf("/v1/pools/stats = %d %s", code, body)
	}
	if code, body := getJSONStatus(t, base, "/v1/dial/stats"); code != 200 || !strings.Contains(body, `"nated_addresses":2`) {
		t.Errorf("/v1/dial/stats = %d %s", code, body)
	}
	// The unprefixed route aliases the first -dataset, byte-identically.
	_, named := getJSONStatus(t, base, "/v1/pools/stats")
	_, unprefixed := getJSONStatus(t, base, "/v1/stats")
	if named != unprefixed {
		t.Errorf("unprefixed /v1/stats diverges from default dataset:\n%s\nvs\n%s", unprefixed, named)
	}
	// Per-dataset verdicts: the address in dataset dial is unknown to pools.
	if code, body := getJSONStatus(t, base, "/v1/dial/check?ip=198.51.100.9"); code != 200 || !strings.Contains(body, `"reused":true`) {
		t.Errorf("/v1/dial/check = %d %s", code, body)
	}
	if code, body := getJSONStatus(t, base, "/v1/pools/check?ip=198.51.100.9"); code != 200 || !strings.Contains(body, `"reused":false`) {
		t.Errorf("/v1/pools/check = %d %s", code, body)
	}
	// Greylist is mounted per dataset too.
	if code, body := getJSONStatus(t, base, "/v1/dial/greylist?ip=198.51.100.9"); code != 200 || !strings.Contains(body, `"action":"tempfail"`) {
		t.Errorf("/v1/dial/greylist = %d %s", code, body)
	}
	// Unknown datasets and endpoints 404 with a JSON error.
	if code, body := getJSONStatus(t, base, "/v1/nope/stats"); code != 404 || !strings.Contains(body, "unknown dataset") {
		t.Errorf("/v1/nope/stats = %d %s", code, body)
	}
	if code, body := getJSONStatus(t, base, "/v1/dial/nope"); code != 404 || !strings.Contains(body, "unknown endpoint") {
		t.Errorf("/v1/dial/nope = %d %s", code, body)
	}

	// The manifest carries one block per dataset, default first.
	code, body := getJSONStatus(t, base, "/debug/manifest")
	if code != 200 {
		t.Fatalf("/debug/manifest = %d", code)
	}
	var m obs.Manifest
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if m.Serving == nil || len(m.Serving.Datasets) != 2 {
		t.Fatalf("manifest datasets = %+v", m.Serving)
	}
	ds := m.Serving.Datasets
	if ds[0].Name != "pools" || !ds[0].Default || ds[0].NATedAddresses != 1 {
		t.Errorf("default dataset block = %+v", ds[0])
	}
	if ds[1].Name != "dial" || ds[1].Default || ds[1].NATedAddresses != 2 || ds[1].DynamicPrefixes != 1 {
		t.Errorf("second dataset block = %+v", ds[1])
	}

	// Per-dataset request counters carry the dataset label.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), `dataset="pools"`) || !strings.Contains(string(metrics), `dataset="dial"`) {
		t.Errorf("/metrics missing dataset labels:\n%s", metrics)
	}
}

// TestServeMultiDatasetWatchDelta drives the incremental reload end to end:
// a small append to one dataset's file must land via the delta path (the
// delta counter moves) without touching the other dataset.
func TestServeMultiDatasetWatchDelta(t *testing.T) {
	dir := t.TempDir()
	natedA := filepath.Join(dir, "a.txt")
	var big bytes.Buffer
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&big, "203.0.113.%d\t%d\n", i, i+2)
	}
	if err := os.WriteFile(natedA, big.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	natedB := filepath.Join(dir, "b.txt")
	if err := os.WriteFile(natedB, []byte("198.51.100.9\t44\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, cancel, _, _ := startServe(t, []string{
		"-dataset", "pools=" + natedA + ",",
		"-dataset", "dial=" + natedB + ",",
		"-watch", "-watch-interval", "30ms",
	})
	defer cancel()

	// Append one address: 1 op against 64 — well under the delta threshold.
	big.WriteString("198.18.0.1\t9\n")
	if err := os.WriteFile(natedA, big.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := e2e.WaitFor(10*time.Second, 20*time.Millisecond, func() (bool, error) {
		_, body := getJSONStatus(t, base, "/v1/pools/stats")
		return strings.Contains(body, `"nated_addresses":65`), nil
	}); err != nil {
		t.Fatalf("delta reload never landed: %v", err)
	}

	code, body := getJSONStatus(t, base, "/debug/manifest")
	if code != 200 {
		t.Fatalf("/debug/manifest = %d", code)
	}
	var m obs.Manifest
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	var pools, dial *obs.DatasetServingStatus
	for i := range m.Serving.Datasets {
		switch m.Serving.Datasets[i].Name {
		case "pools":
			pools = &m.Serving.Datasets[i]
		case "dial":
			dial = &m.Serving.Datasets[i]
		}
	}
	if pools == nil || pools.Reloads < 1 || pools.DeltaReloads < 1 {
		t.Errorf("pools reload block = %+v, want >=1 delta reload", pools)
	}
	if dial == nil || dial.Reloads != 0 {
		t.Errorf("dial reload block = %+v, want untouched", dial)
	}
}

// TestReloaderCatchesSameStampRewrite pins the content-hash half of
// fileStamp: a rewrite that preserves both size and mtime (as a tool
// restoring timestamps would) must still reload, because the content hash
// moved.
func TestReloaderCatchesSameStampRewrite(t *testing.T) {
	dir := t.TempDir()
	nated := filepath.Join(dir, "nated.txt")
	if err := os.WriteFile(nated, []byte("203.0.113.7\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stamp := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	if err := os.Chtimes(nated, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	data, stamps, err := loadDataset(nated, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := reuseapi.NewServer(data)
	rel := newReloader("", true, nated, "", true, time.Second, srv, obs.NewRegistry(), nil, data, stamps)

	// Same byte count, same mtime, different content.
	if err := os.WriteFile(nated, []byte("198.51.100.9\t12\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(nated, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	rel.checkOnce()
	if st := rel.status(); st.Reloads != 1 {
		t.Fatalf("same-stamp rewrite not reloaded: %+v", st)
	}
	if v := srv.Check(mustAddr(t, "198.51.100.9")); !v.Reused {
		t.Error("rewritten address not serving after same-stamp rewrite")
	}
}

// TestReloaderByteIdenticalRewriteKeepsSnapshot pins the empty-delta path: a
// touch that rewrites identical bytes must count as a reload (watchers see
// the attempt land) but keep the served snapshot — and its ETags — intact.
func TestReloaderByteIdenticalRewriteKeepsSnapshot(t *testing.T) {
	dir := t.TempDir()
	nated := filepath.Join(dir, "nated.txt")
	content := []byte("203.0.113.7\t12\n")
	if err := os.WriteFile(nated, content, 0o644); err != nil {
		t.Fatal(err)
	}
	data, stamps, err := loadDataset(nated, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := reuseapi.NewServer(data)
	rel := newReloader("", true, nated, "", true, time.Second, srv, obs.NewRegistry(), nil, data, stamps)
	before := srv.Snapshot()

	time.Sleep(5 * time.Millisecond) // ensure the rewrite can move mtime
	if err := os.WriteFile(nated, content, 0o644); err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	if err := os.Chtimes(nated, now, now); err != nil {
		t.Fatal(err)
	}
	rel.checkOnce()
	if st := rel.status(); st.Reloads != 1 {
		t.Fatalf("byte-identical rewrite not counted as a reload: %+v", st)
	}
	if srv.Snapshot() != before {
		t.Error("byte-identical rewrite recompiled the snapshot")
	}
}

func mustAddr(t *testing.T, s string) iputil.Addr {
	t.Helper()
	a, err := iputil.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
