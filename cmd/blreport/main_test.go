package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of blreport") {
		t.Fatalf("-h did not print usage:\n%s", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestRunUnknownFaultScenario(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-faults", "does-not-exist"}, &out, &errb); code != 1 {
		t.Fatalf("unknown scenario exited %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "does-not-exist") {
		t.Fatalf("error does not name the scenario:\n%s", errb.String())
	}
}

// TestRunTinyStudy drives the full study end-to-end through the CLI surface
// with every output flag set, and verifies the whole artifact set exists and
// is non-empty.
func TestRunTinyStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("full study run")
	}
	dir := t.TempDir()
	svgDir := filepath.Join(dir, "svg")
	outs := map[string]string{
		"reused":   filepath.Join(dir, "reused.txt"),
		"trace":    filepath.Join(dir, "trace.jsonl"),
		"metrics":  filepath.Join(dir, "metrics.txt"),
		"manifest": filepath.Join(dir, "manifest.json"),
	}
	var out, errb bytes.Buffer
	code := run([]string{
		"-seed", "1", "-scale", "0.05", "-crawl", "1h", "-workers", "1",
		"-reused-out", outs["reused"],
		"-trace-out", outs["trace"],
		"-metrics-out", outs["metrics"],
		"-manifest-out", outs["manifest"],
		"-svg", svgDir,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("tiny study exited %d\nstderr: %s", code, errb.String())
	}
	for _, want := range []string{"Table", "Figure", "NAT"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report output missing %q", want)
		}
	}
	for name, path := range outs {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s artifact: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("%s artifact %s is empty", name, path)
		}
	}
	svgs, err := filepath.Glob(filepath.Join(svgDir, "*.svg"))
	if err != nil || len(svgs) != 7 {
		t.Errorf("want 7 SVG figures, got %d (%v)", len(svgs), err)
	}
}
