// Command blreport runs the full reproduction study — world generation,
// BitTorrent crawl, RIPE pipeline, ICMP baseline, operator survey — and
// prints every table and figure of the paper, plus ground-truth scores and
// the published reused-address list.
//
// Usage:
//
//	blreport [-seed N] [-scale F] [-crawl DUR] [-workers N] [-skip-crawl]
//	         [-skip-icmp] [-faults SCENARIO] [-reused-out FILE]
//	         [-trace-out FILE] [-metrics-out FILE] [-manifest-out FILE]
//
// The three -*-out observability flags instrument the run: -trace-out writes
// the span tree as JSONL, -metrics-out writes the deterministic metric
// snapshot (byte-identical for any -workers value), and -manifest-out writes
// the run manifest JSON. The report on stdout is byte-identical whether or
// not instrumentation is enabled.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/stats"
	"github.com/reuseblock/reuseblock/internal/svgplot"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exit code and streams surfaced so tests can drive the
// command in-process: 0 on success (including -h), 2 on flag errors, 1 on
// runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed      = fs.Int64("seed", 1, "world seed")
		scale     = fs.Float64("scale", 1, "world scale (1 = default bench world)")
		crawl     = fs.Duration("crawl", 0, "simulated crawl duration (default 48h)")
		skipCrawl = fs.Bool("skip-crawl", false, "skip the BitTorrent crawl stage")
		skipICMP  = fs.Bool("skip-icmp", false, "skip the ICMP survey baseline")
		reusedOut = fs.String("reused-out", "", "write the reused-address list to this file")
		svgDir    = fs.String("svg", "", "also render every figure as SVG into this directory")
		workers   = fs.Int("workers", 0, "worker goroutines for the deterministic fan-outs (0 = GOMAXPROCS, 1 = sequential)")
		faultScn  = fs.String("faults", "", "fault scenario to inject (one of: "+strings.Join(faults.Names(), ", ")+")")

		traceOut    = fs.String("trace-out", "", "write the run's trace spans (JSONL) to this file")
		metricsOut  = fs.String("metrics-out", "", "write the deterministic metric snapshot to this file")
		manifestOut = fs.String("manifest-out", "", "write the run manifest (JSON) to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	scenario, err := faults.Lookup(*faultScn)
	if err != nil {
		fmt.Fprintln(stderr, "blreport:", err)
		return 1
	}

	wp := blgen.DefaultParams(*seed)
	wp.Scale = *scale
	cfg := core.Config{
		Seed:          *seed,
		World:         &wp,
		CrawlDuration: *crawl,
		SkipCrawl:     *skipCrawl,
		SkipICMP:      *skipICMP,
		Workers:       *workers,
		Faults:        scenario,
	}
	if *metricsOut != "" || *manifestOut != "" {
		cfg.Obs = obs.NewRegistry()
	}
	if *traceOut != "" {
		cfg.Trace = obs.NewTracer()
	}

	start := time.Now()
	study := core.NewStudy(cfg)
	fmt.Fprintf(stderr, "world generated in %v: %d ASes, %d BitTorrent users, %d feeds\n",
		time.Since(start).Round(time.Millisecond), len(study.World.ASes),
		len(study.World.BTUsers), study.World.Registry.Len())

	start = time.Now()
	report, err := study.Run()
	if err != nil {
		fmt.Fprintln(stderr, "blreport:", err)
		return 1
	}
	fmt.Fprintf(stderr, "study ran in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Fprint(stdout, report.Render())

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(stderr, "blreport:", err)
			return 1
		}
		figures := map[string]struct {
			fig *stats.Figure
			opt svgplot.Options
		}{
			"figure2.svg": {report.Figure2(), svgplot.Options{LogY: true}},
			"figure3.svg": {report.Overlap.Figure3(), svgplot.Options{LogY: true}},
			"figure5.svg": {report.PerList.Figure5(), svgplot.Options{LogY: true}},
			"figure6.svg": {report.PerList.Figure6(), svgplot.Options{LogY: true}},
			"figure7.svg": {report.Durations.Figure7(), svgplot.Options{}},
			"figure8.svg": {report.NATUsers.Figure8(), svgplot.Options{}},
			"figure9.svg": {report.Figure9(), svgplot.Options{}},
		}
		for name, fo := range figures {
			path := filepath.Join(*svgDir, name)
			if err := os.WriteFile(path, []byte(svgplot.Render(fo.fig, fo.opt)), 0o644); err != nil {
				fmt.Fprintln(stderr, "blreport:", err)
				return 1
			}
		}
		fmt.Fprintf(stderr, "rendered %d figures to %s\n", len(figures), *svgDir)
	}

	if *reusedOut != "" {
		f, err := os.Create(*reusedOut)
		if err != nil {
			fmt.Fprintln(stderr, "blreport:", err)
			return 1
		}
		if err := report.WriteReusedList(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "blreport:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "blreport:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %d reused addresses to %s\n", report.ReusedAddrs.Len(), *reusedOut)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(stderr, "blreport:", err)
			return 1
		}
		if err := cfg.Trace.WriteJSONL(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, "blreport:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "blreport:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %d trace spans to %s\n", len(cfg.Trace.Records()), *traceOut)
	}
	if *metricsOut != "" {
		if err := os.WriteFile(*metricsOut, []byte(cfg.Obs.RenderText(false)), 0o644); err != nil {
			fmt.Fprintln(stderr, "blreport:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote metric snapshot to %s\n", *metricsOut)
	}
	if *manifestOut != "" {
		data, err := study.Manifest().JSON()
		if err != nil {
			fmt.Fprintln(stderr, "blreport:", err)
			return 1
		}
		if err := os.WriteFile(*manifestOut, data, 0o644); err != nil {
			fmt.Fprintln(stderr, "blreport:", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote run manifest to %s\n", *manifestOut)
	}
	return 0
}
