package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/obs"
)

func TestRunHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exited %d, want 0\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "Usage of blfleet") {
		t.Fatalf("-h did not print usage:\n%s", errb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

// TestRunBadValues pins the validation contract: misconfigured fleets exit
// 2 with the offending flag named and usage printed, before any worker
// starts.
func TestRunBadValues(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-workers", "0"}, "invalid -workers"},
		{[]string{"-workers", "-3"}, "invalid -workers"},
		{[]string{"-rate", "-1"}, "invalid -rate"},
		{[]string{"-burst", "-1"}, "invalid -burst"},
		{[]string{"-max-inflight", "-1"}, "invalid -max-inflight"},
		{[]string{"-hb-interval", "0s"}, "invalid -hb-interval"},
		{[]string{"-hb-timeout", "-1s"}, "invalid -hb-timeout"},
		{[]string{"-max-restarts", "-1"}, "invalid -max-restarts"},
		{[]string{"-workers", "2", "-kill-worker", "3"}, "invalid -kill-worker"},
		{[]string{"-kill-worker", "-1"}, "invalid -kill-worker"},
	}
	for _, c := range cases {
		var out, errb bytes.Buffer
		if code := run(c.args, &out, &errb); code != 2 {
			t.Errorf("%v exited %d, want 2\nstderr: %s", c.args, code, errb.String())
			continue
		}
		if !strings.Contains(errb.String(), c.want) {
			t.Errorf("%v did not report %q:\n%s", c.args, c.want, errb.String())
		}
		if !strings.Contains(errb.String(), "Usage of blfleet") {
			t.Errorf("%v did not print usage:\n%s", c.args, errb.String())
		}
	}
}

func TestRunUnknownFaultScenario(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-faults", "does-not-exist"}, &out, &errb); code != 1 {
		t.Fatalf("unknown scenario exited %d, want 1", code)
	}
}

// TestRunLocalFleetEndToEnd drives a tiny 2-worker in-process fleet through
// the CLI and checks the full artifact set: merged list (round-trips
// through ParseNATedList), manifest with a fleet block, and a metrics
// snapshot carrying the fleet gauges.
func TestRunLocalFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated fleet crawl")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "merged.txt")
	manifest := filepath.Join(dir, "manifest.json")
	metrics := filepath.Join(dir, "metrics.txt")
	var stdout, stderrB bytes.Buffer
	code := run([]string{
		"-local", "-workers", "2", "-seed", "1", "-scale", "0.05", "-duration", "6h",
		"-hb-interval", "25ms",
		"-out", out, "-manifest-out", manifest, "-metrics-out", metrics,
	}, &stdout, &stderrB)
	if code != 0 {
		t.Fatalf("fleet run exited %d\nstderr: %s", code, stderrB.String())
	}
	for _, want := range []string{"messages sent:", "NATed IPs:", "throughput:", "worker  shard"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("fleet output missing %q:\n%s", want, stdout.String())
		}
	}

	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	users, err := blocklist.ParseNATedList(f)
	if err != nil {
		t.Fatalf("merged output does not round-trip: %v", err)
	}
	if len(users) == 0 {
		t.Fatal("merged output is empty")
	}

	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if m.Fleet == nil {
		t.Fatal("manifest has no fleet block")
	}
	if m.Fleet.Workers != 2 || len(m.Fleet.Shards) != 2 {
		t.Fatalf("fleet block: %+v", m.Fleet)
	}
	if m.Fleet.RateBudget != "unlimited" {
		t.Fatalf("rate budget = %q, want unlimited", m.Fleet.RateBudget)
	}
	for _, sh := range m.Fleet.Shards {
		if sh.Heartbeats == 0 || sh.MessagesSent == 0 {
			t.Fatalf("shard status not populated: %+v", sh)
		}
	}

	metricsData, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fleet_workers 2", "fleet_merged_addrs", "wall_fleet_heartbeats_total"} {
		if !strings.Contains(string(metricsData), want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, metricsData)
		}
	}
}
