// Command blfleet coordinates a distributed crawl fleet: it plans an exact
// partition of the crawl scope into N address shards, launches one blcrawl
// worker per shard (real processes by default, in-process goroutines with
// -local), supervises them over a bencoded KRPC-style control plane on
// loopback UDP (readiness, heartbeats, crash detection, bounded
// restart-and-reassign), splits a global crawl budget across the workers,
// and merges the shard observations into the artifact a single crawl of the
// same plan would produce.
//
// The merged output is deterministic: it is byte-identical to running each
// `blcrawl -shard I/N` yourself and merging the files, whatever the worker
// placement, heartbeat timing, or mid-crawl worker crashes.
//
// Usage:
//
//	blfleet -workers 4 -seed 1 -scale 0.5 -duration 24h -out merged.txt
//	blfleet -workers 2 -local -rate 50 -max-inflight 64 -manifest-out m.json
//	blfleet -workers 4 -kill-worker 3 -kill-after 2s   # chaos: prove restart
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"github.com/reuseblock/reuseblock/internal/faults"
	"github.com/reuseblock/reuseblock/internal/fleet"
	"github.com/reuseblock/reuseblock/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its exit code and streams surfaced so tests can drive the
// command in-process: 0 on success (including -h), 2 on flag errors, 1 on
// runtime failures.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("blfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workers  = fs.Int("workers", 2, "number of shard workers (>= 1)")
		seed     = fs.Int64("seed", 1, "world seed")
		scale    = fs.Float64("scale", 0.5, "world scale")
		duration = fs.Duration("duration", 24*time.Hour, "crawl duration (simulated)")
		loss     = fs.Float64("loss", 0.28, "datagram loss probability")
		faultScn = fs.String("faults", "", "fault scenario to inject (one of: "+strings.Join(faults.Names(), ", ")+")")

		rate        = fs.Float64("rate", 0, "aggregate fleet query rate in queries/sec, split across workers (0 = unlimited)")
		burst       = fs.Int("burst", 0, "per-worker token-bucket burst depth (0 = one second of the worker's share)")
		maxInflight = fs.Int("max-inflight", 0, "per-worker bound on outstanding queries (0 = unlimited)")

		out         = fs.String("out", "", "write the merged NATed-address list to this file")
		dir         = fs.String("dir", "", "working directory for per-shard files (default: a temp dir)")
		local       = fs.Bool("local", false, "run workers in-process instead of spawning blcrawl processes")
		blcrawlPath = fs.String("blcrawl", "", "blcrawl binary for process workers (default: next to blfleet, else $PATH)")
		logDir      = fs.String("log-dir", "", "capture per-worker process output here (process workers only)")

		hbInterval  = fs.Duration("hb-interval", 500*time.Millisecond, "worker heartbeat period (> 0)")
		hbTimeout   = fs.Duration("hb-timeout", 15*time.Second, "heartbeat staleness bound before a worker is declared hung (> 0)")
		maxRestarts = fs.Int("max-restarts", 2, "restart budget per shard (>= 0)")
		killWorker  = fs.Int("kill-worker", 0, "chaos: kill this worker once mid-crawl (0 = off)")
		killAfter   = fs.Duration("kill-after", 0, "chaos: wall delay after the worker's first heartbeat before killing it")

		manifestOut = fs.String("manifest-out", "", "write the run manifest (JSON) to this file")
		metricsOut  = fs.String("metrics-out", "", "write the metrics snapshot (Prometheus text) to this file")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	usageErr := func(err error) int {
		fmt.Fprintln(stderr, "blfleet:", err)
		fs.Usage()
		return 2
	}
	// Validation mirrors blcrawl's worker-flag standard: a misconfigured
	// fleet must fail loudly before any worker starts.
	if *workers < 1 {
		return usageErr(fmt.Errorf("invalid -workers %d: want >= 1", *workers))
	}
	if *rate < 0 {
		return usageErr(fmt.Errorf("invalid -rate %v: want >= 0", *rate))
	}
	if *burst < 0 {
		return usageErr(fmt.Errorf("invalid -burst %d: want >= 0", *burst))
	}
	if *maxInflight < 0 {
		return usageErr(fmt.Errorf("invalid -max-inflight %d: want >= 0", *maxInflight))
	}
	if *hbInterval <= 0 {
		return usageErr(fmt.Errorf("invalid -hb-interval %v: want > 0", *hbInterval))
	}
	if *hbTimeout <= 0 {
		return usageErr(fmt.Errorf("invalid -hb-timeout %v: want > 0", *hbTimeout))
	}
	if *maxRestarts < 0 {
		return usageErr(fmt.Errorf("invalid -max-restarts %d: want >= 0", *maxRestarts))
	}
	if *killWorker < 0 || *killWorker > *workers {
		return usageErr(fmt.Errorf("invalid -kill-worker %d: want 0 (off) or 1..%d", *killWorker, *workers))
	}
	if _, err := faults.Lookup(*faultScn); err != nil {
		fmt.Fprintln(stderr, "blfleet:", err)
		return 1
	}

	if err := runFleet(fleetOpts{
		workers: *workers, seed: *seed, scale: *scale, duration: *duration,
		loss: *loss, faultScn: *faultScn,
		budget:      fleet.Budget{Rate: *rate, Burst: *burst, MaxInflight: *maxInflight},
		out:         *out, dir: *dir, local: *local, blcrawl: *blcrawlPath, logDir: *logDir,
		hbInterval:  *hbInterval, hbTimeout: *hbTimeout, maxRestarts: *maxRestarts,
		killWorker:  *killWorker, killAfter: *killAfter,
		manifestOut: *manifestOut, metricsOut: *metricsOut,
	}, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "blfleet:", err)
		return 1
	}
	return 0
}

type fleetOpts struct {
	workers     int
	seed        int64
	scale       float64
	duration    time.Duration
	loss        float64
	faultScn    string
	budget      fleet.Budget
	out         string
	dir         string
	local       bool
	blcrawl     string
	logDir      string
	hbInterval  time.Duration
	hbTimeout   time.Duration
	maxRestarts int
	killWorker  int
	killAfter   time.Duration
	manifestOut string
	metricsOut  string
}

// findBlcrawl resolves the worker binary: an explicit -blcrawl path, a
// blcrawl next to the blfleet executable (the layout `go build ./...`
// produces), or $PATH.
func findBlcrawl(explicit string) (string, error) {
	if explicit != "" {
		if _, err := os.Stat(explicit); err != nil {
			return "", fmt.Errorf("-blcrawl %s: %v", explicit, err)
		}
		return explicit, nil
	}
	if self, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(self), "blcrawl")
		if _, err := os.Stat(sibling); err == nil {
			return sibling, nil
		}
	}
	path, err := exec.LookPath("blcrawl")
	if err != nil {
		return "", fmt.Errorf("blcrawl binary not found (set -blcrawl, or use -local for in-process workers)")
	}
	return path, nil
}

func runFleet(o fleetOpts, stdout, stderr io.Writer) error {
	dir := o.dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "blfleet")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	var runner fleet.Runner
	if o.local {
		runner = fleet.LocalRunner{}
	} else {
		bin, err := findBlcrawl(o.blcrawl)
		if err != nil {
			return err
		}
		runner = &fleet.ProcRunner{Binary: bin, LogDir: o.logDir}
	}

	reg := obs.NewRegistry()
	start := time.Now()
	res, err := fleet.Run(fleet.Config{
		Workers:       o.workers,
		Seed:          o.seed,
		Scale:         o.scale,
		Duration:      o.duration,
		Loss:          o.loss,
		FaultScenario: o.faultScn,
		Budget:        o.budget,
		Runner:        runner,
		Dir:           dir,
		OutFile:       o.out,
		HBInterval:    o.hbInterval,
		HBTimeout:     o.hbTimeout,
		MaxRestarts:   o.maxRestarts,
		KillWorker:    o.killWorker,
		KillAfter:     o.killAfter,
		Obs:           reg,
		Log:           stderr,
	})
	if err != nil {
		return err
	}

	st := res.Stats
	fmt.Fprintf(stdout, "fleet crawled %v of simulated time across %d workers in %v\n",
		o.duration, o.workers, time.Since(start).Round(time.Millisecond))
	fmt.Fprintf(stdout, "messages sent:      %d (get_nodes %d, bt_ping %d)\n", st.MessagesSent, st.GetNodesSent, st.PingsSent)
	fmt.Fprintf(stdout, "responses received: %d (%.1f%%)\n", st.MessagesReceived, st.ResponseRate*100)
	fmt.Fprintf(stdout, "unique IPs:         %d\n", st.UniqueIPs)
	fmt.Fprintf(stdout, "unique node IDs:    %d\n", st.UniqueNodeIDs)
	fmt.Fprintf(stdout, "multi-port IPs:     %d\n", st.MultiPortIPs)
	fmt.Fprintf(stdout, "NATed IPs:          %d (max %d simultaneous users)\n", st.NATedIPs, st.SimultaneousMax)
	if len(res.Merged) > 0 {
		fmt.Fprintf(stdout, "ground truth:       %d/%d detected addresses are true NAT gateways\n",
			res.TruePositives, len(res.Merged))
	}
	fmt.Fprintf(stdout, "throughput:         %.1f hosts/sec, merge %v\n",
		res.HostsPerSec, res.MergeElapsed.Round(time.Microsecond))
	fmt.Fprintf(stdout, "worker  shard  attempts  restarts  heartbeats  msgs-sent  nated\n")
	for _, w := range res.PerWorker {
		killed := ""
		if w.Killed {
			killed = "  (chaos-killed)"
		}
		fmt.Fprintf(stdout, "%6d  %5s  %8d  %8d  %10d  %9d  %5d%s\n",
			w.Worker, w.Shard, w.Attempts, w.Restarts, w.Heartbeats, w.Stats.MessagesSent, w.Stats.NATedIPs, killed)
	}

	if o.manifestOut != "" {
		m := obs.NewManifest()
		m.Seed = o.seed
		m.Scale = o.scale
		m.Workers = o.workers
		m.FaultScenario = o.faultScn
		m.Metrics = reg.Snapshot(true)
		fleetStatus := &obs.FleetStatus{
			Workers:     o.workers,
			RateBudget:  o.budget.String(),
			Restarts:    res.Restarts,
			HostsPerSec: res.HostsPerSec,
			MergeMillis: res.MergeElapsed.Milliseconds(),
		}
		for _, w := range res.PerWorker {
			fleetStatus.Shards = append(fleetStatus.Shards, obs.FleetShardStatus{
				Worker:       w.Worker,
				Shard:        w.Shard,
				Attempts:     w.Attempts,
				Restarts:     w.Restarts,
				Killed:       w.Killed,
				Heartbeats:   w.Heartbeats,
				MessagesSent: w.Stats.MessagesSent,
				NATedIPs:     w.Stats.NATedIPs,
			})
		}
		m.Fleet = fleetStatus
		data, err := m.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.manifestOut, data, 0o644); err != nil {
			return err
		}
	}
	if o.metricsOut != "" {
		if err := os.WriteFile(o.metricsOut, []byte(reg.RenderText(true)), 0o644); err != nil {
			return err
		}
	}
	return nil
}
