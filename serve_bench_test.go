// Benchmarks for the serving layer rebuild: the compiled-snapshot reuseapi
// server against a benchmark-local replica of the pre-snapshot design (RWMutex
// around a map dataset, per-request url.Values parsing, a 33-probe covering
// loop, json.Encoder verdicts, and per-request list rendering). The recorded
// BENCH_serve.json pins the speedup, which must stay at least 5x on the
// /v1/check hot path at 100k NATed addresses.
package reuseblock_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/reuseapi"
)

const (
	serveBenchAddrs    = 100_000
	serveBenchPrefixes = 512
)

// serveBenchDataset builds the fixed 100k-address dataset both server
// variants serve. Deterministic so the two variants answer identically.
func serveBenchDataset() *reuseapi.Dataset {
	return serveBenchDatasetSized(serveBenchAddrs, serveBenchPrefixes)
}

func serveBenchDatasetSized(addrs, prefixes int) *reuseapi.Dataset {
	rng := rand.New(rand.NewSource(7))
	data := &reuseapi.Dataset{
		NATUsers:        make(map[iputil.Addr]int, addrs),
		DynamicPrefixes: iputil.NewPrefixSet(),
		Generated:       time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC),
	}
	for len(data.NATUsers) < addrs {
		a := iputil.AddrFrom4(byte(1+rng.Intn(220)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))
		data.NATUsers[a] = 2 + rng.Intn(400)
	}
	for i := 0; i < prefixes; i++ {
		a := iputil.AddrFrom4(byte(1+rng.Intn(220)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0)
		data.DynamicPrefixes.Add(iputil.PrefixFrom(a, 16+rng.Intn(9)))
	}
	return data
}

// serveBenchRequests is a fixed query mix against the dataset: NATed hits,
// dynamic-prefix hits, and clean misses, pre-built so request construction is
// out of the measured loop.
func serveBenchRequests(data *reuseapi.Dataset) []*http.Request {
	rng := rand.New(rand.NewSource(11))
	var addrs []iputil.Addr
	for a := range data.NATUsers {
		addrs = append(addrs, a)
		if len(addrs) == 256 {
			break
		}
	}
	for _, p := range data.DynamicPrefixes.Sorted()[:64] {
		addrs = append(addrs, p.Nth(0))
	}
	for i := 0; i < 192; i++ {
		addrs = append(addrs, iputil.AddrFrom4(byte(1+rng.Intn(220)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))))
	}
	reqs := make([]*http.Request, len(addrs))
	for i, a := range addrs {
		reqs[i] = httptest.NewRequest(http.MethodGet, "/v1/check?ip="+a.String(), nil)
	}
	return reqs
}

// lockedServer replicates the pre-snapshot serving design for comparison:
// every request takes an RWMutex read lock, /v1/check parses url.Values,
// probes all 33 prefix lengths against the PrefixSet map and runs a verdict
// through json.Encoder, and /v1/list re-collects, re-sorts and re-renders the
// whole dataset per request.
type lockedServer struct {
	mu   sync.RWMutex
	data *reuseapi.Dataset
}

func (s *lockedServer) snapshot() *reuseapi.Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data
}

func (s *lockedServer) handleCheck(w http.ResponseWriter, r *http.Request) {
	ipStr := r.URL.Query().Get("ip")
	addr, err := iputil.ParseAddr(ipStr)
	if err != nil {
		http.Error(w, "malformed ip", http.StatusBadRequest)
		return
	}
	data := s.snapshot()
	v := reuseapi.Verdict{IP: addr.String()}
	if users, ok := data.NATUsers[addr]; ok {
		v.Reused, v.NATed, v.Users = true, true, users
	}
	for bits := 32; bits >= 0; bits-- {
		p := iputil.PrefixFrom(addr, bits)
		if data.DynamicPrefixes.Contains(p) {
			v.Reused, v.Dynamic, v.Prefix = true, true, p.String()
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *lockedServer) handleList(w http.ResponseWriter, r *http.Request) {
	data := s.snapshot()
	addrs := iputil.NewSet()
	for a := range data.NATUsers {
		addrs.Add(a)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = blocklist.WritePlain(w, addrs,
		fmt.Sprintf("NATed reused addresses, generated %s", data.Generated.UTC().Format(time.RFC3339)))
}

func (s *lockedServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", s.handleCheck)
	mux.HandleFunc("/v1/list", s.handleList)
	return mux
}

// benchRW is a no-op ResponseWriter so the benchmarks measure handler cost,
// not recorder bookkeeping.
type benchRW struct{ h http.Header }

func (w *benchRW) Header() http.Header         { return w.h }
func (w *benchRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *benchRW) WriteHeader(int)             {}

// serveBenchOut accumulates both benchmarks' numbers; whichever finishes
// last writes the complete BENCH_serve.json.
var serveBenchOut = struct {
	sync.Mutex
	check, list  map[string]int64
	checkAllocs  map[string]float64
	batchNsPerIP int64
	deltaReload  []deltaReloadRow
}{
	check:       map[string]int64{},
	list:        map[string]int64{},
	checkAllocs: map[string]float64{},
}

// deltaReloadRow is one BENCH_serve.json delta-reload entry: the cost of
// swapping a churned dataset in via a full Compile versus the incremental
// ApplyDelta path, at one world scale.
type deltaReloadRow struct {
	Scale           int     `json:"scale"`
	NATedAddrs      int     `json:"nated_addrs"`
	DynamicPrefixes int     `json:"dynamic_prefixes"`
	DeltaOps        int     `json:"delta_ops"`
	FullNsPerOp     int64   `json:"full_compile_ns_per_op"`
	DeltaNsPerOp    int64   `json:"apply_delta_ns_per_op"`
	Speedup         float64 `json:"speedup"`
}

type serveBenchVariant struct {
	Variant     string   `json:"variant"` // "locked_map" or "snapshot"
	NsPerOp     int64    `json:"ns_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

func writeServeBench(b *testing.B) {
	serveBenchOut.Lock()
	defer serveBenchOut.Unlock()
	speedup := func(m map[string]int64) float64 {
		if m["locked_map"] == 0 || m["snapshot"] == 0 {
			return 0
		}
		return float64(m["locked_map"]) / float64(m["snapshot"])
	}
	variants := func(m map[string]int64, allocs map[string]float64) []serveBenchVariant {
		var out []serveBenchVariant
		for _, name := range []string{"locked_map", "snapshot"} {
			if ns, ok := m[name]; ok {
				v := serveBenchVariant{Variant: name, NsPerOp: ns}
				if allocs != nil {
					a := allocs[name]
					v.AllocsPerOp = &a
				}
				out = append(out, v)
			}
		}
		return out
	}
	out := struct {
		Benchmark       string              `json:"benchmark"`
		NumCPU          int                 `json:"num_cpu"`
		GOMAXPROCS      int                 `json:"gomaxprocs"`
		NATedAddrs      int                 `json:"nated_addrs"`
		DynamicPrefixes int                 `json:"dynamic_prefixes"`
		Check           []serveBenchVariant `json:"check"`
		CheckSpeedup    float64             `json:"check_speedup"`
		BatchNsPerIP    int64               `json:"batch_ns_per_ip,omitempty"`
		List            []serveBenchVariant `json:"list"`
		ListSpeedup     float64             `json:"list_speedup"`
		DeltaReload     []deltaReloadRow    `json:"delta_reload,omitempty"`
	}{
		Benchmark:       "BenchmarkServeCheck+BenchmarkServeList+BenchmarkServeDeltaReload",
		NumCPU:          runtime.NumCPU(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NATedAddrs:      serveBenchAddrs,
		DynamicPrefixes: serveBenchPrefixes,
		Check:           variants(serveBenchOut.check, serveBenchOut.checkAllocs),
		CheckSpeedup:    speedup(serveBenchOut.check),
		BatchNsPerIP:    serveBenchOut.batchNsPerIP,
		List:            variants(serveBenchOut.list, nil),
		ListSpeedup:     speedup(serveBenchOut.list),
		DeltaReload:     serveBenchOut.deltaReload,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_serve.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServeCheck drives the /v1/check query mix through the locked-map
// replica and the compiled-snapshot server, plus the batch POST endpoint,
// and records per-request timings and allocations.
func BenchmarkServeCheck(b *testing.B) {
	data := serveBenchDataset()
	reqs := serveBenchRequests(data)

	measure := func(name string, h http.Handler) {
		b.Run(name, func(b *testing.B) {
			w := &benchRW{h: make(http.Header, 4)}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.ServeHTTP(w, reqs[i%len(reqs)])
			}
			b.StopTimer()
			allocs := testing.AllocsPerRun(1000, func() {
				h.ServeHTTP(w, reqs[0])
			})
			serveBenchOut.Lock()
			serveBenchOut.check[name] = b.Elapsed().Nanoseconds() / int64(b.N)
			serveBenchOut.checkAllocs[name] = allocs
			serveBenchOut.Unlock()
		})
	}

	locked := &lockedServer{data: data}
	measure("locked_map", locked.handler())
	measure("snapshot", reuseapi.NewServer(data).Handler())

	b.Run("snapshot-batch", func(b *testing.B) {
		h := reuseapi.NewServer(data).Handler()
		var ips []string
		for _, r := range reqs[:100] {
			ips = append(ips, r.URL.Query().Get("ip"))
		}
		payload, err := json.Marshal(ips)
		if err != nil {
			b.Fatal(err)
		}
		w := &benchRW{h: make(http.Header, 4)}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := httptest.NewRequest(http.MethodPost, "/v1/check", bytes.NewReader(payload))
			h.ServeHTTP(w, r)
		}
		b.StopTimer()
		perIP := b.Elapsed().Nanoseconds() / int64(b.N) / int64(len(ips))
		b.ReportMetric(float64(perIP), "ns/ip")
		serveBenchOut.Lock()
		serveBenchOut.batchNsPerIP = perIP
		serveBenchOut.Unlock()
	})

	writeServeBench(b)
}

// BenchmarkServeList measures the full-list endpoint: the locked replica
// re-sorts and re-renders 100k addresses per request; the snapshot serves
// precomputed bytes.
func BenchmarkServeList(b *testing.B) {
	data := serveBenchDataset()
	req := httptest.NewRequest(http.MethodGet, "/v1/list", nil)

	// Keep the replica honest: its per-request render must match the
	// snapshot's precomputed body byte for byte.
	locked := &lockedServer{data: data}
	snap := reuseapi.NewServer(data).Handler()
	wantW, gotW := httptest.NewRecorder(), httptest.NewRecorder()
	locked.handler().ServeHTTP(wantW, req)
	snap.ServeHTTP(gotW, httptest.NewRequest(http.MethodGet, "/v1/list", nil))
	if !bytes.Equal(wantW.Body.Bytes(), gotW.Body.Bytes()) {
		b.Fatal("locked-map replica and snapshot render different /v1/list bodies")
	}

	for _, v := range []struct {
		name string
		h    http.Handler
	}{{"locked_map", locked.handler()}, {"snapshot", snap}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			w := &benchRW{h: make(http.Header, 4)}
			b.ReportAllocs()
			b.SetBytes(int64(len(wantW.Body.Bytes())))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.h.ServeHTTP(w, req)
			}
			b.StopTimer()
			serveBenchOut.Lock()
			serveBenchOut.list[v.name] = b.Elapsed().Nanoseconds() / int64(b.N)
			serveBenchOut.Unlock()
		})
	}

	writeServeBench(b)
}

// serveBenchDelta is the reload churn a watch tick typically carries: one
// provider's pool turns over — every tracked address in two /8s is dropped,
// about as many fresh ones appear in one of them — plus a little prefix
// movement. Clustered on purpose: that locality is what the segment-level
// splicing in ApplyDelta exploits, and what real churn looks like.
func serveBenchDelta(data *reuseapi.Dataset) *reuseapi.Delta {
	rng := rand.New(rand.NewSource(13))
	delta := &reuseapi.Delta{
		AddNAT:    map[iputil.Addr]int{},
		Generated: data.Generated.Add(time.Hour),
	}
	for a := range data.NATUsers {
		if top := byte(a >> 24); top == 100 || top == 101 {
			delta.RemoveNAT = append(delta.RemoveNAT, a)
		}
	}
	cluster := iputil.AddrFrom4(100, 0, 0, 0)
	for i := 0; i < len(data.NATUsers)/100; i++ {
		delta.AddNAT[cluster|iputil.Addr(rng.Intn(1<<24))] = 2 + rng.Intn(400)
	}
	prefixes := data.DynamicPrefixes.Sorted()
	delta.RemovePrefixes = prefixes[:2]
	delta.AddPrefixes = []iputil.Prefix{
		iputil.PrefixFrom(cluster, 12),
		iputil.PrefixFrom(iputil.AddrFrom4(100, 64, 0, 0), 14),
	}
	return delta
}

// BenchmarkServeDeltaReload prices a hot reload both ways at two world
// scales: the full recompile the classic -watch path pays versus the
// incremental ApplyDelta the diffing reloader pays for the same churn. The
// recorded speedup at scale 10 must stay at least 5x — that gap is why the
// reloader diffs at all.
func BenchmarkServeDeltaReload(b *testing.B) {
	for _, sc := range []struct{ scale, addrs, prefixes int }{
		{1, 10_000, 64},
		{10, 100_000, 512},
	} {
		base := serveBenchDatasetSized(sc.addrs, sc.prefixes)
		delta := serveBenchDelta(base)
		next := delta.ApplyTo(base)
		snap := reuseapi.Compile(base)

		// Keep the comparison honest: the two paths must produce the same
		// served bytes before their costs are worth comparing.
		wantBodies := reuseapi.Compile(next).PrecomputedBodies()
		gotBodies := snap.ApplyDelta(delta).PrecomputedBodies()
		for name, w := range wantBodies {
			if g := gotBodies[name]; !bytes.Equal(g.Body, w.Body) || !bytes.Equal(g.Gzip, w.Gzip) || g.ETag != w.ETag {
				b.Fatalf("scale %d: ApplyDelta and full Compile disagree on %s", sc.scale, name)
			}
		}

		var fullNs, deltaNs int64
		b.Run(fmt.Sprintf("scale%d/full_compile", sc.scale), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = reuseapi.Compile(next)
			}
			b.StopTimer()
			fullNs = b.Elapsed().Nanoseconds() / int64(b.N)
		})
		b.Run(fmt.Sprintf("scale%d/apply_delta", sc.scale), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = snap.ApplyDelta(delta)
			}
			b.StopTimer()
			deltaNs = b.Elapsed().Nanoseconds() / int64(b.N)
		})

		row := deltaReloadRow{
			Scale:           sc.scale,
			NATedAddrs:      sc.addrs,
			DynamicPrefixes: sc.prefixes,
			DeltaOps:        delta.Ops(),
			FullNsPerOp:     fullNs,
			DeltaNsPerOp:    deltaNs,
		}
		if deltaNs > 0 {
			row.Speedup = float64(fullNs) / float64(deltaNs)
		}
		serveBenchOut.Lock()
		serveBenchOut.deltaReload = append(serveBenchOut.deltaReload, row)
		serveBenchOut.Unlock()
	}

	writeServeBench(b)
}
