// Benchmark for the observability layer's overhead: the same crawl-dominated
// study as BenchmarkStudyParallel, once with instrumentation off (nil
// registry and tracer — the hot paths see only nil-receiver no-ops) and once
// with metrics and tracing fully on. The recorded BENCH_obs.json pins the
// relative overhead, which must stay within a few percent.
package reuseblock_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/obs"
)

// obsBenchResult is one instrumentation mode's measurement in BENCH_obs.json.
type obsBenchResult struct {
	Mode    string `json:"mode"` // "off" or "on"
	NsPerOp int64  `json:"ns_per_op"`
}

// BenchmarkStudyObs measures the instrumented pipeline against the
// uninstrumented one and records both timings plus the relative overhead.
func BenchmarkStudyObs(b *testing.B) {
	wp := blgen.DefaultParams(1)
	w := blgen.Generate(wp)
	run := func(b *testing.B, instrument bool) {
		for i := 0; i < b.N; i++ {
			cfg := core.Config{
				Seed:          1,
				CrawlDuration: 6 * time.Hour,
				Vantages:      4,
			}
			if instrument {
				cfg.Obs = obs.NewRegistry()
				cfg.Trace = obs.NewTracer()
			}
			s := core.NewStudyFromWorld(w, cfg)
			if _, err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	nsPerOp := make(map[string]int64)
	for _, mode := range []struct {
		name       string
		instrument bool
	}{{"off", false}, {"on", true}} {
		mode := mode
		b.Run("obs="+mode.name, func(b *testing.B) {
			run(b, mode.instrument)
			nsPerOp[mode.name] = b.Elapsed().Nanoseconds() / int64(b.N)
		})
	}
	if nsPerOp["off"] == 0 || nsPerOp["on"] == 0 {
		return
	}
	overhead := float64(nsPerOp["on"]-nsPerOp["off"]) / float64(nsPerOp["off"]) * 100
	b.ReportMetric(overhead, "%overhead")
	out := struct {
		Benchmark   string           `json:"benchmark"`
		NumCPU      int              `json:"num_cpu"`
		GOMAXPROCS  int              `json:"gomaxprocs"`
		Vantages    int              `json:"vantages"`
		CrawlHours  int              `json:"crawl_hours"`
		Results     []obsBenchResult `json:"results"`
		OverheadPct float64          `json:"overhead_pct"`
	}{
		Benchmark:  "BenchmarkStudyObs",
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Vantages:   4,
		CrawlHours: 6,
		Results: []obsBenchResult{
			{Mode: "off", NsPerOp: nsPerOp["off"]},
			{Mode: "on", NsPerOp: nsPerOp["on"]},
		},
		OverheadPct: overhead,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_obs.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
