// natdetect: hand-build a small ISP — a few public BitTorrent users plus a
// carrier-grade NAT with several users behind it — and watch the paper's
// crawler (§3.1) identify the shared address and bound the user count.
//
//	go run ./examples/natdetect
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/dht"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

func main() {
	clock := netsim.NewClock()
	network, err := netsim.NewNetwork(clock, netsim.Config{
		Loss:          0.1,
		LatencyBase:   15 * time.Millisecond,
		LatencyJitter: 30 * time.Millisecond,
		Seed:          7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Twelve public BitTorrent users.
	var nodes []*dht.Node
	var eps []netsim.Endpoint
	for i := 0; i < 12; i++ {
		ep := netsim.Endpoint{Addr: iputil.AddrFrom4(203, 0, 113, byte(i+1)), Port: 6881}
		sock, err := network.Listen(ep)
		if err != nil {
			log.Fatal(err)
		}
		n := dht.NewNode(sock, dht.SimClock(clock), dht.Config{
			PrivateIP: ep.Addr, IDSeed: uint64(i + 1), Seed: int64(i + 1),
		})
		nodes = append(nodes, n)
		eps = append(eps, ep)
	}
	for i, n := range nodes {
		for d := 1; d <= 4; d++ {
			j := (i + d) % len(nodes)
			n.AddNode(krpc.NodeInfo{ID: nodes[j].ID(), Addr: eps[j].Addr, Port: eps[j].Port})
		}
	}

	// A full-cone CGN fronting four households, three of which run
	// BitTorrent — the situation from the paper's Cloudflare anecdote.
	natAddr := iputil.MustParseAddr("100.64.7.1")
	nat, err := netsim.NewNAT(network, netsim.NATConfig{
		PublicAddr: natAddr,
		Filtering:  netsim.FullCone,
		MappingTTL: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		priv := iputil.AddrFrom4(192, 168, 1, byte(i+10))
		sock, err := nat.Listen(priv, 6881)
		if err != nil {
			log.Fatal(err)
		}
		n := dht.NewNode(sock, dht.SimClock(clock), dht.Config{
			PrivateIP: priv, IDSeed: uint64(100 + i), Seed: int64(100 + i),
			KeepaliveInterval: 15 * time.Minute,
		})
		// Join the swarm through a public node, opening the NAT mapping.
		n.Bootstrap(eps[i%len(eps)], nil)
	}

	// The crawler.
	sock, err := network.Listen(netsim.Endpoint{Addr: iputil.MustParseAddr("198.18.0.1"), Port: 9999})
	if err != nil {
		log.Fatal(err)
	}
	c := crawler.New(sock, dht.SimClock(clock), crawler.Config{
		Bootstrap: []netsim.Endpoint{eps[0]},
		Seed:      1,
	})
	c.Start()

	fmt.Println("crawling 12 public users + 1 CGN (3 BitTorrent users behind it)...")
	for hour := 1; hour <= 6; hour++ {
		clock.RunFor(time.Hour)
		st := c.Stats()
		fmt.Printf("after %dh: %d IPs seen, %d multi-port, %d confirmed NATed\n",
			hour, st.UniqueIPs, st.MultiPortIPs, st.NATedIPs)
	}
	c.Stop()

	fmt.Println()
	for _, o := range c.NATed() {
		fmt.Printf("NATed address %v: ≥%d simultaneous users (ports seen: %d, confirmed %v after start)\n",
			o.Addr, o.Users, o.PortsSeen, o.FirstConfirmed.Sub(netsim.Epoch).Round(time.Minute))
		if o.Addr == natAddr {
			fmt.Println("  -> this is the CGN we built; blocklisting it would punish every household behind it")
		}
	}
	if len(c.NATed()) == 0 {
		fmt.Println("no NATed addresses confirmed (try a longer crawl)")
	}
}
