// dynaddr: simulate a RIPE Atlas probe fleet, round-trip its connection
// logs through the CSV format, and run the paper's dynamic-address pipeline
// (§3.2) — same-AS filter, knee threshold, daily-change filter, /24
// expansion.
//
//	go run ./examples/dynaddr
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
)

func main() {
	// A fleet shaped like the paper's population: mostly static probes, a
	// band of slow churners, fast daily churners, and AS movers.
	fleet := ripeatlas.StandardFleet(2020, 0.3)
	logs := ripeatlas.SimulateFleet(fleet)
	fmt.Printf("simulated %d probes over ~16 months -> %d connection-log entries\n",
		len(fleet.Probes), len(logs))

	// Round-trip through the on-disk format, as a real pipeline would.
	var buf bytes.Buffer
	if err := ripeatlas.WriteLogs(&buf, logs); err != nil {
		log.Fatal(err)
	}
	parsed, err := ripeatlas.ReadLogs(&buf)
	if err != nil {
		log.Fatal(err)
	}

	res := ripeatlas.Detect(parsed, ripeatlas.DetectOptions{})
	fmt.Printf("\npipeline funnel:\n")
	fmt.Printf("  probes observed:          %d\n", res.TotalProbes)
	fmt.Printf("  multi-AS (excluded):      %d\n", res.MultiASProbes)
	fmt.Printf("  no address change:        %d\n", res.NoChangeProbes)
	fmt.Printf("  changed within one AS:    %d\n", res.SameASProbes)
	fmt.Printf("  knee threshold:           %d allocations (paper: 8)\n", res.KneeThreshold)
	fmt.Printf("  frequent churners:        %d\n", res.FrequentProbes)
	fmt.Printf("  daily churners (dynamic): %d\n", res.DailyProbes)
	fmt.Printf("  dynamic /24 prefixes:     %d\n", res.DynamicPrefixes.Len())

	// Show one detected probe's story.
	if len(res.DynamicProbeIDs) > 0 {
		id := res.DynamicProbeIDs[0]
		h := res.Probes[id]
		mean, _ := h.MeanChangeInterval()
		fmt.Printf("\nexample: probe %d was allocated %d addresses (mean %v between changes)\n",
			id, len(h.Allocations), mean.Round(time.Minute))
		show := h.Allocations
		if len(show) > 5 {
			show = show[:5]
		}
		fmt.Printf("  first allocations: %v\n", show)
		covering := iputil.NewPrefixSet()
		for _, a := range h.Allocations {
			covering.Add(a.Slash24())
		}
		fmt.Printf("  flagged dynamic prefixes: %v\n", covering.Sorted())
		fmt.Println("  anyone allocated one of these addresses tomorrow inherits today's reputation.")
	}
}
