// operator: a network operator consumes blocklists to filter traffic — the
// Section 6 scenario. We compare two policies over a synthetic world:
//
//  1. block every listed address outright (what 59% of surveyed operators do);
//  2. greylist listed addresses that appear on the study's reused-address
//     list, blocking only the rest outright.
//
// The world's ground truth tells us how many *legitimate* users each policy
// cuts off: everyone sharing a blocklisted NAT address and everyone who
// inherits a blocklisted dynamic address is collateral damage.
//
//	go run ./examples/operator
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/greylist"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

func main() {
	params := blgen.DefaultParams(7)
	params.Scale = 0.25
	study := core.NewStudy(core.Config{
		Seed:          7,
		World:         &params,
		CrawlDuration: 24 * time.Hour,
	})
	report, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}
	w := study.World

	blocked := w.Collection.AllAddrs()
	reused := report.ReusedAddrs

	// Collateral damage under policy 1: every listed NAT gateway blocks
	// all its users (minus, charitably, one attacker per compromised
	// user); every listed dynamic address punishes the next innocent
	// lease holder.
	var natVictims, natAddrs int
	for _, n := range w.NATs {
		if !blocked.Contains(n.Addr) {
			continue
		}
		natAddrs++
		innocent := n.TotalUsers - n.CompromisedUsers
		if innocent > 0 {
			natVictims += innocent
		}
	}
	var dynAddrs int
	for _, a := range blocked.Sorted() {
		if w.TrueAnyDynamic.Covers(a) {
			dynAddrs++
		}
	}

	fmt.Printf("blocklisted addresses:            %d\n", blocked.Len())
	fmt.Printf("  on NAT gateways:                %d (blocking them hits %d innocent users)\n",
		natAddrs, natVictims)
	fmt.Printf("  in dynamic pools:               %d (each will be re-assigned to an innocent user)\n", dynAddrs)

	// Policy 2: consult the published reused-address list.
	greylisted, hardBlocked := 0, 0
	var savedVictims int
	for _, a := range blocked.Sorted() {
		if reused.Contains(a) {
			greylisted++
			if n, ok := w.NATByIP[a]; ok {
				savedVictims += n.TotalUsers - n.CompromisedUsers
			}
		} else {
			hardBlocked++
		}
	}
	fmt.Printf("\npolicy 1 (block everything):      %d addresses hard-blocked, ~%d innocent users cut off\n",
		blocked.Len(), natVictims)
	fmt.Printf("policy 2 (greylist reused):       %d hard-blocked, %d greylisted\n", hardBlocked, greylisted)
	fmt.Printf("  innocent users spared:          ~%d (they answer a challenge instead of being dropped)\n",
		savedVictims)
	fmt.Printf("  note: the reused list is detection-based (lower bound) — %d of %d reused-address\n",
		greylisted, natAddrs+dynAddrs)
	fmt.Println("        listings are caught; the crawler and RIPE coverage limits (§3) explain the rest.")

	// DDoS feeds are the exception the paper calls out: for those,
	// operators should block even reused addresses.
	reg := w.Registry
	ddosFeeds := 0
	for fi, f := range reg.Feeds {
		if f.Type == "ddos" && w.Collection.FeedAddrs(fi).Len() > 0 {
			ddosFeeds++
		}
	}
	fmt.Printf("\nexception: %d DDoS feeds carry listings; for volumetric attacks the paper\n", ddosFeeds)
	fmt.Println("recommends blocking those outright, accepting the collateral damage.")

	runGreylistTrace(report, blocked)
}

// runGreylistTrace replays a synthetic day of traffic through a live
// greylisting engine (internal/greylist) built from the study's reuse list,
// comparing it with a block-everything engine.
func runGreylistTrace(report *core.Report, blocked *iputil.Set) {
	policy := &greylist.Policy{
		Reused:           report.ReusedAddrs,
		AlwaysBlockTypes: map[blocklist.Type]bool{blocklist.DDoS: true},
	}
	t0 := time.Date(2020, 4, 1, 9, 0, 0, 0, time.UTC)
	spam := []blocklist.Type{blocklist.Spam}

	// Build a trace: for each reused blocklisted address, one legitimate
	// retrying client and one fire-and-forget abuse attempt; plus clean
	// traffic from an unlisted address.
	var trace []greylist.Attempt
	i := 0
	for _, addr := range report.ReusedAddrs.Sorted() {
		if i >= 200 {
			break
		}
		i++
		trace = append(trace,
			greylist.Attempt{Addr: addr, At: t0, Legit: true, WillRetry: true, ListedTypes: spam},
			greylist.Attempt{Addr: addr, At: t0.Add(6 * time.Hour), Legit: false, ListedTypes: spam},
		)
	}
	trace = append(trace, greylist.Attempt{
		Addr: iputil.MustParseAddr("198.51.100.7"), At: t0, Legit: true, WillRetry: true,
	})
	// Abuse also comes from dedicated (non-reused) listed hosts, where
	// hard blocking is the right answer under both policies.
	j := 0
	for _, addr := range blocked.Sorted() {
		if report.ReusedAddrs.Contains(addr) {
			continue
		}
		if j >= 400 {
			break
		}
		j++
		trace = append(trace, greylist.Attempt{Addr: addr, At: t0, ListedTypes: spam})
	}

	grey := greylist.Simulate(greylist.NewEngine(policy, greylist.Config{}), trace)
	blockAll := greylist.Simulate(greylist.NewEngine(&greylist.Policy{}, greylist.Config{}), trace)

	fmt.Println("\ngreylist engine replay (one legit + one abuse attempt per reused address):")
	fmt.Printf("  block-all: %.0f%% of legitimate traffic lost, %.0f%% of abuse stopped\n",
		blockAll.CollateralRate()*100, blockAll.CatchRate()*100)
	fmt.Printf("  greylist:  %.0f%% of legitimate traffic lost (%d merely delayed), %.0f%% of abuse stopped\n",
		grey.CollateralRate()*100, grey.LegitDelayed, grey.CatchRate()*100)
}
