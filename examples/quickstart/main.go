// Quickstart: run a small end-to-end reproduction study and print the
// paper's headline comparison table.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
)

func main() {
	// A quarter-scale world keeps this under a few seconds.
	params := blgen.DefaultParams(42)
	params.Scale = 0.25

	study := core.NewStudy(core.Config{
		Seed:          42,
		World:         &params,
		CrawlDuration: 24 * time.Hour, // simulated
	})
	fmt.Printf("generated world: %d ASes, %d BitTorrent users, %d blocklist feeds\n",
		len(study.World.ASes), len(study.World.BTUsers), study.World.Registry.Len())

	report, err := study.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(report.SummaryTable().Render())
	fmt.Println()
	fmt.Print(report.GroundTruthTable().Render())
	fmt.Printf("\nreused-address list: %d addresses (report.WriteReusedList writes it)\n",
		report.ReusedAddrs.Len())
}
