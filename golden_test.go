// Golden-file regression tests: the default-seed study must keep producing
// the exact artifacts committed under bench_artifacts/. Any change to world
// generation, the simulator, the detectors or the joins shows up here as a
// byte-level diff; regenerate intentionally with `go test -bench=. .`.
package reuseblock_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenArtifacts re-renders every default-study artifact and diffs it
// against the committed copy. It shares the cached study with the
// benchmarks, so the expensive crawl runs at most once per process.
func TestGoldenArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full default-scale study; skipped in -short mode")
	}
	s, rep := study(t)
	perList := rep.PerList
	artifacts := map[string]string{
		"figure2.txt":  rep.Figure2().Render(),
		"figure3.txt":  rep.Overlap.Figure3().Render(),
		"figure4.txt":  rep.Funnel.Table().Render(),
		"figure5.txt":  perList.Figure5().Render(),
		"figure6.txt":  perList.Figure6().Render(),
		"figure7.txt":  rep.Durations.Figure7().Render(),
		"figure8.txt":  rep.NATUsers.Figure8().Render(),
		"figure9.txt":  rep.Figure9().Render(),
		"table1.txt":   rep.Table1().Render(),
		"table2.txt":   rep.Table2().Render(),
		"section4.txt": rep.CrawlStatsTable().Render(),
		"section5.txt": fmt.Sprintf("top NATed feeds: %v\ntop dynamic feeds: %v\n", perList.TopNATedFeeds, perList.TopDynamicFeeds),
		"metrics.txt":  s.Config.Obs.RenderText(false),
	}
	for name, got := range artifacts {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("bench_artifacts", name)
			want, err := os.ReadFile(path)
			if os.IsNotExist(err) {
				t.Skipf("%s missing; run `go test -bench=. .` to generate it", path)
			}
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("%s drifted from the committed golden copy (len %d -> %d);\n"+
					"if the change is intentional, regenerate with `go test -bench=. .`\ngot:\n%s",
					path, len(want), len(got), got)
			}
		})
	}
}
