// Benchmark for the parallel study pipeline: the same multi-vantage study
// at 1/2/4/8 workers. Wall-clock scaling depends on the host's CPU count
// (a single-CPU runner shows ~1x regardless of workers), so the recorded
// BENCH_parallel.json includes NumCPU alongside the timings.
package reuseblock_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
)

// parallelBenchResult is one worker count's measurement in BENCH_parallel.json.
type parallelBenchResult struct {
	Workers   int     `json:"workers"`
	NsPerOp   int64   `json:"ns_per_op"`
	SpeedupX1 float64 `json:"speedup_vs_workers1"`
}

// BenchmarkStudyParallel runs the crawl-dominated study (4 vantages, 6h of
// simulated time, default-scale world) at increasing worker counts and
// records the scaling curve to BENCH_parallel.json.
func BenchmarkStudyParallel(b *testing.B) {
	wp := blgen.DefaultParams(1)
	w := blgen.Generate(wp)
	counts := []int{1, 2, 4, 8}
	nsPerOp := make(map[int]int64)
	for _, workers := range counts {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := core.NewStudyFromWorld(w, core.Config{
					Seed:          1,
					CrawlDuration: 6 * time.Hour,
					Vantages:      4,
					Workers:       workers,
					SkipICMP:      false,
				})
				if _, err := s.Run(); err != nil {
					b.Fatal(err)
				}
			}
			nsPerOp[workers] = b.Elapsed().Nanoseconds() / int64(b.N)
		})
	}
	var results []parallelBenchResult
	base := nsPerOp[1]
	for _, workers := range counts {
		ns := nsPerOp[workers]
		if ns == 0 {
			continue
		}
		results = append(results, parallelBenchResult{
			Workers:   workers,
			NsPerOp:   ns,
			SpeedupX1: float64(base) / float64(ns),
		})
	}
	out := struct {
		Benchmark  string                `json:"benchmark"`
		NumCPU     int                   `json:"num_cpu"`
		GOMAXPROCS int                   `json:"gomaxprocs"`
		Vantages   int                   `json:"vantages"`
		CrawlHours int                   `json:"crawl_hours"`
		Results    []parallelBenchResult `json:"results"`
	}{
		Benchmark:  "BenchmarkStudyParallel",
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Vantages:   4,
		CrawlHours: 6,
		Results:    results,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
