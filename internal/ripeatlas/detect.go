package ripeatlas

import (
	"sort"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/kneedle"
)

// DetectOptions tune the pipeline; zero values reproduce the paper.
type DetectOptions struct {
	// MinAllocations overrides the knee threshold with a fixed minimum
	// number of allocated addresses per probe; 0 uses kneedle (paper).
	MinAllocations int
	// MaxMeanChangeInterval is the maximum average time between address
	// changes for a probe to count as dynamic; 0 means 1 day (paper).
	MaxMeanChangeInterval time.Duration
	// ExpandBits is the prefix length dynamic addresses are expanded to;
	// 0 means /24 (paper). Ablations use other lengths.
	ExpandBits int
	// KneeSensitivity is the kneedle S parameter; 0 means 1.
	KneeSensitivity float64
}

func (o *DetectOptions) applyDefaults() {
	if o.MaxMeanChangeInterval <= 0 {
		o.MaxMeanChangeInterval = 24 * time.Hour
	}
	if o.ExpandBits <= 0 {
		o.ExpandBits = 24
	}
	if o.KneeSensitivity <= 0 {
		o.KneeSensitivity = 1
	}
}

// ProbeHistory aggregates one probe's allocation history.
type ProbeHistory struct {
	ProbeID int
	// Allocations are the distinct addresses in first-seen order.
	Allocations []iputil.Addr
	// Changes are the timestamps at which the address changed (the first
	// connect is not a change).
	Changes []time.Time
	// ASNs are the distinct AS numbers the addresses belonged to.
	ASNs []int
	// First and Last bound the probe's observed lifetime.
	First, Last time.Time
}

// MultiAS reports whether the probe held addresses in more than one AS.
func (h *ProbeHistory) MultiAS() bool { return len(h.ASNs) > 1 }

// MeanChangeInterval is the average time between address changes; ok is
// false for probes with fewer than two changes.
func (h *ProbeHistory) MeanChangeInterval() (time.Duration, bool) {
	if len(h.Changes) < 2 {
		return 0, false
	}
	span := h.Changes[len(h.Changes)-1].Sub(h.Changes[0])
	return span / time.Duration(len(h.Changes)-1), true
}

// Result is the full output of the detection pipeline, including the funnel
// accounting of Fig 4 and the Fig 2 curve.
type Result struct {
	// Probes is every probe history, keyed by probe ID.
	Probes map[int]*ProbeHistory
	// AllocationCounts is the number of addresses allocated per probe,
	// for all probes (the Fig 2 curve, unsorted).
	AllocationCounts []int
	// KneeThreshold is the allocation-count threshold in force (knee of
	// Fig 2, or the configured override).
	KneeThreshold int

	// Funnel stages (probe counts).
	TotalProbes    int
	MultiASProbes  int // excluded: addresses across multiple ASes
	NoChangeProbes int // probes that never changed address
	SameASProbes   int // probes with all changes inside one AS
	FrequentProbes int // >= KneeThreshold allocations
	DailyProbes    int // mean change interval <= 1 day (final)

	// Address sets at each funnel stage.
	AllAddresses      *iputil.Set // every address allocated to any probe
	SameASAddresses   *iputil.Set
	FrequentAddresses *iputil.Set
	DynamicAddresses  *iputil.Set // addresses of the final probes
	// DynamicPrefixes is DynamicAddresses expanded to ExpandBits.
	DynamicPrefixes *iputil.PrefixSet
	// RIPEPrefixes is every observed address expanded to ExpandBits — the
	// paper's "90.5K /24 RIPE prefixes" denominator.
	RIPEPrefixes *iputil.PrefixSet
	// DynamicProbeIDs lists the final (dynamic) probes.
	DynamicProbeIDs []int
}

// BuildHistories folds raw log entries into per-probe allocation histories.
// Entries may be unsorted; disconnect events bound lifetimes but only
// connect events carry allocations.
func BuildHistories(entries []LogEntry) map[int]*ProbeHistory {
	sorted := make([]LogEntry, len(entries))
	copy(sorted, entries)
	SortLogs(sorted)
	probes := make(map[int]*ProbeHistory)
	current := make(map[int]iputil.Addr)
	seenAddr := make(map[int]map[iputil.Addr]bool)
	seenASN := make(map[int]map[int]bool)
	for _, e := range sorted {
		h := probes[e.ProbeID]
		if h == nil {
			h = &ProbeHistory{ProbeID: e.ProbeID, First: e.Timestamp}
			probes[e.ProbeID] = h
			seenAddr[e.ProbeID] = make(map[iputil.Addr]bool)
			seenASN[e.ProbeID] = make(map[int]bool)
		}
		h.Last = e.Timestamp
		if e.Event != EventConnect {
			continue
		}
		if !seenASN[e.ProbeID][e.ASN] {
			seenASN[e.ProbeID][e.ASN] = true
			h.ASNs = append(h.ASNs, e.ASN)
		}
		prev, had := current[e.ProbeID]
		if had && prev == e.Addr {
			continue // reconnect on the same address: not an allocation
		}
		if had {
			h.Changes = append(h.Changes, e.Timestamp)
		}
		current[e.ProbeID] = e.Addr
		if !seenAddr[e.ProbeID][e.Addr] {
			seenAddr[e.ProbeID][e.Addr] = true
			h.Allocations = append(h.Allocations, e.Addr)
		}
	}
	return probes
}

// Detect runs the paper's full pipeline over raw connection logs.
func Detect(entries []LogEntry, opts DetectOptions) *Result {
	opts.applyDefaults()
	probes := BuildHistories(entries)
	res := &Result{
		Probes:            probes,
		AllAddresses:      iputil.NewSet(),
		SameASAddresses:   iputil.NewSet(),
		FrequentAddresses: iputil.NewSet(),
		DynamicAddresses:  iputil.NewSet(),
		DynamicPrefixes:   iputil.NewPrefixSet(),
		RIPEPrefixes:      iputil.NewPrefixSet(),
	}
	res.TotalProbes = len(probes)

	ids := make([]int, 0, len(probes))
	for id := range probes {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var sameAS []*ProbeHistory
	for _, id := range ids {
		h := probes[id]
		res.AllocationCounts = append(res.AllocationCounts, len(h.Allocations))
		for _, a := range h.Allocations {
			res.AllAddresses.Add(a)
			res.RIPEPrefixes.Add(iputil.PrefixFrom(a, opts.ExpandBits))
		}
		switch {
		case h.MultiAS():
			res.MultiASProbes++
		case len(h.Changes) == 0:
			res.NoChangeProbes++
		default:
			sameAS = append(sameAS, h)
			res.SameASProbes++
			for _, a := range h.Allocations {
				res.SameASAddresses.Add(a)
			}
		}
	}

	// Stage 2: the knee threshold over the Fig 2 curve.
	res.KneeThreshold = opts.MinAllocations
	if res.KneeThreshold <= 0 {
		// The knee is judged on the log-scale curve, as plotted in Fig 2.
		knee, _, err := kneedle.FindSortedCounts(res.AllocationCounts,
			kneedle.Options{Sensitivity: opts.KneeSensitivity, LogY: true})
		if err != nil || knee < 2 {
			// Degenerate inputs (tiny fleets, no churners): fall back to
			// the paper's published threshold.
			knee = 8
		}
		res.KneeThreshold = knee
	}

	var frequent []*ProbeHistory
	for _, h := range sameAS {
		if len(h.Allocations) >= res.KneeThreshold {
			frequent = append(frequent, h)
			res.FrequentProbes++
			for _, a := range h.Allocations {
				res.FrequentAddresses.Add(a)
			}
		}
	}

	// Stage 3: probes that change addresses at least daily on average.
	for _, h := range frequent {
		mean, ok := h.MeanChangeInterval()
		if !ok || mean > opts.MaxMeanChangeInterval {
			continue
		}
		res.DailyProbes++
		res.DynamicProbeIDs = append(res.DynamicProbeIDs, h.ProbeID)
		for _, a := range h.Allocations {
			res.DynamicAddresses.Add(a)
			res.DynamicPrefixes.Add(iputil.PrefixFrom(a, opts.ExpandBits))
		}
	}
	return res
}
