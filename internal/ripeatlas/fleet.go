package ripeatlas

import (
	"math/rand"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// ProbeSpec describes one simulated probe's allocation policy.
type ProbeSpec struct {
	ID  int
	ASN int
	// Pool is the prefix addresses are drawn from.
	Pool iputil.Prefix
	// MeanLease is the average address-lease duration; zero makes the
	// probe static (a single address for its whole life).
	MeanLease time.Duration
	// MoveAt, when non-zero, relocates the probe at that offset from the
	// fleet start into MovePool/MoveASN — modelling probes that change
	// hosts or ISPs, which the paper's same-AS filter must exclude.
	MoveAt   time.Duration
	MovePool iputil.Prefix
	MoveASN  int
	// ReconnectEvery adds periodic disconnect/connect pairs on the same
	// address (flaky uplinks); zero disables them.
	ReconnectEvery time.Duration
}

// FleetParams configures SimulateFleet.
type FleetParams struct {
	Seed     int64
	Start    time.Time
	Duration time.Duration
	Probes   []ProbeSpec
}

// SimulateFleet plays out every probe's allocation policy over the window
// and returns the merged, time-sorted connection log.
func SimulateFleet(p FleetParams) []LogEntry {
	rng := rand.New(rand.NewSource(p.Seed))
	var out []LogEntry
	for i := range p.Probes {
		out = append(out, simulateProbe(rng, p.Start, p.Duration, &p.Probes[i])...)
	}
	SortLogs(out)
	return out
}

func simulateProbe(rng *rand.Rand, start time.Time, dur time.Duration, spec *ProbeSpec) []LogEntry {
	var out []LogEntry
	end := start.Add(dur)
	now := start
	pool, asn := spec.Pool, spec.ASN
	cur := randomHost(rng, pool, 0)
	out = append(out, LogEntry{Timestamp: now, ProbeID: spec.ID, Event: EventConnect, Addr: cur, ASN: asn})
	moveDue := spec.MoveAt > 0

	nextReconnect := end.Add(time.Hour)
	if spec.ReconnectEvery > 0 {
		nextReconnect = now.Add(jittered(rng, spec.ReconnectEvery))
	}
	nextLease := end.Add(time.Hour)
	if spec.MeanLease > 0 {
		nextLease = now.Add(expDuration(rng, spec.MeanLease))
	}
	moveTime := end.Add(time.Hour)
	if moveDue {
		moveTime = start.Add(spec.MoveAt)
	}

	for {
		// Next event is the earliest of lease expiry, reconnect, move.
		next := nextLease
		kind := "lease"
		if nextReconnect.Before(next) {
			next, kind = nextReconnect, "reconnect"
		}
		if moveTime.Before(next) {
			next, kind = moveTime, "move"
		}
		if next.After(end) {
			break
		}
		now = next
		switch kind {
		case "lease":
			out = append(out, LogEntry{Timestamp: now, ProbeID: spec.ID, Event: EventDisconnect, Addr: cur, ASN: asn})
			cur = randomHost(rng, pool, cur)
			out = append(out, LogEntry{Timestamp: now.Add(time.Minute), ProbeID: spec.ID, Event: EventConnect, Addr: cur, ASN: asn})
			nextLease = now.Add(expDuration(rng, spec.MeanLease))
		case "reconnect":
			out = append(out, LogEntry{Timestamp: now, ProbeID: spec.ID, Event: EventDisconnect, Addr: cur, ASN: asn})
			out = append(out, LogEntry{Timestamp: now.Add(30 * time.Second), ProbeID: spec.ID, Event: EventConnect, Addr: cur, ASN: asn})
			nextReconnect = now.Add(jittered(rng, spec.ReconnectEvery))
		case "move":
			out = append(out, LogEntry{Timestamp: now, ProbeID: spec.ID, Event: EventDisconnect, Addr: cur, ASN: asn})
			pool, asn = spec.MovePool, spec.MoveASN
			cur = randomHost(rng, pool, 0)
			out = append(out, LogEntry{Timestamp: now.Add(time.Hour), ProbeID: spec.ID, Event: EventConnect, Addr: cur, ASN: asn})
			moveTime = end.Add(time.Hour)
		}
	}
	return out
}

// randomHost draws a host address from the pool distinct from avoid (pass 0
// to accept anything). Network and broadcast addresses are skipped for
// pools of /30 or shorter.
func randomHost(rng *rand.Rand, pool iputil.Prefix, avoid iputil.Addr) iputil.Addr {
	lo, n := 0, pool.Size()
	if n >= 4 {
		lo, n = 1, n-2
	}
	for {
		a := pool.Nth(lo + rng.Intn(n))
		if a != avoid {
			return a
		}
	}
}

// expDuration draws an exponentially distributed duration with the given
// mean, clamped away from zero so event times stay strictly ordered.
func expDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d < 5*time.Minute {
		d = 5 * time.Minute
	}
	return d
}

// jittered draws uniformly in [0.5, 1.5) times base.
func jittered(rng *rand.Rand, base time.Duration) time.Duration {
	return base/2 + time.Duration(rng.Int63n(int64(base)))
}

// StandardFleet builds a probe fleet shaped like the paper's population
// (Fig 2): a majority of static probes, a band of slow churners, a heavy
// tail of fast churners, and a slice of AS movers. scale multiplies the
// population (scale 1 ≈ 1/10 of the real 15.7K-probe fleet).
func StandardFleet(seed int64, scale float64) FleetParams {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	var probes []ProbeSpec
	id := 1
	addProbe := func(spec ProbeSpec) {
		spec.ID = id
		id++
		probes = append(probes, spec)
	}
	// Pools: give every probe its own /24 in distinct space. ASNs cluster
	// ~8 probes per AS.
	pool := func(i int) iputil.Prefix {
		return iputil.PrefixFrom(iputil.AddrFrom4(60, byte(i/250%250), byte(i%250), 0), 24)
	}
	pi := 0
	asnOf := func() int { return 7000 + pi/8 }

	// 59% static (paper: 9.3K of 15.7K never change).
	for i := 0; i < n(930); i++ {
		addProbe(ProbeSpec{ASN: asnOf(), Pool: pool(pi), ReconnectEvery: 30 * 24 * time.Hour})
		pi++
	}
	// ~27% slow churners: several allocations over 16 months, well above
	// one day between changes.
	for i := 0; i < n(420); i++ {
		lease := time.Duration(20+rng.Intn(90)) * 24 * time.Hour
		addProbe(ProbeSpec{ASN: asnOf(), Pool: pool(pi), MeanLease: lease})
		pi++
	}
	// Fast churners: daily or sub-daily leases — the real dynamic pools.
	for i := 0; i < n(260); i++ {
		lease := time.Duration(6+rng.Intn(30)) * time.Hour
		addProbe(ProbeSpec{ASN: asnOf(), Pool: pool(pi), MeanLease: lease})
		pi++
	}
	// ~13% AS movers, excluded by the same-AS filter.
	for i := 0; i < n(200); i++ {
		moveAt := time.Duration(60+rng.Intn(300)) * 24 * time.Hour
		p1, p2 := pool(pi), pool(pi+5000)
		addProbe(ProbeSpec{
			ASN: asnOf(), Pool: p1, MeanLease: 15 * 24 * time.Hour,
			MoveAt: moveAt, MovePool: p2, MoveASN: 9000 + pi,
		})
		pi++
	}
	return FleetParams{
		Seed:     seed,
		Start:    time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC),
		Duration: 16 * 30 * 24 * time.Hour, // ~16 months
		Probes:   probes,
	}
}
