// Property tests that run the RIPE detection pipeline against generated
// worlds' ground truth (the in-package property_test.go checks structural
// invariants on synthetic histories; this file checks world-level truth via
// testkit, which it can only import from an external test package — the
// import cycle testkit → core → crawler forbids an in-package import).
package ripeatlas_test

import (
	"testing"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
	"github.com/reuseblock/reuseblock/internal/testkit"
)

// TestDetectAgainstGeneratedWorlds: for randomized probe fleets and churn
// regimes, Detect must keep its funnel sound and only flag genuinely
// dynamic pools — the same oracle the end-to-end suite applies, here run
// directly on the world's RIPE logs across more worlds (no crawl needed,
// so this sweep is cheap).
func TestDetectAgainstGeneratedWorlds(t *testing.T) {
	seeds := []int64{301, 302, 303, 304, 305, 306, 307, 308}
	if testing.Short() {
		seeds = seeds[:2]
	}
	flagged := 0
	for _, genSeed := range seeds {
		spec := testkit.GenWorldSpec(genSeed)
		world := blgen.Generate(spec.Params())
		res := ripeatlas.Detect(world.RIPELogs, ripeatlas.DetectOptions{})
		o := testkit.Oracle{World: world}
		if err := o.CheckDynamicDetection(res); err != nil {
			t.Errorf("world %d (%s): %v", genSeed, spec, err)
		}
		if err := testkit.CheckKneeStability(res.AllocationCounts, 3); err != nil {
			t.Errorf("world %d (%s): %v", genSeed, spec, err)
		}
		flagged += res.DynamicPrefixes.Len()
	}
	if flagged == 0 {
		t.Errorf("no world produced a single dynamic prefix — detector or generator regression")
	}
}
