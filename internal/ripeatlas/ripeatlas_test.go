package ripeatlas

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

var t0 = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

func entry(day int, probe int, ev Event, addr string, asn int) LogEntry {
	return LogEntry{
		Timestamp: t0.Add(time.Duration(day*24) * time.Hour),
		ProbeID:   probe,
		Event:     ev,
		Addr:      iputil.MustParseAddr(addr),
		ASN:       asn,
	}
}

func TestLogRoundTrip(t *testing.T) {
	in := []LogEntry{
		entry(0, 1, EventConnect, "10.0.0.1", 64500),
		entry(1, 1, EventDisconnect, "10.0.0.1", 64500),
		entry(1, 2, EventConnect, "192.0.2.9", 64501),
	}
	var buf bytes.Buffer
	if err := WriteLogs(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadLogs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("read %d entries, want %d", len(out), len(in))
	}
	for i := range in {
		if !out[i].Timestamp.Equal(in[i].Timestamp) || out[i] != (LogEntry{
			Timestamp: out[i].Timestamp, ProbeID: in[i].ProbeID,
			Event: in[i].Event, Addr: in[i].Addr, ASN: in[i].ASN,
		}) {
			t.Errorf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestReadLogsErrors(t *testing.T) {
	bad := []string{
		"not-a-time,1,connect,10.0.0.1,1\n",
		"2019-01-01T00:00:00Z,x,connect,10.0.0.1,1\n",
		"2019-01-01T00:00:00Z,1,frobnicate,10.0.0.1,1\n",
		"2019-01-01T00:00:00Z,1,connect,999.0.0.1,1\n",
		"2019-01-01T00:00:00Z,1,connect,10.0.0.1,x\n",
		"2019-01-01T00:00:00Z,1,connect\n",
	}
	for _, in := range bad {
		if _, err := ReadLogs(strings.NewReader(in)); err == nil {
			t.Errorf("ReadLogs(%q) succeeded, want error", in)
		}
	}
}

func TestBuildHistoriesCountsAllocations(t *testing.T) {
	logs := []LogEntry{
		entry(0, 1, EventConnect, "10.0.0.1", 1),
		entry(1, 1, EventDisconnect, "10.0.0.1", 1),
		entry(1, 1, EventConnect, "10.0.0.1", 1), // reconnect, same addr: no change
		entry(2, 1, EventConnect, "10.0.0.2", 1), // change 1
		entry(3, 1, EventConnect, "10.0.0.1", 1), // change 2 (back to a known addr)
	}
	h := BuildHistories(logs)[1]
	if h == nil {
		t.Fatal("no history")
	}
	if len(h.Allocations) != 2 {
		t.Errorf("Allocations = %v", h.Allocations)
	}
	if len(h.Changes) != 2 {
		t.Errorf("Changes = %v", h.Changes)
	}
	if h.MultiAS() {
		t.Error("single-AS probe flagged MultiAS")
	}
	mean, ok := h.MeanChangeInterval()
	if !ok || mean != 24*time.Hour {
		t.Errorf("mean interval = %v, %v", mean, ok)
	}
}

func TestBuildHistoriesMultiAS(t *testing.T) {
	logs := []LogEntry{
		entry(0, 7, EventConnect, "10.0.0.1", 1),
		entry(5, 7, EventConnect, "172.16.0.1", 2),
	}
	h := BuildHistories(logs)[7]
	if !h.MultiAS() {
		t.Error("probe with two ASNs not flagged")
	}
}

func TestDetectPipelineStages(t *testing.T) {
	var logs []LogEntry
	// Probe 1: static.
	logs = append(logs, entry(0, 1, EventConnect, "10.0.0.1", 100))
	// Probe 2: daily churner with 10 allocations in one /24 — dynamic.
	for d := 0; d < 10; d++ {
		logs = append(logs, entry(d, 2, EventConnect, "10.1.0."+itoa(d+1), 100))
	}
	// Probe 3: frequent but slow (10 allocations, 10-day gaps) — filtered
	// by the daily-change rule.
	for d := 0; d < 10; d++ {
		logs = append(logs, entry(d*10, 3, EventConnect, "10.2.0."+itoa(d+1), 100))
	}
	// Probe 4: multi-AS churner — excluded.
	for d := 0; d < 10; d++ {
		logs = append(logs, entry(d, 4, EventConnect, "10.3.0."+itoa(d+1), 100+d%2))
	}
	// Probe 5: three changes only — below the fixed threshold.
	for d := 0; d < 3; d++ {
		logs = append(logs, entry(d, 5, EventConnect, "10.4.0."+itoa(d+1), 100))
	}
	res := Detect(logs, DetectOptions{MinAllocations: 8})
	if res.TotalProbes != 5 {
		t.Fatalf("TotalProbes = %d", res.TotalProbes)
	}
	if res.MultiASProbes != 1 {
		t.Errorf("MultiASProbes = %d", res.MultiASProbes)
	}
	if res.NoChangeProbes != 1 {
		t.Errorf("NoChangeProbes = %d", res.NoChangeProbes)
	}
	if res.SameASProbes != 3 {
		t.Errorf("SameASProbes = %d", res.SameASProbes)
	}
	if res.FrequentProbes != 2 {
		t.Errorf("FrequentProbes = %d", res.FrequentProbes)
	}
	if res.DailyProbes != 1 || len(res.DynamicProbeIDs) != 1 || res.DynamicProbeIDs[0] != 2 {
		t.Errorf("DailyProbes = %d, ids = %v", res.DailyProbes, res.DynamicProbeIDs)
	}
	if !res.DynamicPrefixes.Contains(iputil.MustParsePrefix("10.1.0.0/24")) {
		t.Error("dynamic /24 missing")
	}
	if res.DynamicPrefixes.Len() != 1 {
		t.Errorf("DynamicPrefixes = %d, want 1", res.DynamicPrefixes.Len())
	}
	if res.DynamicAddresses.Len() != 10 {
		t.Errorf("DynamicAddresses = %d", res.DynamicAddresses.Len())
	}
}

func TestDetectExpandBitsAblation(t *testing.T) {
	var logs []LogEntry
	// Addresses spread across the /24 so that /28 expansion splits them.
	for d := 0; d < 10; d++ {
		logs = append(logs, entry(d, 2, EventConnect, "10.1.0."+itoa(d*20+1), 100))
	}
	res20 := Detect(logs, DetectOptions{MinAllocations: 8, ExpandBits: 20})
	if !res20.DynamicPrefixes.Contains(iputil.MustParsePrefix("10.1.0.0/20")) {
		t.Error("expected /20 expansion")
	}
	res28 := Detect(logs, DetectOptions{MinAllocations: 8, ExpandBits: 28})
	if res28.DynamicPrefixes.Len() < 2 {
		t.Errorf("/28 expansion should split the pool, got %d prefixes", res28.DynamicPrefixes.Len())
	}
}

func TestDetectKneeFallback(t *testing.T) {
	// Two probes, no churners: kneedle cannot find a knee; the pipeline
	// must fall back to the paper's threshold of 8 and find nothing.
	logs := []LogEntry{
		entry(0, 1, EventConnect, "10.0.0.1", 1),
		entry(0, 2, EventConnect, "10.0.1.1", 1),
		entry(1, 2, EventConnect, "10.0.1.2", 1),
	}
	res := Detect(logs, DetectOptions{})
	if res.KneeThreshold != 8 {
		t.Errorf("KneeThreshold = %d, want fallback 8", res.KneeThreshold)
	}
	if res.DailyProbes != 0 {
		t.Errorf("DailyProbes = %d", res.DailyProbes)
	}
}

func TestSimulateFleetDeterministic(t *testing.T) {
	p := StandardFleet(5, 0.05)
	a := SimulateFleet(p)
	b := SimulateFleet(p)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs", i)
		}
	}
}

func TestStandardFleetShape(t *testing.T) {
	p := StandardFleet(42, 0.2)
	logs := SimulateFleet(p)
	res := Detect(logs, DetectOptions{})
	if res.TotalProbes != len(p.Probes) {
		t.Fatalf("probes = %d, want %d", res.TotalProbes, len(p.Probes))
	}
	// Paper shape: a majority never change, ~13% multi-AS, a small final
	// fraction (~4%) of daily churners.
	frNoChange := float64(res.NoChangeProbes) / float64(res.TotalProbes)
	if frNoChange < 0.40 || frNoChange > 0.75 {
		t.Errorf("no-change fraction = %.2f, want near 0.59", frNoChange)
	}
	frMulti := float64(res.MultiASProbes) / float64(res.TotalProbes)
	if frMulti < 0.05 || frMulti > 0.25 {
		t.Errorf("multi-AS fraction = %.2f, want near 0.13", frMulti)
	}
	frDaily := float64(res.DailyProbes) / float64(res.TotalProbes)
	if frDaily < 0.01 || frDaily > 0.25 {
		t.Errorf("daily fraction = %.2f, want small but nonzero", frDaily)
	}
	// The knee should be in the single-digit-to-tens range like Fig 2.
	if res.KneeThreshold < 2 || res.KneeThreshold > 60 {
		t.Errorf("knee = %d", res.KneeThreshold)
	}
	// Fast churners cover far more addresses per probe than the rest.
	if res.DynamicAddresses.Len() <= res.DailyProbes*5 {
		t.Errorf("dynamic probes cover too few addresses: %d addrs for %d probes",
			res.DynamicAddresses.Len(), res.DailyProbes)
	}
}

func TestFleetMoverExcluded(t *testing.T) {
	p := FleetParams{
		Seed:     1,
		Start:    t0,
		Duration: 100 * 24 * time.Hour,
		Probes: []ProbeSpec{{
			ID: 1, ASN: 100,
			Pool:      iputil.MustParsePrefix("10.0.0.0/24"),
			MeanLease: 12 * time.Hour,
			MoveAt:    50 * 24 * time.Hour,
			MovePool:  iputil.MustParsePrefix("172.16.0.0/24"),
			MoveASN:   200,
		}},
	}
	res := Detect(SimulateFleet(p), DetectOptions{MinAllocations: 4})
	if res.MultiASProbes != 1 || res.DailyProbes != 0 {
		t.Errorf("mover not excluded: %+v", res)
	}
}

func itoa(i int) string {
	s := ""
	if i == 0 {
		return "0"
	}
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}
