package ripeatlas

import (
	"math/rand"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// genRandomLogs builds a random but well-formed log: probes connect and
// disconnect with random addresses from small pools.
func genRandomLogs(rng *rand.Rand, probes, events int) []LogEntry {
	var out []LogEntry
	base := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	for p := 1; p <= probes; p++ {
		pool := iputil.PrefixFrom(iputil.AddrFrom4(10, byte(p), 0, 0), 24)
		asn := 100 + p%3
		at := base
		for e := 0; e < events; e++ {
			at = at.Add(time.Duration(1+rng.Intn(48)) * time.Hour)
			ev := EventConnect
			if rng.Intn(3) == 0 {
				ev = EventDisconnect
			}
			out = append(out, LogEntry{
				Timestamp: at,
				ProbeID:   p,
				Event:     ev,
				Addr:      pool.Nth(1 + rng.Intn(200)),
				ASN:       asn,
			})
		}
	}
	return out
}

// TestBuildHistoriesInvariants checks structural invariants over random logs.
func TestBuildHistoriesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		logs := genRandomLogs(rng, 1+rng.Intn(6), 1+rng.Intn(40))
		hist := BuildHistories(logs)
		for id, h := range hist {
			if h.ProbeID != id {
				t.Fatalf("history keyed %d has ProbeID %d", id, h.ProbeID)
			}
			if h.Last.Before(h.First) {
				t.Fatalf("probe %d: Last before First", id)
			}
			// Allocations are distinct.
			seen := map[iputil.Addr]bool{}
			for _, a := range h.Allocations {
				if seen[a] {
					t.Fatalf("probe %d: duplicate allocation %v", id, a)
				}
				seen[a] = true
			}
			// Changes count can never exceed connect events minus one and
			// never be negative; each change implies at least two
			// allocations unless it revisits an address.
			if len(h.Changes) > 0 && len(h.Allocations) < 2 {
				t.Fatalf("probe %d: %d changes but %d allocations",
					id, len(h.Changes), len(h.Allocations))
			}
			// Changes timestamps are non-decreasing.
			for i := 1; i < len(h.Changes); i++ {
				if h.Changes[i].Before(h.Changes[i-1]) {
					t.Fatalf("probe %d: changes out of order", id)
				}
			}
			// ASNs are distinct.
			asns := map[int]bool{}
			for _, a := range h.ASNs {
				if asns[a] {
					t.Fatalf("probe %d: duplicate ASN %d", id, a)
				}
				asns[a] = true
			}
		}
	}
}

// TestDetectStagesMonotone: each pipeline stage can only shrink the probe
// population, and every stage's address set is covered by the previous one.
func TestDetectStagesMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		logs := genRandomLogs(rng, 8, 60)
		res := Detect(logs, DetectOptions{MinAllocations: 3})
		if res.SameASProbes > res.TotalProbes ||
			res.FrequentProbes > res.SameASProbes ||
			res.DailyProbes > res.FrequentProbes {
			t.Fatalf("funnel not monotone: %d >= %d >= %d >= %d",
				res.TotalProbes, res.SameASProbes, res.FrequentProbes, res.DailyProbes)
		}
		if res.MultiASProbes+res.NoChangeProbes+res.SameASProbes != res.TotalProbes {
			t.Fatalf("stage partition broken: %d + %d + %d != %d",
				res.MultiASProbes, res.NoChangeProbes, res.SameASProbes, res.TotalProbes)
		}
		for _, a := range res.DynamicAddresses.Sorted() {
			if !res.FrequentAddresses.Contains(a) {
				t.Fatalf("dynamic address %v not in frequent set", a)
			}
			if !res.SameASAddresses.Contains(a) {
				t.Fatalf("dynamic address %v not in same-AS set", a)
			}
			if !res.AllAddresses.Contains(a) {
				t.Fatalf("dynamic address %v not in all set", a)
			}
			if !res.DynamicPrefixes.Covers(a) {
				t.Fatalf("dynamic address %v not covered by its prefixes", a)
			}
		}
	}
}

// TestDetectLogOrderInsensitive: shuffling the input log must not change
// the outcome (SortLogs normalises).
func TestDetectLogOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	logs := genRandomLogs(rng, 6, 50)
	a := Detect(logs, DetectOptions{MinAllocations: 4})
	shuffled := make([]LogEntry, len(logs))
	copy(shuffled, logs)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := Detect(shuffled, DetectOptions{MinAllocations: 4})
	if a.TotalProbes != b.TotalProbes || a.DailyProbes != b.DailyProbes ||
		a.DynamicAddresses.Len() != b.DynamicAddresses.Len() ||
		a.DynamicPrefixes.Len() != b.DynamicPrefixes.Len() {
		t.Fatalf("order sensitivity: %+v vs %+v", a.DailyProbes, b.DailyProbes)
	}
}
