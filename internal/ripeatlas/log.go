// Package ripeatlas models RIPE Atlas probe connection logs and implements
// the paper's dynamic-address detection pipeline (§3.2).
//
// The paper observes probe measurement logs for 16 months and flags /24
// prefixes as dynamically allocated when a probe (1) was re-allocated
// addresses only within one AS, (2) went through at least K address
// allocations — K chosen by knee-point detection over the sorted per-probe
// allocation counts (Fig 2; K = 8 in the paper) — and (3) changed addresses
// at least daily on average.
//
// Because genuine RIPE Atlas logs cannot ship with this repository, the
// package also contains a probe-fleet simulator that emits logs with the
// same schema from configurable address-allocation policies.
package ripeatlas

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Event is a probe connection-log event type.
type Event string

// Connection-log event kinds.
const (
	EventConnect    Event = "connect"
	EventDisconnect Event = "disconnect"
)

// LogEntry is one probe connection-log line: at Timestamp, probe ProbeID was
// seen (dis)connecting through Addr, which is originated by AS number ASN.
type LogEntry struct {
	Timestamp time.Time
	ProbeID   int
	Event     Event
	Addr      iputil.Addr
	ASN       int
}

// WriteLogs writes entries as CSV: RFC 3339 timestamp, probe ID, event,
// address, ASN.
func WriteLogs(w io.Writer, entries []LogEntry) error {
	bw := bufio.NewWriter(w)
	cw := csv.NewWriter(bw)
	for _, e := range entries {
		rec := []string{
			e.Timestamp.UTC().Format(time.RFC3339),
			strconv.Itoa(e.ProbeID),
			string(e.Event),
			e.Addr.String(),
			strconv.Itoa(e.ASN),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadLogs parses the CSV format produced by WriteLogs.
func ReadLogs(r io.Reader) ([]LogEntry, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	var out []LogEntry
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ts, err := time.Parse(time.RFC3339, rec[0])
		if err != nil {
			return nil, fmt.Errorf("ripeatlas: line %d: bad timestamp: %w", line, err)
		}
		probe, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("ripeatlas: line %d: bad probe ID: %w", line, err)
		}
		ev := Event(rec[2])
		if ev != EventConnect && ev != EventDisconnect {
			return nil, fmt.Errorf("ripeatlas: line %d: unknown event %q", line, rec[2])
		}
		addr, err := iputil.ParseAddr(rec[3])
		if err != nil {
			return nil, fmt.Errorf("ripeatlas: line %d: %w", line, err)
		}
		asn, err := strconv.Atoi(rec[4])
		if err != nil {
			return nil, fmt.Errorf("ripeatlas: line %d: bad ASN: %w", line, err)
		}
		out = append(out, LogEntry{Timestamp: ts, ProbeID: probe, Event: ev, Addr: addr, ASN: asn})
	}
	return out, nil
}

// SortLogs orders entries by timestamp, then probe ID, in place.
func SortLogs(entries []LogEntry) {
	sort.SliceStable(entries, func(i, j int) bool {
		if !entries[i].Timestamp.Equal(entries[j].Timestamp) {
			return entries[i].Timestamp.Before(entries[j].Timestamp)
		}
		return entries[i].ProbeID < entries[j].ProbeID
	})
}
