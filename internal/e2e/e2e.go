// Package e2e is the multi-process scenario harness: it boots the paper's
// pipeline as real OS processes over loopback — a sharded blcrawl fleet, the
// blgen/bldetect dataset steps, and a blserve instance — and drives
// assertions against the *served* HTTP API, cross-checked against the
// testkit ground-truth oracles. It is the integration layer the unit-level
// property suite cannot cover: a fault scenario is asserted all the way from
// the netsim datagram hooks to the verdict bytes a client receives.
//
// The harness has four layers, modelled on the testworld/hivesim exemplars:
//
//   - Process lifecycle (proc.go): spawn, captured stdout/stderr, readiness
//     polling, graceful drain, log dumps on failure.
//   - Stack assembly (stack.go): one BootStack call runs crawlers → merge →
//     bldetect → blserve and hands back a live base URL plus the in-process
//     ground-truth world for oracle checks.
//   - Scenarios (suite.go): a hivesim-style Suite of named scenarios, each a
//     fault catalogue name plus a WorldSpec seed, with a -short smoke subset
//     and shrink-on-failure reporting of the offending seed.
//   - Load generation (loadgen.go): a concurrent driver for the zero-alloc
//     /v1/check path recording p50/p99 latency and error rate to
//     BENCH_e2e.json.
//
// The scenario tests themselves live behind the `e2e` build tag (they build
// binaries and fork processes); the helpers in this package are plain
// library code so in-process tests (cmd/blserve) can reuse the readiness
// helpers.
package e2e

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sync"
)

// commands are the pipeline binaries the harness builds and forks.
var commands = []string{"blgen", "blcrawl", "bldetect", "blserve", "blfleet"}

var binState struct {
	once sync.Once
	dir  string
	err  error
}

// RepoRoot locates the module root from this source file's compile-time
// path (internal/e2e sits two levels below it). The harness only ever runs
// from a source checkout — it builds the cmd binaries with `go build`.
func RepoRoot() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// Binaries builds every pipeline command once per test process into a
// temporary directory and returns name → executable path. Subsequent calls
// are free. Call CleanupBinaries (e.g. from TestMain) to remove the build.
func Binaries() (map[string]string, error) {
	binState.once.Do(func() {
		dir, err := os.MkdirTemp("", "reuseblock-e2e-bin-")
		if err != nil {
			binState.err = err
			return
		}
		args := []string{"build", "-o", dir + string(os.PathSeparator)}
		for _, c := range commands {
			args = append(args, "./cmd/"+c)
		}
		cmd := exec.Command("go", args...)
		cmd.Dir = RepoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			binState.err = fmt.Errorf("e2e: building binaries: %w\n%s", err, out)
			os.RemoveAll(dir)
			return
		}
		binState.dir = dir
	})
	if binState.err != nil {
		return nil, binState.err
	}
	bins := make(map[string]string, len(commands))
	for _, c := range commands {
		bins[c] = filepath.Join(binState.dir, c)
	}
	return bins, nil
}

// CleanupBinaries removes the per-process binary build directory.
func CleanupBinaries() {
	if binState.dir != "" {
		os.RemoveAll(binState.dir)
	}
}
