package e2e

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fastServer answers /v1/check for both GET (single) and POST (batch),
// recording per-method counts and the X-Forwarded-For values it saw.
type fastServer struct {
	gets, posts atomic.Int64
	mu          sync.Mutex
	forwarded   map[string]int
}

func (fs *fastServer) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			fs.mu.Lock()
			if fs.forwarded == nil {
				fs.forwarded = map[string]int{}
			}
			fs.forwarded[xff]++
			fs.mu.Unlock()
		}
		switch r.Method {
		case http.MethodGet:
			fs.gets.Add(1)
			w.Write([]byte(`{"ip":"1.2.3.4","listed":false}`))
		case http.MethodPost:
			fs.posts.Add(1)
			w.Write([]byte(`{"results":[]}`))
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	}
}

func TestLoadGenMixedWorkload(t *testing.T) {
	fs := &fastServer{}
	ts := httptest.NewServer(fs.handler())
	defer ts.Close()

	res, err := LoadGen{
		BaseURL:       ts.URL,
		Targets:       []string{"1.2.3.4", "5.6.7.8"},
		Concurrency:   4,
		Duration:      150 * time.Millisecond,
		BatchFraction: 0.5,
		BatchSize:     10,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	gets, posts := int(fs.gets.Load()), int(fs.posts.Load())
	if gets == 0 || posts == 0 {
		t.Fatalf("mixed workload sent gets=%d posts=%d; want both > 0", gets, posts)
	}
	if res.Requests != gets+posts {
		t.Fatalf("result counts %d requests, server saw %d", res.Requests, gets+posts)
	}
	if res.Errors != 0 || res.Shed != 0 || res.MalformedShed != 0 {
		t.Fatalf("healthy server produced errors=%d shed=%d malformed=%d",
			res.Errors, res.Shed, res.MalformedShed)
	}
	if res.GoodputRPS <= 0 {
		t.Fatalf("goodput %v, want > 0", res.GoodputRPS)
	}
	cheap, heavy := res.PerClass["cheap"], res.PerClass["heavy"]
	if cheap.OK != gets || heavy.OK != posts {
		t.Fatalf("per-class OK cheap=%d heavy=%d; server saw gets=%d posts=%d",
			cheap.OK, heavy.OK, gets, posts)
	}
	// With a 0.5 fraction half the workers are batch clients, so against a
	// uniform-speed server the classes should be near-balanced; allow wide
	// slack since workers stop mid-cycle at the deadline.
	if heavy.Requests < res.Requests/4 || cheap.Requests < res.Requests/4 {
		t.Fatalf("class split cheap=%d heavy=%d of %d is too lopsided for fraction 0.5",
			cheap.Requests, heavy.Requests, res.Requests)
	}
	if cheap.P99Ms <= 0 || heavy.P99Ms <= 0 {
		t.Fatalf("per-class latency missing: cheap p99=%v heavy p99=%v", cheap.P99Ms, heavy.P99Ms)
	}
}

func TestLoadGenClassifiesWellFormedShed(t *testing.T) {
	// POSTs get the documented shed shape; GETs succeed.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"overloaded: request shed","detail":"queue full"}` + "\n"))
			return
		}
		w.Write([]byte(`{"listed":false}`))
	}))
	defer ts.Close()

	res, err := LoadGen{
		BaseURL: ts.URL, Targets: []string{"1.2.3.4"},
		Concurrency: 2, Duration: 100 * time.Millisecond,
		BatchFraction: 0.5, BatchSize: 5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed == 0 {
		t.Fatal("well-formed 429s were not counted as shed")
	}
	if res.MalformedShed != 0 || res.Errors != 0 {
		t.Fatalf("well-formed shed misclassified: malformed=%d errors=%d",
			res.MalformedShed, res.Errors)
	}
	if hs := res.PerClass["heavy"]; hs.Shed != res.Shed {
		t.Fatalf("heavy class shed %d, total %d; all shed should be batch", hs.Shed, res.Shed)
	}
}

func TestLoadGenFlagsMalformedShed(t *testing.T) {
	// 429 without Retry-After and without the Error JSON body: counts as
	// both malformed shed and an error.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "too many requests", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	res, err := LoadGen{
		BaseURL: ts.URL, Targets: []string{"1.2.3.4"},
		Concurrency: 1, Duration: 50 * time.Millisecond,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MalformedShed == 0 || res.Errors != res.MalformedShed {
		t.Fatalf("bare 429s: malformed=%d errors=%d; want equal and > 0",
			res.MalformedShed, res.Errors)
	}
	if res.Shed != 0 {
		t.Fatalf("bare 429s counted as well-formed shed: %d", res.Shed)
	}
}

func TestLoadGenClientMix(t *testing.T) {
	fs := &fastServer{}
	ts := httptest.NewServer(fs.handler())
	defer ts.Close()

	ips := []string{"100.64.9.9", "100.64.9.9", "203.0.113.5"}
	res, err := LoadGen{
		BaseURL: ts.URL, Targets: []string{"1.2.3.4"},
		Concurrency: 3, Duration: 80 * time.Millisecond,
		ClientIPs: ips,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PerClient == nil {
		t.Fatal("ClientIPs set but PerClient missing")
	}
	// Two workers share the hot key, one gets the distinct address.
	hot, cold := res.PerClient["100.64.9.9"], res.PerClient["203.0.113.5"]
	if hot.Requests == 0 || cold.Requests == 0 {
		t.Fatalf("per-client split hot=%d cold=%d; want both > 0", hot.Requests, cold.Requests)
	}
	if hot.Requests+cold.Requests != res.Requests {
		t.Fatalf("per-client totals %d+%d != %d", hot.Requests, cold.Requests, res.Requests)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.forwarded["100.64.9.9"] != hot.Requests {
		t.Fatalf("server saw %d hot-key requests, result says %d",
			fs.forwarded["100.64.9.9"], hot.Requests)
	}
}

func TestLoadGenPerWorkerRPSPaces(t *testing.T) {
	fs := &fastServer{}
	ts := httptest.NewServer(fs.handler())
	defer ts.Close()

	res, err := LoadGen{
		BaseURL: ts.URL, Targets: []string{"1.2.3.4"},
		Concurrency: 1, Duration: 300 * time.Millisecond,
		PerWorkerRPS: 20,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 20 rps for 0.3s ≈ 6 requests; a closed loop against a loopback
	// httptest server would do thousands. Allow generous slack for the
	// first unpaced request and scheduler jitter.
	if res.Requests > 15 {
		t.Fatalf("paced worker sent %d requests in 300ms at 20 rps; pacing is not applied",
			res.Requests)
	}
	if res.Requests == 0 {
		t.Fatal("paced worker sent nothing")
	}
}

func TestLoadGenValidation(t *testing.T) {
	base := LoadGen{BaseURL: "http://127.0.0.1:0", Targets: []string{"1.2.3.4"},
		Concurrency: 1, Duration: time.Millisecond}
	for name, lg := range map[string]LoadGen{
		"no targets":     {BaseURL: base.BaseURL, Concurrency: 1, Duration: time.Millisecond},
		"no concurrency": {BaseURL: base.BaseURL, Targets: base.Targets, Duration: time.Millisecond},
		"no duration":    {BaseURL: base.BaseURL, Targets: base.Targets, Concurrency: 1},
		"fraction > 1": {BaseURL: base.BaseURL, Targets: base.Targets, Concurrency: 1,
			Duration: time.Millisecond, BatchFraction: 1.5},
		"fraction < 0": {BaseURL: base.BaseURL, Targets: base.Targets, Concurrency: 1,
			Duration: time.Millisecond, BatchFraction: -0.1},
	} {
		if _, err := lg.Run(); err == nil {
			t.Errorf("%s: Run accepted an invalid config", name)
		}
	}
}

func TestRunRamp(t *testing.T) {
	fs := &fastServer{}
	ts := httptest.NewServer(fs.handler())
	defer ts.Close()

	lg := LoadGen{BaseURL: ts.URL, Targets: []string{"1.2.3.4"},
		Duration: 30 * time.Millisecond}
	results, err := lg.RunRamp([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("ramp returned %d results, want 2", len(results))
	}
	for i, res := range results {
		if res.Requests == 0 || res.Errors != 0 {
			t.Errorf("ramp step %d: requests=%d errors=%d", i, res.Requests, res.Errors)
		}
	}

	if _, err := lg.RunRamp([]int{1, 0}); err == nil {
		t.Fatal("ramp accepted a zero-concurrency step")
	}
}

func TestShedWellFormed(t *testing.T) {
	mk := func(retryAfter string) *http.Response {
		resp := &http.Response{Header: http.Header{}}
		if retryAfter != "" {
			resp.Header.Set("Retry-After", retryAfter)
		}
		return resp
	}
	good := []byte(`{"error":"overloaded: request shed"}`)
	for name, tc := range map[string]struct {
		resp *http.Response
		body []byte
		want bool
	}{
		"documented shape":    {mk("1"), good, true},
		"missing retry-after": {mk(""), good, false},
		"zero retry-after":    {mk("0"), good, false},
		"http-date retry":     {mk("Wed, 21 Oct 2026 07:28:00 GMT"), good, false},
		"not json":            {mk("1"), []byte("too many requests\n"), false},
		"empty error field":   {mk("1"), []byte(`{"error":""}`), false},
	} {
		if got := shedWellFormed(tc.resp, tc.body); got != tc.want {
			t.Errorf("%s: shedWellFormed = %v, want %v", name, got, tc.want)
		}
	}
}

func TestAppendShedBenchRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_shed.json")
	rec := ShedBenchRecord{Scenario: "overload-flood", When: "2026-08-07T00:00:00Z",
		Concurrency: 20, CapacityRPS: 900, GoodputRPS: 700, GoodputShare: 0.78,
		P99Ms: 12, Shed: 340}
	if err := AppendShedBenchRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	if err := AppendShedBenchRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []ShedBenchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0] != rec || recs[1] != rec {
		t.Fatalf("shed bench round-trip mismatch: %+v", recs)
	}
}

func TestAppendRecordRejectsCorruptHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_shed.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendShedBenchRecord(path, ShedBenchRecord{Scenario: "x"}); err == nil {
		t.Fatal("append onto a corrupt history file did not error")
	}
	// The corrupt file must be left untouched for post-mortem, not clobbered.
	if data, _ := os.ReadFile(path); string(data) != "not json" {
		t.Fatalf("corrupt history was rewritten to %q", data)
	}
}
