package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/reuseapi"
)

// LoadGen drives a live stack at fixed concurrency for a fixed duration,
// each worker cycling through Targets, and reports latency percentiles plus
// error and shed rates. The default workload is the zero-alloc GET
// /v1/check path; BatchFraction mixes in POST batch checks (the expensive
// endpoint class), ClientIPs simulates a client mix for rate-limit
// scenarios, and PerWorkerRPS paces workers below saturation.
type LoadGen struct {
	BaseURL     string
	Targets     []string // ip query values, cycled per worker
	Concurrency int
	Duration    time.Duration

	// Datasets, when set, spreads workers round-robin across the named
	// datasets' /v1/{name}/check routes of a multi-dataset server; the
	// empty string targets the unprefixed default route. Empty keeps the
	// single-route workload.
	Datasets []string

	// BatchFraction in [0,1] is the share of workers dedicated to POST
	// batch checks of BatchSize addresses (the heavy endpoint class); the
	// rest stay closed-loop single GET clients (the cheap class). The
	// split is per worker, not per request, so the cheap clients' goodput
	// is not serialized behind the expensive flood — they model the
	// bystander traffic an overload scenario measures collateral damage
	// against. 0 keeps the legacy GET-only workload.
	BatchFraction float64
	// BatchSize is the number of addresses per batch POST (default 100).
	BatchSize int
	// ClientIPs, when set, are assigned to workers round-robin and sent as
	// X-Forwarded-For, so a -shed-trust-forwarded server observes a client
	// mix — repeats model a CGNAT-style hot key emitting more than its
	// share.
	ClientIPs []string
	// PerWorkerRPS paces each worker to at most this request rate
	// (0 = closed-loop flat out).
	PerWorkerRPS float64
}

// ClassStats is one endpoint class's slice of a load run.
type ClassStats struct {
	Requests int     `json:"requests"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Errors   int     `json:"errors"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// ClientStats is one simulated client's slice of a load run.
type ClientStats struct {
	Requests int `json:"requests"`
	OK       int `json:"ok"`
	Shed     int `json:"shed"`
	Errors   int `json:"errors"`
}

// LoadResult summarizes one load-generation run. Latency percentiles cover
// successful (200) responses only; Shed counts well-formed overload
// rejections (429/503 with the documented Error body and a Retry-After),
// which are the resilience layer working as designed — only
// MalformedShed and Errors indicate trouble.
type LoadResult struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	RPS      float64 `json:"rps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`

	// Shed counts well-formed 429/503 rejections; MalformedShed counts
	// 429/503 responses missing the documented Error shape or Retry-After
	// (always a bug). GoodputRPS is successful responses per second.
	Shed          int     `json:"shed,omitempty"`
	MalformedShed int     `json:"malformed_shed,omitempty"`
	GoodputRPS    float64 `json:"goodput_rps,omitempty"`

	// PerClass splits the run by endpoint class ("cheap" single GETs,
	// "heavy" batch POSTs); present when the run mixed classes or shed.
	PerClass map[string]ClassStats `json:"per_class,omitempty"`
	// PerClient splits the run by simulated client; present when ClientIPs
	// was set.
	PerClient map[string]ClientStats `json:"per_client,omitempty"`
}

// sample is one request's outcome, tagged for aggregation.
type sample struct {
	class  string // "cheap" or "heavy"
	client string // X-Forwarded-For value, "" when unset
	lat    time.Duration
	ok     bool
	shed   bool // well-formed 429/503
	badsh  bool // malformed 429/503
}

// Run generates the load and aggregates per-worker samples.
func (lg LoadGen) Run() (LoadResult, error) {
	if lg.Concurrency <= 0 || lg.Duration <= 0 || len(lg.Targets) == 0 {
		return LoadResult{}, fmt.Errorf("e2e: loadgen needs targets, concurrency and duration")
	}
	if lg.BatchFraction < 0 || lg.BatchFraction > 1 {
		return LoadResult{}, fmt.Errorf("e2e: batch fraction %g outside [0,1]", lg.BatchFraction)
	}
	batchSize := lg.BatchSize
	if batchSize <= 0 {
		batchSize = 100
	}
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: lg.Concurrency,
		},
	}

	// One batch body per worker, built outside the hot loop: the batch
	// content is load, not the thing under test.
	var batchBody []byte
	if lg.BatchFraction > 0 {
		ips := make([]string, batchSize)
		for i := range ips {
			ips[i] = lg.Targets[i%len(lg.Targets)]
		}
		var err error
		batchBody, err = json.Marshal(ips)
		if err != nil {
			return LoadResult{}, err
		}
	}
	// The first nBatch workers are the batch flood; at least one when a
	// fraction was asked for at all.
	nBatch := 0
	if lg.BatchFraction > 0 {
		nBatch = int(lg.BatchFraction*float64(lg.Concurrency) + 0.5)
		if nBatch < 1 {
			nBatch = 1
		}
		if nBatch > lg.Concurrency {
			nBatch = lg.Concurrency
		}
	}

	perWorker := make([][]sample, lg.Concurrency)
	deadline := time.Now().Add(lg.Duration)
	var interval time.Duration
	if lg.PerWorkerRPS > 0 {
		interval = time.Duration(float64(time.Second) / lg.PerWorkerRPS)
	}
	var wg sync.WaitGroup
	for w := 0; w < lg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			clientIP := ""
			if len(lg.ClientIPs) > 0 {
				clientIP = lg.ClientIPs[w%len(lg.ClientIPs)]
			}
			checkPath := "/v1/check"
			if len(lg.Datasets) > 0 {
				if ds := lg.Datasets[w%len(lg.Datasets)]; ds != "" {
					checkPath = "/v1/" + ds + "/check"
				}
			}
			next := time.Now()
			for i := w; time.Now().Before(deadline); i++ {
				if interval > 0 {
					if now := time.Now(); next.After(now) {
						time.Sleep(next.Sub(now))
					}
					next = next.Add(interval)
					if !time.Now().Before(deadline) {
						return
					}
				}
				s := sample{class: "cheap", client: clientIP}
				var req *http.Request
				var err error
				if w < nBatch {
					s.class = "heavy"
					req, err = http.NewRequest(http.MethodPost, lg.BaseURL+checkPath,
						bytes.NewReader(batchBody))
					if req != nil {
						req.Header.Set("Content-Type", "application/json")
					}
				} else {
					url := lg.BaseURL + checkPath + "?ip=" + lg.Targets[i%len(lg.Targets)]
					req, err = http.NewRequest(http.MethodGet, url, nil)
				}
				if err != nil {
					perWorker[w] = append(perWorker[w], s)
					continue
				}
				if clientIP != "" {
					req.Header.Set("X-Forwarded-For", clientIP)
				}
				start := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					perWorker[w] = append(perWorker[w], s)
					continue
				}
				body, cerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case cerr != nil:
				case resp.StatusCode == http.StatusOK:
					s.ok = true
					s.lat = time.Since(start)
				case resp.StatusCode == http.StatusTooManyRequests ||
					resp.StatusCode == http.StatusServiceUnavailable:
					if shedWellFormed(resp, body) {
						s.shed = true
					} else {
						s.badsh = true
					}
				}
				perWorker[w] = append(perWorker[w], s)
			}
		}(w)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)
	if elapsed < lg.Duration {
		elapsed = lg.Duration
	}
	return aggregate(perWorker, elapsed, lg.BatchFraction > 0, len(lg.ClientIPs) > 0), nil
}

// shedWellFormed checks a 429/503 against the documented contract: a JSON
// Error body with a non-empty error field, and a Retry-After header parsing
// to a positive integer.
func shedWellFormed(resp *http.Response, body []byte) bool {
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		return false
	}
	var e reuseapi.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		return false
	}
	return true
}

// aggregate folds per-worker samples into the result.
func aggregate(perWorker [][]sample, elapsed time.Duration, withClasses, withClients bool) LoadResult {
	res := LoadResult{}
	var all []time.Duration
	classLat := map[string][]time.Duration{}
	classes := map[string]ClassStats{}
	clients := map[string]ClientStats{}
	good := 0
	for _, ws := range perWorker {
		for _, s := range ws {
			res.Requests++
			cs := classes[s.class]
			cs.Requests++
			cl := clients[s.client]
			cl.Requests++
			switch {
			case s.ok:
				good++
				cs.OK++
				cl.OK++
				all = append(all, s.lat)
				classLat[s.class] = append(classLat[s.class], s.lat)
			case s.shed:
				res.Shed++
				cs.Shed++
				cl.Shed++
			default:
				if s.badsh {
					res.MalformedShed++
				}
				res.Errors++
				cs.Errors++
				cl.Errors++
			}
			classes[s.class] = cs
			clients[s.client] = cl
		}
	}
	res.RPS = float64(res.Requests) / elapsed.Seconds()
	res.GoodputRPS = float64(good) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50Ms = percentileMs(all, 0.50)
	res.P95Ms = percentileMs(all, 0.95)
	res.P99Ms = percentileMs(all, 0.99)
	if n := len(all); n > 0 {
		res.MaxMs = durMs(all[n-1])
	}
	if withClasses || res.Shed > 0 || res.MalformedShed > 0 {
		for name, cs := range classes {
			lat := classLat[name]
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			cs.P50Ms = percentileMs(lat, 0.50)
			cs.P95Ms = percentileMs(lat, 0.95)
			cs.P99Ms = percentileMs(lat, 0.99)
			classes[name] = cs
		}
		res.PerClass = classes
	}
	if withClients {
		res.PerClient = clients
	}
	return res
}

// RunRamp runs the same workload once per concurrency step, sequentially,
// returning one result per step — a concurrency ramp for finding the knee
// where goodput stops scaling.
func (lg LoadGen) RunRamp(steps []int) ([]LoadResult, error) {
	out := make([]LoadResult, 0, len(steps))
	for _, c := range steps {
		run := lg
		run.Concurrency = c
		res, err := run.Run()
		if err != nil {
			return out, fmt.Errorf("e2e: ramp step %d: %w", c, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// percentileMs reads the p-quantile (nearest-rank) from sorted samples.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return durMs(sorted[idx])
}

func durMs(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// BenchRecord is one BENCH_e2e.json entry: a load-gen result with enough
// context (scenario, world, concurrency) to compare across runs. The file is
// an append-only JSON array so the nightly job accumulates a history.
type BenchRecord struct {
	Scenario    string  `json:"scenario"`
	When        string  `json:"when"` // RFC3339
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	LoadResult
}

// ShedBenchRecord is one BENCH_shed.json entry: an overload scenario's
// goodput against measured capacity, for the resilience ratchet.
type ShedBenchRecord struct {
	Scenario    string  `json:"scenario"`
	When        string  `json:"when"` // RFC3339
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	// CapacityRPS is the measured single-client goodput baseline;
	// GoodputShare is GoodputRPS/CapacityRPS — the SLO band the overload
	// scenario asserts on.
	CapacityRPS  float64 `json:"capacity_rps"`
	GoodputRPS   float64 `json:"goodput_rps"`
	GoodputShare float64 `json:"goodput_share"`
	P99Ms        float64 `json:"p99_ms"`
	Shed         int     `json:"shed"`
	Errors       int     `json:"errors"`
}

// FleetBenchRecord is one BENCH_fleet.json entry: a distributed-crawl run's
// throughput and merge latency at one fleet width, for the nightly
// scaling-trend history.
type FleetBenchRecord struct {
	Scenario    string  `json:"scenario"`
	When        string  `json:"when"` // RFC3339
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	Workers     int     `json:"workers"`
	CrawlHours  float64 `json:"crawl_hours"`
	DurationSec float64 `json:"duration_sec"` // wall time of the whole fleet run
	// HostsPerSec is unique crawled hosts per wall-clock second; MergeMs is
	// the merge step's wall latency.
	HostsPerSec float64 `json:"hosts_per_sec"`
	MergeMs     float64 `json:"merge_ms"`
	MergedAddrs int     `json:"merged_addrs"`
	Restarts    int     `json:"restarts"`
}

// AppendBenchRecord appends rec to the JSON array at path, creating the file
// when absent. The rewrite is atomic so a crashed run cannot truncate the
// history.
func AppendBenchRecord(path string, rec BenchRecord) error {
	return appendRecord(path, rec)
}

// AppendFleetBenchRecord is AppendBenchRecord for the fleet scaling file.
func AppendFleetBenchRecord(path string, rec FleetBenchRecord) error {
	return appendRecord(path, rec)
}

// AppendShedBenchRecord is AppendBenchRecord for the shed ratchet file.
func AppendShedBenchRecord(path string, rec ShedBenchRecord) error {
	return appendRecord(path, rec)
}

func appendRecord[T any](path string, rec T) error {
	var recs []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &recs); err != nil {
			return fmt.Errorf("e2e: existing %s is not a bench-record array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	recs = append(recs, raw)
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}
