package e2e

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// LoadGen drives the zero-alloc GET /v1/check path on a live stack at fixed
// concurrency for a fixed duration, each worker cycling through Targets, and
// reports latency percentiles plus the error rate.
type LoadGen struct {
	BaseURL     string
	Targets     []string // ip query values, cycled per worker
	Concurrency int
	Duration    time.Duration
}

// LoadResult summarizes one load-generation run.
type LoadResult struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	RPS      float64 `json:"rps"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// Run generates the load and aggregates per-worker samples.
func (lg LoadGen) Run() (LoadResult, error) {
	if lg.Concurrency <= 0 || lg.Duration <= 0 || len(lg.Targets) == 0 {
		return LoadResult{}, fmt.Errorf("e2e: loadgen needs targets, concurrency and duration")
	}
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConnsPerHost: lg.Concurrency,
		},
	}
	type workerStats struct {
		lat    []time.Duration
		errors int
	}
	stats := make([]workerStats, lg.Concurrency)
	deadline := time.Now().Add(lg.Duration)
	var wg sync.WaitGroup
	for w := 0; w < lg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := &stats[w]
			for i := w; time.Now().Before(deadline); i++ {
				url := lg.BaseURL + "/v1/check?ip=" + lg.Targets[i%len(lg.Targets)]
				start := time.Now()
				resp, err := client.Get(url)
				if err != nil {
					ws.errors++
					continue
				}
				_, cerr := io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if cerr != nil || resp.StatusCode != http.StatusOK {
					ws.errors++
					continue
				}
				ws.lat = append(ws.lat, time.Since(start))
			}
		}(w)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)
	if elapsed < lg.Duration {
		elapsed = lg.Duration
	}

	var all []time.Duration
	res := LoadResult{}
	for _, ws := range stats {
		all = append(all, ws.lat...)
		res.Errors += ws.errors
	}
	res.Requests = len(all) + res.Errors
	res.RPS = float64(res.Requests) / elapsed.Seconds()
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res.P50Ms = percentileMs(all, 0.50)
	res.P95Ms = percentileMs(all, 0.95)
	res.P99Ms = percentileMs(all, 0.99)
	if n := len(all); n > 0 {
		res.MaxMs = durMs(all[n-1])
	}
	return res, nil
}

// percentileMs reads the p-quantile (nearest-rank) from sorted samples.
func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return durMs(sorted[idx])
}

func durMs(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// BenchRecord is one BENCH_e2e.json entry: a load-gen result with enough
// context (scenario, world, concurrency) to compare across runs. The file is
// an append-only JSON array so the nightly job accumulates a history.
type BenchRecord struct {
	Scenario    string  `json:"scenario"`
	When        string  `json:"when"` // RFC3339
	Seed        int64   `json:"seed"`
	Scale       float64 `json:"scale"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	LoadResult
}

// AppendBenchRecord appends rec to the JSON array at path, creating the file
// when absent. The rewrite is atomic so a crashed run cannot truncate the
// history.
func AppendBenchRecord(path string, rec BenchRecord) error {
	var recs []BenchRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &recs); err != nil {
			return fmt.Errorf("e2e: existing %s is not a bench-record array: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	recs = append(recs, rec)
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(data, '\n'))
}
