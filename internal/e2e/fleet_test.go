//go:build e2e

package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/fleet"
	"github.com/reuseblock/reuseblock/internal/obs"
)

// The fleet e2e scenarios boot blfleet as a real process supervising real
// blcrawl worker processes over loopback UDP, and pin the subsystem's
// headline guarantee end to end: the coordinator is byte-transparent. Its
// merged output is identical to running every `blcrawl -shard I/N` yourself
// and merging the files — whatever the worker placement, heartbeat timing,
// or mid-crawl crashes.

const (
	fleetSeed  = 1
	fleetScale = 0.05
	fleetHours = 8
)

// fleetCrawlArgs are the world parameters shared by every process in one
// equivalence comparison; both sides must agree exactly.
func fleetCrawlArgs() []string {
	return []string{
		"-seed", strconv.Itoa(fleetSeed),
		"-scale", fmt.Sprintf("%g", fleetScale),
		"-duration", (fleetHours * time.Hour).String(),
	}
}

// harnessMergedShards runs n independent `blcrawl -shard i/n` processes (no
// coordinator involved), merges their outputs with the harness's own
// max-union merge, and writes the result exactly as blfleet writes its
// merged artifact. This is the equivalence oracle.
func harnessMergedShards(t *testing.T, bins map[string]string, dir string, n int, faults string) []byte {
	t.Helper()
	shardOuts := make([]string, n)
	procs := make([]*Proc, n)
	for i := range procs {
		shardOuts[i] = filepath.Join(dir, fmt.Sprintf("solo_shard%d.txt", i))
		args := append(fleetCrawlArgs(), "-out", shardOuts[i])
		if n > 1 {
			args = append(args, "-shard", fmt.Sprintf("%d/%d", i+1, n))
		}
		if faults != "" {
			args = append(args, "-faults", faults)
		}
		p, err := StartProc(fmt.Sprintf("solo-blcrawl-%d", i), bins["blcrawl"], args...)
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	for _, p := range procs {
		if err := p.WaitExit(2 * time.Minute); err != nil {
			t.Fatalf("%s: %v\nstderr: %s", p.Name, err, p.Stderr())
		}
	}
	merged, err := MergeNATedShards(shardOuts)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "solo_merged.txt")
	if err := fleet.WriteOut(out, merged, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runBlfleet runs one blfleet process to completion and returns the merged
// output bytes and the parsed manifest.
func runBlfleet(t *testing.T, bins map[string]string, dir string, n int, extra ...string) ([]byte, *obs.Manifest) {
	t.Helper()
	out := filepath.Join(dir, fmt.Sprintf("fleet%d_merged.txt", n))
	manifest := filepath.Join(dir, fmt.Sprintf("fleet%d_manifest.json", n))
	args := append(fleetCrawlArgs(),
		"-workers", strconv.Itoa(n),
		"-blcrawl", bins["blcrawl"],
		"-hb-interval", "25ms",
		"-out", out,
		"-manifest-out", manifest,
	)
	args = append(args, extra...)
	p, err := StartProc(fmt.Sprintf("blfleet-%d", n), bins["blfleet"], args...)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WaitExit(4 * time.Minute); err != nil {
		t.Fatalf("blfleet -workers %d: %v\nstderr: %s", n, err, p.Stderr())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("blfleet -workers %d wrote no merged output: %v\nstderr: %s", n, err, p.Stderr())
	}
	mdata, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(mdata, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	return data, &m
}

// TestFleetEquivalence pins byte-transparency across fleet widths: for every
// N the coordinator's merged artifact equals the harness's own merge of N
// independent single-shard crawls, and the single-worker fleet equals a
// plain unsharded blcrawl run.
func TestFleetEquivalence(t *testing.T) {
	bins, err := Binaries()
	if err != nil {
		t.Fatal(err)
	}
	widths := []int{1, 2, 4, 8}
	if testing.Short() {
		widths = []int{1, 2}
	}
	for _, n := range widths {
		n := n
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			dir := t.TempDir()
			want := harnessMergedShards(t, bins, dir, n, "")
			got, m := runBlfleet(t, bins, dir, n)
			if !bytes.Equal(got, want) {
				t.Errorf("fleet(%d) merged output differs from independently merged shards\nfleet:\n%s\nsolo:\n%s", n, got, want)
			}
			if m.Fleet == nil || m.Fleet.Workers != n || len(m.Fleet.Shards) != n {
				t.Fatalf("manifest fleet block: %+v", m.Fleet)
			}
			if m.Fleet.Restarts != 0 {
				t.Errorf("calm run recorded %d restarts", m.Fleet.Restarts)
			}
			for _, sh := range m.Fleet.Shards {
				if sh.Heartbeats == 0 {
					t.Errorf("worker %d reported no heartbeats", sh.Worker)
				}
			}
		})
	}
}

// TestFleetEquivalenceBursty repeats the transparency pin under injected
// bursty datagram loss: fault injection perturbs what each shard observes,
// but never what the coordinator does with it.
func TestFleetEquivalenceBursty(t *testing.T) {
	bins, err := Binaries()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	want := harnessMergedShards(t, bins, dir, 2, "bursty")
	got, _ := runBlfleet(t, bins, dir, 2, "-faults", "bursty")
	if !bytes.Equal(got, want) {
		t.Errorf("bursty fleet(2) merged output differs from independently merged shards\nfleet:\n%s\nsolo:\n%s", got, want)
	}
}

// TestFleetKillWorker is the supervision acceptance scenario: a worker
// process is chaos-killed mid-crawl, the coordinator restarts its shard, the
// manifest records the kill and the restart, and the merged output is still
// byte-identical to an undisturbed run.
func TestFleetKillWorker(t *testing.T) {
	bins, err := Binaries()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	calmDir := filepath.Join(dir, "calm")
	chaosDir := filepath.Join(dir, "chaos")
	for _, d := range []string{calmDir, chaosDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
	}

	calm, _ := runBlfleet(t, bins, calmDir, 2)
	chaos, m := runBlfleet(t, bins, chaosDir, 2,
		"-kill-worker", "2", "-kill-after", "0s", "-hb-interval", "10ms")

	if !bytes.Equal(chaos, calm) {
		t.Errorf("chaos-killed fleet produced different bytes than the calm run\nchaos:\n%s\ncalm:\n%s", chaos, calm)
	}
	if m.Fleet == nil {
		t.Fatal("manifest has no fleet block")
	}
	if m.Fleet.Restarts < 1 {
		t.Errorf("manifest records %d restarts, want >= 1", m.Fleet.Restarts)
	}
	var victim *obs.FleetShardStatus
	for i := range m.Fleet.Shards {
		if m.Fleet.Shards[i].Worker == 2 {
			victim = &m.Fleet.Shards[i]
		}
	}
	if victim == nil {
		t.Fatalf("manifest has no shard entry for worker 2: %+v", m.Fleet.Shards)
	}
	if !victim.Killed {
		t.Errorf("manifest does not mark worker 2 as chaos-killed: %+v", victim)
	}
	if victim.Attempts < 2 {
		t.Errorf("killed worker records %d attempts, want >= 2", victim.Attempts)
	}
}

// TestFleetBench records the fleet's scaling profile — crawl throughput and
// merge latency at widths 1, 2 and 4 — to BENCH_fleet.json for the nightly
// trend history.
func TestFleetBench(t *testing.T) {
	if testing.Short() {
		t.Skip("bench run")
	}
	bins, err := Binaries()
	if err != nil {
		t.Fatal(err)
	}
	out := os.Getenv("E2E_BENCH_FLEET_OUT")
	if out == "" {
		out = filepath.Join(RepoRoot(), "BENCH_fleet.json")
	}
	for _, n := range []int{1, 2, 4} {
		dir := t.TempDir()
		start := time.Now()
		merged, m := runBlfleet(t, bins, dir, n)
		elapsed := time.Since(start)
		if m.Fleet == nil {
			t.Fatalf("workers=%d: manifest has no fleet block", n)
		}
		addrs := bytes.Count(merged, []byte("\n"))
		if len(merged) > 0 {
			addrs-- // header line
		}
		rec := FleetBenchRecord{
			Scenario:    "fleet-scaling",
			When:        time.Now().UTC().Format(time.RFC3339),
			Seed:        fleetSeed,
			Scale:       fleetScale,
			Workers:     n,
			CrawlHours:  fleetHours,
			DurationSec: elapsed.Seconds(),
			HostsPerSec: m.Fleet.HostsPerSec,
			MergeMs:     float64(m.Fleet.MergeMillis),
			MergedAddrs: addrs,
			Restarts:    m.Fleet.Restarts,
		}
		if err := AppendFleetBenchRecord(out, rec); err != nil {
			t.Fatal(err)
		}
		t.Logf("workers=%d: %.1f hosts/sec, merge %dms, %d addrs in %v",
			n, rec.HostsPerSec, m.Fleet.MergeMillis, addrs, elapsed.Round(time.Millisecond))
	}
}
