package e2e

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"time"
)

// logBuffer is a write-synchronized buffer: the process pumps output into it
// from its own goroutine while tests read it for readiness and assertions.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Proc is one spawned pipeline process with captured output and a managed
// lifecycle: readiness is polled on its output or endpoints, shutdown is a
// graceful signal with a kill fallback, and the full logs survive for
// failure reports.
type Proc struct {
	Name string
	Args []string

	cmd    *exec.Cmd
	stdout logBuffer
	stderr logBuffer

	done    chan struct{}
	waitErr error
}

// StartProc spawns bin with args, capturing both output streams.
func StartProc(name, bin string, args ...string) (*Proc, error) {
	p := &Proc{Name: name, Args: args, done: make(chan struct{})}
	p.cmd = exec.Command(bin, args...)
	p.cmd.Stdout = &p.stdout
	p.cmd.Stderr = &p.stderr
	if err := p.cmd.Start(); err != nil {
		return nil, fmt.Errorf("e2e: starting %s: %w", name, err)
	}
	go func() {
		p.waitErr = p.cmd.Wait()
		close(p.done)
	}()
	return p, nil
}

// Stdout returns everything the process has written to stdout so far.
func (p *Proc) Stdout() string { return p.stdout.String() }

// Stderr returns everything the process has written to stderr so far.
func (p *Proc) Stderr() string { return p.stderr.String() }

// Exited reports whether the process has terminated.
func (p *Proc) Exited() bool {
	select {
	case <-p.done:
		return true
	default:
		return false
	}
}

// WaitExit blocks until the process exits on its own and returns its exit
// error (nil for status 0), or an error if it outlives the timeout.
func (p *Proc) WaitExit(timeout time.Duration) error {
	select {
	case <-p.done:
		return p.waitErr
	case <-time.After(timeout):
		return fmt.Errorf("e2e: %s still running after %v", p.Name, timeout)
	}
}

// Stop drains the process gracefully: SIGTERM, then SIGKILL once grace
// elapses. It returns the exit error only when the process had already
// failed on its own — a signal-induced exit is a clean stop.
func (p *Proc) Stop(grace time.Duration) error {
	select {
	case <-p.done:
		return p.waitErr
	default:
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
		return nil
	case <-time.After(grace):
		_ = p.cmd.Process.Kill()
		<-p.done
		return fmt.Errorf("e2e: %s did not drain within %v; killed", p.Name, grace)
	}
}

// SaveLogs writes the captured streams under dir as <name>.stdout.log and
// <name>.stderr.log — the artifact bundle CI uploads on failure.
func (p *Proc) SaveLogs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for suffix, text := range map[string]string{
		"stdout": p.Stdout(),
		"stderr": p.Stderr(),
	} {
		path := filepath.Join(dir, fmt.Sprintf("%s.%s.log", p.Name, suffix))
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return err
		}
	}
	return nil
}
