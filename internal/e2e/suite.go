package e2e

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/testkit"
)

// Scenario is one named end-to-end case: a seeded world, a fault-catalogue
// name for the crawl, the serving mode, and a Run body asserting against the
// booted stack. Run returns an error instead of calling t.Fatal so the suite
// can replay the scenario programmatically while shrinking a failure.
type Scenario struct {
	Name        string
	Description string

	Seed       int64
	Scale      float64
	CrawlHours int
	Crawlers   int
	Faults     string
	Watch      bool
	// Shed, when non-nil, boots blserve with -shed and these admission
	// parameters (overload-resilience scenarios).
	Shed *ShedParams
	// Datasets, when non-empty, boots blserve in multi-dataset mode (one
	// -dataset flag per entry; the first is the default).
	Datasets []DatasetSpec

	// Smoke marks the scenario as part of the -short subset CI runs on
	// every push; the rest only run in the nightly full suite.
	Smoke bool

	Run func(s *Stack) error
}

// spec projects the scenario onto a testkit.WorldSpec for shrink reporting.
// Only the dimensions the process pipeline realizes (seed, scale, crawl
// duration) differ from the tame default, so every shrunk spec remains a
// bootable StackConfig.
func (sc Scenario) spec() testkit.WorldSpec {
	s := testkit.DefaultSpec(sc.Seed)
	if sc.Scale != 0 {
		s.Scale = sc.Scale
	}
	if sc.CrawlHours != 0 {
		s.CrawlHours = sc.CrawlHours
	}
	return s
}

func (sc Scenario) config(spec testkit.WorldSpec) StackConfig {
	return StackConfig{
		Seed:          spec.Seed,
		Scale:         spec.Scale,
		CrawlDuration: time.Duration(spec.CrawlHours) * time.Hour,
		Crawlers:      sc.Crawlers,
		Faults:        sc.Faults,
		Watch:         sc.Watch,
		Shed:          sc.Shed,
		Datasets:      sc.Datasets,
	}
}

// boot runs the scenario once against a freshly booted stack and reports
// both the error and the stack (for log salvage; may be partial).
func (sc Scenario) boot(spec testkit.WorldSpec, short bool) (*Stack, error) {
	st, err := BootStack(sc.config(spec))
	if err != nil {
		return st, fmt.Errorf("boot: %w", err)
	}
	st.Short = short
	return st, sc.Run(st)
}

// Suite is a hivesim-style collection of scenarios run as subtests.
type Suite struct {
	scenarios []Scenario
}

// Add registers a scenario.
func (su *Suite) Add(sc Scenario) { su.scenarios = append(su.scenarios, sc) }

// Run executes the suite. Under -short only Smoke scenarios run. On failure
// it saves every process log and the dataset inputs under E2E_LOG_DIR (CI
// uploads that directory as an artifact), then — when E2E_SHRINK_BUDGET
// allows — re-runs the scenario on progressively tamer worlds and reports
// the smallest spec that still fails, with a reproduction command.
func (su *Suite) Run(t *testing.T) {
	for _, sc := range su.scenarios {
		t.Run(sc.Name, func(t *testing.T) {
			if testing.Short() && !sc.Smoke {
				t.Skip("not part of the -short smoke subset")
			}
			spec := sc.spec()
			st, err := sc.boot(spec, testing.Short())
			if st != nil {
				defer st.Close()
			}
			if err == nil {
				return
			}
			t.Errorf("scenario %s (seed %d, scale %g, faults %q): %v",
				sc.Name, spec.Seed, spec.Scale, sc.Faults, err)
			if st != nil {
				dir := filepath.Join(logDir(), sc.Name)
				if serr := st.SaveLogs(dir); serr != nil {
					t.Logf("saving process logs: %v", serr)
				} else {
					t.Logf("process logs and dataset inputs saved under %s", dir)
				}
			}
			if budget := shrinkBudget(); budget > 0 {
				shrunk := testkit.Shrink(spec, func(s testkit.WorldSpec) bool {
					rst, rerr := sc.boot(s, true)
					if rst != nil {
						rst.Close()
					}
					return rerr != nil
				}, budget)
				t.Logf("shrunk failing world: seed=%d scale=%g crawl=%dh",
					shrunk.Seed, shrunk.Scale, shrunk.CrawlHours)
				t.Logf("reproduce with: go test -tags e2e -run 'TestE2EScenarios/%s' ./internal/e2e", sc.Name)
			}
		})
	}
}

// logDir is where failing scenarios dump process logs; CI points it at an
// artifact path via E2E_LOG_DIR.
func logDir() string {
	if d := os.Getenv("E2E_LOG_DIR"); d != "" {
		return d
	}
	return filepath.Join(os.TempDir(), "reuseblock-e2e-logs")
}

// shrinkBudget is how many extra stack boots a failure may spend minimizing
// itself (E2E_SHRINK_BUDGET, default 0 — each boot forks a whole pipeline,
// so shrinking is opt-in).
func shrinkBudget() int {
	v := os.Getenv("E2E_SHRINK_BUDGET")
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0
	}
	return n
}
