package e2e

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"time"
)

// WaitFor polls cond every interval until it reports done, returns an error,
// or timeout elapses — the harness's readiness primitive. Unlike a bare
// sleep it fails fast on a terminal error (a process that already exited)
// and succeeds as soon as the condition lands, so tests neither flake under
// load nor idle longer than they must.
func WaitFor(timeout, interval time.Duration, cond func() (bool, error)) error {
	deadline := time.Now().Add(timeout)
	for {
		done, err := cond()
		if err != nil {
			return err
		}
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("e2e: condition not met within %v", timeout)
		}
		time.Sleep(interval)
	}
}

// WaitHTTPOK polls url until a GET answers 200 — readiness for an HTTP
// server whose listener is up but whose accept loop may not be.
func WaitHTTPOK(url string, timeout time.Duration) error {
	return WaitFor(timeout, 10*time.Millisecond, func() (bool, error) {
		resp, err := http.Get(url)
		if err != nil {
			return false, nil // not accepting yet; keep polling
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK, nil
	})
}

// baseURLRe matches the loopback listen URL a server prints on startup.
var baseURLRe = regexp.MustCompile(`http://(127\.0\.0\.1:\d+)`)

// FindBaseURL extracts the first loopback base URL from captured output.
func FindBaseURL(output string) (string, bool) {
	if m := baseURLRe.FindStringSubmatch(output); m != nil {
		return "http://" + m[1], true
	}
	return "", false
}
