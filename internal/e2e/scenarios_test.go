//go:build e2e

package e2e

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func TestMain(m *testing.M) {
	code := m.Run()
	CleanupBinaries()
	os.Exit(code)
}

// TestE2EScenarios is the scenario suite: every entry boots the full
// pipeline as processes — sharded blcrawl fleet, blgen/bldetect dataset
// steps, blserve — and asserts on the served API, cross-checked against the
// regenerated ground-truth world.
func TestE2EScenarios(t *testing.T) {
	var su Suite

	su.Add(Scenario{
		Name:        "baseline",
		CrawlHours:  12,
		Description: "fault-free two-shard crawl; served verdicts must match ground truth",
		Seed:        42,
		Crawlers:    2,
		Smoke:       true,
		Run:         checkHealthyStack(""),
	})
	su.Add(Scenario{
		Name:        "bursty-loss",
		CrawlHours:  12,
		Description: "crawl under bursty datagram loss; precision must survive end to end",
		Seed:        43,
		Crawlers:    2,
		Faults:      "bursty",
		Run:         checkHealthyStack("bursty"),
	})
	su.Add(Scenario{
		Name:        "blackout",
		CrawlHours:  12,
		Description: "crawl through a total connectivity blackout window",
		// Seed chosen so the tiny test-scale world still yields a dynamic
		// pool for bldetect (not every seed does at scale 0.05).
		Seed:     49,
		Crawlers: 2,
		Faults:   "blackout",
		Run:      checkHealthyStack("blackout"),
	})
	su.Add(Scenario{
		Name:        "restart-storm",
		CrawlHours:  12,
		Description: "crawl through mass peer restarts; port churn must not poison the list",
		Seed:        45,
		Crawlers:    3,
		Faults:      "storm",
		Run:         checkHealthyStack("storm"),
	})
	su.Add(Scenario{
		Name:        "watch-reload",
		Description: "identical hot reloads keep the ETag; a grown dataset swaps in live",
		Seed:        46,
		Watch:       true,
		Smoke:       true,
		Run:         runWatchReload,
	})
	su.Add(Scenario{
		Name:        "watch-bad-reload",
		Description: "a corrupt input mid-run must not dent the served snapshot",
		Seed:        47,
		Watch:       true,
		Smoke:       true,
		Run:         runWatchBadReload,
	})
	su.Add(Scenario{
		Name:        "multi-dataset",
		CrawlHours:  12,
		Description: "three named datasets behind one server; routing, stats, manifest and metrics stay per-dataset",
		// Seed shared with baseline: proven to yield both NATed addresses
		// and a dynamic pool at the test scale (not every seed does).
		Seed: 42,
		Crawlers:    2,
		Smoke:       true,
		Datasets: []DatasetSpec{
			{Name: "all", Nated: true, Dynamic: true},
			{Name: "pools", Nated: true},
			{Name: "dial", Dynamic: true},
		},
		Run: runMultiDataset,
	})
	su.Add(Scenario{
		Name:        "greylist",
		CrawlHours:  12,
		Description: "/v1/greylist tempfails reused addresses with a retry window and blocks clean ones",
		// Seed shared with blackout: a world with reachable users and a
		// dynamic pool at the test scale.
		Seed: 49,
		Crawlers:    2,
		Smoke:       true,
		Run:         runGreylist,
	})
	su.Add(Scenario{
		Name:        "check-load",
		CrawlHours:  12,
		Description: "concurrent load on /v1/check; zero errors, latency recorded to BENCH_e2e.json",
		Seed:        48,
		Crawlers:    2,
		Run:         runCheckLoad,
	})
	su.Add(Scenario{
		Name:        "overload-flood",
		CrawlHours:  12,
		Description: "5x-capacity mixed flood; goodput stays in the SLO band, sheds are well-formed, /readyz cycles",
		Seed:        50,
		Crawlers:    2,
		Smoke:       true,
		Shed:        floodShedParams(),
		Run:         runOverloadFlood,
	})
	su.Add(Scenario{
		Name:        "overload-hotkey",
		CrawlHours:  12,
		Description: "CGNAT hot key against per-client rate limits; neighbors take no collateral damage",
		Seed:        51,
		Crawlers:    2,
		Shed: &ShedParams{
			Rate:           40,
			Burst:          20,
			TrustForwarded: true,
		},
		Run: runOverloadHotkey,
	})

	su.Run(t)
}

// checkHealthyStack is the shared assertion body for crawl scenarios: the
// served dataset is non-trivial, every served verdict survives the oracle,
// and /metrics plus /debug/manifest reflect the scenario's fault catalogue.
func checkHealthyStack(faults string) func(*Stack) error {
	return func(s *Stack) error {
		stats, err := s.Stats()
		if err != nil {
			return err
		}
		if stats.Empty {
			return fmt.Errorf("served dataset is empty")
		}
		if stats.DynamicPrefixes == 0 {
			return fmt.Errorf("no dynamic prefixes served (bldetect produced nothing)")
		}
		if faults == "" && stats.NATedAddresses == 0 {
			return fmt.Errorf("fault-free crawl detected no NATed addresses")
		}
		if err := s.CheckServedAgainstOracle(); err != nil {
			return err
		}
		m, err := s.Manifest()
		if err != nil {
			return err
		}
		if m.FaultScenario != faults {
			return fmt.Errorf("manifest fault_scenario = %q, want %q", m.FaultScenario, faults)
		}
		if m.Serving == nil {
			return fmt.Errorf("manifest carries no serving status")
		}
		if m.Serving.Reloads != 0 {
			return fmt.Errorf("fresh server reports %d reloads", m.Serving.Reloads)
		}
		metrics, err := s.Metrics()
		if err != nil {
			return err
		}
		if v, ok := MetricValue(metrics, "wall_dataset_reloads_total"); !ok || v != 0 {
			return fmt.Errorf("wall_dataset_reloads_total = %v (present=%v), want 0", v, ok)
		}
		if !strings.Contains(metrics, "wall_api_requests_total") {
			return fmt.Errorf("metrics do not count api requests:\n%s", metrics)
		}
		return nil
	}
}

// waitReloads polls the manifest until the server has seen want reloads.
func waitReloads(s *Stack, want int64) error {
	return WaitFor(10*time.Second, s.Cfg.WatchInterval, func() (bool, error) {
		m, err := s.Manifest()
		if err != nil {
			return false, err
		}
		return m.Serving != nil && m.Serving.Reloads >= want, nil
	})
}

func runWatchReload(s *Stack) error {
	m, err := s.Manifest()
	if err != nil {
		return err
	}
	if m.Serving == nil || !m.Serving.Watching {
		return fmt.Errorf("blserve -watch does not report watching")
	}
	etag, err := s.ETag("/v1/list")
	if err != nil {
		return err
	}
	// The precomputed endpoints negotiate encoding, so every answer must
	// carry Vary: Accept-Encoding or a shared cache will serve the wrong
	// representation.
	if vary, err := s.Header("/v1/list", "Vary"); err != nil {
		return err
	} else if vary != "Accept-Encoding" {
		return fmt.Errorf("/v1/list Vary = %q, want Accept-Encoding", vary)
	}

	// A byte-identical rewrite trips the watcher but must compile to the
	// same dataset: the ETag pins that across as many reloads as we force.
	for i := int64(1); i <= 2; i++ {
		if err := s.TouchNATedInput(); err != nil {
			return err
		}
		if err := waitReloads(s, i); err != nil {
			return fmt.Errorf("reload %d never landed: %w", i, err)
		}
		again, err := s.ETag("/v1/list")
		if err != nil {
			return err
		}
		if again != etag {
			return fmt.Errorf("identical reload %d changed the ETag %s -> %s", i, etag, again)
		}
	}

	// Grow the dataset with a true gateway the crawl may have missed; the
	// swap must be visible in verdicts, stats and a fresh ETag.
	users, err := s.ServedNATedInput()
	if err != nil {
		return err
	}
	added := iputil.Addr(0)
	for addr, truth := range s.World.NATByIP {
		if _, served := users[addr]; !served && truth.BTUsers >= 2 {
			added = addr
			break
		}
	}
	if added == 0 {
		return fmt.Errorf("no unserved NAT gateway available to add")
	}
	users[added] = 2
	if err := s.RewriteNATedInput(users, "grown by watch-reload scenario"); err != nil {
		return err
	}
	if err := waitReloads(s, 3); err != nil {
		return fmt.Errorf("grow reload never landed: %w", err)
	}
	v, err := s.Verdict(added.String())
	if err != nil {
		return err
	}
	if !v.NATed || v.Users != 2 {
		return fmt.Errorf("added gateway %s served as %+v, want nated users=2", added, v)
	}
	stats, err := s.Stats()
	if err != nil {
		return err
	}
	if stats.NATedAddresses != len(users) {
		return fmt.Errorf("stats report %d NATed addresses after grow, want %d",
			stats.NATedAddresses, len(users))
	}
	grown, err := s.ETag("/v1/list")
	if err != nil {
		return err
	}
	if grown == etag {
		return fmt.Errorf("dataset grew but /v1/list ETag did not change")
	}
	if vary, err := s.Header("/v1/list", "Vary"); err != nil {
		return err
	} else if vary != "Accept-Encoding" {
		return fmt.Errorf("reload dropped Vary: got %q, want Accept-Encoding", vary)
	}
	return s.CheckServedAgainstOracle()
}

// runWatchBadReload corrupts the NATed input mid-run: the old snapshot must
// keep serving, the manifest must record the failed reload, and the reload
// counter must not advance. Restoring the file heals the server.
func runWatchBadReload(s *Stack) error {
	etag, err := s.ETag("/v1/list")
	if err != nil {
		return err
	}
	statsBefore, err := s.Stats()
	if err != nil {
		return err
	}
	good, err := s.ServedNATedInput()
	if err != nil {
		return err
	}

	if err := s.CorruptNATedInput(); err != nil {
		return err
	}
	err = WaitFor(10*time.Second, s.Cfg.WatchInterval, func() (bool, error) {
		m, merr := s.Manifest()
		if merr != nil {
			return false, merr
		}
		return m.Serving != nil && m.Serving.LastError != "", nil
	})
	if err != nil {
		return fmt.Errorf("manifest never recorded the failed reload: %w", err)
	}

	m, err := s.Manifest()
	if err != nil {
		return err
	}
	if m.Serving.Reloads != 0 {
		return fmt.Errorf("failed reload advanced the reload count to %d", m.Serving.Reloads)
	}
	metrics, err := s.Metrics()
	if err != nil {
		return err
	}
	if v, ok := MetricValue(metrics, "wall_dataset_reloads_total"); !ok || v != 0 {
		return fmt.Errorf("wall_dataset_reloads_total = %v after failed reload, want 0", v)
	}
	after, err := s.ETag("/v1/list")
	if err != nil {
		return err
	}
	if after != etag {
		return fmt.Errorf("failed reload changed the served list ETag %s -> %s", etag, after)
	}
	statsAfter, err := s.Stats()
	if err != nil {
		return err
	}
	if statsAfter != statsBefore {
		return fmt.Errorf("failed reload changed stats %+v -> %+v", statsBefore, statsAfter)
	}

	// Heal: restoring a parseable file swaps a fresh dataset in and clears
	// the recorded error.
	if err := s.RewriteNATedInput(good, "restored by watch-bad-reload scenario"); err != nil {
		return err
	}
	if err := waitReloads(s, 1); err != nil {
		return fmt.Errorf("healing reload never landed: %w", err)
	}
	m, err = s.Manifest()
	if err != nil {
		return err
	}
	if m.Serving.LastError != "" {
		return fmt.Errorf("healed server still reports reload error %q", m.Serving.LastError)
	}
	return s.CheckServedAgainstOracle()
}

// runMultiDataset boots blserve with three named slices of the pipeline
// outputs and asserts the registry keeps them apart: per-dataset routes,
// stats, manifest blocks and metric labels, with the unprefixed routes
// aliasing the default, and a mixed load run touching every route cleanly.
func runMultiDataset(s *Stack) error {
	all, err := s.DatasetStats("all")
	if err != nil {
		return err
	}
	if all.Empty || all.NATedAddresses == 0 || all.DynamicPrefixes == 0 {
		return fmt.Errorf("default dataset is degenerate: %+v", all)
	}
	pools, err := s.DatasetStats("pools")
	if err != nil {
		return err
	}
	if pools.NATedAddresses != all.NATedAddresses || pools.DynamicPrefixes != 0 {
		return fmt.Errorf("pools stats %+v, want %d NATed and no prefixes", pools, all.NATedAddresses)
	}
	dial, err := s.DatasetStats("dial")
	if err != nil {
		return err
	}
	if dial.NATedAddresses != 0 || dial.DynamicPrefixes != all.DynamicPrefixes {
		return fmt.Errorf("dial stats %+v, want %d prefixes and no NATed", dial, all.DynamicPrefixes)
	}

	// The unprefixed routes alias the first -dataset flag ("all").
	unprefixed, err := s.Stats()
	if err != nil {
		return err
	}
	if unprefixed != all {
		return fmt.Errorf("unprefixed stats %+v != default dataset stats %+v", unprefixed, all)
	}

	// The same address answers per-dataset: NATed in "pools", clean in
	// "dial" (which only serves the dynamic prefixes).
	served, err := s.ServedNATed()
	if err != nil {
		return err
	}
	if len(served) == 0 {
		return fmt.Errorf("no served NATed addresses to probe")
	}
	ip := served[0]
	pv, err := s.DatasetVerdict("pools", ip)
	if err != nil {
		return err
	}
	if !pv.NATed {
		return fmt.Errorf("pools verdict for %s = %+v, want nated", ip, pv)
	}
	dv, err := s.DatasetVerdict("dial", ip)
	if err != nil {
		return err
	}
	if dv.NATed {
		return fmt.Errorf("dial verdict for %s = %+v, want not nated", ip, dv)
	}

	// Unknown names 404 instead of falling through to the default dataset.
	if code, _, _, err := s.get("/v1/nosuch/stats"); err != nil {
		return err
	} else if code != 404 {
		return fmt.Errorf("GET /v1/nosuch/stats = %d, want 404", code)
	}

	m, err := s.Manifest()
	if err != nil {
		return err
	}
	if m.Serving == nil || len(m.Serving.Datasets) != 3 {
		return fmt.Errorf("manifest carries no per-dataset blocks: %+v", m.Serving)
	}
	if d := m.Serving.Datasets[0]; d.Name != "all" || !d.Default {
		return fmt.Errorf("manifest dataset[0] = %+v, want default %q", d, "all")
	}
	metrics, err := s.Metrics()
	if err != nil {
		return err
	}
	for _, label := range []string{`dataset="all"`, `dataset="pools"`, `dataset="dial"`} {
		if !strings.Contains(metrics, label) {
			return fmt.Errorf("metrics carry no %s samples", label)
		}
	}

	// A short mixed load across every route (including the unprefixed
	// alias) must complete error-free.
	lg := LoadGen{
		BaseURL:     s.BaseURL,
		Targets:     append(served, "192.0.2.1"),
		Datasets:    []string{"", "all", "pools", "dial"},
		Concurrency: 4,
		Duration:    time.Second,
	}
	res, err := lg.Run()
	if err != nil {
		return err
	}
	if res.Errors > 0 || res.Requests == 0 {
		return fmt.Errorf("multi-dataset load run: %d errors over %d requests", res.Errors, res.Requests)
	}
	return s.CheckServedAgainstOracle()
}

// runGreylist asserts the mitigation endpoint end to end: reused addresses
// (NATed or inside a dynamic pool) come back tempfail with a retry window
// and an expiry, clean addresses come back block with neither, and the
// embedded verdict agrees with /v1/check.
func runGreylist(s *Stack) error {
	served, err := s.ServedNATed()
	if err != nil {
		return err
	}
	prefixes, err := s.ServedPrefixes()
	if err != nil {
		return err
	}
	if len(served) == 0 || len(prefixes) == 0 {
		return fmt.Errorf("dataset too small to probe greylist (%d NATed, %d prefixes)",
			len(served), len(prefixes))
	}
	pfx, err := iputil.ParsePrefix(prefixes[0])
	if err != nil {
		return err
	}

	checkReused := func(ip string) error {
		ans, err := s.Greylist("", ip)
		if err != nil {
			return err
		}
		if ans.Action != "tempfail" || !ans.Reused {
			return fmt.Errorf("greylist(%s) = %+v, want reused tempfail", ip, ans)
		}
		if ans.MinDelaySeconds <= 0 || ans.RetryWindowSeconds <= ans.MinDelaySeconds {
			return fmt.Errorf("greylist(%s) window %d/%d makes no sense",
				ip, ans.MinDelaySeconds, ans.RetryWindowSeconds)
		}
		if ans.Expires.IsZero() || !ans.Expires.After(time.Now()) {
			return fmt.Errorf("greylist(%s) expires %v, want a future instant", ip, ans.Expires)
		}
		v, err := s.Verdict(ip)
		if err != nil {
			return err
		}
		if ans.Verdict != v {
			return fmt.Errorf("greylist verdict %+v disagrees with /v1/check %+v", ans.Verdict, v)
		}
		return nil
	}
	if err := checkReused(served[0]); err != nil {
		return err
	}
	if err := checkReused(pfx.Nth(1).String()); err != nil {
		return err
	}

	clean, err := s.Greylist("", "192.0.2.1")
	if err != nil {
		return err
	}
	if clean.Action != "block" || clean.Reused {
		return fmt.Errorf("greylist(clean) = %+v, want non-reused block", clean)
	}
	if clean.MinDelaySeconds != 0 || clean.RetryWindowSeconds != 0 || !clean.Expires.IsZero() {
		return fmt.Errorf("greylist(clean) carries a greylisting window: %+v", clean)
	}
	return nil
}

// runCheckLoad drives the zero-alloc check path concurrently and records the
// latency distribution to the e2e bench file.
func runCheckLoad(s *Stack) error {
	served, err := s.ServedNATed()
	if err != nil {
		return err
	}
	if len(served) == 0 {
		return fmt.Errorf("nothing served to load against")
	}
	targets := append(served, "203.0.113.99", "192.0.2.1", "8.8.8.8")

	lg := LoadGen{
		BaseURL:     s.BaseURL,
		Targets:     targets,
		Concurrency: 8,
		Duration:    3 * time.Second,
	}
	if s.Short {
		lg.Concurrency = 4
		lg.Duration = time.Second
	}
	res, err := lg.Run()
	if err != nil {
		return err
	}
	if res.Errors > 0 {
		return fmt.Errorf("load run saw %d/%d errors", res.Errors, res.Requests)
	}
	if res.Requests == 0 {
		return fmt.Errorf("load run completed no requests")
	}

	out := os.Getenv("E2E_BENCH_OUT")
	if out == "" {
		out = filepath.Join(RepoRoot(), "BENCH_e2e.json")
	}
	rec := BenchRecord{
		Scenario:    "check-load",
		When:        time.Now().UTC().Format(time.RFC3339),
		Seed:        s.Cfg.Seed,
		Scale:       s.Cfg.Scale,
		Concurrency: lg.Concurrency,
		DurationSec: lg.Duration.Seconds(),
		LoadResult:  res,
	}
	return AppendBenchRecord(out, rec)
}
