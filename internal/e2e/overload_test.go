//go:build e2e

package e2e

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// floodShedParams is the deliberately tiny operating point the flood
// scenario boots blserve with: a heavy gate two slots wide with a short
// queue so a 5x-capacity batch flood overloads it within milliseconds,
// and fast degrade/recover windows so one scenario can watch the whole
// mode cycle.
func floodShedParams() *ShedParams {
	return &ShedParams{
		CheapConcurrency: 8,
		HeavyConcurrency: 1,
		Queue:            4,
		Target:           time.Millisecond,
		MaxWait:          20 * time.Millisecond,
		DegradeAfter:     200 * time.Millisecond,
		RecoverAfter:     400 * time.Millisecond,
		DegradedBatch:    64,
	}
}

// holdHeavySlots models the classic expensive-endpoint exhaustion attack: a
// slow-loris batch POST. Admission happens when the request headers arrive,
// but the handler then blocks reading the request body — which this client
// trickles out a few bytes at a time, never finishing — so the heavy slot
// stays held for as long as the attacker likes. A holder whose request is
// rejected instead retries shortly, restamping the gate's pressure signal.
// Cancelling ctx aborts the uploads and releases everything.
func holdHeavySlots(ctx context.Context, baseURL string, n int) {
	for i := 0; i < n; i++ {
		go func() {
			client := &http.Client{} // deliberately no timeout: the hold IS the attack
			for ctx.Err() == nil {
				pr, pw := io.Pipe()
				req, err := http.NewRequestWithContext(ctx, http.MethodPost,
					baseURL+"/v1/check", pr)
				if err != nil {
					return
				}
				req.Header.Set("Content-Type", "application/json")
				go func() {
					// An endless JSON array, one element per tick. The
					// transport closes pr when the request ends, failing the
					// next write and ending this goroutine.
					if _, err := pw.Write([]byte(`["192.0.2.1"`)); err != nil {
						return
					}
					for {
						select {
						case <-ctx.Done():
							pw.CloseWithError(context.Canceled)
							return
						case <-time.After(100 * time.Millisecond):
						}
						if _, err := pw.Write([]byte(`,"192.0.2.1"`)); err != nil {
							return
						}
					}
				}()
				// Admitted: no response until the upload ends, so Do blocks
				// here until ctx cancels — that block IS the slot hold.
				// Shed: the 429 arrives mid-upload and Do returns.
				resp, err := client.Do(req)
				if err != nil {
					pr.CloseWithError(context.Canceled)
					if ctx.Err() != nil {
						return
					}
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				select {
				case <-ctx.Done():
					return
				case <-time.After(50 * time.Millisecond):
				}
			}
		}()
	}
}

// runOverloadFlood measures single-client capacity, then overloads the heavy
// endpoint class several times past its capacity: slow readers pin the
// one-slot heavy gate while ten paced clients flood batch POSTs into it, and
// ten closed-loop GET bystanders keep using the cheap path. The shed layer
// must keep bystander goodput within the SLO band (>= 70% of the measured
// single-client capacity), every rejection must carry the documented shape,
// /readyz must flip to 503 under the sustained overload and recover after,
// and the surviving verdicts must still match the oracle. The outcome is
// appended to BENCH_shed.json.
func runOverloadFlood(s *Stack) error {
	served, err := s.ServedNATed()
	if err != nil {
		return err
	}
	if len(served) == 0 {
		return fmt.Errorf("nothing served to flood")
	}
	targets := append(served, "203.0.113.99", "192.0.2.1", "8.8.8.8")

	// Baseline: one closed-loop client on the cheap GET path defines the
	// capacity the SLO band is measured against.
	base := LoadGen{
		BaseURL:     s.BaseURL,
		Targets:     targets,
		Concurrency: 1,
		Duration:    time.Second,
	}
	if s.Short {
		base.Duration = 500 * time.Millisecond
	}
	baseline, err := base.Run()
	if err != nil {
		return fmt.Errorf("capacity baseline: %w", err)
	}
	if baseline.Errors > 0 || baseline.GoodputRPS == 0 {
		return fmt.Errorf("capacity baseline unhealthy: %+v", baseline)
	}

	// Pin the heavy gate first so the flood meets a saturated class.
	holdCtx, stopHold := context.WithCancel(context.Background())
	defer stopHold()
	holdHeavySlots(holdCtx, s.BaseURL, 2)
	time.Sleep(150 * time.Millisecond)

	dur := 3 * time.Second
	if s.Short {
		dur = 1500 * time.Millisecond
	}
	// The batch flood is paced, not closed-loop: offered heavy load stays
	// several times the (pinned) class capacity without the flood clients
	// monopolizing this box's CPU — the quantity under test is the server's
	// admission behaviour, not loopback bandwidth.
	flood := LoadGen{
		BaseURL:       s.BaseURL,
		Targets:       targets,
		Concurrency:   10,
		Duration:      dur,
		BatchFraction: 1,
		BatchSize:     500,
		PerWorkerRPS:  10,
	}
	// The bystanders are the paper-relevant traffic: enforcement points
	// doing single reuse checks while someone else floods the service.
	bystanders := LoadGen{
		BaseURL:     s.BaseURL,
		Targets:     targets,
		Concurrency: 10,
		Duration:    dur,
	}

	var sawDegraded atomic.Bool
	pollDone := make(chan struct{})
	pollStop := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-pollStop:
				return
			case <-time.After(20 * time.Millisecond):
			}
			if code, _, err := s.Readyz(); err == nil && code == http.StatusServiceUnavailable {
				sawDegraded.Store(true)
			}
		}
	}()
	var floodRes, byRes LoadResult
	var floodErr, byErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		floodRes, floodErr = flood.Run()
	}()
	byRes, byErr = bystanders.Run()
	<-done
	close(pollStop)
	<-pollDone
	stopHold()
	if floodErr != nil {
		return fmt.Errorf("flood run: %w", floodErr)
	}
	if byErr != nil {
		return fmt.Errorf("bystander run: %w", byErr)
	}

	if floodRes.Shed == 0 {
		return fmt.Errorf("flood into a pinned heavy gate shed nothing; gate is not engaging: %+v", floodRes)
	}
	if floodRes.MalformedShed > 0 || byRes.MalformedShed > 0 {
		return fmt.Errorf("%d shed responses missing the documented Error shape or Retry-After",
			floodRes.MalformedShed+byRes.MalformedShed)
	}
	if floodRes.Errors > 0 || byRes.Errors > 0 {
		return fmt.Errorf("overload saw non-shed errors: flood %d, bystanders %d",
			floodRes.Errors, byRes.Errors)
	}
	if !sawDegraded.Load() {
		return fmt.Errorf("sustained flood never flipped /readyz to 503")
	}
	share := byRes.GoodputRPS / baseline.GoodputRPS
	if share < 0.7 {
		return fmt.Errorf("bystander goodput %0.f rps is %.0f%% of single-client capacity %0.f rps; SLO band is >= 70%% (bystanders: %+v)",
			byRes.GoodputRPS, share*100, baseline.GoodputRPS, byRes)
	}
	// Recovery: with the flood gone, /readyz polling alone must walk the
	// mode machine back to normal.
	if err := WaitFor(10*time.Second, 50*time.Millisecond, func() (bool, error) {
		code, _, err := s.Readyz()
		if err != nil {
			return false, err
		}
		return code == http.StatusOK, nil
	}); err != nil {
		return fmt.Errorf("/readyz never recovered after the flood: %w", err)
	}

	// The surviving service is still the same dataset.
	if err := s.CheckServedAgainstOracle(); err != nil {
		return err
	}

	out := os.Getenv("E2E_BENCH_SHED_OUT")
	if out == "" {
		out = filepath.Join(RepoRoot(), "BENCH_shed.json")
	}
	return AppendShedBenchRecord(out, ShedBenchRecord{
		Scenario:     "overload-flood",
		When:         time.Now().UTC().Format(time.RFC3339),
		Seed:         s.Cfg.Seed,
		Scale:        s.Cfg.Scale,
		Concurrency:  flood.Concurrency + bystanders.Concurrency,
		DurationSec:  dur.Seconds(),
		CapacityRPS:  baseline.GoodputRPS,
		GoodputRPS:   byRes.GoodputRPS,
		GoodputShare: share,
		P99Ms:        byRes.P99Ms,
		Shed:         floodRes.Shed + byRes.Shed,
		Errors:       floodRes.Errors + byRes.Errors,
	})
}

// runOverloadHotkey boots blserve with per-client rate limiting trusting
// X-Forwarded-For, then drives a CGNAT-style client mix: half the workers
// share one hot address, the rest are distinct well-behaved clients pacing
// under the limit. The hot key must be shed (well-formed), and — the
// paper's collateral-damage point inverted — the distinct clients must not
// lose a single request to their noisy neighbor.
func runOverloadHotkey(s *Stack) error {
	served, err := s.ServedNATed()
	if err != nil {
		return err
	}
	if len(served) == 0 {
		return fmt.Errorf("nothing served to load against")
	}

	const hot = "100.64.9.9"
	cold := []string{"203.0.113.1", "203.0.113.2", "203.0.113.3", "203.0.113.4"}
	lg := LoadGen{
		BaseURL:      s.BaseURL,
		Targets:      served,
		Concurrency:  8,
		Duration:     2 * time.Second,
		PerWorkerRPS: 25,
		// Four workers share the hot key (100 rps aggregate against a
		// 40 rps / burst-20 budget); four are distinct 25 rps clients
		// comfortably under it.
		ClientIPs: append([]string{hot, hot, hot, hot}, cold...),
	}
	res, err := lg.Run()
	if err != nil {
		return err
	}
	if res.MalformedShed > 0 {
		return fmt.Errorf("%d rate-limit rejections missing the documented shape", res.MalformedShed)
	}
	hc := res.PerClient[hot]
	if hc.Shed == 0 {
		return fmt.Errorf("hot key at 100 rps against a 40 rps budget was never rate limited: %+v", hc)
	}
	for _, ip := range cold {
		cc := res.PerClient[ip]
		if cc.Requests == 0 {
			return fmt.Errorf("well-behaved client %s sent nothing", ip)
		}
		if cc.Shed != 0 || cc.Errors != 0 {
			return fmt.Errorf("well-behaved client %s took collateral damage from the hot key: %+v", ip, cc)
		}
	}
	return nil
}
