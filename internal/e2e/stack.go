package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/reuseapi"
	"github.com/reuseblock/reuseblock/internal/testkit"
)

// StackConfig describes one full-pipeline boot: the seeded world every
// process regenerates, how many blcrawl shards split it, which fault
// scenario the crawl runs under, and whether blserve watches its inputs.
type StackConfig struct {
	Seed          int64
	Scale         float64
	CrawlDuration time.Duration
	Crawlers      int
	// Faults names an internal/faults scenario for the crawl fleet ("" for
	// fault-free); it also stamps the served dataset's manifest provenance.
	Faults string
	// Watch starts blserve with -watch so scenarios can drive hot reloads.
	Watch         bool
	WatchInterval time.Duration
	// Shed, when non-nil, starts blserve with -shed and these admission
	// parameters — the overload-resilience scenarios' knob.
	Shed *ShedParams
	// Datasets, when non-empty, boots blserve in multi-dataset mode with one
	// repeated -dataset flag per spec, each slicing the pipeline's two list
	// files. The first entry is the default dataset the unprefixed /v1/*
	// routes alias.
	Datasets []DatasetSpec
	// BootTimeout bounds each pipeline stage (crawl, detect, serve-ready).
	BootTimeout time.Duration
}

// DatasetSpec names one blserve dataset and selects which of the pipeline's
// outputs it serves: the merged NATed list, the detected dynamic prefixes,
// or both.
type DatasetSpec struct {
	Name    string
	Nated   bool
	Dynamic bool
}

// ShedParams maps onto blserve's -shed* flags. Zero fields are omitted so
// the server's own defaults apply.
type ShedParams struct {
	CheapConcurrency int
	HeavyConcurrency int
	Queue            int
	Target           time.Duration
	Interval         time.Duration
	MaxWait          time.Duration
	Rate             float64
	Burst            int
	TrustForwarded   bool
	DegradeAfter     time.Duration
	RecoverAfter     time.Duration
	RetryAfter       time.Duration
	DegradedBatch    int
}

// args renders the parameter set as blserve flags.
func (p *ShedParams) args() []string {
	out := []string{"-shed"}
	addInt := func(flag string, v int) {
		if v > 0 {
			out = append(out, flag, strconv.Itoa(v))
		}
	}
	addDur := func(flag string, v time.Duration) {
		if v > 0 {
			out = append(out, flag, v.String())
		}
	}
	addInt("-shed-cheap-concurrency", p.CheapConcurrency)
	addInt("-shed-heavy-concurrency", p.HeavyConcurrency)
	addInt("-shed-queue", p.Queue)
	addDur("-shed-target", p.Target)
	addDur("-shed-interval", p.Interval)
	addDur("-shed-max-wait", p.MaxWait)
	if p.Rate > 0 {
		out = append(out, "-shed-rate", fmt.Sprintf("%g", p.Rate))
	}
	addInt("-shed-burst", p.Burst)
	if p.TrustForwarded {
		out = append(out, "-shed-trust-forwarded")
	}
	addDur("-shed-degrade-after", p.DegradeAfter)
	addDur("-shed-recover-after", p.RecoverAfter)
	addDur("-shed-retry-after", p.RetryAfter)
	addInt("-shed-degraded-batch", p.DegradedBatch)
	return out
}

func (c StackConfig) withDefaults() StackConfig {
	if c.Scale == 0 {
		c.Scale = 0.05
	}
	if c.CrawlDuration == 0 {
		c.CrawlDuration = 12 * time.Hour
	}
	if c.Crawlers == 0 {
		c.Crawlers = 2
	}
	if c.WatchInterval == 0 {
		c.WatchInterval = 25 * time.Millisecond
	}
	if c.BootTimeout == 0 {
		c.BootTimeout = 2 * time.Minute
	}
	return c
}

// Stack is one booted scenario: the crawler fleet has run to completion, the
// dataset steps have produced list files, and blserve is live on loopback.
// The in-process World is the byte-identical ground truth every process
// regenerated from the seed, so oracle checks need no side channel.
type Stack struct {
	Cfg    StackConfig
	World  *blgen.World
	Oracle testkit.Oracle

	// Dir is the scenario workspace: shard outputs, merged lists, the
	// generated RIPE logs, and saved process logs on failure.
	Dir          string
	NatedPath    string
	PrefixesPath string

	// Short mirrors testing.Short for scenarios that scale their load.
	Short bool

	BaseURL string
	Serve   *Proc

	// finished holds run-to-completion processes (crawlers, blgen,
	// bldetect) for log salvage.
	finished []*Proc

	client *http.Client
}

// BootStack runs the whole pipeline as processes. On error the returned
// stack is still non-nil so callers can salvage logs; Close it either way.
func BootStack(cfg StackConfig) (*Stack, error) {
	cfg = cfg.withDefaults()
	st := &Stack{Cfg: cfg, client: &http.Client{Timeout: 30 * time.Second}}

	bins, err := Binaries()
	if err != nil {
		return st, err
	}
	st.Dir, err = os.MkdirTemp("", "reuseblock-e2e-")
	if err != nil {
		return st, err
	}

	// Ground truth: the same deterministic world the crawler processes
	// regenerate from (seed, scale).
	wp := blgen.DefaultParams(cfg.Seed)
	wp.Scale = cfg.Scale
	st.World = blgen.Generate(wp)
	st.Oracle = testkit.Oracle{World: st.World}

	// Stage 1 — dataset sources, concurrently: the sharded crawl fleet and
	// the world generator (for the RIPE connection logs bldetect consumes).
	worldDir := filepath.Join(st.Dir, "world")
	gen, err := StartProc("blgen", bins["blgen"],
		"-out", worldDir, "-seed", strconv.FormatInt(cfg.Seed, 10),
		"-scale", fmt.Sprintf("%g", cfg.Scale), "-days", "1")
	if err != nil {
		return st, err
	}
	st.finished = append(st.finished, gen)

	shardOuts := make([]string, cfg.Crawlers)
	crawlers := make([]*Proc, cfg.Crawlers)
	for i := range crawlers {
		shardOuts[i] = filepath.Join(st.Dir, fmt.Sprintf("nated_shard%d.txt", i))
		args := []string{
			"-seed", strconv.FormatInt(cfg.Seed, 10),
			"-scale", fmt.Sprintf("%g", cfg.Scale),
			"-duration", cfg.CrawlDuration.String(),
			"-out", shardOuts[i],
		}
		if cfg.Crawlers > 1 {
			// blcrawl numbers fleet shards 1-based: I/N with 1 <= I <= N.
			args = append(args, "-shard", fmt.Sprintf("%d/%d", i+1, cfg.Crawlers))
		}
		if cfg.Faults != "" {
			args = append(args, "-faults", cfg.Faults)
		}
		name := fmt.Sprintf("blcrawl-%d", i)
		crawlers[i], err = StartProc(name, bins["blcrawl"], args...)
		if err != nil {
			return st, err
		}
		st.finished = append(st.finished, crawlers[i])
	}
	for _, c := range crawlers {
		if err := c.WaitExit(cfg.BootTimeout); err != nil {
			return st, fmt.Errorf("%s: %w\nstderr: %s", c.Name, err, c.Stderr())
		}
	}
	if err := gen.WaitExit(cfg.BootTimeout); err != nil {
		return st, fmt.Errorf("blgen: %w\nstderr: %s", err, gen.Stderr())
	}

	// Stage 2 — pipeline: merge the shard observations into one NATed list
	// and run the dynamic-address detector over the RIPE logs.
	merged, err := MergeNATedShards(shardOuts)
	if err != nil {
		return st, err
	}
	st.NatedPath = filepath.Join(st.Dir, "nated.txt")
	header := fmt.Sprintf("merged from %d blcrawl shards (seed %d)", cfg.Crawlers, cfg.Seed)
	if err := writeNATedFile(st.NatedPath, merged, header); err != nil {
		return st, err
	}

	st.PrefixesPath = filepath.Join(st.Dir, "prefixes.txt")
	det, err := StartProc("bldetect", bins["bldetect"],
		"-logs", filepath.Join(worldDir, "ripe-connection-logs.csv"),
		"-prefixes-out", st.PrefixesPath)
	if err != nil {
		return st, err
	}
	st.finished = append(st.finished, det)
	if err := det.WaitExit(cfg.BootTimeout); err != nil {
		return st, fmt.Errorf("bldetect: %w\nstderr: %s", err, det.Stderr())
	}

	// Stage 3 — serve the datasets on an ephemeral loopback port.
	serveArgs := []string{"-addr", "127.0.0.1:0"}
	if len(cfg.Datasets) > 0 {
		for _, ds := range cfg.Datasets {
			nated, dyn := "", ""
			if ds.Nated {
				nated = st.NatedPath
			}
			if ds.Dynamic {
				dyn = st.PrefixesPath
			}
			serveArgs = append(serveArgs, "-dataset", fmt.Sprintf("%s=%s,%s", ds.Name, nated, dyn))
		}
	} else {
		serveArgs = append(serveArgs, "-nated", st.NatedPath, "-dynamic", st.PrefixesPath)
	}
	if cfg.Watch {
		serveArgs = append(serveArgs, "-watch", "-watch-interval", cfg.WatchInterval.String())
	}
	if cfg.Shed != nil {
		serveArgs = append(serveArgs, cfg.Shed.args()...)
	}
	if cfg.Faults != "" {
		serveArgs = append(serveArgs, "-dataset-faults", cfg.Faults)
	}
	st.Serve, err = StartProc("blserve", bins["blserve"], serveArgs...)
	if err != nil {
		return st, err
	}
	err = WaitFor(cfg.BootTimeout, 10*time.Millisecond, func() (bool, error) {
		if st.Serve.Exited() {
			return false, fmt.Errorf("blserve exited during startup\nstderr: %s", st.Serve.Stderr())
		}
		base, ok := FindBaseURL(st.Serve.Stdout())
		st.BaseURL = base
		return ok, nil
	})
	if err != nil {
		return st, err
	}
	if err := WaitHTTPOK(st.BaseURL+"/v1/stats", cfg.BootTimeout); err != nil {
		return st, fmt.Errorf("blserve never became ready: %w", err)
	}
	return st, nil
}

// Close drains the server and removes the workspace.
func (s *Stack) Close() error {
	var err error
	if s.Serve != nil {
		err = s.Serve.Stop(10 * time.Second)
	}
	if s.Dir != "" {
		os.RemoveAll(s.Dir)
	}
	return err
}

// SaveLogs writes every process's captured output plus the dataset inputs
// under dir for post-mortem (CI uploads this directory on failure).
func (s *Stack) SaveLogs(dir string) error {
	procs := append([]*Proc{}, s.finished...)
	if s.Serve != nil {
		procs = append(procs, s.Serve)
	}
	for _, p := range procs {
		if err := p.SaveLogs(dir); err != nil {
			return err
		}
	}
	for _, f := range []string{s.NatedPath, s.PrefixesPath} {
		if f == "" {
			continue
		}
		if data, err := os.ReadFile(f); err == nil {
			if err := os.WriteFile(filepath.Join(dir, filepath.Base(f)), data, 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

// CrawlerOutputs returns each crawler process's stdout, for fault-catalogue
// assertions (retries, injector drop counts).
func (s *Stack) CrawlerOutputs() []string {
	var outs []string
	for _, p := range s.finished {
		if strings.HasPrefix(p.Name, "blcrawl") {
			outs = append(outs, p.Stdout())
		}
	}
	return outs
}

// MergeNATedShards unions per-shard NATed lists, keeping the largest user
// lower bound seen for an address — the fleet-merge pipeline step.
func MergeNATedShards(paths []string) (map[iputil.Addr]int, error) {
	merged := map[iputil.Addr]int{}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		users, err := blocklist.ParseNATedList(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("e2e: merging %s: %w", path, err)
		}
		for a, n := range users {
			if n > merged[a] {
				merged[a] = n
			}
		}
	}
	return merged, nil
}

// writeNATedFile writes a NATed list atomically (temp file + rename), so a
// watching server never observes a half-written dataset unless a scenario
// corrupts one on purpose.
func writeNATedFile(path string, users map[iputil.Addr]int, header string) error {
	var buf bytes.Buffer
	if err := blocklist.WriteNATedList(&buf, users, header); err != nil {
		return err
	}
	return writeFileAtomic(path, buf.Bytes())
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// RewriteNATedInput atomically replaces the served NATed list — the hot-
// reload scenarios' knob. The content is deterministic for a given map, so
// writing the same map twice produces byte-identical files.
func (s *Stack) RewriteNATedInput(users map[iputil.Addr]int, header string) error {
	return writeNATedFile(s.NatedPath, users, header)
}

// TouchNATedInput rewrites the NATed list with its current bytes — a
// content-identical change that still trips the watcher's mtime stamp, for
// asserting that identical reloads serve identical (same-ETag) datasets.
func (s *Stack) TouchNATedInput() error {
	data, err := os.ReadFile(s.NatedPath)
	if err != nil {
		return err
	}
	return writeFileAtomic(s.NatedPath, data)
}

// CorruptNATedInput atomically replaces the NATed list with unparseable
// content, for failed-reload scenarios.
func (s *Stack) CorruptNATedInput() error {
	return writeFileAtomic(s.NatedPath, []byte("this is not an address list\n"))
}

// ServedNATedInput parses the NATed list currently on disk.
func (s *Stack) ServedNATedInput() (map[iputil.Addr]int, error) {
	f, err := os.Open(s.NatedPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return blocklist.ParseNATedList(f)
}

// get performs one GET against the live server.
func (s *Stack) get(path string) (int, http.Header, []byte, error) {
	resp, err := s.client.Get(s.BaseURL + path)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, body, err
}

// GetJSON decodes a 200 JSON answer into v.
func (s *Stack) GetJSON(path string, v any) error {
	code, _, body, err := s.get(path)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("e2e: GET %s = %d: %s", path, code, body)
	}
	return json.Unmarshal(body, v)
}

// Stats fetches /v1/stats.
func (s *Stack) Stats() (reuseapi.Stats, error) {
	var st reuseapi.Stats
	err := s.GetJSON("/v1/stats", &st)
	return st, err
}

// DatasetStats fetches /v1/{name}/stats — the named route of a
// multi-dataset server.
func (s *Stack) DatasetStats(name string) (reuseapi.Stats, error) {
	var st reuseapi.Stats
	err := s.GetJSON("/v1/"+name+"/stats", &st)
	return st, err
}

// DatasetVerdict fetches one GET /v1/{name}/check answer.
func (s *Stack) DatasetVerdict(name, ip string) (reuseapi.Verdict, error) {
	var v reuseapi.Verdict
	err := s.GetJSON("/v1/"+name+"/check?ip="+ip, &v)
	return v, err
}

// Greylist fetches one GET /v1/greylist answer; dataset "" targets the
// unprefixed route, a name the prefixed one.
func (s *Stack) Greylist(dataset, ip string) (reuseapi.GreylistAnswer, error) {
	var ans reuseapi.GreylistAnswer
	path := "/v1/greylist?ip=" + ip
	if dataset != "" {
		path = "/v1/" + dataset + "/greylist?ip=" + ip
	}
	err := s.GetJSON(path, &ans)
	return ans, err
}

// Header returns one response header of a 200 GET — the scenarios' probe
// for the caching contract (Vary, ETag interplay).
func (s *Stack) Header(path, name string) (string, error) {
	code, h, _, err := s.get(path)
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("e2e: GET %s = %d", path, code)
	}
	return h.Get(name), nil
}

// Manifest fetches /debug/manifest.
func (s *Stack) Manifest() (*obs.Manifest, error) {
	var m obs.Manifest
	if err := s.GetJSON("/debug/manifest", &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Metrics fetches the Prometheus text form of /metrics.
func (s *Stack) Metrics() (string, error) {
	code, _, body, err := s.get("/metrics")
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("e2e: GET /metrics = %d", code)
	}
	return string(body), nil
}

// MetricValue extracts an exact-name sample from Prometheus text output.
func MetricValue(metrics, name string) (float64, bool) {
	for _, line := range strings.Split(metrics, "\n") {
		rest, ok := strings.CutPrefix(line, name)
		if !ok || !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// Readyz fetches /readyz, returning the HTTP status (200 normal, 503
// degraded) and the body.
func (s *Stack) Readyz() (int, string, error) {
	code, _, body, err := s.get("/readyz")
	return code, string(body), err
}

// Verdict fetches one GET /v1/check answer.
func (s *Stack) Verdict(ip string) (reuseapi.Verdict, error) {
	var v reuseapi.Verdict
	err := s.GetJSON("/v1/check?ip="+ip, &v)
	return v, err
}

// BatchVerdicts fetches POST /v1/check answers for ips, in order.
func (s *Stack) BatchVerdicts(ips []string) ([]reuseapi.Verdict, error) {
	body, err := json.Marshal(ips)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Post(s.BaseURL+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("e2e: batch check = %d: %s", resp.StatusCode, msg)
	}
	var vs []reuseapi.Verdict
	err = json.NewDecoder(resp.Body).Decode(&vs)
	return vs, err
}

// ETag returns the ETag header of path.
func (s *Stack) ETag(path string) (string, error) {
	code, h, _, err := s.get(path)
	if err != nil {
		return "", err
	}
	if code != http.StatusOK {
		return "", fmt.Errorf("e2e: GET %s = %d", path, code)
	}
	etag := h.Get("ETag")
	if etag == "" {
		return "", fmt.Errorf("e2e: GET %s carries no ETag", path)
	}
	return etag, nil
}

// ServedNATed parses the /v1/list body into its address strings.
func (s *Stack) ServedNATed() ([]string, error) {
	code, _, body, err := s.get("/v1/list")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("e2e: GET /v1/list = %d", code)
	}
	return parseAddrLines(body), nil
}

// ServedPrefixes parses the /v1/prefixes body into its CIDR strings.
func (s *Stack) ServedPrefixes() ([]string, error) {
	code, _, body, err := s.get("/v1/prefixes")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("e2e: GET /v1/prefixes = %d", code)
	}
	return parseAddrLines(body), nil
}

func parseAddrLines(body []byte) []string {
	var out []string
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, strings.Fields(line)[0])
	}
	return out
}

// CheckServedAgainstOracle pulls verdicts through the live API — every
// served NATed address, a representative inside every served dynamic prefix,
// and probes that must come back clean — and verifies them against the
// world's ground truth. It then replays the same sample through the batch
// endpoint and requires identical answers, so both check paths are pinned to
// the oracle in one sweep.
func (s *Stack) CheckServedAgainstOracle() error {
	ips, err := s.ServedNATed()
	if err != nil {
		return err
	}
	prefixes, err := s.ServedPrefixes()
	if err != nil {
		return err
	}
	for _, p := range prefixes {
		pfx, err := iputil.ParsePrefix(p)
		if err != nil {
			return fmt.Errorf("e2e: served prefix %q: %w", p, err)
		}
		ips = append(ips, pfx.Nth(1).String())
	}
	// Probes outside the world's blocklisted space must come back clean.
	ips = append(ips, "203.0.113.99", "192.0.2.1")

	verdicts := make([]reuseapi.Verdict, 0, len(ips))
	for _, ip := range ips {
		v, err := s.Verdict(ip)
		if err != nil {
			return fmt.Errorf("e2e: check %s: %w", ip, err)
		}
		if v.IP != ip {
			return fmt.Errorf("e2e: check %s answered for %s", ip, v.IP)
		}
		verdicts = append(verdicts, v)
	}
	if err := s.Oracle.CheckServedVerdicts(verdicts); err != nil {
		return err
	}

	batch, err := s.BatchVerdicts(ips)
	if err != nil {
		return err
	}
	if len(batch) != len(verdicts) {
		return fmt.Errorf("e2e: batch returned %d verdicts for %d addresses", len(batch), len(verdicts))
	}
	for i := range batch {
		if batch[i] != verdicts[i] {
			return fmt.Errorf("e2e: batch verdict %+v disagrees with single check %+v", batch[i], verdicts[i])
		}
	}
	return nil
}
