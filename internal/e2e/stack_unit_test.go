package e2e

// Unit tests for the harness pieces that need no process boot: the blserve
// flag rendering, config defaulting, dataset-file knobs, and the Stack HTTP
// helpers against an in-process stand-in server. The e2e-tagged scenarios
// exercise all of these against real processes, but only these tests run on
// every push.

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func TestShedParamsArgs(t *testing.T) {
	full := &ShedParams{
		CheapConcurrency: 8,
		HeavyConcurrency: 1,
		Queue:            4,
		Target:           time.Millisecond,
		Interval:         50 * time.Millisecond,
		MaxWait:          20 * time.Millisecond,
		Rate:             40.5,
		Burst:            20,
		TrustForwarded:   true,
		DegradeAfter:     200 * time.Millisecond,
		RecoverAfter:     400 * time.Millisecond,
		RetryAfter:       time.Second,
		DegradedBatch:    64,
	}
	want := []string{
		"-shed",
		"-shed-cheap-concurrency", "8",
		"-shed-heavy-concurrency", "1",
		"-shed-queue", "4",
		"-shed-target", "1ms",
		"-shed-interval", "50ms",
		"-shed-max-wait", "20ms",
		"-shed-rate", "40.5",
		"-shed-burst", "20",
		"-shed-trust-forwarded",
		"-shed-degrade-after", "200ms",
		"-shed-recover-after", "400ms",
		"-shed-retry-after", "1s",
		"-shed-degraded-batch", "64",
	}
	if got := full.args(); !reflect.DeepEqual(got, want) {
		t.Errorf("full params rendered\n%q\nwant\n%q", got, want)
	}

	// Zero fields must be omitted entirely so blserve's defaults apply.
	if got := (&ShedParams{}).args(); !reflect.DeepEqual(got, []string{"-shed"}) {
		t.Errorf("zero params rendered %q, want just -shed", got)
	}
}

func TestStackConfigWithDefaults(t *testing.T) {
	d := StackConfig{}.withDefaults()
	if d.Scale == 0 || d.CrawlDuration == 0 || d.Crawlers == 0 ||
		d.WatchInterval == 0 || d.BootTimeout == 0 {
		t.Errorf("zero config not fully defaulted: %+v", d)
	}
	set := StackConfig{Seed: 7, Scale: 0.5, CrawlDuration: time.Hour,
		Crawlers: 3, WatchInterval: time.Second, BootTimeout: time.Minute}
	if got := set.withDefaults(); !reflect.DeepEqual(got, set) {
		t.Errorf("explicit config altered by defaulting: %+v -> %+v", set, got)
	}
}

func TestStackNATedInputKnobs(t *testing.T) {
	s := &Stack{NatedPath: filepath.Join(t.TempDir(), "nated.txt")}
	users := map[iputil.Addr]int{
		iputil.MustParseAddr("100.64.0.1"): 5,
		iputil.MustParseAddr("100.64.0.2"): 3,
	}
	if err := s.RewriteNATedInput(users, "unit"); err != nil {
		t.Fatal(err)
	}
	got, err := s.ServedNATedInput()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, users) {
		t.Errorf("rewrite/read round trip: wrote %v, read %v", users, got)
	}

	before, err := os.ReadFile(s.NatedPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.TouchNATedInput(); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(s.NatedPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Error("touch changed the file content")
	}

	if err := s.CorruptNATedInput(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ServedNATedInput(); err == nil {
		t.Error("corrupted input still parsed")
	}
}

// stubAPI serves just enough of the blserve surface for the Stack helpers.
func stubAPI() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"nated_addresses":2}`)
	})
	mux.HandleFunc("/debug/manifest", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"seed":42}`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "api_checks_total 7\nwall_shed_degraded 0\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"ready":false,"mode":"degraded"}`)
	})
	mux.HandleFunc("/v1/check", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			fmt.Fprint(w, `[{"ip":"100.64.0.1","reused":true},{"ip":"8.8.8.8","reused":false}]`)
			return
		}
		fmt.Fprint(w, `{"ip":"100.64.0.1","reused":true}`)
	})
	mux.HandleFunc("/v1/list", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("ETag", `"abc"`)
		fmt.Fprint(w, "# header\n100.64.0.1\tusers>=5\n100.64.0.2\tusers>=3\n")
	})
	mux.HandleFunc("/v1/prefixes", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "203.0.113.0/24\n")
	})
	return mux
}

func TestStackHTTPHelpers(t *testing.T) {
	ts := httptest.NewServer(stubAPI())
	defer ts.Close()
	s := &Stack{BaseURL: ts.URL, client: ts.Client()}

	st, err := s.Stats()
	if err != nil || st.NATedAddresses != 2 {
		t.Errorf("Stats = %+v, %v", st, err)
	}
	m, err := s.Manifest()
	if err != nil || m.Seed != 42 {
		t.Errorf("Manifest = %+v, %v", m, err)
	}
	metrics, err := s.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	if v, ok := MetricValue(metrics, "api_checks_total"); !ok || v != 7 {
		t.Errorf("MetricValue(api_checks_total) = %v, %v", v, ok)
	}
	if _, ok := MetricValue(metrics, "api_checks"); ok {
		t.Error("MetricValue matched a name prefix, want exact-name match")
	}
	code, body, err := s.Readyz()
	if err != nil || code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Errorf("Readyz = %d, %q, %v", code, body, err)
	}
	v, err := s.Verdict("100.64.0.1")
	if err != nil || !v.Reused {
		t.Errorf("Verdict = %+v, %v", v, err)
	}
	vs, err := s.BatchVerdicts([]string{"100.64.0.1", "8.8.8.8"})
	if err != nil || len(vs) != 2 || !vs[0].Reused || vs[1].Reused {
		t.Errorf("BatchVerdicts = %+v, %v", vs, err)
	}
	etag, err := s.ETag("/v1/list")
	if err != nil || etag != `"abc"` {
		t.Errorf("ETag = %q, %v", etag, err)
	}
	nated, err := s.ServedNATed()
	if err != nil || !reflect.DeepEqual(nated, []string{"100.64.0.1", "100.64.0.2"}) {
		t.Errorf("ServedNATed = %v, %v (comment line must be skipped, users column dropped)", nated, err)
	}
	pfx, err := s.ServedPrefixes()
	if err != nil || !reflect.DeepEqual(pfx, []string{"203.0.113.0/24"}) {
		t.Errorf("ServedPrefixes = %v, %v", pfx, err)
	}

	// Non-200s must surface as errors, not silent zero values.
	if _, err := s.ETag("/missing"); err == nil {
		t.Error("ETag on 404 returned no error")
	}
	if err := s.GetJSON("/missing", &struct{}{}); err == nil {
		t.Error("GetJSON on 404 returned no error")
	}
	if _, err := s.ServedNATed(); err != nil {
		// sanity: helper reuse above must not have consumed anything
		t.Errorf("second ServedNATed failed: %v", err)
	}
}

func TestWaitHTTPOK(t *testing.T) {
	var hits int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Not-ready twice, then 200: the poller must ride through non-200s.
		if atomic.AddInt32(&hits, 1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
	}))
	defer ts.Close()
	if err := WaitHTTPOK(ts.URL, 2*time.Second); err != nil {
		t.Fatalf("WaitHTTPOK on an eventually-ready server: %v", err)
	}

	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	down.Close()
	if err := WaitHTTPOK(down.URL, 50*time.Millisecond); err == nil {
		t.Fatal("WaitHTTPOK on a closed server reported ready")
	}
}

func TestStartProcRunsAndCaptures(t *testing.T) {
	p, err := StartProc("echo", "/bin/sh", "-c", "echo listening on http://127.0.0.1:4242; echo oops >&2")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WaitExit(5 * time.Second); err != nil {
		t.Fatalf("WaitExit: %v (stderr: %s)", err, p.Stderr())
	}
	if !p.Exited() {
		t.Error("Exited false after WaitExit")
	}
	url, ok := FindBaseURL(p.Stdout())
	if !ok || url != "http://127.0.0.1:4242" {
		t.Errorf("FindBaseURL over captured stdout = %q, %v", url, ok)
	}
	if !strings.Contains(p.Stderr(), "oops") {
		t.Errorf("stderr not captured: %q", p.Stderr())
	}

	if _, err := StartProc("missing", "/no/such/binary"); err == nil {
		t.Error("StartProc on a missing binary did not error")
	}
}
