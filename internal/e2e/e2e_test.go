package e2e

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func TestWaitFor(t *testing.T) {
	calls := 0
	err := WaitFor(time.Second, time.Millisecond, func() (bool, error) {
		calls++
		return calls >= 3, nil
	})
	if err != nil {
		t.Fatalf("WaitFor: %v", err)
	}
	if calls != 3 {
		t.Fatalf("condition polled %d times, want 3", calls)
	}

	if err := WaitFor(20*time.Millisecond, time.Millisecond, func() (bool, error) {
		return false, nil
	}); err == nil {
		t.Fatal("WaitFor did not time out")
	}

	terminal := errors.New("process exited")
	if err := WaitFor(time.Second, time.Millisecond, func() (bool, error) {
		return false, terminal
	}); !errors.Is(err, terminal) {
		t.Fatalf("WaitFor swallowed the terminal error: %v", err)
	}
}

func TestFindBaseURL(t *testing.T) {
	out := "blserve: dataset ready\nserving on http://127.0.0.1:43521 (pid 9)\n"
	base, ok := FindBaseURL(out)
	if !ok || base != "http://127.0.0.1:43521" {
		t.Fatalf("FindBaseURL = %q, %v", base, ok)
	}
	if _, ok := FindBaseURL("still starting up"); ok {
		t.Fatal("FindBaseURL matched output without a URL")
	}
}

func TestMetricValue(t *testing.T) {
	metrics := "# TYPE wall_dataset_reloads_total counter\n" +
		"wall_dataset_reloads_total 3\n" +
		"wall_dataset_reloads_total_created 1.5\n" +
		`wall_api_requests_total{endpoint="check"} 17` + "\n"
	if v, ok := MetricValue(metrics, "wall_dataset_reloads_total"); !ok || v != 3 {
		t.Fatalf("reloads = %v, %v; want 3", v, ok)
	}
	if v, ok := MetricValue(metrics, `wall_api_requests_total{endpoint="check"}`); !ok || v != 17 {
		t.Fatalf("labeled metric = %v, %v; want 17", v, ok)
	}
	if _, ok := MetricValue(metrics, "wall_absent_total"); ok {
		t.Fatal("MetricValue found an absent metric")
	}
}

func TestPercentileMs(t *testing.T) {
	var sorted []time.Duration
	for i := 1; i <= 100; i++ {
		sorted = append(sorted, time.Duration(i)*time.Millisecond)
	}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}} {
		if got := percentileMs(sorted, tc.p); got != tc.want {
			t.Errorf("p%.0f = %v ms, want %v", tc.p*100, got, tc.want)
		}
	}
	if got := percentileMs(nil, 0.5); got != 0 {
		t.Errorf("empty sample p50 = %v, want 0", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	if got := percentileMs(one, 0.99); got != 7 {
		t.Errorf("single-sample p99 = %v, want 7", got)
	}
	if got := percentileMs(sorted, 0.0001); got != 1 {
		t.Errorf("tiny quantile must clamp to the first sample, got %v", got)
	}
}

func TestMergeNATedShards(t *testing.T) {
	dir := t.TempDir()
	shard := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := shard("a.txt", "# shard a\n1.2.3.4\t5\n9.9.9.9\t2\n")
	b := shard("b.txt", "# shard b\n1.2.3.4\t11\n8.8.4.4\t3\n")

	merged, err := MergeNATedShards([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"1.2.3.4": 11, "9.9.9.9": 2, "8.8.4.4": 3}
	if len(merged) != len(want) {
		t.Fatalf("merged %d addresses, want %d", len(merged), len(want))
	}
	for ip, users := range want {
		if got := merged[iputil.MustParseAddr(ip)]; got != users {
			t.Errorf("%s merged to %d users, want max %d", ip, got, users)
		}
	}
}

func TestParseAddrLines(t *testing.T) {
	body := []byte("# header comment\n\n1.2.3.4\t5\n10.0.0.0/24\n")
	got := parseAddrLines(body)
	want := []string{"1.2.3.4", "10.0.0.0/24"}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
}

func TestAppendBenchRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_e2e.json")
	first := BenchRecord{Scenario: "check-load", When: "2026-08-07T00:00:00Z", Concurrency: 8,
		LoadResult: LoadResult{Requests: 100, RPS: 50, P99Ms: 4}}
	if err := AppendBenchRecord(path, first); err != nil {
		t.Fatal(err)
	}
	second := first
	second.When = "2026-08-07T01:00:00Z"
	if err := AppendBenchRecord(path, second); err != nil {
		t.Fatal(err)
	}

	var recs []BenchRecord
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("bench file holds %d records, want 2", len(recs))
	}
	if !reflect.DeepEqual(recs[0], first) || !reflect.DeepEqual(recs[1], second) {
		t.Fatalf("bench file round-trip mismatch: %+v", recs)
	}

	if err := os.WriteFile(path, []byte("{not an array"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := AppendBenchRecord(path, first); err == nil {
		t.Fatal("AppendBenchRecord overwrote a malformed history")
	}
}
