// Package pfx2as reads and writes prefix-to-AS mappings in the Route
// Views / CAIDA pfx2as text format: one "prefix length asn" triple per
// line, whitespace separated. The analysis pipeline needs such a mapping to
// aggregate blocklisted addresses per origin AS (Fig 3); users running the
// tooling on real data feed it a real pfx2as snapshot, while cmd/blreport
// derives one from the synthetic world.
package pfx2as

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Table maps prefixes to origin AS numbers with longest-prefix-match
// lookups.
type Table struct {
	trie *iputil.Table[int]
	n    int
}

// New returns an empty table.
func New() *Table {
	return &Table{trie: iputil.NewTable[int]()}
}

// Add inserts one mapping.
func (t *Table) Add(p iputil.Prefix, asn int) {
	t.trie.Insert(p, asn)
	t.n++
}

// Lookup returns the origin ASN of the longest matching prefix.
func (t *Table) Lookup(a iputil.Addr) (int, bool) {
	return t.trie.Lookup(a)
}

// Len returns the number of entries added.
func (t *Table) Len() int { return t.n }

// ASNOf adapts the table to the analysis.Inputs contract.
func (t *Table) ASNOf(a iputil.Addr) (int, bool) { return t.Lookup(a) }

// Parse reads pfx2as text. Lines are "<base> <len> <asn>"; '#' comments and
// blank lines are skipped. Multi-origin entries like "174_3356" or "2914,3257"
// keep the first ASN, as common practice does.
func Parse(r io.Reader) (*Table, error) {
	t := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("pfx2as: line %d: want 3 fields, got %d", line, len(fields))
		}
		base, err := iputil.ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("pfx2as: line %d: %w", line, err)
		}
		bits, err := strconv.Atoi(fields[1])
		if err != nil || bits < 0 || bits > 32 {
			return nil, fmt.Errorf("pfx2as: line %d: bad prefix length %q", line, fields[1])
		}
		asnTok := fields[2]
		if i := strings.IndexAny(asnTok, "_,"); i >= 0 {
			asnTok = asnTok[:i]
		}
		asn, err := strconv.Atoi(asnTok)
		if err != nil || asn < 0 {
			return nil, fmt.Errorf("pfx2as: line %d: bad ASN %q", line, fields[2])
		}
		t.Add(iputil.PrefixFrom(base, bits), asn)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Write renders the table in pfx2as text form, ordered by prefix.
func Write(w io.Writer, t *Table) error {
	bw := bufio.NewWriter(w)
	var err error
	t.trie.Walk(func(p iputil.Prefix, asn int) bool {
		_, err = fmt.Fprintf(bw, "%s\t%d\t%d\n", p.Base(), p.Bits(), asn)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
