package pfx2as

import (
	"bytes"
	"strings"
	"testing"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func TestParseAndLookup(t *testing.T) {
	in := `# routeviews-style snapshot
1.0.0.0 24 13335
8.0.0.0	8	3356
8.8.8.0 24 15169
9.0.0.0 8 174_3356
10.0.0.0 8 2914,3257
`
	tbl, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 5 {
		t.Errorf("Len = %d", tbl.Len())
	}
	cases := []struct {
		addr string
		asn  int
		ok   bool
	}{
		{"1.0.0.77", 13335, true},
		{"8.8.8.8", 15169, true}, // longest match beats the /8
		{"8.1.2.3", 3356, true},
		{"9.9.9.9", 174, true},   // multi-origin keeps first
		{"10.1.1.1", 2914, true}, // comma variant
		{"2.2.2.2", 0, false},
	}
	for _, c := range cases {
		asn, ok := tbl.Lookup(iputil.MustParseAddr(c.addr))
		if ok != c.ok || asn != c.asn {
			t.Errorf("Lookup(%s) = %d, %v; want %d, %v", c.addr, asn, ok, c.asn, c.ok)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"1.0.0.0 24\n",
		"nope 24 1\n",
		"1.0.0.0 33 1\n",
		"1.0.0.0 x 1\n",
		"1.0.0.0 24 -5\n",
		"1.0.0.0 24 banana\n",
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	tbl := New()
	tbl.Add(iputil.MustParsePrefix("10.0.0.0/8"), 64500)
	tbl.Add(iputil.MustParsePrefix("192.0.2.0/24"), 64501)
	var buf bytes.Buffer
	if err := Write(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip Len = %d", back.Len())
	}
	if asn, ok := back.Lookup(iputil.MustParseAddr("192.0.2.7")); !ok || asn != 64501 {
		t.Errorf("lookup after round trip = %d, %v", asn, ok)
	}
}

func TestASNOfContract(t *testing.T) {
	tbl := New()
	tbl.Add(iputil.MustParsePrefix("10.0.0.0/8"), 7)
	// ASNOf is usable as analysis.Inputs.ASNOf.
	var fn func(iputil.Addr) (int, bool) = tbl.ASNOf
	if asn, ok := fn(iputil.MustParseAddr("10.1.2.3")); !ok || asn != 7 {
		t.Errorf("ASNOf = %d, %v", asn, ok)
	}
}
