package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		got := Map(workers, 100, func(i int) int { return i * i })
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); out != nil {
		t.Errorf("Map over zero items = %v, want nil", out)
	}
	if out := Map(4, -3, func(i int) int { return i }); out != nil {
		t.Errorf("Map over negative items = %v, want nil", out)
	}
}

func TestMapEveryIndexOnce(t *testing.T) {
	const n = 1000
	var calls [n]atomic.Int32
	Map(8, n, func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("index %d called %d times", i, c)
		}
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	var mu sync.Mutex
	Map(workers, 200, func(i int) struct{} {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		runtime.Gosched()
		cur.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestMapSequentialStaysOnCallerGoroutine(t *testing.T) {
	// workers == 1 must not spawn goroutines: fn can safely use state owned
	// by the calling goroutine (the legacy path's contract).
	order := make([]int, 0, 10)
	Map(1, 10, func(i int) struct{} {
		order = append(order, i)
		return struct{}{}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in worker not propagated")
		}
	}()
	Map(4, 100, func(i int) int {
		if i == 37 {
			panic("boom")
		}
		return i
	})
}

func TestDoRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var a, b, c atomic.Int32
		Do(workers,
			func() { a.Add(1) },
			func() { b.Add(1) },
			func() { c.Add(1) },
		)
		if a.Load() != 1 || b.Load() != 1 || c.Load() != 1 {
			t.Fatalf("workers=%d: tasks ran %d/%d/%d times", workers, a.Load(), b.Load(), c.Load())
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", w, runtime.GOMAXPROCS(0))
	}
	if w := Workers(-5); w != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-5) = %d", w)
	}
	if w := Workers(7); w != 7 {
		t.Errorf("Workers(7) = %d", w)
	}
}

func TestChunks(t *testing.T) {
	cases := []struct{ n, k int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 2}, {100, 7}, {3, 100}, {10, 0},
	}
	for _, c := range cases {
		chunks := Chunks(c.n, c.k)
		covered := 0
		prevHi := 0
		for _, ch := range chunks {
			if ch[0] != prevHi {
				t.Fatalf("Chunks(%d,%d): gap or overlap at %v", c.n, c.k, ch)
			}
			if ch[1] <= ch[0] {
				t.Fatalf("Chunks(%d,%d): empty range %v", c.n, c.k, ch)
			}
			covered += ch[1] - ch[0]
			prevHi = ch[1]
		}
		if covered != max(c.n, 0) {
			t.Fatalf("Chunks(%d,%d) covers %d items", c.n, c.k, covered)
		}
		if c.n > 0 && len(chunks) > c.n {
			t.Fatalf("Chunks(%d,%d): %d chunks exceed item count", c.n, c.k, len(chunks))
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
