// Package parallel provides the deterministic fan-out primitives the study
// pipeline is built on: bounded worker pools whose results are collected in
// index order. Any computation whose per-item work is independent of the
// other items (per-feed generation, per-vantage crawls, per-shard joins)
// produces bit-for-bit identical output no matter how many workers execute
// it — the scheduler decides *when* an item runs, never *what* it computes
// or *where* its result lands.
//
// The contract callers must uphold for determinism:
//
//   - fn(i) depends only on i and on state that no other fn mutates;
//   - merged quantities are combined in index order, or are commutative and
//     associative (sums, maxima, set unions), so shard boundaries cannot
//     show through.
//
// With workers == 1 every helper degrades to a plain sequential loop on the
// calling goroutine — the legacy single-core path, with no goroutines
// spawned at all.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Counters is a snapshot of the package's always-on instrumentation. The
// counters are process-global and monotonic; callers wanting per-run numbers
// diff two snapshots (see Counters.Sub). Batches is invariant across worker
// settings (a fan-out call is one batch no matter how it is scheduled);
// Tasks, Inline, Spawned and MaxBatch depend on the worker count or on
// worker-derived sharding, so observability consumers report them in the
// wall-clock (non-golden) namespace.
type Counters struct {
	Batches  int64 // Map/ForEach/Do invocations
	Tasks    int64 // items executed across all batches
	Inline   int64 // items run inline on the calling goroutine
	Spawned  int64 // worker goroutines spawned
	MaxBatch int64 // largest single fan-out (peak queue occupancy)
}

// Sub returns the per-interval difference c - prev (MaxBatch is the
// interval's running maximum only when it grew; otherwise 0).
func (c Counters) Sub(prev Counters) Counters {
	d := Counters{
		Batches: c.Batches - prev.Batches,
		Tasks:   c.Tasks - prev.Tasks,
		Inline:  c.Inline - prev.Inline,
		Spawned: c.Spawned - prev.Spawned,
	}
	if c.MaxBatch > prev.MaxBatch {
		d.MaxBatch = c.MaxBatch
	}
	return d
}

var counters struct {
	batches, tasks, inline, spawned, maxBatch atomic.Int64
}

// Snapshot returns the current package counters.
func Snapshot() Counters {
	return Counters{
		Batches:  counters.batches.Load(),
		Tasks:    counters.tasks.Load(),
		Inline:   counters.inline.Load(),
		Spawned:  counters.spawned.Load(),
		MaxBatch: counters.maxBatch.Load(),
	}
}

func noteBatch(n, spawned int64) {
	counters.batches.Add(1)
	counters.tasks.Add(n)
	if spawned == 0 {
		counters.inline.Add(n)
	} else {
		counters.spawned.Add(spawned)
	}
	for {
		cur := counters.maxBatch.Load()
		if n <= cur || counters.maxBatch.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Workers resolves a worker-count setting: values <= 0 mean "one worker per
// available CPU" (GOMAXPROCS); positive values are returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map computes fn(0), ..., fn(n-1) on at most workers goroutines and
// returns the results in index order: out[i] == fn(i) regardless of
// schedule. workers <= 0 selects GOMAXPROCS; with one worker (or one item)
// fn runs inline on the calling goroutine. A panic in any fn is re-raised
// on the calling goroutine after the pool drains.
func Map[T any](workers, n int, fn func(int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		noteBatch(int64(n), 0)
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	noteBatch(int64(n), int64(workers))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Value
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicked.CompareAndSwap(nil, r)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
	return out
}

// ForEach runs fn(0), ..., fn(n-1) on at most workers goroutines, for
// callers that collect results through fn's captured state (each index
// writing a distinct slot).
func ForEach(workers, n int, fn func(int)) {
	Map(workers, n, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}

// Do runs heterogeneous tasks on at most workers goroutines — the fan-out
// step of a task DAG whose tasks have no edges between them. With one
// worker the tasks run inline in argument order (the legacy sequential
// stage order).
func Do(workers int, tasks ...func()) {
	ForEach(workers, len(tasks), func(i int) { tasks[i]() })
}

// Chunks splits n items into at most k contiguous [lo, hi) index ranges of
// near-equal size, in order. It never returns an empty range; with n == 0
// it returns nil. Shard-and-merge callers iterate the ranges in order so a
// different k cannot reorder their merge.
func Chunks(n, k int) [][2]int {
	if n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	out := make([][2]int, 0, k)
	base, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		hi := lo + base
		if i < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}
