// Property tests for the scenario catalogue: every named scenario must be
// valid, Lookup must hand out copies (callers cannot corrupt the library),
// and Validate must reject each class of out-of-range mutant it documents.
package faults

import (
	"testing"
	"time"
)

func TestCatalogueAllValid(t *testing.T) {
	for _, name := range Names() {
		scn, err := Lookup(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if scn == nil || scn.Name != name {
			t.Fatalf("%s: Lookup returned %+v", name, scn)
		}
		if err := scn.Validate(); err != nil {
			t.Errorf("catalogue scenario %s fails its own validation: %v", name, err)
		}
		if scn.Description == "" {
			t.Errorf("catalogue scenario %s has no description", name)
		}
	}
}

func TestLookupReturnsCopies(t *testing.T) {
	a, err := Lookup("bursty")
	if err != nil {
		t.Fatal(err)
	}
	a.Name = "mutated"
	a.Gilbert = nil
	b, err := Lookup("bursty")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "bursty" || b.Gilbert == nil {
		t.Fatalf("mutating a Lookup result corrupted the catalogue: %+v", b)
	}
}

func TestLookupNoneAndUnknown(t *testing.T) {
	for _, name := range []string{"", "none"} {
		if scn, err := Lookup(name); scn != nil || err != nil {
			t.Fatalf("Lookup(%q) = %v, %v; want nil, nil", name, scn, err)
		}
	}
	if _, err := Lookup("does-not-exist"); err == nil {
		t.Fatal("unknown scenario name must error")
	}
}

// TestValidateRejectsMutants: each documented range constraint, exercised by
// one minimally-broken scenario. If a constraint is relaxed by accident,
// the corresponding mutant stops failing and this test names it.
func TestValidateRejectsMutants(t *testing.T) {
	mutants := map[string]*Scenario{
		"gilbert prob > 1": {Gilbert: &GilbertElliott{PGoodBad: 1.5}},
		"gilbert prob < 0": {Gilbert: &GilbertElliott{LossBad: -0.1}},
		"blackout empty window": {Blackouts: []Blackout{
			{Start: time.Hour, End: time.Hour, FracOf24s: 0.1}}},
		"blackout negative start": {Blackouts: []Blackout{
			{Start: -time.Minute, End: time.Hour, FracOf24s: 0.1}}},
		"blackout matches nothing": {Blackouts: []Blackout{
			{Start: 0, End: time.Hour}}},
		"ratelimit zero rate":   {RateLimit: &RateLimit{RatePerSec: 0, Burst: 1}},
		"ratelimit zero burst":  {RateLimit: &RateLimit{RatePerSec: 1, Burst: 0}},
		"corruption prob > 1":   {Corruption: &Corruption{Prob: 1.2}},
		"byzantine frac > 1":    {Byzantine: &Byzantine{Frac: 1.5, Nodes: 4}},
		"byzantine nodes > 64":  {Byzantine: &Byzantine{Frac: 0.2, Nodes: 65}},
		"storm zero frac":       {Storms: []RestartStorm{{At: time.Hour, Frac: 0}}},
		"storm negative at":     {Storms: []RestartStorm{{At: -time.Hour, Frac: 0.5}}},
		"icmp loss = 1":         {ICMP: &ICMPFaults{ProbeLoss: 1}},
		"icmp retransmits > 16": {ICMP: &ICMPFaults{ProbeLoss: 0.1, Retransmits: 17}},
	}
	for name, scn := range mutants {
		if err := scn.Validate(); err == nil {
			t.Errorf("mutant %q passed validation", name)
		}
	}
	var nilScn *Scenario
	if err := nilScn.Validate(); err != nil {
		t.Errorf("nil scenario must validate: %v", err)
	}
}
