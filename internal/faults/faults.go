// Package faults is a deterministic, seed-driven fault-injection layer for
// the measurement pipeline. The paper's detectors operate in a hostile
// environment — 48.6% of crawler queries go unanswered (§3.1), shaped by NAT
// filtering, stale DHT entries and ICMP rate limiting — while the base
// simulator models only independent uniform datagram loss. A Scenario
// scripts richer misbehaviour:
//
//   - Gilbert-Elliott bursty loss (two-state Markov link, as measured behind
//     carrier-grade NATs by Richter et al.);
//   - timed link blackouts for chosen prefixes or a hash-selected fraction
//     of /24s (partitions);
//   - per-destination token-bucket rate limiting that drops excess inbound
//     queries (ICMP/NAT rate limits);
//   - reply corruption/truncation (malformed KRPC, truncated compact node
//     lists, bad lengths);
//   - byzantine DHT nodes returning fabricated neighbours in find_node
//     (wired by the swarm builder via dht.Config.Byzantine);
//   - restart storms — mass endpoint churn mid-crawl (wired by the swarm
//     builder);
//   - ICMP probe loss with bounded retransmits (wired into icmpsurvey).
//
// The wire-level mechanisms compose onto netsim.Network through its
// Config.FaultSend/FaultDeliver hooks (see Injector); the node- and
// swarm-level mechanisms are consumed by internal/core when it builds the
// swarm. Everything is driven by a seeded RNG consulted on the
// single-threaded event loop, so a scenario run is bit-for-bit reproducible
// for a given seed and any worker count.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// GilbertElliott is a two-state Markov loss model: a link alternates between
// a good and a bad state with per-datagram transition probabilities, and
// drops datagrams with a state-dependent probability. It produces the bursty
// loss that independent uniform drops cannot.
type GilbertElliott struct {
	// PGoodBad and PBadGood are the per-datagram transition probabilities
	// good->bad and bad->good.
	PGoodBad, PBadGood float64
	// LossGood and LossBad are the drop probabilities in each state.
	LossGood, LossBad float64
}

// Blackout is a timed partition: during [Start, End) (offsets from the
// simulation epoch) every datagram to or from a matching address is dropped.
type Blackout struct {
	Start, End time.Duration
	// Prefixes are explicit address spans taken down by the blackout.
	Prefixes []iputil.Prefix
	// FracOf24s additionally blacks out a deterministic, hash-selected
	// fraction of all /24 networks — scripting a partition without knowing
	// the world's prefixes.
	FracOf24s float64
}

// RateLimit models receiver-side rate limiting (ICMP rate limits, NAT
// connection-table pressure): each destination address owns a token bucket
// refilled in virtual time, and datagrams beyond the budget are dropped.
type RateLimit struct {
	// RatePerSec is the sustained tokens-per-second refill per destination.
	RatePerSec float64
	// Burst is the bucket capacity.
	Burst float64
	// QueriesOnly restricts the limiter to parseable KRPC queries, the
	// shape of an unsolicited probe; responses and garbage pass freely.
	QueriesOnly bool
}

// Corruption mutates delivered datagrams with a given probability: byte
// truncation, bit flips, or compact-node-list damage (truncated lists, bad
// lengths) — the malformed-KRPC shapes consumers must survive.
type Corruption struct {
	// Prob is the per-datagram corruption probability on the deliver side.
	Prob float64
}

// Byzantine marks a fraction of DHT nodes as adversarial: they answer
// find_node with fabricated neighbours instead of routing-table contents,
// poisoning the crawler's discovery frontier with phantom endpoints.
type Byzantine struct {
	// Frac is the fraction of swarm nodes acting byzantine, selected
	// deterministically by hashing the node's user ID with the seed.
	Frac float64
	// Nodes is how many fabricated neighbours each response carries;
	// 0 means 8 (a full BEP 5 bucket).
	Nodes int
}

// RestartStorm is mass endpoint churn: at offset At from the simulation
// epoch, a hash-selected fraction of public users restart their clients
// simultaneously (new port, new node ID) — the §3.1 stale-information
// confound at its worst.
type RestartStorm struct {
	At   time.Duration
	Frac float64
}

// ICMPFaults shapes the Cai et al. ICMP baseline: each ECHO transmission is
// lost with ProbeLoss probability, and the prober retries a silent address
// up to Retransmits extra times per round before scoring it unresponsive.
type ICMPFaults struct {
	ProbeLoss   float64
	Retransmits int
}

// Scenario is a named, scripted set of faults injected into one study run.
// The zero value (and a nil *Scenario) means fault-free.
type Scenario struct {
	Name        string
	Description string

	Gilbert    *GilbertElliott
	Blackouts  []Blackout
	RateLimit  *RateLimit
	Corruption *Corruption
	Byzantine  *Byzantine
	Storms     []RestartStorm
	ICMP       *ICMPFaults
}

func probErr(what string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("faults: %s %v out of range [0, 1]", what, v)
	}
	return nil
}

// Validate checks every parameter the same way netsim validates its Config:
// user-supplied flag values surface as errors, never panics.
func (s *Scenario) Validate() error {
	if s == nil {
		return nil
	}
	if g := s.Gilbert; g != nil {
		for what, v := range map[string]float64{
			"gilbert PGoodBad": g.PGoodBad, "gilbert PBadGood": g.PBadGood,
			"gilbert LossGood": g.LossGood, "gilbert LossBad": g.LossBad,
		} {
			if err := probErr(what, v); err != nil {
				return err
			}
		}
	}
	for i, b := range s.Blackouts {
		if b.Start < 0 || b.End <= b.Start {
			return fmt.Errorf("faults: blackout %d window [%v, %v) is empty or negative", i, b.Start, b.End)
		}
		if err := probErr(fmt.Sprintf("blackout %d FracOf24s", i), b.FracOf24s); err != nil {
			return err
		}
		if len(b.Prefixes) == 0 && b.FracOf24s == 0 {
			return fmt.Errorf("faults: blackout %d matches no addresses", i)
		}
	}
	if r := s.RateLimit; r != nil {
		if r.RatePerSec <= 0 {
			return fmt.Errorf("faults: rate limit %v/s must be positive", r.RatePerSec)
		}
		if r.Burst < 1 {
			return fmt.Errorf("faults: rate-limit burst %v must be >= 1", r.Burst)
		}
	}
	if c := s.Corruption; c != nil {
		if err := probErr("corruption Prob", c.Prob); err != nil {
			return err
		}
	}
	if b := s.Byzantine; b != nil {
		if err := probErr("byzantine Frac", b.Frac); err != nil {
			return err
		}
		if b.Nodes < 0 || b.Nodes > 64 {
			return fmt.Errorf("faults: byzantine Nodes %d out of range [0, 64]", b.Nodes)
		}
	}
	for i, st := range s.Storms {
		if st.At < 0 {
			return fmt.Errorf("faults: storm %d At %v is negative", i, st.At)
		}
		if st.Frac <= 0 || st.Frac > 1 {
			return fmt.Errorf("faults: storm %d Frac %v out of range (0, 1]", i, st.Frac)
		}
	}
	if ic := s.ICMP; ic != nil {
		if ic.ProbeLoss < 0 || ic.ProbeLoss >= 1 {
			return fmt.Errorf("faults: ICMP probe loss %v out of range [0, 1)", ic.ProbeLoss)
		}
		if ic.Retransmits < 0 || ic.Retransmits > 16 {
			return fmt.Errorf("faults: ICMP retransmits %d out of range [0, 16]", ic.Retransmits)
		}
	}
	return nil
}

// catalogue is the named scenario library. Each entry is "moderate": strong
// enough to matter, weak enough that the detectors should still work — the
// resilience suite pins the tolerance bands.
var catalogue = map[string]*Scenario{
	"bursty": {
		Name:        "bursty",
		Description: "Gilbert-Elliott bursty link loss on top of the base fabric",
		Gilbert:     &GilbertElliott{PGoodBad: 0.02, PBadGood: 0.25, LossGood: 0.02, LossBad: 0.85},
	},
	"blackout": {
		Name:        "blackout",
		Description: "30% of /24s unreachable between +30m and +90m (partition)",
		Blackouts:   []Blackout{{Start: 30 * time.Minute, End: 90 * time.Minute, FracOf24s: 0.30}},
	},
	"ratelimit": {
		Name:        "ratelimit",
		Description: "per-destination token bucket dropping excess inbound queries",
		RateLimit:   &RateLimit{RatePerSec: 0.5, Burst: 6, QueriesOnly: true},
	},
	"corrupt": {
		Name:        "corrupt",
		Description: "20% of delivered datagrams corrupted or truncated",
		Corruption:  &Corruption{Prob: 0.20},
	},
	"byzantine": {
		Name:        "byzantine",
		Description: "20% of DHT nodes answer find_node with fabricated neighbours",
		Byzantine:   &Byzantine{Frac: 0.20, Nodes: 8},
	},
	"storm": {
		Name:        "storm",
		Description: "half of all public clients restart simultaneously at +6h",
		Storms:      []RestartStorm{{At: 6 * time.Hour, Frac: 0.5}},
	},
	"hostile": {
		Name:        "hostile",
		Description: "everything at once, milder: bursty loss, a short partition, rate limits, corruption, byzantine nodes, a storm, ICMP probe loss",
		Gilbert:     &GilbertElliott{PGoodBad: 0.01, PBadGood: 0.4, LossGood: 0.01, LossBad: 0.6},
		Blackouts:   []Blackout{{Start: 45 * time.Minute, End: 75 * time.Minute, FracOf24s: 0.15}},
		RateLimit:   &RateLimit{RatePerSec: 1, Burst: 10, QueriesOnly: true},
		Corruption:  &Corruption{Prob: 0.05},
		Byzantine:   &Byzantine{Frac: 0.10, Nodes: 8},
		Storms:      []RestartStorm{{At: 12 * time.Hour, Frac: 0.25}},
		ICMP:        &ICMPFaults{ProbeLoss: 0.15, Retransmits: 2},
	},
}

// Names returns the catalogue's scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(catalogue))
	for name := range catalogue {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup resolves a scenario name; "" and "none" mean fault-free (nil). The
// returned scenario is a shallow copy so callers may adjust it.
func Lookup(name string) (*Scenario, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	scn, ok := catalogue[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown scenario %q (have: %s, none)", name, strings.Join(Names(), ", "))
	}
	cp := *scn
	return &cp, nil
}
