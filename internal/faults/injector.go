package faults

import (
	"encoding/binary"
	"hash/fnv"
	"math/rand"
	"time"

	"github.com/reuseblock/reuseblock/internal/bencode"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

// Stats counts what the injector did to the wire, split per mechanism so a
// degraded run can explain itself. All counters advance on the simulator's
// event-loop goroutine in event order, so they are deterministic.
type Stats struct {
	BurstDropped    int64 // Gilbert-Elliott drops (send side)
	BlackoutDropped int64 // partition drops (send side)
	RateLimited     int64 // token-bucket drops (deliver side)
	Corrupted       int64 // datagrams mutated in flight (deliver side)
}

// Total is the number of datagrams the injector dropped outright.
func (s Stats) Total() int64 { return s.BurstDropped + s.BlackoutDropped + s.RateLimited }

type bucket struct {
	tokens float64
	last   time.Duration
}

// Injector applies a Scenario's wire-level mechanisms to one netsim.Network
// via its FaultSend/FaultDeliver hooks. Send-side it scripts link faults
// (bursty loss, blackouts); deliver-side, receiver faults (rate limiting,
// corruption). One Injector serves exactly one Network: its RNG and
// Gilbert-Elliott state advance with that network's event order.
type Injector struct {
	scn   *Scenario
	clock *netsim.Clock
	seed  int64
	rng   *rand.Rand

	geBad   bool // Gilbert-Elliott link state
	buckets map[iputil.Addr]*bucket
	stats   Stats
}

// NewInjector validates the scenario and builds an injector bound to the
// given clock. A nil scenario — or one with no wire-level mechanisms —
// yields a nil injector and no error: Install on nil is a no-op.
func NewInjector(scn *Scenario, seed int64, clock *netsim.Clock) (*Injector, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	if scn == nil {
		return nil, nil
	}
	if scn.Gilbert == nil && len(scn.Blackouts) == 0 && scn.RateLimit == nil && scn.Corruption == nil {
		return nil, nil
	}
	return &Injector{
		scn:     scn,
		clock:   clock,
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed ^ 0x464c54)), // "FLT"
		buckets: make(map[iputil.Addr]*bucket),
	}, nil
}

// Install wires the injector into a network config. Call before NewNetwork.
func (inj *Injector) Install(cfg *netsim.Config) {
	if inj == nil {
		return
	}
	if inj.scn.Gilbert != nil || len(inj.scn.Blackouts) > 0 {
		cfg.FaultSend = inj.faultSend
	}
	if inj.scn.RateLimit != nil || inj.scn.Corruption != nil {
		cfg.FaultDeliver = inj.faultDeliver
	}
}

// Stats returns a snapshot of the per-mechanism counters.
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{}
	}
	return inj.stats
}

// faultSend models link-level faults: the datagram dies before it reaches
// the fabric. Blackouts are checked first (a partition needs no RNG), then
// the Gilbert-Elliott state machine advances once per datagram.
func (inj *Injector) faultSend(from, to netsim.Endpoint, payload []byte) []byte {
	now := inj.clock.Now().Sub(netsim.Epoch)
	for _, b := range inj.scn.Blackouts {
		if now < b.Start || now >= b.End {
			continue
		}
		if inj.blackedOut(b, from.Addr) || inj.blackedOut(b, to.Addr) {
			inj.stats.BlackoutDropped++
			return nil
		}
	}
	if g := inj.scn.Gilbert; g != nil {
		loss := g.LossGood
		if inj.geBad {
			loss = g.LossBad
		}
		drop := inj.rng.Float64() < loss
		// Advance the link state after the loss roll: one transition
		// per datagram, so burst lengths follow the Markov chain.
		if inj.geBad {
			if inj.rng.Float64() < g.PBadGood {
				inj.geBad = false
			}
		} else if inj.rng.Float64() < g.PGoodBad {
			inj.geBad = true
		}
		if drop {
			inj.stats.BurstDropped++
			return nil
		}
	}
	return payload
}

func (inj *Injector) blackedOut(b Blackout, addr iputil.Addr) bool {
	for _, p := range b.Prefixes {
		if p.Contains(addr) {
			return true
		}
	}
	if b.FracOf24s > 0 && Selected(inj.seed, uint64(addr)>>8, b.FracOf24s) {
		return true
	}
	return false
}

// faultDeliver models receiver-side faults just before the datagram is
// handed to routing: rate limiting first (the datagram never reaches the
// host), then in-flight corruption of whatever survives.
func (inj *Injector) faultDeliver(from, to netsim.Endpoint, payload []byte) []byte {
	if rl := inj.scn.RateLimit; rl != nil && inj.limited(rl, to.Addr, payload) {
		inj.stats.RateLimited++
		return nil
	}
	if c := inj.scn.Corruption; c != nil && inj.rng.Float64() < c.Prob {
		inj.stats.Corrupted++
		return inj.corrupt(payload)
	}
	return payload
}

// limited charges one token at to's bucket, refilled in virtual time.
func (inj *Injector) limited(rl *RateLimit, to iputil.Addr, payload []byte) bool {
	if rl.QueriesOnly {
		m, err := krpc.Unmarshal(payload)
		if err != nil || m.Kind != krpc.KindQuery {
			return false
		}
	}
	now := inj.clock.Now().Sub(netsim.Epoch)
	bk := inj.buckets[to]
	if bk == nil {
		bk = &bucket{tokens: rl.Burst, last: now}
		inj.buckets[to] = bk
	}
	bk.tokens += (now - bk.last).Seconds() * rl.RatePerSec
	bk.last = now
	if bk.tokens > rl.Burst {
		bk.tokens = rl.Burst
	}
	if bk.tokens < 1 {
		return true
	}
	bk.tokens--
	return false
}

// corrupt returns a damaged copy of the payload. Three shapes, chosen by the
// injector RNG: plain truncation (string extends past input), a single bit
// flip, and — for find_node/get_peers responses — a compact node list whose
// length is no longer a multiple of 26, the exact malformation
// krpc.UnmarshalCompactNodes rejects.
func (inj *Injector) corrupt(payload []byte) []byte {
	p := append([]byte(nil), payload...)
	if len(p) == 0 {
		return p
	}
	switch inj.rng.Intn(3) {
	case 0: // truncate
		return p[:inj.rng.Intn(len(p))]
	case 1: // bit flip
		p[inj.rng.Intn(len(p))] ^= 1 << inj.rng.Intn(8)
		return p
	default: // bad compact-node length, else fall back to truncation
		if out, ok := inj.damageNodes(p); ok {
			return out
		}
		return p[:inj.rng.Intn(len(p))]
	}
}

// damageNodes shortens a response's "nodes" value by 1..25 bytes so the
// list length stops being a multiple of the 26-byte compact node size,
// while the datagram remains valid bencoding.
func (inj *Injector) damageNodes(p []byte) ([]byte, bool) {
	raw, err := bencode.Decode(p)
	if err != nil {
		return nil, false
	}
	dict, ok := raw.(map[string]bencode.Value)
	if !ok {
		return nil, false
	}
	r, ok := dict["r"].(map[string]bencode.Value)
	if !ok {
		return nil, false
	}
	nodes, ok := r["nodes"].(string)
	if !ok || len(nodes) < krpc.CompactNodeLen {
		return nil, false
	}
	cut := 1 + inj.rng.Intn(krpc.CompactNodeLen-1)
	r["nodes"] = nodes[:len(nodes)-cut]
	out, err := bencode.Encode(dict)
	if err != nil {
		return nil, false
	}
	return out, true
}

// Selected deterministically picks whether the entity identified by key is
// in the chosen fraction: it hashes (seed, key) and compares the normalised
// hash to frac. The same (seed, key) always answers the same way, on any
// worker, in any order — the scheme behind blackout /24 selection, byzantine
// node marking and restart-storm membership.
func Selected(seed int64, key uint64, frac float64) bool {
	if frac <= 0 {
		return false
	}
	if frac >= 1 {
		return true
	}
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(seed))
	binary.BigEndian.PutUint64(buf[8:], key)
	h := fnv.New64a()
	h.Write(buf[:])
	// FNV-1a's high bits are weakly mixed for inputs differing only in
	// the trailing bytes; a murmur3-style finalizer spreads them.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return float64(x>>11)/(1<<53) < frac
}
