package faults

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/krpc"
	"github.com/reuseblock/reuseblock/internal/netsim"
)

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		scn  Scenario
	}{
		{"gilbert prob", Scenario{Gilbert: &GilbertElliott{PGoodBad: 1.5}}},
		{"gilbert negative", Scenario{Gilbert: &GilbertElliott{LossBad: -0.1}}},
		{"blackout empty window", Scenario{Blackouts: []Blackout{{Start: time.Hour, End: time.Hour, FracOf24s: 0.5}}}},
		{"blackout negative", Scenario{Blackouts: []Blackout{{Start: -time.Hour, End: time.Hour, FracOf24s: 0.5}}}},
		{"blackout no match", Scenario{Blackouts: []Blackout{{Start: 0, End: time.Hour}}}},
		{"ratelimit zero rate", Scenario{RateLimit: &RateLimit{RatePerSec: 0, Burst: 5}}},
		{"ratelimit tiny burst", Scenario{RateLimit: &RateLimit{RatePerSec: 1, Burst: 0.5}}},
		{"corruption prob", Scenario{Corruption: &Corruption{Prob: 2}}},
		{"byzantine frac", Scenario{Byzantine: &Byzantine{Frac: -0.2}}},
		{"byzantine nodes", Scenario{Byzantine: &Byzantine{Frac: 0.1, Nodes: 1000}}},
		{"storm frac zero", Scenario{Storms: []RestartStorm{{At: time.Hour, Frac: 0}}}},
		{"storm negative at", Scenario{Storms: []RestartStorm{{At: -time.Second, Frac: 0.5}}}},
		{"icmp loss one", Scenario{ICMP: &ICMPFaults{ProbeLoss: 1}}},
		{"icmp retransmits", Scenario{ICMP: &ICMPFaults{Retransmits: 99}}},
	}
	for _, tc := range cases {
		if err := tc.scn.Validate(); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	var nilScn *Scenario
	if err := nilScn.Validate(); err != nil {
		t.Errorf("nil scenario: %v", err)
	}
	if _, err := NewInjector(&Scenario{Gilbert: &GilbertElliott{PGoodBad: 7}}, 1, netsim.NewClock()); err == nil {
		t.Error("NewInjector accepted an invalid scenario")
	}
}

func TestCatalogueValidAndLookup(t *testing.T) {
	for _, name := range Names() {
		scn, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if err := scn.Validate(); err != nil {
			t.Errorf("catalogue scenario %q invalid: %v", name, err)
		}
		if scn.Name != name || scn.Description == "" {
			t.Errorf("scenario %q: bad metadata", name)
		}
	}
	for _, name := range []string{"", "none"} {
		if scn, err := Lookup(name); scn != nil || err != nil {
			t.Errorf("Lookup(%q) = %v, %v; want nil, nil", name, scn, err)
		}
	}
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "bursty") {
		t.Errorf("Lookup(nope) error should list scenarios, got %v", err)
	}
}

func TestNilAndEmptyInjector(t *testing.T) {
	clock := netsim.NewClock()
	for _, scn := range []*Scenario{nil, {Name: "wireless-free", Byzantine: &Byzantine{Frac: 0.5}}} {
		inj, err := NewInjector(scn, 1, clock)
		if err != nil {
			t.Fatal(err)
		}
		if inj != nil {
			t.Fatalf("scenario %v: want nil injector", scn)
		}
		var cfg netsim.Config
		inj.Install(&cfg) // must not panic
		if cfg.FaultSend != nil || cfg.FaultDeliver != nil {
			t.Fatal("nil injector installed hooks")
		}
		if inj.Stats() != (Stats{}) {
			t.Fatal("nil injector has stats")
		}
	}
}

func ep(a, b, c, d byte, port uint16) netsim.Endpoint {
	return netsim.Endpoint{Addr: iputil.AddrFrom4(a, b, c, d), Port: port}
}

// runSend pushes n datagrams through the send hook and reports survivors.
func runSend(inj *Injector, n int) int {
	alive := 0
	for i := 0; i < n; i++ {
		if inj.faultSend(ep(10, 0, 0, 1, 1), ep(10, 0, 0, 2, 1), []byte("x")) != nil {
			alive++
		}
	}
	return alive
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// A mostly-good link with brutal bad states must (a) lose far fewer
	// datagrams than the bad-state rate overall, and (b) lose them in
	// runs, which independent loss at the same average would not produce.
	scn := &Scenario{Gilbert: &GilbertElliott{PGoodBad: 0.02, PBadGood: 0.25, LossGood: 0, LossBad: 1}}
	inj, err := NewInjector(scn, 42, netsim.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	const n = 20000
	drops := make([]bool, n)
	for i := range drops {
		drops[i] = inj.faultSend(ep(10, 0, 0, 1, 1), ep(10, 0, 0, 2, 1), []byte("x")) == nil
	}
	total, runs, maxRun, cur := 0, 0, 0, 0
	for _, d := range drops {
		if d {
			total++
			cur++
			if cur > maxRun {
				maxRun = cur
			}
		} else {
			if cur > 0 {
				runs++
			}
			cur = 0
		}
	}
	if cur > 0 {
		runs++
	}
	// Stationary bad-state share is PGoodBad/(PGoodBad+PBadGood) ~ 7.4%.
	if total < n/50 || total > n/5 {
		t.Fatalf("total drops %d implausible for moderate bursty loss over %d", total, n)
	}
	meanRun := float64(total) / float64(runs)
	if meanRun < 2 {
		t.Fatalf("mean drop-run length %.2f; bursty loss should clump (runs=%d)", meanRun, runs)
	}
	if maxRun < 5 {
		t.Fatalf("max drop run %d; expected long bad-state bursts", maxRun)
	}
	if got := inj.Stats().BurstDropped; got != int64(total) {
		t.Fatalf("BurstDropped = %d, want %d", got, total)
	}
}

func TestBlackoutWindowAndSelection(t *testing.T) {
	clock := netsim.NewClock()
	scn := &Scenario{Blackouts: []Blackout{{
		Start:    10 * time.Minute,
		End:      20 * time.Minute,
		Prefixes: []iputil.Prefix{iputil.MustParsePrefix("203.0.113.0/24")},
	}}}
	inj, err := NewInjector(scn, 7, clock)
	if err != nil {
		t.Fatal(err)
	}
	inside := ep(203, 0, 113, 9, 1)
	outside := ep(198, 51, 100, 9, 1)
	pass := func(from, to netsim.Endpoint) bool {
		return inj.faultSend(from, to, []byte("x")) != nil
	}
	if !pass(inside, outside) {
		t.Fatal("blackout active before its window")
	}
	clock.RunFor(15 * time.Minute)
	if pass(inside, outside) || pass(outside, inside) {
		t.Fatal("blackout should drop traffic to and from the prefix inside the window")
	}
	if !pass(outside, outside) {
		t.Fatal("blackout dropped unrelated traffic")
	}
	clock.RunFor(10 * time.Minute)
	if !pass(inside, outside) {
		t.Fatal("blackout active after its window")
	}
	if got := inj.Stats().BlackoutDropped; got != 2 {
		t.Fatalf("BlackoutDropped = %d, want 2", got)
	}

	// Hash selection: the chosen share of /24s approximates the fraction
	// and is identical across injectors with the same seed.
	picked := 0
	for i := 0; i < 4096; i++ {
		if Selected(7, uint64(i), 0.3) {
			picked++
		}
	}
	if picked < 4096*25/100 || picked > 4096*35/100 {
		t.Fatalf("Selected picked %d/4096, want ~30%%", picked)
	}
	if Selected(7, 99, 0.3) != Selected(7, 99, 0.3) {
		t.Fatal("Selected not deterministic")
	}
	if Selected(1, 99, 0) || !Selected(1, 99, 1) {
		t.Fatal("Selected edge fractions wrong")
	}
}

func TestRateLimitTokenBucket(t *testing.T) {
	clock := netsim.NewClock()
	scn := &Scenario{RateLimit: &RateLimit{RatePerSec: 1, Burst: 3}}
	inj, err := NewInjector(scn, 1, clock)
	if err != nil {
		t.Fatal(err)
	}
	src, dst, other := ep(10, 0, 0, 1, 1), ep(10, 0, 0, 2, 1), ep(10, 0, 0, 3, 1)
	deliver := func(to netsim.Endpoint) bool {
		return inj.faultDeliver(src, to, []byte("x")) != nil
	}
	// Burst of 3 passes, the 4th is dropped; an unrelated destination
	// still has its own full bucket.
	for i := 0; i < 3; i++ {
		if !deliver(dst) {
			t.Fatalf("datagram %d within burst dropped", i)
		}
	}
	if deliver(dst) {
		t.Fatal("datagram beyond burst passed")
	}
	if !deliver(other) {
		t.Fatal("rate limit leaked across destinations")
	}
	// Virtual time refills the bucket.
	clock.RunFor(2 * time.Second)
	if !deliver(dst) || !deliver(dst) {
		t.Fatal("bucket did not refill with virtual time")
	}
	if deliver(dst) {
		t.Fatal("bucket over-refilled")
	}
	if got := inj.Stats().RateLimited; got != 2 {
		t.Fatalf("RateLimited = %d, want 2", got)
	}
}

func TestRateLimitQueriesOnly(t *testing.T) {
	clock := netsim.NewClock()
	scn := &Scenario{RateLimit: &RateLimit{RatePerSec: 0.001, Burst: 1, QueriesOnly: true}}
	inj, err := NewInjector(scn, 1, clock)
	if err != nil {
		t.Fatal(err)
	}
	var id krpc.NodeID
	query, err := krpc.NewPing("aa", id).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := krpc.NewPingResponse("aa", id, "RB01").Marshal()
	if err != nil {
		t.Fatal(err)
	}
	src, dst := ep(10, 0, 0, 1, 1), ep(10, 0, 0, 2, 1)
	if inj.faultDeliver(src, dst, query) == nil {
		t.Fatal("first query dropped")
	}
	if inj.faultDeliver(src, dst, query) != nil {
		t.Fatal("second query passed an exhausted bucket")
	}
	// Responses and garbage are never charged or dropped.
	for i := 0; i < 5; i++ {
		if inj.faultDeliver(src, dst, resp) == nil {
			t.Fatal("response dropped by a QueriesOnly limiter")
		}
		if inj.faultDeliver(src, dst, []byte("not krpc")) == nil {
			t.Fatal("garbage dropped by a QueriesOnly limiter")
		}
	}
}

func TestCorruptionShapes(t *testing.T) {
	clock := netsim.NewClock()
	scn := &Scenario{Corruption: &Corruption{Prob: 1}}
	inj, err := NewInjector(scn, 3, clock)
	if err != nil {
		t.Fatal(err)
	}
	var self, target krpc.NodeID
	nodes := []krpc.NodeInfo{
		{Addr: iputil.AddrFrom4(1, 2, 3, 4), Port: 6881},
		{Addr: iputil.AddrFrom4(5, 6, 7, 8), Port: 6882},
	}
	orig, err := krpc.NewFindNodeResponse("tx", self, nodes, "RB01").Marshal()
	if err != nil {
		t.Fatal(err)
	}
	_ = target
	badLen, mutated := 0, 0
	for i := 0; i < 300; i++ {
		out := inj.faultDeliver(ep(1, 1, 1, 1, 1), ep(2, 2, 2, 2, 2), orig)
		if out == nil {
			t.Fatal("corruption must mutate, not drop")
		}
		if bytes.Equal(out, orig) {
			continue
		}
		mutated++
		if m, err := krpc.Unmarshal(out); err == nil && m.Kind == krpc.KindResponse {
			// Valid bencoding that survived — it must be the
			// damaged-nodes shape unless a bit flip landed in a
			// don't-care byte.
			continue
		}
		if _, err := krpc.UnmarshalCompactNodes([]byte("short")); err == nil {
			t.Fatal("sanity: UnmarshalCompactNodes should reject bad lengths")
		}
		badLen++
	}
	if mutated < 290 {
		t.Fatalf("only %d/300 datagrams mutated at Prob=1", mutated)
	}
	if badLen == 0 {
		t.Fatal("no corruption produced a krpc-rejected datagram")
	}
	if got := inj.Stats().Corrupted; got != 300 {
		t.Fatalf("Corrupted = %d, want 300", got)
	}
	// The damaged-nodes shape specifically: force it by running many
	// trials and checking that some outputs are valid bencoding whose
	// nodes list length is not a multiple of the compact node size.
	sawBadNodeLen := false
	for i := 0; i < 300 && !sawBadNodeLen; i++ {
		out := inj.corrupt(orig)
		if _, err := krpc.Unmarshal(out); err != nil && errors.Is(err, krpc.ErrMalformed) {
			sawBadNodeLen = sawBadNodeLen || bytes.Contains(out, []byte("5:nodes"))
		}
	}
	if !sawBadNodeLen {
		t.Fatal("never saw a truncated compact node list")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	run := func(seed int64) (Stats, string) {
		clock := netsim.NewClock()
		scn, err := Lookup("hostile")
		if err != nil {
			t.Fatal(err)
		}
		inj, err := NewInjector(scn, seed, clock)
		if err != nil {
			t.Fatal(err)
		}
		var id krpc.NodeID
		query, _ := krpc.NewPing("aa", id).Marshal()
		var trace []byte
		for i := 0; i < 2000; i++ {
			clock.RunFor(150 * time.Millisecond)
			from := ep(10, 0, byte(i/256), byte(i%256), 1)
			to := ep(172, 16, byte(i%7), byte(i%251), 1)
			if out := inj.faultSend(from, to, query); out == nil {
				trace = append(trace, 'S')
				continue
			}
			out := inj.faultDeliver(from, to, query)
			switch {
			case out == nil:
				trace = append(trace, 'D')
			case bytes.Equal(out, query):
				trace = append(trace, '.')
			default:
				trace = append(trace, 'C')
			}
		}
		return inj.Stats(), string(trace)
	}
	s1, t1 := run(99)
	s2, t2 := run(99)
	if s1 != s2 || t1 != t2 {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	s3, t3 := run(100)
	if t1 == t3 {
		t.Fatal("different seeds produced identical fault traces")
	}
	_ = s3
	if s1.Total() == 0 || s1.Corrupted == 0 {
		t.Fatalf("hostile scenario injected nothing: %+v", s1)
	}
}

// TestInjectorOnNetwork runs the injector against a real simulated network
// and checks the conservation property extends to fault drops.
func TestInjectorOnNetwork(t *testing.T) {
	clock := netsim.NewClock()
	scn := &Scenario{
		Gilbert:   &GilbertElliott{PGoodBad: 0.1, PBadGood: 0.3, LossGood: 0.05, LossBad: 0.9},
		RateLimit: &RateLimit{RatePerSec: 2, Burst: 4},
	}
	inj, err := NewInjector(scn, 5, clock)
	if err != nil {
		t.Fatal(err)
	}
	cfg := netsim.Config{Seed: 5}
	inj.Install(&cfg)
	net, err := netsim.NewNetwork(clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Listen(ep(10, 0, 0, 1, 1000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Listen(ep(10, 0, 0, 2, 1000))
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	b.SetHandler(func(from netsim.Endpoint, payload []byte) { got++ })
	dst := ep(10, 0, 0, 2, 1000)
	for i := 0; i < 500; i++ {
		a.Send(dst, []byte("probe"))
		clock.RunFor(50 * time.Millisecond)
	}
	clock.Drain(1 << 20)
	st := net.Stats()
	if st.Sent != st.Delivered+st.Dropped+st.NoRoute+st.FaultDropped {
		t.Fatalf("conservation violated: %+v", st)
	}
	is := inj.Stats()
	if st.FaultDropped != is.Total() {
		t.Fatalf("network counted %d fault drops, injector %d", st.FaultDropped, is.Total())
	}
	if is.BurstDropped == 0 || is.RateLimited == 0 {
		t.Fatalf("expected both mechanisms to fire: %+v", is)
	}
	if int64(got) != st.Delivered {
		t.Fatalf("receiver saw %d, network delivered %d", got, st.Delivered)
	}
}
