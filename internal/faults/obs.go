package faults

import "github.com/reuseblock/reuseblock/internal/obs"

// Record adds this injector snapshot to the registry, labelled per scenario
// and per mechanism so a run's /metrics answers "what did the fault injector
// actually drop, and why". Counters advance in simulator event order, so
// sums across vantage injectors are deterministic for any worker count.
// Nil-safe: a nil registry records nothing.
func (s Stats) Record(reg *obs.Registry, scenario string) {
	if reg == nil {
		return
	}
	if scenario == "" {
		scenario = "custom"
	}
	for _, mc := range []struct {
		mechanism string
		n         int64
	}{
		{"burst", s.BurstDropped},
		{"blackout", s.BlackoutDropped},
		{"ratelimit", s.RateLimited},
		{"corrupt", s.Corrupted},
	} {
		reg.Counter(obs.Name("faults_injected_total",
			"scenario", scenario, "mechanism", mc.mechanism)).Add(mc.n)
	}
}
