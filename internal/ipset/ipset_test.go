package ipset_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/reuseblock/reuseblock/internal/ipset"
	"github.com/reuseblock/reuseblock/internal/testkit"
)

// op is one step of the model-checked state machine. Kinds: 0 add, 1 remove,
// 2 addRange, 3 union-in a snapshot of earlier state (see applyOps).
type op struct {
	kind uint8
	v    uint32
	hi   uint32 // addRange upper bound
}

func (o op) String() string {
	switch o.kind {
	case 0:
		return fmt.Sprintf("Add(%#x)", o.v)
	case 1:
		return fmt.Sprintf("Remove(%#x)", o.v)
	case 2:
		return fmt.Sprintf("AddRange(%#x,%#x)", o.v, o.hi)
	default:
		return "UnionSnapshot"
	}
}

// genOps draws an op sequence biased toward collisions: values cluster into
// a handful of /16 blocks so containers actually cross the array/run/bitmap
// conversion thresholds instead of staying one-element arrays.
func genOps(rng *rand.Rand, n int) []op {
	blocks := []uint32{0x0000, 0x0001, 0xc0a8, 0xffff, uint32(rng.Intn(1 << 16))}
	ops := make([]op, n)
	for i := range ops {
		blk := blocks[rng.Intn(len(blocks))] << 16
		v := blk | uint32(rng.Intn(1<<16))
		switch k := rng.Intn(10); {
		case k < 5:
			ops[i] = op{kind: 0, v: v}
		case k < 7:
			ops[i] = op{kind: 1, v: v}
		case k < 9:
			span := uint32(rng.Intn(9000))
			hi := v + span
			if hi < v || hi>>16 != v>>16 && rng.Intn(2) == 0 {
				hi = blk | 0xffff // clamp some ranges inside the block
			}
			ops[i] = op{kind: 2, v: v, hi: hi}
		default:
			ops[i] = op{kind: 3}
		}
	}
	return ops
}

// applyOps runs the sequence against both the Set under test and the
// map[uint32]bool reference model, checking agreement after every step. A
// UnionSnapshot op unions in a clone of the set as it stood a few ops ago,
// exercising UnionWith against self-similar (worst-case overlap) input.
func applyOps(ops []op) error {
	s := ipset.New()
	ref := map[uint32]bool{}
	var snap *ipset.Set
	snapRef := map[uint32]bool{}
	for i, o := range ops {
		switch o.kind {
		case 0:
			added := s.Add(o.v)
			if added == ref[o.v] {
				return fmt.Errorf("op %d %v: added=%v but ref present=%v", i, o, added, ref[o.v])
			}
			ref[o.v] = true
		case 1:
			removed := s.Remove(o.v)
			if removed != ref[o.v] {
				return fmt.Errorf("op %d %v: removed=%v but ref present=%v", i, o, removed, ref[o.v])
			}
			delete(ref, o.v)
		case 2:
			s.AddRange(o.v, o.hi)
			for v := o.v; ; v++ {
				ref[v] = true
				if v == o.hi {
					break
				}
			}
		case 3:
			if snap != nil {
				s.UnionWith(snap)
				for v := range snapRef {
					ref[v] = true
				}
			}
			snap = s.Clone()
			snapRef = map[uint32]bool{}
			for v := range ref {
				snapRef[v] = true
			}
		}
		if s.Len() != len(ref) {
			return fmt.Errorf("op %d %v: Len=%d want %d", i, o, s.Len(), len(ref))
		}
	}
	// Full-state agreement: membership both ways, ascending iteration,
	// rank/select round-trip.
	want := make([]uint32, 0, len(ref))
	for v := range ref {
		want = append(want, v)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := make([]uint32, 0, s.Len())
	s.Iterate(func(v uint32) bool { got = append(got, v); return true })
	if len(got) != len(want) {
		return fmt.Errorf("iterate yielded %d values, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("iterate[%d]=%#x want %#x", i, got[i], want[i])
		}
	}
	// Rank/Select are O(containers) each; verify on a stride-sample plus
	// both ends rather than every member.
	stride := len(want)/64 + 1
	for i := 0; i < len(want); i += stride {
		v := want[i]
		if !s.Contains(v) {
			return fmt.Errorf("Contains(%#x)=false, in ref", v)
		}
		if r := s.Rank(v); r != i {
			return fmt.Errorf("Rank(%#x)=%d want %d", v, r, i)
		}
		sv, ok := s.Select(i)
		if !ok || sv != v {
			return fmt.Errorf("Select(%d)=%#x,%v want %#x", i, sv, ok, v)
		}
	}
	if n := len(want); n > 0 {
		if sv, ok := s.Select(n - 1); !ok || sv != want[n-1] {
			return fmt.Errorf("Select(last)=%#x,%v want %#x", sv, ok, want[n-1])
		}
	}
	// IterateFrom must resume exactly at Rank(lo) for arbitrary lo,
	// including mid-run and mid-bitmap-word starts.
	for i := 0; i < len(want); i += stride {
		lo := want[i]
		if lo > 0 {
			lo-- // usually a non-member, exercising the seek path
		}
		j := s.Rank(lo)
		var mismatch error
		s.IterateFrom(lo, func(v uint32) bool {
			if j >= len(want) || want[j] != v {
				mismatch = fmt.Errorf("IterateFrom(%#x): got %#x at pos %d", lo, v, j)
				return false
			}
			j++
			return j < len(want)
		})
		if mismatch != nil {
			return mismatch
		}
	}
	if _, ok := s.Select(len(want)); ok {
		return fmt.Errorf("Select(Len) should be out of range")
	}
	if _, ok := s.Select(-1); ok {
		return fmt.Errorf("Select(-1) should be out of range")
	}
	// Compact must preserve content exactly.
	s.Compact()
	after := make([]uint32, 0, s.Len())
	s.Iterate(func(v uint32) bool { after = append(after, v); return true })
	if len(after) != len(want) {
		return fmt.Errorf("after Compact: %d values, want %d", len(after), len(want))
	}
	for i := range after {
		if after[i] != want[i] {
			return fmt.Errorf("after Compact: iterate[%d]=%#x want %#x", i, after[i], want[i])
		}
	}
	return nil
}

// TestSetModelEquivalence drives random op sequences against the reference
// model; a failing seed is shrunk to a minimal op sequence before reporting.
func TestSetModelEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			n := 400
			if testing.Short() {
				n = 150
			}
			ops := genOps(rand.New(rand.NewSource(seed)), n)
			err := applyOps(ops)
			if err == nil {
				return
			}
			min := testkit.ShrinkOps(ops, func(cand []op) bool {
				return applyOps(cand) != nil
			}, 400)
			t.Fatalf("model divergence: %v\nminimal sequence (%d ops): %v\nerror there: %v",
				err, len(min), min, applyOps(min))
		})
	}
}

// TestSetBoundaries pins the exact edge cases the interval representation
// gets wrong first: the address-space extremes, adjacent-interval
// coalescing, and ranges that straddle /16 block boundaries.
func TestSetBoundaries(t *testing.T) {
	t.Run("extremes", func(t *testing.T) {
		s := ipset.New()
		if !s.Add(0) || !s.Add(0xffffffff) {
			t.Fatal("adding extremes failed")
		}
		if !s.Contains(0) || !s.Contains(0xffffffff) {
			t.Fatal("extremes not contained")
		}
		if s.Rank(0) != 0 || s.Rank(0xffffffff) != 1 {
			t.Fatalf("Rank extremes: got %d,%d", s.Rank(0), s.Rank(0xffffffff))
		}
		if v, ok := s.Select(1); !ok || v != 0xffffffff {
			t.Fatalf("Select(1)=%#x,%v", v, ok)
		}
		// Ranges touching both ends of a block must not wrap the uint16
		// suffix arithmetic.
		s.AddRange(0xfffffff0, 0xffffffff)
		if s.Len() != 17 {
			t.Fatalf("Len=%d want 17", s.Len())
		}
		s.AddRange(0, 10)
		if s.Len() != 27 || !s.Contains(5) {
			t.Fatalf("Len=%d Contains(5)=%v", s.Len(), s.Contains(5))
		}
		if !s.Remove(0) || s.Contains(0) || !s.Remove(0xffffffff) || s.Contains(0xffffffff) {
			t.Fatal("removing extremes failed")
		}
	})

	t.Run("adjacent-interval-coalescing", func(t *testing.T) {
		s := ipset.New()
		s.AddRange(100, 200)
		s.AddRange(202, 300)
		if s.Len() != 200 {
			t.Fatalf("Len=%d want 200", s.Len())
		}
		if s.Contains(201) {
			t.Fatal("gap member present")
		}
		// Bridging the single gap must coalesce into one run: every member
		// of [100,300] present, count exact.
		s.Add(201)
		if s.Len() != 201 {
			t.Fatalf("after bridge Len=%d want 201", s.Len())
		}
		for v := uint32(100); v <= 300; v++ {
			if !s.Contains(v) {
				t.Fatalf("missing %d after coalesce", v)
			}
		}
		// Adjacent (not overlapping) range extends in place.
		s.AddRange(301, 400)
		if s.Len() != 301 || !s.Contains(400) {
			t.Fatalf("adjacent extend: Len=%d", s.Len())
		}
		// Removing mid-run splits it with exact boundaries.
		s.Remove(250)
		if s.Len() != 300 || s.Contains(250) || !s.Contains(249) || !s.Contains(251) {
			t.Fatal("mid-run removal wrong")
		}
	})

	t.Run("cross-block-range", func(t *testing.T) {
		s := ipset.New()
		// 3 full /16 blocks plus partial edges: 0x0001fffe .. 0x00050001.
		s.AddRange(0x0001fffe, 0x00050001)
		want := int(0x00050001-0x0001fffe) + 1
		if s.Len() != want {
			t.Fatalf("Len=%d want %d", s.Len(), want)
		}
		for _, v := range []uint32{0x0001fffe, 0x0001ffff, 0x00020000, 0x0003abcd, 0x0004ffff, 0x00050000, 0x00050001} {
			if !s.Contains(v) {
				t.Fatalf("missing %#x", v)
			}
		}
		if s.Contains(0x0001fffd) || s.Contains(0x00050002) {
			t.Fatal("range edges leaked")
		}
		if r := s.Rank(0x00020000); r != 2 {
			t.Fatalf("Rank across blocks=%d want 2", r)
		}
		s.Compact()
		if s.Len() != want || !s.Contains(0x0003abcd) {
			t.Fatal("Compact changed content")
		}
	})

	t.Run("inverted-range-is-noop", func(t *testing.T) {
		s := ipset.New()
		s.AddRange(10, 5)
		if s.Len() != 0 {
			t.Fatalf("Len=%d want 0", s.Len())
		}
	})
}

// TestSetConversionThresholds walks a single block through array → bitmap →
// array conversions and checks content at each shape.
func TestSetConversionThresholds(t *testing.T) {
	s := ipset.New()
	// 5000 spread-out members force array → bitmap (threshold 4096).
	for i := uint32(0); i < 5000; i++ {
		s.Add(i * 13)
	}
	if s.Len() != 5000 {
		t.Fatalf("Len=%d", s.Len())
	}
	for i := uint32(0); i < 5000; i++ {
		if !s.Contains(i * 13) {
			t.Fatalf("missing %d", i*13)
		}
		if s.Contains(i*13 + 1) {
			t.Fatalf("phantom %d", i*13+1)
		}
	}
	// Removing back below half the threshold converts to array again;
	// content must survive the round trip.
	for i := uint32(1000); i < 5000; i++ {
		if !s.Remove(i * 13) {
			t.Fatalf("Remove(%d) missed", i*13)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("Len=%d", s.Len())
	}
	for i := uint32(0); i < 1000; i++ {
		if !s.Contains(i * 13) {
			t.Fatalf("missing %d after downconvert", i*13)
		}
	}
}

// TestSetMemBytes sanity-checks the footprint accounting the scale bench
// depends on: a full /16 as a run costs ~bytes, not 65536 entries.
func TestSetMemBytes(t *testing.T) {
	run := ipset.New()
	run.AddRange(0x0a000000, 0x0a00ffff) // full /16 as one interval
	if run.Len() != 1<<16 {
		t.Fatalf("Len=%d", run.Len())
	}
	if b := run.MemBytes(); b > 256 {
		t.Fatalf("interval /16 costs %d bytes, want <=256", b)
	}
	dense := ipset.New()
	for i := uint32(0); i < 1<<16; i += 2 {
		dense.Add(0x0a000000 | i)
	}
	dense.Compact()
	if b := dense.MemBytes(); b > 9*1024 {
		t.Fatalf("alternating /16 costs %d bytes, want <=9KiB (bitmap)", b)
	}
}

// TestUnionWithInPlace checks the zero-alloc contract for bitmap receivers
// and cardinality bookkeeping across mixed container shapes.
func TestUnionWithInPlace(t *testing.T) {
	dst := ipset.New()
	for i := uint32(0); i < 6000; i++ {
		dst.Add(0x01020000 | i) // bitmap container
	}
	src := ipset.New()
	for i := uint32(0); i < 6000; i++ {
		src.Add(0x01020000 | (i + 3000)) // overlaps half
	}
	allocs := testing.AllocsPerRun(10, func() {
		dst.UnionWith(src)
	})
	if allocs != 0 {
		t.Fatalf("bitmap-receiver UnionWith allocated %.0f times", allocs)
	}
	if dst.Len() != 9000 {
		t.Fatalf("Len=%d want 9000", dst.Len())
	}
	// Union across shapes: run + array + bitmap sources into one receiver.
	mixed := ipset.New()
	mixed.AddRange(0x02000000, 0x0200ffff)
	mixed.Add(0x03000001)
	dst.UnionWith(mixed)
	if dst.Len() != 9000+1<<16+1 {
		t.Fatalf("Len=%d", dst.Len())
	}
	dst.UnionWith(nil) // nil-safe
	if dst.Len() != 9000+1<<16+1 {
		t.Fatal("nil union changed set")
	}
}

// TestSetBitmapDensePaths deterministically drives one block through the
// array -> bitmap promotion and exercises every read path against a sorted
// reference while the container is in bitmap form — the representation the
// randomized model test only reaches on long (non-short) runs.
func TestSetBitmapDensePaths(t *testing.T) {
	s := ipset.New()
	ref := make([]uint32, 0, 6000)
	// ~5500 scattered values in block 0x000a (stride 11 keeps runs short so
	// the container cannot stay in run form) plus a sibling sparse block.
	for v := uint32(0x000a0000); v <= 0x000affff; v += 11 {
		s.Add(v)
		ref = append(ref, v)
	}
	s.Add(0x00140005)
	ref = append(ref, 0x00140005)
	if s.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(ref))
	}

	var got []uint32
	s.Iterate(func(v uint32) bool { got = append(got, v); return true })
	if len(got) != len(ref) {
		t.Fatalf("Iterate yielded %d values, want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("Iterate[%d] = %#x, want %#x", i, got[i], ref[i])
		}
	}

	// IterateFrom starting inside the bitmap, on and off a member.
	for _, lo := range []uint32{0x000a0000 + 11*2000, 0x000a0000 + 11*2000 + 1} {
		want := 0
		for _, v := range ref {
			if v >= lo {
				want++
			}
		}
		n := 0
		s.IterateFrom(lo, func(uint32) bool { n++; return true })
		if n != want {
			t.Fatalf("IterateFrom(%#x) yielded %d, want %d", lo, n, want)
		}
	}
	// Early termination must stop mid-bitmap.
	n := 0
	s.IterateFrom(0x000a0000, func(uint32) bool { n++; return n < 10 })
	if n != 10 {
		t.Fatalf("early stop after %d values", n)
	}

	// Rank/Select round-trip across the bitmap.
	for _, i := range []int{0, 1, 100, 2500, len(ref) - 2, len(ref) - 1} {
		v, ok := s.Select(i)
		if !ok || v != ref[i] {
			t.Fatalf("Select(%d) = %#x,%v want %#x", i, v, ok, ref[i])
		}
		if r := s.Rank(v); r != i {
			t.Fatalf("Rank(%#x) = %d, want %d", v, r, i)
		}
	}
	if _, ok := s.Select(len(ref)); ok {
		t.Fatal("Select past the end succeeded")
	}

	// Union of a run container into the bitmap block and vice versa.
	other := ipset.New()
	other.AddRange(0x000a1000, 0x000a2000)
	other.AddRange(0x00150000, 0x00150003)
	s.UnionWith(other)
	for v := uint32(0x000a1000); v <= 0x000a2000; v += 97 {
		if !s.Contains(v) {
			t.Fatalf("union lost %#x", v)
		}
	}
	if !s.Contains(0x00150001) {
		t.Fatal("union lost the new sparse block")
	}

	// Remove from the bitmap, then Clone/Compact must preserve contents.
	if !s.Remove(0x000a0000) || s.Contains(0x000a0000) {
		t.Fatal("Remove from bitmap failed")
	}
	before := s.Len()
	c := s.Clone()
	c.Compact()
	if c.Len() != before {
		t.Fatalf("Clone+Compact Len = %d, want %d", c.Len(), before)
	}
	if c.MemBytes() <= 0 {
		t.Fatal("MemBytes not positive")
	}
	// The clone is independent storage.
	c.Remove(0x00140005)
	if !s.Contains(0x00140005) {
		t.Fatal("Clone shares storage with original")
	}
}
