// Package ipset provides a memory-compact mutable set of IPv4 addresses.
//
// The representation follows the interval/bitmap hybrid that "Lost in
// Space: Improving Inference of IPv4 Address Space Utilization" uses to
// make Internet-scale address sets tractable: the 2^32 address space is
// split into /16 blocks, and each populated block holds one container
// chosen by density — a sorted array of 16-bit suffixes for sparse blocks,
// a sorted interval (run) list for contiguous pool space, or a 1024-word
// bitmap for dense blocks. A 48.7M-address crawl result that costs ~2.4 GB
// as a Go map costs tens of megabytes here, and iteration is ascending by
// construction, which is what deterministic artifact rendering wants.
//
// The set operates on host-order uint32 values so it can sit below
// iputil (iputil.Set wraps it); all operations are deterministic functions
// of the operation sequence, never of map iteration order.
package ipset

import "math/bits"

// Container kinds. A container covers one /16 block (the high 16 bits of
// the address are the block key; the low 16 bits live in the container).
const (
	arrKind = iota // sorted []uint16 of suffixes
	runKind        // sorted, disjoint, non-adjacent [lo,hi] suffix pairs
	bmpKind        // 1024-word bitmap over the 65536 suffixes
)

// arrMax is the array-container cardinality bound: past this an array
// (2 bytes/member) would outgrow the fixed 8 KiB bitmap, so the container
// converts. Removal converts back down at arrMax/2 to avoid flip-flopping
// at the boundary.
const arrMax = 4096

// bmpWords is the bitmap container size: 65536 bits.
const bmpWords = 1024

type container struct {
	kind uint8
	n    int32 // cardinality
	// arr holds sorted suffixes (arrKind) or packed lo,hi run pairs
	// (runKind); bmp holds the bitmap (bmpKind). Only one is non-nil.
	arr []uint16
	bmp []uint64
}

// Set is a mutable set of IPv4 addresses (host-order uint32). The zero
// value is an empty set ready for use.
type Set struct {
	keys []uint16    // sorted /16 block keys
	ctrs []container // parallel to keys
	n    int         // total cardinality
}

// New returns an empty set.
func New() *Set { return &Set{} }

// Len returns the number of addresses in the set.
func (s *Set) Len() int { return s.n }

// findBlock returns the index of key in s.keys and whether it is present;
// when absent the index is the insertion point.
func (s *Set) findBlock(key uint16) (int, bool) {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.keys) && s.keys[lo] == key
}

// Add inserts v; it reports whether v was newly added.
func (s *Set) Add(v uint32) bool {
	key, suf := uint16(v>>16), uint16(v)
	i, ok := s.findBlock(key)
	if !ok {
		s.keys = append(s.keys, 0)
		copy(s.keys[i+1:], s.keys[i:])
		s.keys[i] = key
		s.ctrs = append(s.ctrs, container{})
		copy(s.ctrs[i+1:], s.ctrs[i:])
		s.ctrs[i] = container{kind: arrKind, n: 1, arr: []uint16{suf}}
		s.n++
		return true
	}
	if s.ctrs[i].add(suf) {
		s.n++
		return true
	}
	return false
}

// Remove deletes v; it reports whether v was present. Emptied blocks are
// dropped so footprint tracks live content.
func (s *Set) Remove(v uint32) bool {
	key, suf := uint16(v>>16), uint16(v)
	i, ok := s.findBlock(key)
	if !ok || !s.ctrs[i].remove(suf) {
		return false
	}
	s.n--
	if s.ctrs[i].n == 0 {
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
		s.ctrs = append(s.ctrs[:i], s.ctrs[i+1:]...)
	}
	return true
}

// Contains reports membership of v.
func (s *Set) Contains(v uint32) bool {
	i, ok := s.findBlock(uint16(v >> 16))
	return ok && s.ctrs[i].contains(uint16(v))
}

// AddRange inserts every address in [lo, hi] (inclusive; lo > hi is a
// no-op). Contiguous spans enter as interval containers, so a /16 costs
// four bytes instead of 65536 map entries.
func (s *Set) AddRange(lo, hi uint32) {
	for lo <= hi {
		key := uint16(lo >> 16)
		blockEnd := uint32(key)<<16 | 0xffff
		end := hi
		if end > blockEnd {
			end = blockEnd
		}
		s.addRangeInBlock(key, uint16(lo), uint16(end))
		if end >= hi || blockEnd == 0xffffffff {
			break
		}
		lo = blockEnd + 1
	}
}

func (s *Set) addRangeInBlock(key, lo, hi uint16) {
	i, ok := s.findBlock(key)
	if !ok {
		s.keys = append(s.keys, 0)
		copy(s.keys[i+1:], s.keys[i:])
		s.keys[i] = key
		s.ctrs = append(s.ctrs, container{})
		copy(s.ctrs[i+1:], s.ctrs[i:])
		s.ctrs[i] = container{kind: runKind, n: int32(hi-lo) + 1, arr: []uint16{lo, hi}}
		s.n += int(hi-lo) + 1
		return
	}
	before := s.ctrs[i].n
	s.ctrs[i].addRange(lo, hi)
	s.n += int(s.ctrs[i].n - before)
}

// Iterate calls fn for every member in ascending order until fn returns
// false or the members are exhausted.
func (s *Set) Iterate(fn func(uint32) bool) {
	for i, key := range s.keys {
		base := uint32(key) << 16
		if !s.ctrs[i].iterate(base, fn) {
			return
		}
	}
}

// IterateFrom calls fn for every member >= lo in ascending order until fn
// returns false. It seeks directly to lo's container, so walking an address
// window costs the window's population, not the set's.
func (s *Set) IterateFrom(lo uint32, fn func(uint32) bool) {
	key, suf := uint16(lo>>16), uint16(lo)
	i, ok := s.findBlock(key)
	if ok {
		if !s.ctrs[i].iterateFrom(uint32(key)<<16, suf, fn) {
			return
		}
		i++
	}
	for ; i < len(s.keys); i++ {
		if !s.ctrs[i].iterate(uint32(s.keys[i])<<16, fn) {
			return
		}
	}
}

// Rank returns the number of members strictly less than v.
func (s *Set) Rank(v uint32) int {
	key, suf := uint16(v>>16), uint16(v)
	rank := 0
	for i, k := range s.keys {
		if k < key {
			rank += int(s.ctrs[i].n)
			continue
		}
		if k == key {
			rank += s.ctrs[i].rank(suf)
		}
		break
	}
	return rank
}

// Select returns the i'th smallest member (0-based); ok is false when i is
// out of range.
func (s *Set) Select(i int) (uint32, bool) {
	if i < 0 || i >= s.n {
		return 0, false
	}
	for j, key := range s.keys {
		c := &s.ctrs[j]
		if i < int(c.n) {
			return uint32(key)<<16 | uint32(c.sel(i)), true
		}
		i -= int(c.n)
	}
	return 0, false // unreachable while s.n is consistent
}

// UnionWith adds every member of t to s, container-wise and in place:
// bitmap receivers absorb any container shape with zero allocation, and
// array/run receivers reuse capacity where they can.
func (s *Set) UnionWith(t *Set) {
	if t == nil {
		return
	}
	for j, key := range t.keys {
		tc := &t.ctrs[j]
		i, ok := s.findBlock(key)
		if !ok {
			s.keys = append(s.keys, 0)
			copy(s.keys[i+1:], s.keys[i:])
			s.keys[i] = key
			s.ctrs = append(s.ctrs, container{})
			copy(s.ctrs[i+1:], s.ctrs[i:])
			s.ctrs[i] = tc.clone()
			s.n += int(tc.n)
			continue
		}
		before := s.ctrs[i].n
		s.ctrs[i].unionWith(tc)
		s.n += int(s.ctrs[i].n - before)
	}
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	out := &Set{
		keys: append([]uint16(nil), s.keys...),
		ctrs: make([]container, len(s.ctrs)),
		n:    s.n,
	}
	for i := range s.ctrs {
		out.ctrs[i] = s.ctrs[i].clone()
	}
	return out
}

// Compact converts every container to its smallest representation
// (intervals for contiguous space, arrays for sparse, bitmaps for dense)
// and trims slack capacity. Call it when a set stops being mutated.
func (s *Set) Compact() {
	for i := range s.ctrs {
		s.ctrs[i].compact()
	}
}

// MemBytes estimates the heap footprint of the set's payload (container
// storage plus indexing), for bytes-per-host accounting in scale benches.
func (s *Set) MemBytes() int {
	b := cap(s.keys)*2 + cap(s.ctrs)*containerBytes
	for i := range s.ctrs {
		b += cap(s.ctrs[i].arr)*2 + cap(s.ctrs[i].bmp)*8
	}
	return b
}

// containerBytes is the in-struct size of one container header.
const containerBytes = 8 + 24 + 24 // kind+n padded, two slice headers

// --- container operations ---

func (c *container) contains(v uint16) bool {
	switch c.kind {
	case arrKind:
		i := searchU16(c.arr, v)
		return i < len(c.arr) && c.arr[i] == v
	case runKind:
		_, in := c.findRun(v)
		return in
	default:
		return c.bmp[v>>6]&(1<<(v&63)) != 0
	}
}

// findRun locates the run containing v: it returns the index of the first
// run with hi >= v and whether that run contains v.
func (c *container) findRun(v uint16) (int, bool) {
	lo, hi := 0, len(c.arr)/2
	for lo < hi {
		mid := (lo + hi) / 2
		if c.arr[2*mid+1] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(c.arr)/2 && c.arr[2*lo] <= v
}

func (c *container) add(v uint16) bool {
	switch c.kind {
	case arrKind:
		i := searchU16(c.arr, v)
		if i < len(c.arr) && c.arr[i] == v {
			return false
		}
		if len(c.arr) >= arrMax {
			c.toBitmap()
			return c.add(v)
		}
		c.arr = append(c.arr, 0)
		copy(c.arr[i+1:], c.arr[i:])
		c.arr[i] = v
		c.n++
		return true
	case runKind:
		i, in := c.findRun(v)
		if in {
			return false
		}
		nr := len(c.arr) / 2
		// Extend the previous run upward, the next run downward, or merge
		// the two when v bridges them.
		prevAdj := i > 0 && c.arr[2*i-1] == v-1 && v != 0
		nextAdj := i < nr && c.arr[2*i] == v+1 && v != 0xffff
		switch {
		case prevAdj && nextAdj:
			c.arr[2*i-1] = c.arr[2*i+1]
			c.arr = append(c.arr[:2*i], c.arr[2*i+2:]...)
		case prevAdj:
			c.arr[2*i-1] = v
		case nextAdj:
			c.arr[2*i] = v
		default:
			if nr >= arrMax/2 {
				c.toBitmap()
				return c.add(v)
			}
			c.arr = append(c.arr, 0, 0)
			copy(c.arr[2*i+2:], c.arr[2*i:])
			c.arr[2*i], c.arr[2*i+1] = v, v
		}
		c.n++
		return true
	default:
		w, b := v>>6, uint64(1)<<(v&63)
		if c.bmp[w]&b != 0 {
			return false
		}
		c.bmp[w] |= b
		c.n++
		return true
	}
}

func (c *container) addRange(lo, hi uint16) {
	switch c.kind {
	case arrKind:
		if int(hi-lo)+1 <= 8 { // tiny span: element-wise is cheaper
			for v := lo; ; v++ {
				c.add(v)
				if v == hi {
					break
				}
			}
			return
		}
		c.toRuns()
		c.addRange(lo, hi)
	case runKind:
		// Collect the runs overlapping or adjacent to [lo, hi] and replace
		// them with one merged run.
		i, _ := c.findRun(lo)
		if i > 0 && lo != 0 && c.arr[2*i-1] >= lo-1 {
			i--
		}
		j := i
		newLo, newHi := lo, hi
		nr := len(c.arr) / 2
		for j < nr {
			rl, rh := c.arr[2*j], c.arr[2*j+1]
			if rl > hi && (hi == 0xffff || rl > hi+1) {
				break
			}
			if rl < newLo {
				newLo = rl
			}
			if rh > newHi {
				newHi = rh
			}
			j++
		}
		removed := 0
		for k := i; k < j; k++ {
			removed += int(c.arr[2*k+1]-c.arr[2*k]) + 1
		}
		if j == i { // no overlap: insert a fresh run at i
			c.arr = append(c.arr, 0, 0)
			copy(c.arr[2*i+2:], c.arr[2*i:])
			c.arr[2*i], c.arr[2*i+1] = newLo, newHi
		} else { // replace runs [i,j) with the merged run
			c.arr[2*i], c.arr[2*i+1] = newLo, newHi
			copy(c.arr[2*i+2:], c.arr[2*j:])
			c.arr = c.arr[:len(c.arr)-2*(j-i-1)]
		}
		c.n += int32(int(newHi-newLo) + 1 - removed)
		if len(c.arr)/2 >= arrMax/2 {
			c.toBitmap()
		}
	default:
		for w := lo >> 6; w <= hi>>6; w++ {
			mask := ^uint64(0)
			if w == lo>>6 {
				mask &= ^uint64(0) << (lo & 63)
			}
			if w == hi>>6 {
				mask &= ^uint64(0) >> (63 - hi&63)
			}
			c.n += int32(bits.OnesCount64(mask &^ c.bmp[w]))
			c.bmp[w] |= mask
		}
	}
}

func (c *container) remove(v uint16) bool {
	switch c.kind {
	case arrKind:
		i := searchU16(c.arr, v)
		if i >= len(c.arr) || c.arr[i] != v {
			return false
		}
		c.arr = append(c.arr[:i], c.arr[i+1:]...)
		c.n--
		return true
	case runKind:
		i, in := c.findRun(v)
		if !in {
			return false
		}
		rl, rh := c.arr[2*i], c.arr[2*i+1]
		switch {
		case rl == v && rh == v:
			c.arr = append(c.arr[:2*i], c.arr[2*i+2:]...)
		case rl == v:
			c.arr[2*i] = v + 1
		case rh == v:
			c.arr[2*i+1] = v - 1
		default:
			if len(c.arr)/2 >= arrMax/2 {
				c.toBitmap()
				return c.remove(v)
			}
			c.arr = append(c.arr, 0, 0)
			copy(c.arr[2*i+2:], c.arr[2*i:])
			c.arr[2*i], c.arr[2*i+1] = rl, v-1
			c.arr[2*i+2], c.arr[2*i+3] = v+1, rh
		}
		c.n--
		return true
	default:
		w, b := v>>6, uint64(1)<<(v&63)
		if c.bmp[w]&b == 0 {
			return false
		}
		c.bmp[w] &^= b
		c.n--
		if c.n <= arrMax/2 {
			c.toArray()
		}
		return true
	}
}

func (c *container) iterate(base uint32, fn func(uint32) bool) bool {
	switch c.kind {
	case arrKind:
		for _, v := range c.arr {
			if !fn(base | uint32(v)) {
				return false
			}
		}
	case runKind:
		for i := 0; i < len(c.arr); i += 2 {
			for v := uint32(c.arr[i]); v <= uint32(c.arr[i+1]); v++ {
				if !fn(base | v) {
					return false
				}
			}
		}
	default:
		for w, word := range c.bmp {
			for word != 0 {
				bit := bits.TrailingZeros64(word)
				if !fn(base | uint32(w<<6+bit)) {
					return false
				}
				word &= word - 1
			}
		}
	}
	return true
}

// iterateFrom is iterate restricted to suffixes >= from.
func (c *container) iterateFrom(base uint32, from uint16, fn func(uint32) bool) bool {
	switch c.kind {
	case arrKind:
		for _, v := range c.arr[searchU16(c.arr, from):] {
			if !fn(base | uint32(v)) {
				return false
			}
		}
	case runKind:
		i, in := c.findRun(from)
		for ; i < len(c.arr)/2; i++ {
			lo := uint32(c.arr[2*i])
			if in { // first run contains from: start mid-run
				lo = uint32(from)
				in = false
			}
			for v := lo; v <= uint32(c.arr[2*i+1]); v++ {
				if !fn(base | v) {
					return false
				}
			}
		}
	default:
		w := int(from >> 6)
		word := c.bmp[w] &^ (1<<(from&63) - 1)
		for {
			for word != 0 {
				bit := bits.TrailingZeros64(word)
				if !fn(base | uint32(w<<6+bit)) {
					return false
				}
				word &= word - 1
			}
			w++
			if w >= bmpWords {
				break
			}
			word = c.bmp[w]
		}
	}
	return true
}

func (c *container) rank(v uint16) int {
	switch c.kind {
	case arrKind:
		return searchU16(c.arr, v)
	case runKind:
		r := 0
		for i := 0; i < len(c.arr); i += 2 {
			if c.arr[i] >= v {
				break
			}
			hi := c.arr[i+1]
			if hi >= v {
				hi = v - 1
			}
			r += int(hi-c.arr[i]) + 1
		}
		return r
	default:
		r := 0
		for w := 0; w < int(v>>6); w++ {
			r += bits.OnesCount64(c.bmp[w])
		}
		r += bits.OnesCount64(c.bmp[v>>6] & (1<<(v&63) - 1))
		return r
	}
}

func (c *container) sel(i int) uint16 {
	switch c.kind {
	case arrKind:
		return c.arr[i]
	case runKind:
		for j := 0; j < len(c.arr); j += 2 {
			span := int(c.arr[j+1]-c.arr[j]) + 1
			if i < span {
				return c.arr[j] + uint16(i)
			}
			i -= span
		}
	default:
		for w, word := range c.bmp {
			pc := bits.OnesCount64(word)
			if i < pc {
				for ; ; word &= word - 1 {
					if i == 0 {
						return uint16(w<<6 + bits.TrailingZeros64(word))
					}
					i--
				}
			}
			i -= pc
		}
	}
	return 0 // unreachable while n is consistent
}

func (c *container) unionWith(t *container) {
	if t.n == 0 {
		return
	}
	if c.kind == bmpKind {
		switch t.kind {
		case bmpKind:
			n := int32(0)
			for w := range c.bmp {
				c.bmp[w] |= t.bmp[w]
				n += int32(bits.OnesCount64(c.bmp[w]))
			}
			c.n = n
		case arrKind:
			for _, v := range t.arr {
				c.add(v)
			}
		default:
			for i := 0; i < len(t.arr); i += 2 {
				c.addRange(t.arr[i], t.arr[i+1])
			}
		}
		return
	}
	// Small receiver: fold the other container in element- or range-wise;
	// conversions to bitmap happen automatically past the thresholds.
	switch t.kind {
	case arrKind:
		for _, v := range t.arr {
			c.add(v)
		}
	case runKind:
		for i := 0; i < len(t.arr); i += 2 {
			c.addRange(t.arr[i], t.arr[i+1])
		}
	default:
		t.iterate(0, func(v uint32) bool {
			c.add(uint16(v))
			return true
		})
	}
}

func (c *container) clone() container {
	out := container{kind: c.kind, n: c.n}
	if c.arr != nil {
		out.arr = append([]uint16(nil), c.arr...)
	}
	if c.bmp != nil {
		out.bmp = append([]uint64(nil), c.bmp...)
	}
	return out
}

func (c *container) toBitmap() {
	bmp := make([]uint64, bmpWords)
	switch c.kind {
	case arrKind:
		for _, v := range c.arr {
			bmp[v>>6] |= 1 << (v & 63)
		}
	case runKind:
		for i := 0; i < len(c.arr); i += 2 {
			for w := c.arr[i] >> 6; ; w++ {
				mask := ^uint64(0)
				if w == c.arr[i]>>6 {
					mask &= ^uint64(0) << (c.arr[i] & 63)
				}
				if w == c.arr[i+1]>>6 {
					mask &= ^uint64(0) >> (63 - c.arr[i+1]&63)
				}
				bmp[w] |= mask
				if w == c.arr[i+1]>>6 {
					break
				}
			}
		}
	}
	c.kind, c.arr, c.bmp = bmpKind, nil, bmp
}

func (c *container) toArray() {
	arr := make([]uint16, 0, c.n)
	c.iterate(0, func(v uint32) bool {
		arr = append(arr, uint16(v))
		return true
	})
	c.kind, c.arr, c.bmp = arrKind, arr, nil
}

// toRuns converts to an interval container (from array form).
func (c *container) toRuns() {
	if c.kind != arrKind {
		return
	}
	runs := make([]uint16, 0, 8)
	for i := 0; i < len(c.arr); {
		j := i
		for j+1 < len(c.arr) && c.arr[j+1] == c.arr[j]+1 {
			j++
		}
		runs = append(runs, c.arr[i], c.arr[j])
		i = j + 1
	}
	c.kind, c.arr = runKind, runs
}

// compact rewrites the container as its smallest representation.
func (c *container) compact() {
	// Count runs to size the candidates.
	runs := 0
	switch c.kind {
	case runKind:
		runs = len(c.arr) / 2
	case arrKind:
		for i := 0; i < len(c.arr); i++ {
			if i == 0 || c.arr[i] != c.arr[i-1]+1 {
				runs++
			}
		}
	default:
		prev := false
		for _, word := range c.bmp {
			for b := 0; b < 64; b++ {
				set := word&(1<<b) != 0
				if set && !prev {
					runs++
				}
				prev = set
			}
		}
	}
	runBytes, aBytes, bBytes := runs*4, int(c.n)*2, bmpWords*8
	switch {
	case runBytes <= aBytes && runBytes <= bBytes:
		if c.kind == bmpKind {
			c.toArray()
		}
		c.toRuns()
		c.arr = append([]uint16(nil), c.arr...) // trim capacity
	case aBytes <= bBytes:
		if c.kind != arrKind {
			c.toArray()
		} else {
			c.arr = append([]uint16(nil), c.arr...)
		}
	default:
		if c.kind != bmpKind {
			c.toBitmap()
		}
	}
}

// searchU16 returns the index of the first element >= v.
func searchU16(a []uint16, v uint16) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
