package reuseapi

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/shed"
)

// Registry serves many named datasets behind one handler. Each dataset is a
// full *Server — its own atomically swappable snapshot, its own optional
// admission controller — and every endpoint is reachable both as
// /v1/{dataset}/{endpoint} and, for the default (first-registered) dataset,
// at the classic unprefixed /v1/{endpoint} routes, so single-dataset
// clients never notice the difference.
//
// Registration happens once at startup, before Handler; after that the
// registry is read-only and requests touch no locks beyond each server's
// snapshot pointer. Per-dataset updates go through the registered *Server
// (Update / ApplyDelta), not the registry.
type Registry struct {
	// Obs serves all datasets' metrics at /metrics; per-dataset counters
	// are separated by a dataset label. Optional.
	Obs *obs.Registry
	// Manifest, when non-nil, is served as JSON at /debug/manifest.
	Manifest obs.ManifestSource
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	EnablePprof bool

	order []string
	named map[string]*Server
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{named: make(map[string]*Server)}
}

// endpointNames are the path segments that terminate a /v1/ route; a
// dataset must not shadow them, or /v1/{dataset}/... and /v1/{endpoint}
// would collide.
var endpointNames = map[string]bool{
	"check": true, "list": true, "prefixes": true, "stats": true, "greylist": true,
}

// Register adds a named dataset. The first registered dataset becomes the
// default the unprefixed /v1/* routes alias. Names are path segments, so
// they are restricted to lowercase letters, digits, '-', '_' and '.', and
// must not shadow an endpoint name.
func (g *Registry) Register(name string, srv *Server) error {
	if err := validDatasetName(name); err != nil {
		return err
	}
	if _, dup := g.named[name]; dup {
		return fmt.Errorf("dataset %q already registered", name)
	}
	g.named[name] = srv
	g.order = append(g.order, name)
	return nil
}

func validDatasetName(name string) error {
	if name == "" {
		return fmt.Errorf("empty dataset name")
	}
	if endpointNames[name] {
		return fmt.Errorf("dataset name %q shadows an endpoint", name)
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("dataset name %q: invalid character %q", name, c)
		}
	}
	return nil
}

// Dataset returns the named server.
func (g *Registry) Dataset(name string) (*Server, bool) {
	srv, ok := g.named[name]
	return srv, ok
}

// Names returns the registered dataset names in registration order; the
// first is the default.
func (g *Registry) Names() []string {
	return append([]string(nil), g.order...)
}

// DefaultName returns the default dataset's name ("" when none registered).
func (g *Registry) DefaultName() string {
	if len(g.order) == 0 {
		return ""
	}
	return g.order[0]
}

// Handler returns the multi-dataset HTTP handler. At least one dataset must
// be registered. Observability hooks are bound here, so set them (and
// register every dataset) before calling.
func (g *Registry) Handler() http.Handler {
	if len(g.order) == 0 {
		panic("reuseapi: Registry.Handler with no datasets registered")
	}
	mux := http.NewServeMux()
	h := &registryHandler{mux: mux, eps: make(map[string]*endpointSet, len(g.named))}
	for _, name := range g.order {
		es := g.named[name].endpoints(name)
		h.eps[name] = &es
	}
	h.def = h.eps[g.order[0]]
	if g.anyShed() {
		mux.HandleFunc("/healthz", g.handleHealthz)
		mux.HandleFunc("/readyz", g.handleReadyz)
	}
	if g.Obs != nil {
		mux.Handle("/metrics", obs.MetricsHandler(g.Obs))
	}
	if g.Manifest != nil {
		mux.Handle("/debug/manifest", obs.ManifestHandler(g.Manifest))
	}
	if g.EnablePprof {
		obs.RegisterPprof(mux)
	}
	return h
}

func (g *Registry) anyShed() bool {
	for _, srv := range g.named {
		if srv.Shed != nil {
			return true
		}
	}
	return false
}

// registryHandler routes /v1/{endpoint} to the default dataset and
// /v1/{dataset}/{endpoint} to the named one, falling back to the mux for
// everything else. Dispatch is two string cuts and two map probes — no
// per-request allocation, same shape as the single-server fast path.
type registryHandler struct {
	mux *http.ServeMux
	eps map[string]*endpointSet
	def *endpointSet
}

func (h *registryHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if rest, ok := strings.CutPrefix(r.URL.Path, "/v1/"); ok {
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			if es, ok := h.eps[rest[:i]]; ok {
				if hf := es.lookup(rest[i+1:]); hf != nil {
					hf(w, r)
					return
				}
				writeError(w, http.StatusNotFound, "unknown endpoint", rest[i+1:])
				return
			}
			writeError(w, http.StatusNotFound, "unknown dataset", rest[:i])
			return
		}
		if hf := h.def.lookup(rest); hf != nil {
			hf(w, r)
			return
		}
	}
	h.mux.ServeHTTP(w, r)
}

// handleHealthz is liveness for the whole process, as in the single-dataset
// server: up and serving HTTP means 200.
func (g *Registry) handleHealthz(w http.ResponseWriter, r *http.Request) {
	setContentTypeJSON(w)
	_, _ = w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// handleReadyz aggregates readiness over every dataset with admission
// control: one degraded dataset makes the whole replica not-ready (load
// balancers drain per process, not per path), and the 503 body names the
// degraded datasets so operators see which feed is in trouble.
func (g *Registry) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var degraded []string
	var first *shed.Controller
	for _, name := range g.order {
		if c := g.named[name].Shed; c != nil && c.Mode() == shed.ModeDegraded {
			degraded = append(degraded, name)
			if first == nil {
				first = c
			}
		}
	}
	if len(degraded) == 0 {
		setContentTypeJSON(w)
		_, _ = w.Write([]byte("{\"ready\":true,\"mode\":\"normal\"}\n"))
		return
	}
	w.Header().Set("Retry-After", strconv.Itoa(first.RetryAfterSeconds()))
	setContentTypeJSON(w)
	w.WriteHeader(http.StatusServiceUnavailable)
	_, _ = w.Write(encodeJSONLine(struct {
		Ready    bool     `json:"ready"`
		Mode     string   `json:"mode"`
		Degraded []string `json:"degraded_datasets"`
	}{false, "degraded", degraded}))
}
