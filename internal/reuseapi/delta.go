package reuseapi

import (
	"bytes"
	"sort"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Delta is an incremental dataset update: the membership and value edits a
// daily feed drop carries, applied to a compiled snapshot without paying a
// full recompile. The 83-day longitudinal ingest replaces a few providers'
// worth of addresses per day out of hundreds of thousands served; ApplyDelta
// makes that reload cost proportional to the edit, not the dataset.
type Delta struct {
	// AddNAT sets the user lower bound per address, inserting new members
	// and overwriting existing ones.
	AddNAT map[iputil.Addr]int
	// RemoveNAT drops addresses. Removing an absent address is a no-op; an
	// address in both AddNAT and RemoveNAT ends up present (add wins).
	RemoveNAT []iputil.Addr
	// AddPrefixes / RemovePrefixes edit the dynamic-prefix set under the
	// same semantics.
	AddPrefixes    []iputil.Prefix
	RemovePrefixes []iputil.Prefix
	// Generated restamps the dataset build time; the zero value keeps the
	// old stamp.
	Generated time.Time
}

// Ops returns the number of membership/value edits the delta carries.
func (d *Delta) Ops() int {
	return len(d.AddNAT) + len(d.RemoveNAT) + len(d.AddPrefixes) + len(d.RemovePrefixes)
}

// Empty reports whether the delta carries no edits. Generated alone does not
// count: a byte-identical feed rewrite should keep the served snapshot —
// ETags included — rather than restamp it.
func (d *Delta) Empty() bool { return d.Ops() == 0 }

// ApplyTo returns the dataset that results from applying d to base, leaving
// base untouched. This is the reference semantics the delta compile is
// pinned against: Compile(d.ApplyTo(base)) must be byte-identical to
// ApplyDelta(d) on base's snapshot.
func (d *Delta) ApplyTo(base *Dataset) *Dataset {
	out := &Dataset{
		NATUsers:        make(map[iputil.Addr]int, len(base.NATUsers)+len(d.AddNAT)),
		DynamicPrefixes: iputil.NewPrefixSet(),
		Generated:       base.Generated,
	}
	if !d.Generated.IsZero() {
		out.Generated = d.Generated
	}
	for a, u := range base.NATUsers {
		out.NATUsers[a] = u
	}
	for _, a := range d.RemoveNAT {
		delete(out.NATUsers, a)
	}
	for a, u := range d.AddNAT {
		out.NATUsers[a] = u
	}
	removed := make(map[iputil.Prefix]bool, len(d.RemovePrefixes))
	for _, p := range d.RemovePrefixes {
		removed[p] = true
	}
	if base.DynamicPrefixes != nil {
		for _, p := range base.DynamicPrefixes.Sorted() {
			if !removed[p] {
				out.DynamicPrefixes.Add(p)
			}
		}
	}
	for _, p := range d.AddPrefixes {
		out.DynamicPrefixes.Add(p)
	}
	return out
}

// DiffDatasets computes the delta that turns old into new — what a watch
// reloader feeds ApplyDelta after re-parsing its input files. Both datasets
// must be normalized (non-nil map and set).
func DiffDatasets(old, new *Dataset) *Delta {
	d := &Delta{AddNAT: map[iputil.Addr]int{}, Generated: new.Generated}
	for a, u := range new.NATUsers {
		if ou, ok := old.NATUsers[a]; !ok || ou != u {
			d.AddNAT[a] = u
		}
	}
	for a := range old.NATUsers {
		if _, ok := new.NATUsers[a]; !ok {
			d.RemoveNAT = append(d.RemoveNAT, a)
		}
	}
	for _, p := range new.DynamicPrefixes.Sorted() {
		if !old.DynamicPrefixes.Contains(p) {
			d.AddPrefixes = append(d.AddPrefixes, p)
		}
	}
	for _, p := range old.DynamicPrefixes.Sorted() {
		if !new.DynamicPrefixes.Contains(p) {
			d.RemovePrefixes = append(d.RemovePrefixes, p)
		}
	}
	return d
}

// ApplyDelta compiles the snapshot that Compile would produce for the
// delta-edited dataset, byte-for-byte — same bodies, same gzip members, same
// ETags — but pays only for what the delta touches: the NAT array is merged
// in one pass instead of rebuilt from a map, the LPM trie shares every
// untouched node with the old snapshot via path-copying, and only body
// segments whose content changed are recompressed (compression dominates
// Compile, so that is the saving). The receiver is never mutated; concurrent
// readers of it are unaffected.
func (s *Snapshot) ApplyDelta(d *Delta) *Snapshot {
	out := &Snapshot{generated: s.generated}
	if !d.Generated.IsZero() {
		out.generated = d.Generated
	}

	out.natAddrs, out.natUsers = mergeNAT(s.natAddrs, s.natUsers, d)
	for _, u := range out.natUsers {
		if u > out.maxUsers {
			out.maxUsers = u
		}
	}
	if len(out.natAddrs) >= 1024 {
		out.nat16 = buildNAT16(out.natAddrs)
	}

	out.prefixes, out.sortedPrefixes = mergePrefixes(s.prefixes, s.sortedPrefixes, d)
	out.nDynamic = len(out.sortedPrefixes)

	out.list = precomputeSegments(reuseSegments(
		renderListSegments(out.generated, out.natAddrs), s.list.segs))
	out.prefixesB = precomputeSegments(reuseSegments(
		renderPrefixesSegments(out.generated, out.sortedPrefixes), s.prefixesB.segs))
	out.stats = precomputeSegments(reuseSegments(
		[]bodySegment{{key: segKeyWhole, body: renderStats(out)}}, s.stats.segs))
	return out
}

// ApplyDelta swaps in the delta-compiled successor of the current snapshot.
// Like Update it expects a single writer (the reloader goroutine):
// concurrent readers always see a complete snapshot, but concurrent writers
// could lose one another's edits.
func (s *Server) ApplyDelta(d *Delta) {
	s.snap.Store(s.snap.Load().ApplyDelta(d))
}

// mergeNAT produces the sorted successor address/user arrays in one linear
// pass over the old arrays and the delta's (sorted) additions.
func mergeNAT(oldAddrs []iputil.Addr, oldUsers []int, d *Delta) ([]iputil.Addr, []int) {
	adds := make([]iputil.Addr, 0, len(d.AddNAT))
	for a := range d.AddNAT {
		adds = append(adds, a)
	}
	sort.Slice(adds, func(i, j int) bool { return adds[i] < adds[j] })
	removed := make(map[iputil.Addr]bool, len(d.RemoveNAT))
	for _, a := range d.RemoveNAT {
		if _, ok := d.AddNAT[a]; !ok { // add wins over remove
			removed[a] = true
		}
	}

	addrs := make([]iputil.Addr, 0, len(oldAddrs)+len(adds))
	users := make([]int, 0, len(oldAddrs)+len(adds))
	i, j := 0, 0
	for i < len(oldAddrs) || j < len(adds) {
		switch {
		case j >= len(adds) || (i < len(oldAddrs) && oldAddrs[i] < adds[j]):
			if a := oldAddrs[i]; !removed[a] {
				addrs = append(addrs, a)
				users = append(users, oldUsers[i])
			}
			i++
		case i >= len(oldAddrs) || adds[j] < oldAddrs[i]:
			addrs = append(addrs, adds[j])
			users = append(users, d.AddNAT[adds[j]])
			j++
		default: // same address: the add overwrites the user bound
			addrs = append(addrs, adds[j])
			users = append(users, d.AddNAT[adds[j]])
			i++
			j++
		}
	}
	return addrs, users
}

// mergePrefixes produces the successor LPM trie by path-copying only the
// edited prefixes' paths, plus the successor sorted member list by a linear
// merge.
func mergePrefixes(oldTrie *iputil.Table[compiledPrefix], oldSorted []iputil.Prefix, d *Delta) (*iputil.Table[compiledPrefix], []iputil.Prefix) {
	added := make(map[iputil.Prefix]bool, len(d.AddPrefixes))
	for _, p := range d.AddPrefixes {
		if _, ok := oldTrie.LookupPrefix(p); !ok {
			added[p] = true
		}
	}
	removed := make(map[iputil.Prefix]bool, len(d.RemovePrefixes))
	for _, p := range d.RemovePrefixes {
		if _, ok := oldTrie.LookupPrefix(p); ok && !containsPrefix(d.AddPrefixes, p) {
			removed[p] = true
		}
	}

	trie := oldTrie
	for p := range removed {
		trie = trie.DeleteCopy(p)
	}
	adds := make([]iputil.Prefix, 0, len(added))
	for p := range added {
		trie = trie.InsertCopy(p, compiledPrefix{cidr: p.String()})
		adds = append(adds, p)
	}
	sort.Slice(adds, func(i, j int) bool { return prefixLess(adds[i], adds[j]) })

	sorted := make([]iputil.Prefix, 0, len(oldSorted)+len(adds))
	i, j := 0, 0
	for i < len(oldSorted) || j < len(adds) {
		if j >= len(adds) || (i < len(oldSorted) && prefixLess(oldSorted[i], adds[j])) {
			if p := oldSorted[i]; !removed[p] {
				sorted = append(sorted, p)
			}
			i++
		} else {
			sorted = append(sorted, adds[j])
			j++
		}
	}
	return trie, sorted
}

// prefixLess matches PrefixSet.Sorted's order: base address, then length.
func prefixLess(a, b iputil.Prefix) bool {
	if a.Base() != b.Base() {
		return a.Base() < b.Base()
	}
	return a.Bits() < b.Bits()
}

// containsPrefix reports whether ps contains p (delta slices are tiny, so a
// linear scan beats building a set).
func containsPrefix(ps []iputil.Prefix, p iputil.Prefix) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

// reuseSegments splices cached gzip members from the old snapshot into a
// freshly rendered segment list: any fresh segment whose key and content
// match an old segment inherits its member instead of recompressing.
// Rendering is linear and cheap; compression is what the reuse avoids. The
// content comparison makes the splice unconditionally safe — a reused member
// is by construction the compression of exactly these bytes.
func reuseSegments(fresh []bodySegment, old []bodySegment) []bodySegment {
	if len(old) == 0 {
		return fresh
	}
	byKey := make(map[int]bodySegment, len(old))
	for _, seg := range old {
		byKey[seg.key] = seg
	}
	for i := range fresh {
		if o, ok := byKey[fresh[i].key]; ok && bytes.Equal(o.body, fresh[i].body) {
			fresh[i].gz = o.gz
		}
	}
	return fresh
}

// buildNAT16 buckets sorted addresses by their top 16 bits, as in Compile.
func buildNAT16(addrs []iputil.Addr) []int32 {
	idx := make([]int32, 1<<16+1)
	h := 0
	for i, a := range addrs {
		for top := int(a >> 16); h <= top; h++ {
			idx[h] = int32(i)
		}
	}
	for ; h <= 1<<16; h++ {
		idx[h] = int32(len(addrs))
	}
	return idx
}
