package reuseapi

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Snapshot is the immutable compiled form of a Dataset: everything the
// request handlers need, computed once at build (or Update) time so the hot
// paths never sort, hash-probe per prefix length, or render a body under a
// request. Lookups run against a sorted address array (binary search) and a
// compiled longest-prefix-match trie; the full-body endpoints serve
// precomputed bytes with strong ETags and a pre-gzipped variant.
//
// A Snapshot is never mutated after Compile returns, so the Server can hand
// the same pointer to any number of concurrent requests and swap datasets
// with a single atomic store.
type Snapshot struct {
	generated time.Time

	// NAT lookup: natAddrs is sorted ascending, natUsers is parallel.
	natAddrs []iputil.Addr
	natUsers []int
	maxUsers int
	// nat16, when built, buckets natAddrs by the top 16 address bits:
	// nat16[h] is the first index whose address has high half >= h, so a
	// lookup binary-searches only its own (typically 0–3 entry) bucket
	// instead of cache-missing across the whole array.
	nat16 []int32

	// Dynamic-prefix lookup: a compiled trie answering longest-prefix
	// match in ≤32 node walks, plus the rendered form of each member so
	// the verdict encoder never calls Prefix.String per request.
	prefixes *iputil.Table[compiledPrefix]
	// sortedPrefixes is the trie's member list in render order (base, then
	// bits), retained so ApplyDelta can merge a successor list without
	// re-walking the trie.
	sortedPrefixes []iputil.Prefix
	nDynamic       int

	list      precomputedBody
	prefixesB precomputedBody
	stats     precomputedBody
}

// compiledPrefix is a trie value: the prefix plus its pre-rendered CIDR text.
type compiledPrefix struct {
	cidr string
}

// precomputedBody is one endpoint's response, rendered at compile time.
//
// The body is assembled from ordered segments, each compressed as an
// independent gzip member (a gzip stream is a concatenation of members, and
// both Go's gzip.Reader and browsers decode multistream bodies
// transparently). Segments are retained so ApplyDelta can re-render and
// recompress only the segments a delta touches and splice the cached members
// of the rest — compression is what dominates Compile, so this is what makes
// a delta reload cheap.
type precomputedBody struct {
	body []byte
	gz   []byte        // concatenated gzip members of body; nil when gzip would not help
	etag string        // strong ETag, quoted
	segs []bodySegment // ordered segments body/gz were assembled from
}

// bodySegment is one independently compressed slice of an endpoint body:
// the header line (key segKeyHeader), the whole line run of a small body
// (key segKeyWhole), or the run of lines whose address top byte is key.
// Top-byte runs are contiguous in both render orders (addresses sort
// ascending; prefixes sort by base then bits), so segment order is simply
// ascending key.
type bodySegment struct {
	key  int
	body []byte
	gz   []byte // this segment's gzip member; filled by precomputeSegments
}

const (
	segKeyHeader = -1
	segKeyWhole  = -2
)

// Per-top-byte segmentation only pays once the body is large: every gzip
// member costs ~20 bytes of framing and loses the cross-segment dictionary,
// so below these line counts the whole body compresses as a single member
// (byte-identical to the pre-segmentation compiler). The layout rule is a
// pure function of the line count, so a delta compile and a full compile of
// the same data always pick the same layout.
const (
	listSegMin   = 4096
	prefixSegMin = 512
)

// Compile builds the snapshot for data. data must already be normalized.
func Compile(data *Dataset) *Snapshot {
	s := &Snapshot{generated: data.Generated}

	s.natAddrs = make([]iputil.Addr, 0, len(data.NATUsers))
	for a := range data.NATUsers {
		s.natAddrs = append(s.natAddrs, a)
	}
	sort.Slice(s.natAddrs, func(i, j int) bool { return s.natAddrs[i] < s.natAddrs[j] })
	s.natUsers = make([]int, len(s.natAddrs))
	for i, a := range s.natAddrs {
		u := data.NATUsers[a]
		s.natUsers[i] = u
		if u > s.maxUsers {
			s.maxUsers = u
		}
	}

	// Index the high halves once the array is big enough that a whole-array
	// binary search starts cache-missing; small datasets don't need it.
	if len(s.natAddrs) >= 1024 {
		s.nat16 = buildNAT16(s.natAddrs)
	}

	s.prefixes = iputil.NewTable[compiledPrefix]()
	s.sortedPrefixes = data.DynamicPrefixes.Sorted()
	s.nDynamic = len(s.sortedPrefixes)
	for _, p := range s.sortedPrefixes {
		s.prefixes.Insert(p, compiledPrefix{cidr: p.String()})
	}

	s.list = precomputeSegments(renderListSegments(s.generated, s.natAddrs))
	s.prefixesB = precomputeSegments(renderPrefixesSegments(s.generated, s.sortedPrefixes))
	s.stats = precomputeSegments([]bodySegment{{key: segKeyWhole, body: renderStats(s)}})
	return s
}

// renderListSegments produces the /v1/list body split at address top-byte
// boundaries. Concatenated, the segments are byte-identical to what the
// pre-snapshot server rendered per request with blocklist.WritePlain
// ("# header\n" then one dotted quad per line in ascending order).
func renderListSegments(generated time.Time, sorted []iputil.Addr) []bodySegment {
	segs := []bodySegment{{key: segKeyHeader, body: []byte(fmt.Sprintf(
		"# NATed reused addresses, generated %s\n", generated.UTC().Format(time.RFC3339)))}}
	if len(sorted) == 0 {
		return segs
	}
	if len(sorted) < listSegMin {
		return append(segs, bodySegment{key: segKeyWhole, body: renderAddrRun(sorted)})
	}
	for i := 0; i < len(sorted); {
		top := int(sorted[i] >> 24)
		j := i
		for j < len(sorted) && int(sorted[j]>>24) == top {
			j++
		}
		segs = append(segs, bodySegment{key: top, body: renderAddrRun(sorted[i:j])})
		i = j
	}
	return segs
}

// renderAddrRun renders one address per line, WritePlain-style.
func renderAddrRun(addrs []iputil.Addr) []byte {
	buf := make([]byte, 0, len(addrs)*16)
	for _, a := range addrs {
		buf = appendAddr(buf, a)
		buf = append(buf, '\n')
	}
	return buf
}

// renderPrefixesSegments produces the /v1/prefixes body split at base-address
// top-byte boundaries; PrefixSet.Sorted orders by base then bits, so each
// top byte's prefixes form one contiguous run.
func renderPrefixesSegments(generated time.Time, sorted []iputil.Prefix) []bodySegment {
	segs := []bodySegment{{key: segKeyHeader, body: []byte(fmt.Sprintf(
		"# dynamic prefixes, generated %s\n", generated.UTC().Format(time.RFC3339)))}}
	if len(sorted) == 0 {
		return segs
	}
	if len(sorted) < prefixSegMin {
		return append(segs, bodySegment{key: segKeyWhole, body: renderPrefixRun(sorted)})
	}
	for i := 0; i < len(sorted); {
		top := int(sorted[i].Base() >> 24)
		j := i
		for j < len(sorted) && int(sorted[j].Base()>>24) == top {
			j++
		}
		segs = append(segs, bodySegment{key: top, body: renderPrefixRun(sorted[i:j])})
		i = j
	}
	return segs
}

// renderPrefixRun renders one CIDR per line.
func renderPrefixRun(ps []iputil.Prefix) []byte {
	var buf bytes.Buffer
	for _, p := range ps {
		fmt.Fprintln(&buf, p)
	}
	return buf.Bytes()
}

// renderStats produces the /v1/stats body (JSON object plus the trailing
// newline json.Encoder emits).
func renderStats(s *Snapshot) []byte {
	st := Stats{
		NATedAddresses:  len(s.natAddrs),
		DynamicPrefixes: s.nDynamic,
		MaxUsers:        s.maxUsers,
		Generated:       s.generated,
	}
	st.Empty = st.NATedAddresses == 0 && st.DynamicPrefixes == 0
	return encodeJSONLine(st)
}

// precomputeSegments assembles segments into a served body: any segment
// without a cached gzip member is compressed (a full Compile compresses all
// of them; ApplyDelta only the touched ones), the segment bodies and members
// are concatenated, and the ETag is derived from the assembled bytes. Since
// every member is compressed independently with the same settings, the same
// segment content yields the same bytes whichever path built it — that is
// the delta-equivalence guarantee.
func precomputeSegments(segs []bodySegment) precomputedBody {
	nBody, nGz := 0, 0
	for i := range segs {
		if segs[i].gz == nil {
			segs[i].gz = gzipMember(segs[i].body)
		}
		nBody += len(segs[i].body)
		nGz += len(segs[i].gz)
	}
	body := make([]byte, 0, nBody)
	gz := make([]byte, 0, nGz)
	for i := range segs {
		body = append(body, segs[i].body...)
		gz = append(gz, segs[i].gz...)
	}
	sum := sha256.Sum256(body)
	pb := precomputedBody{
		body: body,
		etag: `"` + hex.EncodeToString(sum[:16]) + `"`,
		segs: segs,
	}
	// Only keep the compressed variant when it actually saves bytes;
	// tiny bodies gzip larger than they start.
	if len(gz) < len(body) {
		pb.gz = gz
	}
	return pb
}

// gzipMember compresses b as one complete gzip member.
func gzipMember(b []byte) []byte {
	var gz bytes.Buffer
	w, _ := gzip.NewWriterLevel(&gz, gzip.BestCompression)
	_, _ = w.Write(b)
	_ = w.Close()
	return gz.Bytes()
}

// Precomputed is the exported view of one endpoint's compiled response, for
// tests pinning the delta-compile equivalence byte-for-byte.
type Precomputed struct {
	Body []byte
	Gzip []byte // nil when the identity body is served uncompressed only
	ETag string
}

// PrecomputedBodies returns the full-body endpoints' compiled artifacts
// keyed by endpoint name ("list", "prefixes", "stats").
func (s *Snapshot) PrecomputedBodies() map[string]Precomputed {
	out := make(map[string]Precomputed, 3)
	for name, pb := range map[string]precomputedBody{
		"list": s.list, "prefixes": s.prefixesB, "stats": s.stats,
	} {
		out[name] = Precomputed{Body: pb.body, Gzip: pb.gz, ETag: pb.etag}
	}
	return out
}

// NATedAddresses returns the number of served NATed addresses.
func (s *Snapshot) NATedAddresses() int { return len(s.natAddrs) }

// DynamicPrefixes returns the number of served dynamic prefixes.
func (s *Snapshot) DynamicPrefixes() int { return s.nDynamic }

// Generated returns the dataset build time.
func (s *Snapshot) Generated() time.Time { return s.generated }

// lookupNAT binary-searches the sorted address array, narrowed to the
// address's /16 bucket when the nat16 index was built.
func (s *Snapshot) lookupNAT(a iputil.Addr) (users int, ok bool) {
	lo, hi := 0, len(s.natAddrs)
	if s.nat16 != nil {
		lo, hi = int(s.nat16[a>>16]), int(s.nat16[a>>16+1])
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.natAddrs[mid] < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.natAddrs) && s.natAddrs[lo] == a {
		return s.natUsers[lo], true
	}
	return 0, false
}

// Advice strings mirror the paper's Section 6 guidance; they are constants so
// the verdict encoder can append them without allocation.
const (
	adviceNATed   = "shared address: prefer greylisting/challenges over hard blocking (except DDoS)"
	adviceDynamic = "dynamically allocated: listing likely outlives the abuser; use short TTLs or greylisting"
	adviceClean   = "no reuse evidence: standard blocklist handling applies"
)

// Verdict computes the check answer for addr — the reference form used by
// the batch endpoint and by tests; the single-check hot path uses
// appendVerdict to produce the same bytes without allocating.
func (s *Snapshot) Verdict(addr iputil.Addr) Verdict {
	v := Verdict{IP: addr.String()}
	if users, ok := s.lookupNAT(addr); ok {
		v.Reused, v.NATed, v.Users = true, true, users
	}
	if cp, ok := s.prefixes.Lookup(addr); ok {
		v.Reused, v.Dynamic, v.Prefix = true, true, cp.cidr
	}
	switch {
	case v.NATed:
		v.Advice = adviceNATed
	case v.Dynamic:
		v.Advice = adviceDynamic
	default:
		v.Advice = adviceClean
	}
	return v
}

// appendVerdict appends the JSON encoding of the verdict for addr to buf,
// byte-identical to encoding/json of Verdict followed by the '\n' that
// json.Encoder emits. Everything appended is either a constant, a digit run,
// or a pre-rendered CIDR string, so the append never escapes and never
// allocates beyond buf growth (which a pooled buffer amortises to zero).
func (s *Snapshot) appendVerdict(buf []byte, addr iputil.Addr) []byte {
	users, nated := s.lookupNAT(addr)
	cp, dynamic := s.prefixes.Lookup(addr)

	buf = append(buf, `{"ip":"`...)
	buf = appendAddr(buf, addr)
	buf = append(buf, `","reused":`...)
	buf = strconv.AppendBool(buf, nated || dynamic)
	buf = append(buf, `,"nated":`...)
	buf = strconv.AppendBool(buf, nated)
	buf = append(buf, `,"dynamic":`...)
	buf = strconv.AppendBool(buf, dynamic)
	if nated && users != 0 {
		buf = append(buf, `,"users":`...)
		buf = strconv.AppendInt(buf, int64(users), 10)
	}
	if dynamic {
		buf = append(buf, `,"prefix":"`...)
		buf = append(buf, cp.cidr...)
		buf = append(buf, '"')
	}
	buf = append(buf, `,"advice":"`...)
	switch {
	case nated:
		buf = append(buf, adviceNATed...)
	case dynamic:
		buf = append(buf, adviceDynamic...)
	default:
		buf = append(buf, adviceClean...)
	}
	buf = append(buf, '"', '}', '\n')
	return buf
}

// appendAddr appends dotted-quad notation without allocating.
func appendAddr(buf []byte, a iputil.Addr) []byte {
	buf = strconv.AppendUint(buf, uint64(a>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>16&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>8&0xff), 10)
	buf = append(buf, '.')
	return strconv.AppendUint(buf, uint64(a&0xff), 10)
}

// verdictBufPool recycles the per-request verdict buffers so the check hot
// path allocates nothing in steady state.
var verdictBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}
