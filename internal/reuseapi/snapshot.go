package reuseapi

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Snapshot is the immutable compiled form of a Dataset: everything the
// request handlers need, computed once at build (or Update) time so the hot
// paths never sort, hash-probe per prefix length, or render a body under a
// request. Lookups run against a sorted address array (binary search) and a
// compiled longest-prefix-match trie; the full-body endpoints serve
// precomputed bytes with strong ETags and a pre-gzipped variant.
//
// A Snapshot is never mutated after Compile returns, so the Server can hand
// the same pointer to any number of concurrent requests and swap datasets
// with a single atomic store.
type Snapshot struct {
	generated time.Time

	// NAT lookup: natAddrs is sorted ascending, natUsers is parallel.
	natAddrs []iputil.Addr
	natUsers []int
	maxUsers int
	// nat16, when built, buckets natAddrs by the top 16 address bits:
	// nat16[h] is the first index whose address has high half >= h, so a
	// lookup binary-searches only its own (typically 0–3 entry) bucket
	// instead of cache-missing across the whole array.
	nat16 []int32

	// Dynamic-prefix lookup: a compiled trie answering longest-prefix
	// match in ≤32 node walks, plus the rendered form of each member so
	// the verdict encoder never calls Prefix.String per request.
	prefixes *iputil.Table[compiledPrefix]
	nDynamic int

	list      precomputedBody
	prefixesB precomputedBody
	stats     precomputedBody
}

// compiledPrefix is a trie value: the prefix plus its pre-rendered CIDR text.
type compiledPrefix struct {
	cidr string
}

// precomputedBody is one endpoint's response, rendered at compile time.
type precomputedBody struct {
	body []byte
	gz   []byte // gzip of body; nil when gzip would not help
	etag string // strong ETag, quoted
}

// Compile builds the snapshot for data. data must already be normalized.
func Compile(data *Dataset) *Snapshot {
	s := &Snapshot{generated: data.Generated}

	s.natAddrs = make([]iputil.Addr, 0, len(data.NATUsers))
	for a := range data.NATUsers {
		s.natAddrs = append(s.natAddrs, a)
	}
	sort.Slice(s.natAddrs, func(i, j int) bool { return s.natAddrs[i] < s.natAddrs[j] })
	s.natUsers = make([]int, len(s.natAddrs))
	for i, a := range s.natAddrs {
		u := data.NATUsers[a]
		s.natUsers[i] = u
		if u > s.maxUsers {
			s.maxUsers = u
		}
	}

	// Index the high halves once the array is big enough that a whole-array
	// binary search starts cache-missing; small datasets don't need it.
	if len(s.natAddrs) >= 1024 {
		s.nat16 = make([]int32, 1<<16+1)
		h := 0
		for i, a := range s.natAddrs {
			for top := int(a >> 16); h <= top; h++ {
				s.nat16[h] = int32(i)
			}
		}
		for ; h <= 1<<16; h++ {
			s.nat16[h] = int32(len(s.natAddrs))
		}
	}

	s.prefixes = iputil.NewTable[compiledPrefix]()
	sortedPrefixes := data.DynamicPrefixes.Sorted()
	s.nDynamic = len(sortedPrefixes)
	for _, p := range sortedPrefixes {
		s.prefixes.Insert(p, compiledPrefix{cidr: p.String()})
	}

	s.list = precompute(renderList(data, s.natAddrs))
	s.prefixesB = precompute(renderPrefixes(data, sortedPrefixes))
	s.stats = precompute(renderStats(s))
	return s
}

// renderList produces the /v1/list body — byte-identical to what the
// pre-snapshot server rendered per request with blocklist.WritePlain.
func renderList(data *Dataset, sorted []iputil.Addr) []byte {
	var buf bytes.Buffer
	set := iputil.NewSet()
	for _, a := range sorted {
		set.Add(a)
	}
	_ = blocklist.WritePlain(&buf, set,
		fmt.Sprintf("NATed reused addresses, generated %s", data.Generated.UTC().Format(time.RFC3339)))
	return buf.Bytes()
}

// renderPrefixes produces the /v1/prefixes body.
func renderPrefixes(data *Dataset, sorted []iputil.Prefix) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "# dynamic prefixes, generated %s\n", data.Generated.UTC().Format(time.RFC3339))
	for _, p := range sorted {
		fmt.Fprintln(&buf, p)
	}
	return buf.Bytes()
}

// renderStats produces the /v1/stats body (JSON object plus the trailing
// newline json.Encoder emits).
func renderStats(s *Snapshot) []byte {
	st := Stats{
		NATedAddresses:  len(s.natAddrs),
		DynamicPrefixes: s.nDynamic,
		MaxUsers:        s.maxUsers,
		Generated:       s.generated,
	}
	st.Empty = st.NATedAddresses == 0 && st.DynamicPrefixes == 0
	return encodeJSONLine(st)
}

// precompute derives the ETag and gzip variant for a rendered body.
func precompute(body []byte) precomputedBody {
	sum := sha256.Sum256(body)
	pb := precomputedBody{
		body: body,
		etag: `"` + hex.EncodeToString(sum[:16]) + `"`,
	}
	var gz bytes.Buffer
	w, _ := gzip.NewWriterLevel(&gz, gzip.BestCompression)
	_, _ = w.Write(body)
	_ = w.Close()
	// Only keep the compressed variant when it actually saves bytes;
	// tiny bodies gzip larger than they start.
	if gz.Len() < len(body) {
		pb.gz = gz.Bytes()
	}
	return pb
}

// NATedAddresses returns the number of served NATed addresses.
func (s *Snapshot) NATedAddresses() int { return len(s.natAddrs) }

// DynamicPrefixes returns the number of served dynamic prefixes.
func (s *Snapshot) DynamicPrefixes() int { return s.nDynamic }

// Generated returns the dataset build time.
func (s *Snapshot) Generated() time.Time { return s.generated }

// lookupNAT binary-searches the sorted address array, narrowed to the
// address's /16 bucket when the nat16 index was built.
func (s *Snapshot) lookupNAT(a iputil.Addr) (users int, ok bool) {
	lo, hi := 0, len(s.natAddrs)
	if s.nat16 != nil {
		lo, hi = int(s.nat16[a>>16]), int(s.nat16[a>>16+1])
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.natAddrs[mid] < a {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.natAddrs) && s.natAddrs[lo] == a {
		return s.natUsers[lo], true
	}
	return 0, false
}

// Advice strings mirror the paper's Section 6 guidance; they are constants so
// the verdict encoder can append them without allocation.
const (
	adviceNATed   = "shared address: prefer greylisting/challenges over hard blocking (except DDoS)"
	adviceDynamic = "dynamically allocated: listing likely outlives the abuser; use short TTLs or greylisting"
	adviceClean   = "no reuse evidence: standard blocklist handling applies"
)

// Verdict computes the check answer for addr — the reference form used by
// the batch endpoint and by tests; the single-check hot path uses
// appendVerdict to produce the same bytes without allocating.
func (s *Snapshot) Verdict(addr iputil.Addr) Verdict {
	v := Verdict{IP: addr.String()}
	if users, ok := s.lookupNAT(addr); ok {
		v.Reused, v.NATed, v.Users = true, true, users
	}
	if cp, ok := s.prefixes.Lookup(addr); ok {
		v.Reused, v.Dynamic, v.Prefix = true, true, cp.cidr
	}
	switch {
	case v.NATed:
		v.Advice = adviceNATed
	case v.Dynamic:
		v.Advice = adviceDynamic
	default:
		v.Advice = adviceClean
	}
	return v
}

// appendVerdict appends the JSON encoding of the verdict for addr to buf,
// byte-identical to encoding/json of Verdict followed by the '\n' that
// json.Encoder emits. Everything appended is either a constant, a digit run,
// or a pre-rendered CIDR string, so the append never escapes and never
// allocates beyond buf growth (which a pooled buffer amortises to zero).
func (s *Snapshot) appendVerdict(buf []byte, addr iputil.Addr) []byte {
	users, nated := s.lookupNAT(addr)
	cp, dynamic := s.prefixes.Lookup(addr)

	buf = append(buf, `{"ip":"`...)
	buf = appendAddr(buf, addr)
	buf = append(buf, `","reused":`...)
	buf = strconv.AppendBool(buf, nated || dynamic)
	buf = append(buf, `,"nated":`...)
	buf = strconv.AppendBool(buf, nated)
	buf = append(buf, `,"dynamic":`...)
	buf = strconv.AppendBool(buf, dynamic)
	if nated && users != 0 {
		buf = append(buf, `,"users":`...)
		buf = strconv.AppendInt(buf, int64(users), 10)
	}
	if dynamic {
		buf = append(buf, `,"prefix":"`...)
		buf = append(buf, cp.cidr...)
		buf = append(buf, '"')
	}
	buf = append(buf, `,"advice":"`...)
	switch {
	case nated:
		buf = append(buf, adviceNATed...)
	case dynamic:
		buf = append(buf, adviceDynamic...)
	default:
		buf = append(buf, adviceClean...)
	}
	buf = append(buf, '"', '}', '\n')
	return buf
}

// appendAddr appends dotted-quad notation without allocating.
func appendAddr(buf []byte, a iputil.Addr) []byte {
	buf = strconv.AppendUint(buf, uint64(a>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>16&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>8&0xff), 10)
	buf = append(buf, '.')
	return strconv.AppendUint(buf, uint64(a&0xff), 10)
}

// verdictBufPool recycles the per-request verdict buffers so the check hot
// path allocates nothing in steady state.
var verdictBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}
