package reuseapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/greylist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/shed"
)

// TestAcceptsGzipQualities pins the RFC 9110 qvalue handling: a zero weight
// in any of its spellings is a refusal, anything else (absent, positive,
// malformed) accepts. The q=0.0 case is the regression: it used to be read
// as acceptance because only the literal "q=0" was recognised as zero.
func TestAcceptsGzipQualities(t *testing.T) {
	cases := []struct {
		header string
		want   bool
	}{
		{"", false},
		{"identity", false},
		{"gzip", true},
		{"gzip, deflate, br", true},
		{"deflate, gzip", true},
		{"*", true},
		{"gzip;q=1", true},
		{"gzip;q=0.5", true},
		{"gzip; q=0.5", true},
		{"gzip;q=0", false},
		{"gzip;q=0.0", false},
		{"gzip;q=0.00", false},
		{"gzip;q=0.000", false},
		{"gzip; q=0.0", false},
		{"gzip;Q=0", false},
		{"*;q=0", false},
		{"gzip;q=0.001", true},
		{"gzip;q=0.010", true},
		{"gzip;q=junk", true}, // malformed weight: default weight 1 applies
		{"identity;q=0, gzip;q=0.0", false},
		{"identity;q=0, gzip;q=0.2", true},
	}
	for _, tc := range cases {
		r := httptest.NewRequest("GET", "/v1/list", nil)
		if tc.header != "" {
			r.Header.Set("Accept-Encoding", tc.header)
		}
		if got := acceptsGzip(r); got != tc.want {
			t.Errorf("acceptsGzip(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

// TestGzipRefusalServesIdentity drives the q=0.0 fix through the handler: a
// client refusing gzip must get the identity body even though a gzip variant
// is precomputed.
func TestGzipRefusalServesIdentity(t *testing.T) {
	srv := NewServer(goldenDataset(3, 800, 40))
	h := srv.Handler()
	for _, header := range []string{"gzip;q=0.0", "gzip;q=0", "*;q=0"} {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("GET", "/v1/list", nil)
		req.Header.Set("Accept-Encoding", header)
		h.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("Accept-Encoding %q: status %d", header, rec.Code)
		}
		if ce := rec.Header().Get("Content-Encoding"); ce != "" {
			t.Errorf("Accept-Encoding %q answered Content-Encoding %q, want identity", header, ce)
		}
		if !strings.HasPrefix(rec.Body.String(), "# NATed reused addresses") {
			t.Errorf("Accept-Encoding %q body is not the plain list", header)
		}
	}
}

// TestVaryOnPrecomputedEndpoints pins Vary: Accept-Encoding on every
// response shape of the content-negotiated endpoints: identity 200, gzip
// 200, and 304 — a shared cache must never serve the gzip variant to a
// client that didn't ask for it, and RFC 9110 requires Vary on 304 too.
func TestVaryOnPrecomputedEndpoints(t *testing.T) {
	srv := NewServer(goldenDataset(3, 800, 40))
	h := srv.Handler()
	for _, path := range []string{"/v1/list", "/v1/prefixes"} {
		// Identity 200.
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 || rec.Header().Get("Vary") != "Accept-Encoding" {
			t.Errorf("%s identity: status %d Vary %q", path, rec.Code, rec.Header().Get("Vary"))
		}
		etag := rec.Header().Get("ETag")

		// Gzip 200.
		rec = httptest.NewRecorder()
		req := httptest.NewRequest("GET", path, nil)
		req.Header.Set("Accept-Encoding", "gzip")
		h.ServeHTTP(rec, req)
		if rec.Code != 200 || rec.Header().Get("Vary") != "Accept-Encoding" {
			t.Errorf("%s gzip: status %d Vary %q", path, rec.Code, rec.Header().Get("Vary"))
		}

		// 304.
		rec = httptest.NewRecorder()
		req = httptest.NewRequest("GET", path, nil)
		req.Header.Set("If-None-Match", etag)
		h.ServeHTTP(rec, req)
		if rec.Code != 304 || rec.Header().Get("Vary") != "Accept-Encoding" {
			t.Errorf("%s 304: status %d Vary %q", path, rec.Code, rec.Header().Get("Vary"))
		}
	}
}

// TestVaryOnDegradedList covers the degraded twin of servePrecomputed: the
// load-shedding serving path negotiates encodings too, so it needs the same
// Vary header.
func TestVaryOnDegradedList(t *testing.T) {
	srv := NewServer(goldenDataset(3, 800, 40))
	ctrl := shed.New(shed.Config{DegradeAfter: time.Millisecond, RecoverAfter: time.Hour}, nil)
	srv.Shed = ctrl
	ctrl.SetReloadFailed(true) // force degraded mode
	h := srv.Handler()

	// Degraded serving is gzip-only (identity clients are shed), so the
	// negotiated shapes are the gzip 200 and the 304.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/list", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	h.ServeHTTP(rec, req)
	if rec.Code != 200 || rec.Header().Get("Vary") != "Accept-Encoding" {
		t.Errorf("degraded gzip list: status %d Vary %q", rec.Code, rec.Header().Get("Vary"))
	}
	etag := rec.Header().Get("ETag")

	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/v1/list", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	req.Header.Set("If-None-Match", etag)
	h.ServeHTTP(rec, req)
	if rec.Code != 304 || rec.Header().Get("Vary") != "Accept-Encoding" {
		t.Errorf("degraded 304: status %d Vary %q", rec.Code, rec.Header().Get("Vary"))
	}
}

// TestGreylistEndpoint pins the /v1/greylist answer shapes against the
// in-process greylist.Config.Recommend reference: tempfail with windows and
// expiry for reused addresses, bare block for clean space.
func TestGreylistEndpoint(t *testing.T) {
	d := &Dataset{
		NATUsers:        map[iputil.Addr]int{mustParse(t, "203.0.113.7"): 12},
		DynamicPrefixes: iputil.NewPrefixSet(),
		Generated:       time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC),
	}
	d.DynamicPrefixes.Add(mustParsePrefix(t, "198.51.100.0/24"))
	srv := NewServer(d)
	srv.Greylist = greylist.Config{MinDelay: 2 * time.Minute, RetryWindow: 6 * time.Hour}
	now := time.Date(2026, 2, 2, 12, 0, 0, 0, time.UTC)
	srv.now = func() time.Time { return now }
	h := srv.Handler()

	get := func(ip string) (int, GreylistAnswer, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/greylist?ip="+ip, nil))
		var ans GreylistAnswer
		if rec.Code == 200 {
			if err := json.Unmarshal(rec.Body.Bytes(), &ans); err != nil {
				t.Fatalf("greylist(%s): %v", ip, err)
			}
		}
		return rec.Code, ans, rec.Body.String()
	}

	// NATed address: tempfail with the configured window.
	code, ans, body := get("203.0.113.7")
	if code != 200 || ans.Action != "tempfail" || !ans.Reused || !ans.NATed {
		t.Fatalf("nated greylist = %d %s", code, body)
	}
	if ans.MinDelaySeconds != 120 || ans.RetryWindowSeconds != 6*3600 {
		t.Errorf("nated window = %+v", ans)
	}
	if !ans.Expires.Equal(now.Add(6 * time.Hour)) {
		t.Errorf("nated expires = %v, want %v", ans.Expires, now.Add(6*time.Hour))
	}

	// Dynamic address: also reused, also tempfail.
	if code, ans, body = get("198.51.100.200"); code != 200 || ans.Action != "tempfail" || !ans.Dynamic {
		t.Fatalf("dynamic greylist = %d %s", code, body)
	}

	// Clean address: block, no window, no expiry — and the omitzero fields
	// must be absent from the JSON.
	code, ans, body = get("192.0.2.1")
	if code != 200 || ans.Action != "block" || ans.Reused {
		t.Fatalf("clean greylist = %d %s", code, body)
	}
	if strings.Contains(body, "min_delay_seconds") || strings.Contains(body, "expires") {
		t.Errorf("block answer leaks window fields: %s", body)
	}

	// The handler must agree with the in-process reference.
	ref := srv.Greylist.Recommend(true, now)
	if _, ans, _ := get("203.0.113.7"); ans.Action != ref.Action.String() ||
		ans.RetryWindowSeconds != int64(ref.RetryWindow/time.Second) || !ans.Expires.Equal(ref.Expires) {
		t.Errorf("endpoint diverges from Config.Recommend: %+v vs %+v", ans, ref)
	}

	// Error shapes match /v1/check.
	for _, tc := range []struct {
		target string
		code   int
	}{
		{"/v1/greylist", 400},
		{"/v1/greylist?ip=not-an-ip", 400},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", tc.target, nil))
		if rec.Code != tc.code {
			t.Errorf("%s = %d, want %d", tc.target, rec.Code, tc.code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/greylist?ip=192.0.2.1", nil))
	if rec.Code != 405 {
		t.Errorf("POST /v1/greylist = %d, want 405", rec.Code)
	}
}

func mustParse(t *testing.T, s string) iputil.Addr {
	t.Helper()
	a, err := iputil.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func mustParsePrefix(t *testing.T, s string) iputil.Prefix {
	t.Helper()
	p, err := iputil.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// twoDatasetRegistry builds a registry with distinct datasets "alpha"
// (default) and "beta".
func twoDatasetRegistry(t *testing.T) (*Registry, *Server, *Server) {
	t.Helper()
	alpha := NewServer(&Dataset{
		NATUsers:        map[iputil.Addr]int{mustParse(t, "203.0.113.7"): 12},
		DynamicPrefixes: iputil.NewPrefixSet(),
		Generated:       time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC),
	})
	beta := NewServer(&Dataset{
		NATUsers: map[iputil.Addr]int{
			mustParse(t, "198.51.100.9"): 44,
			mustParse(t, "192.0.2.3"):    7,
		},
		DynamicPrefixes: iputil.NewPrefixSet(),
		Generated:       time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC),
	})
	g := NewRegistry()
	if err := g.Register("alpha", alpha); err != nil {
		t.Fatal(err)
	}
	if err := g.Register("beta", beta); err != nil {
		t.Fatal(err)
	}
	return g, alpha, beta
}

// TestRegistryRouting pins the multi-dataset dispatch: named routes answer
// per dataset, unknown names and endpoints 404 with JSON errors.
func TestRegistryRouting(t *testing.T) {
	g, _, _ := twoDatasetRegistry(t)
	h := g.Handler()

	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get("/v1/alpha/check?ip=203.0.113.7"); code != 200 || !strings.Contains(body, `"reused":true`) {
		t.Errorf("/v1/alpha/check = %d %s", code, body)
	}
	if code, body := get("/v1/beta/check?ip=203.0.113.7"); code != 200 || !strings.Contains(body, `"reused":false`) {
		t.Errorf("/v1/beta/check against alpha's address = %d %s", code, body)
	}
	if code, body := get("/v1/beta/stats"); code != 200 || !strings.Contains(body, `"nated_addresses":2`) {
		t.Errorf("/v1/beta/stats = %d %s", code, body)
	}
	if code, body := get("/v1/beta/greylist?ip=198.51.100.9"); code != 200 || !strings.Contains(body, `"action":"tempfail"`) {
		t.Errorf("/v1/beta/greylist = %d %s", code, body)
	}
	if code, body := get("/v1/gamma/stats"); code != 404 || !strings.Contains(body, "unknown dataset") {
		t.Errorf("/v1/gamma/stats = %d %s", code, body)
	}
	if code, body := get("/v1/alpha/nope"); code != 404 || !strings.Contains(body, "unknown endpoint") {
		t.Errorf("/v1/alpha/nope = %d %s", code, body)
	}
	if code, _ := get("/no-such-path"); code != 404 {
		t.Errorf("/no-such-path = %d", code)
	}
}

// TestRegistryUnprefixedAliasByteIdentity requires the unprefixed /v1/*
// routes of a registry to answer byte-for-byte what a plain single-dataset
// Server would — existing clients must not see the multi-dataset upgrade.
func TestRegistryUnprefixedAliasByteIdentity(t *testing.T) {
	d := goldenDataset(11, 600, 50)
	plain := NewServer(d)
	g := NewRegistry()
	if err := g.Register("main", NewServer(d)); err != nil {
		t.Fatal(err)
	}
	ph, gh := plain.Handler(), g.Handler()

	paths := []string{
		"/v1/check?ip=203.0.113.7",
		"/v1/list",
		"/v1/prefixes",
		"/v1/stats",
		"/v1/greylist?ip=203.0.113.7",
	}
	for _, path := range paths {
		for _, enc := range []string{"", "gzip"} {
			preq := httptest.NewRequest("GET", path, nil)
			greq := httptest.NewRequest("GET", path, nil)
			if enc != "" {
				preq.Header.Set("Accept-Encoding", enc)
				greq.Header.Set("Accept-Encoding", enc)
			}
			prec, grec := httptest.NewRecorder(), httptest.NewRecorder()
			ph.ServeHTTP(prec, preq)
			gh.ServeHTTP(grec, greq)
			if prec.Code != grec.Code || !bytes.Equal(prec.Body.Bytes(), grec.Body.Bytes()) {
				t.Errorf("%s (enc %q): registry answer diverges from plain server (%d vs %d)",
					path, enc, grec.Code, prec.Code)
			}
			if pe, ge := prec.Header().Get("ETag"), grec.Header().Get("ETag"); pe != ge {
				t.Errorf("%s: ETag %q vs %q", path, ge, pe)
			}
		}
	}
	// The named route serves the same bytes as the unprefixed alias too.
	nrec, urec := httptest.NewRecorder(), httptest.NewRecorder()
	gh.ServeHTTP(nrec, httptest.NewRequest("GET", "/v1/main/list", nil))
	gh.ServeHTTP(urec, httptest.NewRequest("GET", "/v1/list", nil))
	if !bytes.Equal(nrec.Body.Bytes(), urec.Body.Bytes()) {
		t.Error("/v1/main/list diverges from /v1/list")
	}
}

// TestRegistryValidation pins Register's name rules and Handler's
// preconditions.
func TestRegistryValidation(t *testing.T) {
	srv := NewServer(&Dataset{Generated: time.Unix(0, 0).UTC()})
	g := NewRegistry()
	for _, name := range []string{"", "check", "greylist", "UPPER", "sp ace", "sl/ash"} {
		if err := g.Register(name, srv); err == nil {
			t.Errorf("Register(%q) accepted, want error", name)
		}
	}
	if err := g.Register("ok-name_1.2", srv); err != nil {
		t.Errorf("Register(ok-name_1.2): %v", err)
	}
	if err := g.Register("ok-name_1.2", srv); err == nil {
		t.Error("duplicate Register accepted")
	}
	if got := g.DefaultName(); got != "ok-name_1.2" {
		t.Errorf("DefaultName = %q", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("empty registry Handler did not panic")
		}
	}()
	NewRegistry().Handler()
}

// TestRegistryPerDatasetMetrics requires request counters to carry the
// dataset label so one /metrics endpoint separates the feeds.
func TestRegistryPerDatasetMetrics(t *testing.T) {
	g, alpha, beta := twoDatasetRegistry(t)
	reg := obs.NewRegistry()
	alpha.Obs = reg
	beta.Obs = reg
	g.Obs = reg
	h := g.Handler()

	for _, path := range []string{"/v1/alpha/check?ip=192.0.2.1", "/v1/beta/check?ip=192.0.2.1", "/v1/check?ip=192.0.2.1"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Fatalf("%s = %d", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	metrics, _ := io.ReadAll(rec.Body)
	// Both named routes and the unprefixed alias land on the same labelled
	// counter: the alias IS the default dataset, so alpha counts 2.
	if !strings.Contains(string(metrics),
		`wall_api_requests_total{dataset="alpha",endpoint="check"} 2`) {
		t.Errorf("alpha counter missing or wrong:\n%s", metrics)
	}
	if !strings.Contains(string(metrics),
		`wall_api_requests_total{dataset="beta",endpoint="check"} 1`) {
		t.Errorf("beta counter missing or wrong:\n%s", metrics)
	}
}

// TestRegistryReadyzAggregates pins the fleet-readiness contract: one
// degraded dataset flips the whole replica to 503 and is named in the body.
func TestRegistryReadyzAggregates(t *testing.T) {
	g, alpha, beta := twoDatasetRegistry(t)
	alpha.Shed = shed.New(shed.Config{Dataset: "alpha", RecoverAfter: 5 * time.Millisecond}, nil)
	beta.Shed = shed.New(shed.Config{Dataset: "beta", RecoverAfter: 5 * time.Millisecond}, nil)
	h := g.Handler()

	get := func(path string) (int, string, http.Header) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String(), rec.Header()
	}
	if code, body, _ := get("/readyz"); code != 200 || !strings.Contains(body, `"normal"`) {
		t.Fatalf("fresh /readyz = %d %s", code, body)
	}
	if code, body, _ := get("/healthz"); code != 200 || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz = %d %s", code, body)
	}

	beta.Shed.SetReloadFailed(true)
	code, body, hdr := get("/readyz")
	if code != 503 || !strings.Contains(body, `"degraded_datasets":["beta"]`) {
		t.Fatalf("degraded /readyz = %d %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("degraded /readyz missing Retry-After")
	}

	// Heal and poll: recovery waits out the calm window.
	beta.Shed.SetReloadFailed(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body, _ = get("/readyz")
		if code == 200 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code != 200 || !strings.Contains(body, `"normal"`) {
		t.Fatalf("recovered /readyz = %d %s", code, body)
	}
}
