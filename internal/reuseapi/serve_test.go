package reuseapi

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// goldenDataset builds a deterministic mixed dataset: NATed addresses with
// varied user counts and dynamic prefixes of several lengths, including
// nested ones so longest-prefix match is actually exercised.
func goldenDataset(seed int64, nAddrs, nPrefixes int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{
		NATUsers:        map[iputil.Addr]int{},
		DynamicPrefixes: iputil.NewPrefixSet(),
		Generated:       time.Date(2020, 5, 11, 0, 0, 0, 0, time.UTC),
	}
	for i := 0; i < nAddrs; i++ {
		d.NATUsers[iputil.Addr(rng.Uint32())] = 2 + rng.Intn(500)
	}
	for i := 0; i < nPrefixes; i++ {
		p := iputil.PrefixFrom(iputil.Addr(rng.Uint32()), 8+rng.Intn(25))
		d.DynamicPrefixes.Add(p)
		// Nest a longer prefix inside every fourth one.
		if i%4 == 0 && p.Bits() <= 24 {
			d.DynamicPrefixes.Add(iputil.PrefixFrom(p.Base(), p.Bits()+4))
		}
	}
	return d
}

// sampleAddrs draws lookup targets that hit NAT entries, dynamic prefixes,
// and clean space.
func sampleAddrs(d *Dataset, rng *rand.Rand, n int) []iputil.Addr {
	var out []iputil.Addr
	nated := d.SortedNATed()
	prefixes := d.DynamicPrefixes.Sorted()
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			if len(nated) > 0 {
				out = append(out, nated[rng.Intn(len(nated))])
				continue
			}
			fallthrough
		case 1:
			if len(prefixes) > 0 {
				p := prefixes[rng.Intn(len(prefixes))]
				out = append(out, p.Nth(rng.Intn(p.Size())))
				continue
			}
			fallthrough
		default:
			out = append(out, iputil.Addr(rng.Uint32()))
		}
	}
	return out
}

// TestVerdictEncodingMatchesJSON pins the zero-allocation encoder against
// encoding/json over the reference Dataset.Verdict: the snapshot hot path
// must produce byte-for-byte what the pre-snapshot server produced with
// json.Encoder.
func TestVerdictEncodingMatchesJSON(t *testing.T) {
	d := goldenDataset(42, 400, 60)
	snap := Compile(normalize(d))
	rng := rand.New(rand.NewSource(7))
	for _, addr := range sampleAddrs(d, rng, 3000) {
		ref := d.Verdict(addr)
		want, err := json.Marshal(ref)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, '\n')
		got := snap.appendVerdict(nil, addr)
		if !bytes.Equal(got, want) {
			t.Fatalf("appendVerdict(%v) = %q, want %q", addr, got, want)
		}
		if sv := snap.Verdict(addr); sv != ref {
			t.Fatalf("snapshot verdict %+v != dataset verdict %+v", sv, ref)
		}
	}
}

// TestGoldenEndpointBytes re-renders every endpoint body the way the
// pre-snapshot server did — per request, from the raw dataset — and requires
// the compiled snapshot to serve identical bytes. The published artifact
// must not change under the refactor.
func TestGoldenEndpointBytes(t *testing.T) {
	d := goldenDataset(1, 500, 80)
	srv := NewServer(d)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Reference /v1/list: re-sort into a Set, WritePlain with the header.
	var wantList bytes.Buffer
	addrs := iputil.NewSet()
	for a := range d.NATUsers {
		addrs.Add(a)
	}
	_ = blocklist.WritePlain(&wantList, addrs,
		fmt.Sprintf("NATed reused addresses, generated %s", d.Generated.UTC().Format(time.RFC3339)))

	// Reference /v1/prefixes.
	var wantPrefixes bytes.Buffer
	fmt.Fprintf(&wantPrefixes, "# dynamic prefixes, generated %s\n", d.Generated.UTC().Format(time.RFC3339))
	for _, p := range d.DynamicPrefixes.Sorted() {
		fmt.Fprintln(&wantPrefixes, p)
	}

	// Reference /v1/stats.
	st := Stats{NATedAddresses: len(d.NATUsers), DynamicPrefixes: d.DynamicPrefixes.Len(), Generated: d.Generated}
	for _, u := range d.NATUsers {
		if u > st.MaxUsers {
			st.MaxUsers = u
		}
	}
	var wantStats bytes.Buffer
	_ = json.NewEncoder(&wantStats).Encode(st)

	for _, tc := range []struct {
		path string
		want []byte
	}{
		{"/v1/list", wantList.Bytes()},
		{"/v1/prefixes", wantPrefixes.Bytes()},
		{"/v1/stats", wantStats.Bytes()},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(got, tc.want) {
			t.Errorf("%s body diverged from the pre-snapshot rendering\ngot:  %q\nwant: %q",
				tc.path, truncate(got), truncate(tc.want))
		}
	}

	// Reference /v1/check bodies for a spread of addresses.
	rng := rand.New(rand.NewSource(3))
	for _, addr := range sampleAddrs(d, rng, 200) {
		resp, err := http.Get(ts.URL + "/v1/check?ip=" + addr.String())
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var wantBuf bytes.Buffer
		_ = json.NewEncoder(&wantBuf).Encode(d.Verdict(addr))
		if !bytes.Equal(got, wantBuf.Bytes()) {
			t.Fatalf("/v1/check?ip=%v = %q, want %q", addr, got, wantBuf.Bytes())
		}
	}
}

func truncate(b []byte) []byte {
	if len(b) > 200 {
		return b[:200]
	}
	return b
}

// TestCheckHotPathZeroAlloc pins the acceptance criterion: the per-request
// work of GET /v1/check — atomic snapshot load, NAT binary search, prefix
// trie walk, JSON append into the pooled buffer — allocates nothing in
// steady state. (The net/http layer's own per-request header/writer
// allocations are outside the dataset hot path and are not in scope here;
// the handler is driven with a reusable discard writer.)
func TestCheckHotPathZeroAlloc(t *testing.T) {
	d := goldenDataset(11, 1000, 100)
	srv := NewServer(d)
	addrs := []iputil.Addr{
		d.SortedNATed()[0],                   // NAT hit
		d.DynamicPrefixes.Sorted()[0].Nth(0), // dynamic hit
		iputil.MustParseAddr("192.0.2.1"),    // likely clean
	}
	var i int
	allocs := testing.AllocsPerRun(2000, func() {
		addr := addrs[i%len(addrs)]
		i++
		snap := srv.Snapshot()
		bufp := verdictBufPool.Get().(*[]byte)
		buf := snap.appendVerdict((*bufp)[:0], addr)
		if len(buf) == 0 {
			t.Fatal("empty verdict")
		}
		*bufp = buf[:0]
		verdictBufPool.Put(bufp)
	})
	if allocs != 0 {
		t.Errorf("check hot path allocates %.1f per run, want 0", allocs)
	}
}

// TestCheckHandlerAllocBound pins the full handler — routing, query parse,
// lookup, encode, header — at zero steady-state allocations with a reusable
// response writer: the Content-Type header is a shared package-level slice,
// not a per-request Header().Set allocation.
func TestCheckHandlerAllocBound(t *testing.T) {
	d := goldenDataset(12, 1000, 100)
	srv := NewServer(d)
	h := srv.Handler()
	req := httptest.NewRequest(http.MethodGet, "/v1/check?ip=203.0.113.9", nil)
	w := &discardResponseWriter{h: make(http.Header)}
	allocs := testing.AllocsPerRun(2000, func() { h.ServeHTTP(w, req) })
	if allocs != 0 {
		t.Errorf("full check handler allocates %.1f per run, want 0", allocs)
	}
}

type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header         { return d.h }
func (d *discardResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}

func TestBatchCheck(t *testing.T) {
	_, ts := testServer(t)
	body := `["100.64.0.1","10.9.0.200","8.8.8.8"]`
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var verdicts []Verdict
	if err := json.NewDecoder(resp.Body).Decode(&verdicts); err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 3 {
		t.Fatalf("batch returned %d verdicts, want 3", len(verdicts))
	}
	if !verdicts[0].NATed || verdicts[0].Users != 3 {
		t.Errorf("verdicts[0] = %+v", verdicts[0])
	}
	if !verdicts[1].Dynamic || verdicts[1].Prefix != "10.9.0.0/24" {
		t.Errorf("verdicts[1] = %+v", verdicts[1])
	}
	if verdicts[2].Reused {
		t.Errorf("verdicts[2] = %+v", verdicts[2])
	}
}

// TestBatchCheckMatchesSingle requires each batch verdict to be identical to
// the corresponding single-check answer.
func TestBatchCheckMatchesSingle(t *testing.T) {
	d := goldenDataset(5, 200, 30)
	srv := NewServer(d)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rng := rand.New(rand.NewSource(9))
	addrs := sampleAddrs(d, rng, 50)
	ips := make([]string, len(addrs))
	for i, a := range addrs {
		ips[i] = a.String()
	}
	body, _ := json.Marshal(ips)
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var verdicts []Verdict
	if err := json.NewDecoder(resp.Body).Decode(&verdicts); err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != len(addrs) {
		t.Fatalf("got %d verdicts, want %d", len(verdicts), len(addrs))
	}
	for i, a := range addrs {
		if want := d.Verdict(a); verdicts[i] != want {
			t.Errorf("batch[%d] = %+v, want %+v", i, verdicts[i], want)
		}
	}
}

func TestBatchCheckErrors(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct {
		name string
		body string
		code int
	}{
		{"not json", "banana", http.StatusBadRequest},
		{"not an array", `{"ip":"8.8.8.8"}`, http.StatusBadRequest},
		{"malformed ip", `["8.8.8.8","nope"]`, http.StatusBadRequest},
		{"empty array ok", `[]`, http.StatusOK},
	} {
		resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}

}

// TestBatchCheckLimitBoundary is the off-by-one regression test for the
// MaxBatchIPs guard: a batch of exactly MaxBatchIPs entries must succeed
// with a full verdict array, while one more entry is a protocol violation —
// a 400 whose body is the documented JSON Error shape naming the count.
func TestBatchCheckLimitBoundary(t *testing.T) {
	_, ts := testServer(t)

	exact := make([]string, MaxBatchIPs)
	for i := range exact {
		exact[i] = "8.8.8.8"
	}
	body, _ := json.Marshal(exact)
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var verdicts []Verdict
	err = json.NewDecoder(resp.Body).Decode(&verdicts)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || err != nil {
		t.Fatalf("batch of exactly MaxBatchIPs: status = %d, decode err = %v", resp.StatusCode, err)
	}
	if len(verdicts) != MaxBatchIPs {
		t.Fatalf("batch of exactly MaxBatchIPs returned %d verdicts", len(verdicts))
	}

	over := append(exact, "8.8.8.8")
	body, _ = json.Marshal(over)
	resp, err = http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("batch of MaxBatchIPs+1: status = %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("batch-limit error Content-Type = %q", ct)
	}
	var apiErr Error
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatalf("batch-limit error body is not the Error shape: %v", err)
	}
	if apiErr.Error == "" || !strings.Contains(apiErr.Detail, "10001") || !strings.Contains(apiErr.Detail, "10000") {
		t.Errorf("batch-limit error body = %+v, want the offending and allowed counts in detail", apiErr)
	}
}

func TestListETagAnd304(t *testing.T) {
	_, ts := testServer(t)
	for _, path := range []string{"/v1/list", "/v1/prefixes"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		etag := resp.Header.Get("ETag")
		if etag == "" || !strings.HasPrefix(etag, `"`) {
			t.Fatalf("%s: missing/unquoted ETag %q", path, etag)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty body", path)
		}

		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set("If-None-Match", etag)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		notMod, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("%s: If-None-Match status = %d, want 304", path, resp.StatusCode)
		}
		if len(notMod) != 0 {
			t.Errorf("%s: 304 carried a body (%d bytes)", path, len(notMod))
		}

		// A stale tag must get the full body again.
		req.Header.Set("If-None-Match", `"stale"`)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		again, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !bytes.Equal(again, body) {
			t.Errorf("%s: stale-tag refetch = %d (%d bytes)", path, resp.StatusCode, len(again))
		}
	}
}

func TestListGzipNegotiation(t *testing.T) {
	// A dataset big enough that gzip wins, so the compressed variant exists.
	d := goldenDataset(2, 2000, 100)
	srv := NewServer(d)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	plain, err := http.Get(ts.URL + "/v1/list")
	if err != nil {
		t.Fatal(err)
	}
	want, _ := io.ReadAll(plain.Body)
	plain.Body.Close()

	// Explicit gzip request (DisableCompression stops the transport from
	// transparently decoding, so we see the wire form).
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/list", nil)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("gzip round trip diverged: %d vs %d bytes", len(got), len(want))
	}

	// A refusal must get identity bytes.
	req.Header.Set("Accept-Encoding", "gzip;q=0")
	resp2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if enc := resp2.Header.Get("Content-Encoding"); enc != "" {
		t.Errorf("q=0 still got Content-Encoding %q", enc)
	}
	identity, _ := io.ReadAll(resp2.Body)
	if !bytes.Equal(identity, want) {
		t.Errorf("identity body diverged")
	}
}

// TestNilObsRequests pins the nil-registry contract on the serving path: a
// Server with no Obs set must answer every endpoint without panicking — the
// metric handles resolve to nil and every method on them is a no-op.
func TestNilObsRequests(t *testing.T) {
	srv := NewServer(&Dataset{
		NATUsers:  map[iputil.Addr]int{iputil.MustParseAddr("100.64.0.1"): 3},
		Generated: time.Unix(0, 0).UTC(),
	})
	if srv.Obs != nil {
		t.Fatal("test wants a nil registry")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/check?ip=100.64.0.1", "/v1/list", "/v1/prefixes", "/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s with nil Obs: status = %d", path, resp.StatusCode)
		}
	}
	// The batch path too.
	resp, err := http.Post(ts.URL+"/v1/check", "application/json", strings.NewReader(`["100.64.0.1"]`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("batch with nil Obs: status = %d", resp.StatusCode)
	}
}

// TestConcurrentUpdateAndChecks hammers the check and list endpoints while
// snapshots are swapped underneath — the race-detector workload for the
// atomic serving path. Every answer must be internally consistent with one
// of the two datasets; torn reads would mix them.
func TestConcurrentUpdateAndChecks(t *testing.T) {
	dA := &Dataset{
		NATUsers:  map[iputil.Addr]int{iputil.MustParseAddr("100.64.0.1"): 3},
		Generated: time.Date(2020, 5, 11, 0, 0, 0, 0, time.UTC),
	}
	dynB := iputil.NewPrefixSet()
	dynB.Add(iputil.MustParsePrefix("100.64.0.0/24"))
	dB := &Dataset{
		DynamicPrefixes: dynB,
		Generated:       time.Date(2021, 5, 11, 0, 0, 0, 0, time.UTC),
	}
	srv := NewServer(dA)
	handler := srv.Handler()

	wantA := string(Compile(normalize(dA)).appendVerdict(nil, iputil.MustParseAddr("100.64.0.1")))
	wantB := string(Compile(normalize(dB)).appendVerdict(nil, iputil.MustParseAddr("100.64.0.1")))

	const workers, perWorker = 8, 400
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/check?ip=100.64.0.1", nil))
				if body := rec.Body.String(); body != wantA && body != wantB {
					errs <- body
					return
				}
				rec = httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodGet, "/v1/list", nil)
				handler.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errs <- fmt.Sprintf("list status %d", rec.Code)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				srv.Update(dB)
			} else {
				srv.Update(dA)
			}
		}
	}()
	wg.Wait()
	<-done
	select {
	case bad := <-errs:
		t.Fatalf("torn or foreign verdict: %q\nwantA %q\nwantB %q", bad, wantA, wantB)
	default:
	}
}

// TestUpdateSwapsPrecomputedBodies verifies ETags move with the dataset.
func TestUpdateSwapsPrecomputedBodies(t *testing.T) {
	srv, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/list")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag1 := resp.Header.Get("ETag")

	srv.Update(&Dataset{
		NATUsers:  map[iputil.Addr]int{iputil.MustParseAddr("203.0.113.5"): 9},
		Generated: time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	resp, err = http.Get(ts.URL + "/v1/list")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if etag2 := resp.Header.Get("ETag"); etag2 == etag1 {
		t.Errorf("ETag did not change across Update: %q", etag2)
	}
	if !strings.Contains(string(body), "203.0.113.5") {
		t.Errorf("updated list = %q", body)
	}

	// The old tag must now miss.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/list", nil)
	req.Header.Set("If-None-Match", etag1)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stale tag after Update: status = %d, want 200", resp.StatusCode)
	}
}
