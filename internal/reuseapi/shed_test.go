package reuseapi

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/shed"
)

// generousShed is a controller no idle test request can trip.
func generousShed() *shed.Controller {
	return shed.New(shed.Config{
		CheapConcurrency: 64, HeavyConcurrency: 64, QueueLimit: 64,
	}, nil)
}

type wireResponse struct {
	Status   int
	Body     string
	Headers  map[string]string
	AllNames []string
}

// fire captures the parts of a response the byte-identity contract covers.
func fire(t *testing.T, ts *httptest.Server, method, path string, hdr map[string]string, body string) wireResponse {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := wireResponse{Status: resp.StatusCode, Body: string(b), Headers: map[string]string{}}
	for _, h := range []string{"Content-Type", "ETag", "Content-Encoding", "Retry-After"} {
		out.Headers[h] = resp.Header.Get(h)
	}
	for name := range resp.Header {
		out.AllNames = append(out.AllNames, name)
	}
	return out
}

// TestShedOffByteIdentity pins the off-by-default contract: a server with
// admission control enabled but idle answers every endpoint — success and
// error paths alike — byte-identically to a server without it.
func TestShedOffByteIdentity(t *testing.T) {
	d := goldenDataset(11, 200, 40)
	plain := NewServer(d)
	guarded := NewServer(goldenDataset(11, 200, 40))
	guarded.Shed = generousShed()

	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	tsGuarded := httptest.NewServer(guarded.Handler())
	defer tsGuarded.Close()

	etag := fire(t, tsPlain, http.MethodGet, "/v1/list", nil, "").Headers["ETag"]
	if etag == "" {
		t.Fatal("no ETag to revalidate against")
	}

	cases := []struct {
		name, method, path, body string
		hdr                      map[string]string
	}{
		{"check-hit", http.MethodGet, "/v1/check?ip=" + d.SortedNATed()[0].String(), "", nil},
		{"check-clean", http.MethodGet, "/v1/check?ip=203.0.113.250", "", nil},
		{"check-missing", http.MethodGet, "/v1/check", "", nil},
		{"check-bad", http.MethodGet, "/v1/check?ip=999.1.1.1", "", nil},
		{"check-method", http.MethodDelete, "/v1/check", "", nil},
		{"batch", http.MethodPost, "/v1/check", `["192.0.2.1","203.0.113.9"]`, nil},
		{"batch-malformed", http.MethodPost, "/v1/check", `{"not":"an array"}`, nil},
		{"batch-bad-ip", http.MethodPost, "/v1/check", `["nope"]`, nil},
		{"list", http.MethodGet, "/v1/list", "", nil},
		{"list-gzip", http.MethodGet, "/v1/list", "", map[string]string{"Accept-Encoding": "gzip"}},
		{"list-304", http.MethodGet, "/v1/list", "", map[string]string{"If-None-Match": etag}},
		{"prefixes", http.MethodGet, "/v1/prefixes", "", nil},
		{"stats", http.MethodGet, "/v1/stats", "", nil},
		{"metrics-absent", http.MethodGet, "/metrics", "", nil},
	}
	for _, tc := range cases {
		got := fire(t, tsGuarded, tc.method, tc.path, tc.hdr, tc.body)
		want := fire(t, tsPlain, tc.method, tc.path, tc.hdr, tc.body)
		if got.Status != want.Status {
			t.Errorf("%s: status %d with shed, %d without", tc.name, got.Status, want.Status)
		}
		if got.Body != want.Body {
			t.Errorf("%s: body diverged with shed:\n got: %q\nwant: %q", tc.name, got.Body, want.Body)
		}
		for h, wv := range want.Headers {
			if got.Headers[h] != wv {
				t.Errorf("%s: header %s = %q with shed, %q without", tc.name, h, got.Headers[h], wv)
			}
		}
		if got.Headers["Retry-After"] != "" {
			t.Errorf("%s: idle guarded server set Retry-After %q", tc.name, got.Headers["Retry-After"])
		}
	}
}

func TestProbesMountedOnlyWithShed(t *testing.T) {
	plain := NewServer(goldenDataset(3, 10, 5))
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	for _, path := range []string{"/healthz", "/readyz"} {
		if got := fire(t, tsPlain, http.MethodGet, path, nil, ""); got.Status != http.StatusNotFound {
			t.Errorf("%s on unguarded server = %d, want 404", path, got.Status)
		}
	}

	guarded := NewServer(goldenDataset(3, 10, 5))
	guarded.Shed = generousShed()
	tsGuarded := httptest.NewServer(guarded.Handler())
	defer tsGuarded.Close()
	hz := fire(t, tsGuarded, http.MethodGet, "/healthz", nil, "")
	if hz.Status != http.StatusOK || hz.Body != "{\"status\":\"ok\"}\n" {
		t.Errorf("/healthz = %d %q", hz.Status, hz.Body)
	}
	rz := fire(t, tsGuarded, http.MethodGet, "/readyz", nil, "")
	if rz.Status != http.StatusOK || rz.Body != "{\"ready\":true,\"mode\":\"normal\"}\n" {
		t.Errorf("/readyz = %d %q", rz.Status, rz.Body)
	}
}

// requireShedShape asserts a rejection is the documented wire contract:
// JSON Error body plus a positive integer Retry-After.
func requireShedShape(t *testing.T, res wireResponse, wantStatus int, wantError string) {
	t.Helper()
	if res.Status != wantStatus {
		t.Fatalf("status = %d, want %d (body %q)", res.Status, wantStatus, res.Body)
	}
	if res.Headers["Retry-After"] == "" {
		t.Fatalf("rejection carries no Retry-After")
	}
	var e Error
	if err := json.Unmarshal([]byte(res.Body), &e); err != nil {
		t.Fatalf("rejection body is not the Error shape: %v (%q)", err, res.Body)
	}
	if e.Error != wantError {
		t.Fatalf("error = %q, want %q (detail %q)", e.Error, wantError, e.Detail)
	}
}

func TestRateLimitedResponseShape(t *testing.T) {
	srv := NewServer(goldenDataset(5, 20, 5))
	srv.Shed = shed.New(shed.Config{RatePerClient: 0.001, Burst: 1}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if got := fire(t, ts, http.MethodGet, "/v1/check?ip=192.0.2.1", nil, ""); got.Status != http.StatusOK {
		t.Fatalf("first request from a fresh client = %d, want 200", got.Status)
	}
	requireShedShape(t, fire(t, ts, http.MethodGet, "/v1/check?ip=192.0.2.1", nil, ""),
		http.StatusTooManyRequests, "rate limit exceeded")
	// Probes must stay reachable for a rate-limited client.
	if got := fire(t, ts, http.MethodGet, "/readyz", nil, ""); got.Status != http.StatusOK {
		t.Errorf("/readyz rate limited to %d; probes must bypass admission", got.Status)
	}
}

func TestSaturatedGateShedsWithDocumentedShape(t *testing.T) {
	srv := NewServer(goldenDataset(6, 20, 5))
	srv.Shed = shed.New(shed.Config{
		CheapConcurrency: 64, HeavyConcurrency: 1, QueueLimit: 1,
		MaxWait: 5 * time.Millisecond,
	}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Hold the heavy gate's only slot so a heavy request must queue and
	// time out.
	release, outcome := srv.Shed.Acquire(context.Background(), shed.ClassHeavy)
	if outcome != shed.Admitted {
		t.Fatalf("setup acquire: %v", outcome)
	}
	defer release()

	requireShedShape(t, fire(t, ts, http.MethodGet, "/v1/list", nil, ""),
		http.StatusTooManyRequests, "overloaded: request shed")
	// The cheap class is isolated: single checks keep flowing.
	if got := fire(t, ts, http.MethodGet, "/v1/check?ip=192.0.2.1", nil, ""); got.Status != http.StatusOK {
		t.Errorf("cheap check = %d while heavy gate saturated, want 200", got.Status)
	}
}

func TestDegradedListServing(t *testing.T) {
	srv := NewServer(goldenDataset(7, 300, 40))
	srv.Shed = generousShed()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	normalGz := fire(t, ts, http.MethodGet, "/v1/list", map[string]string{"Accept-Encoding": "gzip"}, "")
	etag := normalGz.Headers["ETag"]
	if srv.Snapshot().list.gz == nil {
		t.Fatal("golden dataset list did not precompute a gzip body; test needs a larger dataset")
	}

	srv.Shed.SetReloadFailed(true)
	if !srv.Shed.Degraded() {
		t.Fatal("failed reload did not degrade the controller")
	}

	// gzip-accepting clients get the precomputed compressed body, same ETag.
	deg := fire(t, ts, http.MethodGet, "/v1/list", map[string]string{"Accept-Encoding": "gzip"}, "")
	if deg.Status != http.StatusOK || deg.Headers["Content-Encoding"] != "gzip" {
		t.Fatalf("degraded gzip list = %d enc %q", deg.Status, deg.Headers["Content-Encoding"])
	}
	if deg.Headers["ETag"] != etag {
		t.Errorf("degraded list changed the ETag %q -> %q", etag, deg.Headers["ETag"])
	}
	zr, err := gzip.NewReader(strings.NewReader(deg.Body))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, srv.Snapshot().list.body) {
		t.Error("degraded gzip body does not decompress to the served list")
	}

	// Revalidation still answers 304 — cheaper than any body.
	if got := fire(t, ts, http.MethodGet, "/v1/list", map[string]string{
		"If-None-Match": etag, "Accept-Encoding": "gzip"}, ""); got.Status != http.StatusNotModified {
		t.Errorf("degraded revalidation = %d, want 304", got.Status)
	}

	// Identity-only clients are turned away with the documented shape. (The
	// header must be explicit: Go's transport otherwise advertises gzip and
	// decompresses transparently.)
	requireShedShape(t, fire(t, ts, http.MethodGet, "/v1/list",
		map[string]string{"Accept-Encoding": "identity"}, ""),
		http.StatusServiceUnavailable, "degraded mode: precomputed gzip only")

	// Recovery restores identity serving (RecoverAfter is defaulted to 2s,
	// so drive it with a clock-free assertion: clearing the failure flips
	// the mode machine into its calm window; we only check the flag here).
	srv.Shed.SetReloadFailed(false)
	if st := srv.Shed.Status(); st.ReloadFailed {
		t.Error("cleared reload failure still reported in status")
	}
}

func TestDegradedListTinyBodyFallsBackToIdentity(t *testing.T) {
	srv := NewServer(&Dataset{}) // header-only list: gzip saves nothing
	srv.Shed = generousShed()
	if srv.Snapshot().list.gz != nil {
		t.Skip("tiny list unexpectedly has a gzip body")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Shed.SetReloadFailed(true)
	got := fire(t, ts, http.MethodGet, "/v1/list", nil, "")
	if got.Status != http.StatusOK || got.Body != string(srv.Snapshot().list.body) {
		t.Fatalf("degraded tiny list = %d %q, want identity body", got.Status, got.Body)
	}
}

func TestDegradedBatchClamp(t *testing.T) {
	srv := NewServer(goldenDataset(8, 50, 10))
	srv.Shed = shed.New(shed.Config{
		CheapConcurrency: 64, HeavyConcurrency: 64, QueueLimit: 64,
		DegradedMaxBatchIPs: 4,
	}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	batch := func(n int) string {
		ips := make([]string, n)
		for i := range ips {
			ips[i] = fmt.Sprintf("192.0.2.%d", i%250+1)
		}
		b, _ := json.Marshal(ips)
		return string(b)
	}

	srv.Shed.SetReloadFailed(true)
	// Within the clamp: serves normally.
	if got := fire(t, ts, http.MethodPost, "/v1/check", nil, batch(4)); got.Status != http.StatusOK {
		t.Fatalf("degraded batch of 4 = %d, want 200", got.Status)
	}
	// Past the clamp but normally valid: retryable 429, not a 400.
	requireShedShape(t, fire(t, ts, http.MethodPost, "/v1/check", nil, batch(5)),
		http.StatusTooManyRequests, "batch clamped in degraded mode")
	// Past the protocol limit: still the 400 contract, clamp or not.
	if got := fire(t, ts, http.MethodPost, "/v1/check", nil, batch(MaxBatchIPs+1)); got.Status != http.StatusBadRequest {
		t.Fatalf("oversized batch while degraded = %d, want 400", got.Status)
	}
}

func TestReadyzFlipsAndRecovers(t *testing.T) {
	srv := NewServer(goldenDataset(9, 20, 5))
	srv.Shed = shed.New(shed.Config{
		CheapConcurrency: 64, HeavyConcurrency: 64, QueueLimit: 64,
		RecoverAfter: 10 * time.Millisecond,
	}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.Shed.SetReloadFailed(true)
	rz := fire(t, ts, http.MethodGet, "/readyz", nil, "")
	requireReadyz(t, rz, http.StatusServiceUnavailable, "{\"ready\":false,\"mode\":\"degraded\"}\n")
	if rz.Headers["Retry-After"] == "" {
		t.Error("degraded /readyz carries no Retry-After")
	}
	// /healthz stays 200: degraded is an overload posture, not a death.
	if got := fire(t, ts, http.MethodGet, "/healthz", nil, ""); got.Status != http.StatusOK {
		t.Errorf("/healthz while degraded = %d, want 200", got.Status)
	}

	// Heal and poll readiness only — probing must be enough to recover.
	srv.Shed.SetReloadFailed(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		rz = fire(t, ts, http.MethodGet, "/readyz", nil, "")
		if rz.Status == http.StatusOK || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	requireReadyz(t, rz, http.StatusOK, "{\"ready\":true,\"mode\":\"normal\"}\n")
}

func requireReadyz(t *testing.T, rz wireResponse, status int, body string) {
	t.Helper()
	if rz.Status != status || rz.Body != body {
		t.Fatalf("/readyz = %d %q, want %d %q", rz.Status, rz.Body, status, body)
	}
	if rz.Headers["Content-Type"] != "application/json" {
		t.Fatalf("/readyz Content-Type = %q", rz.Headers["Content-Type"])
	}
}
