// Property tests pinning the incremental compile: for any base dataset and
// any delta, ApplyDelta on the compiled base must produce byte-for-byte what
// a full Compile of the delta-edited dataset produces — bodies, gzip
// variants, and ETags. External package: testkit imports reuseapi, so these
// drive the exported surface only.
package reuseapi_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/reuseapi"
	"github.com/reuseblock/reuseblock/internal/testkit"
)

// worldDataset derives a serving dataset from a generated world's ground
// truth: multi-user NAT gateways and the dynamic pools — the same shape the
// real pipeline publishes.
func worldDataset(t *testing.T, spec testkit.WorldSpec) *reuseapi.Dataset {
	t.Helper()
	w := blgen.Generate(spec.Params())
	d := &reuseapi.Dataset{
		NATUsers:        map[iputil.Addr]int{},
		DynamicPrefixes: iputil.NewPrefixSet(),
		Generated:       time.Date(2026, 4, 1, 0, 0, 0, 0, time.UTC),
	}
	for a, nat := range w.NATByIP {
		if nat.BTUsers >= 2 {
			d.NATUsers[a] = nat.BTUsers
		}
	}
	for _, p := range w.TrueAnyDynamic.Sorted() {
		d.DynamicPrefixes.Add(p)
	}
	if len(d.NATUsers) == 0 || d.DynamicPrefixes.Len() == 0 {
		t.Fatalf("degenerate world for spec %v: %d NATed, %d prefixes",
			spec, len(d.NATUsers), d.DynamicPrefixes.Len())
	}
	return d
}

// requireSnapshotsEqual asserts the two snapshots serve identical artifacts
// on every full-body endpoint, and identical verdicts on a sample.
func requireSnapshotsEqual(t *testing.T, label string, got, want *reuseapi.Snapshot) {
	t.Helper()
	if !got.Generated().Equal(want.Generated()) {
		t.Errorf("%s: generated %v != %v", label, got.Generated(), want.Generated())
	}
	if got.NATedAddresses() != want.NATedAddresses() || got.DynamicPrefixes() != want.DynamicPrefixes() {
		t.Errorf("%s: sizes %d/%d != %d/%d", label,
			got.NATedAddresses(), got.DynamicPrefixes(),
			want.NATedAddresses(), want.DynamicPrefixes())
	}
	gotB, wantB := got.PrecomputedBodies(), want.PrecomputedBodies()
	for name, w := range wantB {
		g := gotB[name]
		if !bytes.Equal(g.Body, w.Body) {
			t.Errorf("%s: %s body diverges (delta %d bytes, full %d bytes)",
				label, name, len(g.Body), len(w.Body))
			continue
		}
		if !bytes.Equal(g.Gzip, w.Gzip) {
			t.Errorf("%s: %s gzip variant diverges", label, name)
		}
		if g.ETag != w.ETag {
			t.Errorf("%s: %s ETag %q != %q", label, name, g.ETag, w.ETag)
		}
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		a := iputil.Addr(rng.Uint32())
		if gv, wv := got.Verdict(a), want.Verdict(a); gv != wv {
			t.Fatalf("%s: verdict(%v) %+v != %+v", label, a, gv, wv)
		}
	}
}

// adversarialDeltas builds the edge-case deltas for a dataset: empty,
// restamp-only, remove-everything, overlap (add wins over remove), and
// prefix split/merge.
func adversarialDeltas(d *reuseapi.Dataset) map[string]*reuseapi.Delta {
	nated := make([]iputil.Addr, 0, len(d.NATUsers))
	for a := range d.NATUsers {
		nated = append(nated, a)
	}
	prefixes := d.DynamicPrefixes.Sorted()
	later := d.Generated.Add(24 * time.Hour)

	out := map[string]*reuseapi.Delta{
		"empty":        {},
		"restamp-only": {Generated: later},
		"remove-all": {
			RemoveNAT:      nated,
			RemovePrefixes: prefixes,
			Generated:      later,
		},
		"add-wins-over-remove": {
			AddNAT:      map[iputil.Addr]int{nated[0]: 999},
			RemoveNAT:   []iputil.Addr{nated[0]},
			AddPrefixes: []iputil.Prefix{prefixes[0]},
			RemovePrefixes: []iputil.Prefix{
				prefixes[0],
			},
			Generated: later,
		},
		"remove-absent": {
			RemoveNAT:      []iputil.Addr{iputil.Addr(1)},
			RemovePrefixes: []iputil.Prefix{iputil.PrefixFrom(iputil.Addr(0), 8)},
			Generated:      later,
		},
	}
	// Split: replace a prefix with its two halves.
	for _, p := range prefixes {
		if p.Bits() < 32 {
			half := iputil.PrefixFrom(p.Base(), p.Bits()+1)
			other := iputil.PrefixFrom(p.Base()+iputil.Addr(half.Size()), p.Bits()+1)
			out["prefix-split"] = &reuseapi.Delta{
				RemovePrefixes: []iputil.Prefix{p},
				AddPrefixes:    []iputil.Prefix{half, other},
				Generated:      later,
			}
			// Merge: the inverse edit against the split dataset is covered by
			// applying remove-halves/add-parent to the base (the halves may
			// be absent — remove tolerates that).
			out["prefix-merge"] = &reuseapi.Delta{
				RemovePrefixes: []iputil.Prefix{half, other},
				AddPrefixes:    []iputil.Prefix{p},
				Generated:      later,
			}
			break
		}
	}
	return out
}

// randomDelta draws a clustered random delta: edits concentrated in a few
// top-byte regions (the realistic shape — one provider's pool churns), with
// value rewrites, removals, and fresh inserts.
func randomDelta(rng *rand.Rand, d *reuseapi.Dataset, frac float64) *reuseapi.Delta {
	delta := &reuseapi.Delta{
		AddNAT:    map[iputil.Addr]int{},
		Generated: d.Generated.Add(time.Duration(1+rng.Intn(48)) * time.Hour),
	}
	for a := range d.NATUsers {
		switch {
		case rng.Float64() < frac/2:
			delta.RemoveNAT = append(delta.RemoveNAT, a)
		case rng.Float64() < frac/2:
			delta.AddNAT[a] = 2 + rng.Intn(500)
		}
	}
	cluster := iputil.Addr(rng.Uint32()) &^ 0xffffff // one random /8
	for i := 0; i < 1+rng.Intn(20); i++ {
		delta.AddNAT[cluster|iputil.Addr(rng.Intn(1<<24))] = 2 + rng.Intn(500)
	}
	for _, p := range d.DynamicPrefixes.Sorted() {
		if rng.Float64() < frac/4 {
			delta.RemovePrefixes = append(delta.RemovePrefixes, p)
		}
	}
	for i := 0; i < rng.Intn(4); i++ {
		delta.AddPrefixes = append(delta.AddPrefixes,
			iputil.PrefixFrom(cluster|iputil.Addr(rng.Intn(1<<24)), 12+rng.Intn(13)))
	}
	return delta
}

// TestApplyDeltaEquivalence is the pinned property: over generated worlds
// and both adversarial and random deltas, ApplyDelta(Compile(d0), δ) must be
// byte-identical to Compile(d0 + δ).
func TestApplyDeltaEquivalence(t *testing.T) {
	for _, genSeed := range []int64{1, 7} {
		spec := testkit.GenWorldSpec(genSeed)
		base := worldDataset(t, spec)
		snap := reuseapi.Compile(base)

		for name, delta := range adversarialDeltas(base) {
			want := reuseapi.Compile(delta.ApplyTo(base))
			got := snap.ApplyDelta(delta)
			requireSnapshotsEqual(t, fmt.Sprintf("world %d/%s", genSeed, name), got, want)
		}

		rng := rand.New(rand.NewSource(genSeed * 31))
		for i := 0; i < 8; i++ {
			delta := randomDelta(rng, base, 0.05+rng.Float64()*0.3)
			want := reuseapi.Compile(delta.ApplyTo(base))
			got := snap.ApplyDelta(delta)
			requireSnapshotsEqual(t, fmt.Sprintf("world %d/random-%d", genSeed, i), got, want)
		}
	}
}

// TestApplyDeltaChained applies a run of random deltas sequentially — each
// on the previous delta-compiled snapshot — so equivalence is pinned for the
// accumulated state a long-lived watch reloader reaches, not just one hop.
func TestApplyDeltaChained(t *testing.T) {
	spec := testkit.GenWorldSpec(3)
	data := worldDataset(t, spec)
	snap := reuseapi.Compile(data)
	rng := rand.New(rand.NewSource(17))
	for hop := 0; hop < 6; hop++ {
		delta := randomDelta(rng, data, 0.1)
		data = delta.ApplyTo(data)
		snap = snap.ApplyDelta(delta)
		requireSnapshotsEqual(t, fmt.Sprintf("hop %d", hop), snap, reuseapi.Compile(data))
	}
}

// TestDiffDatasetsRoundTrip pins the reloader's actual path: parse two file
// generations, diff them, apply — the result must equal a cold compile of
// the new generation, and the diff must be minimal for identical datasets.
func TestDiffDatasetsRoundTrip(t *testing.T) {
	spec := testkit.GenWorldSpec(5)
	old := worldDataset(t, spec)
	rng := rand.New(rand.NewSource(23))
	newData := randomDelta(rng, old, 0.2).ApplyTo(old)

	delta := reuseapi.DiffDatasets(old, newData)
	got := reuseapi.Compile(old).ApplyDelta(delta)
	requireSnapshotsEqual(t, "diff-round-trip", got, reuseapi.Compile(newData))

	if d := reuseapi.DiffDatasets(old, old); !d.Empty() {
		t.Errorf("DiffDatasets(d, d) carries %d ops, want empty", d.Ops())
	}
}

// TestETagChangesIffBytesChange pins cache correctness over the delta path:
// a delta that leaves an endpoint's body untouched must leave its ETag
// untouched, and a changed body must change the ETag.
func TestETagChangesIffBytesChange(t *testing.T) {
	spec := testkit.GenWorldSpec(9)
	base := worldDataset(t, spec)
	snap := reuseapi.Compile(base)
	before := snap.PrecomputedBodies()

	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 10; i++ {
		delta := randomDelta(rng, base, 0.15)
		after := snap.ApplyDelta(delta).PrecomputedBodies()
		for name, b := range before {
			a := after[name]
			if bytes.Equal(a.Body, b.Body) != (a.ETag == b.ETag) {
				t.Errorf("delta %d: %s ETag moved=%v but bytes moved=%v",
					i, name, a.ETag != b.ETag, !bytes.Equal(a.Body, b.Body))
			}
		}
	}
}
