package reuseapi

import (
	"net/http"
	"strconv"

	"github.com/reuseblock/reuseblock/internal/shed"
)

// This file is the HTTP face of the overload-resilience layer: the shed
// package decides (admit, shed, rate-limit, degrade) and the helpers here
// translate decisions into the documented wire behaviour — JSON Error
// bodies with Retry-After on 429/503, gzip-only degraded list serving, and
// the /healthz + /readyz probes. Everything is reached only when
// Server.Shed is non-nil; a nil controller leaves the serving paths
// byte-identical to the unguarded build.

// guarded wraps an endpoint handler with the admission pipeline: the
// per-client token bucket first (cheapest check, and a rate-limited client
// must not consume a concurrency slot), then the class gate. Rejections
// carry the documented Error shape plus Retry-After.
func (s *Server) guarded(class shed.Class, h http.HandlerFunc) http.HandlerFunc {
	c := s.Shed
	return func(w http.ResponseWriter, r *http.Request) {
		if !c.AllowClient(c.ClientKey(r)) {
			writeShedError(w, c, http.StatusTooManyRequests,
				"rate limit exceeded", "per-client request budget exhausted")
			return
		}
		release, outcome := c.Acquire(r.Context(), class)
		if outcome != shed.Admitted {
			writeShedError(w, c, http.StatusTooManyRequests,
				"overloaded: request shed", outcome.String())
			return
		}
		defer release()
		h(w, r)
	}
}

// shedCheck splits /v1/check admission by method: single GET checks ride
// the cheap gate (they must keep flowing during a batch flood), batch POSTs
// the heavy one.
func (s *Server) shedCheck() http.HandlerFunc {
	one := s.guarded(shed.ClassCheap, s.handleCheckOne)
	batch := s.guarded(shed.ClassHeavy, s.handleCheckBatch)
	return func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			one(w, r)
		case http.MethodPost:
			batch(w, r)
		default:
			writeError(w, http.StatusMethodNotAllowed, "method not allowed", r.Method)
		}
	}
}

// writeShedError is writeError plus the Retry-After header every shed,
// rate-limited and degraded rejection carries.
func writeShedError(w http.ResponseWriter, c *shed.Controller, code int, msg, detail string) {
	w.Header().Set("Retry-After", strconv.Itoa(c.RetryAfterSeconds()))
	writeError(w, code, msg, detail)
}

// serveDegraded is servePrecomputed's degraded-mode variant for large
// bodies: revalidation still works (a 304 is the cheapest possible answer),
// gzip-accepting clients get the precomputed compressed bytes, and clients
// demanding the identity representation are turned away with 503 +
// Retry-After instead of holding a connection through a large transmit
// under overload. Bodies whose gzip form saved nothing (pb.gz == nil) are
// served as-is — they are already minimal.
func (s *Server) serveDegraded(w http.ResponseWriter, r *http.Request, pb *precomputedBody, contentType string) {
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("ETag", pb.etag)
	// Same negotiation, same Vary duty as servePrecomputed: which
	// representation (or rejection) a client gets depends on its
	// Accept-Encoding, so every degraded response declares it too.
	h.Set("Vary", "Accept-Encoding")
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatches(match, pb.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if pb.gz == nil {
		_, _ = w.Write(pb.body)
		return
	}
	if !acceptsGzip(r) {
		writeShedError(w, s.Shed, http.StatusServiceUnavailable,
			"degraded mode: precomputed gzip only", "retry with Accept-Encoding: gzip")
		return
	}
	h.Set("Content-Encoding", "gzip")
	_, _ = w.Write(pb.gz)
}

// handleHealthz is liveness: the process is up and serving HTTP. It always
// answers 200 — degraded is an overload posture, not a death.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	setContentTypeJSON(w)
	_, _ = w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// handleReadyz is readiness: 200 while serving normally, 503 + Retry-After
// while degraded so load balancers drain this replica until it recovers.
// Each probe re-evaluates the mode machine, so readiness polling alone is
// enough to drive recovery after a flood ends.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Shed.Mode() == shed.ModeDegraded {
		w.Header().Set("Retry-After", strconv.Itoa(s.Shed.RetryAfterSeconds()))
		setContentTypeJSON(w)
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("{\"ready\":false,\"mode\":\"degraded\"}\n"))
		return
	}
	setContentTypeJSON(w)
	_, _ = w.Write([]byte("{\"ready\":true,\"mode\":\"normal\"}\n"))
}
