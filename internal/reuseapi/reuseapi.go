// Package reuseapi serves a reused-address list over HTTP — the release
// form of the paper's published artifact ("we make our techniques publicly
// available and also publish a new address list that has all reused
// addresses we detect", §1). Operators integrate it as a lookup service:
//
//	GET  /v1/check?ip=192.0.2.7    -> JSON verdict (reused? how? users?)
//	POST /v1/check                 -> batch: JSON array of IPs -> array of verdicts
//	GET  /v1/list                  -> the full plain-text list (ETag, gzip)
//	GET  /v1/prefixes              -> dynamic prefixes, one CIDR per line (ETag, gzip)
//	GET  /v1/stats                 -> dataset summary
//	GET  /v1/greylist?ip=192.0.2.7 -> verdict + recommended action/expiry (§6 mitigation)
//
// A Registry (registry.go) serves many named datasets behind one mux: every
// endpoint is also reachable at /v1/{dataset}/..., with the unprefixed
// routes aliasing the default dataset.
//
// The serving path is built around an immutable compiled Snapshot per
// dataset (see snapshot.go): handlers read one atomic pointer, do a binary
// search or a trie walk, and write precomputed or pool-buffered bytes — no
// locks, no per-request sorting, no steady-state allocation on the check
// path. Update compiles a fresh snapshot off the request path and swaps the
// pointer, so datasets hot-reload under load without a stalled request.
package reuseapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/reuseblock/reuseblock/internal/greylist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/shed"
)

// Dataset is the served reuse knowledge. Build one from a Study's report or
// from files collected on disk.
type Dataset struct {
	// NATUsers maps NATed addresses to the crawler's user lower bound.
	NATUsers map[iputil.Addr]int
	// DynamicPrefixes are the RIPE pipeline's dynamic /24s.
	DynamicPrefixes *iputil.PrefixSet
	// Generated stamps the dataset build time.
	Generated time.Time
}

// Verdict is the JSON answer of /v1/check.
type Verdict struct {
	IP      string `json:"ip"`
	Reused  bool   `json:"reused"`
	NATed   bool   `json:"nated"`
	Dynamic bool   `json:"dynamic"`
	// Users is the lower bound of simultaneous users for NATed addresses
	// (0 otherwise).
	Users int `json:"users,omitempty"`
	// Prefix is the covering dynamic prefix, when Dynamic.
	Prefix string `json:"prefix,omitempty"`
	// Advice mirrors the paper's Section 6 guidance.
	Advice string `json:"advice"`
}

// Error is the JSON body of every non-2xx answer.
type Error struct {
	Error string `json:"error"`
	// Detail names the offending parameter or value when there is one.
	Detail string `json:"detail,omitempty"`
}

// MaxBatchBytes bounds the POST /v1/check request body; a full batch of
// MaxBatchIPs dotted quads fits comfortably.
const MaxBatchBytes = 1 << 20

// MaxBatchIPs bounds how many addresses one batch check may carry.
const MaxBatchIPs = 10_000

// Server wraps a Dataset with HTTP handlers. Safe for concurrent use; the
// dataset can be swapped atomically with Update. The exported fields are
// optional observability hooks; set them before calling Handler.
type Server struct {
	snap atomic.Pointer[Snapshot]

	// Obs, when non-nil, counts requests and observes per-endpoint latency
	// (under the wall namespace — traffic is not part of the deterministic
	// study surface) and is served in Prometheus text form at /metrics.
	Obs *obs.Registry
	// Manifest, when non-nil, is served as JSON at /debug/manifest.
	Manifest obs.ManifestSource
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	EnablePprof bool
	// Shed, when non-nil, turns on overload resilience: per-class admission
	// gates, per-client rate limiting, degraded-mode serving, and the
	// /healthz + /readyz probes. Nil (the default) keeps every serving path
	// byte-identical to the unguarded build (see shed.go).
	Shed *shed.Controller
	// Greylist tunes the /v1/greylist recommendation windows; the zero
	// value takes the greylist package's defaults.
	Greylist greylist.Config

	// now stubs the /v1/greylist clock in tests; nil means time.Now.
	now func() time.Time
}

// NewServer builds a server over the dataset, compiling its first snapshot.
func NewServer(data *Dataset) *Server {
	s := &Server{}
	s.snap.Store(Compile(normalize(data)))
	return s
}

// Update swaps the served dataset (e.g. after a fresh crawl). The snapshot
// is compiled here, off the request path; in-flight requests keep the
// snapshot they already loaded, new requests see the new one.
func (s *Server) Update(data *Dataset) {
	s.snap.Store(Compile(normalize(data)))
}

// Snapshot returns the currently served compiled dataset.
func (s *Server) Snapshot() *Snapshot {
	return s.snap.Load()
}

func normalize(data *Dataset) *Dataset {
	if data.DynamicPrefixes == nil {
		data.DynamicPrefixes = iputil.NewPrefixSet()
	}
	if data.NATUsers == nil {
		data.NATUsers = map[iputil.Addr]int{}
	}
	return data
}

// Handler returns the HTTP handler. Observability hooks (Obs, Manifest,
// EnablePprof) are bound here, so set them before calling.
//
// The four API endpoints are dispatched with an exact-path switch before
// falling back to a ServeMux: the switch costs a handful of compares where
// the mux's routing tree costs a tree walk per request, and the mux still
// backs everything else (path cleaning, /metrics, /debug/...).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	if s.Shed != nil {
		// The health probes bypass admission — a load balancer must be able
		// to probe an overloaded server.
		mux.HandleFunc("/healthz", s.handleHealthz)
		mux.HandleFunc("/readyz", s.handleReadyz)
	}
	h := &apiHandler{mux: mux, eps: s.endpoints("")}
	mux.HandleFunc("/v1/check", h.eps.check)
	mux.HandleFunc("/v1/list", h.eps.list)
	mux.HandleFunc("/v1/prefixes", h.eps.prefixes)
	mux.HandleFunc("/v1/stats", h.eps.stats)
	mux.HandleFunc("/v1/greylist", h.eps.greylist)
	if s.Obs != nil {
		mux.Handle("/metrics", obs.MetricsHandler(s.Obs))
	}
	if s.Manifest != nil {
		mux.Handle("/debug/manifest", obs.ManifestHandler(s.Manifest))
	}
	if s.EnablePprof {
		obs.RegisterPprof(mux)
	}
	return h
}

// endpointSet is one dataset's fully wrapped API handlers: admission-guarded
// by cost class when the server sheds, then counted. Both a standalone
// Server's mux and a Registry's per-dataset routing dispatch into one.
type endpointSet struct {
	check, list, prefixes, stats, greylist http.HandlerFunc
}

// lookup maps the final path segment to its handler; nil for unknown names.
func (e *endpointSet) lookup(name string) http.HandlerFunc {
	switch name {
	case "check":
		return e.check
	case "list":
		return e.list
	case "prefixes":
		return e.prefixes
	case "stats":
		return e.stats
	case "greylist":
		return e.greylist
	default:
		return nil
	}
}

// endpoints builds the wrapped endpoint handlers. dataset, when non-empty,
// labels the per-endpoint metrics so a Registry's datasets stay separable in
// /metrics; the empty string keeps the single-dataset server's metric names
// byte-identical to what it always exposed.
func (s *Server) endpoints(dataset string) endpointSet {
	check, list, prefixes, stats, greylist :=
		s.handleCheck, s.handleList, s.handlePrefixes, s.handleStats, s.handleGreylist
	if s.Shed != nil {
		// Admission wraps each endpoint by cost class; /v1/check splits by
		// method (GET cheap, POST heavy).
		check = s.shedCheck()
		list = s.guarded(shed.ClassHeavy, s.handleList)
		prefixes = s.guarded(shed.ClassHeavy, s.handlePrefixes)
		stats = s.guarded(shed.ClassCheap, s.handleStats)
		greylist = s.guarded(shed.ClassCheap, s.handleGreylist)
	}
	return endpointSet{
		check:    s.counted("check", dataset, check),
		list:     s.counted("list", dataset, list),
		prefixes: s.counted("prefixes", dataset, prefixes),
		stats:    s.counted("stats", dataset, stats),
		greylist: s.counted("greylist", dataset, greylist),
	}
}

// apiHandler fast-paths the fixed API endpoints around the mux.
type apiHandler struct {
	mux *http.ServeMux
	eps endpointSet
}

func (h *apiHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/check":
		h.eps.check(w, r)
	case "/v1/list":
		h.eps.list(w, r)
	case "/v1/prefixes":
		h.eps.prefixes(w, r)
	case "/v1/stats":
		h.eps.stats(w, r)
	case "/v1/greylist":
		h.eps.greylist(w, r)
	default:
		h.mux.ServeHTTP(w, r)
	}
}

// latencyBuckets are the per-endpoint request-duration bounds, in seconds.
var latencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}

// counted wraps an endpoint handler with a request counter and a latency
// histogram. The metric handles are resolved once here — not per request —
// so the hot path does no name composition or registry locking. A nil
// registry yields nil handles, whose methods are no-ops (see obs): the
// wrapper is then just a time.Now pair around the handler.
func (s *Server) counted(endpoint, dataset string, h http.HandlerFunc) http.HandlerFunc {
	if s.Obs == nil {
		// No registry, no wrapper: the uninstrumented hot path should not
		// pay for two clock reads per request.
		return h
	}
	labels := []string{"endpoint", endpoint}
	if dataset != "" {
		labels = append([]string{"dataset", dataset}, labels...)
	}
	reqs := s.Obs.Counter(obs.Name(obs.WallPrefix+"api_requests_total", labels...))
	lat := s.Obs.Histogram(obs.Name(obs.WallPrefix+"api_request_seconds", labels...), latencyBuckets)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		h(w, r)
		lat.Observe(time.Since(start).Seconds())
	}
}

// writeError answers with an Error body so clients never have to parse
// free-text failures.
func writeError(w http.ResponseWriter, code int, msg, detail string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(Error{Error: msg, Detail: detail})
}

// encodeJSONLine is json.Encoder.Encode into a byte slice: Marshal plus the
// trailing newline, with identical escaping.
func encodeJSONLine(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		// The types encoded here (Stats, []Verdict) cannot fail to marshal.
		panic(err)
	}
	return append(data, '\n')
}

// queryIP extracts the ip parameter from the raw query without building the
// url.Values map — the only query parameter the check endpoint takes, parsed
// allocation-free for the hot path. Addresses never need unescaping, so a
// value containing '%' or '+' is simply left as-is and fails ParseAddr.
func queryIP(r *http.Request) (string, bool) {
	q := r.URL.RawQuery
	for len(q) > 0 {
		var pair string
		if i := strings.IndexByte(q, '&'); i >= 0 {
			pair, q = q[:i], q[i+1:]
		} else {
			pair, q = q, ""
		}
		if rest, ok := strings.CutPrefix(pair, "ip="); ok {
			return rest, true
		}
	}
	return "", false
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.handleCheckOne(w, r)
	case http.MethodPost:
		s.handleCheckBatch(w, r)
	default:
		writeError(w, http.StatusMethodNotAllowed, "method not allowed", r.Method)
	}
}

// handleCheckOne is the hot path: one atomic load, a binary search, a trie
// walk, and an append-only encode into a pooled buffer. Zero steady-state
// allocations (pinned by TestCheckHotPathZeroAlloc).
func (s *Server) handleCheckOne(w http.ResponseWriter, r *http.Request) {
	ipStr, ok := queryIP(r)
	if !ok || ipStr == "" {
		writeError(w, http.StatusBadRequest, "missing ip parameter", "")
		return
	}
	addr, err := iputil.ParseAddr(ipStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed ip parameter", ipStr)
		return
	}
	snap := s.snap.Load()
	bufp := verdictBufPool.Get().(*[]byte)
	buf := snap.appendVerdict((*bufp)[:0], addr)
	setContentTypeJSON(w)
	_, _ = w.Write(buf)
	*bufp = buf[:0]
	verdictBufPool.Put(bufp)
}

// contentTypeJSON is the shared Content-Type value for the hot paths: direct
// map assignment of a package-level slice instead of Header().Set, which
// allocates a fresh one-element slice per request. Handlers never mutate it.
var contentTypeJSON = []string{"application/json"}

func setContentTypeJSON(w http.ResponseWriter) {
	w.Header()["Content-Type"] = contentTypeJSON
}

// handleCheckBatch answers POST /v1/check: a JSON array of IP strings maps
// to a JSON array of verdicts in the same order. The body is size-bounded;
// a malformed entry fails the whole batch with a 400 naming it, so callers
// never have to guess which verdicts are real.
func (s *Server) handleCheckBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxBatchBytes)
	var ips []string
	if err := json.NewDecoder(r.Body).Decode(&ips); err != nil {
		code := http.StatusBadRequest
		msg := "malformed batch body: want a JSON array of IP strings"
		if _, tooLarge := err.(*http.MaxBytesError); tooLarge {
			code = http.StatusRequestEntityTooLarge
			msg = "batch body too large"
		}
		writeError(w, code, msg, err.Error())
		return
	}
	if len(ips) > MaxBatchIPs {
		// A client exceeding the documented entry limit sent an invalid
		// batch, not an oversized byte stream: answer 400 like every other
		// protocol violation, with the documented Error shape naming the
		// offending count. (413 stays reserved for MaxBatchBytes overruns,
		// which MaxBytesReader raises above.)
		writeError(w, http.StatusBadRequest, "too many addresses in batch",
			fmt.Sprintf("%d addresses exceed the limit of %d", len(ips), MaxBatchIPs))
		return
	}
	if s.Shed != nil && s.Shed.Degraded() {
		// Degraded mode clamps batch work, not batch validity: a batch that
		// would be fine normally gets a retryable 429 (with the clamp named),
		// never the 400 reserved for protocol violations above.
		if clamp := s.Shed.DegradedMaxBatch(); len(ips) > clamp {
			writeShedError(w, s.Shed, http.StatusTooManyRequests, "batch clamped in degraded mode",
				fmt.Sprintf("%d addresses exceed the degraded-mode limit of %d", len(ips), clamp))
			return
		}
	}
	snap := s.snap.Load()
	buf := make([]byte, 0, 32+128*len(ips))
	buf = append(buf, '[')
	for i, ipStr := range ips {
		addr, err := iputil.ParseAddr(ipStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "malformed ip in batch", ipStr)
			return
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		// appendVerdict ends each object with json.Encoder's newline;
		// strip it inside the array.
		buf = snap.appendVerdict(buf, addr)
		buf = buf[:len(buf)-1]
	}
	buf = append(buf, ']', '\n')
	setContentTypeJSON(w)
	_, _ = w.Write(buf)
}

// servePrecomputed writes a compile-time body with ETag/If-None-Match
// revalidation and a pre-gzipped variant when the client asks for one.
// Every response — 200 or 304, compressed or not — carries
// Vary: Accept-Encoding: the representation depends on that request header,
// and without Vary a shared cache could hand the gzip variant to a client
// that refused it.
func servePrecomputed(w http.ResponseWriter, r *http.Request, pb *precomputedBody, contentType string) {
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("ETag", pb.etag)
	h.Set("Vary", "Accept-Encoding")
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatches(match, pb.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	if pb.gz != nil && acceptsGzip(r) {
		h.Set("Content-Encoding", "gzip")
		_, _ = w.Write(pb.gz)
		return
	}
	_, _ = w.Write(pb.body)
}

// etagMatches implements the If-None-Match list: either "*" or any listed
// entity tag equal to ours (weak prefixes tolerated for revalidation).
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the Accept-Encoding header admits gzip. A
// quality of zero — in any of RFC 9110's spellings, "q=0", "q=0.0",
// "q=0.00", "q=0.000" — is a refusal.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		if enc != "gzip" && enc != "*" {
			continue
		}
		return !refusesQuality(params)
	}
	return false
}

// refusesQuality reports whether an encoding's parameters carry a zero
// quality weight. Only a literal zero refuses ("0" with any run of zero
// decimals); anything else — absent, positive, or malformed — accepts, per
// RFC 9110's "qvalue" grammar where the default weight is 1.
func refusesQuality(params string) bool {
	q := strings.TrimSpace(params)
	rest, ok := strings.CutPrefix(q, "q=")
	if !ok {
		rest, ok = strings.CutPrefix(q, "Q=")
	}
	if !ok || rest == "" || rest[0] != '0' {
		return false
	}
	frac := rest[1:]
	if frac == "" {
		return true
	}
	if frac[0] != '.' {
		return false
	}
	for _, c := range frac[1:] {
		if c != '0' {
			return false
		}
	}
	return true
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed", r.Method)
		return
	}
	if s.Shed != nil && s.Shed.Degraded() {
		s.serveDegraded(w, r, &s.snap.Load().list, "text/plain; charset=utf-8")
		return
	}
	servePrecomputed(w, r, &s.snap.Load().list, "text/plain; charset=utf-8")
}

func (s *Server) handlePrefixes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed", r.Method)
		return
	}
	servePrecomputed(w, r, &s.snap.Load().prefixesB, "text/plain; charset=utf-8")
}

// Stats is the JSON answer of /v1/stats. An empty dataset is a valid,
// explicit answer — all counts zero and Empty true — not an error.
type Stats struct {
	NATedAddresses  int       `json:"nated_addresses"`
	DynamicPrefixes int       `json:"dynamic_prefixes"`
	MaxUsers        int       `json:"max_users"`
	Empty           bool      `json:"empty"`
	Generated       time.Time `json:"generated"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed", r.Method)
		return
	}
	setContentTypeJSON(w)
	_, _ = w.Write(s.snap.Load().stats.body)
}

// GreylistAnswer is the JSON answer of /v1/greylist: the check verdict plus
// the recommended mitigation for consumers that act on the list — greylist
// (tempfail) reused addresses with the given window, block the rest.
type GreylistAnswer struct {
	Verdict
	// Action is "tempfail" for reused addresses, "block" otherwise.
	Action string `json:"action"`
	// MinDelaySeconds / RetryWindowSeconds carry the greylisting window for
	// tempfail answers: reject retries earlier than the delay, accept one
	// inside the window.
	MinDelaySeconds    int64 `json:"min_delay_seconds,omitempty"`
	RetryWindowSeconds int64 `json:"retry_window_seconds,omitempty"`
	// Expires is when this recommendation should be re-evaluated (the
	// listing TTL for a greylisted reused address); zero for block answers,
	// which follow the consumer's standard feed lifecycle.
	Expires time.Time `json:"expires,omitzero"`
}

// handleGreylist answers GET /v1/greylist?ip=...: the snapshot verdict
// mapped through greylist.Config.Recommend. Same lookup cost as a single
// check; the JSON rendering is ordinary (this is an integration endpoint,
// not the hot path).
func (s *Server) handleGreylist(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed", r.Method)
		return
	}
	ipStr, ok := queryIP(r)
	if !ok || ipStr == "" {
		writeError(w, http.StatusBadRequest, "missing ip parameter", "")
		return
	}
	addr, err := iputil.ParseAddr(ipStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed ip parameter", ipStr)
		return
	}
	now := time.Now().UTC()
	if s.now != nil {
		now = s.now()
	}
	v := s.snap.Load().Verdict(addr)
	rec := s.Greylist.Recommend(v.Reused, now)
	ans := GreylistAnswer{
		Verdict:            v,
		Action:             rec.Action.String(),
		MinDelaySeconds:    int64(rec.MinDelay / time.Second),
		RetryWindowSeconds: int64(rec.RetryWindow / time.Second),
		Expires:            rec.Expires,
	}
	setContentTypeJSON(w)
	_, _ = w.Write(encodeJSONLine(ans))
}

// Check answers the verdict for addr against the current snapshot — the
// in-process form of GET /v1/check for embedders (greylist policies, tests).
func (s *Server) Check(addr iputil.Addr) Verdict {
	return s.snap.Load().Verdict(addr)
}

// Verdict computes the check answer for addr straight from the dataset —
// the uncompiled reference the snapshot path is tested against. It uses the
// PrefixSet's own longest-match probe (CoveringPrefix) where the snapshot
// uses the compiled trie.
func (d *Dataset) Verdict(addr iputil.Addr) Verdict {
	v := Verdict{IP: addr.String()}
	if users, ok := d.NATUsers[addr]; ok {
		v.Reused, v.NATed, v.Users = true, true, users
	}
	if p, ok := d.DynamicPrefixes.CoveringPrefix(addr); ok {
		v.Reused, v.Dynamic, v.Prefix = true, true, p.String()
	}
	switch {
	case v.NATed:
		v.Advice = adviceNATed
	case v.Dynamic:
		v.Advice = adviceDynamic
	default:
		v.Advice = adviceClean
	}
	return v
}

// SortedNATed returns the NATed addresses in order (for deterministic dumps).
func (d *Dataset) SortedNATed() []iputil.Addr {
	out := make([]iputil.Addr, 0, len(d.NATUsers))
	for a := range d.NATUsers {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
