// Package reuseapi serves a reused-address list over HTTP — the release
// form of the paper's published artifact ("we make our techniques publicly
// available and also publish a new address list that has all reused
// addresses we detect", §1). Operators integrate it as a lookup service:
//
//	GET /v1/check?ip=192.0.2.7     -> JSON verdict (reused? how? users?)
//	GET /v1/list                   -> the full plain-text list
//	GET /v1/prefixes               -> dynamic prefixes, one CIDR per line
//	GET /v1/stats                  -> dataset summary
package reuseapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Dataset is the served reuse knowledge. Build one from a Study's report or
// from files collected on disk.
type Dataset struct {
	// NATUsers maps NATed addresses to the crawler's user lower bound.
	NATUsers map[iputil.Addr]int
	// DynamicPrefixes are the RIPE pipeline's dynamic /24s.
	DynamicPrefixes *iputil.PrefixSet
	// Generated stamps the dataset build time.
	Generated time.Time
}

// Verdict is the JSON answer of /v1/check.
type Verdict struct {
	IP      string `json:"ip"`
	Reused  bool   `json:"reused"`
	NATed   bool   `json:"nated"`
	Dynamic bool   `json:"dynamic"`
	// Users is the lower bound of simultaneous users for NATed addresses
	// (0 otherwise).
	Users int `json:"users,omitempty"`
	// Prefix is the covering dynamic prefix, when Dynamic.
	Prefix string `json:"prefix,omitempty"`
	// Advice mirrors the paper's Section 6 guidance.
	Advice string `json:"advice"`
}

// Server wraps a Dataset with HTTP handlers. Safe for concurrent use; the
// dataset can be swapped atomically with Update.
type Server struct {
	mu   sync.RWMutex
	data *Dataset
}

// NewServer builds a server over the dataset.
func NewServer(data *Dataset) *Server {
	return &Server{data: normalize(data)}
}

// Update swaps the served dataset (e.g. after a fresh crawl).
func (s *Server) Update(data *Dataset) {
	data = normalize(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = data
}

func normalize(data *Dataset) *Dataset {
	if data.DynamicPrefixes == nil {
		data.DynamicPrefixes = iputil.NewPrefixSet()
	}
	if data.NATUsers == nil {
		data.NATUsers = map[iputil.Addr]int{}
	}
	return data
}

// Handler returns the HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", s.handleCheck)
	mux.HandleFunc("/v1/list", s.handleList)
	mux.HandleFunc("/v1/prefixes", s.handlePrefixes)
	mux.HandleFunc("/v1/stats", s.handleStats)
	return mux
}

func (s *Server) snapshot() *Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ipStr := r.URL.Query().Get("ip")
	addr, err := iputil.ParseAddr(ipStr)
	if err != nil {
		http.Error(w, "bad or missing ip parameter", http.StatusBadRequest)
		return
	}
	data := s.snapshot()
	v := Verdict{IP: addr.String()}
	if users, ok := data.NATUsers[addr]; ok {
		v.Reused, v.NATed, v.Users = true, true, users
	}
	for bits := 32; bits >= 0; bits-- {
		p := iputil.PrefixFrom(addr, bits)
		if data.DynamicPrefixes.Contains(p) {
			v.Reused, v.Dynamic, v.Prefix = true, true, p.String()
			break
		}
	}
	switch {
	case v.NATed:
		v.Advice = "shared address: prefer greylisting/challenges over hard blocking (except DDoS)"
	case v.Dynamic:
		v.Advice = "dynamically allocated: listing likely outlives the abuser; use short TTLs or greylisting"
	default:
		v.Advice = "no reuse evidence: standard blocklist handling applies"
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	data := s.snapshot()
	addrs := iputil.NewSet()
	for a := range data.NATUsers {
		addrs.Add(a)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = blocklist.WritePlain(w, addrs,
		fmt.Sprintf("NATed reused addresses, generated %s", data.Generated.UTC().Format(time.RFC3339)))
}

func (s *Server) handlePrefixes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	data := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "# dynamic prefixes, generated %s\n", data.Generated.UTC().Format(time.RFC3339))
	for _, p := range data.DynamicPrefixes.Sorted() {
		fmt.Fprintln(w, p)
	}
}

// Stats is the JSON answer of /v1/stats.
type Stats struct {
	NATedAddresses  int       `json:"nated_addresses"`
	DynamicPrefixes int       `json:"dynamic_prefixes"`
	MaxUsers        int       `json:"max_users"`
	Generated       time.Time `json:"generated"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	data := s.snapshot()
	st := Stats{
		NATedAddresses:  len(data.NATUsers),
		DynamicPrefixes: data.DynamicPrefixes.Len(),
		Generated:       data.Generated,
	}
	for _, u := range data.NATUsers {
		if u > st.MaxUsers {
			st.MaxUsers = u
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// SortedNATed returns the NATed addresses in order (for deterministic dumps).
func (d *Dataset) SortedNATed() []iputil.Addr {
	out := make([]iputil.Addr, 0, len(d.NATUsers))
	for a := range d.NATUsers {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
