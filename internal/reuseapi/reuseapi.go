// Package reuseapi serves a reused-address list over HTTP — the release
// form of the paper's published artifact ("we make our techniques publicly
// available and also publish a new address list that has all reused
// addresses we detect", §1). Operators integrate it as a lookup service:
//
//	GET /v1/check?ip=192.0.2.7     -> JSON verdict (reused? how? users?)
//	GET /v1/list                   -> the full plain-text list
//	GET /v1/prefixes               -> dynamic prefixes, one CIDR per line
//	GET /v1/stats                  -> dataset summary
package reuseapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
)

// Dataset is the served reuse knowledge. Build one from a Study's report or
// from files collected on disk.
type Dataset struct {
	// NATUsers maps NATed addresses to the crawler's user lower bound.
	NATUsers map[iputil.Addr]int
	// DynamicPrefixes are the RIPE pipeline's dynamic /24s.
	DynamicPrefixes *iputil.PrefixSet
	// Generated stamps the dataset build time.
	Generated time.Time
}

// Verdict is the JSON answer of /v1/check.
type Verdict struct {
	IP      string `json:"ip"`
	Reused  bool   `json:"reused"`
	NATed   bool   `json:"nated"`
	Dynamic bool   `json:"dynamic"`
	// Users is the lower bound of simultaneous users for NATed addresses
	// (0 otherwise).
	Users int `json:"users,omitempty"`
	// Prefix is the covering dynamic prefix, when Dynamic.
	Prefix string `json:"prefix,omitempty"`
	// Advice mirrors the paper's Section 6 guidance.
	Advice string `json:"advice"`
}

// Error is the JSON body of every non-2xx answer.
type Error struct {
	Error string `json:"error"`
	// Detail names the offending parameter or value when there is one.
	Detail string `json:"detail,omitempty"`
}

// Server wraps a Dataset with HTTP handlers. Safe for concurrent use; the
// dataset can be swapped atomically with Update. The exported fields are
// optional observability hooks; set them before calling Handler.
type Server struct {
	mu   sync.RWMutex
	data *Dataset

	// Obs, when non-nil, counts requests per endpoint (under the wall
	// namespace — traffic is not part of the deterministic study surface)
	// and is served in Prometheus text form at /metrics.
	Obs *obs.Registry
	// Manifest, when non-nil, is served as JSON at /debug/manifest.
	Manifest obs.ManifestSource
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	EnablePprof bool
}

// NewServer builds a server over the dataset.
func NewServer(data *Dataset) *Server {
	return &Server{data: normalize(data)}
}

// Update swaps the served dataset (e.g. after a fresh crawl).
func (s *Server) Update(data *Dataset) {
	data = normalize(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = data
}

func normalize(data *Dataset) *Dataset {
	if data.DynamicPrefixes == nil {
		data.DynamicPrefixes = iputil.NewPrefixSet()
	}
	if data.NATUsers == nil {
		data.NATUsers = map[iputil.Addr]int{}
	}
	return data
}

// Handler returns the HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", s.counted("check", s.handleCheck))
	mux.HandleFunc("/v1/list", s.counted("list", s.handleList))
	mux.HandleFunc("/v1/prefixes", s.counted("prefixes", s.handlePrefixes))
	mux.HandleFunc("/v1/stats", s.counted("stats", s.handleStats))
	if s.Obs != nil {
		mux.Handle("/metrics", obs.MetricsHandler(s.Obs))
	}
	if s.Manifest != nil {
		mux.Handle("/debug/manifest", obs.ManifestHandler(s.Manifest))
	}
	if s.EnablePprof {
		obs.RegisterPprof(mux)
	}
	return mux
}

// counted wraps an endpoint handler with a per-endpoint request counter.
// A nil registry counts nothing.
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.Obs.Counter(obs.Name(obs.WallPrefix+"api_requests_total", "endpoint", endpoint)).Inc()
		h(w, r)
	}
}

// writeError answers with an Error body so clients never have to parse
// free-text failures.
func writeError(w http.ResponseWriter, code int, msg, detail string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(Error{Error: msg, Detail: detail})
}

func (s *Server) snapshot() *Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.data
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed", r.Method)
		return
	}
	ipStr := r.URL.Query().Get("ip")
	if ipStr == "" {
		writeError(w, http.StatusBadRequest, "missing ip parameter", "")
		return
	}
	addr, err := iputil.ParseAddr(ipStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed ip parameter", ipStr)
		return
	}
	data := s.snapshot()
	v := Verdict{IP: addr.String()}
	if users, ok := data.NATUsers[addr]; ok {
		v.Reused, v.NATed, v.Users = true, true, users
	}
	for bits := 32; bits >= 0; bits-- {
		p := iputil.PrefixFrom(addr, bits)
		if data.DynamicPrefixes.Contains(p) {
			v.Reused, v.Dynamic, v.Prefix = true, true, p.String()
			break
		}
	}
	switch {
	case v.NATed:
		v.Advice = "shared address: prefer greylisting/challenges over hard blocking (except DDoS)"
	case v.Dynamic:
		v.Advice = "dynamically allocated: listing likely outlives the abuser; use short TTLs or greylisting"
	default:
		v.Advice = "no reuse evidence: standard blocklist handling applies"
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed", r.Method)
		return
	}
	data := s.snapshot()
	addrs := iputil.NewSet()
	for a := range data.NATUsers {
		addrs.Add(a)
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_ = blocklist.WritePlain(w, addrs,
		fmt.Sprintf("NATed reused addresses, generated %s", data.Generated.UTC().Format(time.RFC3339)))
}

func (s *Server) handlePrefixes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed", r.Method)
		return
	}
	data := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "# dynamic prefixes, generated %s\n", data.Generated.UTC().Format(time.RFC3339))
	for _, p := range data.DynamicPrefixes.Sorted() {
		fmt.Fprintln(w, p)
	}
}

// Stats is the JSON answer of /v1/stats. An empty dataset is a valid,
// explicit answer — all counts zero and Empty true — not an error.
type Stats struct {
	NATedAddresses  int       `json:"nated_addresses"`
	DynamicPrefixes int       `json:"dynamic_prefixes"`
	MaxUsers        int       `json:"max_users"`
	Empty           bool      `json:"empty"`
	Generated       time.Time `json:"generated"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method not allowed", r.Method)
		return
	}
	data := s.snapshot()
	st := Stats{
		NATedAddresses:  len(data.NATUsers),
		DynamicPrefixes: data.DynamicPrefixes.Len(),
		Generated:       data.Generated,
	}
	for _, u := range data.NATUsers {
		if u > st.MaxUsers {
			st.MaxUsers = u
		}
	}
	st.Empty = st.NATedAddresses == 0 && st.DynamicPrefixes == 0
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// SortedNATed returns the NATed addresses in order (for deterministic dumps).
func (d *Dataset) SortedNATed() []iputil.Addr {
	out := make([]iputil.Addr, 0, len(d.NATUsers))
	for a := range d.NATUsers {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
