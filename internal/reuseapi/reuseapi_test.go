package reuseapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
)

func testServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	dyn := iputil.NewPrefixSet()
	dyn.Add(iputil.MustParsePrefix("10.9.0.0/24"))
	srv := NewServer(&Dataset{
		NATUsers: map[iputil.Addr]int{
			iputil.MustParseAddr("100.64.0.1"): 3,
			iputil.MustParseAddr("100.64.0.2"): 78,
		},
		DynamicPrefixes: dyn,
		Generated:       time.Date(2020, 5, 11, 0, 0, 0, 0, time.UTC),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, out interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestCheckNATed(t *testing.T) {
	_, ts := testServer(t)
	var v Verdict
	resp := getJSON(t, ts.URL+"/v1/check?ip=100.64.0.1", &v)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !v.Reused || !v.NATed || v.Dynamic || v.Users != 3 {
		t.Errorf("verdict = %+v", v)
	}
	if !strings.Contains(v.Advice, "greylist") {
		t.Errorf("advice = %q", v.Advice)
	}
}

func TestCheckDynamic(t *testing.T) {
	_, ts := testServer(t)
	var v Verdict
	getJSON(t, ts.URL+"/v1/check?ip=10.9.0.200", &v)
	if !v.Reused || !v.Dynamic || v.NATed || v.Prefix != "10.9.0.0/24" {
		t.Errorf("verdict = %+v", v)
	}
}

func TestCheckClean(t *testing.T) {
	_, ts := testServer(t)
	var v Verdict
	getJSON(t, ts.URL+"/v1/check?ip=8.8.8.8", &v)
	if v.Reused || v.NATed || v.Dynamic {
		t.Errorf("verdict = %+v", v)
	}
}

func TestCheckErrors(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/check?ip=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad ip status = %d", resp.StatusCode)
	}
	// POST is the batch endpoint now; an empty body is a malformed batch.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/check?ip=8.8.8.8", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST with empty body status = %d, want 400", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/check?ip=8.8.8.8", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT status = %d, want 405", resp.StatusCode)
	}
}

func TestListAndPrefixes(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/list")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	if !strings.Contains(text, "100.64.0.1") || !strings.Contains(text, "100.64.0.2") {
		t.Errorf("list = %q", text)
	}
	resp, err = http.Get(ts.URL + "/v1/prefixes")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "10.9.0.0/24") {
		t.Errorf("prefixes = %q", body)
	}
}

func TestStatsAndUpdate(t *testing.T) {
	srv, ts := testServer(t)
	var st Stats
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.NATedAddresses != 2 || st.DynamicPrefixes != 1 || st.MaxUsers != 78 {
		t.Errorf("stats = %+v", st)
	}
	// Swap the dataset; the server must serve the new one.
	srv.Update(&Dataset{Generated: time.Now()})
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.NATedAddresses != 0 || st.MaxUsers != 0 {
		t.Errorf("stats after update = %+v", st)
	}
}

func TestCheckErrorBodies(t *testing.T) {
	_, ts := testServer(t)
	for _, tc := range []struct {
		url       string
		wantError string
		wantDet   string
	}{
		{ts.URL + "/v1/check", "missing ip parameter", ""},
		{ts.URL + "/v1/check?ip=banana", "malformed ip parameter", "banana"},
		{ts.URL + "/v1/check?ip=300.1.1.1", "malformed ip parameter", "300.1.1.1"},
	} {
		resp, err := http.Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.url, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q", tc.url, ct)
		}
		var e Error
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: body not JSON: %v", tc.url, err)
		}
		resp.Body.Close()
		if e.Error != tc.wantError || e.Detail != tc.wantDet {
			t.Errorf("%s: error = %+v", tc.url, e)
		}
	}
}

func TestStatsEmptyDataset(t *testing.T) {
	srv := NewServer(&Dataset{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var st Stats
	resp := getJSON(t, ts.URL+"/v1/stats", &st)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200 on empty dataset", resp.StatusCode)
	}
	if st.NATedAddresses != 0 || st.DynamicPrefixes != 0 || st.MaxUsers != 0 || !st.Empty {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestObsEndpoints(t *testing.T) {
	srv, _ := testServer(t)
	srv.Obs = obs.NewRegistry()
	srv.Manifest = func() *obs.Manifest { return obs.NewManifest() }
	srv.EnablePprof = true
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, err := http.Get(ts.URL + "/v1/check?ip=8.8.8.8"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := `wall_api_requests_total{endpoint="check"} 1`; !strings.Contains(string(body), want) {
		t.Errorf("/metrics missing %q:\n%s", want, body)
	}
	resp, err = http.Get(ts.URL + "/debug/manifest")
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("/debug/manifest not JSON: %v", err)
	}
	resp.Body.Close()
	if m.GoVersion == "" {
		t.Errorf("manifest missing go version: %+v", m)
	}
	resp, err = http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", resp.StatusCode)
	}
}

func TestSortedNATed(t *testing.T) {
	d := &Dataset{NATUsers: map[iputil.Addr]int{9: 2, 3: 2, 7: 2}}
	got := d.SortedNATed()
	if len(got) != 3 || got[0] != 3 || got[2] != 9 {
		t.Errorf("SortedNATed = %v", got)
	}
}
