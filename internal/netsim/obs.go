package netsim

import "github.com/reuseblock/reuseblock/internal/obs"

// Record adds this stats snapshot to the registry's fabric counters. All
// five are event-order counts from a single-threaded simulator instance, so
// summing them across vantage instances is deterministic for any worker
// count. Nil-safe: a nil registry records nothing.
func (s Stats) Record(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("netsim_sent_total").Add(s.Sent)
	reg.Counter("netsim_delivered_total").Add(s.Delivered)
	reg.Counter("netsim_dropped_total").Add(s.Dropped)
	reg.Counter("netsim_noroute_total").Add(s.NoRoute)
	reg.Counter("netsim_fault_dropped_total").Add(s.FaultDropped)
}
