package netsim

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// shardScript runs a deterministic ping-pong workload over a sharded fabric
// and returns a transcript of every delivery: a small mesh of echo nodes
// spread across /16 blocks (so they land on different shards), each pinging
// every other node a few times. The transcript captures delivery order and
// payload bytes, so any nondeterminism in the barrier protocol shows up.
func shardScript(t *testing.T, shards, workers int, seed int64) []string {
	t.Helper()
	g, err := NewShardGroup(shards, workers, Config{
		Loss:          0.1,
		LatencyBase:   20 * time.Millisecond,
		LatencyJitter: 30 * time.Millisecond,
		Seed:          seed,
	})
	if err != nil {
		t.Fatalf("NewShardGroup: %v", err)
	}

	// One endpoint per /16 block 0..7, so with 4 shards each shard owns two.
	var eps []Endpoint
	for b := 0; b < 8; b++ {
		eps = append(eps, Endpoint{Addr: iputil.Addr(uint32(b)<<16 | 10), Port: 7000})
	}
	var log []string
	socks := make([]Socket, len(eps))
	for i, ep := range eps {
		sh := g.ShardFor(ep.Addr)
		s, err := sh.Net.Listen(ep)
		if err != nil {
			t.Fatalf("Listen %s: %v", ep, err)
		}
		i := i
		s.SetHandler(func(from Endpoint, payload []byte) {
			log = append(log, fmt.Sprintf("%s n%d<-%s %q",
				sh.Clock.Now().Format("15:04:05.000"), i, from, payload))
			// Echo once so traffic keeps crossing shard boundaries.
			if len(payload) < 12 {
				socks[i].Send(from, append([]byte("re:"), payload...))
			}
		})
		socks[i] = s
	}
	for i, s := range socks {
		for j := range eps {
			if i == j {
				continue
			}
			s.Send(eps[j], []byte(fmt.Sprintf("p%d-%d", i, j)))
		}
	}
	g.RunFor(2 * time.Second)
	if got, want := g.Now(), Epoch.Add(2*time.Second); !got.Equal(want) {
		t.Fatalf("group time = %v, want %v", got, want)
	}
	for _, sh := range g.Shards() {
		if !sh.Clock.Now().Equal(g.Now()) {
			t.Fatalf("shard clock %v out of lockstep with group %v", sh.Clock.Now(), g.Now())
		}
	}
	return log
}

// TestShardGroupDeterministic pins that a sharded run is a pure function of
// (seed, shard count): repeated runs and different worker counts must produce
// identical delivery transcripts.
func TestShardGroupDeterministic(t *testing.T) {
	base := shardScript(t, 4, 1, 42)
	if len(base) == 0 {
		t.Fatal("workload produced no deliveries")
	}
	crossed := false
	for _, line := range base {
		if line != "" {
			crossed = true
			break
		}
	}
	if !crossed {
		t.Fatal("no cross-shard traffic observed")
	}
	for _, workers := range []int{2, 4, 8} {
		got := shardScript(t, 4, workers, 42)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d deliveries, want %d", workers, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: transcript diverges at %d:\n got %s\nwant %s",
					workers, i, got[i], base[i])
			}
		}
	}
}

// TestShardGroupGOMAXPROCSInvariance pins scheduling invariance the hard
// way: the same sharded run under GOMAXPROCS=1 and the test default.
func TestShardGroupGOMAXPROCSInvariance(t *testing.T) {
	base := shardScript(t, 4, 4, 7)
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	got := shardScript(t, 4, 4, 7)
	if len(got) != len(base) {
		t.Fatalf("GOMAXPROCS=1: %d deliveries, want %d", len(got), len(base))
	}
	for i := range got {
		if got[i] != base[i] {
			t.Fatalf("GOMAXPROCS=1 diverges at %d:\n got %s\nwant %s", i, got[i], base[i])
		}
	}
}

// TestShardGroupLookaheadSafety drives zero-jitter traffic timed exactly on
// window boundaries: a send fired by an event at the barrier instant must
// still arrive (delivery lands in a later window, never lost between them).
func TestShardGroupLookaheadSafety(t *testing.T) {
	const lat = 10 * time.Millisecond
	g, err := NewShardGroup(2, 1, Config{LatencyBase: lat, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := Endpoint{Addr: iputil.Addr(0x0000000a), Port: 1} // shard 0
	b := Endpoint{Addr: iputil.Addr(0x0001000a), Port: 1} // shard 1
	sa, err := g.ShardFor(a.Addr).Net.Listen(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := g.ShardFor(b.Addr).Net.Listen(b)
	if err != nil {
		t.Fatal(err)
	}
	hops := 0
	sa.SetHandler(func(from Endpoint, payload []byte) {
		hops++
		sa.Send(from, payload)
	})
	sb.SetHandler(func(from Endpoint, payload []byte) {
		hops++
		sb.Send(from, payload)
	})
	sa.Send(b, []byte("x"))
	g.RunFor(time.Second)
	// With zero jitter every hop takes exactly lat, each landing precisely
	// on a window barrier: 1s/10ms = 100 deliveries.
	if want := int(time.Second / lat); hops != want {
		t.Fatalf("observed %d hops, want %d (barrier-instant sends lost?)", hops, want)
	}
}

// TestShardGroupDeadAirJump checks the cursor jumps over empty stretches:
// a single timer far in the future must not cost O(horizon/lookahead) windows.
func TestShardGroupDeadAirJump(t *testing.T) {
	g, err := NewShardGroup(2, 1, Config{LatencyBase: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	g.Shards()[1].Clock.After(23*time.Hour+time.Millisecond, func() { fired = true })
	start := time.Now()
	g.RunFor(24 * time.Hour)
	if !fired {
		t.Fatal("far-future timer did not fire")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dead-air run took %v — cursor jumping broken", elapsed)
	}
	if !g.Now().Equal(Epoch.Add(24 * time.Hour)) {
		t.Fatalf("group time %v, want %v", g.Now(), Epoch.Add(24*time.Hour))
	}
}

// TestShardGroupRejects pins the configurations sharding must refuse.
func TestShardGroupRejects(t *testing.T) {
	if _, err := NewShardGroup(2, 1, Config{Seed: 1}); err == nil {
		t.Fatal("zero LatencyBase accepted")
	}
	hook := func(from, to Endpoint, p []byte) []byte { return p }
	if _, err := NewShardGroup(2, 1, Config{LatencyBase: time.Millisecond, FaultSend: hook}); err == nil {
		t.Fatal("FaultSend accepted on sharded fabric")
	}
	if _, err := NewShardGroup(2, 1, Config{LatencyBase: time.Millisecond, FaultDeliver: hook}); err == nil {
		t.Fatal("FaultDeliver accepted on sharded fabric")
	}
	if _, err := NewShardGroup(0, 1, Config{LatencyBase: time.Millisecond}); err == nil {
		t.Fatal("zero shards accepted")
	}
}

// TestShardGroupNATCrossShard checks NAT traversal works across the shard
// boundary: a NATed host on shard 0 talks to a public node on shard 1 and
// gets replies back through its mapping.
func TestShardGroupNATCrossShard(t *testing.T) {
	g, err := NewShardGroup(2, 1, Config{LatencyBase: 5 * time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gwAddr := iputil.Addr(0x0002000a)                         // /16 block 2 -> shard 0
	pubEP := Endpoint{Addr: iputil.Addr(0x0001000a), Port: 9} // block 1 -> shard 1
	natShard := g.ShardFor(gwAddr)
	nat, err := NewNAT(natShard.Net, NATConfig{PublicAddr: gwAddr})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := nat.Listen(iputil.Addr(0xc0a80101), 5000)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := g.ShardFor(pubEP.Addr).Net.Listen(pubEP)
	if err != nil {
		t.Fatal(err)
	}
	var atPub, atInner int
	pub.SetHandler(func(from Endpoint, payload []byte) {
		atPub++
		if from.Addr != gwAddr {
			t.Errorf("public node saw source %s, want NAT public addr %s", from.Addr, gwAddr)
		}
		pub.Send(from, []byte("pong"))
	})
	inner.SetHandler(func(from Endpoint, payload []byte) { atInner++ })
	inner.Send(pubEP, []byte("ping"))
	g.RunFor(time.Second)
	if atPub != 1 || atInner != 1 {
		t.Fatalf("pub=%d inner=%d deliveries, want 1 and 1", atPub, atInner)
	}
}

// TestShardGroupStats checks the cross-shard counter roll-up: every shard's
// sent/delivered/dropped totals must appear in the group sum, and a lossy
// fabric must show both deliveries and drops.
func TestShardGroupStats(t *testing.T) {
	g, err := NewShardGroup(4, 1, Config{
		Loss:        0.3,
		LatencyBase: 10 * time.Millisecond,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var socks []Socket
	var eps []Endpoint
	for b := 0; b < 4; b++ {
		ep := Endpoint{Addr: iputil.Addr(uint32(b)<<16 | 1), Port: 9000}
		s, err := g.ShardFor(ep.Addr).Net.Listen(ep)
		if err != nil {
			t.Fatal(err)
		}
		s.SetHandler(func(Endpoint, []byte) {})
		socks = append(socks, s)
		eps = append(eps, ep)
	}
	for i, s := range socks {
		for j := range eps {
			if i == j {
				continue
			}
			for k := 0; k < 20; k++ {
				s.Send(eps[j], []byte{byte(k)})
			}
		}
	}
	g.RunFor(time.Second)
	st := g.Stats()
	if st.Sent != 4*3*20 {
		t.Errorf("Sent = %d, want %d", st.Sent, 4*3*20)
	}
	if st.Delivered == 0 || st.Dropped == 0 {
		t.Errorf("lossy fabric stats look wrong: %+v", st)
	}
	if st.Delivered+st.Dropped+st.NoRoute != st.Sent {
		t.Errorf("counters do not add up: %+v", st)
	}
	var manual Stats
	for _, sh := range g.Shards() {
		s := sh.Net.Stats()
		manual.Sent += s.Sent
		manual.Delivered += s.Delivered
		manual.Dropped += s.Dropped
		manual.NoRoute += s.NoRoute
		manual.FaultDropped += s.FaultDropped
	}
	if manual != st {
		t.Errorf("group Stats %+v != per-shard sum %+v", st, manual)
	}
}
