package netsim

import (
	"testing"
	"time"
)

func TestClockOrdering(t *testing.T) {
	c := NewClock()
	var order []int
	c.After(2*time.Second, func() { order = append(order, 2) })
	c.After(1*time.Second, func() { order = append(order, 1) })
	c.After(3*time.Second, func() { order = append(order, 3) })
	c.Drain(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if got := c.Now().Sub(Epoch); got != 3*time.Second {
		t.Errorf("final time = %v", got)
	}
}

func TestClockSameInstantFIFO(t *testing.T) {
	c := NewClock()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		c.After(time.Second, func() { order = append(order, i) })
	}
	c.Drain(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events out of order: %v", order)
		}
	}
}

func TestClockNestedScheduling(t *testing.T) {
	c := NewClock()
	fired := false
	c.After(time.Second, func() {
		c.After(time.Second, func() { fired = true })
	})
	c.RunFor(1500 * time.Millisecond)
	if fired {
		t.Error("inner event fired too early")
	}
	c.RunFor(time.Second)
	if !fired {
		t.Error("inner event did not fire")
	}
}

func TestClockRunUntilAdvancesTime(t *testing.T) {
	c := NewClock()
	target := Epoch.Add(time.Hour)
	if n := c.RunUntil(target); n != 0 {
		t.Errorf("ran %d events on empty queue", n)
	}
	if !c.Now().Equal(target) {
		t.Errorf("Now = %v, want %v", c.Now(), target)
	}
}

func TestTimerStop(t *testing.T) {
	c := NewClock()
	fired := false
	tm := c.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Error("first Stop should report true")
	}
	if tm.Stop() {
		t.Error("second Stop should report false")
	}
	c.Drain(0)
	if fired {
		t.Error("cancelled event fired")
	}
	if c.Pending() != 0 {
		t.Errorf("Pending = %d", c.Pending())
	}
}

func TestClockPastEventClamps(t *testing.T) {
	c := NewClock()
	c.RunUntil(Epoch.Add(time.Minute))
	fired := false
	c.At(Epoch, func() { fired = true }) // in the past
	c.Step()
	if !fired {
		t.Error("past event should fire immediately")
	}
	if c.Now().Before(Epoch.Add(time.Minute)) {
		t.Error("clock went backwards")
	}
}

func TestClockDrainLimit(t *testing.T) {
	c := NewClock()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		c.After(time.Second, reschedule)
	}
	c.After(time.Second, reschedule)
	if n := c.Drain(10); n != 10 {
		t.Errorf("Drain ran %d events", n)
	}
	if count != 10 {
		t.Errorf("count = %d", count)
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	c := NewClock()
	fired := false
	c.After(-time.Hour, func() { fired = true })
	c.Step()
	if !fired {
		t.Error("negative delay should fire immediately")
	}
}
