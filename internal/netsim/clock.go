// Package netsim is a deterministic discrete-event simulator of an IPv4
// datagram network. It provides virtual time, UDP-like lossy datagram
// delivery with latency, address bindings, and NAT gateways with port
// translation, mapping expiry and configurable filtering behaviour.
//
// The simulator exists so the paper's BitTorrent crawler can be exercised
// against a synthetic Internet: months of simulated crawling execute in
// milliseconds, identically on every run for a given seed.
package netsim

import (
	"container/heap"
	"time"
)

// Epoch is the simulation start time; it matches the start of the paper's
// RIPE Atlas observation window (1 Jan 2019).
var Epoch = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

// Clock is a virtual clock driving a single-threaded event loop. Events
// scheduled for the same instant fire in scheduling order.
type Clock struct {
	now    time.Time
	queue  eventQueue
	nextID uint64
}

// NewClock returns a clock positioned at Epoch.
func NewClock() *Clock {
	return &Clock{now: Epoch}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time { return c.now }

// Timer is a handle to a scheduled event; Stop cancels it.
type Timer struct {
	ev *event
}

// Stop cancels the timer; it reports whether the event had not yet fired.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// After schedules fn to run d after the current virtual time.
func (c *Clock) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return c.At(c.now.Add(d), fn)
}

// At schedules fn at an absolute virtual time; times in the past fire on the
// next step.
func (c *Clock) At(t time.Time, fn func()) *Timer {
	if t.Before(c.now) {
		t = c.now
	}
	ev := &event{when: t, seq: c.nextID, fn: fn}
	c.nextID++
	heap.Push(&c.queue, ev)
	return &Timer{ev: ev}
}

// Step runs the earliest pending event, advancing the clock to its time.
// It reports whether an event ran.
func (c *Clock) Step() bool {
	for c.queue.Len() > 0 {
		ev := heap.Pop(&c.queue).(*event)
		if ev.cancelled {
			continue
		}
		c.now = ev.when
		ev.fired = true
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the queue is empty or the next event lies
// beyond t; the clock finishes at t (or later if an event fired exactly
// there). It returns the number of events run.
func (c *Clock) RunUntil(t time.Time) int {
	n := 0
	for {
		ev := c.peek()
		if ev == nil || ev.when.After(t) {
			break
		}
		c.Step()
		n++
	}
	if c.now.Before(t) {
		c.now = t
	}
	return n
}

// RunFor advances the clock by d, running every event due in that window.
func (c *Clock) RunFor(d time.Duration) int {
	return c.RunUntil(c.now.Add(d))
}

// Drain runs events until none remain or limit events have run; limit <= 0
// means no limit. It returns the number of events run.
func (c *Clock) Drain(limit int) int {
	n := 0
	for c.Step() {
		n++
		if limit > 0 && n >= limit {
			break
		}
	}
	return n
}

// Pending returns the number of scheduled (uncancelled) events.
func (c *Clock) Pending() int {
	n := 0
	for _, ev := range c.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

func (c *Clock) peek() *event {
	for c.queue.Len() > 0 {
		ev := c.queue[0]
		if ev.cancelled {
			heap.Pop(&c.queue)
			continue
		}
		return ev
	}
	return nil
}

type event struct {
	when      time.Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}

func (q *eventQueue) Push(x interface{}) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
