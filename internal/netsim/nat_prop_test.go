// Property tests for the NAT model: for any random population of internal
// users behind one gateway, the external port mappings — the crawler's
// entire evidence base — must be distinct per user, stable while live, and
// counted exactly by ActiveMappings. This is the ground-truth side of the
// paper's port-counting lower bound.
package netsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func TestNATMappingsDistinctPerUser(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := newTestNet(t, Config{Seed: seed})
		nat := mustNAT(t, n, NATConfig{
			PublicAddr: iputil.MustParseAddr("100.64.0.1"),
			FirstPort:  uint16(1024 + rng.Intn(60000)),
		})
		server, _ := n.Listen(ep("10.0.0.9", 53))
		ports := make(map[uint16]bool)
		server.SetHandler(func(f Endpoint, _ []byte) {
			if f.Addr != nat.PublicAddr() {
				t.Errorf("seed %d: datagram from %v, want the NAT public address", seed, f.Addr)
			}
			ports[f.Port] = true
		})

		users := 2 + rng.Intn(19)
		socks := make([]Socket, users)
		for u := 0; u < users; u++ {
			priv := iputil.AddrFrom4(192, 168, byte(u>>8), byte(u+1))
			s, err := nat.Listen(priv, uint16(6881+rng.Intn(4)))
			if err != nil {
				t.Fatalf("seed %d: Listen user %d: %v", seed, u, err)
			}
			socks[u] = s
		}
		// Each user sends a few datagrams; re-sends must reuse the same
		// mapping, not burn new ports.
		for round := 0; round < 3; round++ {
			for u, s := range socks {
				s.Send(ep("10.0.0.9", 53), []byte(fmt.Sprintf("%d-%d", u, round)))
			}
		}
		n.Clock().Drain(0)

		if len(ports) != users {
			t.Fatalf("seed %d: %d users produced %d distinct external ports", seed, users, len(ports))
		}
		if got := nat.ActiveMappings(); got != users {
			t.Fatalf("seed %d: ActiveMappings = %d, want %d", seed, got, users)
		}
		// The public endpoint a user reports must stay stable while the
		// mapping is live.
		for u, s := range socks {
			pub, ok := s.PublicEndpoint()
			if !ok || !ports[pub.Port] {
				t.Fatalf("seed %d: user %d public endpoint %v/%v not among observed ports", seed, u, pub, ok)
			}
		}
	}
}

// TestNATMappingExpiryFreesPorts: after the mapping TTL idles out, the same
// user sending again may receive a fresh port, but the distinct-port
// invariant must keep holding for concurrently active users.
func TestNATMappingExpiryFreesPorts(t *testing.T) {
	n := newTestNet(t, Config{})
	const ttlMin = 10
	nat := mustNAT(t, n, NATConfig{PublicAddr: iputil.MustParseAddr("100.64.0.1")})
	server, _ := n.Listen(ep("10.0.0.9", 53))
	server.SetHandler(func(Endpoint, []byte) {})

	u1, _ := nat.Listen(iputil.MustParseAddr("192.168.0.10"), 6881)
	u2, _ := nat.Listen(iputil.MustParseAddr("192.168.0.11"), 6881)
	u1.Send(ep("10.0.0.9", 53), []byte("a"))
	u2.Send(ep("10.0.0.9", 53), []byte("b"))
	n.Clock().Drain(0)
	if got := nat.ActiveMappings(); got != 2 {
		t.Fatalf("ActiveMappings = %d, want 2", got)
	}

	// Idle far past the default TTL; the expired mappings must be gone.
	n.Clock().RunFor(ttlMin * 6 * time.Minute)
	if got := nat.ActiveMappings(); got != 0 {
		t.Fatalf("ActiveMappings after TTL = %d, want 0", got)
	}
	u1.Send(ep("10.0.0.9", 53), []byte("c"))
	u2.Send(ep("10.0.0.9", 53), []byte("d"))
	n.Clock().Drain(0)
	if got := nat.ActiveMappings(); got != 2 {
		t.Fatalf("ActiveMappings after re-send = %d, want 2", got)
	}
	p1, ok1 := u1.PublicEndpoint()
	p2, ok2 := u2.PublicEndpoint()
	if !ok1 || !ok2 || p1.Port == p2.Port {
		t.Fatalf("re-mapped users share a port: %v, %v", p1, p2)
	}
}
