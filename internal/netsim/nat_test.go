package netsim

import (
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func mustNAT(t *testing.T, n *Network, cfg NATConfig) *NAT {
	t.Helper()
	nat, err := NewNAT(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return nat
}

func TestNATOutboundAllocatesMapping(t *testing.T) {
	n := newTestNet(t, Config{})
	nat := mustNAT(t, n, NATConfig{PublicAddr: iputil.MustParseAddr("100.64.0.1"), FirstPort: 5000})
	inner, err := nat.Listen(iputil.MustParseAddr("192.168.0.10"), 6881)
	if err != nil {
		t.Fatal(err)
	}
	server, _ := n.Listen(ep("10.0.0.9", 53))
	var seen Endpoint
	server.SetHandler(func(f Endpoint, _ []byte) { seen = f })

	if _, ok := inner.PublicEndpoint(); ok {
		t.Error("mapping should not exist before first send")
	}
	inner.Send(ep("10.0.0.9", 53), []byte("q"))
	n.Clock().Drain(0)
	if seen != ep("100.64.0.1", 5000) {
		t.Errorf("server saw %v, want NAT public endpoint", seen)
	}
	pub, ok := inner.PublicEndpoint()
	if !ok || pub != ep("100.64.0.1", 5000) {
		t.Errorf("PublicEndpoint = %v, %v", pub, ok)
	}
}

func TestNATTwoUsersTwoPorts(t *testing.T) {
	// The Fig 1 scenario: two internal BitTorrent users behind one public
	// address must appear as one IP with two ports — the crawler's signal.
	n := newTestNet(t, Config{})
	nat := mustNAT(t, n, NATConfig{PublicAddr: iputil.MustParseAddr("100.64.0.1")})
	u1, _ := nat.Listen(iputil.MustParseAddr("192.168.0.10"), 6881)
	u2, _ := nat.Listen(iputil.MustParseAddr("192.168.0.11"), 6881)
	server, _ := n.Listen(ep("10.0.0.9", 53))
	var ports []uint16
	server.SetHandler(func(f Endpoint, _ []byte) { ports = append(ports, f.Port) })
	u1.Send(ep("10.0.0.9", 53), []byte("a"))
	u2.Send(ep("10.0.0.9", 53), []byte("b"))
	n.Clock().Drain(0)
	if len(ports) != 2 || ports[0] == ports[1] {
		t.Errorf("ports = %v, want two distinct", ports)
	}
}

func TestNATInboundFullCone(t *testing.T) {
	n := newTestNet(t, Config{})
	nat := mustNAT(t, n, NATConfig{PublicAddr: iputil.MustParseAddr("100.64.0.1"), Filtering: FullCone})
	inner, _ := nat.Listen(iputil.MustParseAddr("192.168.0.10"), 6881)
	peer, _ := n.Listen(ep("10.0.0.9", 53))
	inner.SetHandler(func(f Endpoint, p []byte) {
		inner.Send(f, []byte("pong"))
	})
	var reply []byte
	peer.SetHandler(func(_ Endpoint, p []byte) { reply = p })

	// Establish the mapping by sending anywhere.
	other, _ := n.Listen(ep("10.0.0.8", 1))
	inner.Send(ep("10.0.0.8", 1), []byte("open"))
	_ = other
	n.Clock().Drain(0)
	pub, _ := inner.PublicEndpoint()

	// Unsolicited ping from a third party must pass a full-cone NAT.
	peer.Send(pub, []byte("ping"))
	n.Clock().Drain(0)
	if string(reply) != "pong" {
		t.Errorf("no pong through full-cone NAT: %q", reply)
	}
}

func TestNATInboundAddressRestricted(t *testing.T) {
	n := newTestNet(t, Config{})
	nat := mustNAT(t, n, NATConfig{PublicAddr: iputil.MustParseAddr("100.64.0.1"), Filtering: AddressRestricted})
	inner, _ := nat.Listen(iputil.MustParseAddr("192.168.0.10"), 6881)
	got := 0
	inner.SetHandler(func(Endpoint, []byte) { got++ })
	known, _ := n.Listen(ep("10.0.0.8", 1))
	stranger, _ := n.Listen(ep("10.0.0.9", 1))
	_ = known

	inner.Send(ep("10.0.0.8", 1), []byte("open"))
	n.Clock().Drain(0)
	pub, _ := inner.PublicEndpoint()

	stranger.Send(pub, []byte("x")) // filtered
	known.Send(pub, []byte("y"))    // passes
	n.Clock().Drain(0)
	if got != 1 {
		t.Errorf("delivered %d, want 1 (stranger filtered)", got)
	}
}

func TestNATMappingExpiryChangesPort(t *testing.T) {
	n := newTestNet(t, Config{})
	nat := mustNAT(t, n, NATConfig{
		PublicAddr: iputil.MustParseAddr("100.64.0.1"),
		MappingTTL: time.Minute,
	})
	inner, _ := nat.Listen(iputil.MustParseAddr("192.168.0.10"), 6881)
	sink, _ := n.Listen(ep("10.0.0.9", 53))
	sink.SetHandler(func(Endpoint, []byte) {})

	inner.Send(ep("10.0.0.9", 53), []byte("a"))
	n.Clock().Drain(0)
	p1, _ := inner.PublicEndpoint()

	n.Clock().RunFor(2 * time.Minute) // idle past TTL
	if _, ok := inner.PublicEndpoint(); ok {
		t.Error("expired mapping still reported")
	}
	inner.Send(ep("10.0.0.9", 53), []byte("b"))
	n.Clock().Drain(0)
	p2, _ := inner.PublicEndpoint()
	if p1.Port == p2.Port {
		t.Errorf("port did not change after expiry: %v -> %v", p1, p2)
	}
}

func TestNATMappingRefreshedByOutbound(t *testing.T) {
	n := newTestNet(t, Config{})
	nat := mustNAT(t, n, NATConfig{
		PublicAddr: iputil.MustParseAddr("100.64.0.1"),
		MappingTTL: time.Minute,
	})
	inner, _ := nat.Listen(iputil.MustParseAddr("192.168.0.10"), 6881)
	sink, _ := n.Listen(ep("10.0.0.9", 53))
	sink.SetHandler(func(Endpoint, []byte) {})

	inner.Send(ep("10.0.0.9", 53), []byte("a"))
	n.Clock().Drain(0)
	p1, _ := inner.PublicEndpoint()
	for i := 0; i < 5; i++ {
		n.Clock().RunFor(30 * time.Second) // within TTL
		inner.Send(ep("10.0.0.9", 53), []byte("keepalive"))
		n.Clock().Drain(0)
	}
	p2, ok := inner.PublicEndpoint()
	if !ok || p1 != p2 {
		t.Errorf("refreshed mapping changed: %v -> %v (%v)", p1, p2, ok)
	}
}

func TestNATConflictsWithBinding(t *testing.T) {
	n := newTestNet(t, Config{})
	if _, err := n.Listen(ep("100.64.0.1", 9)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewNAT(n, NATConfig{PublicAddr: iputil.MustParseAddr("100.64.0.1")}); err == nil {
		t.Error("NAT over bound address should fail")
	}
	nat := mustNAT(t, n, NATConfig{PublicAddr: iputil.MustParseAddr("100.64.0.2")})
	_ = nat
	if _, err := n.Listen(ep("100.64.0.2", 9)); err == nil {
		t.Error("binding on NAT public address should fail")
	}
	if _, err := NewNAT(n, NATConfig{PublicAddr: iputil.MustParseAddr("100.64.0.2")}); err == nil {
		t.Error("duplicate NAT should fail")
	}
}

func TestNATInternalDoubleBind(t *testing.T) {
	n := newTestNet(t, Config{})
	nat := mustNAT(t, n, NATConfig{PublicAddr: iputil.MustParseAddr("100.64.0.1")})
	if _, err := nat.Listen(iputil.MustParseAddr("192.168.0.10"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := nat.Listen(iputil.MustParseAddr("192.168.0.10"), 1); err == nil {
		t.Error("internal double bind should fail")
	}
}

func TestNATSocketClose(t *testing.T) {
	n := newTestNet(t, Config{})
	nat := mustNAT(t, n, NATConfig{PublicAddr: iputil.MustParseAddr("100.64.0.1")})
	inner, _ := nat.Listen(iputil.MustParseAddr("192.168.0.10"), 1)
	sink, _ := n.Listen(ep("10.0.0.9", 53))
	sink.SetHandler(func(Endpoint, []byte) {})
	inner.Send(ep("10.0.0.9", 53), []byte("a"))
	n.Clock().Drain(0)
	if nat.ActiveMappings() != 1 {
		t.Fatalf("ActiveMappings = %d", nat.ActiveMappings())
	}
	inner.Close()
	if nat.ActiveMappings() != 0 {
		t.Errorf("mappings survive close: %d", nat.ActiveMappings())
	}
	inner.Send(ep("10.0.0.9", 53), []byte("late")) // ignored
	n.Clock().Drain(0)
	if _, err := nat.Listen(iputil.MustParseAddr("192.168.0.10"), 1); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}
