package netsim

import (
	"fmt"
	"time"

	"github.com/reuseblock/reuseblock/internal/ipset"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Filtering selects the NAT's inbound filtering behaviour (RFC 4787 terms).
type Filtering int

// NAT filtering modes.
const (
	// FullCone (endpoint-independent filtering): once a mapping exists,
	// any external host may send to it. DHT nodes behind such NATs are
	// reachable by the crawler's unsolicited bt_ping.
	FullCone Filtering = iota
	// AddressRestricted: inbound packets are accepted only from external
	// addresses the internal host has previously contacted. The crawler's
	// unsolicited pings are filtered unless the node has talked to the
	// crawler before — a major source of crawler under-counting.
	AddressRestricted
)

// NATConfig tunes a NAT gateway.
type NATConfig struct {
	// PublicAddr is the gateway's single public address — the address the
	// paper's crawler would (or would not) flag as NATed.
	PublicAddr iputil.Addr
	// Filtering selects the inbound filtering mode.
	Filtering Filtering
	// MappingTTL is the idle timeout after which a port mapping expires;
	// expired mappings force the internal host onto a fresh public port,
	// producing the "port changed / stale info" confound of §3.1.
	MappingTTL time.Duration
	// FirstPort is the first external port handed out; mappings use
	// consecutive ports (wrapping) like many CPE NAT implementations.
	FirstPort uint16
}

// NAT is a network address translator fronting any number of internal hosts
// with a single public address.
//
// Mapping state is pooled: mappings live in one index-addressed slice with a
// freelist, and byExt/byInt store int32 slot indices rather than pointers.
// At paper scale the NAT population dominates the world (the paper's point
// is that most of the DHT sits behind reused gateway addresses), so mapping
// records are the second-largest per-host cost after node state. Contacted-
// peer sets for AddressRestricted filtering are compact address sets instead
// of maps for the same reason.
type NAT struct {
	net    *Network
	cfg    NATConfig
	next   uint16
	byExt  map[uint16]int32           // external port -> index into mslots
	byInt  map[internalKey]int32      // internal endpoint -> index into mslots
	mslots []mapping                  // pooled mapping records
	mfree  []int32                    // freelist of vacated slots
	socks  map[internalKey]*natSocket // bound internal sockets
	peers  map[internalKey]*ipset.Set // contacted external addrs (for filtering)
}

type internalKey struct {
	addr iputil.Addr // private address of the internal host
	port uint16
}

type mapping struct {
	intKey   internalKey
	extPort  uint16
	lastUsed time.Time
}

// NewNAT registers a NAT gateway on the network. The public address must not
// already be bound or fronted by another NAT.
func NewNAT(n *Network, cfg NATConfig) (*NAT, error) {
	if _, exists := n.nats[cfg.PublicAddr]; exists {
		return nil, fmt.Errorf("netsim: NAT already present at %s", cfg.PublicAddr)
	}
	for ep := range n.bindings {
		if ep.Addr == cfg.PublicAddr {
			return nil, fmt.Errorf("netsim: %s already has direct bindings", cfg.PublicAddr)
		}
	}
	if cfg.MappingTTL <= 0 {
		cfg.MappingTTL = 10 * time.Minute
	}
	if cfg.FirstPort == 0 {
		cfg.FirstPort = 1024
	}
	nat := &NAT{
		net:   n,
		cfg:   cfg,
		next:  cfg.FirstPort,
		byExt: make(map[uint16]int32),
		byInt: make(map[internalKey]int32),
		socks: make(map[internalKey]*natSocket),
		peers: make(map[internalKey]*ipset.Set),
	}
	n.nats[cfg.PublicAddr] = nat
	return nat, nil
}

// PublicAddr returns the NAT's public address.
func (nat *NAT) PublicAddr() iputil.Addr { return nat.cfg.PublicAddr }

// Listen binds an internal (private) endpoint behind the NAT.
func (nat *NAT) Listen(privateAddr iputil.Addr, privatePort uint16) (Socket, error) {
	key := internalKey{privateAddr, privatePort}
	if _, used := nat.socks[key]; used {
		return nil, fmt.Errorf("%w: internal %s:%d", ErrBound, privateAddr, privatePort)
	}
	s := &natSocket{nat: nat, key: key}
	nat.socks[key] = s
	return s, nil
}

// ActiveMappings returns the number of unexpired port mappings.
func (nat *NAT) ActiveMappings() int {
	now := nat.net.clock.Now()
	n := 0
	for _, mi := range nat.byExt {
		if !nat.expired(&nat.mslots[mi], now) {
			n++
		}
	}
	return n
}

func (nat *NAT) expired(m *mapping, now time.Time) bool {
	return now.Sub(m.lastUsed) > nat.cfg.MappingTTL
}

func (nat *NAT) hasMapping(extPort uint16) bool {
	mi, ok := nat.byExt[extPort]
	return ok && !nat.expired(&nat.mslots[mi], nat.net.clock.Now())
}

// outbound handles a datagram from an internal socket: allocate or refresh
// the mapping and transmit from the public endpoint.
func (nat *NAT) outbound(key internalKey, to Endpoint, payload []byte) {
	now := nat.net.clock.Now()
	mi, ok := nat.byInt[key]
	if ok && nat.expired(&nat.mslots[mi], now) {
		nat.dropMapping(mi)
		ok = false
	}
	if !ok {
		mi, ok = nat.allocate(key, now)
		if !ok {
			nat.net.stats.NoRoute++ // port space exhausted
			return
		}
	}
	m := &nat.mslots[mi]
	m.lastUsed = now
	if nat.cfg.Filtering == AddressRestricted {
		set := nat.peers[key]
		if set == nil {
			set = ipset.New()
			nat.peers[key] = set
		}
		set.Add(uint32(to.Addr))
	}
	nat.net.transmit(Endpoint{nat.cfg.PublicAddr, m.extPort}, to, payload)
}

// inbound handles a datagram arriving at the public address.
func (nat *NAT) inbound(from, to Endpoint, payload []byte) {
	now := nat.net.clock.Now()
	mi, ok := nat.byExt[to.Port]
	if !ok || nat.expired(&nat.mslots[mi], now) {
		if ok {
			nat.dropMapping(mi)
		}
		nat.net.stats.NoRoute++
		nat.net.trace(TraceNoRoute, from, to, len(payload))
		return
	}
	m := &nat.mslots[mi]
	if nat.cfg.Filtering == AddressRestricted {
		set := nat.peers[m.intKey]
		if set == nil || !set.Contains(uint32(from.Addr)) {
			nat.net.stats.NoRoute++
			nat.net.trace(TraceNoRoute, from, to, len(payload))
			return
		}
	}
	s, ok := nat.socks[m.intKey]
	if !ok || s.handler == nil {
		nat.net.stats.NoRoute++
		nat.net.trace(TraceNoRoute, from, to, len(payload))
		return
	}
	// Inbound traffic does not refresh consumer NAT mappings; only
	// outbound does. This asymmetry is what makes stale crawler state
	// realistic.
	nat.net.stats.Delivered++
	nat.net.trace(TraceDeliver, from, to, len(payload))
	s.handler(from, payload)
}

func (nat *NAT) allocate(key internalKey, now time.Time) (int32, bool) {
	for tries := 0; tries < 65536; tries++ {
		port := nat.next
		nat.next++
		if nat.next == 0 {
			nat.next = nat.cfg.FirstPort
		}
		if port == 0 {
			continue
		}
		if old, used := nat.byExt[port]; used {
			if !nat.expired(&nat.mslots[old], now) {
				continue
			}
			nat.dropMapping(old)
		}
		var mi int32
		if k := len(nat.mfree); k > 0 {
			mi = nat.mfree[k-1]
			nat.mfree = nat.mfree[:k-1]
		} else {
			nat.mslots = append(nat.mslots, mapping{})
			mi = int32(len(nat.mslots) - 1)
		}
		nat.mslots[mi] = mapping{intKey: key, extPort: port, lastUsed: now}
		nat.byExt[port] = mi
		nat.byInt[key] = mi
		return mi, true
	}
	return 0, false
}

func (nat *NAT) dropMapping(mi int32) {
	m := &nat.mslots[mi]
	delete(nat.byExt, m.extPort)
	if cur, ok := nat.byInt[m.intKey]; ok && cur == mi {
		delete(nat.byInt, m.intKey)
	}
	nat.mfree = append(nat.mfree, mi)
}

type natSocket struct {
	nat     *NAT
	key     internalKey
	handler Handler
	closed  bool
}

func (s *natSocket) Send(to Endpoint, payload []byte) {
	if s.closed {
		return
	}
	s.nat.outbound(s.key, to, payload)
}

func (s *natSocket) SetHandler(h Handler) { s.handler = h }

func (s *natSocket) PublicEndpoint() (Endpoint, bool) {
	mi, ok := s.nat.byInt[s.key]
	if !ok || s.nat.expired(&s.nat.mslots[mi], s.nat.net.clock.Now()) {
		return Endpoint{}, false
	}
	return Endpoint{s.nat.cfg.PublicAddr, s.nat.mslots[mi].extPort}, true
}

func (s *natSocket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.nat.socks, s.key)
	if mi, ok := s.nat.byInt[s.key]; ok {
		s.nat.dropMapping(mi)
	}
	delete(s.nat.peers, s.key)
}
