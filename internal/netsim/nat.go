package netsim

import (
	"fmt"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Filtering selects the NAT's inbound filtering behaviour (RFC 4787 terms).
type Filtering int

// NAT filtering modes.
const (
	// FullCone (endpoint-independent filtering): once a mapping exists,
	// any external host may send to it. DHT nodes behind such NATs are
	// reachable by the crawler's unsolicited bt_ping.
	FullCone Filtering = iota
	// AddressRestricted: inbound packets are accepted only from external
	// addresses the internal host has previously contacted. The crawler's
	// unsolicited pings are filtered unless the node has talked to the
	// crawler before — a major source of crawler under-counting.
	AddressRestricted
)

// NATConfig tunes a NAT gateway.
type NATConfig struct {
	// PublicAddr is the gateway's single public address — the address the
	// paper's crawler would (or would not) flag as NATed.
	PublicAddr iputil.Addr
	// Filtering selects the inbound filtering mode.
	Filtering Filtering
	// MappingTTL is the idle timeout after which a port mapping expires;
	// expired mappings force the internal host onto a fresh public port,
	// producing the "port changed / stale info" confound of §3.1.
	MappingTTL time.Duration
	// FirstPort is the first external port handed out; mappings use
	// consecutive ports (wrapping) like many CPE NAT implementations.
	FirstPort uint16
}

// NAT is a network address translator fronting any number of internal hosts
// with a single public address.
type NAT struct {
	net   *Network
	cfg   NATConfig
	next  uint16
	byExt map[uint16]*mapping                  // external port -> mapping
	byInt map[internalKey]*mapping             // internal endpoint -> mapping
	socks map[internalKey]*natSocket           // bound internal sockets
	peers map[internalKey]map[iputil.Addr]bool // contacted external addrs (for filtering)
}

type internalKey struct {
	addr iputil.Addr // private address of the internal host
	port uint16
}

type mapping struct {
	intKey   internalKey
	extPort  uint16
	lastUsed time.Time
}

// NewNAT registers a NAT gateway on the network. The public address must not
// already be bound or fronted by another NAT.
func NewNAT(n *Network, cfg NATConfig) (*NAT, error) {
	if _, exists := n.nats[cfg.PublicAddr]; exists {
		return nil, fmt.Errorf("netsim: NAT already present at %s", cfg.PublicAddr)
	}
	for ep := range n.bindings {
		if ep.Addr == cfg.PublicAddr {
			return nil, fmt.Errorf("netsim: %s already has direct bindings", cfg.PublicAddr)
		}
	}
	if cfg.MappingTTL <= 0 {
		cfg.MappingTTL = 10 * time.Minute
	}
	if cfg.FirstPort == 0 {
		cfg.FirstPort = 1024
	}
	nat := &NAT{
		net:   n,
		cfg:   cfg,
		next:  cfg.FirstPort,
		byExt: make(map[uint16]*mapping),
		byInt: make(map[internalKey]*mapping),
		socks: make(map[internalKey]*natSocket),
		peers: make(map[internalKey]map[iputil.Addr]bool),
	}
	n.nats[cfg.PublicAddr] = nat
	return nat, nil
}

// PublicAddr returns the NAT's public address.
func (nat *NAT) PublicAddr() iputil.Addr { return nat.cfg.PublicAddr }

// Listen binds an internal (private) endpoint behind the NAT.
func (nat *NAT) Listen(privateAddr iputil.Addr, privatePort uint16) (Socket, error) {
	key := internalKey{privateAddr, privatePort}
	if _, used := nat.socks[key]; used {
		return nil, fmt.Errorf("%w: internal %s:%d", ErrBound, privateAddr, privatePort)
	}
	s := &natSocket{nat: nat, key: key}
	nat.socks[key] = s
	return s, nil
}

// ActiveMappings returns the number of unexpired port mappings.
func (nat *NAT) ActiveMappings() int {
	now := nat.net.clock.Now()
	n := 0
	for _, m := range nat.byExt {
		if !nat.expired(m, now) {
			n++
		}
	}
	return n
}

func (nat *NAT) expired(m *mapping, now time.Time) bool {
	return now.Sub(m.lastUsed) > nat.cfg.MappingTTL
}

func (nat *NAT) hasMapping(extPort uint16) bool {
	m, ok := nat.byExt[extPort]
	return ok && !nat.expired(m, nat.net.clock.Now())
}

// outbound handles a datagram from an internal socket: allocate or refresh
// the mapping and transmit from the public endpoint.
func (nat *NAT) outbound(key internalKey, to Endpoint, payload []byte) {
	now := nat.net.clock.Now()
	m, ok := nat.byInt[key]
	if ok && nat.expired(m, now) {
		nat.dropMapping(m)
		ok = false
	}
	if !ok {
		m = nat.allocate(key, now)
		if m == nil {
			nat.net.stats.NoRoute++ // port space exhausted
			return
		}
	}
	m.lastUsed = now
	if nat.cfg.Filtering == AddressRestricted {
		set := nat.peers[key]
		if set == nil {
			set = make(map[iputil.Addr]bool)
			nat.peers[key] = set
		}
		set[to.Addr] = true
	}
	nat.net.transmit(Endpoint{nat.cfg.PublicAddr, m.extPort}, to, payload)
}

// inbound handles a datagram arriving at the public address.
func (nat *NAT) inbound(from, to Endpoint, payload []byte) {
	now := nat.net.clock.Now()
	m, ok := nat.byExt[to.Port]
	if !ok || nat.expired(m, now) {
		if ok {
			nat.dropMapping(m)
		}
		nat.net.stats.NoRoute++
		nat.net.trace(TraceNoRoute, from, to, len(payload))
		return
	}
	if nat.cfg.Filtering == AddressRestricted && !nat.peers[m.intKey][from.Addr] {
		nat.net.stats.NoRoute++
		nat.net.trace(TraceNoRoute, from, to, len(payload))
		return
	}
	s, ok := nat.socks[m.intKey]
	if !ok || s.handler == nil {
		nat.net.stats.NoRoute++
		nat.net.trace(TraceNoRoute, from, to, len(payload))
		return
	}
	// Inbound traffic does not refresh consumer NAT mappings; only
	// outbound does. This asymmetry is what makes stale crawler state
	// realistic.
	nat.net.stats.Delivered++
	nat.net.trace(TraceDeliver, from, to, len(payload))
	s.handler(from, payload)
}

func (nat *NAT) allocate(key internalKey, now time.Time) *mapping {
	for tries := 0; tries < 65536; tries++ {
		port := nat.next
		nat.next++
		if nat.next == 0 {
			nat.next = nat.cfg.FirstPort
		}
		if port == 0 {
			continue
		}
		if old, used := nat.byExt[port]; used {
			if !nat.expired(old, now) {
				continue
			}
			nat.dropMapping(old)
		}
		m := &mapping{intKey: key, extPort: port, lastUsed: now}
		nat.byExt[port] = m
		nat.byInt[key] = m
		return m
	}
	return nil
}

func (nat *NAT) dropMapping(m *mapping) {
	delete(nat.byExt, m.extPort)
	if cur, ok := nat.byInt[m.intKey]; ok && cur == m {
		delete(nat.byInt, m.intKey)
	}
}

type natSocket struct {
	nat     *NAT
	key     internalKey
	handler Handler
	closed  bool
}

func (s *natSocket) Send(to Endpoint, payload []byte) {
	if s.closed {
		return
	}
	s.nat.outbound(s.key, to, payload)
}

func (s *natSocket) SetHandler(h Handler) { s.handler = h }

func (s *natSocket) PublicEndpoint() (Endpoint, bool) {
	m, ok := s.nat.byInt[s.key]
	if !ok || s.nat.expired(m, s.nat.net.clock.Now()) {
		return Endpoint{}, false
	}
	return Endpoint{s.nat.cfg.PublicAddr, m.extPort}, true
}

func (s *natSocket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.nat.socks, s.key)
	if m, ok := s.nat.byInt[s.key]; ok {
		s.nat.dropMapping(m)
	}
	delete(s.nat.peers, s.key)
}
