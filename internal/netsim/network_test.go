package netsim

import (
	"math/rand"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func newTestNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := NewNetwork(NewClock(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func ep(addr string, port uint16) Endpoint {
	return Endpoint{iputil.MustParseAddr(addr), port}
}

func TestListenAndDeliver(t *testing.T) {
	n := newTestNet(t, Config{LatencyBase: 10 * time.Millisecond})
	a, err := n.Listen(ep("10.0.0.1", 1000))
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen(ep("10.0.0.2", 2000))
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	var from Endpoint
	b.SetHandler(func(f Endpoint, p []byte) { from, got = f, p })
	a.Send(ep("10.0.0.2", 2000), []byte("hello"))
	if got != nil {
		t.Error("delivery before clock advanced")
	}
	n.Clock().Drain(0)
	if string(got) != "hello" {
		t.Fatalf("payload = %q", got)
	}
	if from != ep("10.0.0.1", 1000) {
		t.Errorf("from = %v", from)
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDoubleBind(t *testing.T) {
	n := newTestNet(t, Config{})
	if _, err := n.Listen(ep("10.0.0.1", 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen(ep("10.0.0.1", 1000)); err == nil {
		t.Error("double bind should fail")
	}
}

func TestCloseUnbinds(t *testing.T) {
	n := newTestNet(t, Config{})
	s, _ := n.Listen(ep("10.0.0.1", 1000))
	s.Close()
	if n.Bound(ep("10.0.0.1", 1000)) {
		t.Error("closed endpoint still bound")
	}
	if _, err := n.Listen(ep("10.0.0.1", 1000)); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}

func TestNoRouteCounted(t *testing.T) {
	n := newTestNet(t, Config{})
	a, _ := n.Listen(ep("10.0.0.1", 1000))
	a.Send(ep("10.9.9.9", 1), []byte("x"))
	n.Clock().Drain(0)
	if st := n.Stats(); st.NoRoute != 1 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLossIsApplied(t *testing.T) {
	n := newTestNet(t, Config{Loss: 0.5, Seed: 1})
	a, _ := n.Listen(ep("10.0.0.1", 1))
	b, _ := n.Listen(ep("10.0.0.2", 2))
	received := 0
	b.SetHandler(func(Endpoint, []byte) { received++ })
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send(ep("10.0.0.2", 2), []byte{1})
	}
	n.Clock().Drain(0)
	if received < total*4/10 || received > total*6/10 {
		t.Errorf("received %d of %d with 50%% loss", received, total)
	}
	st := n.Stats()
	if st.Dropped+st.Delivered != total {
		t.Errorf("dropped %d + delivered %d != %d", st.Dropped, st.Delivered, total)
	}
}

func TestLatencyOrdering(t *testing.T) {
	n := newTestNet(t, Config{LatencyBase: 20 * time.Millisecond})
	a, _ := n.Listen(ep("10.0.0.1", 1))
	b, _ := n.Listen(ep("10.0.0.2", 2))
	var arrivals []time.Time
	b.SetHandler(func(Endpoint, []byte) { arrivals = append(arrivals, n.Clock().Now()) })
	a.Send(ep("10.0.0.2", 2), []byte{1})
	n.Clock().RunFor(time.Second)
	if len(arrivals) != 1 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if got := arrivals[0].Sub(Epoch); got != 20*time.Millisecond {
		t.Errorf("arrival at +%v, want +20ms", got)
	}
}

func TestPayloadIsolation(t *testing.T) {
	n := newTestNet(t, Config{})
	a, _ := n.Listen(ep("10.0.0.1", 1))
	b, _ := n.Listen(ep("10.0.0.2", 2))
	var got []byte
	b.SetHandler(func(_ Endpoint, p []byte) { got = p })
	buf := []byte("abc")
	a.Send(ep("10.0.0.2", 2), buf)
	buf[0] = 'X' // sender reuses its buffer before delivery
	n.Clock().Drain(0)
	if string(got) != "abc" {
		t.Errorf("payload corrupted by sender buffer reuse: %q", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		n, err := NewNetwork(NewClock(), Config{Loss: 0.3, LatencyBase: time.Millisecond, LatencyJitter: 5 * time.Millisecond, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := n.Listen(ep("10.0.0.1", 1))
		b, _ := n.Listen(ep("10.0.0.2", 2))
		b.SetHandler(func(f Endpoint, p []byte) {
			if len(p) < 10 {
				b.Send(f, append(p, 'x'))
			}
		})
		a.SetHandler(func(f Endpoint, p []byte) {
			if len(p) < 10 {
				a.Send(f, append(p, 'y'))
			}
		})
		for i := 0; i < 50; i++ {
			a.Send(ep("10.0.0.2", 2), []byte{byte(i)})
		}
		n.Clock().Drain(0)
		return n.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Errorf("non-deterministic: %+v vs %+v", s1, s2)
	}
}

func TestInvalidConfigErrors(t *testing.T) {
	bad := []Config{
		{Loss: 1},
		{Loss: -0.1},
		{LatencyBase: -time.Second},
		{LatencyJitter: -time.Second},
	}
	for _, cfg := range bad {
		if _, err := NewNetwork(NewClock(), cfg); err == nil {
			t.Errorf("NewNetwork(%+v) accepted an invalid config", cfg)
		}
	}
	if _, err := NewNetwork(NewClock(), Config{Loss: 0.99}); err != nil {
		t.Errorf("NewNetwork rejected a valid config: %v", err)
	}
}

func TestTracer(t *testing.T) {
	var events []TraceEvent
	clock := NewClock()
	n, err := NewNetwork(clock, Config{
		Trace: func(ev TraceEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.Listen(ep("10.0.0.1", 1))
	b, _ := n.Listen(ep("10.0.0.2", 2))
	b.SetHandler(func(Endpoint, []byte) {})
	a.Send(ep("10.0.0.2", 2), []byte("abc"))
	a.Send(ep("10.9.9.9", 9), []byte("xy"))
	clock.Drain(0)
	var kinds []TraceKind
	for _, ev := range events {
		kinds = append(kinds, ev.Kind)
	}
	want := []TraceKind{TraceSend, TraceSend, TraceDeliver, TraceNoRoute}
	if len(kinds) != len(want) {
		t.Fatalf("events = %c", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %c, want %c", kinds, want)
		}
	}
	if events[2].Size != 3 || events[2].From != ep("10.0.0.1", 1) {
		t.Errorf("deliver event = %+v", events[2])
	}
}

func TestTracerSeesDrops(t *testing.T) {
	drops, sends := 0, 0
	clock := NewClock()
	n, err := NewNetwork(clock, Config{
		Loss: 0.5, Seed: 3,
		Trace: func(ev TraceEvent) {
			switch ev.Kind {
			case TraceDrop:
				drops++
			case TraceSend:
				sends++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := n.Listen(ep("10.0.0.1", 1))
	b, _ := n.Listen(ep("10.0.0.2", 2))
	b.SetHandler(func(Endpoint, []byte) {})
	for i := 0; i < 400; i++ {
		a.Send(ep("10.0.0.2", 2), []byte{1})
	}
	clock.Drain(0)
	if sends != 400 {
		t.Errorf("sends = %d", sends)
	}
	if drops < 120 || drops > 280 {
		t.Errorf("drops = %d at 50%% loss", drops)
	}
	if int64(drops) != n.Stats().Dropped {
		t.Errorf("trace drops %d != stats %d", drops, n.Stats().Dropped)
	}
}

// TestFaultHooks: FaultSend and FaultDeliver can drop and rewrite datagrams,
// drops are counted in FaultDropped and traced as TraceFaultDrop, and the
// conservation invariant extends to fault drops.
func TestFaultHooks(t *testing.T) {
	var kinds []TraceKind
	cfg := Config{
		Trace: func(ev TraceEvent) { kinds = append(kinds, ev.Kind) },
		FaultSend: func(from, to Endpoint, p []byte) []byte {
			if len(p) > 0 && p[0] == 'D' {
				return nil // drop send-side
			}
			return p
		},
		FaultDeliver: func(from, to Endpoint, p []byte) []byte {
			if len(p) > 0 && p[0] == 'X' {
				return nil // drop deliver-side
			}
			if len(p) > 0 && p[0] == 'R' {
				return []byte("rewritten")
			}
			return p
		},
	}
	n := newTestNet(t, cfg)
	a, _ := n.Listen(ep("10.0.0.1", 1))
	b, _ := n.Listen(ep("10.0.0.2", 2))
	var got []string
	b.SetHandler(func(_ Endpoint, p []byte) { got = append(got, string(p)) })
	for _, payload := range []string{"Drop-me", "X-drop-me", "Rewrite", "pass"} {
		a.Send(ep("10.0.0.2", 2), []byte(payload))
	}
	n.Clock().Drain(0)
	if len(got) != 2 || got[0] != "rewritten" || got[1] != "pass" {
		t.Errorf("delivered = %q", got)
	}
	st := n.Stats()
	if st.FaultDropped != 2 {
		t.Errorf("FaultDropped = %d, want 2", st.FaultDropped)
	}
	if st.Sent != st.Delivered+st.Dropped+st.NoRoute+st.FaultDropped {
		t.Errorf("conservation violated with fault hooks: %+v", st)
	}
	faultDrops := 0
	for _, k := range kinds {
		if k == TraceFaultDrop {
			faultDrops++
		}
	}
	if faultDrops != 2 {
		t.Errorf("TraceFaultDrop events = %d, want 2", faultDrops)
	}
}

// TestConservationProperty: every sent datagram is eventually dropped,
// delivered, or unroutable — nothing is duplicated or lost in accounting.
func TestConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		clock := NewClock()
		n, err := NewNetwork(clock, Config{Loss: rng.Float64() * 0.9, Seed: rng.Int63()})
		if err != nil {
			t.Fatal(err)
		}
		var socks []Socket
		for i := 0; i < 5; i++ {
			s, err := n.Listen(ep("10.0.0."+string(rune('1'+i)), uint16(i+1)))
			if err != nil {
				t.Fatal(err)
			}
			s.SetHandler(func(Endpoint, []byte) {})
			socks = append(socks, s)
		}
		total := 0
		for i := 0; i < 300; i++ {
			src := socks[rng.Intn(len(socks))]
			dst := ep("10.0.0."+string(rune('1'+rng.Intn(7))), uint16(rng.Intn(7)+1))
			src.Send(dst, []byte{byte(i)})
			total++
		}
		clock.Drain(0)
		st := n.Stats()
		if st.Sent != int64(total) {
			t.Fatalf("Sent = %d, want %d", st.Sent, total)
		}
		if st.Dropped+st.Delivered+st.NoRoute != st.Sent {
			t.Fatalf("conservation violated: %+v", st)
		}
	}
}
