package netsim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// ShardGroup partitions the fabric into address-range shards, each with its
// own Clock and Network, so independent slices of the simulated Internet can
// run on separate cores. The scheme is conservative parallel discrete-event
// simulation: shards advance in lockstep windows no longer than the
// lookahead (the fabric's LatencyBase), which guarantees any datagram sent
// during a window is delivered strictly after the window's end barrier —
// cross-shard traffic therefore never has to interrupt a running shard. At
// each barrier the accumulated cross-shard messages are sorted by
// (deliverAt, sending shard, send sequence) and scheduled onto the receiving
// clocks, so the outcome is a pure function of (seed, shard count): bit-for-
// bit identical for any worker count or GOMAXPROCS.
//
// A sharded run is NOT byte-equivalent to a monolithic one: each shard draws
// loss and jitter from its own RNG stream, so per-datagram fates differ —
// the same equivalence boundary DESIGN.md §12 documents for the crawl fleet.
// What is pinned instead: determinism for a fixed shard count, and
// scheduling invariance (workers, GOMAXPROCS).
type ShardGroup struct {
	shards    []*Shard
	lookahead time.Duration
	workers   int
	now       time.Time
}

// Shard is one address-range slice of the fabric.
type Shard struct {
	Clock *Clock
	Net   *Network

	group *ShardGroup
	index int
	out   [][]crossMsg // per-destination outboxes, drained at barriers
	seq   uint64       // outgoing cross-shard message counter
}

// crossMsg is a datagram in flight between shards. Loss and jitter were
// already rolled on the sending shard; only delivery remains.
type crossMsg struct {
	deliverAt time.Time
	from, to  Endpoint
	payload   []byte
	srcShard  int
	srcSeq    uint64
}

// NewShardGroup builds n shards over the given fabric config. LatencyBase
// must be positive — it is the lookahead that makes conservative windowing
// sound. Fault hooks are rejected: injectors are stateful in event order
// across the whole fabric, which a partitioned fabric cannot replay (run
// fault scenarios on the monolithic path). workers bounds how many shards
// execute concurrently inside one window; any value yields identical
// results. A shared Trace hook forces sequential windows (the hook would
// race otherwise) but changes no outcome.
func NewShardGroup(n, workers int, cfg Config) (*ShardGroup, error) {
	if n < 1 {
		return nil, fmt.Errorf("netsim: shard count %d < 1", n)
	}
	if cfg.LatencyBase <= 0 {
		return nil, fmt.Errorf("netsim: sharding requires positive LatencyBase lookahead")
	}
	if cfg.FaultSend != nil || cfg.FaultDeliver != nil {
		return nil, fmt.Errorf("netsim: fault hooks are not supported on sharded fabrics")
	}
	if workers < 1 || cfg.Trace != nil {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	g := &ShardGroup{lookahead: cfg.LatencyBase, workers: workers, now: Epoch}
	for i := 0; i < n; i++ {
		shardCfg := cfg
		// Distinct RNG stream per shard; splitmix increment keeps streams
		// decorrelated even for adjacent indices.
		shardCfg.Seed = cfg.Seed ^ int64(uint64(i+1)*0x9e3779b97f4a7c15)
		clock := NewClock()
		net, err := NewNetwork(clock, shardCfg)
		if err != nil {
			return nil, err
		}
		sh := &Shard{Clock: clock, Net: net, group: g, index: i, out: make([][]crossMsg, n)}
		net.forward = sh.forward
		g.shards = append(g.shards, sh)
	}
	return g, nil
}

// Shards returns the shard slice (index i owns address blocks where
// block%n == i).
func (g *ShardGroup) Shards() []*Shard { return g.shards }

// ShardFor returns the shard owning addr. Ownership is by /16 block so one
// gateway's NAT and its whole pool stay on one shard.
func (g *ShardGroup) ShardFor(addr iputil.Addr) *Shard {
	return g.shards[int(uint32(addr)>>16)%len(g.shards)]
}

// Now returns the group's barrier time; all shard clocks sit at this
// instant between RunFor/RunUntil calls.
func (g *ShardGroup) Now() time.Time { return g.now }

// Stats sums traffic counters across shards.
func (g *ShardGroup) Stats() Stats {
	var total Stats
	for _, sh := range g.shards {
		s := sh.Net.Stats()
		total.Sent += s.Sent
		total.Delivered += s.Delivered
		total.Dropped += s.Dropped
		total.NoRoute += s.NoRoute
		total.FaultDropped += s.FaultDropped
	}
	return total
}

// forward intercepts a datagram leaving sh's fabric slice; it reports
// whether the destination belongs to another shard (and was enqueued there).
func (sh *Shard) forward(deliverAt time.Time, from, to Endpoint, payload []byte) bool {
	dst := sh.group.ShardFor(to.Addr).index
	if dst == sh.index {
		return false
	}
	sh.out[dst] = append(sh.out[dst], crossMsg{
		deliverAt: deliverAt,
		from:      from,
		to:        to,
		payload:   payload,
		srcShard:  sh.index,
		srcSeq:    sh.seq,
	})
	sh.seq++
	return true
}

// RunFor advances every shard by d in lockstep windows.
func (g *ShardGroup) RunFor(d time.Duration) { g.RunUntil(g.now.Add(d)) }

// RunUntil advances every shard to t.
func (g *ShardGroup) RunUntil(t time.Time) {
	for {
		g.drain()
		if !g.now.Before(t) {
			return
		}
		end := g.now.Add(g.lookahead)
		if e, ok := g.earliestEvent(); !ok {
			// Nothing scheduled anywhere and inboxes are drained: nothing
			// can happen before t.
			end = t
		} else if e.After(end) {
			// Dead air: jump the window straight to the next event. The
			// window exceeds the lookahead but contains events only at its
			// very end, so sends still land beyond the barrier.
			end = e
		}
		if end.After(t) {
			end = t
		}
		g.runWindow(end)
		g.now = end
	}
}

// drain moves every outbox message onto its receiving shard's clock. Runs
// single-threaded between windows; ordering is (deliverAt, srcShard,
// srcSeq), so scheduling order — and therefore same-instant tie-breaking on
// the receiver — is deterministic.
func (g *ShardGroup) drain() {
	for dst, rcv := range g.shards {
		var pending []crossMsg
		for _, src := range g.shards {
			if msgs := src.out[dst]; len(msgs) > 0 {
				pending = append(pending, msgs...)
				src.out[dst] = msgs[:0]
			}
		}
		if len(pending) == 0 {
			continue
		}
		sort.Slice(pending, func(i, j int) bool {
			a, b := pending[i], pending[j]
			if !a.deliverAt.Equal(b.deliverAt) {
				return a.deliverAt.Before(b.deliverAt)
			}
			if a.srcShard != b.srcShard {
				return a.srcShard < b.srcShard
			}
			return a.srcSeq < b.srcSeq
		})
		for _, m := range pending {
			m := m
			rcv.Clock.At(m.deliverAt, func() {
				rcv.Net.deliver(m.from, m.to, m.payload)
			})
		}
	}
}

// earliestEvent returns the soonest pending event across all shards.
func (g *ShardGroup) earliestEvent() (time.Time, bool) {
	var best time.Time
	found := false
	for _, sh := range g.shards {
		if ev := sh.Clock.peek(); ev != nil {
			if !found || ev.when.Before(best) {
				best = ev.when
				found = true
			}
		}
	}
	return best, found
}

// runWindow advances every shard clock to end, concurrently when the group
// has workers. Shards share no mutable state inside a window (cross-shard
// sends go to the sender-owned outbox), so scheduling cannot affect results.
func (g *ShardGroup) runWindow(end time.Time) {
	if g.workers <= 1 {
		for _, sh := range g.shards {
			sh.Clock.RunUntil(end)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan *Shard, len(g.shards))
	for _, sh := range g.shards {
		next <- sh
	}
	close(next)
	for w := 0; w < g.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range next {
				sh.Clock.RunUntil(end)
			}
		}()
	}
	wg.Wait()
}
