package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Endpoint is a (public address, UDP port) pair.
type Endpoint struct {
	Addr iputil.Addr
	Port uint16
}

// String renders "a.b.c.d:port".
func (e Endpoint) String() string {
	return fmt.Sprintf("%s:%d", e.Addr, e.Port)
}

// Handler receives a datagram delivered to a socket. from is the source
// endpoint as visible on the public network (i.e. after any NAT rewriting).
type Handler func(from Endpoint, payload []byte)

// Socket is a bound UDP-like endpoint on the simulated network. Sockets are
// either directly bound public endpoints (Network.Listen) or internal
// endpoints behind a NAT (NAT.Listen).
type Socket interface {
	// Send transmits payload to a public endpoint.
	Send(to Endpoint, payload []byte)
	// SetHandler installs the receive callback; it must be set before any
	// datagram arrives or deliveries are dropped.
	SetHandler(Handler)
	// PublicEndpoint returns the externally visible endpoint, which for
	// NATed sockets is the current NAT mapping (allocated on first send).
	// ok is false when no mapping exists yet.
	PublicEndpoint() (Endpoint, bool)
	// Close unbinds the socket.
	Close()
}

// Stats counts network activity.
type Stats struct {
	Sent         int64 // datagrams submitted
	Delivered    int64 // datagrams handed to a handler
	Dropped      int64 // lost in transit (random loss)
	NoRoute      int64 // destination not bound / NAT drop
	FaultDropped int64 // dropped by an installed fault hook
}

// TraceKind classifies a traced datagram event.
type TraceKind byte

// Trace event kinds.
const (
	TraceSend      TraceKind = 'S' // datagram submitted to the fabric
	TraceDrop      TraceKind = 'D' // lost to random loss
	TraceDeliver   TraceKind = 'R' // handed to a receiver
	TraceNoRoute   TraceKind = 'X' // destination unbound or filtered
	TraceFaultDrop TraceKind = 'F' // dropped by a fault hook
)

// TraceEvent describes one fabric event for a Tracer.
type TraceEvent struct {
	At   time.Time
	Kind TraceKind
	From Endpoint
	To   Endpoint
	Size int
}

// Tracer observes fabric events; install via Config.Trace. Tracers must not
// mutate the network.
type Tracer func(TraceEvent)

// FaultHook inspects one datagram and may drop or rewrite it: return nil to
// drop, the payload unchanged to pass, or a different slice to rewrite.
// Hooks run on the event-loop goroutine and must be deterministic (any
// randomness must come from a seeded source consulted in event order).
type FaultHook func(from, to Endpoint, payload []byte) []byte

// Config tunes the network fabric.
type Config struct {
	// Loss is the independent drop probability per datagram in [0, 1).
	Loss float64
	// LatencyBase and LatencyJitter shape one-way delay: base plus a
	// uniformly random jitter.
	LatencyBase   time.Duration
	LatencyJitter time.Duration
	// Seed feeds the network's private RNG.
	Seed int64
	// Trace, when set, observes every send/drop/deliver/no-route event —
	// the simulator's tcpdump.
	Trace Tracer
	// FaultSend, when set, sees every datagram as it enters the fabric
	// (after the independent Loss roll) — the place to model link-level
	// misbehaviour such as bursty loss or partitions.
	FaultSend FaultHook
	// FaultDeliver, when set, sees every datagram on the arrival side,
	// before NAT traversal and routing — the place to model receiver-side
	// misbehaviour such as rate limiting or reply corruption.
	FaultDeliver FaultHook
}

// validate rejects configurations NewNetwork must not accept.
func (cfg *Config) validate() error {
	if cfg.Loss < 0 || cfg.Loss >= 1 {
		return fmt.Errorf("netsim: loss %v out of range [0, 1)", cfg.Loss)
	}
	if cfg.LatencyBase < 0 {
		return fmt.Errorf("netsim: negative latency base %v", cfg.LatencyBase)
	}
	if cfg.LatencyJitter < 0 {
		return fmt.Errorf("netsim: negative latency jitter %v", cfg.LatencyJitter)
	}
	return nil
}

// Network simulates the public IPv4 fabric: bindings, loss, latency, NATs.
// All methods must be called from the event loop goroutine (the simulator is
// single-threaded by design — that is what makes runs reproducible).
//
// Binding state is pooled: slot data lives in one index-addressed slice with
// a freelist, the endpoint map stores int32 slot indices, and the Socket a
// caller holds is a small generation-checked handle. A paper-scale world
// binds one socket per public host; keeping those as individual heap objects
// pointed at by a map is exactly the per-host overhead the compact core
// removes.
type Network struct {
	clock    *Clock
	rng      *rand.Rand
	cfg      Config
	bindings map[Endpoint]int32 // endpoint -> index into bslots
	bslots   []bslot
	bfree    []int32 // freelist of vacated slot indices
	nats     map[iputil.Addr]*NAT
	stats    Stats
	// forward, when set by a ShardGroup, sees each datagram after the
	// loss/jitter rolls and payload copy; returning true means the
	// destination lives on another shard and delivery was handed off.
	forward func(deliverAt time.Time, from, to Endpoint, payload []byte) bool
}

// bslot is pooled per-binding state. gen increments on close so a stale
// handle whose slot was recycled cannot reach the new occupant.
type bslot struct {
	ep      Endpoint
	handler Handler
	gen     uint32
	used    bool
}

// bhandle is the Socket returned by Listen: an index into the pool plus the
// generation it was created under.
type bhandle struct {
	net *Network
	idx int32
	gen uint32
}

// NewNetwork builds an empty network on the given clock. It returns an
// error — not a panic — for out-of-range configuration, so user-supplied
// flag values surface as config errors.
func NewNetwork(clock *Clock, cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Network{
		clock:    clock,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		cfg:      cfg,
		bindings: make(map[Endpoint]int32),
		nats:     make(map[iputil.Addr]*NAT),
	}, nil
}

// Clock returns the network's clock.
func (n *Network) Clock() *Clock { return n.clock }

// Stats returns a snapshot of traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// ErrBound is returned when binding an endpoint that is already in use.
var ErrBound = errors.New("netsim: endpoint already bound")

// Listen binds a public endpoint and returns its socket.
func (n *Network) Listen(ep Endpoint) (Socket, error) {
	if _, used := n.bindings[ep]; used {
		return nil, fmt.Errorf("%w: %s", ErrBound, ep)
	}
	if _, natted := n.nats[ep.Addr]; natted {
		return nil, fmt.Errorf("netsim: %s is a NAT public address", ep.Addr)
	}
	var idx int32
	if k := len(n.bfree); k > 0 {
		idx = n.bfree[k-1]
		n.bfree = n.bfree[:k-1]
	} else {
		n.bslots = append(n.bslots, bslot{})
		idx = int32(len(n.bslots) - 1)
	}
	s := &n.bslots[idx]
	s.ep, s.handler, s.used = ep, nil, true
	n.bindings[ep] = idx
	return &bhandle{net: n, idx: idx, gen: s.gen}, nil
}

// Bound reports whether the endpoint is currently bound (directly or as an
// active NAT mapping).
func (n *Network) Bound(ep Endpoint) bool {
	if _, ok := n.bindings[ep]; ok {
		return true
	}
	if nat, ok := n.nats[ep.Addr]; ok {
		return nat.hasMapping(ep.Port)
	}
	return false
}

// slot resolves a handle to its pooled state; nil when the binding was
// closed (possibly recycled for another endpoint since).
func (h *bhandle) slot() *bslot {
	s := &h.net.bslots[h.idx]
	if !s.used || s.gen != h.gen {
		return nil
	}
	return s
}

func (h *bhandle) Send(to Endpoint, payload []byte) {
	if s := h.slot(); s != nil {
		h.net.transmit(s.ep, to, payload)
	}
}

func (h *bhandle) SetHandler(hdl Handler) {
	if s := h.slot(); s != nil {
		s.handler = hdl
	}
}

func (h *bhandle) PublicEndpoint() (Endpoint, bool) {
	if s := h.slot(); s != nil {
		return s.ep, true
	}
	return Endpoint{}, false
}

func (h *bhandle) Close() {
	s := h.slot()
	if s == nil {
		return
	}
	delete(h.net.bindings, s.ep)
	s.used, s.handler = false, nil
	s.gen++
	h.net.bfree = append(h.net.bfree, h.idx)
}

func (n *Network) trace(kind TraceKind, from, to Endpoint, size int) {
	if n.cfg.Trace != nil {
		n.cfg.Trace(TraceEvent{At: n.clock.Now(), Kind: kind, From: from, To: to, Size: size})
	}
}

// transmit moves a datagram across the fabric: apply loss and send-side
// faults, delay, then route.
func (n *Network) transmit(from, to Endpoint, payload []byte) {
	n.stats.Sent++
	n.trace(TraceSend, from, to, len(payload))
	if n.cfg.Loss > 0 && n.rng.Float64() < n.cfg.Loss {
		n.stats.Dropped++
		n.trace(TraceDrop, from, to, len(payload))
		return
	}
	if n.cfg.FaultSend != nil {
		payload = n.cfg.FaultSend(from, to, payload)
		if payload == nil {
			n.stats.FaultDropped++
			n.trace(TraceFaultDrop, from, to, 0)
			return
		}
	}
	delay := n.cfg.LatencyBase
	if n.cfg.LatencyJitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.cfg.LatencyJitter)))
	}
	// Copy the payload so sender-side buffer reuse cannot corrupt
	// in-flight datagrams.
	data := make([]byte, len(payload))
	copy(data, payload)
	if n.forward != nil && n.forward(n.clock.Now().Add(delay), from, to, data) {
		return
	}
	n.clock.After(delay, func() {
		n.deliver(from, to, data)
	})
}

func (n *Network) deliver(from, to Endpoint, payload []byte) {
	if n.cfg.FaultDeliver != nil {
		payload = n.cfg.FaultDeliver(from, to, payload)
		if payload == nil {
			n.stats.FaultDropped++
			n.trace(TraceFaultDrop, from, to, 0)
			return
		}
	}
	if nat, ok := n.nats[to.Addr]; ok {
		nat.inbound(from, to, payload)
		return
	}
	idx, ok := n.bindings[to]
	if !ok || n.bslots[idx].handler == nil {
		n.stats.NoRoute++
		n.trace(TraceNoRoute, from, to, len(payload))
		return
	}
	n.stats.Delivered++
	n.trace(TraceDeliver, from, to, len(payload))
	n.bslots[idx].handler(from, payload)
}
