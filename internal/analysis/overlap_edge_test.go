package analysis

import (
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// emptyInputs builds a collection with feeds and days but no recorded
// addresses — the day-zero state of a real deployment.
func emptyInputs(t *testing.T) *Inputs {
	t.Helper()
	reg, err := blocklist.NewRegistry([]blocklist.Feed{
		{Name: "spam", Type: blocklist.Spam},
	})
	if err != nil {
		t.Fatal(err)
	}
	days := []time.Time{time.Date(2019, 8, 3, 0, 0, 0, 0, time.UTC)}
	return &Inputs{
		Collection: blocklist.NewCollection(reg, days),
		NATUsers:   map[iputil.Addr]int{},
		ASNOf:      func(iputil.Addr) (int, bool) { return 0, false },
	}
}

func TestComputeASOverlapEmpty(t *testing.T) {
	o := ComputeASOverlap(emptyInputs(t))
	if o.ASesWithBlocklisted != 0 || o.ASesWithBT != 0 || o.ASesWithRIPE != 0 {
		t.Fatalf("empty collection produced AS counts: %+v", o)
	}
	if len(o.PerAS) != 0 {
		t.Fatalf("empty collection produced %d per-AS rows", len(o.PerAS))
	}
	if o.Top10Share != 0 || o.TopASShare != 0 || o.TopAS != 0 {
		t.Fatalf("empty collection produced top-AS stats: %+v", o)
	}
	// Figure 3 over nothing must render (with no series) rather than panic.
	if fig := o.Figure3(); fig == nil {
		t.Fatal("Figure3 returned nil")
	}
}

func TestComputeFunnelEmpty(t *testing.T) {
	f := ComputeFunnel(emptyInputs(t), 0, RIPEStages{})
	if *f != (Funnel{}) {
		t.Fatalf("empty inputs produced nonzero funnel: %+v", f)
	}
	if tbl := f.Table(); !strings.Contains(tbl.Render(), "NATed IPs") {
		t.Fatal("funnel table lost its rows")
	}
}

// TestComputeASOverlapSingleAS: with every address in one AS, the top-10 and
// top-AS aggregates all collapse onto that AS, and the shorter-than-ten tail
// must not trip the top-10 window.
func TestComputeASOverlapSingleAS(t *testing.T) {
	in := fixture(t)
	in.ASNOf = func(iputil.Addr) (int, bool) { return 42, true }
	o := ComputeASOverlap(in)
	if o.ASesWithBlocklisted != 1 || len(o.PerAS) != 1 {
		t.Fatalf("single-AS world produced %d ASes", o.ASesWithBlocklisted)
	}
	if o.TopAS != 42 || o.TopASBlocked != 4 {
		t.Fatalf("top AS = %d with %d blocked, want 42 with 4", o.TopAS, o.TopASBlocked)
	}
	if o.Top10Share != 1 || o.TopASShare != 1 {
		t.Fatalf("single AS must own the whole distribution: top10=%v topAS=%v",
			o.Top10Share, o.TopASShare)
	}
	if o.PerAS[0].BT == 0 || o.PerAS[0].RIPE == 0 {
		t.Fatalf("fixture BT/RIPE overlap lost in single-AS world: %+v", o.PerAS[0])
	}
}

// TestComputeASOverlapNoReuseOverlap: a blocklist population that neither
// runs BitTorrent nor sits in RIPE-covered space — every overlap statistic
// must report zero, and Figure 3 must degrade to the blocklisted curve only.
func TestComputeASOverlapNoReuseOverlap(t *testing.T) {
	in := fixture(t)
	in.BTObserved = iputil.NewSet()
	in.RIPEPrefixes = iputil.NewPrefixSet()
	o := ComputeASOverlap(in)
	if o.ASesWithBT != 0 || o.ASesWithRIPE != 0 {
		t.Fatalf("no-overlap world reports BT/RIPE ASes: %+v", o)
	}
	if o.Top10BTShare != 0 || o.Top10RIPEShare != 0 || o.TopASBTShare != 0 || o.TopASRIPEShare != 0 {
		t.Fatalf("no-overlap world reports nonzero shares: %+v", o)
	}
	rendered := o.Figure3().Render()
	if !strings.Contains(rendered, "blocklisted addresses") {
		t.Fatal("Figure3 lost the blocklisted series")
	}
	if strings.Contains(rendered, "BitTorrent") || strings.Contains(rendered, "RIPE") {
		t.Fatalf("Figure3 renders empty series:\n%s", rendered)
	}
	// nil sets must behave exactly like empty sets.
	in.BTObserved = nil
	in.RIPEPrefixes = nil
	o2 := ComputeASOverlap(in)
	if o2.ASesWithBT != 0 || o2.ASesWithRIPE != 0 {
		t.Fatalf("nil BT/RIPE inputs differ from empty: %+v", o2)
	}
}

// TestComputeFunnelNoReuseOverlap: NATed addresses that are never listed and
// stages that cover no blocklisted address must leave every intersection at
// zero while the raw detector counts pass through.
func TestComputeFunnelNoReuseOverlap(t *testing.T) {
	in := fixture(t)
	in.NATUsers = map[iputil.Addr]int{iputil.MustParseAddr("203.0.113.9"): 5}
	in.RIPEPrefixes = iputil.NewPrefixSet()
	far := iputil.NewPrefixSet()
	far.Add(iputil.MustParsePrefix("192.0.2.0/24"))
	f := ComputeFunnel(in, 1234, RIPEStages{SameAS: far, Frequent: far, Daily: far})
	if f.BTIPs != 1234 || f.NATedIPs != 1 {
		t.Fatalf("raw counts mangled: %+v", f)
	}
	if f.NATedBlocklisted != 0 || f.BlocklistedInRIPEPrefixes != 0 ||
		f.SameASBlocklisted != 0 || f.FrequentBlocklisted != 0 || f.DailyBlocklisted != 0 {
		t.Fatalf("disjoint populations produced overlap: %+v", f)
	}
}

// TestComputeASOverlapWorkerInvariance: the sharded walk must match the
// sequential one on an edge-shaped (tiny, single-digit-AS) input too.
func TestComputeASOverlapWorkerInvariance(t *testing.T) {
	seq := fixture(t)
	seq.Workers = 1
	par := fixture(t)
	par.Workers = 4
	a, b := ComputeASOverlap(seq), ComputeASOverlap(par)
	if len(a.PerAS) != len(b.PerAS) {
		t.Fatalf("per-AS rows differ: %d vs %d", len(a.PerAS), len(b.PerAS))
	}
	for i := range a.PerAS {
		if a.PerAS[i] != b.PerAS[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, a.PerAS[i], b.PerAS[i])
		}
	}
	if a.Top10Share != b.Top10Share || a.TopAS != b.TopAS {
		t.Fatalf("aggregates differ: %+v vs %+v", a, b)
	}
}
