package analysis

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// fixture builds a small collection with known reuse structure:
//
//	feed 0 ("spam"): nat1 (3 days), dyn1 (1 day), plain1 (5 days)
//	feed 1 ("rep"):  nat1 (2 days), plain2 (10 days)
//	feed 2 ("ddos"): empty
func fixture(t *testing.T) *Inputs {
	t.Helper()
	reg, err := blocklist.NewRegistry([]blocklist.Feed{
		{Name: "spam", Type: blocklist.Spam},
		{Name: "rep", Type: blocklist.Reputation},
		{Name: "ddos", Type: blocklist.DDoS},
	})
	if err != nil {
		t.Fatal(err)
	}
	days := make([]time.Time, 20)
	for i := range days {
		days[i] = time.Date(2019, 8, 3+i, 0, 0, 0, 0, time.UTC)
	}
	col := blocklist.NewCollection(reg, days)
	nat1 := iputil.MustParseAddr("100.64.0.1")
	dyn1 := iputil.MustParseAddr("10.1.0.7")
	plain1 := iputil.MustParseAddr("20.0.0.1")
	plain2 := iputil.MustParseAddr("20.0.0.2")
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(col.RecordSpan(0, nat1, 0, 2))
	must(col.RecordSpan(0, dyn1, 4, 4))
	must(col.RecordSpan(0, plain1, 0, 4))
	must(col.RecordSpan(1, nat1, 5, 6))
	must(col.RecordSpan(1, plain2, 3, 12))

	dynPrefixes := iputil.NewPrefixSet()
	dynPrefixes.Add(iputil.MustParsePrefix("10.1.0.0/24"))
	ripePrefixes := iputil.NewPrefixSet()
	ripePrefixes.Add(iputil.MustParsePrefix("10.1.0.0/24"))
	ripePrefixes.Add(iputil.MustParsePrefix("20.0.0.0/24"))
	cai := iputil.NewPrefixSet()
	cai.Add(iputil.MustParsePrefix("10.1.0.0/24"))
	cai.Add(iputil.MustParsePrefix("100.64.0.0/24")) // baseline overreach

	bt := iputil.SetOf(nat1, plain1)

	return &Inputs{
		Collection:      col,
		NATUsers:        map[iputil.Addr]int{nat1: 3},
		BTObserved:      bt,
		DynamicPrefixes: dynPrefixes,
		RIPEPrefixes:    ripePrefixes,
		CaiBlocks:       cai,
		ASNOf: func(a iputil.Addr) (int, bool) {
			switch a.Slash24() {
			case iputil.MustParsePrefix("100.64.0.0/24"):
				return 1, true
			case iputil.MustParsePrefix("10.1.0.0/24"):
				return 2, true
			case iputil.MustParsePrefix("20.0.0.0/24"):
				return 3, true
			}
			return 0, false
		},
	}
}

func TestComputePerListReuse(t *testing.T) {
	r := ComputePerListReuse(fixture(t))
	if r.NATedListings != 2 { // nat1 on two feeds
		t.Errorf("NATedListings = %d", r.NATedListings)
	}
	if r.DynamicListings != 1 {
		t.Errorf("DynamicListings = %d", r.DynamicListings)
	}
	if r.CaiDynamicListings != 3 { // dyn1 + nat1 twice (overreach)
		t.Errorf("CaiDynamicListings = %d", r.CaiDynamicListings)
	}
	if r.NATedAddrs != 1 || r.DynamicAddrs != 1 {
		t.Errorf("unique reused addrs = %d/%d", r.NATedAddrs, r.DynamicAddrs)
	}
	if r.FeedsWithoutNATed != 1 || r.FeedsWithoutDynamic != 2 {
		t.Errorf("zero feeds = %d/%d", r.FeedsWithoutNATed, r.FeedsWithoutDynamic)
	}
	if r.NATedPerFeed[0] != 1 || r.NATedPerFeed[1] != 1 || r.NATedPerFeed[2] != 0 {
		t.Errorf("NATedPerFeed = %v", r.NATedPerFeed)
	}
	if len(r.TopNATedFeeds) == 0 || r.TopNATedFeeds[0].Count != 1 {
		t.Errorf("TopNATedFeeds = %v", r.TopNATedFeeds)
	}
	if r.Top10NATedShare != 1 {
		t.Errorf("Top10NATedShare = %v", r.Top10NATedShare)
	}
}

func TestComputeDurations(t *testing.T) {
	d := ComputeDurations(fixture(t))
	if d.All.Len() != 5 {
		t.Fatalf("all listings = %d", d.All.Len())
	}
	// NATed listing days: 3 and 2 -> mean 2.5; dynamic: 1.
	if math.Abs(d.NATedMean-2.5) > 1e-9 {
		t.Errorf("NATedMean = %v", d.NATedMean)
	}
	if d.DynamicMean != 1 {
		t.Errorf("DynamicMean = %v", d.DynamicMean)
	}
	if d.DynamicTwoDay != 1 {
		t.Errorf("DynamicTwoDay = %v", d.DynamicTwoDay)
	}
	if math.Abs(d.NATedTwoDay-0.5) > 1e-9 {
		t.Errorf("NATedTwoDay = %v", d.NATedTwoDay)
	}
	if d.MaxReusedDays != 3 {
		t.Errorf("MaxReusedDays = %d", d.MaxReusedDays)
	}
	fig := d.Figure7()
	if len(fig.Series) != 3 {
		t.Errorf("Figure7 series = %d", len(fig.Series))
	}
}

func TestComputeNATUsers(t *testing.T) {
	in := fixture(t)
	// Add a NATed addr that is NOT blocklisted; it must be excluded.
	in.NATUsers[iputil.MustParseAddr("100.64.0.99")] = 50
	n := ComputeNATUsers(in)
	if n.CDF.Len() != 1 {
		t.Fatalf("CDF over %d addrs, want 1 (only blocklisted)", n.CDF.Len())
	}
	if n.Max != 3 || n.ExactlyTwo != 0 || n.UnderTen != 1 {
		t.Errorf("NATUsers = %+v", n)
	}
}

func TestComputeASOverlap(t *testing.T) {
	o := ComputeASOverlap(fixture(t))
	if o.ASesWithBlocklisted != 3 {
		t.Fatalf("ASes = %d", o.ASesWithBlocklisted)
	}
	if o.ASesWithBT != 2 { // AS1 (nat1) and AS3 (plain1)
		t.Errorf("ASesWithBT = %d", o.ASesWithBT)
	}
	if o.ASesWithRIPE != 2 { // AS2 and AS3 prefixes are RIPE-covered
		t.Errorf("ASesWithRIPE = %d", o.ASesWithRIPE)
	}
	// PerAS ordered ascending by blocklisted count; AS3 (2 addrs) last.
	last := o.PerAS[len(o.PerAS)-1]
	if last.ASN != 3 || last.Blocklisted != 2 {
		t.Errorf("top AS = %+v", last)
	}
	if o.TopAS != 3 || o.TopASBlocked != 2 {
		t.Errorf("TopAS = %d/%d", o.TopAS, o.TopASBlocked)
	}
	if o.Top10Share != 1 { // only 3 ASes, all within top-10
		t.Errorf("Top10Share = %v", o.Top10Share)
	}
	fig := o.Figure3()
	if len(fig.Series) != 3 {
		t.Fatalf("Figure3 series = %d", len(fig.Series))
	}
	for _, s := range fig.Series {
		lastPt := s.Points[len(s.Points)-1]
		if lastPt.Y != 1 {
			t.Errorf("series %q does not end at 1: %v", s.Name, lastPt)
		}
	}
}

func TestComputeFunnel(t *testing.T) {
	in := fixture(t)
	stages := RIPEStages{
		SameAS:   in.RIPEPrefixes,
		Frequent: in.DynamicPrefixes,
		Daily:    in.DynamicPrefixes,
	}
	f := ComputeFunnel(in, 1000, stages)
	if f.BTIPs != 1000 || f.NATedIPs != 1 || f.NATedBlocklisted != 1 {
		t.Errorf("BT path = %+v", f)
	}
	if f.BlocklistedInRIPEPrefixes != 3 { // dyn1, plain1, plain2
		t.Errorf("BlocklistedInRIPEPrefixes = %d", f.BlocklistedInRIPEPrefixes)
	}
	if f.DailyBlocklisted != 1 {
		t.Errorf("DailyBlocklisted = %d", f.DailyBlocklisted)
	}
	out := f.Table().Render()
	if !strings.Contains(out, "NATed + blocklisted IPs") {
		t.Error("funnel table missing rows")
	}
}

func TestScore(t *testing.T) {
	detected := iputil.SetOf(1, 2, 3)
	truth := iputil.SetOf(2, 3, 4, 5)
	pr := Score(detected, truth)
	if pr.TruePositives != 2 || pr.FalsePositives != 1 || pr.FalseNegatives != 2 {
		t.Fatalf("Score = %+v", pr)
	}
	if math.Abs(pr.Precision-2.0/3) > 1e-9 || math.Abs(pr.Recall-0.5) > 1e-9 {
		t.Errorf("P/R = %v/%v", pr.Precision, pr.Recall)
	}
	empty := Score(iputil.NewSet(), iputil.NewSet())
	if empty.Precision != 0 || empty.Recall != 0 {
		t.Error("empty score should be zeros")
	}
}

func TestFigures5And6Ranked(t *testing.T) {
	r := ComputePerListReuse(fixture(t))
	f5 := r.Figure5()
	pts := f5.Series[0].Points
	for i := 1; i < len(pts); i++ {
		if pts[i].Y > pts[i-1].Y {
			t.Fatal("Figure 5 series not descending")
		}
	}
	f6 := r.Figure6()
	if len(f6.Series) != 2 {
		t.Fatalf("Figure 6 series = %d", len(f6.Series))
	}
}

func TestDurationsPerWindowBounds(t *testing.T) {
	in := fixture(t) // 20 contiguous days -> one window
	d := ComputeDurations(in)
	if len(d.MaxReusedPerWindow) != 1 {
		t.Fatalf("windows = %d", len(d.MaxReusedPerWindow))
	}
	if d.MaxReusedPerWindow[0] > 20 {
		t.Errorf("window max %d exceeds window length", d.MaxReusedPerWindow[0])
	}
	if d.MaxReusedPerWindow[0] != d.MaxReusedDays {
		t.Errorf("single-window max %d != overall %d", d.MaxReusedPerWindow[0], d.MaxReusedDays)
	}
}

func TestPerWindowSplitsAcrossGap(t *testing.T) {
	reg, err := blocklist.NewRegistry([]blocklist.Feed{{Name: "f", Type: blocklist.Spam}})
	if err != nil {
		t.Fatal(err)
	}
	col := blocklist.NewCollection(reg, blocklist.MeasurementDays())
	nat := iputil.MustParseAddr("100.64.0.1")
	// Present on the last 5 days of window 1 and first 7 of window 2.
	if err := col.RecordSpan(0, nat, 34, 45); err != nil {
		t.Fatal(err)
	}
	in := &Inputs{
		Collection: col,
		NATUsers:   map[iputil.Addr]int{nat: 2},
		ASNOf:      func(iputil.Addr) (int, bool) { return 0, false },
	}
	d := ComputeDurations(in)
	if d.MaxReusedDays != 12 {
		t.Errorf("overall = %d", d.MaxReusedDays)
	}
	if len(d.MaxReusedPerWindow) != 2 || d.MaxReusedPerWindow[0] != 5 || d.MaxReusedPerWindow[1] != 7 {
		t.Errorf("per-window = %v", d.MaxReusedPerWindow)
	}
}
