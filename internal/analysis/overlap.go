package analysis

import (
	"sort"
	"strconv"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/parallel"
	"github.com/reuseblock/reuseblock/internal/stats"
)

// ASOverlap is the Fig 3 result: how the blocklisted, BitTorrent-observed
// and RIPE-covered address populations distribute over autonomous systems.
type ASOverlap struct {
	// ASesWithBlocklisted counts ASes holding at least one blocklisted
	// address; the two overlap counts are subsets ("29.6%" / "17.1%").
	ASesWithBlocklisted int
	ASesWithBT          int
	ASesWithRIPE        int

	// Top10Share is the fraction of all blocklisted addresses in the ten
	// most-blocklisted ASes (paper: 27.7%); within those ASes, BTShare
	// and RIPEShare are the fractions that use BitTorrent / sit in RIPE
	// prefixes (6.4% / 0.7%).
	Top10Share     float64
	Top10BTShare   float64
	Top10RIPEShare float64

	// TopAS describes the single most-blocklisted AS (the paper's
	// AS4134 analogue).
	TopAS          int
	TopASBlocked   int
	TopASShare     float64
	TopASBTShare   float64
	TopASRIPEShare float64

	// Per-AS address counts, ordered by increasing blocklisted count —
	// the x-axis ordering of Fig 3.
	PerAS []ASCounts
}

// ASCounts aggregates one AS.
type ASCounts struct {
	ASN         int
	Blocklisted int
	BT          int // blocklisted addresses observed running BitTorrent
	RIPE        int // blocklisted addresses inside RIPE-covered prefixes
}

// ComputeASOverlap aggregates blocklisted addresses per AS and their
// intersection with the crawler's BitTorrent sightings and RIPE coverage.
// The address walk is sharded; per-shard AS maps merge by adding counts,
// and the final per-AS ordering comes from an explicit sort, so the result
// is identical for any worker count.
func ComputeASOverlap(in *Inputs) *ASOverlap {
	addrs := in.Collection.AllAddrs().Sorted()
	workers := parallel.Workers(in.Workers)
	chunks := parallel.Chunks(len(addrs), workers)
	partials := parallel.Map(workers, len(chunks), func(ci int) map[int]*ASCounts {
		m := make(map[int]*ASCounts)
		for _, a := range addrs[chunks[ci][0]:chunks[ci][1]] {
			asn, ok := in.ASNOf(a)
			if !ok {
				continue
			}
			c := m[asn]
			if c == nil {
				c = &ASCounts{ASN: asn}
				m[asn] = c
			}
			c.Blocklisted++
			if in.BTObserved != nil && in.BTObserved.Contains(a) {
				c.BT++
			}
			if in.RIPEPrefixes != nil && in.RIPEPrefixes.Covers(a) {
				c.RIPE++
			}
		}
		return m
	})
	byAS := make(map[int]*ASCounts)
	for _, m := range partials {
		for asn, p := range m {
			c := byAS[asn]
			if c == nil {
				c = &ASCounts{ASN: asn}
				byAS[asn] = c
			}
			c.Blocklisted += p.Blocklisted
			c.BT += p.BT
			c.RIPE += p.RIPE
		}
	}
	out := &ASOverlap{}
	for _, c := range byAS {
		out.PerAS = append(out.PerAS, *c)
		out.ASesWithBlocklisted++
		if c.BT > 0 {
			out.ASesWithBT++
		}
		if c.RIPE > 0 {
			out.ASesWithRIPE++
		}
	}
	sort.Slice(out.PerAS, func(i, j int) bool {
		if out.PerAS[i].Blocklisted != out.PerAS[j].Blocklisted {
			return out.PerAS[i].Blocklisted < out.PerAS[j].Blocklisted
		}
		return out.PerAS[i].ASN < out.PerAS[j].ASN
	})
	totalBlocked := 0
	for _, c := range out.PerAS {
		totalBlocked += c.Blocklisted
	}
	n := len(out.PerAS)
	top10Blocked, top10BT, top10RIPE := 0, 0, 0
	for i := n - 10; i < n; i++ {
		if i < 0 {
			continue
		}
		top10Blocked += out.PerAS[i].Blocklisted
		top10BT += out.PerAS[i].BT
		top10RIPE += out.PerAS[i].RIPE
	}
	out.Top10Share = stats.Fraction(top10Blocked, totalBlocked)
	out.Top10BTShare = stats.Fraction(top10BT, top10Blocked)
	out.Top10RIPEShare = stats.Fraction(top10RIPE, top10Blocked)
	if n > 0 {
		top := out.PerAS[n-1]
		out.TopAS = top.ASN
		out.TopASBlocked = top.Blocklisted
		out.TopASShare = stats.Fraction(top.Blocklisted, totalBlocked)
		out.TopASBTShare = stats.Fraction(top.BT, top.Blocklisted)
		out.TopASRIPEShare = stats.Fraction(top.RIPE, top.Blocklisted)
	}
	return out
}

// Figure3 renders the cumulative per-AS distribution: ASes are ordered by
// increasing blocklisted-address count; each curve is the cumulative
// fraction of its own category's addresses, so every curve ends at 1 and
// plateaus where its coverage runs out.
func (o *ASOverlap) Figure3() *stats.Figure {
	f := stats.NewFigure("Figure 3: CDF of blocklisted and reused addresses from each AS",
		"(#) of ASes", "CDF")
	total := func(sel func(ASCounts) int) int {
		t := 0
		for _, c := range o.PerAS {
			t += sel(c)
		}
		return t
	}
	series := func(name string, sel func(ASCounts) int) {
		tot := total(sel)
		if tot == 0 {
			return
		}
		var pts []stats.Point
		cum := 0
		step := len(o.PerAS)/64 + 1
		for i, c := range o.PerAS {
			cum += sel(c)
			if i%step == 0 || i == len(o.PerAS)-1 {
				pts = append(pts, stats.Point{X: float64(i + 1), Y: float64(cum) / float64(tot)})
			}
		}
		f.Add(name, pts)
	}
	series("blocklisted addresses", func(c ASCounts) int { return c.Blocklisted })
	series("blocklisted BitTorrent addresses", func(c ASCounts) int { return c.BT })
	series("blocklisted RIPE addresses", func(c ASCounts) int { return c.RIPE })
	return f
}

// Funnel is the Fig 4 accounting on both detection paths.
type Funnel struct {
	// BitTorrent path.
	BTIPs            int // unique BitTorrent IPs crawled
	NATedIPs         int // confirmed NATed
	NATedBlocklisted int // NATed ∩ blocklisted

	// RIPE path (address counts at each pipeline stage, intersected with
	// the blocklisted set, as in the figure).
	BlocklistedInRIPEPrefixes int
	SameASBlocklisted         int
	FrequentBlocklisted       int
	DailyBlocklisted          int
}

// RIPEStages carries the address sets of the pipeline stages (from
// ripeatlas.Result, expanded to prefixes by the caller).
type RIPEStages struct {
	SameAS   *iputil.PrefixSet
	Frequent *iputil.PrefixSet
	Daily    *iputil.PrefixSet
}

// ComputeFunnel fills the Fig 4 box numbers.
func ComputeFunnel(in *Inputs, btIPs int, stages RIPEStages) *Funnel {
	f := &Funnel{BTIPs: btIPs, NATedIPs: len(in.NATUsers)}
	blocklisted := in.Collection.AllAddrs()
	for addr := range in.NATUsers {
		if blocklisted.Contains(addr) {
			f.NATedBlocklisted++
		}
	}
	for _, a := range blocklisted.Sorted() {
		if in.RIPEPrefixes != nil && in.RIPEPrefixes.Covers(a) {
			f.BlocklistedInRIPEPrefixes++
		}
		if stages.SameAS != nil && stages.SameAS.Covers(a) {
			f.SameASBlocklisted++
		}
		if stages.Frequent != nil && stages.Frequent.Covers(a) {
			f.FrequentBlocklisted++
		}
		if stages.Daily != nil && stages.Daily.Covers(a) {
			f.DailyBlocklisted++
		}
	}
	return f
}

// Table renders the funnel as a two-column table mirroring Fig 4.
func (f *Funnel) Table() *stats.Table {
	t := stats.NewTable("Figure 4: Detecting NATed and dynamic addresses", "Stage", "Count")
	t.AddRow("BitTorrent IPs", itoa(f.BTIPs))
	t.AddRow("NATed IPs", itoa(f.NATedIPs))
	t.AddRow("NATed + blocklisted IPs", itoa(f.NATedBlocklisted))
	t.AddRow("Blocklisted addresses in RIPE prefixes", itoa(f.BlocklistedInRIPEPrefixes))
	t.AddRow("... probes with address changes in same AS", itoa(f.SameASBlocklisted))
	t.AddRow("... probes with frequent address changes", itoa(f.FrequentBlocklisted))
	t.AddRow("... probes that change address daily", itoa(f.DailyBlocklisted))
	return t
}

func itoa(v int) string { return strconv.Itoa(v) }

// PrecisionRecall scores a detector against ground truth.
type PrecisionRecall struct {
	TruePositives  int
	FalsePositives int
	FalseNegatives int
	Precision      float64
	Recall         float64
}

// Score computes precision/recall given the detected and true sets.
func Score(detected, truth *iputil.Set) PrecisionRecall {
	pr := PrecisionRecall{}
	for _, a := range detected.Sorted() {
		if truth.Contains(a) {
			pr.TruePositives++
		} else {
			pr.FalsePositives++
		}
	}
	pr.FalseNegatives = truth.Len() - pr.TruePositives
	if d := pr.TruePositives + pr.FalsePositives; d > 0 {
		pr.Precision = float64(pr.TruePositives) / float64(d)
	}
	if d := pr.TruePositives + pr.FalseNegatives; d > 0 {
		pr.Recall = float64(pr.TruePositives) / float64(d)
	}
	return pr
}
