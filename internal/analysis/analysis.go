// Package analysis joins reused-address detections (the crawler's NATed
// addresses and the RIPE pipeline's dynamic prefixes) with blocklist listing
// histories, producing every quantity in the paper's evaluation: per-list
// reuse counts (Figs 5–6), listing-duration distributions (Fig 7), the
// users-behind-NAT distribution (Fig 8), AS-level overlap (Fig 3), the
// detection funnel (Fig 4), and the top-list concentration statistics (§5).
package analysis

import (
	"sort"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/parallel"
	"github.com/reuseblock/reuseblock/internal/stats"
)

// Inputs carries the datasets the analysis joins. NATUsers maps each
// detected NATed address to the crawler's lower bound on simultaneous
// users. DynamicPrefixes is the RIPE pipeline's output; RIPEPrefixes is the
// full probe-covered prefix set (the coverage denominator). CaiBlocks is the
// optional ICMP baseline. ASNOf maps addresses to origin AS numbers.
type Inputs struct {
	Collection      *blocklist.Collection
	NATUsers        map[iputil.Addr]int
	BTObserved      *iputil.Set
	DynamicPrefixes *iputil.PrefixSet
	RIPEPrefixes    *iputil.PrefixSet
	CaiBlocks       *iputil.PrefixSet
	ASNOf           func(iputil.Addr) (int, bool)

	// Workers bounds the parallelism of the Compute* joins. The joins are
	// sharded over listings/addresses and merged with commutative
	// operations (sums, maxima, set unions), so any worker count produces
	// bit-for-bit identical results: <= 0 means GOMAXPROCS, 1 is the
	// sequential path. All other Inputs fields (and ASNOf) must be
	// read-only while a Compute* call runs.
	Workers int
}

func (in *Inputs) isNATed(a iputil.Addr) bool {
	_, ok := in.NATUsers[a]
	return ok
}

func (in *Inputs) isDynamic(a iputil.Addr) bool {
	return in.DynamicPrefixes != nil && in.DynamicPrefixes.Covers(a)
}

func (in *Inputs) isCaiDynamic(a iputil.Addr) bool {
	return in.CaiBlocks != nil && in.CaiBlocks.Covers(a)
}

// PerListReuse is the Fig 5 / Fig 6 result.
type PerListReuse struct {
	// NATedPerFeed[i] is the count of NATed addresses feed i listed;
	// likewise for the dynamic variants.
	NATedPerFeed      []int
	DynamicPerFeed    []int
	CaiDynamicPerFeed []int

	// Zero-feed counts ("61 blocklists do not list any NATed address").
	FeedsWithoutNATed   int
	FeedsWithoutDynamic int

	// Listing totals ("45.1K listings ... 30.6K listings").
	NATedListings      int
	DynamicListings    int
	CaiDynamicListings int

	// Unique reused addresses on any list.
	NATedAddrs   int
	DynamicAddrs int

	// Averages per feed ("a blocklist lists 501 NATed IP addresses ...").
	MeanNATedPerFeed   float64
	MeanDynamicPerFeed float64

	// Top-10 concentration ("top 10 blocklists contribute 65.9% ... 72.6%").
	Top10NATedShare   float64
	Top10DynamicShare float64

	// TopNATedFeeds / TopDynamicFeeds name the highest-presence feeds.
	TopNATedFeeds   []FeedCount
	TopDynamicFeeds []FeedCount
}

// FeedCount names one feed with a count.
type FeedCount struct {
	Feed  string
	Count int
}

// ComputePerListReuse joins listings with the reuse detections. The join is
// sharded over the listing slice; per-shard counters and address sets merge
// by addition and union, so the result is identical for any worker count.
func ComputePerListReuse(in *Inputs) *PerListReuse {
	reg := in.Collection.Registry()
	out := &PerListReuse{
		NATedPerFeed:      make([]int, reg.Len()),
		DynamicPerFeed:    make([]int, reg.Len()),
		CaiDynamicPerFeed: make([]int, reg.Len()),
	}
	type shard struct {
		nated, dynamic, cai    []int
		natedN, dynamicN, caiN int
		natAddrs, dynAddrs     *iputil.Set
	}
	listings := in.Collection.Listings()
	workers := parallel.Workers(in.Workers)
	chunks := parallel.Chunks(len(listings), workers)
	shards := parallel.Map(workers, len(chunks), func(ci int) *shard {
		s := &shard{
			nated:    make([]int, reg.Len()),
			dynamic:  make([]int, reg.Len()),
			cai:      make([]int, reg.Len()),
			natAddrs: iputil.NewSet(),
			dynAddrs: iputil.NewSet(),
		}
		for _, l := range listings[chunks[ci][0]:chunks[ci][1]] {
			if in.isNATed(l.Addr) {
				s.nated[l.FeedIndex]++
				s.natedN++
				s.natAddrs.Add(l.Addr)
			}
			if in.isDynamic(l.Addr) {
				s.dynamic[l.FeedIndex]++
				s.dynamicN++
				s.dynAddrs.Add(l.Addr)
			}
			if in.isCaiDynamic(l.Addr) {
				s.cai[l.FeedIndex]++
				s.caiN++
			}
		}
		return s
	})
	natAddrs := iputil.NewSet()
	dynAddrs := iputil.NewSet()
	for _, s := range shards {
		for i := 0; i < reg.Len(); i++ {
			out.NATedPerFeed[i] += s.nated[i]
			out.DynamicPerFeed[i] += s.dynamic[i]
			out.CaiDynamicPerFeed[i] += s.cai[i]
		}
		out.NATedListings += s.natedN
		out.DynamicListings += s.dynamicN
		out.CaiDynamicListings += s.caiN
		natAddrs.AddSet(s.natAddrs)
		dynAddrs.AddSet(s.dynAddrs)
	}
	out.NATedAddrs = natAddrs.Len()
	out.DynamicAddrs = dynAddrs.Len()
	for i := 0; i < reg.Len(); i++ {
		if out.NATedPerFeed[i] == 0 {
			out.FeedsWithoutNATed++
		}
		if out.DynamicPerFeed[i] == 0 {
			out.FeedsWithoutDynamic++
		}
	}
	out.MeanNATedPerFeed = float64(out.NATedListings) / float64(reg.Len())
	out.MeanDynamicPerFeed = float64(out.DynamicListings) / float64(reg.Len())
	out.Top10NATedShare = stats.TopShare(out.NATedPerFeed, 10)
	out.Top10DynamicShare = stats.TopShare(out.DynamicPerFeed, 10)
	out.TopNATedFeeds = topFeeds(reg, out.NATedPerFeed, 3)
	out.TopDynamicFeeds = topFeeds(reg, out.DynamicPerFeed, 3)
	return out
}

func topFeeds(reg *blocklist.Registry, counts []int, k int) []FeedCount {
	idx := make([]int, len(counts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if counts[idx[a]] != counts[idx[b]] {
			return counts[idx[a]] > counts[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]FeedCount, 0, k)
	for _, i := range idx[:k] {
		out = append(out, FeedCount{Feed: reg.Feeds[i].Name, Count: counts[i]})
	}
	return out
}

// Figure5 renders the ranked NATed-addresses-per-blocklist series.
func (r *PerListReuse) Figure5() *stats.Figure {
	f := stats.NewFigure("Figure 5: NATed addresses in blocklists", "(#) of blocklists", "log(#)")
	f.Add("NATed per blocklist (ranked)", rankedPoints(r.NATedPerFeed))
	return f
}

// Figure6 renders the ranked dynamic-addresses-per-blocklist series with the
// Cai et al. baseline.
func (r *PerListReuse) Figure6() *stats.Figure {
	f := stats.NewFigure("Figure 6: Dynamic addresses in blocklists", "(#) of blocklists", "log(#)")
	f.Add("RIPE", rankedPoints(r.DynamicPerFeed))
	f.Add("Cai et al.", rankedPoints(r.CaiDynamicPerFeed))
	return f
}

func rankedPoints(counts []int) []stats.Point {
	ranked := stats.RankDescending(counts)
	var pts []stats.Point
	for i, c := range ranked {
		if c == 0 {
			break
		}
		pts = append(pts, stats.Point{X: float64(i + 1), Y: float64(c)})
	}
	return pts
}

// Durations is the Fig 7 result.
type Durations struct {
	All, NATed, Dynamic *stats.CDF
	// Mean listing days per class ("removed within nine days...").
	AllMean, NATedMean, DynamicMean float64
	// TwoDayRemoval is the fraction of listings gone within two days
	// ("77.5% of all dynamic addresses are removed ... compared to 60% of
	// NATed ... 42% of all").
	AllTwoDay, NATedTwoDay, DynamicTwoDay float64
	// MaxReusedDays is the longest reused-address listing counted across
	// all observation days.
	MaxReusedDays int
	// MaxReusedPerWindow is the longest reused-address listing within
	// each measurement window separately — the paper's "as many as 44
	// days" is the window-2 bound (44 observation days).
	MaxReusedPerWindow []int
}

// ComputeDurations builds the Fig 7 distributions. Shards collect duration
// samples independently; the CDFs sort the merged multiset, and maxima
// merge by max, so sharding cannot change the result.
func ComputeDurations(in *Inputs) *Durations {
	type shard struct {
		all, nated, dynamic []float64
		maxReused           int
	}
	workers := parallel.Workers(in.Workers)
	collect := func(listings []blocklist.Listing) []*shard {
		chunks := parallel.Chunks(len(listings), workers)
		return parallel.Map(workers, len(chunks), func(ci int) *shard {
			s := &shard{}
			for _, l := range listings[chunks[ci][0]:chunks[ci][1]] {
				d := float64(l.Days)
				s.all = append(s.all, d)
				reused := false
				if in.isNATed(l.Addr) {
					s.nated = append(s.nated, d)
					reused = true
				}
				if in.isDynamic(l.Addr) {
					s.dynamic = append(s.dynamic, d)
					reused = true
				}
				if reused && l.Days > s.maxReused {
					s.maxReused = l.Days
				}
			}
			return s
		})
	}
	var all, nated, dynamic []float64
	maxReused := 0
	for _, s := range collect(in.Collection.Listings()) {
		all = append(all, s.all...)
		nated = append(nated, s.nated...)
		dynamic = append(dynamic, s.dynamic...)
		if s.maxReused > maxReused {
			maxReused = s.maxReused
		}
	}
	out := &Durations{
		All:           stats.NewCDF(all),
		NATed:         stats.NewCDF(nated),
		Dynamic:       stats.NewCDF(dynamic),
		MaxReusedDays: maxReused,
	}
	for w := range in.Collection.Windows() {
		maxW := 0
		for _, s := range collect(in.Collection.ListingsInWindow(w)) {
			if s.maxReused > maxW {
				maxW = s.maxReused
			}
		}
		out.MaxReusedPerWindow = append(out.MaxReusedPerWindow, maxW)
	}
	out.AllMean, out.NATedMean, out.DynamicMean = out.All.Mean(), out.NATed.Mean(), out.Dynamic.Mean()
	out.AllTwoDay, out.NATedTwoDay, out.DynamicTwoDay = out.All.At(2), out.NATed.At(2), out.Dynamic.At(2)
	return out
}

// Figure7 renders the duration CDFs.
func (d *Durations) Figure7() *stats.Figure {
	f := stats.NewFigure("Figure 7: Duration distribution of reused addresses",
		"(#) of days in blocklists", "CDF of IP addresses")
	f.AddCDF("blocklisted addresses", d.All, 45)
	f.AddCDF("NATed addresses", d.NATed, 45)
	f.AddCDF("dynamic addresses", d.Dynamic, 45)
	return f
}

// NATUsers is the Fig 8 result: the distribution of the user lower bound
// over blocklisted NATed addresses.
type NATUsers struct {
	CDF *stats.CDF
	// ExactlyTwo is the fraction of addresses with exactly two detected
	// users (paper: 68.5%); UnderTen with fewer than ten (97.8%).
	ExactlyTwo float64
	UnderTen   float64
	Max        int
}

// ComputeNATUsers builds Fig 8 over blocklisted NATed addresses.
func ComputeNATUsers(in *Inputs) *NATUsers {
	blocklisted := in.Collection.AllAddrs()
	var users []float64
	exactly2, under10, max := 0, 0, 0
	n := 0
	for addr, u := range in.NATUsers {
		if !blocklisted.Contains(addr) {
			continue
		}
		n++
		users = append(users, float64(u))
		if u == 2 {
			exactly2++
		}
		if u < 10 {
			under10++
		}
		if u > max {
			max = u
		}
	}
	out := &NATUsers{CDF: stats.NewCDF(users), Max: max}
	if n > 0 {
		out.ExactlyTwo = float64(exactly2) / float64(n)
		out.UnderTen = float64(under10) / float64(n)
	}
	return out
}

// Figure8 renders the users-behind-NAT CDF.
func (n *NATUsers) Figure8() *stats.Figure {
	f := stats.NewFigure("Figure 8: Number of users behind NATed addresses in blocklists",
		"(#) of users with the same IP address", "CDF of IP addresses")
	f.AddCDF("blocklisted NATed addresses", n.CDF, 40)
	return f
}
