package obs

import (
	"net/http"
	"net/http/pprof"
	"sync"
)

// MetricsHandler serves the registry in the Prometheus text exposition
// format (wall namespace included) — mount at /metrics.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ManifestSource yields the manifest to serve; it is re-invoked per request
// so servers can refresh metrics snapshots without re-registering.
type ManifestSource func() *Manifest

// ManifestHandler serves the manifest as JSON — mount at /debug/manifest.
// A nil source (or a source returning nil) answers 404.
func ManifestHandler(src ManifestSource) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var m *Manifest
		if src != nil {
			mu.Lock()
			m = src()
			mu.Unlock()
		}
		if m == nil {
			http.Error(w, "no manifest", http.StatusNotFound)
			return
		}
		data, err := m.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
}

// RegisterPprof mounts the net/http/pprof handlers on mux under /debug/pprof/
// — the standard profiling surface, opt-in behind a flag in the servers.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
