package obs

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(3)
	r.Counter("x").Inc()
	r.Gauge("g").Set(7)
	r.Gauge("g").SetMax(9)
	r.Histogram("h", []float64{1, 2}).Observe(1.5)
	if got := r.Snapshot(true); got != nil {
		t.Errorf("nil registry snapshot = %v, want nil", got)
	}
	if got := r.RenderText(true); got != "" {
		t.Errorf("nil registry text = %q", got)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry prometheus: %v", err)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(2)
	r.Counter("a_total").Inc()
	if got := r.Counter("a_total").Value(); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	g := r.Gauge("g")
	g.Set(5)
	g.SetMax(3) // lower: ignored
	if got := g.Value(); got != 5 {
		t.Errorf("gauge after SetMax(3) = %d, want 5", got)
	}
	g.SetMax(11)
	if got := g.Value(); got != 11 {
		t.Errorf("gauge after SetMax(11) = %d, want 11", got)
	}
}

// TestGaugeAdd pins the occupancy-tracking contract: Add moves the value by
// a delta (negative to decrease), can go below zero, is concurrency-safe
// (no lost updates the way read-modify-Set would lose them), and the result
// shows up in both render surfaces.
func TestGaugeAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("live")
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if got := g.Value(); got != 2 {
		t.Errorf("gauge after +3+4-5 = %d, want 2", got)
	}
	g.Add(-3)
	if got := g.Value(); got != -1 {
		t.Errorf("gauge may go negative: got %d, want -1", got)
	}
	var nilG *Gauge
	nilG.Add(7) // must not panic

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != -1 {
		t.Errorf("concurrent balanced Adds drifted: got %d, want -1", got)
	}

	g.Add(5) // settle at 4 for rendering
	if text := r.RenderText(true); !strings.Contains(text, "live 4") {
		t.Errorf("RenderText missing gauge: %s", text)
	}
	found := false
	for _, m := range r.Snapshot(true) {
		if m.Name == "live" && m.Value == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("Snapshot missing live=4: %+v", r.Snapshot(true))
	}
}

// TestHistogramBucketBoundaries pins the `le` (inclusive upper bound)
// semantics: a value equal to a bound lands in that bound's bucket, a value
// just above it lands in the next, and values beyond every bound land in
// +Inf only.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("users", []float64{2, 4, 8})
	for _, v := range []float64{1, 2, 2.0001, 4, 7.9, 8, 8.1, 1e9} {
		h.Observe(v)
	}
	snap := r.DeterministicSnapshot()
	if len(snap) != 1 || snap[0].Kind != "histogram" {
		t.Fatalf("snapshot = %+v", snap)
	}
	m := snap[0]
	// Cumulative counts: le=2 gets {1,2}; le=4 adds {2.0001,4}; le=8 adds
	// {7.9,8}; +Inf adds {8.1,1e9}.
	want := []struct {
		le    float64
		count int64
	}{{2, 2}, {4, 4}, {8, 6}, {math.Inf(1), 8}}
	if len(m.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", m.Buckets)
	}
	for i, w := range want {
		b := m.Buckets[i]
		if b.UpperBound != w.le || b.Count != w.count {
			t.Errorf("bucket %d = {le:%v count:%d}, want {le:%v count:%d}",
				i, b.UpperBound, b.Count, w.le, w.count)
		}
	}
	if m.Count != 8 {
		t.Errorf("count = %d, want 8", m.Count)
	}
}

func TestWallNamespaceExcludedFromDeterministicSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("tasks_total").Add(4)
	r.Gauge(WallPrefix + "stage_millis").Set(123)
	det := r.RenderText(false)
	if strings.Contains(det, WallPrefix) {
		t.Errorf("deterministic text contains wall metrics:\n%s", det)
	}
	if !strings.Contains(det, "tasks_total 4") {
		t.Errorf("deterministic text missing counter:\n%s", det)
	}
	full := r.RenderText(true)
	if !strings.Contains(full, WallPrefix+"stage_millis 123") {
		t.Errorf("full text missing wall gauge:\n%s", full)
	}
}

func TestNameComposesLabels(t *testing.T) {
	got := Name("drops_total", "scenario", "bursty", "mechanism", "ge")
	want := `drops_total{scenario="bursty",mechanism="ge"}`
	if got != want {
		t.Errorf("Name = %s, want %s", got, want)
	}
	if got := Name("plain"); got != "plain" {
		t.Errorf("Name no labels = %s", got)
	}
}

func TestConcurrentCountsSumExactly(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n_total")
			h := r.Histogram("h", []float64{10})
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n_total").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	snap := r.DeterministicSnapshot()
	for _, m := range snap {
		if m.Kind == "histogram" && m.Count != 8000 {
			t.Errorf("histogram count = %d, want 8000", m.Count)
		}
	}
}

// parsePrometheus is a minimal exposition-format reader: it checks comment
// and sample-line syntax and returns sample name -> value.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 4 || fields[1] != "TYPE" {
				t.Fatalf("malformed comment line %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown TYPE %q in %q", fields[3], line)
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, valStr := line[:i], line[i+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		if strings.Count(name, "{") > 1 || (strings.Contains(name, "{") && !strings.HasSuffix(name, "}")) {
			t.Fatalf("malformed series name %q", name)
		}
		out[name] = v
	}
	return out
}

func TestPrometheusEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("crawler_retries_total").Add(17)
	r.Counter(Name("faults_dropped_total", "scenario", "bursty")).Add(5)
	r.Gauge(WallPrefix + "stage_millis").Set(250)
	r.Histogram("nat_users", []float64{2, 8}).Observe(3)

	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	samples := parsePrometheus(t, rec.Body.String())
	checks := map[string]float64{
		"crawler_retries_total":                   17,
		`faults_dropped_total{scenario="bursty"}`: 5,
		WallPrefix + "stage_millis":               250,
		`nat_users_bucket{le="2"}`:                0,
		`nat_users_bucket{le="8"}`:                1,
		`nat_users_bucket{le="+Inf"}`:             1,
		"nat_users_count":                         0 + 1,
	}
	for name, want := range checks {
		if got, ok := samples[name]; !ok || got != want {
			t.Errorf("sample %s = %v (present=%v), want %v", name, got, ok, want)
		}
	}
}

func TestRenderTextLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram(Name("lat", "stage", "crawl"), []float64{1}).Observe(0.5)
	text := r.RenderText(false)
	want := "lat_bucket{stage=\"crawl\",le=\"1\"} 1\n" +
		"lat_bucket{stage=\"crawl\",le=\"+Inf\"} 1\n" +
		"lat_count{stage=\"crawl\"} 1\n"
	if text != want {
		t.Errorf("labeled histogram text:\n%s\nwant:\n%s", text, want)
	}
}

func TestManifestJSON(t *testing.T) {
	m := NewManifest()
	m.Seed, m.Workers, m.FaultScenario = 7, 4, "bursty"
	m.Stages = append(m.Stages, StageStatus{Stage: "crawl", Status: "ok"})
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"seed": 7`, `"workers": 4`, `"fault_scenario": "bursty"`, `"go_version"`, `"stage": "crawl"`} {
		if !strings.Contains(s, want) {
			t.Errorf("manifest JSON missing %s:\n%s", want, s)
		}
	}
}

func TestManifestHandler(t *testing.T) {
	m := NewManifest()
	m.Seed = 3
	h := ManifestHandler(func() *Manifest { return m })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/manifest", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"seed": 3`) {
		t.Errorf("manifest handler: code %d body %s", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	ManifestHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/manifest", nil))
	if rec.Code != 404 {
		t.Errorf("nil manifest source: code %d, want 404", rec.Code)
	}
}

func ExampleRegistry_RenderText() {
	r := NewRegistry()
	r.Counter("queries_total").Add(42)
	r.Gauge("workers").Set(4)
	fmt.Print(r.RenderText(false))
	// Output:
	// queries_total 42
	// workers 4
}
