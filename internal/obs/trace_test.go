package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Root("study")
	child := sp.Child("stage")
	child.SetAttr(String("k", "v"))
	child.End()
	sp.End()
	if recs := tr.Records(); recs != nil {
		t.Errorf("nil tracer records = %v", recs)
	}
	if err := tr.WriteJSONL(&strings.Builder{}); err != nil {
		t.Errorf("nil tracer JSONL: %v", err)
	}
}

func TestSpanHierarchyAndExport(t *testing.T) {
	tr := NewTracer()
	study := tr.Root("study", Int("seed", 1))
	crawl := study.Child("crawl")
	v0 := crawl.Child("vantage 0")
	v0.SetAttr(Int("replies", 10))
	v0.End()
	v1 := crawl.Child("vantage 1")
	v1.End()
	crawl.End()
	study.SetAttr(String("status", "ok"))
	study.End()
	study.End() // double End records once

	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records: %+v", len(recs), recs)
	}
	// Sorted by path: study < study/crawl < study/crawl/vantage 0 < … 1.
	wantPaths := []string{"study", "study/crawl", "study/crawl/vantage 0", "study/crawl/vantage 1"}
	for i, w := range wantPaths {
		if recs[i].Path != w {
			t.Errorf("record %d path = %q, want %q", i, recs[i].Path, w)
		}
	}
	if recs[0].Depth != 0 || recs[2].Depth != 2 {
		t.Errorf("depths = %d, %d", recs[0].Depth, recs[2].Depth)
	}
	if recs[0].Attrs["status"] != "ok" || recs[0].Attrs["seed"] != "1" {
		t.Errorf("root attrs = %v", recs[0].Attrs)
	}
	if recs[2].Attrs["replies"] != "10" {
		t.Errorf("vantage attrs = %v", recs[2].Attrs)
	}

	var b strings.Builder
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL lines = %d", len(lines))
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec.Path != "study" {
		t.Errorf("first JSONL path = %q", rec.Path)
	}
}

func TestStructuralStripsWallClock(t *testing.T) {
	tr := NewTracer()
	sp := tr.Root("x")
	sp.End()
	rec := tr.Records()[0]
	if rec.WallStartNS == 0 {
		t.Error("wall start not recorded")
	}
	s := rec.Structural()
	if s.WallStartNS != 0 || s.WallDurNS != 0 {
		t.Errorf("Structural kept wall fields: %+v", s)
	}
	if s.Path != "x" {
		t.Errorf("Structural lost path: %+v", s)
	}
}

func TestSetAttrOverwrites(t *testing.T) {
	tr := NewTracer()
	sp := tr.Root("x", String("k", "a"))
	sp.SetAttr(String("k", "b"))
	sp.End()
	if got := tr.Records()[0].Attrs["k"]; got != "b" {
		t.Errorf("attr k = %q, want b", got)
	}
}
