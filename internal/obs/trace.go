package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects hierarchical spans over the study DAG
// (study → stage → vantage → query batch). A nil tracer is a zero-cost off
// switch: Root on nil returns a nil span, and every span method on nil is a
// no-op, so instrumented code never guards.
//
// Span *structure* — paths, names, depths, attributes — is deterministic:
// it derives only from the seeded pipeline, and the export is sorted by
// path. Wall-clock start/duration fields are recorded for profiling but are
// explicitly non-deterministic; consumers comparing traces across runs or
// worker counts must ignore them (see Structural).
type Tracer struct {
	mu      sync.Mutex
	records []SpanRecord
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Attr is one structured span attribute.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: fmt.Sprint(v)} }

// Span is one in-flight node of the trace tree. Create children with Child;
// finish with End. Safe for use from the single goroutine that owns it —
// the pipeline's ownership structure (one goroutine per vantage, one span
// per stage task) is what keeps attribute updates race-free.
type Span struct {
	t         *Tracer
	path      string
	name      string
	depth     int
	attrs     []Attr
	wallStart time.Time
	ended     atomic.Bool
}

// Root starts a top-level span. Nil-safe: a nil tracer returns a nil span.
func (t *Tracer) Root(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, path: name, name: name, depth: 0,
		attrs: append([]Attr(nil), attrs...), wallStart: time.Now()}
}

// Child starts a sub-span. The child's path is parent.path + "/" + name;
// callers give siblings distinct names (e.g. "vantage 0", "round 0007") so
// paths stay unique and sort deterministically. Nil-safe.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return &Span{t: s.t, path: s.path + "/" + name, name: name, depth: s.depth + 1,
		attrs: append([]Attr(nil), attrs...), wallStart: time.Now()}
}

// SetAttr attaches or overwrites an attribute. Nil-safe.
func (s *Span) SetAttr(a Attr) {
	if s == nil {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == a.Key {
			s.attrs[i].Value = a.Value
			return
		}
	}
	s.attrs = append(s.attrs, a)
}

// End finishes the span and hands its record to the tracer. Ending twice
// records once. Nil-safe.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	rec := SpanRecord{
		Path:        s.path,
		Name:        s.name,
		Depth:       s.depth,
		WallStartNS: s.wallStart.UnixNano(),
		WallDurNS:   time.Since(s.wallStart).Nanoseconds(),
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	s.t.mu.Lock()
	s.t.records = append(s.t.records, rec)
	s.t.mu.Unlock()
}

// SpanRecord is one finished span. WallStartNS and WallDurNS are the only
// non-deterministic fields (see Tracer).
type SpanRecord struct {
	Path        string            `json:"path"`
	Name        string            `json:"name"`
	Depth       int               `json:"depth"`
	Attrs       map[string]string `json:"attrs,omitempty"`
	WallStartNS int64             `json:"wall_start_ns"`
	WallDurNS   int64             `json:"wall_dur_ns"`
}

// Structural returns a copy of the record with the wall-clock fields
// zeroed — the deterministic projection used by equivalence tests.
func (r SpanRecord) Structural() SpanRecord {
	r.WallStartNS, r.WallDurNS = 0, 0
	return r
}

// Records returns every finished span sorted by path. Nil-safe (nil slice).
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanRecord(nil), t.records...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// WriteJSONL writes one JSON object per finished span, sorted by path —
// the blreport -trace-out format. Nil-safe (writes nothing).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range t.Records() {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}
