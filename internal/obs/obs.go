// Package obs is the pipeline's observability layer: a dependency-free
// metrics registry, hierarchical trace spans over the study DAG, and a run
// manifest that makes every study auditable after the fact.
//
// The registry's design constraint is the same one the rest of the pipeline
// lives under: determinism. Every *count-valued* metric (counters, gauges
// set from simulation state, histogram bucket counts) must be byte-identical
// across -workers settings — counters are commutative sums and the pipeline
// only feeds them values derived from the seeded simulation, never from the
// scheduler. Wall-clock quantities (stage durations, goroutine counts,
// queue occupancy peaks) are real observability signals too, but they change
// run to run, so they live in a separate namespace: any metric whose name
// starts with WallPrefix is excluded from the deterministic snapshot and
// only appears on the full /metrics endpoint.
//
// A nil *Registry (and a nil *Tracer) is a valid, zero-cost off switch:
// every method on nil receivers is a no-op, so instrumented packages thread
// an optional registry without guarding each call site.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// WallPrefix marks wall-clock (non-deterministic) metric names. Metrics in
// this namespace are excluded from DeterministicSnapshot and from the golden
// artifacts derived from it.
const WallPrefix = "wall_"

// Registry holds named metrics. All methods are safe for concurrent use; a
// nil registry is a no-op sink.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Name composes a metric name with label pairs in Prometheus form:
// Name("x_total", "scenario", "bursty") -> `x_total{scenario="bursty"}`.
// Labels are emitted in the order given; callers must pass a fixed order so
// the composed name is stable.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing count. The zero value is usable; a
// nil counter ignores updates.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer-valued instantaneous measurement. A nil gauge ignores
// updates.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (negative to decrease) — live occupancy
// tracking (workers alive, requests in flight) where concurrent increments
// and decrements must not lose updates the way a read-modify-Set would.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v exceeds the stored value — a running
// maximum (peak queue occupancy, worst stage).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets. Bucket upper bounds are
// inclusive (Prometheus `le` semantics) with an implicit +Inf bucket at the
// end. Bucket counts and the total count are deterministic whenever the
// observed values are; the running sum is kept for the Prometheus endpoint
// but excluded from deterministic snapshots because float accumulation order
// is scheduler-dependent.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Counter returns (creating if needed) the named counter. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the given
// sorted upper bounds. Bounds are fixed at first creation; later callers get
// the existing histogram regardless of the bounds they pass. Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
		r.hists[name] = h
	}
	return h
}

// BucketCount is one histogram bucket in a snapshot: the count of
// observations at or below the upper bound (cumulative, Prometheus-style).
// The bound is math.Inf(1) for the implicit +Inf bucket; since JSON has no
// infinity, the wire form carries it as the string "+Inf".
type BucketCount struct {
	UpperBound float64
	Count      int64
}

type bucketJSON struct {
	UpperBound string `json:"le"`
	Count      int64  `json:"count"`
}

// MarshalJSON encodes the bound as a string ("+Inf" for the overflow
// bucket) so snapshots survive encoding/json, which rejects infinities.
func (b BucketCount) MarshalJSON() ([]byte, error) {
	return json.Marshal(bucketJSON{UpperBound: formatBound(b.UpperBound), Count: b.Count})
}

// UnmarshalJSON is MarshalJSON's inverse.
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.UpperBound == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(w.UpperBound, 64)
		if err != nil {
			return err
		}
		b.UpperBound = v
	}
	b.Count = w.Count
	return nil
}

// Metric is one snapshot entry.
type Metric struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge" or "histogram"
	// Value holds counter/gauge values.
	Value int64 `json:"value,omitempty"`
	// Histogram fields.
	Buckets []BucketCount `json:"buckets,omitempty"`
	Count   int64         `json:"count,omitempty"`
	// Sum is the histogram's observation sum — wall-clock-grade only (float
	// accumulation order is scheduler-dependent), so it is omitted from
	// deterministic renderings.
	Sum float64 `json:"sum,omitempty"`
}

// Snapshot returns every metric sorted by (name); wall-namespace metrics are
// included only when includeWall is true. Nil-safe (returns nil).
func (r *Registry) Snapshot(includeWall bool) []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Metric
	keep := func(name string) bool {
		return includeWall || !strings.HasPrefix(name, WallPrefix)
	}
	for name, c := range r.counters {
		if keep(name) {
			out = append(out, Metric{Name: name, Kind: "counter", Value: c.Value()})
		}
	}
	for name, g := range r.gauges {
		if keep(name) {
			out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
		}
	}
	for name, h := range r.hists {
		if !keep(name) {
			continue
		}
		m := Metric{Name: name, Kind: "histogram", Count: h.count.Load(),
			Sum: math.Float64frombits(h.sumBits.Load())}
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			m.Buckets = append(m.Buckets, BucketCount{UpperBound: b, Count: cum})
		}
		cum += h.buckets[len(h.bounds)].Load()
		m.Buckets = append(m.Buckets, BucketCount{UpperBound: math.Inf(1), Count: cum})
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DeterministicSnapshot returns only the count-valued (golden-stable)
// metrics, sorted by name.
func (r *Registry) DeterministicSnapshot() []Metric { return r.Snapshot(false) }

func formatBound(b float64) string {
	if math.IsInf(b, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", b)
}

// labeled splits `base{labels}` into base and the brace-wrapped label block
// ("" when unlabeled).
func labeled(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// RenderText renders the snapshot as deterministic plain text: one
// `name value` line per counter/gauge, Prometheus-shaped bucket lines per
// histogram (no _sum — see Histogram). This is the format committed as a
// golden artifact.
func (r *Registry) RenderText(includeWall bool) string {
	var b strings.Builder
	for _, m := range r.Snapshot(includeWall) {
		switch m.Kind {
		case "histogram":
			base, labels := labeled(m.Name)
			for _, bc := range m.Buckets {
				le := fmt.Sprintf("le=%q", formatBound(bc.UpperBound))
				if labels == "" {
					fmt.Fprintf(&b, "%s_bucket{%s} %d\n", base, le, bc.Count)
				} else {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", base,
						labels[:len(labels)-1]+","+le+"}", bc.Count)
				}
			}
			fmt.Fprintf(&b, "%s_count%s %d\n", base, labels, m.Count)
		default:
			fmt.Fprintf(&b, "%s %d\n", m.Name, m.Value)
		}
	}
	return b.String()
}

// WritePrometheus renders the full registry (wall namespace included) in the
// Prometheus text exposition format, with TYPE comments and histogram
// _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	typed := make(map[string]bool)
	for _, m := range r.Snapshot(true) {
		base, labels := labeled(m.Name)
		kind := m.Kind
		if !typed[base] {
			typed[base] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind); err != nil {
				return err
			}
		}
		switch m.Kind {
		case "histogram":
			for _, bc := range m.Buckets {
				le := fmt.Sprintf("le=%q", formatBound(bc.UpperBound))
				series := base + "_bucket{" + le + "}"
				if labels != "" {
					series = base + "_bucket" + labels[:len(labels)-1] + "," + le + "}"
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", series, bc.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, labels, m.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", base, labels, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", base, labels, m.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
