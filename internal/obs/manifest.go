package obs

import (
	"encoding/json"
	"runtime"
	"runtime/debug"
	"time"
)

// StageStatus is one pipeline stage's outcome in the manifest.
type StageStatus struct {
	Stage  string `json:"stage"`
	Status string `json:"status"` // "ok", "degraded", "failed" or "skipped"
	Detail string `json:"detail,omitempty"`
}

// Manifest is the audit record of one study run: what was asked for, what
// ran it, how each stage fared, and the deterministic metric snapshot. It is
// embedded in reports on request and served by blserve at /debug/manifest.
//
// Everything except GeneratedAt, Host and the wall-namespace entries of
// Metrics is a pure function of (seed, config, code version).
type Manifest struct {
	Seed          int64   `json:"seed"`
	Scale         float64 `json:"scale,omitempty"`
	Workers       int     `json:"workers"`
	Vantages      int     `json:"vantages,omitempty"`
	FaultScenario string  `json:"fault_scenario,omitempty"`

	// Build provenance, from the embedded module build info.
	GoVersion     string `json:"go_version"`
	Module        string `json:"module,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
	VCSRevision   string `json:"vcs_revision,omitempty"`
	VCSModified   bool   `json:"vcs_modified,omitempty"`

	// Host facts (non-deterministic across machines, stable within one).
	NumCPU     int `json:"num_cpu"`
	GOMAXPROCS int `json:"gomaxprocs"`

	Stages  []StageStatus `json:"stages,omitempty"`
	Metrics []Metric      `json:"metrics,omitempty"`

	// Serving is filled by long-running servers (blserve) with their live
	// dataset state; nil for one-shot study runs.
	Serving *ServingStatus `json:"serving,omitempty"`

	// Fleet is filled by the distributed-crawl coordinator (blfleet) with
	// the fleet's supervision record; nil for single-process runs.
	Fleet *FleetStatus `json:"fleet,omitempty"`

	// GeneratedAt is the wall-clock build instant (non-deterministic).
	GeneratedAt time.Time `json:"generated_at"`
}

// ServingStatus is a server's dataset lifecycle in the manifest: whether hot
// reload is watching the input files, how many reloads have landed, and how
// the last attempt fared. All wall-clock-grade (a serving process is not a
// deterministic study).
type ServingStatus struct {
	// Watching reports whether a file watcher is polling for new datasets.
	Watching bool `json:"watching"`
	// Reloads counts dataset swaps since startup (mirrors the
	// wall_dataset_reloads_total counter).
	Reloads int64 `json:"dataset_reloads"`
	// LastReload is when the latest successful swap landed (zero when the
	// startup dataset is still serving).
	LastReload time.Time `json:"last_reload"`
	// LastError is the most recent failed reload attempt's error; a later
	// successful reload clears it.
	LastError string `json:"last_reload_error,omitempty"`
	// DatasetGenerated is the served dataset's build stamp.
	DatasetGenerated time.Time `json:"dataset_generated"`
	// Overload is the overload-resilience controller's state; nil when the
	// server runs without admission control (-shed off).
	Overload *OverloadStatus `json:"overload,omitempty"`
	// Datasets carries one block per named dataset when the server runs
	// multi-dataset; the top-level fields then describe the default dataset.
	// Nil for classic single-dataset serving.
	Datasets []DatasetServingStatus `json:"datasets,omitempty"`
}

// DatasetServingStatus is one named dataset's lifecycle block in a
// multi-dataset server's manifest.
type DatasetServingStatus struct {
	Name string `json:"name"`
	// Default marks the dataset the unprefixed /v1/* routes alias.
	Default bool `json:"default,omitempty"`
	// Reloads counts this dataset's swaps; DeltaReloads is the subset that
	// went through the incremental delta compile instead of a full one.
	Reloads      int64     `json:"reloads"`
	DeltaReloads int64     `json:"delta_reloads"`
	LastReload   time.Time `json:"last_reload"`
	LastError    string    `json:"last_reload_error,omitempty"`
	// Generated is the served snapshot's build stamp; NATedAddresses and
	// DynamicPrefixes size it.
	Generated       time.Time `json:"generated"`
	NATedAddresses  int       `json:"nated_addresses"`
	DynamicPrefixes int       `json:"dynamic_prefixes"`
	// Overload is this dataset's admission-control state, when shedding.
	Overload *OverloadStatus `json:"overload,omitempty"`
}

// OverloadStatus is the admission-control layer's manifest block: serving
// mode plus lifetime admission totals. All wall-clock-grade — live traffic
// is not part of the deterministic study surface.
type OverloadStatus struct {
	// Enabled reports that admission control is active at all.
	Enabled bool `json:"enabled"`
	// Mode is "normal" or "degraded".
	Mode string `json:"mode"`
	// Admitted counts requests granted a concurrency slot; Queued is the
	// subset that waited for one; Shed counts rejections by the admission
	// gates; RateLimited counts per-client token-bucket rejections.
	Admitted    int64 `json:"admitted"`
	Queued      int64 `json:"queued"`
	Shed        int64 `json:"shed"`
	RateLimited int64 `json:"rate_limited"`
	// ModeTransitions counts normal<->degraded flips since startup.
	ModeTransitions int64 `json:"mode_transitions"`
	// ReloadFailed mirrors the watcher's failed-reload flag that forces
	// degraded mode until the next successful reload.
	ReloadFailed bool `json:"reload_failed,omitempty"`
}

// FleetStatus is the distributed-crawl coordinator's manifest block: the
// shard plan, the rate budget, and the supervision record (restarts, chaos
// kills, heartbeat counts) of every worker. Shard plan and per-shard crawl
// statistics are deterministic; attempts, heartbeats and throughput are
// wall-clock-grade.
type FleetStatus struct {
	// Workers is the shard count (one worker owns each shard).
	Workers int `json:"workers"`
	// RateBudget describes the aggregate crawl budget ("unlimited" when
	// none was set).
	RateBudget string `json:"rate_budget"`
	// Restarts counts worker restarts across the whole run; a non-zero
	// value is the audit trail that supervision fired.
	Restarts int `json:"restarts"`
	// HostsPerSec is unique hosts observed per wall-clock second.
	HostsPerSec float64 `json:"hosts_per_sec"`
	// MergeMillis is the wall time of the merge step.
	MergeMillis int64 `json:"merge_millis"`
	// Shards is the per-shard supervision record, ordered by worker.
	Shards []FleetShardStatus `json:"shards"`
}

// FleetShardStatus is one shard's entry in the fleet manifest block.
type FleetShardStatus struct {
	Worker int    `json:"worker"`
	Shard  string `json:"shard"`
	// Attempts counts launches of this shard (1 = never restarted).
	Attempts int `json:"attempts"`
	Restarts int `json:"restarts"`
	// Killed marks a chaos-hook kill (deliberate mid-crawl crash).
	Killed       bool  `json:"killed,omitempty"`
	Heartbeats   int64 `json:"heartbeats"`
	MessagesSent int64 `json:"messages_sent"`
	NATedIPs     int   `json:"nated_ips"`
}

// NewManifest seeds a manifest with build and host provenance; the caller
// fills in the run parameters, stages and metrics.
func NewManifest() *Manifest {
	m := &Manifest{
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		m.Module = bi.Main.Path
		m.ModuleVersion = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// JSON renders the manifest with stable indentation.
func (m *Manifest) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}
