// Package svgplot renders stats.Figure series as standalone SVG line
// charts, so the reproduction's figures can be compared against the paper's
// visually. Rendering is dependency-free and deterministic.
package svgplot

import (
	"fmt"
	"math"
	"strings"

	"github.com/reuseblock/reuseblock/internal/stats"
)

// Options tune a rendering.
type Options struct {
	// Width and Height of the SVG canvas in pixels; zero means 640×420.
	Width, Height int
	// LogX / LogY plot the axis on a log10 scale (values must be > 0;
	// non-positive values are clamped to the smallest positive value).
	LogX, LogY bool
}

// palette holds the series stroke colours (colour-blind-safe-ish).
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const (
	marginLeft   = 70
	marginRight  = 20
	marginTop    = 40
	marginBottom = 50
)

// Render returns the figure as an SVG document.
func Render(f *stats.Figure, opt Options) string {
	if opt.Width <= 0 {
		opt.Width = 640
	}
	if opt.Height <= 0 {
		opt.Height = 420
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opt.Width, opt.Height, opt.Width, opt.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", opt.Width, opt.Height)
	esc := escape
	fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginLeft, esc(f.Title))

	plotW := opt.Width - marginLeft - marginRight
	plotH := opt.Height - marginTop - marginBottom

	minX, maxX, minY, maxY, any := bounds(f, opt)
	if !any || plotW <= 0 || plotH <= 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">no data</text>`+"\n",
			marginLeft, marginTop+20)
		b.WriteString("</svg>\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	sx := func(x float64) float64 {
		return float64(marginLeft) + (scale(x, opt.LogX)-minX)/(maxX-minX)*float64(plotW)
	}
	sy := func(y float64) float64 {
		return float64(marginTop) + float64(plotH) - (scale(y, opt.LogY)-minY)/(maxY-minY)*float64(plotH)
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	// Axis labels and extremes.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, opt.Height-12, esc(axisLabel(f.XLabel, opt.LogX)))
	fmt.Fprintf(&b, `<text x="14" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle" transform="rotate(-90 14 %d)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, esc(axisLabel(f.YLabel, opt.LogY)))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`+"\n",
		marginLeft, marginTop+plotH+16, fmtTick(minX, opt.LogX))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
		marginLeft+plotW, marginTop+plotH+16, fmtTick(maxX, opt.LogX))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
		marginLeft-6, marginTop+plotH, fmtTick(minY, opt.LogY))
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
		marginLeft-6, marginTop+10, fmtTick(maxY, opt.LogY))

	// Series.
	for i, s := range f.Series {
		if len(s.Points) == 0 {
			continue
		}
		color := palette[i%len(palette)]
		var pts []string
		for _, p := range s.Points {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", sx(p.X), sy(p.Y)))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		// Legend entry.
		ly := marginTop + 14 + i*16
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginLeft+plotW-150, ly-4, marginLeft+plotW-130, ly-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%s</text>`+"\n",
			marginLeft+plotW-125, ly, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func axisLabel(base string, log bool) string {
	if log {
		return base + " (log)"
	}
	return base
}

// bounds computes the scaled extents over all series.
func bounds(f *stats.Figure, opt Options) (minX, maxX, minY, maxY float64, any bool) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, s := range f.Series {
		for _, p := range s.Points {
			x, y := scale(p.X, opt.LogX), scale(p.Y, opt.LogY)
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			any = true
		}
	}
	return minX, maxX, minY, maxY, any
}

func scale(v float64, log bool) float64 {
	if !log {
		return v
	}
	if v < 1e-9 {
		v = 1e-9
	}
	return math.Log10(v)
}

func fmtTick(v float64, log bool) string {
	if log {
		v = math.Pow(10, v)
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
