package svgplot

import (
	"encoding/xml"
	"strings"
	"testing"

	"github.com/reuseblock/reuseblock/internal/stats"
)

func sampleFigure() *stats.Figure {
	f := stats.NewFigure("Fig X: demo & more", "days", "CDF")
	f.Add("all", []stats.Point{{X: 0, Y: 0}, {X: 10, Y: 0.5}, {X: 44, Y: 1}})
	f.Add("nated <2>", []stats.Point{{X: 0, Y: 0}, {X: 44, Y: 0.9}})
	return f
}

// node is a generic XML tree for well-formedness checks.
type node struct {
	XMLName xml.Name
	Attrs   []xml.Attr `xml:",any,attr"`
	Nodes   []node     `xml:",any"`
	Text    string     `xml:",chardata"`
}

func parse(t *testing.T, svg string) node {
	t.Helper()
	var root node
	if err := xml.Unmarshal([]byte(svg), &root); err != nil {
		t.Fatalf("SVG not well-formed: %v\n%s", err, svg)
	}
	return root
}

func count(n node, name string) int {
	c := 0
	if n.XMLName.Local == name {
		c++
	}
	for _, ch := range n.Nodes {
		c += count(ch, name)
	}
	return c
}

func TestRenderWellFormed(t *testing.T) {
	svg := Render(sampleFigure(), Options{})
	root := parse(t, svg)
	if root.XMLName.Local != "svg" {
		t.Fatalf("root = %s", root.XMLName.Local)
	}
	if got := count(root, "polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	// Escaping: the title's '&' and the series '<' must not break XML but
	// must appear in text.
	if !strings.Contains(svg, "demo &amp; more") {
		t.Error("title not escaped")
	}
}

func TestRenderLogScale(t *testing.T) {
	f := stats.NewFigure("ranked", "rank", "count")
	f.Add("s", []stats.Point{{X: 1, Y: 1000}, {X: 10, Y: 10}, {X: 100, Y: 1}})
	svg := Render(f, Options{LogY: true})
	parse(t, svg)
	if !strings.Contains(svg, "count (log)") {
		t.Error("log axis label missing")
	}
	// The max tick should print the original (non-log) value.
	if !strings.Contains(svg, ">1000<") {
		t.Errorf("max tick missing:\n%s", svg)
	}
}

func TestRenderEmptyFigure(t *testing.T) {
	f := stats.NewFigure("empty", "x", "y")
	svg := Render(f, Options{})
	parse(t, svg)
	if !strings.Contains(svg, "no data") {
		t.Error("empty figure should render a placeholder")
	}
	if count(parse(t, svg), "polyline") != 0 {
		t.Error("empty figure has polylines")
	}
}

func TestRenderSinglePointSeries(t *testing.T) {
	f := stats.NewFigure("one", "x", "y")
	f.Add("s", []stats.Point{{X: 5, Y: 5}})
	svg := Render(f, Options{})
	parse(t, svg) // degenerate ranges must not divide by zero
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Errorf("degenerate range produced NaN/Inf:\n%s", svg)
	}
}

func TestRenderDeterministic(t *testing.T) {
	a := Render(sampleFigure(), Options{Width: 500, Height: 300})
	b := Render(sampleFigure(), Options{Width: 500, Height: 300})
	if a != b {
		t.Error("rendering is not deterministic")
	}
	if !strings.Contains(a, `width="500"`) {
		t.Error("custom size ignored")
	}
}

func TestRenderNonPositiveLogValues(t *testing.T) {
	f := stats.NewFigure("log", "x", "y")
	f.Add("s", []stats.Point{{X: 1, Y: 0}, {X: 2, Y: 100}})
	svg := Render(f, Options{LogY: true})
	parse(t, svg)
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "-Inf") {
		t.Error("log of zero leaked into output")
	}
}
