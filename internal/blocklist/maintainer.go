package blocklist

import (
	"fmt"
	"io"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// SplitByReuse partitions a feed's addresses into the hard blocklist and a
// greylist of reused addresses — Section 6's recommendation to maintainers:
// "they may identify malicious reused IP addresses in a separate greylist to
// their customers".
func SplitByReuse(addrs *iputil.Set, reused func(iputil.Addr) bool) (block, grey *iputil.Set) {
	block, grey = iputil.NewSet(), iputil.NewSet()
	for _, a := range addrs.Sorted() {
		if reused(a) {
			grey.Add(a)
		} else {
			block.Add(a)
		}
	}
	return block, grey
}

// PublishSplit writes the two lists a reuse-aware maintainer ships: the
// blocklist proper and the reused-address greylist, both in plain format.
func PublishSplit(blockW, greyW io.Writer, feedName string, addrs *iputil.Set, reused func(iputil.Addr) bool) error {
	block, grey := SplitByReuse(addrs, reused)
	if err := WritePlain(blockW, block, fmt.Sprintf("%s blocklist (%d addresses)", feedName, block.Len())); err != nil {
		return err
	}
	return WritePlain(greyW, grey, fmt.Sprintf("%s greylist: reused addresses (%d)", feedName, grey.Len()))
}
