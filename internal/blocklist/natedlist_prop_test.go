// Property tests for the NATed-list wire format against generated worlds'
// ground truth. External test package: testkit (whose worlds supply the
// gateway populations) imports blocklist, so an in-package import would
// cycle.
package blocklist_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/testkit"
)

// TestWriteNATedListRoundTrip: for randomized worlds, Write then Parse must
// return exactly the written population with every user bound clamped to
// the confirmation minimum of 2 — the invariant every pipeline stage
// (blcrawl shard output, merge, blserve input) relies on.
func TestWriteNATedListRoundTrip(t *testing.T) {
	seeds := []int64{401, 402, 403, 404, 405, 406}
	if testing.Short() {
		seeds = seeds[:2]
	}
	gateways := 0
	for _, genSeed := range seeds {
		spec := testkit.GenWorldSpec(genSeed)
		world := blgen.Generate(spec.Params())

		// The written population: every gateway's true BT-user count —
		// including the 0- and 1-user gateways a real crawl would not
		// confirm, so the clamp-to-2 path is exercised by construction.
		users := map[iputil.Addr]int{}
		for addr, truth := range world.NATByIP {
			users[addr] = truth.BTUsers
		}
		if len(users) == 0 {
			t.Fatalf("world %d generated no NAT gateways", genSeed)
		}
		gateways += len(users)

		var buf bytes.Buffer
		header := fmt.Sprintf("prop world %d", genSeed)
		if err := blocklist.WriteNATedList(&buf, users, header); err != nil {
			t.Fatalf("world %d: write: %v", genSeed, err)
		}
		if !strings.HasPrefix(buf.String(), "# "+header+"\n") {
			t.Errorf("world %d: header comment not first line:\n%.80s", genSeed, buf.String())
		}

		parsed, err := blocklist.ParseNATedList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("world %d: written list does not parse back: %v", genSeed, err)
		}
		if len(parsed) != len(users) {
			t.Errorf("world %d: round trip lost addresses: wrote %d, parsed %d",
				genSeed, len(users), len(parsed))
		}
		for addr, wrote := range users {
			want := wrote
			if want < 2 {
				want = 2 // the writer clamps sub-confirmation bounds up
			}
			if got, ok := parsed[addr]; !ok || got != want {
				t.Errorf("world %d: %s wrote users=%d, parsed %d (present=%v), want %d",
					genSeed, addr, wrote, got, ok, want)
			}
		}
	}
	if gateways == 0 {
		t.Error("no world produced a NAT gateway — generator regression")
	}
}

// failAfterWriter errors once n bytes have been attempted — a disk-full
// stand-in for exercising the writer's error propagation.
type failAfterWriter struct {
	n    int
	fail error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.fail
	}
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, w.fail
	}
	w.n -= len(p)
	return len(p), nil
}

// TestWriteNATedListPropagatesWriterErrors: a failing writer's error must
// surface no matter where in the list it strikes (header, entries, or the
// final flush) — a silently truncated shard file would poison every
// downstream merge.
func TestWriteNATedListPropagatesWriterErrors(t *testing.T) {
	users := map[iputil.Addr]int{}
	for i := 1; i <= 64; i++ {
		users[iputil.MustParseAddr(fmt.Sprintf("100.64.9.%d", i))] = 2 + i%7
	}
	var full bytes.Buffer
	if err := blocklist.WriteNATedList(&full, users, "error propagation"); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("disk full")
	for cap := 0; cap < full.Len(); cap += 97 {
		err := blocklist.WriteNATedList(&failAfterWriter{n: cap, fail: boom}, users, "error propagation")
		if !errors.Is(err, boom) {
			t.Fatalf("writer failing after %d bytes: WriteNATedList returned %v, want the writer's error", cap, err)
		}
	}
}
