package blocklist

import (
	"fmt"
	"math/bits"
	"sort"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// maxDays bounds a collection's observation days (two uint64 bitmap words).
const maxDays = 128

// Collection accumulates daily feed snapshots over one or more measurement
// windows and answers the listing-history questions the analysis needs:
// which addresses each feed listed, for how many days, and when.
type Collection struct {
	registry *Registry
	// days holds every observation date in order (at most maxDays).
	days []time.Time
	// presence[feed][addr] is a per-day bitmap of the address's presence.
	presence []map[iputil.Addr]*daySet
	recorded map[int]bool // day indexes with at least one snapshot
}

// daySet is a bitmap over observation-day indexes.
type daySet [2]uint64

func (d *daySet) set(i int)      { d[i>>6] |= 1 << uint(i&63) }
func (d *daySet) has(i int) bool { return d[i>>6]&(1<<uint(i&63)) != 0 }

func (d *daySet) count() int {
	return bits.OnesCount64(d[0]) + bits.OnesCount64(d[1])
}

func (d *daySet) first() int {
	if d[0] != 0 {
		return bits.TrailingZeros64(d[0])
	}
	return 64 + bits.TrailingZeros64(d[1])
}

func (d *daySet) last() int {
	if d[1] != 0 {
		return 127 - bits.LeadingZeros64(d[1])
	}
	return 63 - bits.LeadingZeros64(d[0])
}

// setRange sets bits [from, to] inclusive.
func (d *daySet) setRange(from, to int) {
	for i := from; i <= to; i++ {
		d.set(i)
	}
}

// Listing is one (feed, address) pair with its presence statistics — the
// unit the paper counts ("45.1K listings").
type Listing struct {
	FeedIndex int
	Addr      iputil.Addr
	// Days is the number of observation days the address was present.
	Days int
	// First and Last are the first and last days of presence.
	First, Last time.Time
}

// NewCollection prepares a collection over the given observation days (at
// most 128).
func NewCollection(registry *Registry, days []time.Time) *Collection {
	if len(days) > maxDays {
		panic(fmt.Sprintf("blocklist: %d observation days exceed the %d-day limit", len(days), maxDays))
	}
	presence := make([]map[iputil.Addr]*daySet, registry.Len())
	for i := range presence {
		presence[i] = make(map[iputil.Addr]*daySet)
	}
	sorted := make([]time.Time, len(days))
	copy(sorted, days)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Before(sorted[j]) })
	return &Collection{
		registry: registry,
		days:     sorted,
		presence: presence,
		recorded: make(map[int]bool),
	}
}

// MeasurementDays builds the paper's two observation windows: 03 Aug – 10
// Sep 2019 (39 days) and 29 Mar – 11 May 2020 (44 days), 83 days in total.
func MeasurementDays() []time.Time {
	var days []time.Time
	add := func(start time.Time, n int) {
		for i := 0; i < n; i++ {
			days = append(days, start.AddDate(0, 0, i))
		}
	}
	add(time.Date(2019, 8, 3, 0, 0, 0, 0, time.UTC), 39)
	add(time.Date(2020, 3, 29, 0, 0, 0, 0, time.UTC), 44)
	return days
}

// Registry returns the feed registry the collection observes.
func (c *Collection) Registry() *Registry { return c.registry }

// Days returns the observation dates in order.
func (c *Collection) Days() []time.Time { return c.days }

// Record stores feed's snapshot for observation day dayIdx.
func (c *Collection) Record(dayIdx, feedIdx int, addrs *iputil.Set) error {
	if err := c.check(dayIdx, feedIdx); err != nil {
		return err
	}
	c.recorded[dayIdx] = true
	m := c.presence[feedIdx]
	for _, a := range addrs.Sorted() {
		ds := m[a]
		if ds == nil {
			ds = &daySet{}
			m[a] = ds
		}
		ds.set(dayIdx)
	}
	return nil
}

// RecordSpan marks addr present on feed for every day in [fromDay, toDay]
// inclusive; it is the bulk form generators use.
func (c *Collection) RecordSpan(feedIdx int, addr iputil.Addr, fromDay, toDay int) error {
	if err := c.check(fromDay, feedIdx); err != nil {
		return err
	}
	if toDay >= len(c.days) {
		toDay = len(c.days) - 1
	}
	if toDay < fromDay {
		return fmt.Errorf("blocklist: empty span [%d, %d]", fromDay, toDay)
	}
	for d := fromDay; d <= toDay; d++ {
		c.recorded[d] = true
	}
	m := c.presence[feedIdx]
	ds := m[addr]
	if ds == nil {
		ds = &daySet{}
		m[addr] = ds
	}
	ds.setRange(fromDay, toDay)
	return nil
}

func (c *Collection) check(dayIdx, feedIdx int) error {
	if dayIdx < 0 || dayIdx >= len(c.days) {
		return fmt.Errorf("blocklist: day index %d out of range", dayIdx)
	}
	if feedIdx < 0 || feedIdx >= len(c.presence) {
		return fmt.Errorf("blocklist: feed index %d out of range", feedIdx)
	}
	return nil
}

// Listings returns every (feed, address) listing, ordered by feed then
// address.
func (c *Collection) Listings() []Listing {
	var out []Listing
	for fi, m := range c.presence {
		addrs := make([]iputil.Addr, 0, len(m))
		for a := range m {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			ds := m[a]
			out = append(out, Listing{
				FeedIndex: fi,
				Addr:      a,
				Days:      ds.count(),
				First:     c.days[ds.first()],
				Last:      c.days[ds.last()],
			})
		}
	}
	return out
}

// Present reports whether addr was on feed on the given observation day.
func (c *Collection) Present(feedIdx, dayIdx int, addr iputil.Addr) bool {
	if c.check(dayIdx, feedIdx) != nil {
		return false
	}
	ds := c.presence[feedIdx][addr]
	return ds != nil && ds.has(dayIdx)
}

// FeedAddrs returns the set of addresses feed ever listed.
func (c *Collection) FeedAddrs(feedIdx int) *iputil.Set {
	s := iputil.NewSet()
	for a := range c.presence[feedIdx] {
		s.Add(a)
	}
	return s
}

// AllAddrs returns the union of every feed's addresses — the paper's "2.2M
// blocklisted IP addresses".
func (c *Collection) AllAddrs() *iputil.Set {
	s := iputil.NewSet()
	for _, m := range c.presence {
		for a := range m {
			s.Add(a)
		}
	}
	return s
}

// FeedSizes returns, per feed, the number of unique addresses it listed.
func (c *Collection) FeedSizes() []int {
	out := make([]int, len(c.presence))
	for i, m := range c.presence {
		out[i] = len(m)
	}
	return out
}

// MeanFeedSize is the average unique-address count per feed (paper: ~30K).
func (c *Collection) MeanFeedSize() float64 {
	sizes := c.FeedSizes()
	if len(sizes) == 0 {
		return 0
	}
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	return float64(sum) / float64(len(sizes))
}

// DaysObserved returns how many observation days received snapshots.
func (c *Collection) DaysObserved() int { return len(c.recorded) }

// Windows returns the contiguous runs of observation days as [first, last]
// index pairs — the paper's two measurement windows (39 and 44 days) for
// the standard days.
func (c *Collection) Windows() [][2]int {
	var out [][2]int
	for i := 0; i < len(c.days); {
		j := i
		for j+1 < len(c.days) && c.days[j+1].Sub(c.days[j]) <= 24*time.Hour {
			j++
		}
		out = append(out, [2]int{i, j})
		i = j + 1
	}
	return out
}

// ListingsInWindow returns the listings restricted to one window (by index
// into Windows()): only presence days inside the window count, and
// (feed, addr) pairs with no presence there are omitted.
func (c *Collection) ListingsInWindow(window int) []Listing {
	ws := c.Windows()
	if window < 0 || window >= len(ws) {
		return nil
	}
	lo, hi := ws[window][0], ws[window][1]
	var out []Listing
	for fi, m := range c.presence {
		addrs := make([]iputil.Addr, 0, len(m))
		for a := range m {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			ds := m[a]
			count, first, last := 0, -1, -1
			for d := lo; d <= hi; d++ {
				if ds.has(d) {
					count++
					if first < 0 {
						first = d
					}
					last = d
				}
			}
			if count == 0 {
				continue
			}
			out = append(out, Listing{
				FeedIndex: fi, Addr: a, Days: count,
				First: c.days[first], Last: c.days[last],
			})
		}
	}
	return out
}
