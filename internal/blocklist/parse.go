package blocklist

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Format identifies a published blocklist wire format.
type Format int

// Supported publication formats.
const (
	// FormatPlain is one IPv4 address per line; '#' and ';' start
	// comments. The most common format (Nixspam, Stopforumspam, ...).
	FormatPlain Format = iota
	// FormatCIDR is one address or CIDR prefix per line (Spamhaus DROP,
	// Emerging Threats fwrules).
	FormatCIDR
	// FormatDShield is the DShield block format: tab-separated
	// "start<TAB>end<TAB>netmask..." records.
	FormatDShield
)

// ParseResult carries the addresses and prefixes found in a feed file.
type ParseResult struct {
	Addrs    *iputil.Set
	Prefixes *iputil.PrefixSet
	// Skipped counts unparseable non-comment lines (published lists are
	// frequently dirty; parsers tolerate and count).
	Skipped int
}

// Expand folds prefixes into the address set. The boundary is inclusive: a
// prefix with Bits() >= maxExpandBits is expanded into individual addresses
// (a /16 with maxExpandBits=16 contributes all 65536), while a strictly
// shorter prefix — Bits() < maxExpandBits — is kept only in Prefixes
// (expanding a /8 would be absurd).
func (p *ParseResult) Expand(maxExpandBits int) *iputil.Set {
	out := iputil.NewSet()
	out.AddSet(p.Addrs)
	for _, pref := range p.Prefixes.Sorted() {
		if pref.Bits() < maxExpandBits {
			continue
		}
		for i := 0; i < pref.Size(); i++ {
			out.Add(pref.Nth(i))
		}
	}
	return out
}

// Parse reads a feed file in the given format.
func Parse(r io.Reader, format Format) (*ParseResult, error) {
	switch format {
	case FormatPlain:
		return parseLines(r, false)
	case FormatCIDR:
		return parseLines(r, true)
	case FormatDShield:
		return parseDShield(r)
	default:
		return nil, fmt.Errorf("blocklist: unknown format %d", format)
	}
}

func parseLines(r io.Reader, allowCIDR bool) (*ParseResult, error) {
	res := &ParseResult{Addrs: iputil.NewSet(), Prefixes: iputil.NewPrefixSet()}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		line := stripComment(sc.Text())
		if line == "" {
			continue
		}
		// Some feeds append per-line metadata after whitespace.
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		if allowCIDR && strings.ContainsRune(line, '/') {
			p, err := iputil.ParsePrefix(line)
			if err != nil {
				res.Skipped++
				continue
			}
			res.Prefixes.Add(p)
			continue
		}
		a, err := iputil.ParseAddr(line)
		if err != nil {
			res.Skipped++
			continue
		}
		res.Addrs.Add(a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// parseDShield reads the DShield "block" format: lines of
// "startIP<TAB>endIP<TAB>prefixLen<TAB>..."; header lines start with '#'.
func parseDShield(r io.Reader) (*ParseResult, error) {
	res := &ParseResult{Addrs: iputil.NewSet(), Prefixes: iputil.NewPrefixSet()}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 64<<10)
	for sc.Scan() {
		line := stripComment(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 3 {
			res.Skipped++
			continue
		}
		start, err1 := iputil.ParseAddr(strings.TrimSpace(fields[0]))
		bits, err2 := strconv.Atoi(strings.TrimSpace(fields[2]))
		if err1 != nil || err2 != nil || bits < 0 || bits > 32 {
			res.Skipped++
			continue
		}
		res.Prefixes.Add(iputil.PrefixFrom(start, bits))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

func stripComment(line string) string {
	if i := strings.IndexAny(line, "#;"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

// WritePlain writes addresses one per line with an optional header comment.
func WritePlain(w io.Writer, addrs *iputil.Set, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		if _, err := fmt.Fprintf(bw, "# %s\n", header); err != nil {
			return err
		}
	}
	for _, a := range addrs.Sorted() {
		if _, err := fmt.Fprintln(bw, a); err != nil {
			return err
		}
	}
	return bw.Flush()
}
