// Package blocklist models IPv4 blocklists: feed identities (the paper's
// 151-list BLAG-derived dataset, Table 2), daily snapshot collections over
// the measurement windows, listing histories with durations (Fig 7), and
// parsers for the common published formats.
package blocklist

import (
	"fmt"
	"sort"
)

// Type is the coarse category of malicious activity a feed tracks; it
// drives both the synthetic maintainers' observation behaviour and the
// operator-survey breakdown of Fig 9.
type Type string

// Feed categories found across the paper's dataset.
const (
	Spam       Type = "spam"
	Reputation Type = "reputation"
	DDoS       Type = "ddos"
	Bruteforce Type = "bruteforce"
	Ransomware Type = "ransomware"
	SSH        Type = "ssh"
	HTTP       Type = "http"
	Backdoor   Type = "backdoor"
	FTP        Type = "ftp"
	Banking    Type = "banking"
	VOIP       Type = "voip"
	Malware    Type = "malware"
	Scan       Type = "scan"
)

// Feed identifies one blocklist.
type Feed struct {
	// Name is unique within a registry, e.g. "badips-07".
	Name string
	// Maintainer is the publishing organisation (Table 2 rows).
	Maintainer string
	// Type is the feed's primary category.
	Type Type
	// Surveyed marks maintainers that operators in the paper's survey
	// reported using (the * rows of Table 2).
	Surveyed bool
}

// Registry is an ordered set of feeds.
type Registry struct {
	Feeds  []Feed
	byName map[string]int
}

// NewRegistry builds a registry from feeds; names must be unique.
func NewRegistry(feeds []Feed) (*Registry, error) {
	r := &Registry{Feeds: feeds, byName: make(map[string]int, len(feeds))}
	for i, f := range feeds {
		if _, dup := r.byName[f.Name]; dup {
			return nil, fmt.Errorf("blocklist: duplicate feed name %q", f.Name)
		}
		r.byName[f.Name] = i
	}
	return r, nil
}

// Len returns the number of feeds.
func (r *Registry) Len() int { return len(r.Feeds) }

// Index returns the position of the named feed.
func (r *Registry) Index(name string) (int, bool) {
	i, ok := r.byName[name]
	return i, ok
}

// MaintainerCounts reproduces Table 2: each maintainer with its number of
// feeds, sorted by count descending then name.
func (r *Registry) MaintainerCounts() []MaintainerCount {
	counts := make(map[string]int)
	surveyed := make(map[string]bool)
	for _, f := range r.Feeds {
		counts[f.Maintainer]++
		if f.Surveyed {
			surveyed[f.Maintainer] = true
		}
	}
	out := make([]MaintainerCount, 0, len(counts))
	for m, c := range counts {
		out = append(out, MaintainerCount{Maintainer: m, Count: c, Surveyed: surveyed[m]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Maintainer < out[j].Maintainer
	})
	return out
}

// MaintainerCount is one Table 2 row.
type MaintainerCount struct {
	Maintainer string
	Count      int
	Surveyed   bool
}

// maintainerSpec drives StandardRegistry.
type maintainerSpec struct {
	name     string
	count    int
	typ      Type
	surveyed bool
}

// standardMaintainers transcribes Table 2 of the paper. The printed rows sum
// to 149 although the paper's headline count is 151; we encode the rows as
// printed and derive totals from them (see EXPERIMENTS.md).
var standardMaintainers = []maintainerSpec{
	{"Bad IPs", 44, Reputation, false},
	{"Bambenek", 22, Malware, false},
	{"Abuse.ch", 10, Malware, true},
	{"Normshield", 9, Reputation, false},
	{"Blocklist.de", 9, Bruteforce, true},
	{"Malware Bytes", 9, Malware, false},
	{"Project Honeypot", 4, Spam, true},
	{"CoinBlockerLists", 4, Malware, false},
	{"NoThink", 3, Bruteforce, false},
	{"Emerging Threats", 2, Reputation, false},
	{"ImproWare", 2, Spam, false},
	{"Botvrij.EU", 2, Malware, false},
	{"IP Finder", 1, Reputation, false},
	{"Cleantalk", 1, Spam, true},
	{"Sblam!", 1, Spam, false},
	{"Nixspam", 1, Spam, true},
	{"Blocklist Project", 1, Reputation, false},
	{"BruteforceBlocker", 1, Bruteforce, false},
	{"Cruzit", 1, Reputation, false},
	{"Haley", 1, SSH, false},
	{"Botscout", 1, Spam, false},
	{"My IP", 1, Reputation, false},
	{"Taichung", 1, Scan, false},
	{"Cisco Talos", 1, Reputation, true},
	{"Alienvault", 1, Reputation, false},
	{"Binary Defense", 1, Reputation, false},
	{"GreenSnow", 1, Bruteforce, false},
	{"Snort Labs", 1, Reputation, false},
	{"GPF Comics", 1, Spam, false},
	{"Turris", 1, Reputation, false},
	{"CINSscore", 1, Reputation, false},
	{"Nullsecure", 1, Malware, false},
	{"DYN", 1, Malware, false},
	{"Malware domain list", 1, Malware, false},
	{"Malc0de", 1, Malware, false},
	{"URLVir", 1, Malware, false},
	{"Threatcrowd", 1, Malware, false},
	{"CyberCrime", 1, Malware, false},
	{"IBM X-Force", 1, Reputation, false},
	{"VXVault", 1, Malware, false},
	{"Stopforumspam", 1, Spam, true},
}

// StandardRegistry builds the paper's feed registry from the Table 2
// maintainers; multi-feed maintainers get numbered feeds ("bad-ips-01"...).
func StandardRegistry() *Registry {
	var feeds []Feed
	for _, m := range standardMaintainers {
		for i := 0; i < m.count; i++ {
			name := slugify(m.name)
			if m.count > 1 {
				name = fmt.Sprintf("%s-%02d", name, i+1)
			}
			feeds = append(feeds, Feed{
				Name:       name,
				Maintainer: m.name,
				Type:       m.typ,
				Surveyed:   m.surveyed,
			})
		}
	}
	r, err := NewRegistry(feeds)
	if err != nil {
		panic(err) // static data; cannot fail
	}
	return r
}

func slugify(s string) string {
	out := make([]byte, 0, len(s))
	prevDash := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			out = append(out, c)
			prevDash = false
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
			prevDash = false
		default:
			if !prevDash && len(out) > 0 {
				out = append(out, '-')
				prevDash = true
			}
		}
	}
	for len(out) > 0 && out[len(out)-1] == '-' {
		out = out[:len(out)-1]
	}
	return string(out)
}
