package blocklist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// ParseNATedList reads a NATed-address list: plain addresses, optionally
// followed by a user count ("addr<TAB>users" or blcrawl -replay's
// "addr users>=N ports=M" form). Addresses without a count get the minimum
// bound of 2.
func ParseNATedList(r io.Reader) (map[iputil.Addr]int, error) {
	out := map[iputil.Addr]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		addr, err := iputil.ParseAddr(fields[0])
		if err != nil {
			return nil, fmt.Errorf("blocklist: NATed list line %d: %w", line, err)
		}
		users := 2
		if len(fields) > 1 {
			tok := strings.TrimPrefix(fields[1], "users>=")
			if n, err := strconv.Atoi(tok); err == nil && n >= 2 {
				users = n
			}
		}
		out[addr] = users
	}
	return out, sc.Err()
}

// WriteNATedList writes a NATed-address list in the "addr<TAB>users" form
// ParseNATedList reads back, sorted by address with an optional header
// comment. Entries whose bound is below the confirmation minimum of 2 are
// clamped up so a round trip never loses an address.
func WriteNATedList(w io.Writer, users map[iputil.Addr]int, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		if _, err := fmt.Fprintf(bw, "# %s\n", header); err != nil {
			return err
		}
	}
	addrs := make([]iputil.Addr, 0, len(users))
	for a := range users {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		n := users[a]
		if n < 2 {
			n = 2
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\n", a, n); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParsePrefixList reads one CIDR prefix per line ('#' comments allowed) —
// the bldetect -prefixes-out format.
func ParsePrefixList(r io.Reader) (*iputil.PrefixSet, error) {
	out := iputil.NewPrefixSet()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		p, err := iputil.ParsePrefix(text)
		if err != nil {
			return nil, fmt.Errorf("blocklist: prefix list line %d: %w", line, err)
		}
		out.Add(p)
	}
	return out, sc.Err()
}
