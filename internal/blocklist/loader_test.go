package blocklist

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSnapshotDir(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewRegistry([]Feed{{Name: "nixspam", Type: Spam}, {Name: "greensnow", Type: Bruteforce}})
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, dir, "nixspam_2019-08-03.txt", "# snap\n192.0.2.1\n192.0.2.2\n")
	writeFile(t, dir, "nixspam_2019-08-04.txt", "192.0.2.1\n")
	writeFile(t, dir, "greensnow_2019-08-03.txt", "203.0.113.9\n")
	writeFile(t, dir, "unknownfeed_2019-08-03.txt", "1.2.3.4\n")
	writeFile(t, dir, "badname.txt", "1.2.3.4\n")
	writeFile(t, dir, "nixspam_notadate.txt", "1.2.3.4\n")
	writeFile(t, dir, "README.md", "ignore me")

	c, skipped, err := LoadSnapshotDir(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 3 {
		t.Errorf("skipped = %v", skipped)
	}
	if len(c.Days()) != 2 {
		t.Fatalf("days = %v", c.Days())
	}
	ls := c.Listings()
	if len(ls) != 3 {
		t.Fatalf("listings = %+v", ls)
	}
	// 192.0.2.1 present both days on nixspam.
	nix, _ := reg.Index("nixspam")
	found := false
	for _, l := range ls {
		if l.FeedIndex == nix && l.Addr == iputil.MustParseAddr("192.0.2.1") {
			found = true
			if l.Days != 2 {
				t.Errorf("192.0.2.1 days = %d", l.Days)
			}
		}
	}
	if !found {
		t.Error("expected listing missing")
	}
}

func TestLoadSnapshotDirEmpty(t *testing.T) {
	dir := t.TempDir()
	reg, _ := NewRegistry([]Feed{{Name: "f"}})
	if _, _, err := LoadSnapshotDir(dir, reg); err == nil {
		t.Error("empty dir should error")
	}
	if _, _, err := LoadSnapshotDir(filepath.Join(dir, "missing"), reg); err == nil {
		t.Error("missing dir should error")
	}
}
