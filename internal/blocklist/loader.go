package blocklist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// LoadSnapshotDir rebuilds a Collection from a directory of daily feed
// snapshot files named "<feed>_<YYYY-MM-DD>.txt" in plain format — the
// layout cmd/blgen writes and a scraper of real feeds would produce.
// Files whose feed name is not in the registry are reported in skipped;
// observation days are derived from the dates found.
func LoadSnapshotDir(dir string, registry *Registry) (c *Collection, skipped []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	type snapshot struct {
		feedIdx int
		date    time.Time
		path    string
	}
	var snaps []snapshot
	daySet := make(map[time.Time]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		base := strings.TrimSuffix(e.Name(), ".txt")
		sep := strings.LastIndexByte(base, '_')
		if sep < 0 {
			skipped = append(skipped, e.Name())
			continue
		}
		feedName, dateStr := base[:sep], base[sep+1:]
		date, derr := time.Parse("2006-01-02", dateStr)
		if derr != nil {
			skipped = append(skipped, e.Name())
			continue
		}
		idx, ok := registry.Index(feedName)
		if !ok {
			skipped = append(skipped, e.Name())
			continue
		}
		snaps = append(snaps, snapshot{feedIdx: idx, date: date, path: filepath.Join(dir, e.Name())})
		daySet[date] = true
	}
	if len(snaps) == 0 {
		return nil, skipped, fmt.Errorf("blocklist: no snapshot files in %s", dir)
	}
	days := make([]time.Time, 0, len(daySet))
	for d := range daySet {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i].Before(days[j]) })
	dayIdx := make(map[time.Time]int, len(days))
	for i, d := range days {
		dayIdx[d] = i
	}
	c = NewCollection(registry, days)
	for _, s := range snaps {
		f, ferr := os.Open(s.path)
		if ferr != nil {
			return nil, skipped, ferr
		}
		res, perr := Parse(f, FormatPlain)
		f.Close()
		if perr != nil {
			return nil, skipped, fmt.Errorf("%s: %w", s.path, perr)
		}
		if rerr := c.Record(dayIdx[s.date], s.feedIdx, res.Addrs); rerr != nil {
			return nil, skipped, rerr
		}
	}
	return c, skipped, nil
}
