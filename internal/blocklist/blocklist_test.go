package blocklist

import (
	"strings"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

func TestStandardRegistry(t *testing.T) {
	r := StandardRegistry()
	// The printed Table 2 rows sum to 149 feeds across 41 maintainers.
	if r.Len() != 149 {
		t.Errorf("Len = %d, want 149 (printed Table 2 rows)", r.Len())
	}
	counts := r.MaintainerCounts()
	if len(counts) != 41 {
		t.Errorf("maintainers = %d, want 41", len(counts))
	}
	if counts[0].Maintainer != "Bad IPs" || counts[0].Count != 44 {
		t.Errorf("top row = %+v, want Bad IPs 44", counts[0])
	}
	if counts[1].Maintainer != "Bambenek" || counts[1].Count != 22 {
		t.Errorf("second row = %+v", counts[1])
	}
	// Surveyed flags: the paper marks 7 maintainers with (*) among those
	// we encode (Abuse.ch, Blocklist.de, Project Honeypot, Cleantalk,
	// Nixspam, Cisco Talos, Stopforumspam).
	surveyed := 0
	for _, c := range counts {
		if c.Surveyed {
			surveyed++
		}
	}
	if surveyed != 7 {
		t.Errorf("surveyed maintainers = %d, want 7", surveyed)
	}
	// Names are unique and non-empty slugs.
	for _, f := range r.Feeds {
		if f.Name == "" || strings.ContainsAny(f.Name, " !.") {
			t.Errorf("bad feed name %q", f.Name)
		}
	}
	if _, ok := r.Index("nixspam"); !ok {
		t.Error("nixspam feed missing")
	}
	if _, ok := r.Index("bad-ips-44"); !ok {
		t.Error("bad-ips-44 feed missing")
	}
}

func TestNewRegistryRejectsDuplicates(t *testing.T) {
	_, err := NewRegistry([]Feed{{Name: "a"}, {Name: "a"}})
	if err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestMeasurementDays(t *testing.T) {
	days := MeasurementDays()
	if len(days) != 83 {
		t.Fatalf("days = %d, want 83", len(days))
	}
	if !days[0].Equal(time.Date(2019, 8, 3, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("first day = %v", days[0])
	}
	if !days[38].Equal(time.Date(2019, 9, 10, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("window 1 end = %v", days[38])
	}
	if !days[39].Equal(time.Date(2020, 3, 29, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("window 2 start = %v", days[39])
	}
	if !days[82].Equal(time.Date(2020, 5, 11, 0, 0, 0, 0, time.UTC)) {
		t.Errorf("last day = %v", days[82])
	}
}

func testCollection(t *testing.T) (*Collection, *Registry) {
	t.Helper()
	reg, err := NewRegistry([]Feed{
		{Name: "spamfeed", Type: Spam},
		{Name: "ddosfeed", Type: DDoS},
	})
	if err != nil {
		t.Fatal(err)
	}
	days := make([]time.Time, 10)
	for i := range days {
		days[i] = time.Date(2019, 8, 3+i, 0, 0, 0, 0, time.UTC)
	}
	return NewCollection(reg, days), reg
}

func TestCollectionListings(t *testing.T) {
	c, _ := testCollection(t)
	a := iputil.MustParseAddr("192.0.2.1")
	b := iputil.MustParseAddr("192.0.2.2")
	// a listed on feed 0 days 0-2, then relisted day 5.
	for _, d := range []int{0, 1, 2, 5} {
		if err := c.Record(d, 0, iputil.SetOf(a)); err != nil {
			t.Fatal(err)
		}
	}
	// b on feed 1 day 3 only.
	if err := c.Record(3, 1, iputil.SetOf(b)); err != nil {
		t.Fatal(err)
	}
	ls := c.Listings()
	if len(ls) != 2 {
		t.Fatalf("listings = %+v", ls)
	}
	la := ls[0]
	if la.Addr != a || la.Days != 4 {
		t.Errorf("listing a = %+v, want 4 days", la)
	}
	if !la.First.Equal(c.Days()[0]) || !la.Last.Equal(c.Days()[5]) {
		t.Errorf("listing a span = %v..%v", la.First, la.Last)
	}
	if ls[1].Addr != b || ls[1].Days != 1 {
		t.Errorf("listing b = %+v", ls[1])
	}
}

func TestCollectionIdempotentSameDay(t *testing.T) {
	c, _ := testCollection(t)
	a := iputil.MustParseAddr("192.0.2.1")
	// The same snapshot recorded twice (retries) must not double-count.
	for i := 0; i < 2; i++ {
		if err := c.Record(0, 0, iputil.SetOf(a)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Listings()[0].Days; got != 1 {
		t.Errorf("Days = %d, want 1", got)
	}
}

func TestCollectionAggregates(t *testing.T) {
	c, _ := testCollection(t)
	a := iputil.MustParseAddr("192.0.2.1")
	b := iputil.MustParseAddr("192.0.2.2")
	c.Record(0, 0, iputil.SetOf(a, b))
	c.Record(0, 1, iputil.SetOf(a))
	if got := c.AllAddrs().Len(); got != 2 {
		t.Errorf("AllAddrs = %d", got)
	}
	sizes := c.FeedSizes()
	if sizes[0] != 2 || sizes[1] != 1 {
		t.Errorf("FeedSizes = %v", sizes)
	}
	if got := c.MeanFeedSize(); got != 1.5 {
		t.Errorf("MeanFeedSize = %v", got)
	}
	if got := c.FeedAddrs(1); !got.Contains(a) || got.Len() != 1 {
		t.Errorf("FeedAddrs(1) = %v", got.Sorted())
	}
	if c.DaysObserved() != 1 {
		t.Errorf("DaysObserved = %d", c.DaysObserved())
	}
}

func TestCollectionRecordErrors(t *testing.T) {
	c, _ := testCollection(t)
	s := iputil.NewSet()
	if err := c.Record(-1, 0, s); err == nil {
		t.Error("negative day accepted")
	}
	if err := c.Record(0, 99, s); err == nil {
		t.Error("bad feed accepted")
	}
}

func TestParsePlain(t *testing.T) {
	in := `# comment
192.0.2.1
192.0.2.2 ; trailing comment
10.0.0.1 some metadata here

not-an-ip
192.0.2.1
`
	res, err := Parse(strings.NewReader(in), FormatPlain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addrs.Len() != 3 {
		t.Errorf("Addrs = %v", res.Addrs.Sorted())
	}
	if res.Skipped != 1 {
		t.Errorf("Skipped = %d", res.Skipped)
	}
}

func TestParseCIDR(t *testing.T) {
	in := "192.0.2.0/24\n10.0.0.1\nbad/99\n"
	res, err := Parse(strings.NewReader(in), FormatCIDR)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefixes.Len() != 1 || res.Addrs.Len() != 1 || res.Skipped != 1 {
		t.Errorf("res = %d prefixes %d addrs %d skipped", res.Prefixes.Len(), res.Addrs.Len(), res.Skipped)
	}
	expanded := res.Expand(24)
	if expanded.Len() != 257 { // the /24 plus the lone address
		t.Errorf("Expand = %d", expanded.Len())
	}
	if res.Expand(25).Len() != 1 {
		t.Error("Expand should skip prefixes shorter than the cutoff")
	}
}

// TestExpandBoundary pins the inclusive boundary Expand documents: a prefix
// exactly at maxExpandBits expands, one bit shorter stays prefix-only.
func TestExpandBoundary(t *testing.T) {
	in := "198.51.0.0/16\n203.0.0.0/15\n192.0.2.0/24\n"
	res, err := Parse(strings.NewReader(in), FormatCIDR)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		maxExpandBits int
		want          int
	}{
		{16, 1<<16 + 1<<8},         // the /16 (boundary: Bits == max) and the /24; the /15 stays unexpanded
		{15, 1<<17 + 1<<16 + 1<<8}, // everything expands
		{17, 1 << 8},               // only the /24
		{25, 0},                    // nothing reaches the cutoff
	} {
		if got := res.Expand(tc.maxExpandBits).Len(); got != tc.want {
			t.Errorf("Expand(%d) = %d addresses, want %d", tc.maxExpandBits, got, tc.want)
		}
	}
}

func TestParseDShield(t *testing.T) {
	in := "# DShield block list\n192.0.2.0\t192.0.2.255\t24\textra\tfields\nbadline\n10.0.0.0\t10.0.0.255\tx\n"
	res, err := Parse(strings.NewReader(in), FormatDShield)
	if err != nil {
		t.Fatal(err)
	}
	if res.Prefixes.Len() != 1 || !res.Prefixes.Contains(iputil.MustParsePrefix("192.0.2.0/24")) {
		t.Errorf("prefixes = %v", res.Prefixes.Sorted())
	}
	if res.Skipped != 2 {
		t.Errorf("Skipped = %d", res.Skipped)
	}
}

func TestParseUnknownFormat(t *testing.T) {
	if _, err := Parse(strings.NewReader(""), Format(99)); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestWritePlainRoundTrip(t *testing.T) {
	addrs := iputil.SetOf(
		iputil.MustParseAddr("10.0.0.2"),
		iputil.MustParseAddr("10.0.0.1"),
	)
	var sb strings.Builder
	if err := WritePlain(&sb, addrs, "reused addresses"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# reused addresses\n") {
		t.Errorf("missing header: %q", out)
	}
	back, err := Parse(strings.NewReader(out), FormatPlain)
	if err != nil {
		t.Fatal(err)
	}
	if back.Addrs.Len() != 2 {
		t.Errorf("round trip = %v", back.Addrs.Sorted())
	}
}

func TestWindows(t *testing.T) {
	reg, _ := NewRegistry([]Feed{{Name: "f"}})
	c := NewCollection(reg, MeasurementDays())
	ws := c.Windows()
	if len(ws) != 2 {
		t.Fatalf("windows = %v", ws)
	}
	if ws[0] != [2]int{0, 38} || ws[1] != [2]int{39, 82} {
		t.Errorf("windows = %v, want [0 38] and [39 82]", ws)
	}
}

func TestListingsInWindow(t *testing.T) {
	reg, _ := NewRegistry([]Feed{{Name: "f"}})
	c := NewCollection(reg, MeasurementDays())
	a := iputil.MustParseAddr("192.0.2.1")
	// Present at the end of window 1 and the start of window 2.
	if err := c.RecordSpan(0, a, 35, 45); err != nil {
		t.Fatal(err)
	}
	full := c.Listings()
	if full[0].Days != 11 {
		t.Fatalf("full days = %d", full[0].Days)
	}
	w1 := c.ListingsInWindow(0)
	if len(w1) != 1 || w1[0].Days != 4 { // days 35..38
		t.Errorf("window 1 = %+v", w1)
	}
	w2 := c.ListingsInWindow(1)
	if len(w2) != 1 || w2[0].Days != 7 { // days 39..45
		t.Errorf("window 2 = %+v", w2)
	}
	if got := c.ListingsInWindow(5); got != nil {
		t.Error("out-of-range window should return nil")
	}
	// An address present only in window 1 is omitted from window 2.
	b := iputil.MustParseAddr("192.0.2.2")
	if err := c.RecordSpan(0, b, 0, 3); err != nil {
		t.Fatal(err)
	}
	for _, l := range c.ListingsInWindow(1) {
		if l.Addr == b {
			t.Error("window-1-only address appeared in window 2")
		}
	}
}

func TestSplitByReuse(t *testing.T) {
	addrs := iputil.SetOf(1, 2, 3, 4)
	reused := func(a iputil.Addr) bool { return a%2 == 0 }
	block, grey := SplitByReuse(addrs, reused)
	if block.Len() != 2 || grey.Len() != 2 {
		t.Fatalf("split = %d/%d", block.Len(), grey.Len())
	}
	if !grey.Contains(2) || !grey.Contains(4) || !block.Contains(1) {
		t.Error("split membership wrong")
	}
}

func TestPublishSplit(t *testing.T) {
	addrs := iputil.SetOf(
		iputil.MustParseAddr("10.0.0.1"),
		iputil.MustParseAddr("100.64.0.1"),
	)
	reusedSet := iputil.SetOf(iputil.MustParseAddr("100.64.0.1"))
	var blockBuf, greyBuf strings.Builder
	err := PublishSplit(&blockBuf, &greyBuf, "nixspam", addrs, reusedSet.Contains)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(blockBuf.String(), "10.0.0.1") || strings.Contains(blockBuf.String(), "100.64.0.1") {
		t.Errorf("blocklist = %q", blockBuf.String())
	}
	if !strings.Contains(greyBuf.String(), "100.64.0.1") {
		t.Errorf("greylist = %q", greyBuf.String())
	}
	if !strings.Contains(greyBuf.String(), "# nixspam greylist") {
		t.Errorf("greylist header = %q", greyBuf.String())
	}
}

func TestParseNATedList(t *testing.T) {
	in := `# crawl output
100.64.0.1
100.64.0.2	5
100.64.0.3	users>=78	ports=90
100.64.0.4	banana
`
	m, err := ParseNATedList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"100.64.0.1": 2, "100.64.0.2": 5, "100.64.0.3": 78, "100.64.0.4": 2}
	if len(m) != len(want) {
		t.Fatalf("entries = %d", len(m))
	}
	for a, u := range want {
		if m[iputil.MustParseAddr(a)] != u {
			t.Errorf("%s = %d, want %d", a, m[iputil.MustParseAddr(a)], u)
		}
	}
	if _, err := ParseNATedList(strings.NewReader("not-an-ip\n")); err == nil {
		t.Error("bad address accepted")
	}
}

// TestWriteNATedListRoundTrip pins the writer the crawler CLI and the e2e
// shard merge rely on: deterministic (sorted) output, the documented floor
// of 2 users, and lossless reparse through ParseNATedList.
func TestWriteNATedListRoundTrip(t *testing.T) {
	users := map[iputil.Addr]int{
		iputil.MustParseAddr("100.64.0.9"): 7,
		iputil.MustParseAddr("100.64.0.1"): 0, // floors to 2 on write
		iputil.MustParseAddr("10.1.2.3"):   2,
	}
	var buf strings.Builder
	if err := WriteNATedList(&buf, users, "unit test"); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.HasPrefix(text, "# unit test\n") {
		t.Errorf("header missing:\n%s", text)
	}
	if i, j := strings.Index(text, "10.1.2.3"), strings.Index(text, "100.64.0.1"); i < 0 || j < 0 || i > j {
		t.Errorf("output not sorted by address:\n%s", text)
	}

	back, err := ParseNATedList(strings.NewReader(text))
	if err != nil {
		t.Fatalf("written list does not reparse: %v\n%s", err, text)
	}
	want := map[string]int{"100.64.0.9": 7, "100.64.0.1": 2, "10.1.2.3": 2}
	if len(back) != len(want) {
		t.Fatalf("round-trip entries = %d, want %d", len(back), len(want))
	}
	for a, u := range want {
		if back[iputil.MustParseAddr(a)] != u {
			t.Errorf("%s round-tripped to %d, want %d", a, back[iputil.MustParseAddr(a)], u)
		}
	}

	var again strings.Builder
	if err := WriteNATedList(&again, users, "unit test"); err != nil {
		t.Fatal(err)
	}
	if again.String() != text {
		t.Error("WriteNATedList is not deterministic for the same map")
	}
}

func TestParsePrefixList(t *testing.T) {
	in := "# prefixes\n10.0.0.0/24\n192.0.2.0/24\n"
	ps, err := ParsePrefixList(strings.NewReader(in))
	if err != nil || ps.Len() != 2 {
		t.Fatalf("ps = %v, %v", ps, err)
	}
	if _, err := ParsePrefixList(strings.NewReader("10.0.0.0/99\n")); err == nil {
		t.Error("bad prefix accepted")
	}
}
