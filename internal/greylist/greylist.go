// Package greylist implements the mitigation Section 6 of the paper
// recommends for reused addresses: instead of dropping traffic from every
// blocklisted address, addresses known to be reused (NATed or dynamically
// allocated) are greylisted — temporarily rejected in a way that legitimate
// clients recover from by retrying, while fire-and-forget abuse tools do
// not. The semantics follow classic SMTP greylisting (Spamd/Spamassassin,
// RFC 6647): the first attempt from an unknown source is temp-failed, a
// retry after a minimum delay but before the entry expires passes, and
// passed entries stay whitelisted for a while.
package greylist

import (
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Action is a filtering decision.
type Action int

// Decisions.
const (
	// Allow passes the traffic.
	Allow Action = iota
	// Block drops it outright.
	Block
	// TempFail rejects with "try again later" — the greylisting verb.
	TempFail
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Allow:
		return "allow"
	case Block:
		return "block"
	case TempFail:
		return "tempfail"
	default:
		return "invalid"
	}
}

// Policy decides what to do with a blocklisted address before any
// greylisting state is consulted.
type Policy struct {
	// Reused marks addresses from the study's published reuse list; they
	// are greylisted instead of blocked.
	Reused *iputil.Set
	// ReusedPrefixes extends Reused with prefix-granular knowledge
	// (dynamic /24s); nil disables.
	ReusedPrefixes *iputil.PrefixSet
	// AlwaysBlockTypes lists feed types whose listings are blocked even
	// for reused addresses — the paper's DDoS exception, where dropping
	// attack volume outweighs collateral damage.
	AlwaysBlockTypes map[blocklist.Type]bool
}

// IsReused reports whether the policy considers addr reused.
func (p *Policy) IsReused(addr iputil.Addr) bool {
	reason, _ := p.ReuseReason(addr)
	return reason != ""
}

// ReuseReason reports why the policy considers addr reused: "nated" for a
// listed address, "dynamic" (with the covering prefix) for prefix-granular
// knowledge, or "" when the address carries no reuse evidence. Both layers
// share iputil's longest-prefix probe (PrefixSet.CoveringPrefix), so policy
// decisions and the serving API agree on which prefix matched.
func (p *Policy) ReuseReason(addr iputil.Addr) (reason string, prefix iputil.Prefix) {
	if p.Reused != nil && p.Reused.Contains(addr) {
		return "nated", iputil.Prefix{}
	}
	if p.ReusedPrefixes != nil {
		if cover, ok := p.ReusedPrefixes.CoveringPrefix(addr); ok {
			return "dynamic", cover
		}
	}
	return "", iputil.Prefix{}
}

// Classify maps a blocklisted address (listed on feeds of the given types)
// to the static policy outcome: Block, or TempFail (greylist) for reused
// addresses. Addresses not on any list should not be passed here; callers
// Allow them directly.
func (p *Policy) Classify(addr iputil.Addr, listedTypes []blocklist.Type) Action {
	for _, t := range listedTypes {
		if p.AlwaysBlockTypes[t] {
			return Block
		}
	}
	if p.IsReused(addr) {
		return TempFail
	}
	return Block
}

// Config tunes the greylisting window.
type Config struct {
	// MinDelay is the minimum wait before a retry passes (default 5 min).
	MinDelay time.Duration
	// RetryWindow is how long a pending entry waits for the retry before
	// expiring (default 24 h).
	RetryWindow time.Duration
	// PassLifetime is how long a passed source stays whitelisted
	// (default 36 days, Spamd-style).
	PassLifetime time.Duration
}

func (c *Config) applyDefaults() {
	if c.MinDelay <= 0 {
		c.MinDelay = 5 * time.Minute
	}
	if c.RetryWindow <= 0 {
		c.RetryWindow = 24 * time.Hour
	}
	if c.PassLifetime <= 0 {
		c.PassLifetime = 36 * 24 * time.Hour
	}
}

// Recommendation is the stateless serving-layer form of a greylist
// decision: what a blocklist consumer that has not adopted the stateful
// Engine should do with one listed address, and for how long. It is what
// blserve's /v1/greylist endpoint answers.
type Recommendation struct {
	// Action is TempFail for reused addresses (greylist instead of block)
	// and Block for addresses with no reuse evidence.
	Action Action
	// MinDelay and RetryWindow carry the greylisting window for TempFail
	// recommendations (zero otherwise): reject retries earlier than
	// MinDelay, accept one between MinDelay and RetryWindow.
	MinDelay    time.Duration
	RetryWindow time.Duration
	// Expires is when the recommendation should be re-evaluated: the
	// listing TTL for a greylisted reused address. Zero for Block —
	// non-reused listings follow the consumer's standard feed lifecycle.
	Expires time.Time
}

// Recommend maps a reuse verdict onto the paper's Section 6 mitigation: a
// reused address is greylisted with this config's window and a listing TTL
// of one retry window (reuse means today's abuser is tomorrow's bystander,
// so the entry must not outlive the evidence), while a non-reused address
// keeps standard blocklist handling.
func (c Config) Recommend(reused bool, now time.Time) Recommendation {
	if !reused {
		return Recommendation{Action: Block}
	}
	c.applyDefaults()
	return Recommendation{
		Action:      TempFail,
		MinDelay:    c.MinDelay,
		RetryWindow: c.RetryWindow,
		Expires:     now.Add(c.RetryWindow),
	}
}

// Engine is the stateful greylist: it tracks first-seen and passed sources.
type Engine struct {
	cfg     Config
	policy  *Policy
	pending map[iputil.Addr]time.Time // first attempt time
	passed  map[iputil.Addr]time.Time // whitelisted until
	stats   Stats
}

// Stats counts engine decisions.
type Stats struct {
	Allowed     int64
	Blocked     int64
	TempFailed  int64
	PassedRetry int64 // greylisted sources that retried and passed
	Expired     int64 // pending entries that never retried in time
}

// NewEngine builds a greylisting engine over the policy.
func NewEngine(policy *Policy, cfg Config) *Engine {
	cfg.applyDefaults()
	return &Engine{
		cfg:     cfg,
		policy:  policy,
		pending: make(map[iputil.Addr]time.Time),
		passed:  make(map[iputil.Addr]time.Time),
	}
}

// Stats returns a snapshot of decision counters.
func (e *Engine) Stats() Stats { return e.stats }

// Decide processes one connection attempt from addr at the given time.
// listedTypes is nil/empty when the address is not on any blocklist.
func (e *Engine) Decide(addr iputil.Addr, at time.Time, listedTypes []blocklist.Type) Action {
	if len(listedTypes) == 0 {
		e.stats.Allowed++
		return Allow
	}
	switch e.policy.Classify(addr, listedTypes) {
	case Block:
		e.stats.Blocked++
		return Block
	case Allow:
		e.stats.Allowed++
		return Allow
	}
	// Greylist path.
	if until, ok := e.passed[addr]; ok {
		if at.Before(until) {
			e.stats.Allowed++
			return Allow
		}
		delete(e.passed, addr)
	}
	first, ok := e.pending[addr]
	if !ok {
		e.pending[addr] = at
		e.stats.TempFailed++
		return TempFail
	}
	since := at.Sub(first)
	switch {
	case since < e.cfg.MinDelay:
		// Retrying too fast (bots hammering) — still temp-failed; the
		// clock is not reset, as in Spamd.
		e.stats.TempFailed++
		return TempFail
	case since <= e.cfg.RetryWindow:
		delete(e.pending, addr)
		e.passed[addr] = at.Add(e.cfg.PassLifetime)
		e.stats.PassedRetry++
		e.stats.Allowed++
		return Allow
	default:
		// Window expired: start over.
		e.pending[addr] = at
		e.stats.Expired++
		e.stats.TempFailed++
		return TempFail
	}
}

// Purge drops state older than the relevant windows; call periodically on
// long-running deployments.
func (e *Engine) Purge(now time.Time) {
	for a, first := range e.pending {
		if now.Sub(first) > e.cfg.RetryWindow {
			delete(e.pending, a)
			e.stats.Expired++
		}
	}
	for a, until := range e.passed {
		if now.After(until) {
			delete(e.passed, a)
		}
	}
}

// PendingLen and PassedLen expose state sizes for monitoring.
func (e *Engine) PendingLen() int { return len(e.pending) }

// PassedLen returns the number of currently whitelisted sources.
func (e *Engine) PassedLen() int { return len(e.passed) }
