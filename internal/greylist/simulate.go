package greylist

import (
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// Attempt is one connection attempt in a traffic trace.
type Attempt struct {
	Addr iputil.Addr
	At   time.Time
	// Legit marks traffic from a legitimate user (ground truth).
	Legit bool
	// WillRetry marks clients that retry after a TempFail (real mail
	// servers and browsers do; fire-and-forget abuse tools mostly don't).
	WillRetry bool
	// RetryAfter is the client's retry delay when WillRetry (default 10
	// minutes if zero).
	RetryAfter time.Duration
	// ListedTypes are the feed types the address is listed on at attempt
	// time (empty = not blocklisted).
	ListedTypes []blocklist.Type
}

// Outcome scores a policy over a trace: the confusion matrix the paper's
// Section 6 argument rests on.
type Outcome struct {
	LegitAllowed    int // true negatives (good traffic passes)
	LegitLost       int // false positives: good traffic blocked outright
	LegitDelayed    int // good traffic that passed only after greylist retry
	AbuseBlocked    int // true positives
	AbuseAllowed    int // false negatives: abuse that slipped through
	AbuseTempFailed int // abuse absorbed by the greylist (never retried)
}

// CollateralRate is the share of legitimate traffic lost outright.
func (o Outcome) CollateralRate() float64 {
	total := o.LegitAllowed + o.LegitLost + o.LegitDelayed
	if total == 0 {
		return 0
	}
	return float64(o.LegitLost) / float64(total)
}

// CatchRate is the share of abusive traffic stopped (blocked or absorbed).
func (o Outcome) CatchRate() float64 {
	total := o.AbuseBlocked + o.AbuseAllowed + o.AbuseTempFailed
	if total == 0 {
		return 0
	}
	return float64(o.AbuseBlocked+o.AbuseTempFailed) / float64(total)
}

// Simulate replays a trace through an engine, modelling retry behaviour:
// a temp-failed client with WillRetry set attempts again after RetryAfter
// (and once more after double that, as real MTAs do).
func Simulate(e *Engine, trace []Attempt) Outcome {
	var out Outcome
	for _, a := range trace {
		action := e.Decide(a.Addr, a.At, a.ListedTypes)
		if action == TempFail && a.WillRetry {
			delay := a.RetryAfter
			if delay <= 0 {
				delay = 10 * time.Minute
			}
			// First retry; if still temp-failed (too fast), back off once.
			action = e.Decide(a.Addr, a.At.Add(delay), a.ListedTypes)
			if action == TempFail {
				action = e.Decide(a.Addr, a.At.Add(3*delay), a.ListedTypes)
			}
			if action == Allow {
				if a.Legit {
					out.LegitDelayed++
				} else {
					out.AbuseAllowed++
				}
				continue
			}
		}
		switch {
		case a.Legit && action == Allow:
			out.LegitAllowed++
		case a.Legit: // blocked or gave up on tempfail
			out.LegitLost++
		case action == Allow:
			out.AbuseAllowed++
		case action == Block:
			out.AbuseBlocked++
		default:
			out.AbuseTempFailed++
		}
	}
	return out
}
