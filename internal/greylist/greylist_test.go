package greylist

import (
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

var t0 = time.Date(2020, 4, 1, 0, 0, 0, 0, time.UTC)

func testPolicy() *Policy {
	reused := iputil.SetOf(iputil.MustParseAddr("100.64.0.1"))
	prefixes := iputil.NewPrefixSet()
	prefixes.Add(iputil.MustParsePrefix("10.9.0.0/24"))
	return &Policy{
		Reused:           reused,
		ReusedPrefixes:   prefixes,
		AlwaysBlockTypes: map[blocklist.Type]bool{blocklist.DDoS: true},
	}
}

func spamListed() []blocklist.Type { return []blocklist.Type{blocklist.Spam} }

func TestPolicyClassify(t *testing.T) {
	p := testPolicy()
	nat := iputil.MustParseAddr("100.64.0.1")
	dyn := iputil.MustParseAddr("10.9.0.55")
	plain := iputil.MustParseAddr("20.0.0.1")

	if got := p.Classify(nat, spamListed()); got != TempFail {
		t.Errorf("reused NAT -> %v, want tempfail", got)
	}
	if got := p.Classify(dyn, spamListed()); got != TempFail {
		t.Errorf("reused dynamic -> %v, want tempfail", got)
	}
	if got := p.Classify(plain, spamListed()); got != Block {
		t.Errorf("non-reused -> %v, want block", got)
	}
	// The DDoS exception blocks even reused addresses.
	if got := p.Classify(nat, []blocklist.Type{blocklist.DDoS, blocklist.Spam}); got != Block {
		t.Errorf("reused on DDoS list -> %v, want block", got)
	}
}

func TestReuseReason(t *testing.T) {
	p := testPolicy()
	if reason, _ := p.ReuseReason(iputil.MustParseAddr("100.64.0.1")); reason != "nated" {
		t.Errorf("NATed reason = %q", reason)
	}
	reason, prefix := p.ReuseReason(iputil.MustParseAddr("10.9.0.55"))
	if reason != "dynamic" || prefix.String() != "10.9.0.0/24" {
		t.Errorf("dynamic reason = %q, prefix = %v", reason, prefix)
	}
	if reason, _ := p.ReuseReason(iputil.MustParseAddr("20.0.0.1")); reason != "" {
		t.Errorf("clean reason = %q", reason)
	}
	if !p.IsReused(iputil.MustParseAddr("10.9.0.55")) || p.IsReused(iputil.MustParseAddr("20.0.0.1")) {
		t.Error("IsReused disagrees with ReuseReason")
	}
}

func TestActionString(t *testing.T) {
	if Allow.String() != "allow" || Block.String() != "block" || TempFail.String() != "tempfail" {
		t.Error("Action names wrong")
	}
	if Action(99).String() != "invalid" {
		t.Error("invalid action name")
	}
}

func TestEngineAllowsUnlisted(t *testing.T) {
	e := NewEngine(testPolicy(), Config{})
	if got := e.Decide(iputil.MustParseAddr("8.8.8.8"), t0, nil); got != Allow {
		t.Errorf("unlisted -> %v", got)
	}
	if e.Stats().Allowed != 1 {
		t.Errorf("stats = %+v", e.Stats())
	}
}

func TestEngineGreylistLifecycle(t *testing.T) {
	e := NewEngine(testPolicy(), Config{MinDelay: 5 * time.Minute, RetryWindow: time.Hour, PassLifetime: 24 * time.Hour})
	addr := iputil.MustParseAddr("100.64.0.1")

	// First attempt: temp-failed.
	if got := e.Decide(addr, t0, spamListed()); got != TempFail {
		t.Fatalf("first attempt -> %v", got)
	}
	// Hammering retry inside MinDelay: still temp-failed.
	if got := e.Decide(addr, t0.Add(time.Minute), spamListed()); got != TempFail {
		t.Fatalf("fast retry -> %v", got)
	}
	// Proper retry after MinDelay: passes.
	if got := e.Decide(addr, t0.Add(10*time.Minute), spamListed()); got != Allow {
		t.Fatalf("patient retry -> %v", got)
	}
	if e.Stats().PassedRetry != 1 {
		t.Errorf("PassedRetry = %d", e.Stats().PassedRetry)
	}
	// Whitelisted for PassLifetime.
	if got := e.Decide(addr, t0.Add(12*time.Hour), spamListed()); got != Allow {
		t.Fatalf("within pass lifetime -> %v", got)
	}
	// After expiry the cycle restarts.
	if got := e.Decide(addr, t0.Add(30*time.Hour), spamListed()); got != TempFail {
		t.Fatalf("after pass expiry -> %v", got)
	}
}

func TestEngineRetryWindowExpiry(t *testing.T) {
	e := NewEngine(testPolicy(), Config{MinDelay: 5 * time.Minute, RetryWindow: time.Hour})
	addr := iputil.MustParseAddr("100.64.0.1")
	e.Decide(addr, t0, spamListed())
	// Retry far past the window: treated as a fresh first attempt.
	if got := e.Decide(addr, t0.Add(3*time.Hour), spamListed()); got != TempFail {
		t.Fatalf("stale retry -> %v", got)
	}
	if e.Stats().Expired != 1 {
		t.Errorf("Expired = %d", e.Stats().Expired)
	}
	// And the fresh cycle works.
	if got := e.Decide(addr, t0.Add(3*time.Hour+10*time.Minute), spamListed()); got != Allow {
		t.Fatalf("retry of fresh cycle -> %v", got)
	}
}

func TestEngineBlocksNonReused(t *testing.T) {
	e := NewEngine(testPolicy(), Config{})
	addr := iputil.MustParseAddr("20.0.0.9")
	for i := 0; i < 3; i++ {
		if got := e.Decide(addr, t0.Add(time.Duration(i)*time.Hour), spamListed()); got != Block {
			t.Fatalf("non-reused attempt %d -> %v", i, got)
		}
	}
	if e.Stats().Blocked != 3 {
		t.Errorf("Blocked = %d", e.Stats().Blocked)
	}
}

func TestEnginePurge(t *testing.T) {
	e := NewEngine(testPolicy(), Config{MinDelay: 5 * time.Minute, RetryWindow: time.Hour, PassLifetime: 2 * time.Hour})
	a1 := iputil.MustParseAddr("100.64.0.1")
	a2 := iputil.MustParseAddr("10.9.0.2")
	e.Decide(a1, t0, spamListed())
	e.Decide(a2, t0, spamListed())
	e.Decide(a2, t0.Add(10*time.Minute), spamListed()) // a2 passes
	if e.PendingLen() != 1 || e.PassedLen() != 1 {
		t.Fatalf("state = %d pending, %d passed", e.PendingLen(), e.PassedLen())
	}
	e.Purge(t0.Add(26 * time.Hour))
	if e.PendingLen() != 0 || e.PassedLen() != 0 {
		t.Errorf("after purge: %d pending, %d passed", e.PendingLen(), e.PassedLen())
	}
}

func TestSimulateGreylistVsBlock(t *testing.T) {
	// One reused NAT address hosts both a legit user (who retries) and an
	// abuse tool (which does not); one dedicated abuse host is listed and
	// not reused.
	nat := iputil.MustParseAddr("100.64.0.1")
	bad := iputil.MustParseAddr("20.0.0.9")
	trace := []Attempt{
		{Addr: nat, At: t0, Legit: true, WillRetry: true, ListedTypes: spamListed()},
		{Addr: bad, At: t0.Add(time.Minute), Legit: false, WillRetry: false, ListedTypes: spamListed()},
		{Addr: nat, At: t0.Add(2 * time.Hour), Legit: false, WillRetry: false, ListedTypes: spamListed()},
		{Addr: iputil.MustParseAddr("8.8.8.8"), At: t0, Legit: true, WillRetry: true},
	}

	// Greylist policy: reused addresses get tempfail.
	e := NewEngine(testPolicy(), Config{MinDelay: 5 * time.Minute})
	out := Simulate(e, trace)
	if out.LegitLost != 0 {
		t.Errorf("greylist lost %d legit, want 0", out.LegitLost)
	}
	if out.LegitDelayed != 1 {
		t.Errorf("LegitDelayed = %d, want 1 (the NAT user retried)", out.LegitDelayed)
	}
	if out.AbuseBlocked != 1 { // dedicated host blocked outright
		t.Errorf("AbuseBlocked = %d", out.AbuseBlocked)
	}
	// The NAT abuser slips through: the legit user's successful retry
	// whitelisted the *address*, and per-address state cannot separate
	// users behind one NAT — the residual risk the paper's greylisting
	// recommendation knowingly accepts.
	if out.AbuseAllowed != 1 {
		t.Errorf("AbuseAllowed = %d, want 1 (shared-address abuse rides the whitelist)", out.AbuseAllowed)
	}
	if out.CatchRate() != 0.5 {
		t.Errorf("CatchRate = %v, want 0.5", out.CatchRate())
	}

	// Block-everything policy: the same trace loses the legit NAT user.
	blockAll := &Policy{} // no reuse knowledge -> everything listed is blocked
	e2 := NewEngine(blockAll, Config{})
	out2 := Simulate(e2, trace)
	if out2.LegitLost != 1 {
		t.Errorf("block-all lost %d legit, want 1", out2.LegitLost)
	}
	if out2.CollateralRate() <= out.CollateralRate() {
		t.Errorf("block-all collateral (%v) should exceed greylist (%v)",
			out2.CollateralRate(), out.CollateralRate())
	}
}

func TestSimulateAbuseRetryStillCounted(t *testing.T) {
	// An abuse tool that *does* retry eventually passes the greylist —
	// greylisting is a mitigation, not a cure, which the paper
	// acknowledges by calling for accuracy rather than pure blocking.
	nat := iputil.MustParseAddr("100.64.0.1")
	trace := []Attempt{
		{Addr: nat, At: t0, Legit: false, WillRetry: true, RetryAfter: 10 * time.Minute, ListedTypes: spamListed()},
	}
	e := NewEngine(testPolicy(), Config{MinDelay: 5 * time.Minute})
	out := Simulate(e, trace)
	if out.AbuseAllowed != 1 {
		t.Errorf("retrying abuse = %+v, want AbuseAllowed 1", out)
	}
}

// TestRecommend pins the stateless serving-layer recommendation blserve's
// /v1/greylist endpoint answers: tempfail with the configured window for
// reused addresses, bare block otherwise.
func TestRecommend(t *testing.T) {
	now := time.Date(2026, 5, 1, 12, 0, 0, 0, time.UTC)

	rec := Config{}.Recommend(false, now)
	if rec.Action != Block || rec.MinDelay != 0 || rec.RetryWindow != 0 || !rec.Expires.IsZero() {
		t.Errorf("Recommend(clean) = %+v, want bare Block", rec)
	}

	// Defaults apply for reused addresses.
	rec = Config{}.Recommend(true, now)
	if rec.Action != TempFail || rec.MinDelay != 5*time.Minute || rec.RetryWindow != 24*time.Hour {
		t.Errorf("Recommend(reused, defaults) = %+v", rec)
	}
	if !rec.Expires.Equal(now.Add(24 * time.Hour)) {
		t.Errorf("default Expires = %v, want now+24h", rec.Expires)
	}

	// Explicit windows flow through.
	cfg := Config{MinDelay: time.Minute, RetryWindow: 2 * time.Hour}
	rec = cfg.Recommend(true, now)
	if rec.MinDelay != time.Minute || rec.RetryWindow != 2*time.Hour ||
		!rec.Expires.Equal(now.Add(2*time.Hour)) {
		t.Errorf("Recommend(reused, explicit) = %+v", rec)
	}
	// The value receiver must not have mutated the caller's config.
	if cfg.PassLifetime != 0 {
		t.Errorf("Recommend mutated the config: %+v", cfg)
	}
}
