package testkit

import (
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/reuseapi"
)

// CheckServedVerdicts verifies /v1/check answers pulled from a live blserve
// against the generated world's ground truth — the API-level twin of
// CheckNATObservations and CheckDynamicDetection, for the end-to-end harness
// where the verdicts have travelled through crawler processes, on-disk list
// files, a dataset compile and the HTTP surface.
//
// Per verdict:
//   - internal consistency: Reused must equal NATed || Dynamic, Advice must
//     be present, Users only accompanies NATed, Prefix only Dynamic and must
//     cover the address.
//   - NAT precision is per-address: a NATed verdict must name a real gateway
//     and its user count must be a valid lower bound (>= 2, <= the true
//     BitTorrent population behind the gateway).
//
// Dynamic-pool precision is banded over the whole sample, like the RIPE
// oracle: at least MinRIPEPrecision of the dynamic verdicts must fall inside
// genuinely dynamic pools.
func (o Oracle) CheckServedVerdicts(vs []reuseapi.Verdict) error {
	dynamic, trulyDynamic := 0, 0
	for _, v := range vs {
		addr, err := iputil.ParseAddr(v.IP)
		if err != nil {
			return violatef("served-verdict", "verdict carries unparseable ip %q: %v", v.IP, err)
		}
		if v.Reused != (v.NATed || v.Dynamic) {
			return violatef("served-verdict", "%s: reused=%v disagrees with nated=%v dynamic=%v",
				v.IP, v.Reused, v.NATed, v.Dynamic)
		}
		if v.Advice == "" {
			return violatef("served-verdict", "%s: verdict without advice", v.IP)
		}
		if !v.NATed && v.Users != 0 {
			return violatef("served-verdict", "%s: non-NATed verdict carries users=%d", v.IP, v.Users)
		}
		if v.NATed {
			truth, ok := o.World.NATByIP[addr]
			if !ok {
				return violatef("served-nat-precision", "served NATed %s is not a NAT gateway", v.IP)
			}
			if v.Users < 2 || v.Users > truth.BTUsers {
				return violatef("served-nat-precision",
					"gateway %s served with users=%d outside [2, %d]", v.IP, v.Users, truth.BTUsers)
			}
		}
		if v.Dynamic {
			p, err := iputil.ParsePrefix(v.Prefix)
			if err != nil {
				return violatef("served-verdict", "%s: dynamic verdict with bad prefix %q: %v", v.IP, v.Prefix, err)
			}
			if !p.Contains(addr) {
				return violatef("served-verdict", "%s: covering prefix %s does not cover it", v.IP, v.Prefix)
			}
			dynamic++
			if o.World.TrueAnyDynamic.Covers(addr) {
				trulyDynamic++
			}
		} else if v.Prefix != "" {
			return violatef("served-verdict", "%s: non-dynamic verdict carries prefix %q", v.IP, v.Prefix)
		}
	}
	if dynamic > 0 {
		if prec := float64(trulyDynamic) / float64(dynamic); prec < MinRIPEPrecision {
			return violatef("served-dynamic-precision",
				"only %d/%d served dynamic verdicts fall in genuinely dynamic pools (%.2f < %.2f)",
				trulyDynamic, dynamic, prec, MinRIPEPrecision)
		}
	}
	return nil
}
