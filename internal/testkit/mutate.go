package testkit

import "math/rand"

// MutateBytes derives n deterministic mutants of a seed input for
// grammar-free robustness testing of the wire decoders (bencode, KRPC).
// The moves mirror a coverage-guided fuzzer's cheap stage — bit flips, byte
// swaps, truncation, duplication, interesting-value splices — so decoder
// tests can sweep mutants of valid messages and crashers found this way can
// be committed into testdata/fuzz corpora.
func MutateBytes(seed int64, input []byte, n int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, 0, n)
	for len(out) < n {
		m := append([]byte(nil), input...)
		// Each mutant applies 1–4 stacked moves.
		for moves := 1 + rng.Intn(4); moves > 0; moves-- {
			m = mutateOnce(rng, m)
		}
		out = append(out, m)
	}
	return out
}

// interesting are boundary bytes that historically break length-prefixed
// and type-tagged decoders.
var interesting = []byte{0x00, 0x01, 0x7f, 0x80, 0xff, ':', 'e', 'i', 'l', 'd', '-', '0', '9'}

func mutateOnce(rng *rand.Rand, m []byte) []byte {
	if len(m) == 0 {
		return []byte{interesting[rng.Intn(len(interesting))]}
	}
	switch rng.Intn(6) {
	case 0: // flip one bit
		m[rng.Intn(len(m))] ^= 1 << rng.Intn(8)
	case 1: // overwrite with an interesting byte
		m[rng.Intn(len(m))] = interesting[rng.Intn(len(interesting))]
	case 2: // truncate
		m = m[:rng.Intn(len(m))]
	case 3: // duplicate a span
		i := rng.Intn(len(m))
		j := i + 1 + rng.Intn(len(m)-i)
		m = append(m[:j:j], append(append([]byte(nil), m[i:j]...), m[j:]...)...)
	case 4: // insert an interesting byte
		i := rng.Intn(len(m) + 1)
		m = append(m[:i:i], append([]byte{interesting[rng.Intn(len(interesting))]}, m[i:]...)...)
	case 5: // swap two bytes
		i, j := rng.Intn(len(m)), rng.Intn(len(m))
		m[i], m[j] = m[j], m[i]
	}
	return m
}
