// Package testkit is the property-based and metamorphic verification layer
// for the reproduction pipeline. The goldens pin exact output for seed 1;
// this package checks that the detectors stay *correct* across the space of
// worlds the simulator can produce, exploiting the one advantage a synthetic
// study has over the paper's measurements: perfect ground truth.
//
// It has three layers:
//
//   - Generators (gen.go): WorldSpec draws randomized world and study shapes
//     — CGN sizes, churn rates, blocklist mixes, probe fleets — from a seed,
//     with hand-rolled shrinking toward the calibrated defaults so a failing
//     property reports the tamest world that still fails.
//
//   - Oracles (oracle.go): checks against blgen ground truth that must hold
//     for every world — the crawler's NAT user count is a lower bound on the
//     true users behind a real gateway, the RIPE pipeline only flags truly
//     dynamic pools, listing durations respect the measurement windows
//     (≤ 39 / ≤ 44 days), precision/recall stay inside pinned bands, and the
//     kneedle threshold is stable under resampling.
//
//   - Metamorphic relations (relations.go): comparisons between pipeline
//     runs that must agree — seed determinism, worker-count invariance,
//     feed-order permutation invariance, monotonicity under added listings
//     or added NAT users, and fault-scenario tolerance bands.
//
// The relation checkers return *Violation errors rather than calling
// t.Fatal so their failure detection is itself testable: testkit_test.go
// feeds each checker a deliberately broken input and asserts it objects
// (the mutation sanity check DESIGN.md §8 documents).
package testkit

import "fmt"

// Violation reports one broken invariant: which relation or oracle failed
// and a human-readable account of the disagreement.
type Violation struct {
	// Relation names the invariant, e.g. "worker-invariance" or
	// "nat-lower-bound".
	Relation string
	// Detail locates the disagreement.
	Detail string
}

func (v *Violation) Error() string {
	return fmt.Sprintf("testkit: %s violated: %s", v.Relation, v.Detail)
}

func violatef(relation, format string, args ...any) error {
	return &Violation{Relation: relation, Detail: fmt.Sprintf(format, args...)}
}

// firstDiff locates the first differing line/column of two strings for a
// readable report when byte-equality relations fail.
func firstDiff(a, b string) string {
	line, col := 1, 1
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("line %d col %d (%q vs %q)", line, col, a[i], b[i])
		}
		if a[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Sprintf("length %d vs %d", len(a), len(b))
}
