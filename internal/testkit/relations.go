package testkit

import (
	"math"

	"github.com/reuseblock/reuseblock/internal/analysis"
	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
)

// CheckIdenticalRenders is the byte-equality relation behind seed
// determinism and worker-count invariance: two runs that differ only in an
// execution-policy knob must render identical reports.
func CheckIdenticalRenders(relation, a, b string) error {
	if a != b {
		return violatef(relation, "reports diverge at %s", firstDiff(a, b))
	}
	return nil
}

// CheckMonotoneCounts verifies that after adding inputs (a blocklist entry,
// a NAT user, a reply event) no per-bucket count decreased.
func CheckMonotoneCounts(relation string, before, after []int) error {
	if len(before) != len(after) {
		return violatef(relation, "bucket count changed: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if after[i] < before[i] {
			return violatef(relation, "bucket %d decreased: %d -> %d", i, before[i], after[i])
		}
	}
	return nil
}

// CheckMonotoneScalar verifies a single aggregate did not decrease.
func CheckMonotoneScalar(relation, name string, before, after int) error {
	if after < before {
		return violatef(relation, "%s decreased: %d -> %d", name, before, after)
	}
	return nil
}

// CheckScalarEqual verifies an order-free aggregate matched across two runs
// that should agree (e.g. under a feed permutation).
func CheckScalarEqual(relation, name string, a, b int) error {
	if a != b {
		return violatef(relation, "%s differs: %d vs %d", name, a, b)
	}
	return nil
}

// CheckFloatEqual is CheckScalarEqual for derived ratios; eps absorbs the
// float error of summing in a different order.
func CheckFloatEqual(relation, name string, a, b, eps float64) error {
	if math.Abs(a-b) > eps {
		return violatef(relation, "%s differs: %g vs %g", name, a, b)
	}
	return nil
}

// CheckPermutedCounts verifies per-feed counts commute with a feed
// permutation: permuted[perm[i]] must equal base[i].
func CheckPermutedCounts(relation string, base, permuted, perm []int) error {
	if len(base) != len(permuted) || len(base) != len(perm) {
		return violatef(relation, "length mismatch: base %d, permuted %d, perm %d",
			len(base), len(permuted), len(perm))
	}
	for i := range base {
		if permuted[perm[i]] != base[i] {
			return violatef(relation, "feed %d (-> %d): count %d became %d",
				i, perm[i], base[i], permuted[perm[i]])
		}
	}
	return nil
}

// CheckToleranceBand verifies a fault scenario degraded a headline metric
// by no more than maxDrop (absolute). Improvements are always in band —
// the retry policy routinely beats the give-up-on-first-loss baseline.
func CheckToleranceBand(relation string, base, faulted, maxDrop float64) error {
	if drop := base - faulted; drop > maxDrop {
		return violatef(relation, "metric dropped %.3f (%.3f -> %.3f), tolerance %.3f",
			drop, base, faulted, maxDrop)
	}
	return nil
}

// PermuteCollection rebuilds a collection with feeds reordered by perm
// (feed i of the original becomes feed perm[i]) but the exact same per-day
// presence. The result feeds the permutation-invariance relation: every
// aggregate that does not mention feed identity must match the original.
func PermuteCollection(col *blocklist.Collection, perm []int) (*blocklist.Collection, error) {
	reg := col.Registry()
	feeds := make([]blocklist.Feed, reg.Len())
	for i, f := range reg.Feeds {
		feeds[perm[i]] = f
	}
	preg, err := blocklist.NewRegistry(feeds)
	if err != nil {
		return nil, err
	}
	out := blocklist.NewCollection(preg, col.Days())
	if err := copyPresence(col, out, perm); err != nil {
		return nil, err
	}
	return out, nil
}

// CloneCollection rebuilds a collection unchanged — the identity
// permutation. Monotonicity relations mutate the clone, never the world's
// own collection.
func CloneCollection(col *blocklist.Collection) (*blocklist.Collection, error) {
	perm := make([]int, col.Registry().Len())
	for i := range perm {
		perm[i] = i
	}
	out := blocklist.NewCollection(col.Registry(), col.Days())
	if err := copyPresence(col, out, perm); err != nil {
		return nil, err
	}
	return out, nil
}

func copyPresence(src, dst *blocklist.Collection, perm []int) error {
	nDays := len(src.Days())
	for fi := 0; fi < src.Registry().Len(); fi++ {
		addrs := src.FeedAddrs(fi).Sorted()
		for d := 0; d < nDays; d++ {
			day := iputil.NewSet()
			for _, a := range addrs {
				if src.Present(fi, d, a) {
					day.Add(a)
				}
			}
			if day.Len() == 0 {
				continue
			}
			if err := dst.Record(d, perm[fi], day); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckPerListPermutation bundles the full Fig 5/6 permutation relation:
// per-feed series commute with the permutation and every feed-agnostic
// aggregate is untouched.
func CheckPerListPermutation(base, permuted *analysis.PerListReuse, perm []int) error {
	const rel = "feed-permutation"
	checks := []error{
		CheckPermutedCounts(rel, base.NATedPerFeed, permuted.NATedPerFeed, perm),
		CheckPermutedCounts(rel, base.DynamicPerFeed, permuted.DynamicPerFeed, perm),
		CheckPermutedCounts(rel, base.CaiDynamicPerFeed, permuted.CaiDynamicPerFeed, perm),
		CheckScalarEqual(rel, "feeds without NATed", base.FeedsWithoutNATed, permuted.FeedsWithoutNATed),
		CheckScalarEqual(rel, "feeds without dynamic", base.FeedsWithoutDynamic, permuted.FeedsWithoutDynamic),
		CheckScalarEqual(rel, "NATed listings", base.NATedListings, permuted.NATedListings),
		CheckScalarEqual(rel, "dynamic listings", base.DynamicListings, permuted.DynamicListings),
		CheckScalarEqual(rel, "Cai dynamic listings", base.CaiDynamicListings, permuted.CaiDynamicListings),
		CheckScalarEqual(rel, "NATed addresses", base.NATedAddrs, permuted.NATedAddrs),
		CheckScalarEqual(rel, "dynamic addresses", base.DynamicAddrs, permuted.DynamicAddrs),
		CheckFloatEqual(rel, "top-10 NATed share", base.Top10NATedShare, permuted.Top10NATedShare, 1e-12),
		CheckFloatEqual(rel, "top-10 dynamic share", base.Top10DynamicShare, permuted.Top10DynamicShare, 1e-12),
		CheckFloatEqual(rel, "mean NATed per feed", base.MeanNATedPerFeed, permuted.MeanNATedPerFeed, 1e-12),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	return nil
}

// CheckPerListMonotone bundles the monotonicity relation after one extra
// listing: every per-feed count and listing total may only grow, and the
// zero-feed counts may only shrink.
func CheckPerListMonotone(before, after *analysis.PerListReuse) error {
	const rel = "listing-monotonicity"
	checks := []error{
		CheckMonotoneCounts(rel, before.NATedPerFeed, after.NATedPerFeed),
		CheckMonotoneCounts(rel, before.DynamicPerFeed, after.DynamicPerFeed),
		CheckMonotoneScalar(rel, "NATed listings", before.NATedListings, after.NATedListings),
		CheckMonotoneScalar(rel, "dynamic listings", before.DynamicListings, after.DynamicListings),
		CheckMonotoneScalar(rel, "NATed addresses", before.NATedAddrs, after.NATedAddrs),
		CheckMonotoneScalar(rel, "dynamic addresses", before.DynamicAddrs, after.DynamicAddrs),
		// Adding listings can only take feeds off the "lists nothing
		// reused" tally.
		CheckMonotoneScalar(rel, "feeds without NATed (flipped)",
			-before.FeedsWithoutNATed, -after.FeedsWithoutNATed),
		CheckMonotoneScalar(rel, "feeds without dynamic (flipped)",
			-before.FeedsWithoutDynamic, -after.FeedsWithoutDynamic),
	}
	for _, err := range checks {
		if err != nil {
			return err
		}
	}
	return nil
}
