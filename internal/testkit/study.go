package testkit

import (
	"strings"

	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/faults"
)

// StudyRun is one completed end-to-end study plus its rendered report.
type StudyRun struct {
	Spec     WorldSpec
	Study    *core.Study
	Report   *core.Report
	Rendered string
}

// RunStudy executes the spec's study end to end with the given worker count
// and optional fault scenario. The world is regenerated on every call —
// each run is an independent realization of the same spec, which is exactly
// what the determinism relations need.
func RunStudy(spec WorldSpec, workers int, scenario *faults.Scenario) (*StudyRun, error) {
	s := core.NewStudy(spec.StudyConfig(workers, scenario))
	rep, err := s.Run()
	if err != nil {
		return nil, err
	}
	return &StudyRun{Spec: spec, Study: s, Report: rep, Rendered: rep.Render()}, nil
}

// IsDegenerateWorld reports whether a study error means the generated world
// cannot host the crawl at all (no publicly reachable swarm) — a property
// sweep skips such worlds instead of failing, but counts them so a
// generator regression that produces mostly-degenerate worlds still trips
// the suite.
func IsDegenerateWorld(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no publicly reachable users")
}
