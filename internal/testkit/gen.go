package testkit

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/faults"
)

// WorldSpec is one randomized point in the space of worlds and study shapes
// the simulator can produce. Every field stays inside a range the generator
// documents; the zero value is NOT valid — use GenWorldSpec or DefaultSpec.
type WorldSpec struct {
	Seed  int64
	Scale float64 // world scale; small enough to keep a study sub-second

	// CGN shape.
	CGNFrac              float64 // share of eyeball space behind carrier NAT
	GatewaysPerCGNPrefix int     // gateways per CGN /24
	NATZeroBTFrac        float64 // gateways with no BitTorrent users
	NATOneBTFrac         float64 // gateways with exactly one

	// Dynamic-pool shape and churn.
	DynamicFrac    float64 // share of eyeball space on DHCP pools
	RestartsPerDay float64 // public clients' daily restart (churn) rate

	// Blocklist mix.
	TopFeedDetectP  float64 // detection prob of the big community feeds
	BaseFeedDetectP float64 // mean detection prob of small sensor feeds
	DelistLag1P     float64 // P(delisted one day after last event)

	// Probe fleet.
	ProbeASFrac float64 // fraction of eyeball ASes hosting probes
	ProbesPerAS int
	MoverFrac   float64 // probes that relocate across ASes

	// Study shape.
	Vantages   int
	CrawlHours int
}

// DefaultSpec is the tamest point of the space: the calibrated bench world
// at test scale. Shrinking moves fields toward these values.
func DefaultSpec(seed int64) WorldSpec {
	p := blgen.DefaultParams(seed)
	return WorldSpec{
		Seed:                 seed,
		Scale:                0.05,
		CGNFrac:              p.CGNFrac,
		GatewaysPerCGNPrefix: p.GatewaysPerCGNPrefix,
		NATZeroBTFrac:        p.NATZeroBTFrac,
		NATOneBTFrac:         p.NATOneBTFrac,
		DynamicFrac:          p.DynamicFrac,
		RestartsPerDay:       0.15, // core.Config's calibrated default churn
		TopFeedDetectP:       p.TopFeedDetectP,
		BaseFeedDetectP:      p.BaseFeedDetectP,
		DelistLag1P:          p.DelistLag1P,
		ProbeASFrac:          p.ProbeASFrac,
		ProbesPerAS:          p.ProbesPerAS,
		MoverFrac:            p.MoverFrac,
		Vantages:             1,
		CrawlHours:           2,
	}
}

// GenWorldSpec draws a randomized spec. Everything — including the world
// seed — derives from the one generator seed, so a failing spec reproduces
// from the seed alone. Ranges are chosen to stay inside the regimes the
// simulator is calibrated for while still varying every dimension the
// detectors are sensitive to.
func GenWorldSpec(genSeed int64) WorldSpec {
	rng := rand.New(rand.NewSource(genSeed))
	s := WorldSpec{
		Seed:  int64(rng.Intn(1 << 20)),
		Scale: 0.04 + rng.Float64()*0.04, // 0.04–0.08: viable yet sub-second

		CGNFrac:              0.06 + rng.Float64()*0.16, // 0.06–0.22
		GatewaysPerCGNPrefix: 16 + rng.Intn(57),         // 16–72
		NATZeroBTFrac:        0.30 + rng.Float64()*0.30, // 0.30–0.60
		NATOneBTFrac:         0.05 + rng.Float64()*0.15, // 0.05–0.20

		DynamicFrac:    0.15 + rng.Float64()*0.25, // 0.15–0.40
		RestartsPerDay: rng.Float64() * 0.6,       // 0–0.6

		TopFeedDetectP:  0.50 + rng.Float64()*0.40, // 0.50–0.90
		BaseFeedDetectP: 0.10 + rng.Float64()*0.40, // 0.10–0.50
		DelistLag1P:     0.40 + rng.Float64()*0.40, // 0.40–0.80

		ProbeASFrac: 0.10 + rng.Float64()*0.25, // 0.10–0.35
		ProbesPerAS: 6 + rng.Intn(9),           // 6–14
		MoverFrac:   rng.Float64() * 0.30,      // 0–0.30

		Vantages:   1 + rng.Intn(2), // 1–2
		CrawlHours: 2 + rng.Intn(4), // 2–5
	}
	return s
}

// Params realizes the world-generation side of the spec on top of the
// calibrated defaults. StaticFrac absorbs what CGN and dynamic space leave,
// capped at the default so the three kind fractions never exceed 1.
func (s WorldSpec) Params() blgen.Params {
	p := blgen.DefaultParams(s.Seed)
	p.Scale = s.Scale
	p.CGNFrac = s.CGNFrac
	p.GatewaysPerCGNPrefix = s.GatewaysPerCGNPrefix
	p.NATZeroBTFrac = s.NATZeroBTFrac
	p.NATOneBTFrac = s.NATOneBTFrac
	p.DynamicFrac = s.DynamicFrac
	if rem := 1 - p.CGNFrac - p.DynamicFrac - 0.02; rem < p.StaticFrac {
		p.StaticFrac = rem
	}
	p.TopFeedDetectP = s.TopFeedDetectP
	p.BaseFeedDetectP = s.BaseFeedDetectP
	p.DelistLag1P = s.DelistLag1P
	p.ProbeASFrac = s.ProbeASFrac
	p.ProbesPerAS = s.ProbesPerAS
	p.MoverFrac = s.MoverFrac
	return p
}

// StudyConfig realizes the study side of the spec.
func (s WorldSpec) StudyConfig(workers int, scenario *faults.Scenario) core.Config {
	wp := s.Params()
	return core.Config{
		Seed:           s.Seed,
		World:          &wp,
		CrawlDuration:  time.Duration(s.CrawlHours) * time.Hour,
		RestartsPerDay: restartsOrDisabled(s.RestartsPerDay),
		Vantages:       s.Vantages,
		Workers:        workers,
		Faults:         scenario,
	}
}

// restartsOrDisabled maps the spec's churn rate onto core.Config's encoding
// (0 means "default", negative means "off").
func restartsOrDisabled(v float64) float64 {
	if v <= 0 {
		return -1
	}
	return v
}

func (s WorldSpec) String() string {
	return fmt.Sprintf("WorldSpec{Seed:%d Scale:%.3f CGN:%.2f×%d natZero:%.2f natOne:%.2f Dyn:%.2f Restarts:%.2f topP:%.2f baseP:%.2f lag1:%.2f probes:%.2f×%d movers:%.2f vantages:%d crawl:%dh}",
		s.Seed, s.Scale, s.CGNFrac, s.GatewaysPerCGNPrefix, s.NATZeroBTFrac, s.NATOneBTFrac,
		s.DynamicFrac, s.RestartsPerDay, s.TopFeedDetectP, s.BaseFeedDetectP, s.DelistLag1P,
		s.ProbeASFrac, s.ProbesPerAS, s.MoverFrac, s.Vantages, s.CrawlHours)
}

// Shrink greedily simplifies a failing spec: each pass moves one field
// halfway toward the tame default and keeps the move if the property still
// fails, until no move survives or the budget of fails() calls runs out.
// It returns the simplest still-failing spec found. fails must be a pure
// function of the spec.
func Shrink(spec WorldSpec, fails func(WorldSpec) bool, budget int) WorldSpec {
	tame := DefaultSpec(spec.Seed)
	moves := []func(*WorldSpec, WorldSpec){
		func(s *WorldSpec, t WorldSpec) { s.Scale = halfwayF(s.Scale, t.Scale) },
		func(s *WorldSpec, t WorldSpec) { s.CGNFrac = halfwayF(s.CGNFrac, t.CGNFrac) },
		func(s *WorldSpec, t WorldSpec) {
			s.GatewaysPerCGNPrefix = halfwayI(s.GatewaysPerCGNPrefix, t.GatewaysPerCGNPrefix)
		},
		func(s *WorldSpec, t WorldSpec) { s.NATZeroBTFrac = halfwayF(s.NATZeroBTFrac, t.NATZeroBTFrac) },
		func(s *WorldSpec, t WorldSpec) { s.NATOneBTFrac = halfwayF(s.NATOneBTFrac, t.NATOneBTFrac) },
		func(s *WorldSpec, t WorldSpec) { s.DynamicFrac = halfwayF(s.DynamicFrac, t.DynamicFrac) },
		func(s *WorldSpec, t WorldSpec) { s.RestartsPerDay = halfwayF(s.RestartsPerDay, t.RestartsPerDay) },
		func(s *WorldSpec, t WorldSpec) { s.TopFeedDetectP = halfwayF(s.TopFeedDetectP, t.TopFeedDetectP) },
		func(s *WorldSpec, t WorldSpec) { s.BaseFeedDetectP = halfwayF(s.BaseFeedDetectP, t.BaseFeedDetectP) },
		func(s *WorldSpec, t WorldSpec) { s.DelistLag1P = halfwayF(s.DelistLag1P, t.DelistLag1P) },
		func(s *WorldSpec, t WorldSpec) { s.ProbeASFrac = halfwayF(s.ProbeASFrac, t.ProbeASFrac) },
		func(s *WorldSpec, t WorldSpec) { s.ProbesPerAS = halfwayI(s.ProbesPerAS, t.ProbesPerAS) },
		func(s *WorldSpec, t WorldSpec) { s.MoverFrac = halfwayF(s.MoverFrac, t.MoverFrac) },
		func(s *WorldSpec, t WorldSpec) { s.Vantages = t.Vantages },
		func(s *WorldSpec, t WorldSpec) { s.CrawlHours = halfwayI(s.CrawlHours, t.CrawlHours) },
	}
	best := spec
	for budget > 0 {
		improved := false
		for _, move := range moves {
			if budget <= 0 {
				break
			}
			cand := best
			move(&cand, tame)
			if cand == best {
				continue
			}
			budget--
			if fails(cand) {
				best = cand
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return best
}

func halfwayF(v, target float64) float64 {
	next := v + (target-v)/2
	// Snap tiny remaining gaps so shrinking terminates.
	if d := next - target; d < 1e-3 && d > -1e-3 {
		return target
	}
	return next
}

func halfwayI(v, target int) int {
	if v == target {
		return v
	}
	next := v + (target-v)/2
	if next == v {
		return target
	}
	return next
}
