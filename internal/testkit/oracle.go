package testkit

import (
	"sort"

	"github.com/reuseblock/reuseblock/internal/analysis"
	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/kneedle"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
)

// Score bands the oracles hold every generated world to. These are
// deliberately loose — the goldens pin exact numbers at seed 1; the bands
// only catch a detector that has stopped working. Tighten with evidence
// from `make verify-props` sweeps, never loosen silently.
const (
	// MinNATPrecision: an address the crawler flags as NATed must almost
	// always be a real gateway. The confirmation rule (two simultaneous
	// distinct (port, node-ID) pairs) can in principle be faked by a
	// public client restarting inside one ping window, so the band allows
	// a sliver below perfect.
	MinNATPrecision = 0.95
	// Recall varies wildly per world (0.03–0.88 over a 60-world
	// calibration sweep — short crawls against large CGN populations
	// legitimately confirm few gateways), so recall is banded over the
	// sweep ensemble, not per world: among worlds with at least
	// MinNATTruthN detectable gateways (BT users >= 2), at least
	// MinNATDetectFrac must reach MinNATRecall, and the median must reach
	// MinMedianNATRecall. Calibration: 55/57 eligible ≥ 0.05, median ≈ 0.3.
	MinNATRecall       = 0.05
	MinNATTruthN       = 10
	MinNATDetectFrac   = 0.75
	MinMedianNATRecall = 0.10
	// MinEnsembleWorlds gates the ensemble bands: below this many
	// eligible worlds the sample is too small to band.
	MinEnsembleWorlds = 10
	// MinRIPEPrecision: a /24 the RIPE pipeline calls dynamic must be a
	// genuinely dynamic pool. Probes only churn addresses inside dynamic
	// pools, so this should be perfect; the band tolerates boundary
	// artifacts.
	MinRIPEPrecision = 0.95
)

// Oracle exposes ground truth from one generated world.
type Oracle struct {
	World *blgen.World
}

// CheckNATObservations verifies the crawler's NAT detections against
// ground truth: every flagged address must be a real gateway whose reported
// user count is a valid lower bound — at least the confirmation minimum of
// two, at most the true number of BitTorrent users behind the gateway
// (which itself never exceeds the total users sharing it).
func (o Oracle) CheckNATObservations(obs []crawler.NATObservation) error {
	for _, ob := range obs {
		truth, ok := o.World.NATByIP[ob.Addr]
		if !ok {
			return violatef("nat-lower-bound", "detected NATed %s is not a NAT gateway", ob.Addr)
		}
		if ob.Users < 2 {
			return violatef("nat-lower-bound", "gateway %s confirmed with %d users (< 2)", ob.Addr, ob.Users)
		}
		if ob.Users > truth.BTUsers {
			return violatef("nat-lower-bound",
				"gateway %s lower bound %d exceeds true BT users %d", ob.Addr, ob.Users, truth.BTUsers)
		}
		if truth.BTUsers > truth.TotalUsers {
			return violatef("nat-lower-bound",
				"world inconsistency: gateway %s has %d BT users but %d total", ob.Addr, truth.BTUsers, truth.TotalUsers)
		}
	}
	return nil
}

// CheckDynamicDetection verifies the RIPE pipeline's output against ground
// truth and its own funnel structure: stages only shrink, the stage counts
// partition the fleet, and every detected dynamic /24 lies inside probe
// coverage and (within MinRIPEPrecision) inside a genuinely dynamic pool.
func (o Oracle) CheckDynamicDetection(res *ripeatlas.Result) error {
	if res.SameASProbes > res.TotalProbes || res.FrequentProbes > res.SameASProbes ||
		res.DailyProbes > res.FrequentProbes {
		return violatef("ripe-funnel", "stages not monotone: %d >= %d >= %d >= %d",
			res.TotalProbes, res.SameASProbes, res.FrequentProbes, res.DailyProbes)
	}
	if res.MultiASProbes+res.NoChangeProbes+res.SameASProbes != res.TotalProbes {
		return violatef("ripe-funnel", "stage partition broken: %d + %d + %d != %d",
			res.MultiASProbes, res.NoChangeProbes, res.SameASProbes, res.TotalProbes)
	}
	detected := res.DynamicPrefixes.Sorted()
	truly := 0
	for _, p := range detected {
		if !res.RIPEPrefixes.Covers(p.Base()) {
			return violatef("ripe-coverage", "dynamic prefix %s outside probe coverage", p)
		}
		if o.World.TrueAnyDynamic.Covers(p.Base()) {
			truly++
		}
	}
	if n := len(detected); n > 0 {
		if prec := float64(truly) / float64(n); prec < MinRIPEPrecision {
			return violatef("ripe-precision", "only %d/%d detected dynamic /24s are genuinely dynamic pools (%.2f < %.2f)",
				truly, n, prec, MinRIPEPrecision)
		}
	}
	return nil
}

// CheckDurations verifies the Fig 7 quantities against the observation
// calendar: no listing can last longer than its measurement window — the
// paper's "as many as 44 days" is a bound the windows enforce (39 and 44
// days for the standard calendar) — and the distribution heads stay inside
// [0, 1].
func (o Oracle) CheckDurations(d *analysis.Durations) error {
	windows := o.World.Collection.Windows()
	if len(d.MaxReusedPerWindow) != len(windows) {
		return violatef("duration-windows", "%d per-window maxima for %d windows",
			len(d.MaxReusedPerWindow), len(windows))
	}
	total := 0
	for w, span := range windows {
		length := span[1] - span[0] + 1
		total += length
		if d.MaxReusedPerWindow[w] > length {
			return violatef("duration-windows",
				"window %d: longest reused listing %d days exceeds the %d-day window",
				w, d.MaxReusedPerWindow[w], length)
		}
	}
	if d.MaxReusedDays > total {
		return violatef("duration-windows", "max reused listing %d days exceeds %d observation days",
			d.MaxReusedDays, total)
	}
	for name, frac := range map[string]float64{
		"all": d.AllTwoDay, "nated": d.NATedTwoDay, "dynamic": d.DynamicTwoDay,
	} {
		if frac < 0 || frac > 1 {
			return violatef("duration-windows", "%s two-day removal fraction %.3f outside [0, 1]", name, frac)
		}
	}
	return nil
}

// CheckScores verifies the report's per-world score invariant: whatever the
// crawler confirmed must be almost entirely real (precision band). Recall
// is banded over the sweep ensemble instead — see SweepStats.
func (o Oracle) CheckScores(rep *core.Report) error {
	nat := rep.NATScore
	if nat.TruePositives+nat.FalsePositives > 0 && nat.Precision < MinNATPrecision {
		return violatef("score-bands", "NAT precision %.3f below %.2f (tp=%d fp=%d)",
			nat.Precision, MinNATPrecision, nat.TruePositives, nat.FalsePositives)
	}
	return nil
}

// SweepStats accumulates per-world headline scores across a property sweep
// so the recall bands can be judged on the ensemble.
type SweepStats struct {
	// Recalls holds NAT recall for every world with at least MinNATTruthN
	// detectable gateways.
	Recalls []float64
	// Worlds and Degenerate count sweep coverage; a sweep where most
	// generated worlds cannot host a crawl is itself a failure.
	Worlds     int
	Degenerate int
}

// AddStudy folds one completed world into the ensemble.
func (st *SweepStats) AddStudy(rep *core.Report) {
	st.Worlds++
	nat := rep.NATScore
	if nat.TruePositives+nat.FalseNegatives >= MinNATTruthN {
		st.Recalls = append(st.Recalls, nat.Recall)
	}
}

// CheckEnsemble verifies the sweep-level bands: enough worlds were viable,
// and NAT recall clears its floor often enough and in the median. With
// fewer than MinEnsembleWorlds eligible worlds the recall bands are
// skipped — the sample is too small to judge.
func (st *SweepStats) CheckEnsemble() error {
	if st.Degenerate > st.Worlds {
		return violatef("sweep-ensemble", "%d degenerate worlds out of %d viable — generator regression",
			st.Degenerate, st.Worlds)
	}
	if len(st.Recalls) < MinEnsembleWorlds {
		return nil
	}
	sorted := append([]float64(nil), st.Recalls...)
	sort.Float64s(sorted)
	detecting := 0
	for _, r := range sorted {
		if r >= MinNATRecall {
			detecting++
		}
	}
	if frac := float64(detecting) / float64(len(sorted)); frac < MinNATDetectFrac {
		return violatef("sweep-ensemble", "only %.0f%% of %d worlds reach NAT recall %.2f (band %.0f%%)",
			frac*100, len(sorted), MinNATRecall, MinNATDetectFrac*100)
	}
	if median := sorted[len(sorted)/2]; median < MinMedianNATRecall {
		return violatef("sweep-ensemble", "median NAT recall %.3f below %.2f over %d worlds",
			median, MinMedianNATRecall, len(sorted))
	}
	return nil
}

// CheckKneeStability verifies the kneedle threshold is stable under
// resampling: duplicating every sample k times is a bootstrap of the same
// empirical distribution, so the knee *value* (the allocation-count
// threshold) must not move. Kneedle's sensitivity cutoff is S times the
// mean candidate spacing, which duplication divides by ~k, so the
// resampled run gets a density-corrected S to keep the effective cutoff
// fixed — without the correction the relation is false by construction,
// not by detector defect. The options mirror the Fig 2 pipeline (log-Y).
func CheckKneeStability(counts []int, k int) error {
	n := len(counts)
	if n < 3 || k < 2 {
		return nil
	}
	base, _, baseErr := kneedle.FindSortedCounts(counts, kneedle.Options{LogY: true})
	resampled := make([]int, 0, n*k)
	for i := 0; i < k; i++ {
		resampled = append(resampled, counts...)
	}
	corrected := kneedle.Options{LogY: true, Sensitivity: float64(n*k-1) / float64(n-1)}
	dup, _, dupErr := kneedle.FindSortedCounts(resampled, corrected)
	return CheckKneeAgreement(base, dup, baseErr == nil, dupErr == nil, k)
}

// CheckKneeAgreement is the comparison half of CheckKneeStability, split
// out so its failure detection is testable. Knee *existence* may
// legitimately flip under resampling — kneedle's sensitivity cutoff depends
// on candidate spacing, and duplication changes the spacing — and at the
// bottom of the count scale the knee may shift by one allocation:
// allocation counts are integers, so the tie plateaus at tiny values (2 vs
// 1) dominate the log-Y curvature landscape and resampling can move the
// local maximum across a plateau boundary. Thresholds one apart classify
// nearly identically, so only a larger move — the real failure mode is an
// order-of-magnitude jump — is a violation when both resamplings find a
// knee.
func CheckKneeAgreement(base, dup int, baseFound, dupFound bool, k int) error {
	if baseFound && dupFound && abs(base-dup) > 1 {
		return violatef("knee-stability", "knee moved from %d to %d under ×%d resampling", base, dup, k)
	}
	return nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
