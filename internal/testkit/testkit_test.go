package testkit

import (
	"bytes"
	"errors"
	"testing"

	"github.com/reuseblock/reuseblock/internal/analysis"
	"github.com/reuseblock/reuseblock/internal/blgen"
	"github.com/reuseblock/reuseblock/internal/core"
	"github.com/reuseblock/reuseblock/internal/crawler"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
)

// wantViolation asserts a checker objected, with the expected relation name.
func wantViolation(t *testing.T, err error, relation string) {
	t.Helper()
	var v *Violation
	if !errors.As(err, &v) {
		t.Fatalf("checker accepted broken input (err = %v), want %s violation", err, relation)
	}
	if v.Relation != relation {
		t.Fatalf("violation relation = %q, want %q (detail: %s)", v.Relation, relation, v.Detail)
	}
}

func wantOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("checker rejected valid input: %v", err)
	}
}

func TestGenWorldSpecDeterministicAndInRange(t *testing.T) {
	if GenWorldSpec(7) != GenWorldSpec(7) {
		t.Fatal("GenWorldSpec is not deterministic in its seed")
	}
	distinct := map[WorldSpec]bool{}
	for seed := int64(0); seed < 100; seed++ {
		s := GenWorldSpec(seed)
		distinct[s] = true
		if s.Scale < 0.04 || s.Scale > 0.08 {
			t.Fatalf("seed %d: Scale %.3f out of range", seed, s.Scale)
		}
		if s.CGNFrac < 0.06 || s.CGNFrac > 0.22 || s.DynamicFrac < 0.15 || s.DynamicFrac > 0.40 {
			t.Fatalf("seed %d: space fractions out of range: %s", seed, s)
		}
		if s.Vantages < 1 || s.Vantages > 2 || s.CrawlHours < 2 || s.CrawlHours > 5 {
			t.Fatalf("seed %d: study shape out of range: %s", seed, s)
		}
		p := s.Params()
		if sum := p.CGNFrac + p.DynamicFrac + p.StaticFrac; sum > 1 {
			t.Fatalf("seed %d: space fractions sum to %.3f > 1", seed, sum)
		}
	}
	if len(distinct) < 90 {
		t.Fatalf("only %d distinct specs from 100 seeds", len(distinct))
	}
}

func TestStudyConfigChurnEncoding(t *testing.T) {
	s := DefaultSpec(1)
	s.RestartsPerDay = 0
	if got := s.StudyConfig(1, nil).RestartsPerDay; got >= 0 {
		t.Fatalf("zero churn must map to negative (disabled), got %v", got)
	}
	s.RestartsPerDay = 0.4
	if got := s.StudyConfig(1, nil).RestartsPerDay; got != 0.4 {
		t.Fatalf("churn 0.4 mapped to %v", got)
	}
}

func TestShrinkFindsTamerFailure(t *testing.T) {
	spec := GenWorldSpec(11)
	spec.Scale = 0.08
	spec.CrawlHours = 5
	// Property that fails whenever the world is above test scale: the
	// shrinker should walk Scale down toward 0.05 while resetting every
	// field the failure does not depend on.
	fails := func(s WorldSpec) bool { return s.Scale > 0.055 }
	got := Shrink(spec, fails, 200)
	if !fails(got) {
		t.Fatalf("shrink returned a passing spec: %s", got)
	}
	if got.Scale >= spec.Scale {
		t.Fatalf("shrink did not reduce Scale: %.3f -> %.3f", spec.Scale, got.Scale)
	}
	tame := DefaultSpec(spec.Seed)
	if got.CrawlHours != tame.CrawlHours || got.Vantages != tame.Vantages {
		t.Fatalf("shrink left irrelevant fields wild: %s", got)
	}
}

func TestShrinkTerminatesOnUnshrinkable(t *testing.T) {
	spec := GenWorldSpec(12)
	got := Shrink(spec, func(WorldSpec) bool { return true }, 500)
	// Everything-fails shrinks all the way to the tame default.
	if got != DefaultSpec(spec.Seed) {
		t.Fatalf("always-failing property should shrink to the default spec, got %s", got)
	}
	// A never-failing predicate keeps the original (no move survives).
	if got := Shrink(spec, func(WorldSpec) bool { return false }, 500); got != spec {
		t.Fatalf("never-failing property must keep the original spec, got %s", got)
	}
}

func TestCheckIdenticalRendersMutation(t *testing.T) {
	wantOK(t, CheckIdenticalRenders("seed-determinism", "a\nbc", "a\nbc"))
	wantViolation(t, CheckIdenticalRenders("seed-determinism", "a\nbc", "a\nbd"), "seed-determinism")
}

func TestCheckMonotoneCountsMutation(t *testing.T) {
	wantOK(t, CheckMonotoneCounts("m", []int{1, 2, 3}, []int{1, 3, 3}))
	wantViolation(t, CheckMonotoneCounts("m", []int{1, 2, 3}, []int{1, 1, 3}), "m")
	wantViolation(t, CheckMonotoneCounts("m", []int{1, 2}, []int{1, 2, 3}), "m")
}

func TestCheckScalarRelationsMutation(t *testing.T) {
	wantOK(t, CheckMonotoneScalar("m", "x", 2, 2))
	wantViolation(t, CheckMonotoneScalar("m", "x", 2, 1), "m")
	wantOK(t, CheckScalarEqual("p", "x", 4, 4))
	wantViolation(t, CheckScalarEqual("p", "x", 4, 5), "p")
	wantOK(t, CheckFloatEqual("p", "x", 0.5, 0.5+1e-13, 1e-12))
	wantViolation(t, CheckFloatEqual("p", "x", 0.5, 0.6, 1e-12), "p")
}

func TestCheckPermutedCountsMutation(t *testing.T) {
	perm := []int{2, 0, 1}
	base := []int{10, 20, 30}
	wantOK(t, CheckPermutedCounts("fp", base, []int{20, 30, 10}, perm))
	wantViolation(t, CheckPermutedCounts("fp", base, []int{20, 10, 30}, perm), "fp")
}

func TestCheckToleranceBandMutation(t *testing.T) {
	wantOK(t, CheckToleranceBand("tb", 0.80, 0.75, 0.10))
	wantOK(t, CheckToleranceBand("tb", 0.80, 0.95, 0.10)) // improvement is in band
	wantViolation(t, CheckToleranceBand("tb", 0.80, 0.60, 0.10), "tb")
}

func perListFixture() *analysis.PerListReuse {
	return &analysis.PerListReuse{
		NATedPerFeed:        []int{3, 0, 5},
		DynamicPerFeed:      []int{1, 2, 0},
		CaiDynamicPerFeed:   []int{0, 1, 1},
		FeedsWithoutNATed:   1,
		FeedsWithoutDynamic: 1,
		NATedListings:       8,
		DynamicListings:     3,
		CaiDynamicListings:  2,
		NATedAddrs:          6,
		DynamicAddrs:        3,
		MeanNATedPerFeed:    8.0 / 3,
		Top10NATedShare:     1,
		Top10DynamicShare:   1,
	}
}

func permuteFixture(base *analysis.PerListReuse, perm []int) *analysis.PerListReuse {
	p := *base
	p.NATedPerFeed = make([]int, len(perm))
	p.DynamicPerFeed = make([]int, len(perm))
	p.CaiDynamicPerFeed = make([]int, len(perm))
	for i, to := range perm {
		p.NATedPerFeed[to] = base.NATedPerFeed[i]
		p.DynamicPerFeed[to] = base.DynamicPerFeed[i]
		p.CaiDynamicPerFeed[to] = base.CaiDynamicPerFeed[i]
	}
	return &p
}

func TestCheckPerListPermutationMutation(t *testing.T) {
	base := perListFixture()
	perm := []int{1, 2, 0}
	good := permuteFixture(base, perm)
	wantOK(t, CheckPerListPermutation(base, good, perm))

	broken := permuteFixture(base, perm)
	broken.NATedPerFeed[0], broken.NATedPerFeed[1] = broken.NATedPerFeed[1], broken.NATedPerFeed[0]
	wantViolation(t, CheckPerListPermutation(base, broken, perm), "feed-permutation")

	broken = permuteFixture(base, perm)
	broken.NATedListings++
	wantViolation(t, CheckPerListPermutation(base, broken, perm), "feed-permutation")

	broken = permuteFixture(base, perm)
	broken.Top10DynamicShare += 0.01
	wantViolation(t, CheckPerListPermutation(base, broken, perm), "feed-permutation")
}

func TestCheckPerListMonotoneMutation(t *testing.T) {
	before := perListFixture()
	after := perListFixture()
	after.NATedPerFeed[1]++ // the new listing is NATed on feed 1
	after.NATedListings++
	after.NATedAddrs++
	after.FeedsWithoutNATed--
	wantOK(t, CheckPerListMonotone(before, after))

	broken := perListFixture()
	broken.DynamicPerFeed[1]--
	wantViolation(t, CheckPerListMonotone(before, broken), "listing-monotonicity")

	broken = perListFixture()
	broken.FeedsWithoutDynamic++ // a feed cannot *gain* emptiness
	wantViolation(t, CheckPerListMonotone(before, broken), "listing-monotonicity")
}

// testWorld generates one tiny real world, shared across oracle tests.
var testWorld = blgen.Generate(blgen.TestParams(1))

func TestOracleNATObservationsMutation(t *testing.T) {
	o := Oracle{World: testWorld}
	var gw *blgen.NATTruth
	for _, n := range testWorld.NATs {
		if n.BTUsers >= 2 {
			gw = n
			break
		}
	}
	if gw == nil {
		t.Fatal("test world has no detectable gateway")
	}
	good := []crawler.NATObservation{{Addr: gw.Addr, Users: 2}}
	wantOK(t, o.CheckNATObservations(good))

	// Mutant 1: claim an address that is not a gateway.
	notGateway := iputil.MustParseAddr("203.0.113.7")
	if _, ok := testWorld.NATByIP[notGateway]; ok {
		t.Fatal("fixture address is unexpectedly a gateway")
	}
	wantViolation(t, o.CheckNATObservations([]crawler.NATObservation{{Addr: notGateway, Users: 2}}), "nat-lower-bound")

	// Mutant 2: claim more users than the ground truth holds.
	wantViolation(t, o.CheckNATObservations([]crawler.NATObservation{{Addr: gw.Addr, Users: gw.BTUsers + 1}}), "nat-lower-bound")

	// Mutant 3: a "confirmed" gateway below the two-user confirmation rule.
	wantViolation(t, o.CheckNATObservations([]crawler.NATObservation{{Addr: gw.Addr, Users: 1}}), "nat-lower-bound")
}

func TestOracleDynamicDetectionMutation(t *testing.T) {
	o := Oracle{World: testWorld}
	res := ripeatlas.Detect(testWorld.RIPELogs, ripeatlas.DetectOptions{})
	wantOK(t, o.CheckDynamicDetection(res))

	// Mutant 1: break the funnel partition.
	broken := *res
	broken.NoChangeProbes++
	wantViolation(t, o.CheckDynamicDetection(&broken), "ripe-funnel")

	// Mutant 2: break stage monotonicity.
	broken = *res
	broken.DailyProbes = broken.FrequentProbes + 1
	wantViolation(t, o.CheckDynamicDetection(&broken), "ripe-funnel")

	// Mutant 3: flag a /24 no probe ever lived in.
	broken = *res
	outside := iputil.MustParsePrefix("198.51.100.0/24")
	if broken.RIPEPrefixes.Covers(outside.Base()) {
		t.Fatal("fixture prefix is unexpectedly covered")
	}
	dyn := iputil.NewPrefixSet()
	for _, p := range res.DynamicPrefixes.Sorted() {
		dyn.Add(p)
	}
	dyn.Add(outside)
	broken.DynamicPrefixes = dyn
	wantViolation(t, o.CheckDynamicDetection(&broken), "ripe-coverage")
}

func TestOracleDurationsMutation(t *testing.T) {
	o := Oracle{World: testWorld}
	windows := testWorld.Collection.Windows()
	good := &analysis.Durations{
		MaxReusedDays:      3,
		MaxReusedPerWindow: make([]int, len(windows)),
		AllTwoDay:          0.4, NATedTwoDay: 0.6, DynamicTwoDay: 0.7,
	}
	for w, span := range windows {
		good.MaxReusedPerWindow[w] = span[1] - span[0] + 1 // exactly at the bound
	}
	wantOK(t, o.CheckDurations(good))

	broken := *good
	broken.MaxReusedPerWindow = append([]int(nil), good.MaxReusedPerWindow...)
	broken.MaxReusedPerWindow[0]++ // one day longer than its window
	wantViolation(t, o.CheckDurations(&broken), "duration-windows")

	broken = *good
	broken.NATedTwoDay = 1.2
	wantViolation(t, o.CheckDurations(&broken), "duration-windows")
}

func TestCheckScoresMutation(t *testing.T) {
	o := Oracle{World: testWorld}
	good := &core.Report{}
	good.NATScore = analysis.PrecisionRecall{TruePositives: 20, FalsePositives: 0, Precision: 1}
	wantOK(t, o.CheckScores(good))

	broken := &core.Report{}
	broken.NATScore = analysis.PrecisionRecall{TruePositives: 10, FalsePositives: 10, Precision: 0.5}
	wantViolation(t, o.CheckScores(broken), "score-bands")
}

func TestSweepEnsembleMutation(t *testing.T) {
	healthy := &SweepStats{Worlds: 20}
	for i := 0; i < 20; i++ {
		healthy.Recalls = append(healthy.Recalls, 0.3)
	}
	wantOK(t, healthy.CheckEnsemble())

	// Below the minimum sample the bands are skipped, not enforced.
	tiny := &SweepStats{Worlds: 3, Recalls: []float64{0, 0, 0}}
	wantOK(t, tiny.CheckEnsemble())

	// Mutant 1: most worlds detect nothing.
	deaf := &SweepStats{Worlds: 20}
	for i := 0; i < 20; i++ {
		deaf.Recalls = append(deaf.Recalls, 0)
	}
	wantViolation(t, deaf.CheckEnsemble(), "sweep-ensemble")

	// Mutant 2: worlds clear the floor but the median collapsed.
	weak := &SweepStats{Worlds: 20}
	for i := 0; i < 20; i++ {
		weak.Recalls = append(weak.Recalls, 0.06)
	}
	wantViolation(t, weak.CheckEnsemble(), "sweep-ensemble")

	// Mutant 3: the generator mostly emits degenerate worlds.
	degen := &SweepStats{Worlds: 4, Degenerate: 10}
	wantViolation(t, degen.CheckEnsemble(), "sweep-ensemble")
}

func TestCheckKneeStability(t *testing.T) {
	// A sharp concave-decreasing count profile with an unambiguous knee.
	counts := []int{400, 380, 360, 340, 320, 8, 6, 5, 4, 3, 2, 1}
	if err := CheckKneeStability(counts, 3); err != nil {
		t.Fatalf("stable profile flagged: %v", err)
	}
	// Degenerate inputs short-circuit.
	if err := CheckKneeStability([]int{1, 2}, 3); err != nil {
		t.Fatalf("short input must be skipped: %v", err)
	}
}

func TestCheckKneeAgreementMutation(t *testing.T) {
	wantOK(t, CheckKneeAgreement(5, 5, true, true, 3))
	wantOK(t, CheckKneeAgreement(5, 9, true, false, 3)) // existence flip tolerated
	wantOK(t, CheckKneeAgreement(2, 1, true, true, 3))  // one-allocation plateau shift tolerated
	wantViolation(t, CheckKneeAgreement(5, 9, true, true, 3), "knee-stability")
	wantViolation(t, CheckKneeAgreement(9, 5, true, true, 3), "knee-stability")
}

func TestPermuteAndCloneCollection(t *testing.T) {
	col := testWorld.Collection
	n := col.Registry().Len()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = (i + 3) % n // a fixed-point-free rotation
	}
	permuted, err := PermuteCollection(col, perm)
	if err != nil {
		t.Fatalf("PermuteCollection: %v", err)
	}
	if got, want := len(permuted.Listings()), len(col.Listings()); got != want {
		t.Fatalf("permutation changed total listings: %d != %d", got, want)
	}
	for fi := 0; fi < n; fi++ {
		a := col.FeedAddrs(fi).Sorted()
		b := permuted.FeedAddrs(perm[fi]).Sorted()
		if len(a) != len(b) {
			t.Fatalf("feed %d -> %d: %d addrs became %d", fi, perm[fi], len(a), len(b))
		}
	}

	clone, err := CloneCollection(col)
	if err != nil {
		t.Fatalf("CloneCollection: %v", err)
	}
	if got, want := len(clone.Listings()), len(col.Listings()); got != want {
		t.Fatalf("clone changed total listings: %d != %d", got, want)
	}
	// The clone must reproduce per-listing spans exactly, not just totals.
	type key struct {
		fi   int
		addr iputil.Addr
	}
	days := map[key]int{}
	for _, l := range col.Listings() {
		days[key{l.FeedIndex, l.Addr}] += l.Days
	}
	for _, l := range clone.Listings() {
		k := key{l.FeedIndex, l.Addr}
		if days[k] < l.Days {
			t.Fatalf("clone listing %v has %d days, original total %d", k, l.Days, days[k])
		}
	}
}

func TestMutateBytes(t *testing.T) {
	input := []byte("d1:ad2:id20:abcdefghij0123456789e1:q4:ping1:t2:aa1:y1:qe")
	a := MutateBytes(42, input, 50)
	b := MutateBytes(42, input, 50)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("wrong mutant count: %d, %d", len(a), len(b))
	}
	changed := 0
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("mutant %d not deterministic", i)
		}
		if !bytes.Equal(a[i], input) {
			changed++
		}
	}
	if changed < 45 {
		t.Fatalf("only %d/50 mutants differ from the input", changed)
	}
	// Empty input grows rather than panicking.
	if got := MutateBytes(7, nil, 5); len(got) != 5 {
		t.Fatalf("empty-input mutants: %d", len(got))
	}
}
