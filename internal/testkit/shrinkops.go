package testkit

// ShrinkOps greedily minimizes a failing operation sequence: it first tries
// deleting progressively smaller chunks (halving from len/2 down to 1), and
// keeps any deletion after which the property still fails, until no deletion
// survives or the budget of fails() calls runs out. It returns the shortest
// still-failing sequence found. fails must be a pure function of the
// sequence — the same contract Shrink imposes on WorldSpec properties.
//
// It complements Shrink (which walks WorldSpec fields toward tame defaults):
// state-machine property tests over arbitrary op sequences — like the ipset
// model checker — shrink counterexamples with this instead.
func ShrinkOps[T any](ops []T, fails func([]T) bool, budget int) []T {
	best := append([]T(nil), ops...)
	for chunk := len(best) / 2; chunk >= 1; {
		improved := false
		for start := 0; start+chunk <= len(best) && budget > 0; {
			cand := make([]T, 0, len(best)-chunk)
			cand = append(cand, best[:start]...)
			cand = append(cand, best[start+chunk:]...)
			budget--
			if fails(cand) {
				best = cand
				improved = true
				// Same start now names the next chunk; retry in place.
				continue
			}
			start += chunk
		}
		if budget <= 0 {
			break
		}
		if !improved || chunk > len(best)/2 {
			chunk /= 2
		}
	}
	return best
}
