// Package shed is the serving layer's overload-resilience mechanism:
// admission control, adaptive load shedding, per-client rate limiting, and
// the degraded-mode state machine blserve runs when demand outstrips
// capacity or a dataset reload fails.
//
// The paper's central harm — one NATed address ban collaterally blocking
// thousands of users (§5) — gets worse if the reuse-lookup service itself
// falls over under load and enforcement points fall back to blind blocking.
// So the service must degrade deliberately, not collapse: requests past
// capacity are rejected quickly with a well-formed JSON error and a
// Retry-After, never queued without bound or answered with a stalled
// connection.
//
// Three cooperating pieces:
//
//   - Admission gates (one per endpoint class): a bounded concurrency limit
//     with a bounded, deadline-aware wait queue. Shedding is CoDel-style:
//     the measured queue sojourn time is compared against a target, and when
//     it stays above the target for a full interval the gate flips into a
//     dropping state that sheds the *newest* arrivals immediately — standing
//     queues drain instead of growing, and goodput stays pinned near
//     capacity instead of collapsing under retry storms.
//
//   - A per-client token-bucket limiter keyed by client IP (optionally
//     aggregated to a prefix, and optionally trusting X-Forwarded-For behind
//     a load balancer), held in an LRU so a scan of spoofed clients cannot
//     exhaust memory. CGNAT deployments mean one hot client IP can be
//     thousands of legitimate users, so limits are per-key budgets with
//     bursts, not bans.
//
//   - A mode state machine: sustained overload (any gate dropping, or
//     continuously shedding or queueing past target) or a failed dataset
//     reload moves the controller to ModeDegraded; calm sustained for a
//     recovery window moves it back.
//     Servers surface the mode at /readyz so load balancers drain a
//     degraded instance instead of timing out on it.
//
// Everything is mechanism only — the HTTP glue (error bodies, Retry-After
// headers, degraded response selection) lives with the API handlers in
// reuseapi, which is also where the "off by default" contract is enforced:
// a nil controller leaves every serving path byte-identical to the
// unguarded build.
package shed

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/reuseblock/reuseblock/internal/obs"
)

// Class partitions endpoints by cost so a flood of expensive requests
// cannot starve the cheap hot path: admission is per-class.
type Class int

const (
	// ClassCheap is the zero-alloc single-check path (GET /v1/check) and
	// the tiny precomputed /v1/stats body.
	ClassCheap Class = iota
	// ClassHeavy covers full-body endpoints (/v1/list, /v1/prefixes) and
	// batch POST checks, whose unit of work is thousands of lookups.
	ClassHeavy

	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassCheap:
		return "cheap"
	case ClassHeavy:
		return "heavy"
	default:
		return "unknown"
	}
}

// Outcome is one admission decision.
type Outcome int

const (
	// Admitted means the request got a concurrency slot (possibly after a
	// bounded wait).
	Admitted Outcome = iota
	// ShedQueueFull means the wait queue was at capacity on arrival.
	ShedQueueFull
	// ShedOverloaded means the gate was in its CoDel dropping state —
	// queue sojourn stayed above target for a full interval — so the
	// newest arrival was shed without queueing.
	ShedOverloaded
	// ShedWaitTimeout means the request queued but no slot freed within
	// the deadline (the gate's max wait or the request context).
	ShedWaitTimeout
)

func (o Outcome) String() string {
	switch o {
	case Admitted:
		return "admitted"
	case ShedQueueFull:
		return "queue_full"
	case ShedOverloaded:
		return "overloaded"
	case ShedWaitTimeout:
		return "wait_timeout"
	default:
		return "unknown"
	}
}

// Mode is the controller's serving mode.
type Mode int32

const (
	// ModeNormal serves every representation.
	ModeNormal Mode = iota
	// ModeDegraded serves only the cheapest representation of each
	// endpoint (precomputed gzip bodies, clamped batches) and reports
	// not-ready at /readyz.
	ModeDegraded
)

func (m Mode) String() string {
	if m == ModeDegraded {
		return "degraded"
	}
	return "normal"
}

// Config tunes the controller. Zero values take the documented defaults.
type Config struct {
	// CheapConcurrency and HeavyConcurrency bound in-flight requests per
	// class. Defaults: 256 and 32.
	CheapConcurrency int
	HeavyConcurrency int
	// QueueLimit bounds waiters per class; arrivals past it are shed
	// immediately. Default 128.
	QueueLimit int
	// Target is the CoDel queue-sojourn target: admitted requests should
	// not have waited longer than this. Default 5ms.
	Target time.Duration
	// Interval is how long sojourn must stay above Target before the gate
	// starts dropping new arrivals. Default 100ms.
	Interval time.Duration
	// MaxWait is the hard cap on any single request's queue wait; a waiter
	// past it is shed with a deadline-style rejection. Default 50ms.
	MaxWait time.Duration

	// RatePerClient is the per-client token refill rate in requests per
	// second; 0 disables rate limiting. Burst is the bucket size (default
	// 2× the rate, minimum 1).
	RatePerClient float64
	Burst         int
	// ClientPrefixBits aggregates client keys to an address prefix
	// (24 groups a /24 — one CGNAT pool, one budget). Default 32 (exact).
	ClientPrefixBits int
	// TrustForwarded keys clients by the first X-Forwarded-For entry when
	// present — only safe behind a load balancer that sets it.
	TrustForwarded bool
	// MaxClients bounds the limiter LRU. Default 4096.
	MaxClients int

	// DegradeAfter is how long the overload condition must persist before
	// the mode flips to degraded; a failed reload degrades immediately.
	// Default 1s.
	DegradeAfter time.Duration
	// RecoverAfter is how long calm must persist before a degraded
	// controller recovers. Default 2s.
	RecoverAfter time.Duration
	// RetryAfter is the delay advertised on shed and rate-limited
	// responses. Default 1s.
	RetryAfter time.Duration
	// DegradedMaxBatchIPs clamps batch checks while degraded. Default 256.
	DegradedMaxBatchIPs int

	// Dataset labels this controller's metrics when a server runs one
	// controller per named dataset (multi-dataset serving); empty keeps the
	// single-dataset server's metric names unchanged.
	Dataset string
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	defD := func(v *time.Duration, d time.Duration) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.CheapConcurrency, 256)
	def(&c.HeavyConcurrency, 32)
	def(&c.QueueLimit, 128)
	defD(&c.Target, 5*time.Millisecond)
	defD(&c.Interval, 100*time.Millisecond)
	defD(&c.MaxWait, 50*time.Millisecond)
	if c.RatePerClient > 0 && c.Burst <= 0 {
		c.Burst = int(math.Max(1, 2*c.RatePerClient))
	}
	if c.ClientPrefixBits <= 0 || c.ClientPrefixBits > 32 {
		c.ClientPrefixBits = 32
	}
	def(&c.MaxClients, 4096)
	defD(&c.DegradeAfter, time.Second)
	defD(&c.RecoverAfter, 2*time.Second)
	defD(&c.RetryAfter, time.Second)
	def(&c.DegradedMaxBatchIPs, 256)
	return c
}

// Controller is the overload-resilience state shared by a server's
// handlers. All methods are safe for concurrent use.
type Controller struct {
	cfg   Config
	gates [numClasses]*gate
	lim   *limiter // nil when rate limiting is off
	now   func() time.Time

	// Mode state machine (mu guards the since stamps).
	mode         atomic.Int32
	reloadFailed atomic.Bool
	mu           sync.Mutex
	overSince    time.Time
	calmSince    time.Time

	// Totals for the manifest status block.
	admitted    atomic.Int64
	queued      atomic.Int64
	shed        atomic.Int64
	rateLimited atomic.Int64
	transitions atomic.Int64

	// Metric handles, resolved once (nil-safe when reg is nil).
	mOutcome    [numClasses][4]*obs.Counter
	mRateLim    *obs.Counter
	hSojourn    [numClasses]*obs.Histogram
	gDegraded   *obs.Gauge
	mTransition *obs.Counter
}

// sojournBuckets are the queue-wait histogram bounds, in seconds.
var sojournBuckets = []float64{1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.5}

// New builds a controller. reg may be nil (metrics become no-ops); every
// shed metric lives in the wall namespace — live traffic is not part of the
// deterministic study surface.
func New(cfg Config, reg *obs.Registry) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{cfg: cfg, now: time.Now}
	// A per-dataset controller prefixes every metric's labels with its
	// dataset so multi-dataset servers stay separable in /metrics; without
	// the label the names are byte-identical to the single-dataset build.
	name := func(base string, kv ...string) string {
		if cfg.Dataset != "" {
			kv = append([]string{"dataset", cfg.Dataset}, kv...)
		}
		return obs.Name(base, kv...)
	}
	conc := [numClasses]int{ClassCheap: cfg.CheapConcurrency, ClassHeavy: cfg.HeavyConcurrency}
	for cl := Class(0); cl < numClasses; cl++ {
		c.gates[cl] = newGate(conc[cl], cfg.QueueLimit, cfg.Target, cfg.Interval, cfg.MaxWait)
		for _, o := range []Outcome{Admitted, ShedQueueFull, ShedOverloaded, ShedWaitTimeout} {
			c.mOutcome[cl][o] = reg.Counter(name(obs.WallPrefix+"shed_requests_total",
				"class", cl.String(), "outcome", o.String()))
		}
		c.hSojourn[cl] = reg.Histogram(name(obs.WallPrefix+"shed_queue_seconds",
			"class", cl.String()), sojournBuckets)
	}
	if cfg.RatePerClient > 0 {
		c.lim = newLimiter(cfg.RatePerClient, float64(cfg.Burst), cfg.MaxClients, c.now)
	}
	c.mRateLim = reg.Counter(name(obs.WallPrefix + "shed_rate_limited_total"))
	c.gDegraded = reg.Gauge(name(obs.WallPrefix + "shed_degraded"))
	c.mTransition = reg.Counter(name(obs.WallPrefix + "shed_mode_transitions_total"))
	return c
}

// Acquire asks the class gate for a concurrency slot, waiting at most the
// configured bound. On Admitted the returned release must be called when
// the request finishes; on every other outcome release is nil and the
// caller must reject the request.
func (c *Controller) Acquire(ctx context.Context, class Class) (release func(), outcome Outcome) {
	g := c.gates[class]
	release, outcome, sojourn := g.acquire(ctx, c.now)
	c.mOutcome[class][outcome].Inc()
	if outcome == Admitted {
		c.admitted.Add(1)
		if sojourn > 0 {
			c.queued.Add(1)
		}
		c.hSojourn[class].Observe(sojourn.Seconds())
	} else {
		c.shed.Add(1)
	}
	c.evaluate()
	return release, outcome
}

// AllowClient answers whether the request's client has token-bucket budget
// left. Always true when rate limiting is disabled.
func (c *Controller) AllowClient(key string) bool {
	if c.lim == nil {
		return true
	}
	if c.lim.allow(key) {
		return true
	}
	c.rateLimited.Add(1)
	c.mRateLim.Inc()
	return false
}

// SetReloadFailed flags (or clears) a failed dataset reload. A failed
// reload degrades the controller immediately — the served snapshot is
// stale, so load balancers should prefer healthy replicas — and clearing
// it starts the normal calm-window recovery.
func (c *Controller) SetReloadFailed(failed bool) {
	c.reloadFailed.Store(failed)
	c.evaluate()
}

// Mode evaluates and returns the current serving mode.
func (c *Controller) Mode() Mode { return c.evaluate() }

// Degraded reports whether the controller is in degraded mode.
func (c *Controller) Degraded() bool { return c.evaluate() == ModeDegraded }

// DegradedMaxBatch is the batch-size clamp applied while degraded.
func (c *Controller) DegradedMaxBatch() int { return c.cfg.DegradedMaxBatchIPs }

// RetryAfterSeconds is the advertised Retry-After delay, in whole seconds
// (minimum 1, as the header requires).
func (c *Controller) RetryAfterSeconds() int {
	s := int(math.Ceil(c.cfg.RetryAfter.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}

// evaluate advances the mode state machine from the current overload
// condition. It is called on every admission decision and on every Mode
// probe, so the mode keeps moving (and recovers) even when the only
// traffic left is a load balancer polling /readyz.
func (c *Controller) evaluate() Mode {
	now := c.now()
	over := c.reloadFailed.Load()
	if !over {
		for _, g := range c.gates {
			if g.overloadedNow(now) {
				over = true
				break
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := Mode(c.mode.Load())
	if over {
		c.calmSince = time.Time{}
		if c.overSince.IsZero() {
			c.overSince = now
		}
		if cur == ModeNormal && (c.reloadFailed.Load() || now.Sub(c.overSince) >= c.cfg.DegradeAfter) {
			c.setMode(ModeDegraded)
			cur = ModeDegraded
		}
	} else {
		c.overSince = time.Time{}
		if cur == ModeDegraded {
			if c.calmSince.IsZero() {
				c.calmSince = now
			}
			if now.Sub(c.calmSince) >= c.cfg.RecoverAfter {
				c.setMode(ModeNormal)
				cur = ModeNormal
			}
		}
	}
	return cur
}

// setMode flips the mode (caller holds mu) and records the transition.
func (c *Controller) setMode(m Mode) {
	c.mode.Store(int32(m))
	c.transitions.Add(1)
	c.mTransition.Inc()
	if m == ModeDegraded {
		c.gDegraded.Set(1)
	} else {
		c.gDegraded.Set(0)
	}
}

// Status snapshots the controller for the run manifest.
func (c *Controller) Status() *obs.OverloadStatus {
	mode := c.evaluate()
	return &obs.OverloadStatus{
		Enabled:         true,
		Mode:            mode.String(),
		Admitted:        c.admitted.Load(),
		Queued:          c.queued.Load(),
		Shed:            c.shed.Load(),
		RateLimited:     c.rateLimited.Load(),
		ModeTransitions: c.transitions.Load(),
		ReloadFailed:    c.reloadFailed.Load(),
	}
}

// gate is one endpoint class's admission control: a slot semaphore, a
// bounded wait queue, and the CoDel-style sojourn controller.
type gate struct {
	slots      chan struct{}
	queueLimit int64
	target     time.Duration
	interval   time.Duration
	maxWait    time.Duration

	waiters atomic.Int64
	// aboveSince is the unix-nano stamp of when sojourn first exceeded the
	// target (0 = at or below target). When it stays above for a full
	// interval, dropping latches and new arrivals are shed.
	aboveSince atomic.Int64
	dropping   atomic.Bool
	// lastPressure is the unix-nano stamp of the last evidence of queue
	// pressure (an over-target sojourn or a shed arrival); a dropping gate
	// with no recent pressure self-clears — the flood is over.
	lastPressure atomic.Int64
}

func newGate(concurrency, queueLimit int, target, interval, maxWait time.Duration) *gate {
	return &gate{
		slots:      make(chan struct{}, concurrency),
		queueLimit: int64(queueLimit),
		target:     target,
		interval:   interval,
		maxWait:    maxWait,
	}
}

func (g *gate) release() { <-g.slots }

// acquire implements the admission decision; sojourn is how long the
// request waited for its slot (0 on the fast path).
func (g *gate) acquire(ctx context.Context, now func() time.Time) (func(), Outcome, time.Duration) {
	// Fast path: a free slot at arrival means there is no standing queue —
	// the sojourn is zero, which also clears any dropping state.
	select {
	case g.slots <- struct{}{}:
		g.noteSojourn(0, now)
		return g.release, Admitted, 0
	default:
	}
	if g.dropping.Load() {
		// CoDel drop state: shed the newest arrival outright so the
		// standing queue drains instead of growing.
		g.lastPressure.Store(now().UnixNano())
		return nil, ShedOverloaded, 0
	}
	if g.waiters.Add(1) > g.queueLimit {
		g.waiters.Add(-1)
		g.lastPressure.Store(now().UnixNano())
		return nil, ShedQueueFull, 0
	}
	defer g.waiters.Add(-1)
	start := now()
	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		d := now().Sub(start)
		g.noteSojourn(d, now)
		return g.release, Admitted, d
	case <-timer.C:
		g.noteSojourn(g.maxWait, now)
		return nil, ShedWaitTimeout, g.maxWait
	case <-ctx.Done():
		return nil, ShedWaitTimeout, now().Sub(start)
	}
}

// noteSojourn feeds one sojourn measurement to the CoDel controller: at or
// below target resets it; above target for a full interval latches the
// dropping state.
func (g *gate) noteSojourn(d time.Duration, now func() time.Time) {
	if d <= g.target {
		g.aboveSince.Store(0)
		g.dropping.Store(false)
		return
	}
	n := now().UnixNano()
	g.lastPressure.Store(n)
	since := g.aboveSince.Load()
	if since == 0 {
		g.aboveSince.CompareAndSwap(0, n)
		return
	}
	if time.Duration(n-since) >= g.interval {
		g.dropping.Store(true)
	}
}

// overloadedNow reports whether the gate currently shows overload
// pressure: it is in its CoDel dropping state, or it shed an arrival or
// queued one past target within the last interval. The second clause
// matters when service times are short relative to the interval — the gate
// can reject work continuously without the sojourn ever staying above
// target long enough to latch dropping, and that is still overload. A
// dropping gate that has seen no pressure for two intervals self-clears:
// with no arrivals left to shed, the standing queue is gone.
func (g *gate) overloadedNow(now time.Time) bool {
	last := g.lastPressure.Load()
	idle := now.UnixNano() - last
	if g.dropping.Load() {
		if idle > 2*int64(g.interval) {
			g.dropping.Store(false)
			g.aboveSince.Store(0)
			return false
		}
		return true
	}
	return last != 0 && idle <= int64(g.interval)
}
