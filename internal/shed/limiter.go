package shed

import (
	"container/list"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// limiter is a per-client token-bucket map bounded by an LRU: each client
// key owns a bucket refilled at rate tokens/second up to burst. The LRU
// bound means a scan of spoofed client keys evicts idle entries instead of
// growing memory — an evicted client that returns simply starts from a
// full bucket, which errs toward admitting.
type limiter struct {
	rate    float64
	burst   float64
	maxKeys int
	now     func() time.Time

	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

type bucket struct {
	key    string
	tokens float64
	last   time.Time
}

func newLimiter(rate, burst float64, maxKeys int, now func() time.Time) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{
		rate:    rate,
		burst:   burst,
		maxKeys: maxKeys,
		now:     now,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// allow spends one token from key's bucket, reporting whether one was
// available.
func (l *limiter) allow(key string) bool {
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.entries[key]
	if !ok {
		b := &bucket{key: key, tokens: l.burst, last: now}
		el = l.order.PushFront(b)
		l.entries[key] = el
		for len(l.entries) > l.maxKeys {
			oldest := l.order.Back()
			l.order.Remove(oldest)
			delete(l.entries, oldest.Value.(*bucket).key)
		}
	} else {
		l.order.MoveToFront(el)
	}
	b := el.Value.(*bucket)
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// len reports the number of tracked clients (test hook).
func (l *limiter) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// ClientKey derives the rate-limit key for a request: the client IP from
// RemoteAddr (or the first X-Forwarded-For hop when the controller trusts
// the header), masked to the configured prefix so one CGNAT pool shares one
// budget. Unparseable addresses collapse to a single shared key — better
// one throttled bucket than an unbounded keyspace.
func (c *Controller) ClientKey(r *http.Request) string {
	raw := ""
	if c.cfg.TrustForwarded {
		if fwd := r.Header.Get("X-Forwarded-For"); fwd != "" {
			raw = strings.TrimSpace(strings.SplitN(fwd, ",", 2)[0])
		}
	}
	if raw == "" {
		raw = r.RemoteAddr
		if host, _, err := net.SplitHostPort(raw); err == nil {
			raw = host
		}
	}
	addr, err := iputil.ParseAddr(raw)
	if err != nil {
		return "invalid"
	}
	if bits := c.cfg.ClientPrefixBits; bits < 32 {
		addr &= iputil.Addr(^uint32(0) << (32 - bits))
	}
	return addr.String()
}
