package shed

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/obs"
)

// clock is a manually advanced time source so CoDel and mode-machine tests
// are deterministic.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1_700_000_000, 0)} }

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestController(cfg Config, ck *clock) *Controller {
	c := New(cfg, nil)
	if ck != nil {
		c.now = ck.now
	}
	return c
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.CheapConcurrency != 256 || cfg.HeavyConcurrency != 32 || cfg.QueueLimit != 128 {
		t.Errorf("concurrency defaults wrong: %+v", cfg)
	}
	if cfg.Target != 5*time.Millisecond || cfg.Interval != 100*time.Millisecond ||
		cfg.MaxWait != 50*time.Millisecond {
		t.Errorf("timing defaults wrong: %+v", cfg)
	}
	if cfg.ClientPrefixBits != 32 || cfg.MaxClients != 4096 {
		t.Errorf("client defaults wrong: %+v", cfg)
	}
	if cfg.DegradeAfter != time.Second || cfg.RecoverAfter != 2*time.Second ||
		cfg.RetryAfter != time.Second || cfg.DegradedMaxBatchIPs != 256 {
		t.Errorf("mode defaults wrong: %+v", cfg)
	}
	if cfg.Burst != 0 {
		t.Errorf("burst should stay 0 with rate limiting off, got %d", cfg.Burst)
	}
	with := Config{RatePerClient: 10}.withDefaults()
	if with.Burst != 20 {
		t.Errorf("default burst = %d, want 2x rate = 20", with.Burst)
	}
}

func TestAcquireFastPath(t *testing.T) {
	c := newTestController(Config{CheapConcurrency: 2}, nil)
	rel1, out1 := c.Acquire(context.Background(), ClassCheap)
	rel2, out2 := c.Acquire(context.Background(), ClassCheap)
	if out1 != Admitted || out2 != Admitted || rel1 == nil || rel2 == nil {
		t.Fatalf("free slots not admitted: %v %v", out1, out2)
	}
	rel1()
	rel2()
	if got := c.admitted.Load(); got != 2 {
		t.Errorf("admitted total = %d, want 2", got)
	}
	if got := c.queued.Load(); got != 0 {
		t.Errorf("fast-path admissions counted as queued: %d", got)
	}
}

func TestAcquireClassesAreIndependent(t *testing.T) {
	c := newTestController(Config{CheapConcurrency: 1, HeavyConcurrency: 1, MaxWait: 5 * time.Millisecond}, nil)
	relHeavy, out := c.Acquire(context.Background(), ClassHeavy)
	if out != Admitted {
		t.Fatalf("heavy acquire: %v", out)
	}
	defer relHeavy()
	// Heavy is saturated; cheap must be unaffected.
	relCheap, out := c.Acquire(context.Background(), ClassCheap)
	if out != Admitted {
		t.Fatalf("cheap acquire while heavy saturated: %v", out)
	}
	relCheap()
}

func TestAcquireQueueFull(t *testing.T) {
	c := newTestController(Config{HeavyConcurrency: 1, QueueLimit: 1, MaxWait: 200 * time.Millisecond}, nil)
	rel, out := c.Acquire(context.Background(), ClassHeavy)
	if out != Admitted {
		t.Fatalf("first acquire: %v", out)
	}
	defer rel()

	// Park one waiter in the queue, then overflow it.
	parked := make(chan Outcome, 1)
	go func() {
		_, o := c.Acquire(context.Background(), ClassHeavy)
		parked <- o
	}()
	waitCond(t, func() bool { return c.gates[ClassHeavy].waiters.Load() == 1 })

	_, out = c.Acquire(context.Background(), ClassHeavy)
	if out != ShedQueueFull {
		t.Fatalf("overflow arrival got %v, want ShedQueueFull", out)
	}
	if o := <-parked; o != ShedWaitTimeout {
		t.Fatalf("parked waiter got %v, want ShedWaitTimeout (slot never freed)", o)
	}
	if c.shed.Load() != 2 {
		t.Errorf("shed total = %d, want 2", c.shed.Load())
	}
}

func TestAcquireWaitTimeout(t *testing.T) {
	c := newTestController(Config{HeavyConcurrency: 1, QueueLimit: 4, MaxWait: 10 * time.Millisecond}, nil)
	rel, out := c.Acquire(context.Background(), ClassHeavy)
	if out != Admitted {
		t.Fatalf("first acquire: %v", out)
	}
	defer rel()
	start := time.Now()
	release, out := c.Acquire(context.Background(), ClassHeavy)
	if out != ShedWaitTimeout || release != nil {
		t.Fatalf("saturated acquire got %v, want ShedWaitTimeout with nil release", out)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("wait timeout took %v; bound not enforced", waited)
	}
}

func TestAcquireContextCancel(t *testing.T) {
	c := newTestController(Config{HeavyConcurrency: 1, QueueLimit: 4, MaxWait: 10 * time.Second}, nil)
	rel, _ := c.Acquire(context.Background(), ClassHeavy)
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Outcome, 1)
	go func() {
		_, o := c.Acquire(ctx, ClassHeavy)
		done <- o
	}()
	waitCond(t, func() bool { return c.gates[ClassHeavy].waiters.Load() == 1 })
	cancel()
	if o := <-done; o != ShedWaitTimeout {
		t.Fatalf("cancelled waiter got %v, want ShedWaitTimeout", o)
	}
}

func TestQueuedAdmissionReleasesAndCounts(t *testing.T) {
	c := newTestController(Config{HeavyConcurrency: 1, QueueLimit: 4, MaxWait: 2 * time.Second}, nil)
	rel, _ := c.Acquire(context.Background(), ClassHeavy)
	done := make(chan Outcome, 1)
	go func() {
		rel2, o := c.Acquire(context.Background(), ClassHeavy)
		if rel2 != nil {
			rel2()
		}
		done <- o
	}()
	waitCond(t, func() bool { return c.gates[ClassHeavy].waiters.Load() == 1 })
	rel() // free the slot; the waiter should be admitted
	if o := <-done; o != Admitted {
		t.Fatalf("waiter got %v after release, want Admitted", o)
	}
	if c.queued.Load() != 1 {
		t.Errorf("queued total = %d, want 1", c.queued.Load())
	}
}

// TestCoDelDropLatch drives the gate's sojourn controller directly: sojourn
// above target for a full interval latches dropping; a zero-sojourn (fast
// path) admission clears it.
func TestCoDelDropLatch(t *testing.T) {
	ck := newClock()
	g := newGate(1, 8, 5*time.Millisecond, 100*time.Millisecond, 50*time.Millisecond)

	g.noteSojourn(10*time.Millisecond, ck.now)
	if g.dropping.Load() {
		t.Fatal("one over-target sojourn latched dropping; needs a full interval")
	}
	ck.advance(150 * time.Millisecond)
	g.noteSojourn(10*time.Millisecond, ck.now)
	if !g.dropping.Load() {
		t.Fatal("sojourn above target across a full interval did not latch dropping")
	}
	if !g.overloadedNow(ck.now()) {
		t.Fatal("dropping gate does not report overloaded")
	}

	// A fast-path (zero sojourn) admission proves the standing queue is
	// gone and must clear the latch; the gate still reports pressure until
	// a full quiet interval passes (recovery hysteresis).
	g.noteSojourn(0, ck.now)
	if g.dropping.Load() {
		t.Fatal("zero sojourn did not clear the dropping latch")
	}
	if !g.overloadedNow(ck.now()) {
		t.Fatal("pressure seen within the last interval should still report overload")
	}
	ck.advance(101 * time.Millisecond)
	if g.overloadedNow(ck.now()) {
		t.Fatal("a quiet interval did not clear the pressure signal")
	}
}

// TestCoDelDropShedsNewest pins the drop-state admission behaviour: while
// dropping, arrivals that miss the fast path are shed without queueing.
func TestCoDelDropShedsNewest(t *testing.T) {
	ck := newClock()
	c := newTestController(Config{
		HeavyConcurrency: 1, QueueLimit: 8,
		Target: time.Millisecond, Interval: 10 * time.Millisecond,
		MaxWait: 50 * time.Millisecond,
	}, ck)
	g := c.gates[ClassHeavy]
	rel, out := c.Acquire(context.Background(), ClassHeavy)
	if out != Admitted {
		t.Fatalf("first acquire: %v", out)
	}
	defer rel()

	g.noteSojourn(5*time.Millisecond, ck.now)
	ck.advance(20 * time.Millisecond)
	g.noteSojourn(5*time.Millisecond, ck.now)
	if !g.dropping.Load() {
		t.Fatal("gate not dropping after sustained over-target sojourn")
	}

	_, out = c.Acquire(context.Background(), ClassHeavy)
	if out != ShedOverloaded {
		t.Fatalf("dropping gate admitted/queued a new arrival: %v", out)
	}
}

// TestDropLatchSelfClearsWhenIdle pins the flood-is-over path: a dropping
// gate with no pressure for two intervals stops reporting overload, so the
// mode machine can recover even with zero traffic.
func TestDropLatchSelfClearsWhenIdle(t *testing.T) {
	ck := newClock()
	g := newGate(1, 8, time.Millisecond, 10*time.Millisecond, 50*time.Millisecond)
	g.noteSojourn(5*time.Millisecond, ck.now)
	ck.advance(20 * time.Millisecond)
	g.noteSojourn(5*time.Millisecond, ck.now)
	if !g.overloadedNow(ck.now()) {
		t.Fatal("setup: gate should be dropping")
	}
	ck.advance(21 * time.Millisecond) // > 2x interval with no pressure
	if g.overloadedNow(ck.now()) {
		t.Fatal("idle dropping gate did not self-clear")
	}
	if g.dropping.Load() {
		t.Fatal("self-clear did not reset the latch")
	}
}

// TestModeMachine walks normal -> degraded -> normal through sustained
// overload and calm, on a manual clock.
func TestModeMachine(t *testing.T) {
	ck := newClock()
	c := newTestController(Config{
		Target: time.Millisecond, Interval: 10 * time.Millisecond,
		DegradeAfter: 100 * time.Millisecond, RecoverAfter: 200 * time.Millisecond,
	}, ck)
	g := c.gates[ClassHeavy]

	latch := func() {
		g.noteSojourn(5*time.Millisecond, ck.now)
		ck.advance(15 * time.Millisecond)
		g.noteSojourn(5*time.Millisecond, ck.now)
	}
	latch()
	if c.Mode() != ModeNormal {
		t.Fatal("overload degraded the mode before DegradeAfter elapsed")
	}
	// Keep the pressure on past DegradeAfter (re-note sojourn so the idle
	// self-clear cannot fire between evaluations).
	for i := 0; i < 12; i++ {
		ck.advance(10 * time.Millisecond)
		g.noteSojourn(5*time.Millisecond, ck.now)
		c.Mode()
	}
	if c.Mode() != ModeDegraded {
		t.Fatal("sustained overload did not degrade the mode")
	}
	if !c.Degraded() {
		t.Fatal("Degraded() disagrees with Mode()")
	}

	// Calm: fast-path sojourn clears the latch; once a quiet interval has
	// passed the calm window starts, and after RecoverAfter of calm the
	// mode returns to normal.
	g.noteSojourn(0, ck.now)
	if c.Mode() != ModeDegraded {
		t.Fatal("mode recovered instantly; RecoverAfter not honoured")
	}
	ck.advance(50 * time.Millisecond) // > interval: pressure signal expires
	if c.Mode() != ModeDegraded {
		t.Fatal("mode recovered before RecoverAfter of calm elapsed")
	}
	ck.advance(250 * time.Millisecond) // > RecoverAfter of observed calm
	if c.Mode() != ModeNormal {
		t.Fatal("calm past RecoverAfter did not recover the mode")
	}
	if got := c.transitions.Load(); got != 2 {
		t.Errorf("mode transitions = %d, want 2", got)
	}
}

func TestReloadFailureDegradesImmediately(t *testing.T) {
	ck := newClock()
	c := newTestController(Config{DegradeAfter: time.Hour, RecoverAfter: 50 * time.Millisecond}, ck)
	if c.Mode() != ModeNormal {
		t.Fatal("fresh controller not normal")
	}
	c.SetReloadFailed(true)
	if c.Mode() != ModeDegraded {
		t.Fatal("failed reload did not degrade immediately (DegradeAfter must not apply)")
	}
	st := c.Status()
	if !st.ReloadFailed || st.Mode != "degraded" {
		t.Fatalf("status does not reflect failed reload: %+v", st)
	}

	// Clearing the failure starts the calm window; recovery follows it.
	c.SetReloadFailed(false)
	if c.Mode() != ModeNormal {
		ck.advance(60 * time.Millisecond)
	}
	if c.Mode() != ModeNormal {
		t.Fatal("cleared reload failure did not recover after RecoverAfter")
	}
}

func TestStatusTotals(t *testing.T) {
	c := newTestController(Config{CheapConcurrency: 1, HeavyConcurrency: 1,
		QueueLimit: 1, MaxWait: 5 * time.Millisecond, RatePerClient: 1, Burst: 1}, nil)
	rel, _ := c.Acquire(context.Background(), ClassCheap)
	if _, out := c.Acquire(context.Background(), ClassCheap); out != ShedWaitTimeout {
		t.Fatalf("saturated cheap acquire: %v", out)
	}
	rel()
	if !c.AllowClient("198.51.100.7") {
		t.Fatal("first request for a client must be allowed")
	}
	if c.AllowClient("198.51.100.7") {
		t.Fatal("burst=1 client allowed twice instantly")
	}
	st := c.Status()
	if !st.Enabled || st.Admitted != 1 || st.Shed != 1 || st.RateLimited != 1 {
		t.Fatalf("status totals wrong: %+v", st)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	if got := newTestController(Config{}, nil).RetryAfterSeconds(); got != 1 {
		t.Errorf("default RetryAfterSeconds = %d, want 1", got)
	}
	if got := newTestController(Config{RetryAfter: 2500 * time.Millisecond}, nil).RetryAfterSeconds(); got != 3 {
		t.Errorf("2.5s RetryAfterSeconds = %d, want ceil to 3", got)
	}
	if got := newTestController(Config{RetryAfter: time.Millisecond}, nil).RetryAfterSeconds(); got != 1 {
		t.Errorf("1ms RetryAfterSeconds = %d, want floor of 1", got)
	}
}

// TestMetricsNamespace pins that every shed metric lives in the wall
// namespace: live-traffic admission is not part of the deterministic study
// surface, so nothing here may leak into golden snapshots.
func TestMetricsNamespace(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{CheapConcurrency: 1, RatePerClient: 1}, reg)
	c.now = newClock().now
	rel, _ := c.Acquire(context.Background(), ClassCheap)
	rel()
	c.AllowClient("198.51.100.7")
	if det := reg.DeterministicSnapshot(); len(det) != 0 {
		t.Fatalf("shed metrics leaked into the deterministic snapshot: %+v", det)
	}
	full := reg.Snapshot(true)
	found := map[string]bool{}
	for _, m := range full {
		for _, want := range []string{"shed_requests_total", "shed_queue_seconds",
			"shed_rate_limited_total", "shed_degraded", "shed_mode_transitions_total"} {
			if strings.Contains(m.Name, want) {
				found[want] = true
			}
		}
		if !strings.HasPrefix(m.Name, obs.WallPrefix) {
			t.Errorf("shed metric %q outside the wall namespace", m.Name)
		}
	}
	for _, want := range []string{"shed_requests_total", "shed_queue_seconds",
		"shed_rate_limited_total", "shed_degraded", "shed_mode_transitions_total"} {
		if !found[want] {
			t.Errorf("metric family %q not registered", want)
		}
	}
}

// TestAcquireRace hammers one tiny gate from many goroutines; the invariant
// is conservation: every admission releases, and admissions + sheds equals
// arrivals. Run under -race this also proves the gate is data-race free.
func TestAcquireRace(t *testing.T) {
	c := newTestController(Config{HeavyConcurrency: 2, QueueLimit: 4,
		Target: time.Microsecond, Interval: time.Millisecond, MaxWait: 2 * time.Millisecond}, nil)
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rel, out := c.Acquire(context.Background(), ClassHeavy)
				if out == Admitted {
					rel()
				}
			}
		}()
	}
	wg.Wait()
	if got := c.admitted.Load() + c.shed.Load(); got != workers*per {
		t.Fatalf("admitted+shed = %d, want %d arrivals", got, workers*per)
	}
	// All slots must be free again.
	if n := len(c.gates[ClassHeavy].slots); n != 0 {
		t.Fatalf("%d slots leaked", n)
	}
}

func TestStringers(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{ClassCheap.String(), "cheap"},
		{ClassHeavy.String(), "heavy"},
		{Class(99).String(), "unknown"},
		{Admitted.String(), "admitted"},
		{ShedQueueFull.String(), "queue_full"},
		{ShedOverloaded.String(), "overloaded"},
		{ShedWaitTimeout.String(), "wait_timeout"},
		{Outcome(99).String(), "unknown"},
		{ModeNormal.String(), "normal"},
		{ModeDegraded.String(), "degraded"},
	} {
		if tc.got != tc.want {
			t.Errorf("stringer = %q, want %q", tc.got, tc.want)
		}
	}
}

// waitCond polls until cond holds or the test deadline nears.
func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

func TestControllerAccessors(t *testing.T) {
	c := New(Config{DegradedMaxBatchIPs: 64, RetryAfter: 1500 * time.Millisecond}, nil)
	if got := c.DegradedMaxBatch(); got != 64 {
		t.Errorf("DegradedMaxBatch = %d, want 64", got)
	}
	// Fractional delays round up: the header is whole seconds, and rounding
	// down would advertise a retry sooner than the configured backoff.
	if got := c.RetryAfterSeconds(); got != 2 {
		t.Errorf("RetryAfterSeconds for 1.5s = %d, want 2", got)
	}
	zero := New(Config{}, nil)
	if got := zero.RetryAfterSeconds(); got != 1 {
		t.Errorf("RetryAfterSeconds floor = %d, want 1", got)
	}
}

func TestLimiterBurstFloor(t *testing.T) {
	// A sub-1 burst would deny every first request; the limiter floors it.
	l := newLimiter(10, 0, 4, time.Now)
	if !l.allow("client") {
		t.Error("first request with a zero burst config was denied")
	}
}
