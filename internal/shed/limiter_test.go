package shed

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestLimiterBurstAndRefill(t *testing.T) {
	ck := newClock()
	l := newLimiter(10, 2, 16, ck.now)
	if !l.allow("a") || !l.allow("a") {
		t.Fatal("burst of 2 not granted")
	}
	if l.allow("a") {
		t.Fatal("third instant request allowed past burst")
	}
	ck.advance(100 * time.Millisecond) // refills one token at 10/s
	if !l.allow("a") {
		t.Fatal("refilled token not granted")
	}
	if l.allow("a") {
		t.Fatal("only one token should have refilled")
	}
}

func TestLimiterTokensCapAtBurst(t *testing.T) {
	ck := newClock()
	l := newLimiter(10, 2, 16, ck.now)
	ck.advance(time.Hour) // a long idle must not bank unbounded tokens
	if !l.allow("a") || !l.allow("a") {
		t.Fatal("burst not available after idle")
	}
	if l.allow("a") {
		t.Fatal("idle banked more than burst tokens")
	}
}

func TestLimiterKeysAreIndependent(t *testing.T) {
	ck := newClock()
	l := newLimiter(1, 1, 16, ck.now)
	if !l.allow("a") {
		t.Fatal("first a denied")
	}
	if !l.allow("b") {
		t.Fatal("a's spend drained b's bucket")
	}
	if l.allow("a") || l.allow("b") {
		t.Fatal("burst=1 keys allowed twice")
	}
}

func TestLimiterLRUEviction(t *testing.T) {
	ck := newClock()
	l := newLimiter(1, 1, 3, ck.now)
	for i := 0; i < 5; i++ {
		l.allow(fmt.Sprintf("k%d", i))
	}
	if got := l.len(); got != 3 {
		t.Fatalf("limiter tracks %d keys, want LRU cap 3", got)
	}
	// k0 was evicted: it returns with a fresh (full) bucket.
	if !l.allow("k0") {
		t.Fatal("evicted key did not restart from a full bucket")
	}
	// k4 is still tracked and spent.
	if l.allow("k4") {
		t.Fatal("tracked key's spent bucket was forgotten")
	}
}

func TestLimiterLRUOrderTracksUse(t *testing.T) {
	ck := newClock()
	l := newLimiter(100, 100, 2, ck.now)
	l.allow("a")
	l.allow("b")
	l.allow("a") // a is now most recent; c must evict b
	l.allow("c")
	l.mu.Lock()
	_, hasA := l.entries["a"]
	_, hasB := l.entries["b"]
	l.mu.Unlock()
	if !hasA || hasB {
		t.Fatalf("LRU evicted wrong key: hasA=%v hasB=%v", hasA, hasB)
	}
}

func req(remote, fwd string) *http.Request {
	r := httptest.NewRequest(http.MethodGet, "/v1/check?ip=1.2.3.4", nil)
	r.RemoteAddr = remote
	if fwd != "" {
		r.Header.Set("X-Forwarded-For", fwd)
	}
	return r
}

func TestClientKeyRemoteAddr(t *testing.T) {
	c := newTestController(Config{}, nil)
	if got := c.ClientKey(req("203.0.113.7:49152", "")); got != "203.0.113.7" {
		t.Errorf("ClientKey = %q, want host without port", got)
	}
	if got := c.ClientKey(req("203.0.113.7", "")); got != "203.0.113.7" {
		t.Errorf("ClientKey without port = %q", got)
	}
}

func TestClientKeyIgnoresForwardedByDefault(t *testing.T) {
	c := newTestController(Config{}, nil)
	if got := c.ClientKey(req("203.0.113.7:1", "198.51.100.9")); got != "203.0.113.7" {
		t.Errorf("untrusted X-Forwarded-For used as key: %q", got)
	}
}

func TestClientKeyTrustForwarded(t *testing.T) {
	c := newTestController(Config{TrustForwarded: true}, nil)
	if got := c.ClientKey(req("127.0.0.1:1", "198.51.100.9")); got != "198.51.100.9" {
		t.Errorf("trusted X-Forwarded-For key = %q", got)
	}
	// First hop wins in a multi-hop chain.
	if got := c.ClientKey(req("127.0.0.1:1", "198.51.100.9, 10.0.0.1")); got != "198.51.100.9" {
		t.Errorf("multi-hop X-Forwarded-For key = %q", got)
	}
	// Absent header falls back to RemoteAddr.
	if got := c.ClientKey(req("203.0.113.7:1", "")); got != "203.0.113.7" {
		t.Errorf("fallback key = %q", got)
	}
}

func TestClientKeyPrefixAggregation(t *testing.T) {
	c := newTestController(Config{ClientPrefixBits: 24}, nil)
	a := c.ClientKey(req("100.64.9.9:1", ""))
	b := c.ClientKey(req("100.64.9.200:1", ""))
	if a != b || a != "100.64.9.0" {
		t.Errorf("same /24 split into keys %q and %q, want 100.64.9.0", a, b)
	}
	other := c.ClientKey(req("100.64.10.9:1", ""))
	if other == a {
		t.Errorf("different /24 collapsed into %q", other)
	}
}

func TestClientKeyInvalidCollapses(t *testing.T) {
	c := newTestController(Config{}, nil)
	if got := c.ClientKey(req("not-an-ip", "")); got != "invalid" {
		t.Errorf("unparseable RemoteAddr key = %q, want the shared invalid bucket", got)
	}
}

func TestAllowClientDisabled(t *testing.T) {
	c := newTestController(Config{}, nil) // RatePerClient 0 = off
	for i := 0; i < 100; i++ {
		if !c.AllowClient("203.0.113.7") {
			t.Fatal("disabled limiter rejected a client")
		}
	}
	if c.rateLimited.Load() != 0 {
		t.Fatal("disabled limiter counted rejections")
	}
}
