// Package icmpsurvey reimplements the comparison baseline of Cai &
// Heidemann, "Understanding block-level address usage in the visible
// internet" (SIGCOMM 2010), which the paper evaluates against in Fig 6: an
// ICMP ECHO survey of sampled /24 blocks that derives per-address
// availability (A), volatility (V) and median up-time (U) metrics, then
// classifies blocks as dynamically allocated with an ad-hoc threshold rule.
//
// The survey operates against a Responder — a function answering "would
// this address reply to a ping at this instant?" — so it can run over the
// synthetic world without flooding the event-driven network simulator. The
// baseline's documented weaknesses are modelled by the world, not hidden:
// middleboxes answer for dead hosts (inflating A) and some networks filter
// ICMP entirely (deflating coverage).
package icmpsurvey

import (
	"math/rand"
	"sort"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/obs"
	"github.com/reuseblock/reuseblock/internal/parallel"
)

// Responder answers whether addr would reply to an ICMP ECHO at time t.
type Responder interface {
	Responds(addr iputil.Addr, at time.Time) bool
}

// ResponderFunc adapts a function to the Responder interface.
type ResponderFunc func(addr iputil.Addr, at time.Time) bool

// Responds implements Responder.
func (f ResponderFunc) Responds(addr iputil.Addr, at time.Time) bool { return f(addr, at) }

// Config tunes the survey.
type Config struct {
	// Blocks are the sampled /24 prefixes (Cai et al. sample 1% of the
	// responsive address space).
	Blocks []iputil.Prefix
	// Start and Duration bound the survey window.
	Start    time.Time
	Duration time.Duration
	// Interval is the probe period per address (the original survey
	// probes each address every 11 minutes; coarser is fine at scale).
	Interval time.Duration

	// Classification thresholds (zero values pick the defaults used in
	// our reproduction, tuned to mimic the published behaviour).

	// MaxMedianUptime: a block whose responsive addresses have a median
	// up-time at or below this is a dynamic candidate. Default 24h.
	MaxMedianUptime time.Duration
	// MinResponsive is the minimum number of ever-responsive addresses a
	// block needs before it is classified at all. Default 8.
	MinResponsive int
	// MaxAvailability: dynamic candidates must also have mean
	// availability at or below this (stable servers have A ≈ 1).
	// Default 0.95.
	MaxAvailability float64

	// ProbeLoss is the per-transmission probability that an ECHO or its
	// reply is lost in transit, independent of whether the address would
	// answer. Zero (the default) keeps the survey loss-free and consumes
	// no randomness, so existing outputs are unchanged.
	ProbeLoss float64
	// Retransmits is how many extra transmissions a silent address gets
	// per round before it is scored unresponsive; a real prober retries
	// whether the silence was loss or a genuinely dead host. Only
	// meaningful with ProbeLoss > 0.
	Retransmits int
	// Seed drives probe-loss randomness. Each block derives its own
	// stream from Seed and its base address, so the survey stays
	// bit-for-bit identical for any worker count.
	Seed int64

	// Workers bounds how many blocks are surveyed concurrently. Blocks
	// are independent — the Responder must answer concurrent calls, which
	// holds for the pure world responder — and per-block results merge in
	// block order, so the output is identical for any value. <= 0 means
	// GOMAXPROCS; 1 surveys sequentially.
	Workers int

	// Obs, when non-nil, receives the survey's counters (probes,
	// retransmissions, blocks surveyed/dynamic) and the per-block
	// responsive-address histogram after the merge. Everything recorded is
	// a deterministic function of the config, so snapshots are
	// worker-invariant.
	Obs *obs.Registry
}

func (c *Config) applyDefaults() {
	if c.Interval <= 0 {
		c.Interval = time.Hour
	}
	if c.MaxMedianUptime <= 0 {
		c.MaxMedianUptime = 24 * time.Hour
	}
	if c.MinResponsive <= 0 {
		c.MinResponsive = 8
	}
	if c.MaxAvailability <= 0 {
		c.MaxAvailability = 0.95
	}
}

// Metrics are the per-address A/V/U statistics of Cai et al.
type Metrics struct {
	Probes  int
	Replies int
	// Transitions counts up->down and down->up flips.
	Transitions int
	// MedianUptime is the median length of consecutive responsive runs.
	MedianUptime time.Duration
	// A is availability: Replies/Probes.
	A float64
	// V is volatility: Transitions normalised by the maximum possible.
	V float64
}

// BlockSummary aggregates one /24 block.
type BlockSummary struct {
	Block      iputil.Prefix
	Responsive int // addresses that replied at least once
	// MeanA averages availability over responsive addresses.
	MeanA float64
	// MedianUptime is the median of responsive addresses' median uptimes.
	MedianUptime time.Duration
	Dynamic      bool
}

// Result is the survey output.
type Result struct {
	PerAddr map[iputil.Addr]*Metrics
	Blocks  []BlockSummary
	// DynamicBlocks are the blocks classified as dynamically allocated —
	// the granularity at which this baseline can speak.
	DynamicBlocks *iputil.PrefixSet
	// ProbesSent counts ECHO requests issued.
	ProbesSent int64
	// Retransmissions counts the extra transmissions spent on silent
	// addresses (always zero when ProbeLoss is zero).
	Retransmissions int64
}

// blockResult is one block's complete survey output, self-contained so
// blocks can be surveyed concurrently and merged in block order.
type blockResult struct {
	summary         BlockSummary
	perAddr         map[iputil.Addr]*Metrics
	probesSent      int64
	retransmissions int64
}

// Run executes the survey. Blocks are sharded across cfg.Workers; each
// block's probes and metrics depend only on (block, cfg, Responder), and
// per-block outputs merge in block order, so the result does not depend on
// the worker count.
func Run(r Responder, cfg Config) *Result {
	cfg.applyDefaults()
	res := &Result{
		PerAddr:       make(map[iputil.Addr]*Metrics),
		DynamicBlocks: iputil.NewPrefixSet(),
	}
	steps := int(cfg.Duration / cfg.Interval)
	if steps < 1 {
		steps = 1
	}
	parts := parallel.Map(cfg.Workers, len(cfg.Blocks), func(i int) blockResult {
		return surveyBlock(r, cfg.Blocks[i], cfg, steps)
	})
	for _, part := range parts {
		res.Blocks = append(res.Blocks, part.summary)
		if part.summary.Dynamic {
			res.DynamicBlocks.Add(part.summary.Block)
		}
		for a, m := range part.perAddr {
			res.PerAddr[a] = m
		}
		res.ProbesSent += part.probesSent
		res.Retransmissions += part.retransmissions
	}
	sort.Slice(res.Blocks, func(i, j int) bool {
		return res.Blocks[i].Block.Base() < res.Blocks[j].Block.Base()
	})
	recordObs(cfg.Obs, res)
	return res
}

// recordObs pushes the merged survey outcome into the registry. Recording
// happens after the block merge — never inside the parallel fan-out — so the
// values are the same deterministic totals the Result itself carries.
func recordObs(reg *obs.Registry, res *Result) {
	if reg == nil {
		return
	}
	reg.Counter("icmp_probes_sent_total").Add(res.ProbesSent)
	reg.Counter("icmp_retransmissions_total").Add(res.Retransmissions)
	reg.Counter("icmp_blocks_surveyed_total").Add(int64(len(res.Blocks)))
	reg.Counter("icmp_blocks_dynamic_total").Add(int64(res.DynamicBlocks.Len()))
	h := reg.Histogram("icmp_block_responsive_addrs", []float64{0, 8, 16, 32, 64, 128})
	for _, b := range res.Blocks {
		h.Observe(float64(b.Responsive))
	}
}

func surveyBlock(r Responder, block iputil.Prefix, cfg Config, steps int) blockResult {
	type state struct {
		m      *Metrics
		up     bool
		runLen int
		runs   []int
	}
	out := blockResult{perAddr: make(map[iputil.Addr]*Metrics)}
	// Probe loss gets a per-block RNG stream so block results stay
	// self-contained and identical for any worker count.
	var rng *rand.Rand
	if cfg.ProbeLoss > 0 {
		rng = rand.New(rand.NewSource(cfg.Seed ^ int64(uint32(block.Base()))))
	}
	states := make([]state, block.Size())
	for s := 0; s < steps; s++ {
		at := cfg.Start.Add(time.Duration(s) * cfg.Interval)
		for i := 0; i < block.Size(); i++ {
			addr := block.Nth(i)
			replies := r.Responds(addr, at)
			out.probesSent++
			if rng != nil {
				if replies {
					// The first transmission may be lost; bounded
					// retransmits recover most rounds.
					got := rng.Float64() >= cfg.ProbeLoss
					for k := 0; k < cfg.Retransmits && !got; k++ {
						out.probesSent++
						out.retransmissions++
						got = rng.Float64() >= cfg.ProbeLoss
					}
					replies = got
				} else {
					// A silent address is retried too — the prober
					// cannot tell loss from death.
					out.probesSent += int64(cfg.Retransmits)
					out.retransmissions += int64(cfg.Retransmits)
				}
			}
			st := &states[i]
			if st.m == nil {
				st.m = &Metrics{}
			}
			st.m.Probes++
			if replies {
				st.m.Replies++
				if !st.up && s > 0 {
					st.m.Transitions++
				}
				st.up = true
				st.runLen++
			} else {
				if st.up {
					st.m.Transitions++
					st.runs = append(st.runs, st.runLen)
					st.runLen = 0
				}
				st.up = false
			}
		}
	}
	summary := BlockSummary{Block: block}
	var availabilities []float64
	var medUptimes []time.Duration
	for i := range states {
		st := &states[i]
		if st.m == nil || st.m.Replies == 0 {
			continue
		}
		if st.runLen > 0 {
			st.runs = append(st.runs, st.runLen)
		}
		st.m.A = float64(st.m.Replies) / float64(st.m.Probes)
		if st.m.Probes > 1 {
			st.m.V = float64(st.m.Transitions) / float64(st.m.Probes-1)
		}
		st.m.MedianUptime = medianRun(st.runs, cfg.Interval)
		out.perAddr[block.Nth(i)] = st.m
		summary.Responsive++
		availabilities = append(availabilities, st.m.A)
		medUptimes = append(medUptimes, st.m.MedianUptime)
	}
	if summary.Responsive > 0 {
		sum := 0.0
		for _, a := range availabilities {
			sum += a
		}
		summary.MeanA = sum / float64(summary.Responsive)
		sort.Slice(medUptimes, func(i, j int) bool { return medUptimes[i] < medUptimes[j] })
		summary.MedianUptime = medUptimes[len(medUptimes)/2]
	}
	summary.Dynamic = summary.Responsive >= cfg.MinResponsive &&
		summary.MedianUptime <= cfg.MaxMedianUptime &&
		summary.MeanA <= cfg.MaxAvailability
	out.summary = summary
	return out
}

func medianRun(runs []int, interval time.Duration) time.Duration {
	if len(runs) == 0 {
		return 0
	}
	sorted := make([]int, len(runs))
	copy(sorted, runs)
	sort.Ints(sorted)
	return time.Duration(sorted[len(sorted)/2]) * interval
}
