package icmpsurvey

import (
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// TestProbeLossRetransmits checks that probe loss with bounded retransmits
// degrades the survey gracefully: retransmissions are counted, loss-free
// behaviour is unchanged, and classification survives moderate loss.
func TestProbeLossRetransmits(t *testing.T) {
	w := &leaseWorld{
		dynamic: iputil.MustParsePrefix("10.1.0.0/24"),
		static:  iputil.MustParsePrefix("10.2.0.0/24"),
		period:  6 * time.Hour,
		onFrac:  0.5,
	}
	base := Config{
		Blocks:   []iputil.Prefix{w.dynamic, w.static},
		Start:    start,
		Duration: 14 * 24 * time.Hour,
		Interval: time.Hour,
	}
	clean := Run(w, base)

	lossy := base
	lossy.ProbeLoss = 0.15
	lossy.Retransmits = 2
	lossy.Seed = 42
	faulty := Run(w, lossy)

	if clean.Retransmissions != 0 {
		t.Fatalf("loss-free survey retransmitted %d times", clean.Retransmissions)
	}
	if faulty.Retransmissions == 0 {
		t.Fatal("lossy survey never retransmitted")
	}
	if faulty.ProbesSent <= clean.ProbesSent {
		t.Fatalf("retransmits must cost probes: %d vs %d", faulty.ProbesSent, clean.ProbesSent)
	}
	// With two retransmits the per-round miss probability is 0.15^3; the
	// classifier's verdicts must survive.
	if !faulty.DynamicBlocks.Contains(w.dynamic) {
		t.Error("dynamic block lost under moderate probe loss")
	}
	if faulty.DynamicBlocks.Contains(w.static) {
		t.Error("static block misclassified under probe loss")
	}
}

// TestProbeLossWorkerInvariance: the per-block RNG streams make the lossy
// survey identical for any worker count.
func TestProbeLossWorkerInvariance(t *testing.T) {
	w := &leaseWorld{
		dynamic: iputil.MustParsePrefix("10.1.0.0/24"),
		static:  iputil.MustParsePrefix("10.2.0.0/24"),
		period:  6 * time.Hour,
		onFrac:  0.5,
	}
	run := func(workers int) *Result {
		return Run(w, Config{
			Blocks:      []iputil.Prefix{w.dynamic, w.static},
			Start:       start,
			Duration:    7 * 24 * time.Hour,
			Interval:    time.Hour,
			ProbeLoss:   0.2,
			Retransmits: 1,
			Seed:        7,
			Workers:     workers,
		})
	}
	seq, par := run(1), run(4)
	if seq.ProbesSent != par.ProbesSent || seq.Retransmissions != par.Retransmissions {
		t.Fatalf("probe accounting diverged: %d/%d vs %d/%d",
			seq.ProbesSent, seq.Retransmissions, par.ProbesSent, par.Retransmissions)
	}
	if len(seq.Blocks) != len(par.Blocks) {
		t.Fatalf("block counts diverged")
	}
	for i := range seq.Blocks {
		if seq.Blocks[i] != par.Blocks[i] {
			t.Fatalf("block %d diverged: %+v vs %+v", i, seq.Blocks[i], par.Blocks[i])
		}
	}
	for a, m := range seq.PerAddr {
		pm := par.PerAddr[a]
		if pm == nil || *pm != *m {
			t.Fatalf("per-addr metrics diverged at %v", a)
		}
	}
}
