package icmpsurvey

import (
	"testing"
	"time"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

var start = time.Date(2019, 8, 3, 0, 0, 0, 0, time.UTC)

// leaseWorld models a /24 where each address is occupied in short random
// bursts — a DHCP pool — plus a /24 of always-on servers.
type leaseWorld struct {
	dynamic iputil.Prefix
	static  iputil.Prefix
	// Addresses follow a repeating on/off pattern with the given period,
	// occupied onFrac of the time.
	period time.Duration
	onFrac float64
}

func (w *leaseWorld) Responds(addr iputil.Addr, at time.Time) bool {
	switch {
	case w.static.Contains(addr):
		return int(addr)%4 == 0 // a quarter of the block hosts servers
	case w.dynamic.Contains(addr):
		// Deterministic pseudo-random lease pattern: hash address and
		// period slot; occupied onFrac of the time in bursts.
		slot := at.Sub(start) / w.period
		h := uint64(addr)*2654435761 + uint64(slot)*40503
		h ^= h >> 13
		return float64(h%1000)/1000 < w.onFrac
	default:
		return false
	}
}

func TestSurveySeparatesDynamicFromStatic(t *testing.T) {
	w := &leaseWorld{
		dynamic: iputil.MustParsePrefix("10.1.0.0/24"),
		static:  iputil.MustParsePrefix("10.2.0.0/24"),
		period:  6 * time.Hour,
		onFrac:  0.5,
	}
	res := Run(w, Config{
		Blocks:   []iputil.Prefix{w.dynamic, w.static},
		Start:    start,
		Duration: 14 * 24 * time.Hour,
		Interval: time.Hour,
	})
	if len(res.Blocks) != 2 {
		t.Fatalf("blocks = %d", len(res.Blocks))
	}
	if !res.DynamicBlocks.Contains(w.dynamic) {
		t.Error("dynamic block not classified dynamic")
	}
	if res.DynamicBlocks.Contains(w.static) {
		t.Error("static block misclassified dynamic")
	}
}

func TestSurveyMetrics(t *testing.T) {
	// An address that is up for the first half of the window only.
	half := 24 * time.Hour
	r := ResponderFunc(func(addr iputil.Addr, at time.Time) bool {
		return addr == iputil.MustParseAddr("10.0.0.1") && at.Sub(start) < half
	})
	res := Run(r, Config{
		Blocks:   []iputil.Prefix{iputil.MustParsePrefix("10.0.0.0/24")},
		Start:    start,
		Duration: 48 * time.Hour,
		Interval: time.Hour,
	})
	m := res.PerAddr[iputil.MustParseAddr("10.0.0.1")]
	if m == nil {
		t.Fatal("no metrics for the live address")
	}
	if m.Probes != 48 || m.Replies != 24 {
		t.Errorf("probes/replies = %d/%d", m.Probes, m.Replies)
	}
	if m.A != 0.5 {
		t.Errorf("A = %v", m.A)
	}
	if m.Transitions != 1 {
		t.Errorf("Transitions = %d", m.Transitions)
	}
	if m.MedianUptime != 24*time.Hour {
		t.Errorf("MedianUptime = %v", m.MedianUptime)
	}
	if len(res.PerAddr) != 1 {
		t.Errorf("PerAddr has %d entries, want only responsive ones", len(res.PerAddr))
	}
}

func TestSurveyMiddleboxFalseNegative(t *testing.T) {
	// A middlebox answering for the whole block makes a dynamic pool look
	// like an always-up farm — the documented weakness.
	block := iputil.MustParsePrefix("10.3.0.0/24")
	r := ResponderFunc(func(addr iputil.Addr, at time.Time) bool {
		return block.Contains(addr) // firewall replies for everything
	})
	res := Run(r, Config{
		Blocks:   []iputil.Prefix{block},
		Start:    start,
		Duration: 7 * 24 * time.Hour,
		Interval: time.Hour,
	})
	if res.DynamicBlocks.Contains(block) {
		t.Error("middlebox-covered block must not be classified dynamic")
	}
	if res.Blocks[0].MeanA != 1 {
		t.Errorf("MeanA = %v, want 1", res.Blocks[0].MeanA)
	}
}

func TestSurveyICMPFilteredBlock(t *testing.T) {
	// Networks filtering ICMP contribute nothing (undercounting).
	block := iputil.MustParsePrefix("10.4.0.0/24")
	r := ResponderFunc(func(iputil.Addr, time.Time) bool { return false })
	res := Run(r, Config{
		Blocks:   []iputil.Prefix{block},
		Start:    start,
		Duration: 24 * time.Hour,
	})
	if res.Blocks[0].Responsive != 0 || res.Blocks[0].Dynamic {
		t.Errorf("filtered block = %+v", res.Blocks[0])
	}
}

func TestSurveyMinResponsiveGuard(t *testing.T) {
	// A block with a single flapping host must not be classified.
	flapper := iputil.MustParseAddr("10.5.0.7")
	r := ResponderFunc(func(addr iputil.Addr, at time.Time) bool {
		return addr == flapper && at.Unix()/3600%2 == 0
	})
	res := Run(r, Config{
		Blocks:   []iputil.Prefix{iputil.MustParsePrefix("10.5.0.0/24")},
		Start:    start,
		Duration: 7 * 24 * time.Hour,
		Interval: time.Hour,
	})
	if res.Blocks[0].Dynamic {
		t.Error("one flapping host classified a whole block")
	}
}

func TestSurveyProbeAccounting(t *testing.T) {
	r := ResponderFunc(func(iputil.Addr, time.Time) bool { return false })
	res := Run(r, Config{
		Blocks:   []iputil.Prefix{iputil.MustParsePrefix("10.0.0.0/24")},
		Start:    start,
		Duration: 10 * time.Hour,
		Interval: time.Hour,
	})
	if res.ProbesSent != 256*10 {
		t.Errorf("ProbesSent = %d, want %d", res.ProbesSent, 256*10)
	}
}
