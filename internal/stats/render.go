package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table renders the paper's tables as fixed-width text. Rows are appended in
// order; Render pads every column to its widest cell.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable starts a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; cells beyond the header width are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the fixed-width text form of the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named sequence of points in a figure.
type Series struct {
	Name   string
	Points []Point
}

// Figure renders the paper's figures as aligned text series: one block per
// series, one "x y" line per point. It is deliberately plain so that bench
// and CLI output can be diffed and post-processed.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// NewFigure starts a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a named series.
func (f *Figure) Add(name string, pts []Point) {
	f.Series = append(f.Series, Series{Name: name, Points: pts})
}

// AddCDF appends a CDF sampled at up to n points.
func (f *Figure) AddCDF(name string, c *CDF, n int) {
	f.Add(name, c.Points(n))
}

// Render returns the text form of the figure.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", f.Title)
	fmt.Fprintf(&b, "# x: %s, y: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "series %q\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "  %s %s\n", trimFloat(p.X), trimFloat(p.Y))
		}
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// LogBuckets returns log-spaced bucket boundaries between lo and hi
// inclusive, e.g. for the paper's log-scale count axes.
func LogBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade <= 0 {
		panic("stats: invalid log bucket parameters")
	}
	var out []float64
	step := math.Pow(10, 1/float64(perDecade))
	for v := lo; v <= hi*(1+1e-9); v *= step {
		out = append(out, v)
	}
	return out
}

// RankDescending returns the values sorted from largest to smallest; used
// for "per-blocklist count, sorted" figures (Fig 5, Fig 6).
func RankDescending(values []int) []int {
	out := make([]int, len(values))
	copy(out, values)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// TopShare returns the fraction of the total contributed by the k largest
// values — the paper's "top 10 blocklists contribute 65.9%" style statistic.
func TopShare(values []int, k int) float64 {
	ranked := RankDescending(values)
	total, top := 0, 0
	for i, v := range ranked {
		total += v
		if i < k {
			top += v
		}
	}
	return Fraction(top, total)
}
