// Package stats provides the small statistical toolkit the analysis and
// figure code is built on: empirical CDFs, summaries, histograms, and
// fixed-width text rendering of the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from the samples; the input slice is not modified.
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// NewCDFInts builds a CDF from integer samples.
func NewCDFInts(samples []int) *CDF {
	s := make([]float64, len(samples))
	for i, v := range samples {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of samples at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q'th quantile (0 <= q <= 1) using nearest-rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.sorted[rank]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Max returns the largest sample.
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Min returns the smallest sample.
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Points returns up to n evenly spaced (x, P(X<=x)) points suitable for
// plotting; it always includes the extremes.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n == 1 {
		return []Point{{c.sorted[len(c.sorted)-1], 1}}
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / (n - 1)
		x := c.sorted[idx]
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return dedupPoints(pts)
}

// Point is an (x, y) pair in a rendered series.
type Point struct {
	X, Y float64
}

func dedupPoints(pts []Point) []Point {
	out := pts[:0]
	for _, p := range pts {
		if len(out) == 0 || out[len(out)-1] != p {
			out = append(out, p)
		}
	}
	return out
}

// Summary aggregates the scalar statistics reported in the paper text.
type Summary struct {
	N              int
	Mean, Min, Max float64
	Median         float64
	P90, P99       float64
}

// Summarize computes a Summary of the samples.
func Summarize(samples []float64) Summary {
	c := NewCDF(samples)
	if c.Len() == 0 {
		return Summary{}
	}
	return Summary{
		N:      c.Len(),
		Mean:   c.Mean(),
		Min:    c.Min(),
		Max:    c.Max(),
		Median: c.Quantile(0.5),
		P90:    c.Quantile(0.9),
		P99:    c.Quantile(0.99),
	}
}

// Histogram counts samples in equal-width bins over [lo, hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
}

// NewHistogram builds a histogram with the given number of bins.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i == len(h.Counts) { // float edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of recorded samples including out-of-range ones.
func (h *Histogram) Total() int {
	n := h.Under + h.Over
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Fraction returns count/total as a ratio in [0,1]; it returns 0 when total
// is 0 so callers can print it without special-casing empty inputs.
func Fraction(count, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(count) / float64(total)
}

// Percent formats a ratio as "12.3%".
func Percent(ratio float64) string {
	return fmt.Sprintf("%.1f%%", ratio*100)
}
