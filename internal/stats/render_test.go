package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "Name", "Count")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22222")
	out := tbl.Render()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "Name") {
		t.Errorf("header line = %q", lines[1])
	}
	// Columns align: "alpha" padded to width of "alpha" (5).
	if !strings.HasPrefix(lines[3], "alpha  1") {
		t.Errorf("row line = %q", lines[3])
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("Fig X", "days", "CDF")
	f.Add("all", []Point{{0, 0}, {1, 0.5}, {2, 1}})
	out := f.Render()
	for _, want := range []string{"== Fig X ==", `series "all"`, "  1 0.5", "  2 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFigureAddCDF(t *testing.T) {
	f := NewFigure("c", "x", "y")
	f.AddCDF("s", NewCDFInts([]int{1, 2, 3}), 3)
	if len(f.Series) != 1 || len(f.Series[0].Points) == 0 {
		t.Fatal("AddCDF produced no points")
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1, 1000, 1)
	if len(b) != 4 || b[0] != 1 {
		t.Fatalf("LogBuckets = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatal("buckets not increasing")
		}
	}
}

func TestRankDescending(t *testing.T) {
	in := []int{3, 9, 1}
	got := RankDescending(in)
	if got[0] != 9 || got[2] != 1 {
		t.Errorf("RankDescending = %v", got)
	}
	if in[0] != 3 {
		t.Error("input mutated")
	}
}

func TestTopShare(t *testing.T) {
	vals := []int{50, 30, 10, 5, 5}
	if got := TopShare(vals, 2); got != 0.8 {
		t.Errorf("TopShare = %v, want 0.8", got)
	}
	if got := TopShare(vals, 100); got != 1 {
		t.Errorf("TopShare all = %v", got)
	}
	if got := TopShare(nil, 3); got != 0 {
		t.Errorf("TopShare empty = %v", got)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(5) != "5" {
		t.Errorf("trimFloat(5) = %s", trimFloat(5))
	}
	if trimFloat(0.5) != "0.5" {
		t.Errorf("trimFloat(0.5) = %s", trimFloat(0.5))
	}
}
