package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.2},
		{2, 0.6},
		{2.5, 0.6},
		{10, 1},
		{100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Len() != 0 {
		t.Error("empty CDF should return 0 everywhere")
	}
	if !math.IsNaN(c.Mean()) || !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF stats should be NaN")
	}
	if c.Points(5) != nil {
		t.Error("empty CDF should have no points")
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDFInts([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := c.Quantile(0.5); got != 5 {
		t.Errorf("median = %v, want 5", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Errorf("q1 = %v", got)
	}
	if got := c.Quantile(0.9); got != 9 {
		t.Errorf("p90 = %v", got)
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	f := func(raw []float64) bool {
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				raw[i] = 0
			}
		}
		c := NewCDF(raw)
		xs := append([]float64{}, raw...)
		sort.Float64s(xs)
		prev := 0.0
		for _, x := range xs {
			y := c.At(x)
			if y < prev-1e-12 || y < 0 || y > 1 {
				return false
			}
			prev = y
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFInputNotMutated(t *testing.T) {
	in := []float64{3, 1, 2}
	NewCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("NewCDF mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6, 8})
	if s.N != 4 || s.Mean != 5 || s.Min != 2 || s.Max != 8 {
		t.Errorf("Summary = %+v", s)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestCDFPoints(t *testing.T) {
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i)
	}
	c := NewCDF(samples)
	pts := c.Points(11)
	if len(pts) == 0 || pts[0].X != 0 || pts[len(pts)-1].X != 99 {
		t.Fatalf("Points = %v", pts)
	}
	if pts[len(pts)-1].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[len(pts)-1].Y)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].Y < pts[i-1].Y {
			t.Fatalf("points not monotone: %v", pts)
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under=%d Over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on invalid bounds")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestFractionAndPercent(t *testing.T) {
	if Fraction(1, 0) != 0 {
		t.Error("Fraction with zero total should be 0")
	}
	if Fraction(1, 4) != 0.25 {
		t.Error("Fraction(1,4)")
	}
	if Percent(0.123) != "12.3%" {
		t.Errorf("Percent = %s", Percent(0.123))
	}
}

func TestHistogramRandomisedTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := NewHistogram(0, 100, 10)
	n := 5000
	for i := 0; i < n; i++ {
		h.Add(rng.Float64()*140 - 20)
	}
	if h.Total() != n {
		t.Errorf("Total = %d, want %d", h.Total(), n)
	}
}
