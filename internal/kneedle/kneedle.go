// Package kneedle implements the "kneedle" knee/elbow point detector of
// Satopää, Albrecht, Irwin and Raghavan, "Finding a 'Kneedle' in a Haystack:
// Detecting Knee Points in System Behavior" (ICDCSW 2011).
//
// The paper under reproduction uses this algorithm to pick the allocation
// count threshold (eight addresses) that separates RIPE Atlas probes with
// frequent address changes from the rest (Fig 2).
package kneedle

import (
	"errors"
	"math"
	"sort"
)

// Curve declares whether the data is concave ("knee", diminishing returns)
// or convex ("elbow").
type Curve int

// Curve shapes.
const (
	Concave Curve = iota // increasing, flattening — classic knee
	Convex               // increasing returns — elbow
)

// Options tune the detector.
type Options struct {
	Curve Curve
	// Decreasing marks data sorted in decreasing y order (like Fig 2's
	// sorted per-probe allocation counts); the detector flips it.
	Decreasing bool
	// Sensitivity is the S parameter from the paper; larger values demand
	// a more pronounced knee. Values <= 0 default to 1.
	Sensitivity float64
	// Smooth applies a small moving-average window before normalising;
	// 0 disables smoothing.
	Smooth int
	// LogY takes log10 of the y values before normalising — appropriate
	// when the knee is judged on a log-scale plot, as in the paper's
	// Fig 2.
	LogY bool
}

// ErrNoKnee is returned when no knee satisfies the sensitivity threshold.
var ErrNoKnee = errors.New("kneedle: no knee point found")

// ErrTooShort is returned for inputs with fewer than three points.
var ErrTooShort = errors.New("kneedle: need at least 3 points")

// Find locates the knee of y(x) and returns the index into the input slices.
// x must be strictly increasing and len(x) == len(y).
func Find(x, y []float64, opt Options) (int, error) {
	n := len(x)
	if n != len(y) {
		return 0, errors.New("kneedle: mismatched slice lengths")
	}
	if n < 3 {
		return 0, ErrTooShort
	}
	for i := 1; i < n; i++ {
		if x[i] <= x[i-1] {
			return 0, errors.New("kneedle: x must be strictly increasing")
		}
	}
	if opt.Sensitivity <= 0 {
		opt.Sensitivity = 1
	}

	ys := make([]float64, n)
	copy(ys, y)
	if opt.LogY {
		for i, v := range ys {
			if v < 1e-12 {
				v = 1e-12
			}
			ys[i] = math.Log10(v)
		}
	}
	if opt.Decreasing {
		// Flip vertically so the curve increases; knee index is preserved
		// because we only flip y values, not order.
		ymin, ymax := minMax(ys)
		for i := range ys {
			ys[i] = ymax + ymin - ys[i]
		}
	}
	if opt.Smooth > 1 {
		ys = movingAverage(ys, opt.Smooth)
	}

	// Normalise both axes to [0, 1].
	xn := normalize(x)
	yn := normalize(ys)

	// Difference curve. For concave increasing data the knee is the max of
	// y - x; for convex data it is the max of x - y.
	diff := make([]float64, n)
	for i := range diff {
		if opt.Curve == Concave {
			diff[i] = yn[i] - xn[i]
		} else {
			diff[i] = xn[i] - yn[i]
		}
	}

	// Candidate knees are local maxima of the difference curve. The paper's
	// threshold drops each candidate by S times the mean x-spacing.
	meanDx := 1.0 / float64(n-1)
	bestIdx, bestVal := -1, math.Inf(-1)
	for i := 1; i < n-1; i++ {
		if diff[i] >= diff[i-1] && diff[i] >= diff[i+1] {
			threshold := diff[i] - opt.Sensitivity*meanDx
			// The candidate is confirmed if the difference curve drops
			// below the threshold before the next local maximum.
			for j := i + 1; j < n; j++ {
				if diff[j] > diff[i] {
					break // superseded by a later, larger maximum
				}
				if diff[j] < threshold {
					if diff[i] > bestVal {
						bestIdx, bestVal = i, diff[i]
					}
					break
				}
			}
		}
	}
	if bestIdx < 0 {
		return 0, ErrNoKnee
	}
	return bestIdx, nil
}

// FindSortedCounts is the Fig 2 convenience: given per-item counts sorted in
// ascending item order is not meaningful, so the caller passes raw counts;
// the function sorts them descending (as the figure plots), finds the knee of
// the decreasing curve, and returns the count value at the knee.
func FindSortedCounts(counts []int, opt Options) (kneeValue int, kneeIndex int, err error) {
	if len(counts) < 3 {
		return 0, 0, ErrTooShort
	}
	sorted := make([]int, len(counts))
	copy(sorted, counts)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	x := make([]float64, len(sorted))
	y := make([]float64, len(sorted))
	for i, c := range sorted {
		x[i] = float64(i + 1)
		y[i] = float64(c)
	}
	opt.Decreasing = true
	opt.Curve = Concave
	idx, err := Find(x, y, opt)
	if err != nil {
		return 0, 0, err
	}
	return sorted[idx], idx, nil
}

func normalize(v []float64) []float64 {
	lo, hi := minMax(v)
	out := make([]float64, len(v))
	if hi == lo {
		return out
	}
	for i, x := range v {
		out[i] = (x - lo) / (hi - lo)
	}
	return out
}

func minMax(v []float64) (lo, hi float64) {
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

func movingAverage(v []float64, window int) []float64 {
	out := make([]float64, len(v))
	half := window / 2
	for i := range v {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(v) {
			hi = len(v) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += v[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}
