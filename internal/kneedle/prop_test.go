// Property tests for the knee detector: for random allocation-count
// profiles with a planted knee, FindSortedCounts must be order-independent,
// scale-equivariant, and must find the planted threshold region.
package kneedle

import (
	"math/rand"
	"testing"
)

// genCounts plants a knee: head probes with large allocation counts, a long
// tail of small ones — the Fig 2 shape. Returns the profile shuffled.
func genCounts(rng *rand.Rand, nHead, nTail, headLo, tailHi int) []int {
	counts := make([]int, 0, nHead+nTail)
	for i := 0; i < nHead; i++ {
		counts = append(counts, headLo+rng.Intn(headLo))
	}
	for i := 0; i < nTail; i++ {
		counts = append(counts, 1+rng.Intn(tailHi))
	}
	rng.Shuffle(len(counts), func(i, j int) { counts[i], counts[j] = counts[j], counts[i] })
	return counts
}

func TestFindSortedCountsOrderInvariance(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		counts := genCounts(rng, 5+rng.Intn(10), 40+rng.Intn(60), 200, 5)
		opt := Options{LogY: true}
		knee, idx, err := FindSortedCounts(counts, opt)

		shuffled := append([]int(nil), counts...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		knee2, idx2, err2 := FindSortedCounts(shuffled, opt)

		if (err == nil) != (err2 == nil) || knee != knee2 || idx != idx2 {
			t.Fatalf("seed %d: knee (%d, %d, %v) changed to (%d, %d, %v) under input shuffle",
				seed, knee, idx, err, knee2, idx2, err2)
		}
	}
}

// TestFindSortedCountsScaleEquivariance: with LogY, multiplying every count
// by a constant shifts the log curve without changing its shape, so the
// knee index must not move and the knee value must scale with the input.
func TestFindSortedCountsScaleEquivariance(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 50))
		counts := genCounts(rng, 6+rng.Intn(8), 50+rng.Intn(50), 300, 4)
		opt := Options{LogY: true}
		knee, idx, err := FindSortedCounts(counts, opt)
		if err != nil {
			continue // no knee in this draw; nothing to compare
		}
		const k = 7
		scaled := make([]int, len(counts))
		for i, c := range counts {
			scaled[i] = c * k
		}
		knee2, idx2, err2 := FindSortedCounts(scaled, opt)
		if err2 != nil {
			t.Fatalf("seed %d: knee vanished under ×%d scaling: %v", seed, k, err2)
		}
		if idx2 != idx || knee2 != knee*k {
			t.Fatalf("seed %d: knee (%d at %d) became (%d at %d) under ×%d scaling",
				seed, knee, idx, knee2, idx2, k)
		}
	}
}

// TestFindSortedCountsPlantedKnee: the detected threshold must land in the
// boundary region between the planted head and the planted tail — kneedle
// only promises the curvature maximum, which can sit on the last tail value
// at the cliff edge, so the band is [tailHi, headLo*2].
func TestFindSortedCountsPlantedKnee(t *testing.T) {
	found := 0
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		const headLo, tailHi = 500, 3
		counts := genCounts(rng, 8, 80, headLo, tailHi)
		knee, _, err := FindSortedCounts(counts, Options{LogY: true})
		if err != nil {
			continue
		}
		found++
		if knee < tailHi || knee > headLo*2 {
			t.Fatalf("seed %d: knee %d outside the planted boundary [%d, %d]",
				seed, knee, tailHi, headLo*2)
		}
	}
	if found < 15 {
		t.Fatalf("knee found in only %d/25 planted profiles", found)
	}
}
