package kneedle

import (
	"math"
	"math/rand"
	"testing"
)

// A clean concave curve y = sqrt(x) on [0, 100] has its normalised knee
// where d/dx (sqrt(x)/10 - x/100) = 0 => x = 25.
func TestFindConcaveKnee(t *testing.T) {
	var x, y []float64
	for i := 0; i <= 100; i++ {
		x = append(x, float64(i))
		y = append(y, math.Sqrt(float64(i)))
	}
	idx, err := Find(x, y, Options{Curve: Concave})
	if err != nil {
		t.Fatal(err)
	}
	if x[idx] < 15 || x[idx] > 35 {
		t.Errorf("knee at x=%v, want near 25", x[idx])
	}
}

func TestFindConvexElbow(t *testing.T) {
	var x, y []float64
	for i := 0; i <= 100; i++ {
		x = append(x, float64(i))
		y = append(y, float64(i)*float64(i)/100)
	}
	idx, err := Find(x, y, Options{Curve: Convex})
	if err != nil {
		t.Fatal(err)
	}
	// For the normalised curve the maximum of x - y sits at x = 50.
	if x[idx] < 40 || x[idx] > 60 {
		t.Errorf("elbow at x=%v, want near 50", x[idx])
	}
}

func TestFindDecreasing(t *testing.T) {
	// A decreasing hyperbolic curve like Fig 2: y = 1000/x.
	var x, y []float64
	for i := 1; i <= 200; i++ {
		x = append(x, float64(i))
		y = append(y, 1000/float64(i))
	}
	idx, err := Find(x, y, Options{Curve: Concave, Decreasing: true})
	if err != nil {
		t.Fatal(err)
	}
	if idx < 2 || idx > 40 {
		t.Errorf("knee index %d, want small (steep drop early)", idx)
	}
}

func TestFindErrors(t *testing.T) {
	if _, err := Find([]float64{1, 2}, []float64{1, 2}, Options{}); err != ErrTooShort {
		t.Errorf("short input: %v", err)
	}
	if _, err := Find([]float64{1, 2, 3}, []float64{1, 2}, Options{}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := Find([]float64{1, 1, 2}, []float64{1, 2, 3}, Options{}); err == nil {
		t.Error("non-increasing x should error")
	}
	// A straight line has no knee.
	x := []float64{1, 2, 3, 4, 5}
	if _, err := Find(x, x, Options{}); err != ErrNoKnee {
		t.Errorf("line: %v", err)
	}
}

func TestFindSortedCountsFig2Shape(t *testing.T) {
	// Reproduce the Fig 2 shape: most probes have 1 allocation, a minority
	// have many. The knee should land in the transition region.
	rng := rand.New(rand.NewSource(42))
	var counts []int
	for i := 0; i < 9300; i++ { // 59% with no change -> 1 address
		counts = append(counts, 1)
	}
	for i := 0; i < 2000; i++ { // moderate churners
		counts = append(counts, 2+rng.Intn(5))
	}
	for i := 0; i < 2600; i++ { // heavy churners, heavy tail
		counts = append(counts, 8+int(math.Floor(rng.ExpFloat64()*60)))
	}
	knee, idx, err := FindSortedCounts(counts, Options{Sensitivity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if knee < 2 || knee > 40 {
		t.Errorf("knee value = %d (idx %d), want in the single-digit to tens region", knee, idx)
	}
}

func TestFindSortedCountsTooShort(t *testing.T) {
	if _, _, err := FindSortedCounts([]int{1, 2}, Options{}); err != ErrTooShort {
		t.Errorf("got %v", err)
	}
}

func TestSmoothingDoesNotCrash(t *testing.T) {
	var x, y []float64
	rng := rand.New(rand.NewSource(5))
	for i := 0; i <= 100; i++ {
		x = append(x, float64(i))
		y = append(y, math.Sqrt(float64(i))+rng.Float64()*0.3)
	}
	idx, err := Find(x, y, Options{Curve: Concave, Smooth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if x[idx] < 5 || x[idx] > 60 {
		t.Errorf("noisy knee at x=%v", x[idx])
	}
}

func TestSensitivityMonotonic(t *testing.T) {
	// Higher sensitivity can only reject knees, never invent them.
	var x, y []float64
	for i := 0; i <= 50; i++ {
		x = append(x, float64(i))
		y = append(y, math.Sqrt(float64(i)))
	}
	if _, err := Find(x, y, Options{Sensitivity: 1}); err != nil {
		t.Fatalf("S=1: %v", err)
	}
	// A huge S should reject.
	if _, err := Find(x, y, Options{Sensitivity: 1000}); err != ErrNoKnee {
		t.Errorf("S=1000: %v, want ErrNoKnee", err)
	}
}

func TestMovingAverage(t *testing.T) {
	got := movingAverage([]float64{0, 3, 6}, 3)
	want := []float64{1.5, 3, 4.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("movingAverage[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNormalizeConstant(t *testing.T) {
	out := normalize([]float64{5, 5, 5})
	for _, v := range out {
		if v != 0 {
			t.Fatalf("constant input should normalise to zeros, got %v", out)
		}
	}
}
