package iputil

// Table is a longest-prefix-match table mapping prefixes to values. It is a
// binary trie keyed on address bits; lookups walk at most 32 nodes. The zero
// value is not ready for use; construct with NewTable.
//
// The analysis pipeline uses it to map addresses to the AS (and prefix kind)
// that originates them.
type Table[V any] struct {
	root *trieNode[V]
	n    int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// NewTable returns an empty table.
func NewTable[V any]() *Table[V] {
	return &Table[V]{root: &trieNode[V]{}}
}

// Insert associates v with p, replacing any previous value at exactly p.
func (t *Table[V]) Insert(p Prefix, v V) {
	n := t.root
	base := uint32(p.Base())
	for i := 0; i < p.Bits(); i++ {
		bit := base >> (31 - uint(i)) & 1
		if n.child[bit] == nil {
			n.child[bit] = &trieNode[V]{}
		}
		n = n.child[bit]
	}
	if !n.set {
		t.n++
	}
	n.val, n.set = v, true
}

// InsertCopy returns a table that associates v with p, sharing every
// untouched node with the receiver. Only the nodes on the path to p are
// copied (≤32 of them), so building a successor table for a small delta
// costs O(delta·32) regardless of table size. The receiver is unchanged and
// remains safe for concurrent readers.
func (t *Table[V]) InsertCopy(p Prefix, v V) *Table[V] {
	nt := &Table[V]{n: t.n}
	root := *t.root
	nt.root = &root
	n := nt.root
	base := uint32(p.Base())
	for i := 0; i < p.Bits(); i++ {
		bit := base >> (31 - uint(i)) & 1
		var child trieNode[V]
		if n.child[bit] != nil {
			child = *n.child[bit]
		}
		n.child[bit] = &child
		n = &child
	}
	if !n.set {
		nt.n++
	}
	n.val, n.set = v, true
	return nt
}

// DeleteCopy returns a table without an entry at exactly p, sharing every
// untouched node with the receiver; path nodes left with no value and no
// children are pruned so the result is shaped like a freshly built table.
// When p is not stored the receiver itself is returned.
func (t *Table[V]) DeleteCopy(p Prefix) *Table[V] {
	if _, ok := t.LookupPrefix(p); !ok {
		return t
	}
	nt := &Table[V]{n: t.n - 1}
	nt.root = deleteCopyNode(t.root, uint32(p.Base()), 0, p.Bits())
	if nt.root == nil {
		nt.root = &trieNode[V]{}
	}
	return nt
}

func deleteCopyNode[V any](n *trieNode[V], base uint32, depth, bits int) *trieNode[V] {
	c := *n
	if depth == bits {
		var zero V
		c.val, c.set = zero, false
	} else {
		bit := base >> (31 - uint(depth)) & 1
		c.child[bit] = deleteCopyNode(n.child[bit], base, depth+1, bits)
	}
	if !c.set && c.child[0] == nil && c.child[1] == nil {
		return nil
	}
	return &c
}

// Lookup returns the value of the longest prefix containing a.
func (t *Table[V]) Lookup(a Addr) (v V, ok bool) {
	n := t.root
	bits := uint32(a)
	for i := 0; i <= 32; i++ {
		if n.set {
			v, ok = n.val, true
		}
		if i == 32 {
			break
		}
		bit := bits >> (31 - uint(i)) & 1
		if n.child[bit] == nil {
			break
		}
		n = n.child[bit]
	}
	return v, ok
}

// LookupPrefix returns the value stored at exactly p.
func (t *Table[V]) LookupPrefix(p Prefix) (v V, ok bool) {
	n := t.root
	base := uint32(p.Base())
	for i := 0; i < p.Bits(); i++ {
		bit := base >> (31 - uint(i)) & 1
		if n.child[bit] == nil {
			var zero V
			return zero, false
		}
		n = n.child[bit]
	}
	return n.val, n.set
}

// Len returns the number of stored prefixes.
func (t *Table[V]) Len() int { return t.n }

// Walk visits every stored (prefix, value) pair in address order. The walk
// stops early if fn returns false.
func (t *Table[V]) Walk(fn func(Prefix, V) bool) {
	t.walk(t.root, 0, 0, fn)
}

func (t *Table[V]) walk(n *trieNode[V], base uint32, depth int, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(PrefixFrom(Addr(base), depth), n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if !t.walk(n.child[0], base, depth+1, fn) {
		return false
	}
	return t.walk(n.child[1], base|1<<(31-uint(depth)), depth+1, fn)
}
