package iputil

import (
	"math/rand"
	"testing"
)

func TestTableLongestMatch(t *testing.T) {
	tbl := NewTable[string]()
	tbl.Insert(MustParsePrefix("10.0.0.0/8"), "coarse")
	tbl.Insert(MustParsePrefix("10.1.0.0/16"), "mid")
	tbl.Insert(MustParsePrefix("10.1.2.0/24"), "fine")

	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.1.2.3", "fine", true},
		{"10.1.9.9", "mid", true},
		{"10.200.0.1", "coarse", true},
		{"11.0.0.1", "", false},
	}
	for _, c := range cases {
		got, ok := tbl.Lookup(MustParseAddr(c.addr))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = %q, %v; want %q, %v", c.addr, got, ok, c.want, c.ok)
		}
	}
}

func TestTableDefaultRoute(t *testing.T) {
	tbl := NewTable[int]()
	tbl.Insert(MustParsePrefix("0.0.0.0/0"), 42)
	got, ok := tbl.Lookup(MustParseAddr("203.0.113.1"))
	if !ok || got != 42 {
		t.Errorf("default route lookup = %d, %v", got, ok)
	}
}

func TestTableReplaceAndLen(t *testing.T) {
	tbl := NewTable[int]()
	p := MustParsePrefix("192.0.2.0/24")
	tbl.Insert(p, 1)
	tbl.Insert(p, 2)
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
	if v, ok := tbl.LookupPrefix(p); !ok || v != 2 {
		t.Errorf("LookupPrefix = %d, %v", v, ok)
	}
}

func TestTableLookupPrefixMiss(t *testing.T) {
	tbl := NewTable[int]()
	tbl.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	if _, ok := tbl.LookupPrefix(MustParsePrefix("10.0.0.0/16")); ok {
		t.Error("LookupPrefix should be exact, not LPM")
	}
}

func TestTableWalkOrder(t *testing.T) {
	tbl := NewTable[int]()
	prefixes := []string{"10.0.0.0/24", "9.0.0.0/8", "10.0.0.0/16", "192.0.2.0/24"}
	for i, s := range prefixes {
		tbl.Insert(MustParsePrefix(s), i)
	}
	var got []string
	tbl.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"9.0.0.0/8", "10.0.0.0/16", "10.0.0.0/24", "192.0.2.0/24"}
	if len(got) != len(want) {
		t.Fatalf("Walk visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Walk[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTableWalkEarlyStop(t *testing.T) {
	tbl := NewTable[int]()
	tbl.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tbl.Insert(MustParsePrefix("11.0.0.0/8"), 2)
	count := 0
	tbl.Walk(func(Prefix, int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("early stop visited %d nodes", count)
	}
}

// TestTableAgainstLinearScan cross-checks LPM lookups against a brute-force
// linear scan over random prefix tables.
func TestTableAgainstLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	type entry struct {
		p Prefix
		v int
	}
	tbl := NewTable[int]()
	var entries []entry
	seen := map[Prefix]bool{}
	for i := 0; i < 300; i++ {
		p := PrefixFrom(Addr(rng.Uint32()), 8+rng.Intn(17))
		if seen[p] {
			continue
		}
		seen[p] = true
		tbl.Insert(p, i)
		entries = append(entries, entry{p, i})
	}
	for i := 0; i < 2000; i++ {
		a := Addr(rng.Uint32())
		bestBits, bestVal, found := -1, 0, false
		for _, e := range entries {
			if e.p.Contains(a) && e.p.Bits() > bestBits {
				bestBits, bestVal, found = e.p.Bits(), e.v, true
			}
		}
		got, ok := tbl.Lookup(a)
		if ok != found || (ok && got != bestVal) {
			t.Fatalf("Lookup(%v) = %d, %v; want %d, %v", a, got, ok, bestVal, found)
		}
	}
}

// TestInsertCopyDeleteCopyAgainstFreshBuild drives a random edit sequence
// through the persistent path-copy operations and requires the result to
// behave exactly like a table freshly built from the surviving prefixes —
// including after deletions, which must prune empty branches the way a
// fresh build never creates them.
func TestInsertCopyDeleteCopyAgainstFreshBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	live := map[Prefix]int{}
	tbl := NewTable[int]()
	for step := 0; step < 400; step++ {
		p := PrefixFrom(Addr(rng.Uint32()), 4+rng.Intn(29))
		if rng.Intn(3) == 0 && len(live) > 0 {
			for q := range live {
				p = q
				break
			}
			tbl = tbl.DeleteCopy(p)
			delete(live, p)
		} else {
			v := rng.Intn(1000)
			tbl = tbl.InsertCopy(p, v)
			live[p] = v
		}

		if tbl.Len() != len(live) {
			t.Fatalf("step %d: Len = %d, want %d", step, tbl.Len(), len(live))
		}
		fresh := NewTable[int]()
		for q, v := range live {
			fresh.Insert(q, v)
		}
		for i := 0; i < 50; i++ {
			a := Addr(rng.Uint32())
			gv, gok := tbl.Lookup(a)
			wv, wok := fresh.Lookup(a)
			if gok != wok || gv != wv {
				t.Fatalf("step %d: Lookup(%v) = %d,%v; fresh build says %d,%v",
					step, a, gv, gok, wv, wok)
			}
		}
		for q, v := range live {
			if gv, ok := tbl.LookupPrefix(q); !ok || gv != v {
				t.Fatalf("step %d: LookupPrefix(%v) = %d,%v; want %d,true", step, q, gv, ok, v)
			}
		}
	}
}

// TestInsertCopyLeavesReceiverUntouched pins persistence: the old table
// must still answer exactly as before after derived versions are built from
// it — that is what lets in-flight readers keep a snapshot while the
// reloader compiles its successor.
func TestInsertCopyLeavesReceiverUntouched(t *testing.T) {
	base := NewTable[string]()
	base.Insert(MustParsePrefix("10.0.0.0/8"), "coarse")
	base.Insert(MustParsePrefix("10.1.0.0/16"), "mid")

	derived := base.InsertCopy(MustParsePrefix("10.1.2.0/24"), "fine")
	derived = derived.DeleteCopy(MustParsePrefix("10.1.0.0/16"))

	if base.Len() != 2 {
		t.Errorf("base Len = %d after derivations, want 2", base.Len())
	}
	if got, ok := base.Lookup(MustParseAddr("10.1.2.3")); !ok || got != "mid" {
		t.Errorf("base Lookup(10.1.2.3) = %q,%v; want mid (unchanged)", got, ok)
	}
	if got, ok := derived.Lookup(MustParseAddr("10.1.2.3")); !ok || got != "fine" {
		t.Errorf("derived Lookup(10.1.2.3) = %q,%v; want fine", got, ok)
	}
	if got, ok := derived.Lookup(MustParseAddr("10.1.9.9")); !ok || got != "coarse" {
		t.Errorf("derived Lookup(10.1.9.9) = %q,%v; want coarse (mid deleted)", got, ok)
	}
}

// TestDeleteCopyAbsentReturnsReceiver pins the no-op fast path: deleting a
// prefix that is not a member returns the receiver itself, not a copy.
func TestDeleteCopyAbsentReturnsReceiver(t *testing.T) {
	tbl := NewTable[int]()
	tbl = tbl.InsertCopy(MustParsePrefix("10.0.0.0/8"), 1)
	if got := tbl.DeleteCopy(MustParsePrefix("11.0.0.0/8")); got != tbl {
		t.Error("DeleteCopy of an absent prefix did not return the receiver")
	}
	// Deleting a covering-but-not-member prefix is also a no-op.
	if got := tbl.DeleteCopy(MustParsePrefix("10.0.0.0/16")); got != tbl {
		t.Error("DeleteCopy of a non-member sub-prefix did not return the receiver")
	}
}

// TestDeleteCopyToEmpty empties a table via DeleteCopy and requires a valid,
// zero-length table.
func TestDeleteCopyToEmpty(t *testing.T) {
	tbl := NewTable[int]()
	tbl = tbl.InsertCopy(MustParsePrefix("10.0.0.0/8"), 1)
	tbl = tbl.InsertCopy(MustParsePrefix("10.0.0.0/24"), 2)
	tbl = tbl.DeleteCopy(MustParsePrefix("10.0.0.0/8"))
	tbl = tbl.DeleteCopy(MustParsePrefix("10.0.0.0/24"))
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d after deleting every member", tbl.Len())
	}
	if _, ok := tbl.Lookup(MustParseAddr("10.0.0.1")); ok {
		t.Error("emptied table still answers lookups")
	}
	// And it must still accept inserts.
	tbl = tbl.InsertCopy(MustParsePrefix("10.0.0.0/8"), 3)
	if v, ok := tbl.Lookup(MustParseAddr("10.0.0.1")); !ok || v != 3 {
		t.Errorf("reinsert after emptying = %d,%v", v, ok)
	}
}
