package iputil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.7", AddrFrom4(192, 0, 2, 7), true},
		{"10.1.2.3", AddrFrom4(10, 1, 2, 3), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"-1.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"01.2.3.4", 0, false},
		{"1..3.4", 0, false},
		{"", 0, false},
		{"1.2.3.4 ", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded, want error", c.in)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		a := Addr(u)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOctets(t *testing.T) {
	a := MustParseAddr("203.0.113.9")
	if got := a.Octets(); got != [4]byte{203, 0, 113, 9} {
		t.Fatalf("Octets = %v", got)
	}
}

func TestMasked(t *testing.T) {
	a := MustParseAddr("192.168.37.201")
	cases := []struct {
		bits int
		want string
	}{
		{32, "192.168.37.201"},
		{24, "192.168.37.0"},
		{16, "192.168.0.0"},
		{8, "192.0.0.0"},
		{0, "0.0.0.0"},
	}
	for _, c := range cases {
		if got := a.Masked(c.bits); got.String() != c.want {
			t.Errorf("Masked(%d) = %v, want %v", c.bits, got, c.want)
		}
	}
}

func TestPrefixParseAndContains(t *testing.T) {
	p := MustParsePrefix("198.51.100.0/24")
	if p.Bits() != 24 || p.Base().String() != "198.51.100.0" {
		t.Fatalf("parsed %v", p)
	}
	if !p.Contains(MustParseAddr("198.51.100.255")) {
		t.Error("should contain .255")
	}
	if p.Contains(MustParseAddr("198.51.101.0")) {
		t.Error("should not contain next /24")
	}
	if p.Size() != 256 {
		t.Errorf("Size = %d", p.Size())
	}
	// Non-canonical base is masked.
	q := MustParsePrefix("198.51.100.77/24")
	if q != p {
		t.Errorf("canonicalisation failed: %v != %v", q, p)
	}
}

func TestParsePrefixErrors(t *testing.T) {
	for _, in := range []string{"", "1.2.3.4", "1.2.3.4/33", "1.2.3.4/-1", "1.2.3.4/x", "1.2.3/24"} {
		if _, err := ParsePrefix(in); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded, want error", in)
		}
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.5.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint prefixes must not overlap")
	}
}

func TestPrefixNth(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/30")
	want := []string{"192.0.2.0", "192.0.2.1", "192.0.2.2", "192.0.2.3"}
	for i, w := range want {
		if got := p.Nth(i).String(); got != w {
			t.Errorf("Nth(%d) = %s, want %s", i, got, w)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Nth out of range should panic")
		}
	}()
	p.Nth(4)
}

func TestSlash24(t *testing.T) {
	a := MustParseAddr("203.0.113.200")
	if got := a.Slash24(); got != MustParsePrefix("203.0.113.0/24") {
		t.Errorf("Slash24 = %v", got)
	}
}

func TestPrefixContainmentProperty(t *testing.T) {
	// Every address inside a prefix, when masked to the prefix length,
	// equals the base; addresses outside never do.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		bits := rng.Intn(25) + 8
		p := PrefixFrom(Addr(rng.Uint32()), bits)
		inside := p.Nth(rng.Intn(p.Size()))
		if !p.Contains(inside) {
			t.Fatalf("%v should contain %v", p, inside)
		}
	}
}

func TestCompareAddrs(t *testing.T) {
	if CompareAddrs(1, 2) != -1 || CompareAddrs(2, 1) != 1 || CompareAddrs(5, 5) != 0 {
		t.Error("CompareAddrs misordered")
	}
}
