// Package iputil provides compact IPv4 address and prefix value types used
// throughout the repository.
//
// Addresses are stored as host-order uint32 values so they can be used as map
// keys and compared, sorted, and masked cheaply. Prefixes are (base, length)
// pairs with canonicalised bases. The package also provides address sets and
// a longest-prefix-match table.
package iputil

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// ErrBadAddr is returned when textual input does not parse as an IPv4
// address or prefix.
var ErrBadAddr = errors.New("iputil: malformed IPv4 address")

// AddrFrom4 builds an Addr from four octets, a.b.c.d.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses dotted-quad notation ("192.0.2.7").
func ParseAddr(s string) (Addr, error) {
	var parts [4]uint32
	rest := s
	for i := 0; i < 4; i++ {
		var tok string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
			}
			tok, rest = rest[:dot], rest[dot+1:]
		} else {
			tok = rest
		}
		if tok == "" || len(tok) > 3 {
			return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
		}
		// Hand-rolled digit loop: an octet is at most three digits, and this
		// parse sits on the serving hot path (every /v1/check request).
		n := uint32(0)
		for j := 0; j < len(tok); j++ {
			c := tok[j]
			if c < '0' || c > '9' {
				return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
			}
			n = n*10 + uint32(c-'0')
		}
		if n > 255 {
			return 0, fmt.Errorf("%w: %q", ErrBadAddr, s)
		}
		if len(tok) > 1 && tok[0] == '0' {
			return 0, fmt.Errorf("%w: leading zero in %q", ErrBadAddr, s)
		}
		parts[i] = uint32(n)
	}
	return Addr(parts[0]<<24 | parts[1]<<16 | parts[2]<<8 | parts[3]), nil
}

// MustParseAddr is ParseAddr that panics on error; intended for constants in
// tests and examples.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in dotted-quad notation.
func (a Addr) String() string {
	var b [15]byte
	return string(a.AppendText(b[:0]))
}

// AppendText appends the dotted-quad form to b and returns the extended
// slice — the allocation-free form used by streamed artifact writers.
func (a Addr) AppendText(b []byte) []byte {
	b = strconv.AppendUint(b, uint64(a>>24), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>16&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64(a>>8&0xff), 10)
	b = append(b, '.')
	return strconv.AppendUint(b, uint64(a&0xff), 10)
}

// Octets returns the four address bytes in network order.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// Slash24 returns the /24 prefix covering a. The paper aggregates dynamic
// detections to /24 granularity (§3.2), so this is the most used projection.
func (a Addr) Slash24() Prefix {
	return Prefix{base: a &^ 0xff, bits: 24}
}

// Masked clears host bits below the given prefix length.
func (a Addr) Masked(bits int) Addr {
	if bits <= 0 {
		return 0
	}
	if bits >= 32 {
		return a
	}
	return a &^ (1<<(32-uint(bits)) - 1)
}

// Prefix is an IPv4 CIDR prefix with a canonical (masked) base address.
type Prefix struct {
	base Addr
	bits uint8
}

// PrefixFrom builds a canonical prefix covering addr at the given length.
// It panics if bits is outside [0, 32].
func PrefixFrom(addr Addr, bits int) Prefix {
	if bits < 0 || bits > 32 {
		panic("iputil: prefix length out of range")
	}
	return Prefix{base: addr.Masked(bits), bits: uint8(bits)}
}

// ParsePrefix parses CIDR notation ("192.0.2.0/24").
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: missing '/' in %q", ErrBadAddr, s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: bad prefix length in %q", ErrBadAddr, s)
	}
	return PrefixFrom(addr, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Base returns the first address of the prefix.
func (p Prefix) Base() Addr { return p.base }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// Size returns the number of addresses covered by the prefix.
func (p Prefix) Size() int {
	return 1 << (32 - uint(p.bits))
}

// Contains reports whether a falls inside the prefix.
func (p Prefix) Contains(a Addr) bool {
	return a.Masked(int(p.bits)) == p.base
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.base)
	}
	return q.Contains(p.base)
}

// Nth returns the i'th address inside the prefix; it panics when i is out of
// range.
func (p Prefix) Nth(i int) Addr {
	if i < 0 || i >= p.Size() {
		panic("iputil: address index outside prefix")
	}
	return p.base + Addr(i)
}

// String renders CIDR notation.
func (p Prefix) String() string {
	return p.base.String() + "/" + strconv.Itoa(int(p.bits))
}

// CompareAddrs orders addresses numerically; it is a convenience for
// sort.Slice callers.
func CompareAddrs(a, b Addr) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}
