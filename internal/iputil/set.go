package iputil

import (
	"sort"

	"github.com/reuseblock/reuseblock/internal/ipset"
)

// Set is a mutable set of IPv4 addresses. The zero value is not ready for
// use; construct with NewSet.
//
// The storage is the compact interval/bitmap hybrid in internal/ipset
// rather than a Go map: a paper-scale crawl result (tens of millions of
// addresses) costs a few bytes per address instead of ~50, membership stays
// O(log) with no hashing, and — because the hybrid iterates in ascending
// order by construction — Sorted and Iterate need no sort step and no
// map-order laundering.
type Set struct {
	s ipset.Set
}

// NewSet returns an empty address set.
func NewSet() *Set {
	return &Set{}
}

// SetOf builds a set from the given addresses.
func SetOf(addrs ...Addr) *Set {
	s := NewSet()
	for _, a := range addrs {
		s.Add(a)
	}
	return s
}

// Add inserts a into the set; it reports whether a was newly added.
func (s *Set) Add(a Addr) bool {
	return s.s.Add(uint32(a))
}

// AddRange inserts every address in [lo, hi] (inclusive). Contiguous pool
// space enters as intervals, costing bytes rather than entries.
func (s *Set) AddRange(lo, hi Addr) {
	s.s.AddRange(uint32(lo), uint32(hi))
}

// Remove deletes a from the set.
func (s *Set) Remove(a Addr) {
	s.s.Remove(uint32(a))
}

// Contains reports membership.
func (s *Set) Contains(a Addr) bool {
	return s.s.Contains(uint32(a))
}

// Len returns the number of addresses in the set.
func (s *Set) Len() int { return s.s.Len() }

// AddSet inserts every address of t into s, merging container-wise in
// place (no per-element hashing).
func (s *Set) AddSet(t *Set) {
	if t != nil {
		s.s.UnionWith(&t.s)
	}
}

// Iterate calls fn for every member in ascending numeric order until fn
// returns false. It is the allocation-free alternative to Sorted.
func (s *Set) Iterate(fn func(Addr) bool) {
	s.s.Iterate(func(v uint32) bool { return fn(Addr(v)) })
}

// IterateRange calls fn for every member in [lo, hi] (inclusive) in
// ascending order until fn returns false — the primitive windowed artifact
// streaming walks address space with.
func (s *Set) IterateRange(lo, hi Addr, fn func(Addr) bool) {
	s.s.IterateFrom(uint32(lo), func(v uint32) bool {
		if v > uint32(hi) {
			return false
		}
		return fn(Addr(v))
	})
}

// Intersect returns a new set holding the addresses present in both s and t.
func (s *Set) Intersect(t *Set) *Set {
	small, big := s, t
	if big.Len() < small.Len() {
		small, big = big, small
	}
	out := NewSet()
	small.Iterate(func(a Addr) bool {
		if big.Contains(a) {
			out.Add(a)
		}
		return true
	})
	return out
}

// Sorted returns the addresses in ascending numeric order.
func (s *Set) Sorted() []Addr {
	out := make([]Addr, 0, s.Len())
	s.Iterate(func(a Addr) bool {
		out = append(out, a)
		return true
	})
	return out
}

// Slash24s returns the set of /24 prefixes covering the members of s.
func (s *Set) Slash24s() *PrefixSet {
	ps := NewPrefixSet()
	s.Iterate(func(a Addr) bool {
		ps.Add(a.Slash24())
		return true
	})
	return ps
}

// Compact converts the storage to its smallest representation; call when
// the set stops being mutated.
func (s *Set) Compact() { s.s.Compact() }

// MemBytes estimates the heap footprint of the set's storage.
func (s *Set) MemBytes() int { return s.s.MemBytes() }

// PrefixSet is a set of canonical prefixes. Unlike Set it stores prefixes of
// mixed lengths; Covers answers "is this address inside any member?".
type PrefixSet struct {
	m map[Prefix]struct{}
	// lens tracks which prefix lengths are present so Covers only probes
	// lengths that can match.
	lens [33]int
}

// NewPrefixSet returns an empty prefix set.
func NewPrefixSet() *PrefixSet {
	return &PrefixSet{m: make(map[Prefix]struct{})}
}

// Add inserts p; it reports whether p was newly added.
func (ps *PrefixSet) Add(p Prefix) bool {
	if _, ok := ps.m[p]; ok {
		return false
	}
	ps.m[p] = struct{}{}
	ps.lens[p.Bits()]++
	return true
}

// Contains reports whether exactly p is a member.
func (ps *PrefixSet) Contains(p Prefix) bool {
	_, ok := ps.m[p]
	return ok
}

// Covers reports whether any member prefix contains a.
func (ps *PrefixSet) Covers(a Addr) bool {
	_, ok := ps.CoveringPrefix(a)
	return ok
}

// CoveringPrefix returns the longest member prefix containing a. Probes run
// from /32 down so the first hit is the longest match; lengths with no
// members are skipped.
func (ps *PrefixSet) CoveringPrefix(a Addr) (Prefix, bool) {
	for bits := 32; bits >= 0; bits-- {
		if ps.lens[bits] == 0 {
			continue
		}
		p := PrefixFrom(a, bits)
		if _, ok := ps.m[p]; ok {
			return p, true
		}
	}
	return Prefix{}, false
}

// Compile builds a longest-prefix-match Table over the members, mapping each
// address to its longest covering prefix. Lookups on the compiled table walk
// at most 32 trie nodes with no hashing, which is what serving hot paths
// want; the set itself stays the mutable build-side representation.
func (ps *PrefixSet) Compile() *Table[Prefix] {
	t := NewTable[Prefix]()
	for p := range ps.m {
		t.Insert(p, p)
	}
	return t
}

// Len returns the number of member prefixes.
func (ps *PrefixSet) Len() int { return len(ps.m) }

// Sorted returns members ordered by base address, then prefix length.
func (ps *PrefixSet) Sorted() []Prefix {
	out := make([]Prefix, 0, len(ps.m))
	for p := range ps.m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Base() != out[j].Base() {
			return out[i].Base() < out[j].Base()
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}
