package iputil

import "sort"

// Set is a mutable set of IPv4 addresses. The zero value is not ready for
// use; construct with NewSet.
type Set struct {
	m map[Addr]struct{}
}

// NewSet returns an empty address set.
func NewSet() *Set {
	return &Set{m: make(map[Addr]struct{})}
}

// SetOf builds a set from the given addresses.
func SetOf(addrs ...Addr) *Set {
	s := NewSet()
	for _, a := range addrs {
		s.Add(a)
	}
	return s
}

// Add inserts a into the set; it reports whether a was newly added.
func (s *Set) Add(a Addr) bool {
	if _, ok := s.m[a]; ok {
		return false
	}
	s.m[a] = struct{}{}
	return true
}

// Remove deletes a from the set.
func (s *Set) Remove(a Addr) {
	delete(s.m, a)
}

// Contains reports membership.
func (s *Set) Contains(a Addr) bool {
	_, ok := s.m[a]
	return ok
}

// Len returns the number of addresses in the set.
func (s *Set) Len() int { return len(s.m) }

// AddSet inserts every address of t into s.
func (s *Set) AddSet(t *Set) {
	for a := range t.m {
		s.m[a] = struct{}{}
	}
}

// Intersect returns a new set holding the addresses present in both s and t.
func (s *Set) Intersect(t *Set) *Set {
	small, big := s, t
	if big.Len() < small.Len() {
		small, big = big, small
	}
	out := NewSet()
	for a := range small.m {
		if big.Contains(a) {
			out.m[a] = struct{}{}
		}
	}
	return out
}

// Sorted returns the addresses in ascending numeric order.
func (s *Set) Sorted() []Addr {
	out := make([]Addr, 0, len(s.m))
	for a := range s.m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Slash24s returns the set of /24 prefixes covering the members of s.
func (s *Set) Slash24s() *PrefixSet {
	ps := NewPrefixSet()
	for a := range s.m {
		ps.Add(a.Slash24())
	}
	return ps
}

// PrefixSet is a set of canonical prefixes. Unlike Set it stores prefixes of
// mixed lengths; Covers answers "is this address inside any member?".
type PrefixSet struct {
	m map[Prefix]struct{}
	// lens tracks which prefix lengths are present so Covers only probes
	// lengths that can match.
	lens [33]int
}

// NewPrefixSet returns an empty prefix set.
func NewPrefixSet() *PrefixSet {
	return &PrefixSet{m: make(map[Prefix]struct{})}
}

// Add inserts p; it reports whether p was newly added.
func (ps *PrefixSet) Add(p Prefix) bool {
	if _, ok := ps.m[p]; ok {
		return false
	}
	ps.m[p] = struct{}{}
	ps.lens[p.Bits()]++
	return true
}

// Contains reports whether exactly p is a member.
func (ps *PrefixSet) Contains(p Prefix) bool {
	_, ok := ps.m[p]
	return ok
}

// Covers reports whether any member prefix contains a.
func (ps *PrefixSet) Covers(a Addr) bool {
	_, ok := ps.CoveringPrefix(a)
	return ok
}

// CoveringPrefix returns the longest member prefix containing a. Probes run
// from /32 down so the first hit is the longest match; lengths with no
// members are skipped.
func (ps *PrefixSet) CoveringPrefix(a Addr) (Prefix, bool) {
	for bits := 32; bits >= 0; bits-- {
		if ps.lens[bits] == 0 {
			continue
		}
		p := PrefixFrom(a, bits)
		if _, ok := ps.m[p]; ok {
			return p, true
		}
	}
	return Prefix{}, false
}

// Compile builds a longest-prefix-match Table over the members, mapping each
// address to its longest covering prefix. Lookups on the compiled table walk
// at most 32 trie nodes with no hashing, which is what serving hot paths
// want; the set itself stays the mutable build-side representation.
func (ps *PrefixSet) Compile() *Table[Prefix] {
	t := NewTable[Prefix]()
	for p := range ps.m {
		t.Insert(p, p)
	}
	return t
}

// Len returns the number of member prefixes.
func (ps *PrefixSet) Len() int { return len(ps.m) }

// Sorted returns members ordered by base address, then prefix length.
func (ps *PrefixSet) Sorted() []Prefix {
	out := make([]Prefix, 0, len(ps.m))
	for p := range ps.m {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Base() != out[j].Base() {
			return out[i].Base() < out[j].Base()
		}
		return out[i].Bits() < out[j].Bits()
	})
	return out
}
