package iputil

import (
	"math/rand"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	a := MustParseAddr("192.0.2.1")
	if !s.Add(a) {
		t.Error("first Add should report true")
	}
	if s.Add(a) {
		t.Error("second Add should report false")
	}
	if !s.Contains(a) || s.Len() != 1 {
		t.Error("membership broken")
	}
	s.Remove(a)
	if s.Contains(a) || s.Len() != 0 {
		t.Error("Remove broken")
	}
}

func TestSetIntersect(t *testing.T) {
	a := SetOf(1, 2, 3, 4)
	b := SetOf(3, 4, 5)
	got := a.Intersect(b)
	if got.Len() != 2 || !got.Contains(3) || !got.Contains(4) {
		t.Errorf("Intersect = %v", got.Sorted())
	}
	// Symmetric.
	got2 := b.Intersect(a)
	if got2.Len() != got.Len() {
		t.Error("Intersect not symmetric")
	}
}

func TestSetSorted(t *testing.T) {
	s := SetOf(9, 3, 7, 1)
	got := s.Sorted()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestSetAddSet(t *testing.T) {
	a := SetOf(1, 2)
	a.AddSet(SetOf(2, 3))
	if a.Len() != 3 {
		t.Errorf("union size = %d", a.Len())
	}
}

func TestSetSlash24s(t *testing.T) {
	s := SetOf(
		MustParseAddr("10.0.0.1"),
		MustParseAddr("10.0.0.200"),
		MustParseAddr("10.0.1.1"),
	)
	ps := s.Slash24s()
	if ps.Len() != 2 {
		t.Errorf("want 2 /24s, got %d", ps.Len())
	}
	if !ps.Contains(MustParsePrefix("10.0.0.0/24")) {
		t.Error("missing 10.0.0.0/24")
	}
}

func TestPrefixSetCovers(t *testing.T) {
	ps := NewPrefixSet()
	ps.Add(MustParsePrefix("10.0.0.0/8"))
	ps.Add(MustParsePrefix("192.0.2.0/24"))
	cases := []struct {
		addr string
		want bool
	}{
		{"10.200.3.4", true},
		{"192.0.2.99", true},
		{"192.0.3.1", false},
		{"11.0.0.1", false},
	}
	for _, c := range cases {
		if got := ps.Covers(MustParseAddr(c.addr)); got != c.want {
			t.Errorf("Covers(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestPrefixSetSorted(t *testing.T) {
	ps := NewPrefixSet()
	ps.Add(MustParsePrefix("10.0.0.0/24"))
	ps.Add(MustParsePrefix("9.0.0.0/8"))
	ps.Add(MustParsePrefix("10.0.0.0/16"))
	got := ps.Sorted()
	want := []string{"9.0.0.0/8", "10.0.0.0/16", "10.0.0.0/24"}
	for i, w := range want {
		if got[i].String() != w {
			t.Errorf("Sorted[%d] = %v, want %s", i, got[i], w)
		}
	}
}

func TestSetIntersectRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b := NewSet(), NewSet()
	naive := map[Addr]int{}
	for i := 0; i < 2000; i++ {
		addr := Addr(rng.Intn(500))
		if rng.Intn(2) == 0 {
			if a.Add(addr) {
				naive[addr] |= 1
			}
		} else {
			if b.Add(addr) {
				naive[addr] |= 2
			}
		}
	}
	want := 0
	for _, bits := range naive {
		if bits == 3 {
			want++
		}
	}
	if got := a.Intersect(b).Len(); got != want {
		t.Errorf("Intersect len = %d, want %d", got, want)
	}
}

// TestPrefixSetCoversAgainstLinear cross-checks Covers, CoveringPrefix and
// the compiled Table against a brute-force scan over random mixed-length
// prefix sets. The brute force tracks the longest containing prefix, so the
// longest-match contract of CoveringPrefix (and of Table.Lookup on the
// compiled form) is pinned here too.
func TestPrefixSetCoversAgainstLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		ps := NewPrefixSet()
		var list []Prefix
		for i := 0; i < 50; i++ {
			p := PrefixFrom(Addr(rng.Uint32()), 8+rng.Intn(25))
			ps.Add(p)
			list = append(list, p)
		}
		table := ps.Compile()
		if table.Len() != ps.Len() {
			t.Fatalf("Compile len = %d, want %d", table.Len(), ps.Len())
		}
		for i := 0; i < 500; i++ {
			a := Addr(rng.Uint32())
			want := false
			var longest Prefix
			for _, p := range list {
				if p.Contains(a) {
					if !want || p.Bits() > longest.Bits() {
						longest = p
					}
					want = true
				}
			}
			if got := ps.Covers(a); got != want {
				t.Fatalf("Covers(%v) = %v, want %v", a, got, want)
			}
			gotP, ok := ps.CoveringPrefix(a)
			if ok != want || (ok && gotP != longest) {
				t.Fatalf("CoveringPrefix(%v) = %v, %v; want %v, %v", a, gotP, ok, longest, want)
			}
			tblP, tblOK := table.Lookup(a)
			if tblOK != want || (tblOK && tblP != longest) {
				t.Fatalf("Compile().Lookup(%v) = %v, %v; want %v, %v", a, tblP, tblOK, longest, want)
			}
		}
	}
}

func TestCoveringPrefixLongestWins(t *testing.T) {
	ps := NewPrefixSet()
	ps.Add(MustParsePrefix("10.0.0.0/8"))
	ps.Add(MustParsePrefix("10.9.0.0/16"))
	ps.Add(MustParsePrefix("10.9.7.0/24"))
	p, ok := ps.CoveringPrefix(MustParseAddr("10.9.7.200"))
	if !ok || p.String() != "10.9.7.0/24" {
		t.Errorf("CoveringPrefix = %v, %v; want 10.9.7.0/24", p, ok)
	}
	p, ok = ps.CoveringPrefix(MustParseAddr("10.9.8.1"))
	if !ok || p.String() != "10.9.0.0/16" {
		t.Errorf("CoveringPrefix = %v, %v; want 10.9.0.0/16", p, ok)
	}
	if _, ok := ps.CoveringPrefix(MustParseAddr("11.0.0.1")); ok {
		t.Error("CoveringPrefix matched outside every member")
	}
}
