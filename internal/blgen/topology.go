package blgen

import (
	"math"
	"math/rand"

	"github.com/reuseblock/reuseblock/internal/iputil"
)

// PrefixKind classifies a /24's address-allocation policy — the ground truth
// the detectors are measured against.
type PrefixKind int

// Prefix kinds.
const (
	KindUnused  PrefixKind = iota
	KindStatic             // statically addressed eyeball space
	KindDynamic            // DHCP pool: one IP serves many users over time
	KindCGN                // carrier-grade/home NAT gateways: one IP, many users at once
	KindServer             // hosting/datacenter space
)

// String names the kind.
func (k PrefixKind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindDynamic:
		return "dynamic"
	case KindCGN:
		return "cgn"
	case KindServer:
		return "server"
	default:
		return "unused"
	}
}

// Region is a coarse probe-deployment region.
type Region int

// Regions; RIPE probes concentrate in Europe and North America.
const (
	RegionEU Region = iota
	RegionNA
	RegionOther
)

// ASKind classifies an autonomous system.
type ASKind int

// AS kinds.
const (
	ASEyeball ASKind = iota
	ASHosting
	ASStub
)

// PrefixInfo is one /24 with its allocation policy.
type PrefixInfo struct {
	Prefix iputil.Prefix
	Kind   PrefixKind
	ASN    int
	// MeanLeaseHours is the DHCP lease churn for dynamic pools (hours);
	// fast pools (≈ daily or quicker) are what the paper's pipeline
	// should detect.
	MeanLeaseHours int
	// ICMPFiltered marks prefixes whose network drops ICMP (a documented
	// weakness of the Cai et al. baseline).
	ICMPFiltered bool
}

// AS is one autonomous system.
type AS struct {
	ASN      int
	Kind     ASKind
	Region   Region
	BTPop    bool // BitTorrent is popular here
	Probes   bool // hosts RIPE Atlas probes
	Prefixes []PrefixInfo
}

// buildTopology creates the AS-level world.
func buildTopology(rng *rand.Rand, p *Params) []*AS {
	var ases []*AS
	asn := 64500
	nextSlash16 := 0
	// allocPrefix hands out globally unique /24s: walk 10.x.y.0/24 style
	// space across 60.0.0.0..99.255.255.0 (synthetic, not real routing).
	allocPrefix := func() iputil.Prefix {
		i := nextSlash16
		nextSlash16++
		a := byte(60 + i/65536%40)
		b := byte(i / 256 % 256)
		c := byte(i % 256)
		return iputil.PrefixFrom(iputil.AddrFrom4(a, b, c, 0), 24)
	}
	mkAS := func(kind ASKind, size int) *AS {
		a := &AS{ASN: asn, Kind: kind}
		asn++
		switch r := rng.Float64(); {
		case r < 0.4:
			a.Region = RegionEU
		case r < 0.7:
			a.Region = RegionNA
		default:
			a.Region = RegionOther
		}
		for i := 0; i < size; i++ {
			a.Prefixes = append(a.Prefixes, PrefixInfo{Prefix: allocPrefix(), ASN: a.ASN})
		}
		ases = append(ases, a)
		return a
	}

	// Eyeball ASes: Zipf-ish sizes so a few giants dominate (the paper's
	// AS4134 holds 9% of all blocklisted addresses).
	nEye := p.scaled(p.EyeballASes)
	for i := 0; i < nEye; i++ {
		size := 1 + int(6/(rng.Float64()*3+0.25))
		if size > 64 {
			size = 64
		}
		if i == 0 {
			size = 48 + rng.Intn(17) // the giant
		}
		a := mkAS(ASEyeball, size)
		a.BTPop = rng.Float64() < p.BTPopularASFrac
		a.Probes = (a.Region == RegionEU || a.Region == RegionNA) &&
			rng.Float64() < p.ProbeASFrac/0.7 // concentrate in EU/NA
		icmpFiltered := rng.Float64() < 0.15 // whole-AS ICMP policy
		for j := range a.Prefixes {
			pi := &a.Prefixes[j]
			pi.ICMPFiltered = icmpFiltered
			switch r := rng.Float64(); {
			case r < p.StaticFrac:
				pi.Kind = KindStatic
			case r < p.StaticFrac+p.DynamicFrac:
				pi.Kind = KindDynamic
				// Lease churn is log-skewed from six hours to several
				// months, so per-probe allocation counts form the smooth
				// heavy-tailed curve of Fig 2 rather than discrete bands;
				// the 1.5 exponent weights daily-or-faster pools to
				// roughly a third of dynamic space.
				maxLease := float64(p.SlowLeaseDays) * 24 * 5
				u := math.Pow(rng.Float64(), 1.5)
				pi.MeanLeaseHours = int(6 * math.Pow(maxLease/6, u))
				if pi.MeanLeaseHours < 6 {
					pi.MeanLeaseHours = 6
				}
			case r < p.StaticFrac+p.DynamicFrac+p.CGNFrac:
				pi.Kind = KindCGN
			default:
				pi.Kind = KindUnused
			}
		}
	}
	// Hosting ASes: server space.
	for i := 0; i < p.scaled(p.HostingASes); i++ {
		size := 2 + rng.Intn(12)
		a := mkAS(ASHosting, size)
		for j := range a.Prefixes {
			a.Prefixes[j].Kind = KindServer
			a.Prefixes[j].ICMPFiltered = rng.Float64() < 0.1
		}
	}
	// Stub ASes: one small static prefix each.
	for i := 0; i < p.scaled(p.StubASes); i++ {
		a := mkAS(ASStub, 1)
		a.Prefixes[0].Kind = KindStatic
	}
	return ases
}
