// Package blgen generates the synthetic Internet the study runs against: an
// AS topology with static, dynamic (DHCP-pool) and carrier-grade-NAT address
// space, a BitTorrent user population, RIPE Atlas probe deployments,
// malicious actors whose abuse drives 151 synthetic blocklist feeds over the
// paper's 83-day measurement windows, and full ground truth for
// precision/recall evaluation.
//
// Everything is derived deterministically from one seed. The default
// parameters produce a world roughly 1/1000 the scale of the measurements in
// the paper, calibrated so the *shapes* of every figure hold (see
// EXPERIMENTS.md for paper-vs-measured numbers).
package blgen

import (
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
)

// Params configures world generation. The zero value is unusable; start
// from DefaultParams.
type Params struct {
	Seed int64
	// Scale multiplies every population count; 1 is the default bench
	// world, tests use much smaller values.
	Scale float64

	// Topology.
	EyeballASes int // consumer ISPs: mixed static/dynamic/CGN space
	HostingASes int // datacenters: server space, no BitTorrent
	StubASes    int // tiny enterprise ASes

	// Prefix-kind mix inside eyeball ASes (fractions summing to <= 1;
	// the remainder is unused dark space).
	StaticFrac  float64
	DynamicFrac float64
	CGNFrac     float64

	// Address usage.
	StaticHostsPerPrefix int     // used addresses per static /24
	DynamicOccupancy     float64 // fraction of a pool leased at any time
	GatewaysPerCGNPrefix int     // NAT gateway addresses per CGN /24

	// BitTorrent population.
	BTPopularASFrac float64 // fraction of eyeball ASes where BT is popular
	BTStaticFrac    float64 // BT adoption among static hosts (popular ASes)
	BTDynamicFrac   float64 // BT adoption among dynamic users
	// NAT gateway BT user count distribution: probability of zero, one,
	// or 2+ users; the 2+ tail shape is fixed (Fig 8 calibration).
	NATZeroBTFrac float64
	NATOneBTFrac  float64

	// RIPE Atlas deployment.
	ProbeASFrac   float64 // fraction of eyeball ASes hosting probes
	ProbesPerAS   int     // probes per covered AS
	MoverFrac     float64 // probes that relocate across ASes
	RIPEMonths    int     // observation length (paper: 16)
	SlowLeaseDays int     // mean lease of slow-churn pools, days

	// Abuse model.
	StaticCompromiseFrac  float64 // static hosts compromised during study
	BTCompromiseBoost     float64 // multiplier for BT hosts ([31])
	ServerCompromiseFrac  float64 // hosting servers running abuse
	DynamicUsersPerPrefix float64 // compromised users per dynamic /24
	NATUserCompromiseFrac float64 // compromised internal users per NAT user
	ShortCampaignFrac     float64 // one-to-two-day campaigns (scanners)
	MeanCampaignDays      float64 // mean of the long-campaign exponential
	// NAT campaigns are bimodal (Fig 7): many brief bursts from individual
	// users plus a long tail of persistently infected shared machines.
	NATShortCampaignFrac float64
	NATMeanCampaignDays  float64
	// NATRestrictedFrac is the share of gateways with address-restricted
	// filtering (invisible to the crawler's unsolicited pings).
	NATRestrictedFrac float64

	// Feed observation model. Every feed has a vantage: the set of ASes
	// whose traffic its sensors see. The paper's big community feeds
	// (Stopforumspam, Nixspam, ...) see globally; small feeds see a
	// handful of ASes — which is why 40–47% of lists carry no reused
	// addresses at all (Figs 5–6).
	TopFeedDetectP  float64 // per-campaign detection probability, global feeds
	BaseFeedDetectP float64 // mean detection probability, small feeds
	// Delist lag distribution: P(1 day), P(2 days); the tail is geometric.
	DelistLag1P float64
	DelistLag2P float64

	// Measurement windows (default: the paper's 83 days).
	Days []time.Time

	// Registry is the feed registry (default: blocklist.StandardRegistry).
	Registry *blocklist.Registry

	// Workers bounds the parallelism of feed generation. Each maintainer
	// feed plays the campaign population against its own sub-seeded RNG
	// stream, so the generated world is bit-for-bit identical for any
	// value: <= 0 means GOMAXPROCS, 1 is the sequential path. Workers is
	// execution policy, not part of the world's identity.
	Workers int
}

// DefaultParams returns the calibrated bench-scale world.
func DefaultParams(seed int64) Params {
	return Params{
		Seed:  seed,
		Scale: 1,

		EyeballASes: 220,
		HostingASes: 50,
		StubASes:    30,

		StaticFrac:  0.55,
		DynamicFrac: 0.30,
		CGNFrac:     0.13,

		StaticHostsPerPrefix: 96,
		DynamicOccupancy:     0.6,
		GatewaysPerCGNPrefix: 56,

		BTPopularASFrac: 0.35,
		BTStaticFrac:    0.10,
		BTDynamicFrac:   0.07,
		NATZeroBTFrac:   0.46,
		NATOneBTFrac:    0.12,

		ProbeASFrac:   0.20,
		ProbesPerAS:   10,
		MoverFrac:     0.13,
		RIPEMonths:    16,
		SlowLeaseDays: 30,

		StaticCompromiseFrac:  0.035,
		BTCompromiseBoost:     3.0,
		ServerCompromiseFrac:  0.06,
		DynamicUsersPerPrefix: 1.0,
		NATUserCompromiseFrac: 0.13,
		ShortCampaignFrac:     0.15,
		MeanCampaignDays:      18,
		NATShortCampaignFrac:  0.82,
		NATMeanCampaignDays:   38,
		NATRestrictedFrac:     0.10,

		TopFeedDetectP:  0.75,
		BaseFeedDetectP: 0.30,
		DelistLag1P:     0.62,
		DelistLag2P:     0.22,

		Days: blocklist.MeasurementDays(),
	}
}

// TestParams returns a tiny world for unit tests (< 100 ms to generate).
func TestParams(seed int64) Params {
	p := DefaultParams(seed)
	p.Scale = 0.05
	return p
}

func (p *Params) scaled(n int) int {
	v := int(float64(n) * p.Scale)
	if v < 1 {
		v = 1
	}
	return v
}
