package blgen

import (
	"math"
	"math/rand"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/parallel"
)

// ActorKind classifies the origin of an abuse campaign, which determines
// how the campaign maps to addresses over time.
type ActorKind int

// Actor kinds.
const (
	ActorStatic  ActorKind = iota // a static eyeball host
	ActorServer                   // a hosting-space server
	ActorDynamic                  // a user on a dynamic pool: the abuse follows the user across addresses
	ActorNAT                      // a user behind a NAT gateway: abuse shows at the shared address
)

// Campaign is one actor's span of malicious activity over the observation
// days.
type Campaign struct {
	Actor ActorKind
	Types []blocklist.Type
	// StartDay..EndDay (inclusive) index the collection's observation days.
	StartDay, EndDay int
	// Addr is the fixed source for static/server/NAT actors.
	Addr iputil.Addr
	// Pool and LeaseDays drive the per-day address of dynamic actors.
	Pool      iputil.Prefix
	LeaseDays int
	ASN       int
	seed      uint64
}

// AddrOnDay returns the campaign's source address on an observation day.
func (c *Campaign) AddrOnDay(day int) iputil.Addr {
	if c.Actor != ActorDynamic {
		return c.Addr
	}
	slot := uint64(day / c.LeaseDays)
	n := uint64(c.Pool.Size() - 2)
	return c.Pool.Nth(1 + int(hashMix(c.seed, slot)%n))
}

// typeProfile is a weighted campaign-type mixture.
type typeProfile struct {
	types  []blocklist.Type
	weight float64
}

var eyeballProfiles = []typeProfile{
	{[]blocklist.Type{blocklist.Spam, blocklist.Reputation}, 0.36},
	{[]blocklist.Type{blocklist.Bruteforce, blocklist.SSH, blocklist.Reputation}, 0.20},
	{[]blocklist.Type{blocklist.Scan, blocklist.Reputation}, 0.12},
	{[]blocklist.Type{blocklist.DDoS, blocklist.Reputation}, 0.08},
	{[]blocklist.Type{blocklist.Malware, blocklist.Reputation}, 0.08},
	{[]blocklist.Type{blocklist.HTTP, blocklist.Reputation}, 0.06},
	{[]blocklist.Type{blocklist.Ransomware, blocklist.Reputation}, 0.04},
	{[]blocklist.Type{blocklist.Backdoor, blocklist.Reputation}, 0.03},
	{[]blocklist.Type{blocklist.FTP, blocklist.Reputation}, 0.015},
	{[]blocklist.Type{blocklist.Banking, blocklist.Reputation}, 0.01},
	{[]blocklist.Type{blocklist.VOIP, blocklist.Reputation}, 0.005},
}

var serverProfiles = []typeProfile{
	{[]blocklist.Type{blocklist.Malware, blocklist.Reputation}, 0.45},
	{[]blocklist.Type{blocklist.Spam, blocklist.Reputation}, 0.25},
	{[]blocklist.Type{blocklist.HTTP, blocklist.Reputation}, 0.15},
	{[]blocklist.Type{blocklist.Ransomware, blocklist.Reputation}, 0.10},
	{[]blocklist.Type{blocklist.Banking, blocklist.Reputation}, 0.05},
}

func drawProfile(rng *rand.Rand, profiles []typeProfile) []blocklist.Type {
	total := 0.0
	for _, p := range profiles {
		total += p.weight
	}
	r := rng.Float64() * total
	for _, p := range profiles {
		if r < p.weight {
			return p.types
		}
		r -= p.weight
	}
	return profiles[len(profiles)-1].types
}

// drawCampaignSpan picks start and duration (in observation days).
func (w *World) drawCampaignSpan(rng *rand.Rand, shortFrac, meanDays float64) (start, end int) {
	n := len(w.Params.Days)
	start = rng.Intn(n)
	var dur int
	if rng.Float64() < shortFrac {
		dur = 1 // hit-and-run bursts
	} else {
		dur = 1 + int(rng.ExpFloat64()*meanDays)
	}
	end = start + dur - 1
	if end >= n {
		end = n - 1
	}
	return start, end
}

// generateAbuse creates the campaign population.
func (w *World) generateAbuse(rng *rand.Rand) {
	p := &w.Params
	btAddrs := iputil.NewSet()
	for _, u := range w.BTUsers {
		if !u.BehindNAT {
			btAddrs.Add(u.PublicAddr)
		}
	}
	for _, a := range w.ASes {
		for i := range a.Prefixes {
			pi := &a.Prefixes[i]
			switch pi.Kind {
			case KindStatic:
				for h := 1; h <= p.StaticHostsPerPrefix; h++ {
					addr := pi.Prefix.Nth(h)
					prob := p.StaticCompromiseFrac
					if btAddrs.Contains(addr) {
						prob = math.Min(1, prob*p.BTCompromiseBoost)
					}
					if rng.Float64() >= prob {
						continue
					}
					start, end := w.drawCampaignSpan(rng, p.ShortCampaignFrac, p.MeanCampaignDays)
					w.Campaigns = append(w.Campaigns, &Campaign{
						Actor: ActorStatic, Types: drawProfile(rng, eyeballProfiles),
						StartDay: start, EndDay: end, Addr: addr, ASN: pi.ASN,
					})
				}
			case KindServer:
				for h := 1; h <= 128; h++ {
					if rng.Float64() >= p.ServerCompromiseFrac {
						continue
					}
					start, end := w.drawCampaignSpan(rng, p.ShortCampaignFrac, p.MeanCampaignDays*1.5)
					w.Campaigns = append(w.Campaigns, &Campaign{
						Actor: ActorServer, Types: drawProfile(rng, serverProfiles),
						StartDay: start, EndDay: end, Addr: pi.Prefix.Nth(h), ASN: pi.ASN,
					})
				}
			case KindDynamic:
				// Compromised users whose abuse follows them across the
				// pool as leases turn over.
				users := poisson(rng, p.DynamicUsersPerPrefix)
				leaseDays := pi.MeanLeaseHours / 24
				if leaseDays < 1 {
					leaseDays = 1
				}
				for u := 0; u < users; u++ {
					start, end := w.drawCampaignSpan(rng, p.ShortCampaignFrac, p.MeanCampaignDays)
					w.Campaigns = append(w.Campaigns, &Campaign{
						Actor: ActorDynamic, Types: drawProfile(rng, eyeballProfiles),
						StartDay: start, EndDay: end,
						Pool: pi.Prefix, LeaseDays: leaseDays, ASN: pi.ASN,
						seed: hashMix(uint64(pi.Prefix.Base()), uint64(u)+7),
					})
				}
			}
		}
	}
	// NATed actors: each compromised internal user runs one campaign from
	// the shared address. Machines behind NATs stay infected longer (they
	// are harder to notify and clean).
	for _, nat := range w.NATs {
		for u := 0; u < nat.TotalUsers; u++ {
			if rng.Float64() >= p.NATUserCompromiseFrac {
				continue
			}
			nat.CompromisedUsers++
			start, end := w.drawCampaignSpan(rng, p.NATShortCampaignFrac, p.NATMeanCampaignDays)
			w.Campaigns = append(w.Campaigns, &Campaign{
				Actor: ActorNAT, Types: drawProfile(rng, eyeballProfiles),
				StartDay: start, EndDay: end, Addr: nat.Addr, ASN: nat.ASN,
			})
		}
	}
}

// feedProfile is a maintainer's observation behaviour: a vantage (which
// ASes its sensors cover; nil means global) plus a per-campaign detection
// probability and delisting-lag distribution.
type feedProfile struct {
	detectP      float64
	vantage      map[int]bool // ASN set; nil = global sensor
	lag1P, lag2P float64
}

func (fp *feedProfile) covers(asn int) bool {
	return fp.vantage == nil || fp.vantage[asn]
}

// topFeeds are the feeds the paper names as carrying the most reused
// addresses; they get top-tier detection probability.
var topFeeds = map[string]bool{
	"stopforumspam":       true,
	"nixspam":             true,
	"alienvault":          true,
	"cleantalk":           true,
	"bad-ips-01":          true,
	"bad-ips-02":          true,
	"blocklist-de-01":     true,
	"project-honeypot-01": true,
	"sblam":               true,
	"botscout":            true,
}

// typeMatch reports whether a feed of feedType would list a campaign with
// the given type mixture.
func typeMatch(feedType blocklist.Type, types []blocklist.Type) bool {
	for _, t := range types {
		if t == feedType {
			return true
		}
	}
	return false
}

// feedSeed derives feed fi's RNG sub-seed from the world seed. Every feed
// owns an independent stream, so feeds can be generated in any order — or
// concurrently — with identical output.
func feedSeed(worldSeed int64, fi int) int64 {
	return int64(hashMix(uint64(worldSeed)^0x46454544, uint64(fi)+1)) // "FEED"
}

// listingSpan is one recorded presence run: addr listed on [from, to].
type listingSpan struct {
	addr     iputil.Addr
	from, to int
}

// buildFeeds plays every campaign against every feed and fills the
// collection with daily listings. Each feed draws from its own sub-seeded
// RNG stream and plays the (shared, frozen) campaign population
// independently of every other feed, so the maintainer feeds are generated
// concurrently under p.Workers with bit-for-bit deterministic output.
func (w *World) buildFeeds(rng *rand.Rand) {
	p := &w.Params
	w.Collection = blocklist.NewCollection(w.Registry, p.Days)

	// Feed population is bimodal, which is what produces the paper's
	// "40-47% of lists carry no reused addresses" alongside substantial
	// average list sizes: top community feeds see globally at a high rate;
	// "broad" aggregators see globally at a low rate; "tiny" sensor feeds
	// see only the handful of ASes their honeypots sit in. Profiles draw
	// from the world RNG sequentially (cheap, order-dependent).
	profiles := make([]feedProfile, w.Registry.Len())
	for i, f := range w.Registry.Feeds {
		prof := feedProfile{lag1P: p.DelistLag1P, lag2P: p.DelistLag2P}
		switch {
		case topFeeds[f.Name]:
			prof.detectP = p.TopFeedDetectP * (0.8 + rng.Float64()*0.4)
		case rng.Float64() < 0.48:
			// Broad aggregator: global vantage, low per-campaign rate.
			u := rng.Float64()
			prof.detectP = 0.02 + 0.15*u*u*u
		default:
			// Tiny sensor feed: one or two ASes, high local rate.
			k := 1 + rng.Intn(2)
			prof.vantage = make(map[int]bool, k)
			for j := 0; j < k; j++ {
				prof.vantage[w.ASes[rng.Intn(len(w.ASes))].ASN] = true
			}
			prof.detectP = p.BaseFeedDetectP * (1 + rng.Float64())
		}
		if prof.detectP > 0.95 {
			prof.detectP = 0.95
		}
		profiles[i] = prof
	}

	// Play the campaigns against every feed concurrently (campaigns,
	// profiles and the registry are frozen here), then record the spans
	// into the collection sequentially in feed order — RecordSpan mutates
	// shared collection state and is cheap next to the playback.
	spansPerFeed := parallel.Map(p.Workers, w.Registry.Len(), func(fi int) []listingSpan {
		return w.playFeed(fi, &profiles[fi])
	})
	for fi, spans := range spansPerFeed {
		for _, s := range spans {
			_ = w.Collection.RecordSpan(fi, s.addr, s.from, s.to)
		}
	}
}

// playFeed plays every campaign against one feed, drawing detection, lag
// and delisting from the feed's own sub-seeded stream, and returns the
// listing spans in deterministic (campaign, day) order.
func (w *World) playFeed(fi int, prof *feedProfile) []listingSpan {
	p := &w.Params
	feed := &w.Registry.Feeds[fi]
	frng := rand.New(rand.NewSource(feedSeed(p.Seed, fi)))
	nDays := len(p.Days)
	var spans []listingSpan
	for _, c := range w.Campaigns {
		if !typeMatch(feed.Type, c.Types) {
			continue
		}
		if !prof.covers(c.ASN) {
			continue
		}
		if frng.Float64() >= prof.detectP {
			continue
		}
		// Detection lag.
		var lag int
		switch r := frng.Float64(); {
		case r < 0.6:
			lag = 0
		case r < 0.9:
			lag = 1
		default:
			lag = 2
		}
		firstSeen := c.StartDay + lag
		if firstSeen > c.EndDay {
			continue // campaign over before the feed noticed
		}
		// Delisting lag after the last event at each address.
		var delist int
		switch r := frng.Float64(); {
		case r < prof.lag1P:
			delist = 1
		case r < prof.lag1P+prof.lag2P:
			delist = 2
		default:
			delist = 3
			for delist < 14 && frng.Float64() < 0.5 {
				delist++
			}
		}
		// Walk the campaign's address runs and record listing spans.
		runStart := firstSeen
		for d := firstSeen; d <= c.EndDay; d++ {
			if d+1 <= c.EndDay && c.AddrOnDay(d+1) == c.AddrOnDay(d) {
				continue
			}
			addr := c.AddrOnDay(d)
			to := d + delist - 1
			if to >= nDays {
				to = nDays - 1
			}
			// The listing covers activity days plus the delist lag.
			spans = append(spans, listingSpan{addr: addr, from: runStart, to: to})
			runStart = d + 1
		}
	}
	return spans
}

// poisson draws a Poisson variate with the given mean.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
