package blgen

import (
	"math/rand"
	"time"

	"github.com/reuseblock/reuseblock/internal/blocklist"
	"github.com/reuseblock/reuseblock/internal/iputil"
	"github.com/reuseblock/reuseblock/internal/ripeatlas"
)

// NATTruth is the ground truth for one NAT gateway address.
type NATTruth struct {
	Addr iputil.Addr
	ASN  int
	// TotalUsers share the gateway; BTUsers of them run BitTorrent.
	TotalUsers int
	BTUsers    int
	// Restricted gateways filter unsolicited inbound (the crawler cannot
	// confirm them — systematic undercounting).
	Restricted bool
	// CompromisedUsers run abuse campaigns from behind the gateway.
	CompromisedUsers int
}

// BTUser is one BitTorrent participant the swarm builder instantiates.
type BTUser struct {
	ID int
	// PublicAddr is the externally visible address (the NAT gateway for
	// NATed users).
	PublicAddr iputil.Addr
	// PrivateAddr is the RFC 1918 address for NATed users; equal to
	// PublicAddr otherwise.
	PrivateAddr iputil.Addr
	Port        uint16
	BehindNAT   bool
	ASN         int
}

// World is the generated universe plus every derived dataset.
type World struct {
	Params   Params
	Registry *blocklist.Registry
	ASes     []*AS

	// PrefixTable maps any address to its /24's PrefixInfo.
	PrefixTable *iputil.Table[*PrefixInfo]

	// Ground truth.
	NATs            []*NATTruth
	NATByIP         map[iputil.Addr]*NATTruth
	TrueFastDynamic *iputil.PrefixSet // pools with ≈ daily reallocation
	TrueAnyDynamic  *iputil.PrefixSet // all dynamic pools

	// Populations.
	BTUsers []BTUser

	// Datasets.
	Campaigns  []*Campaign
	Collection *blocklist.Collection
	RIPELogs   []ripeatlas.LogEntry
	RIPEStart  time.Time
}

// Generate builds the world.
func Generate(p Params) *World {
	if p.Scale <= 0 {
		p.Scale = 1
	}
	if p.Registry == nil {
		p.Registry = blocklist.StandardRegistry()
	}
	if len(p.Days) == 0 {
		p.Days = blocklist.MeasurementDays()
	}
	rng := rand.New(rand.NewSource(p.Seed))
	w := &World{
		Params:          p,
		Registry:        p.Registry,
		PrefixTable:     iputil.NewTable[*PrefixInfo](),
		NATByIP:         make(map[iputil.Addr]*NATTruth),
		TrueFastDynamic: iputil.NewPrefixSet(),
		TrueAnyDynamic:  iputil.NewPrefixSet(),
	}
	w.ASes = buildTopology(rng, &p)
	for _, a := range w.ASes {
		for i := range a.Prefixes {
			pi := &a.Prefixes[i]
			w.PrefixTable.Insert(pi.Prefix, pi)
			if pi.Kind == KindDynamic {
				w.TrueAnyDynamic.Add(pi.Prefix)
				if pi.MeanLeaseHours <= 24 {
					w.TrueFastDynamic.Add(pi.Prefix)
				}
			}
		}
	}
	w.populateNATs(rng)
	w.populateBitTorrent(rng)
	w.generateRIPE(rng)
	w.generateAbuse(rng)
	w.buildFeeds(rng)
	return w
}

// populateNATs draws gateway populations for every CGN prefix.
func (w *World) populateNATs(rng *rand.Rand) {
	p := &w.Params
	for _, a := range w.ASes {
		for i := range a.Prefixes {
			pi := &a.Prefixes[i]
			if pi.Kind != KindCGN {
				continue
			}
			for g := 0; g < p.GatewaysPerCGNPrefix; g++ {
				nat := &NATTruth{
					Addr:       pi.Prefix.Nth(g + 1),
					ASN:        pi.ASN,
					TotalUsers: drawNATUsers(rng),
					Restricted: rng.Float64() < p.NATRestrictedFrac,
				}
				nat.BTUsers = drawBTUsers(rng, nat.TotalUsers, a.BTPop, p)
				w.NATs = append(w.NATs, nat)
				w.NATByIP[nat.Addr] = nat
			}
		}
	}
}

// drawNATUsers samples the household/subscriber count behind a gateway:
// mostly small home NATs, some mid-size, a few large CGN segments.
func drawNATUsers(rng *rand.Rand) int {
	switch r := rng.Float64(); {
	case r < 0.72:
		return 2 + rng.Intn(5) // 2..6
	case r < 0.98:
		return 8 + rng.Intn(23) // 8..30
	default:
		return 40 + rng.Intn(81) // 40..120 (CGN segments)
	}
}

// drawBTUsers samples how many users behind a gateway run BitTorrent; the
// 2+ region is what the crawler can confirm (Fig 8).
func drawBTUsers(rng *rand.Rand, total int, btPopular bool, p *Params) int {
	zero, one := p.NATZeroBTFrac, p.NATOneBTFrac
	if !btPopular {
		zero += (1 - zero) * 0.7
	}
	r := rng.Float64()
	var k int
	switch {
	case r < zero:
		k = 0
	case r < zero+one:
		k = 1
	default:
		// 2+ tail: geometric-ish small counts; large gateways scale with
		// their population so CGN segments reach the Fig 8 tail (≈78).
		if total >= 40 {
			k = int(float64(total) * (0.5 + rng.Float64()*0.35))
		} else {
			k = 2
			for k < 10 && rng.Float64() < 0.22 {
				k++
			}
		}
	}
	if k > total {
		k = total
	}
	return k
}

// populateBitTorrent instantiates the BT user population.
func (w *World) populateBitTorrent(rng *rand.Rand) {
	p := &w.Params
	id := 1
	for _, a := range w.ASes {
		if a.Kind != ASEyeball {
			continue
		}
		for i := range a.Prefixes {
			pi := &a.Prefixes[i]
			switch pi.Kind {
			case KindStatic:
				if !a.BTPop {
					continue
				}
				for h := 0; h < p.StaticHostsPerPrefix; h++ {
					if rng.Float64() >= p.BTStaticFrac {
						continue
					}
					addr := pi.Prefix.Nth(h + 1)
					w.BTUsers = append(w.BTUsers, BTUser{
						ID: id, PublicAddr: addr, PrivateAddr: addr,
						Port: uint16(6881 + rng.Intn(200)), ASN: pi.ASN,
					})
					id++
				}
			case KindDynamic:
				if !a.BTPop {
					continue
				}
				// Each occupied lease holds one distinct user; a BT user's
				// address during the crawl window is their current lease.
				for h := 1; h <= pi.Prefix.Size()-2; h++ {
					if rng.Float64() >= p.DynamicOccupancy*p.BTDynamicFrac {
						continue
					}
					addr := pi.Prefix.Nth(h)
					w.BTUsers = append(w.BTUsers, BTUser{
						ID: id, PublicAddr: addr, PrivateAddr: addr,
						Port: uint16(6881 + rng.Intn(200)), ASN: pi.ASN,
					})
					id++
				}
			}
		}
	}
	// NATed users.
	for _, nat := range w.NATs {
		for u := 0; u < nat.BTUsers; u++ {
			w.BTUsers = append(w.BTUsers, BTUser{
				ID:          id,
				PublicAddr:  nat.Addr,
				PrivateAddr: iputil.AddrFrom4(192, 168, byte(u/250), byte(u%250+2)),
				Port:        6881,
				BehindNAT:   true,
				ASN:         nat.ASN,
			})
			id++
		}
	}
}

// generateRIPE deploys probes and plays the fleet over RIPEMonths.
func (w *World) generateRIPE(rng *rand.Rand) {
	p := &w.Params
	w.RIPEStart = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	duration := time.Duration(p.RIPEMonths) * 30 * 24 * time.Hour
	var specs []ripeatlas.ProbeSpec
	probeID := 1
	// Collect candidate prefixes of other ASes for movers.
	var allPrefixes []PrefixInfo
	for _, a := range w.ASes {
		for _, pi := range a.Prefixes {
			if pi.Kind == KindStatic || pi.Kind == KindDynamic {
				allPrefixes = append(allPrefixes, pi)
			}
		}
	}
	for _, a := range w.ASes {
		if !a.Probes || len(a.Prefixes) == 0 {
			continue
		}
		// Probes lean toward residential (often dynamic) space — Atlas
		// hosts are home volunteers. At this scale the first probes of
		// each covered AS are pinned to its dynamic pools so coverage of
		// dynamic space is stable across seeds, standing in for the
		// paper's much larger fleet.
		var dynIdx []int
		for j, pj := range a.Prefixes {
			if pj.Kind == KindDynamic {
				dynIdx = append(dynIdx, j)
			}
		}
		for n := 0; n < p.ProbesPerAS; n++ {
			var pi PrefixInfo
			switch {
			case n < len(dynIdx) && n < p.ProbesPerAS/2+1:
				pi = a.Prefixes[dynIdx[n]]
			case len(dynIdx) > 0 && rng.Float64() < 0.3:
				pi = a.Prefixes[dynIdx[rng.Intn(len(dynIdx))]]
			default:
				pi = a.Prefixes[rng.Intn(len(a.Prefixes))]
			}
			if pi.Kind == KindCGN || pi.Kind == KindUnused || pi.Kind == KindServer {
				// Probes sit in end-user space.
				pi.Kind = KindStatic
			}
			spec := ripeatlas.ProbeSpec{
				ID:   probeID,
				ASN:  pi.ASN,
				Pool: pi.Prefix,
				// Flaky uplinks reconnect now and then.
				ReconnectEvery: time.Duration(20+rng.Intn(40)) * 24 * time.Hour,
			}
			probeID++
			if pi.Kind == KindDynamic {
				spec.MeanLease = time.Duration(pi.MeanLeaseHours) * time.Hour
			}
			if rng.Float64() < p.MoverFrac && len(allPrefixes) > 1 {
				dst := allPrefixes[rng.Intn(len(allPrefixes))]
				for dst.ASN == pi.ASN {
					dst = allPrefixes[rng.Intn(len(allPrefixes))]
				}
				spec.MoveAt = time.Duration(60+rng.Intn(p.RIPEMonths*30-120)) * 24 * time.Hour
				spec.MovePool = dst.Prefix
				spec.MoveASN = dst.ASN
			}
			specs = append(specs, spec)
		}
	}
	w.RIPELogs = ripeatlas.SimulateFleet(ripeatlas.FleetParams{
		Seed:     w.Params.Seed ^ 0x52495045, // "RIPE"
		Start:    w.RIPEStart,
		Duration: duration,
		Probes:   specs,
	})
}

// PrefixOf returns the prefix info covering addr.
func (w *World) PrefixOf(addr iputil.Addr) (*PrefixInfo, bool) {
	return w.PrefixTable.Lookup(addr)
}

// Responds implements the icmpsurvey.Responder contract over world ground
// truth, including the baseline's documented blind spots: CGN gateways
// answer like middleboxes, ICMP-filtered networks never answer, dynamic
// pools answer only while a lease is occupied.
func (w *World) Responds(addr iputil.Addr, at time.Time) bool {
	pi, ok := w.PrefixOf(addr)
	if !ok || pi.ICMPFiltered {
		return false
	}
	host := int(addr) & 0xff
	switch pi.Kind {
	case KindServer:
		return host >= 1 && host <= 128 // dense, always-on farms
	case KindStatic:
		if host < 1 || host > w.Params.StaticHostsPerPrefix {
			return false
		}
		return hashMix(uint64(addr), 0)%10 < 9 // 90% of hosts answer
	case KindCGN:
		// Gateways reply on behalf of everything behind them.
		return host >= 1 && host <= w.Params.GatewaysPerCGNPrefix
	case KindDynamic:
		if host < 1 || host > 254 {
			return false
		}
		lease := time.Duration(pi.MeanLeaseHours) * time.Hour
		slot := uint64(at.Sub(w.RIPEStart) / lease)
		occupied := float64(hashMix(uint64(addr), slot)%1000) / 1000
		return occupied < w.Params.DynamicOccupancy
	default:
		return false
	}
}

// hashMix is a small deterministic mixer for occupancy schedules.
func hashMix(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return x
}

// BlocklistedSpace returns the /24 prefixes containing blocklisted
// addresses — the scope the paper restricts its crawler to.
func (w *World) BlocklistedSpace() *iputil.PrefixSet {
	return w.Collection.AllAddrs().Slash24s()
}
